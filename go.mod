module genmapper

go 1.22
