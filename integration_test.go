package genmapper

// End-to-end integration tests: generate native source files, run the full
// Parse+Import pipeline from disk, query through every access path
// (operators, views, HTTP-level rendering, exports), persist and reload.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"genmapper/internal/gen"
	"genmapper/internal/profile"
)

// osWriteFile is aliased for test readability.
var osWriteFile = os.WriteFile

func TestEndToEndFromFiles(t *testing.T) {
	// 1. Generate native files for a small universe.
	u := gen.NewUniverse(gen.Config{Seed: 9, Scale: 0.001})
	dir := t.TempDir()
	paths, err := u.WriteFiles(dir)
	if err != nil {
		t.Fatal(err)
	}

	// 2. Import a meaningful subset from disk, GO before its referrers so
	// incremental linking is exercised both ways.
	sys, err := New()
	if err != nil {
		t.Fatal(err)
	}
	order := []struct {
		name   string
		format string
	}{
		{"GO", "obo"},
		{"LocusLink", "locuslink"},
		{"Enzyme", "enzyme"},
		{"Hugo", "tabular"},
		{"Unigene", "tabular"},
		{"OMIM", "tabular"},
		{"NetAffx-HG-U133A", "tabular"},
	}
	for _, src := range order {
		st, err := sys.ImportFile(src.format, paths[src.name], u.SourceInfo(src.name),
			ImportOptions{DeriveSubsumed: true})
		if err != nil {
			t.Fatalf("import %s: %v", src.name, err)
		}
		// Earlier imports may have created this source's objects as bare
		// cross-reference targets; either way the import must have seen
		// every object.
		if st.ObjectsNew+st.ObjectsDup == 0 {
			t.Fatalf("import %s processed no objects", src.name)
		}
	}

	// 3. Sanity: counts match the generator's accounting.
	stats, err := sys.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sources < int64(len(order)) {
		t.Fatalf("sources = %d", stats.Sources)
	}
	repo := sys.Repo()
	goSrc := repo.SourceByName("GO")
	n, _ := repo.ObjectCount(goSrc.ID)
	if n < int64(u.Count("GO")) {
		t.Fatalf("GO objects = %d, want >= %d", n, u.Count("GO"))
	}

	// 4. Query: direct, transitive, negated.
	accs := []string{u.Accession("LocusLink", 0), u.Accession("LocusLink", 1), u.Accession("LocusLink", 2)}
	table, err := sys.AnnotationView(Query{
		Source: "LocusLink", Accessions: accs,
		Targets: []Target{{Source: "Hugo"}, {Source: "GO"}},
		Mode:    "OR",
	})
	if err != nil {
		t.Fatal(err)
	}
	if table.RowCount() < len(accs) {
		t.Fatalf("view rows = %d", table.RowCount())
	}

	// Transitive: chip probes to GO via the graph.
	probe := u.Accession("NetAffx-HG-U133A", 0)
	_, err = sys.AnnotationView(Query{
		Source: "NetAffx-HG-U133A", Accessions: []string{probe},
		Targets: []Target{{Source: "GO"}},
	})
	if err != nil {
		t.Fatalf("transitive chip->GO view: %v", err)
	}

	// 5. Exports round-trip.
	var tsv, csvBuf, jsonBuf bytes.Buffer
	if err := table.WriteTSV(&tsv); err != nil {
		t.Fatal(err)
	}
	if err := table.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if err := table.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	header := "LocusLink\tHugo\tGO"
	if !strings.HasPrefix(tsv.String(), header) {
		t.Errorf("TSV header = %q", strings.SplitN(tsv.String(), "\n", 2)[0])
	}

	// 6. Persist, reload, re-query: identical row count.
	snap := filepath.Join(dir, "e2e.snap")
	if err := sys.SaveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	table2, err := loaded.AnnotationView(Query{
		Source: "LocusLink", Accessions: accs,
		Targets: []Target{{Source: "Hugo"}, {Source: "GO"}},
		Mode:    "OR",
	})
	if err != nil {
		t.Fatal(err)
	}
	if table2.RowCount() != table.RowCount() {
		t.Fatalf("rows after reload = %d, want %d", table2.RowCount(), table.RowCount())
	}
	for i := range table.Rows {
		if strings.Join(table.Rows[i], "|") != strings.Join(table2.Rows[i], "|") {
			t.Fatalf("row %d differs after reload", i)
		}
	}
}

func TestEndToEndProfilingOverUniverse(t *testing.T) {
	if testing.Short() {
		t.Skip("universe profiling skipped in -short mode")
	}
	sys, err := New()
	if err != nil {
		t.Fatal(err)
	}
	u := gen.NewUniverse(gen.Config{Seed: 4, Scale: 0.005})
	if _, err := sys.ImportUniverse(u, ImportOptions{DeriveSubsumed: true}, nil); err != nil {
		t.Fatal(err)
	}
	p, err := profile.NewPipeline(sys.Repo(), "NetAffx-HG-U133A", "Unigene", "LocusLink", "GO")
	if err != nil {
		t.Fatal(err)
	}
	probes, err := p.ProbeAccessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(probes) != u.Count("NetAffx-HG-U133A") {
		t.Fatalf("probes = %d, want %d", len(probes), u.Count("NetAffx-HG-U133A"))
	}
	annotations, err := p.ProbeAnnotations()
	if err != nil {
		t.Fatal(err)
	}
	if len(annotations) == 0 {
		t.Fatal("no probe annotations derived through the 3-hop chain")
	}
	terms, err := p.TermAccessions()
	if err != nil {
		t.Fatal(err)
	}
	study := profile.NewStudy(profile.DefaultStudyConfig(), probes, annotations, terms)
	e, err := p.Run(study)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Results) == 0 {
		t.Fatal("no enrichment results")
	}
	// p-values well-formed and sorted.
	prev := -1.0
	for _, r := range e.Results {
		if r.PValue < 0 || r.PValue > 1 {
			t.Fatalf("p-value %g out of range for %s", r.PValue, r.Term)
		}
		if r.PValue < prev {
			t.Fatal("results not sorted by p-value")
		}
		prev = r.PValue
		if r.Differential > r.Detected {
			t.Fatalf("term %s: differential %d > detected %d", r.Term, r.Differential, r.Detected)
		}
	}
}

func TestUniverseReimportIdempotent(t *testing.T) {
	if testing.Short() {
		t.Skip("double universe import skipped in -short mode")
	}
	sys, err := New()
	if err != nil {
		t.Fatal(err)
	}
	u := gen.NewUniverse(gen.Config{Seed: 2, Scale: 0.001})
	if _, err := sys.ImportUniverse(u, ImportOptions{}, nil); err != nil {
		t.Fatal(err)
	}
	before, _ := sys.Stats()
	stats, err := sys.ImportUniverse(u, ImportOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range stats {
		if st.ObjectsNew != 0 || st.AssocsNew != 0 {
			t.Fatalf("source %s not idempotent: %s", st.Source, st)
		}
	}
	after, _ := sys.Stats()
	if before.Objects != after.Objects || before.Associations != after.Associations {
		t.Fatalf("stats changed on re-import: %s vs %s", before, after)
	}
}

func TestFailureInjection(t *testing.T) {
	sys, err := New()
	if err != nil {
		t.Fatal(err)
	}
	// A valid import first, so there is state a bad import could corrupt.
	u := gen.NewUniverse(gen.Config{Seed: 6, Scale: 0.001})
	d, err := u.Dataset("LocusLink")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ImportDataset(d, ImportOptions{}); err != nil {
		t.Fatal(err)
	}
	before, _ := sys.Stats()

	dir := t.TempDir()
	cases := []struct {
		name    string
		format  string
		content string
	}{
		{"truncated-locuslink", "locuslink", "HUGO: orphan annotation before any record\n"},
		{"malformed-obo", "obo", "[Term]\nname: missing id tag\n"},
		{"bad-enzyme", "enzyme", "ZZ   unknown line code\n"},
		{"bad-tabular", "tabular", "acc\tname\tBroken:\n"},
		{"bad-evidence", "tabular", "acc\tname\tT:x|2.5\n"},
	}
	for _, c := range cases {
		path := filepath.Join(dir, c.name)
		if err := writeFile(t, path, c.content); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.ImportFile(c.format, path, SourceInfo{Name: "Broken-" + c.name}, ImportOptions{}); err == nil {
			t.Errorf("%s: malformed file accepted", c.name)
		}
	}

	// Cyclic IS_A rejected by subsumption derivation.
	cyclic := filepath.Join(dir, "cycle.obo")
	writeFile(t, cyclic, "[Term]\nid: A\nis_a: B\n\n[Term]\nid: B\nis_a: A\n")
	if _, err := sys.ImportFile("obo", cyclic, SourceInfo{Name: "Cyclic", Structure: "network"},
		ImportOptions{DeriveSubsumed: true}); err == nil {
		t.Error("cyclic taxonomy accepted by subsumption derivation")
	}

	// The prior data is still intact and queryable.
	after, _ := sys.Stats()
	if after.Objects < before.Objects {
		t.Fatalf("failed imports lost data: %s vs %s", before, after)
	}
	if _, err := sys.AnnotationView(Query{
		Source:  "LocusLink",
		Targets: []Target{{Source: "Hugo"}},
	}); err != nil {
		t.Fatalf("system unusable after failed imports: %v", err)
	}
}

func writeFile(t *testing.T, path, content string) error {
	t.Helper()
	return osWriteFile(path, []byte(content), 0o644)
}

func TestGraphConnectivityOverUniverse(t *testing.T) {
	sys, err := New()
	if err != nil {
		t.Fatal(err)
	}
	u := gen.NewUniverse(gen.Config{Seed: 5, Scale: 0.001})
	if _, err := sys.ImportUniverse(u, ImportOptions{}, nil); err != nil {
		t.Fatal(err)
	}
	// Every catalog source with cross-references must reach GO, the hub of
	// functional annotation, through some mapping path.
	reachable, total := 0, 0
	for _, name := range u.Names() {
		if name == "GO" {
			continue
		}
		spec := u.Spec(name)
		if len(spec.XRefs) == 0 {
			continue
		}
		total++
		if _, err := sys.FindPath(name, "GO"); err == nil {
			reachable++
		}
	}
	if total == 0 {
		t.Fatal("no sources with xrefs")
	}
	if reachable < total*9/10 {
		t.Fatalf("only %d of %d xref-bearing sources reach GO", reachable, total)
	}
}
