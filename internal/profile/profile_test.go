package profile

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHypergeomTailBasics(t *testing.T) {
	// P(X >= 0) is always 1.
	if got := HypergeomTail(100, 10, 20, 0); got != 1 {
		t.Errorf("k=0 tail = %g", got)
	}
	// Impossible k.
	if got := HypergeomTail(100, 5, 10, 6); got != 0 {
		t.Errorf("impossible tail = %g", got)
	}
	// Exhaustive tiny case: N=4, K=2, n=2.
	// P(X=0)=C(2,0)C(2,2)/C(4,2)=1/6; P(X=1)=4/6; P(X=2)=1/6.
	if got := HypergeomTail(4, 2, 2, 1); math.Abs(got-5.0/6.0) > 1e-12 {
		t.Errorf("P(X>=1) = %g, want 5/6", got)
	}
	if got := HypergeomTail(4, 2, 2, 2); math.Abs(got-1.0/6.0) > 1e-12 {
		t.Errorf("P(X>=2) = %g, want 1/6", got)
	}
}

func TestHypergeomTailMonotone(t *testing.T) {
	f := func(seed int64) bool {
		N := 50 + int(seed%50+50)%50
		K := N / 3
		n := N / 4
		prev := 1.1
		for k := 0; k <= n; k++ {
			p := HypergeomTail(N, K, n, k)
			if p > prev+1e-12 {
				return false
			}
			if p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHypergeomPMFSumsToOne(t *testing.T) {
	N, K, n := 60, 20, 15
	sum := 0.0
	for k := 0; k <= n; k++ {
		sum += math.Exp(logHypergeomPMF(N, K, n, k))
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("PMF sums to %g", sum)
	}
}

func makeStudyInput(n int) ([]string, map[string][]string, []string) {
	probes := make([]string, n)
	probeTerms := make(map[string][]string, n)
	terms := []string{"GO:1", "GO:2", "GO:3", "GO:4", "GO:5", "GO:6", "GO:7", "GO:8", "GO:9", "GO:10"}
	for i := range probes {
		p := fmt.Sprintf("probe%d_at", i)
		probes[i] = p
		probeTerms[p] = []string{terms[i%len(terms)]}
	}
	return probes, probeTerms, terms
}

func TestNewStudyShape(t *testing.T) {
	probes, probeTerms, terms := makeStudyInput(4000)
	cfg := DefaultStudyConfig()
	cfg.BiasTerms = 2
	st := NewStudy(cfg, probes, probeTerms, terms)
	total, detected, differential := st.Counts()
	if total != 4000 {
		t.Fatalf("total = %d", total)
	}
	// Detected fraction approx 0.5.
	if detected < 1700 || detected > 2300 {
		t.Errorf("detected = %d, want ~2000", detected)
	}
	// Differential is a biased fraction of detected.
	if differential < 150 || differential > 1200 {
		t.Errorf("differential = %d", differential)
	}
	if len(st.BiasedTerms) != 2 {
		t.Errorf("biased terms = %v", st.BiasedTerms)
	}
	// Differential implies detected.
	for p := range st.Differential {
		if !st.Detected[p] {
			t.Fatalf("differential probe %s not detected", p)
		}
	}
}

func TestNewStudyDeterministic(t *testing.T) {
	probes, probeTerms, terms := makeStudyInput(500)
	cfg := DefaultStudyConfig()
	a := NewStudy(cfg, probes, probeTerms, terms)
	b := NewStudy(cfg, probes, probeTerms, terms)
	if len(a.Differential) != len(b.Differential) {
		t.Fatal("study not deterministic")
	}
	for p := range a.Differential {
		if !b.Differential[p] {
			t.Fatal("study not deterministic in membership")
		}
	}
}

func TestAnalyzeFindsInjectedBias(t *testing.T) {
	probes, probeTerms, terms := makeStudyInput(5000)
	cfg := DefaultStudyConfig()
	cfg.BiasTerms = 1
	cfg.BiasBoost = 6
	st := NewStudy(cfg, probes, probeTerms, terms)
	biased := st.BiasedTerms[0]

	// Per-term detected/differential counts (flat, no hierarchy).
	termDet := map[string]int{}
	termDiff := map[string]int{}
	for p, ts := range probeTerms {
		for _, term := range ts {
			if st.Detected[p] {
				termDet[term]++
			}
			if st.Differential[p] {
				termDiff[term]++
			}
		}
	}
	_, det, diff := st.Counts()
	e := Analyze(termDet, termDiff, map[string]string{biased: "the biased one"}, det, diff)
	if len(e.Results) == 0 {
		t.Fatal("no results")
	}
	if e.Results[0].Term != biased {
		t.Fatalf("most significant term = %s (p=%.3g), want biased %s",
			e.Results[0].Term, e.Results[0].PValue, biased)
	}
	if e.Results[0].FoldChange <= 1.5 {
		t.Errorf("fold change = %g, expected clear enrichment", e.Results[0].FoldChange)
	}
	if e.Results[0].Name != "the biased one" {
		t.Errorf("name lookup failed: %q", e.Results[0].Name)
	}
	// BH cutoff finds at least the biased term.
	if sig := e.BenjaminiHochberg(0.05); sig < 1 {
		t.Errorf("BH significant = %d, want >= 1", sig)
	}
	// The report renders.
	if out := e.FormatTable(3); !strings.Contains(out, biased) {
		t.Errorf("FormatTable missing biased term:\n%s", out)
	}
}

func TestAnalyzeSkipsUndetectedTerms(t *testing.T) {
	e := Analyze(map[string]int{"GO:1": 0, "GO:2": 5}, map[string]int{"GO:2": 1}, nil, 100, 10)
	if len(e.Results) != 1 || e.Results[0].Term != "GO:2" {
		t.Fatalf("results = %+v", e.Results)
	}
}

func TestTopK(t *testing.T) {
	e := Analyze(map[string]int{"a": 5, "b": 5}, map[string]int{"a": 3}, nil, 100, 10)
	if len(e.TopK(1)) != 1 {
		t.Error("TopK(1) failed")
	}
	if len(e.TopK(10)) != 2 {
		t.Error("TopK beyond length should clamp")
	}
}
