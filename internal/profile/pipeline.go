package profile

import (
	"fmt"

	"genmapper/internal/gam"
	"genmapper/internal/ops"
	"genmapper/internal/taxonomy"
)

// Pipeline wires the §5.2 analysis against a GAM repository: probe sets of
// a microarray chip are mapped to the gene representation (UniGene), GO
// annotations are derived through LocusLink by composing mappings, and
// per-term statistics are rolled up over the GO IS_A hierarchy.
type Pipeline struct {
	repo *gam.Repo

	Chip      string // NetAffx chip source name (probe sets)
	GeneRep   string // generally accepted gene representation (Unigene)
	Annotator string // source providing GO annotations (LocusLink)
	Ontology  string // taxonomy source (GO)
}

// NewPipeline validates that all participating sources exist.
func NewPipeline(repo *gam.Repo, chip, geneRep, annotator, ontology string) (*Pipeline, error) {
	for _, name := range []string{chip, geneRep, annotator, ontology} {
		if repo.SourceByName(name) == nil {
			return nil, fmt.Errorf("profile: source %q is not imported", name)
		}
	}
	return &Pipeline{repo: repo, Chip: chip, GeneRep: geneRep, Annotator: annotator, Ontology: ontology}, nil
}

// ProbeAnnotations returns, per probe accession, the directly annotated GO
// term accessions, derived via the Chip -> GeneRep -> Annotator -> Ontology
// mapping path ("the proprietary genes of Affymetrix microarrays were
// mapped to the generally accepted gene representation UniGene, for which
// GO annotations were in turn derived from the mappings provided by
// LocusLink").
func (p *Pipeline) ProbeAnnotations() (map[string][]string, error) {
	chip := p.repo.SourceByName(p.Chip)
	geneRep := p.repo.SourceByName(p.GeneRep)
	annotator := p.repo.SourceByName(p.Annotator)
	ontology := p.repo.SourceByName(p.Ontology)

	m, err := ops.MapPath(p.repo, []gam.SourceID{chip.ID, geneRep.ID, annotator.ID, ontology.ID})
	if err != nil {
		return nil, fmt.Errorf("profile: derive probe annotations: %w", err)
	}
	return p.accessionPairs(m)
}

// accessionPairs renders a mapping's associations as accession pairs
// grouped by domain accession.
func (p *Pipeline) accessionPairs(m *ops.Mapping) (map[string][]string, error) {
	accCache := make(map[gam.ObjectID]string)
	resolve := func(id gam.ObjectID) (string, error) {
		if s, ok := accCache[id]; ok {
			return s, nil
		}
		obj, err := p.repo.Object(id)
		if err != nil {
			return "", err
		}
		if obj == nil {
			return "", fmt.Errorf("profile: dangling object %d", id)
		}
		accCache[id] = obj.Accession
		return obj.Accession, nil
	}
	out := make(map[string][]string)
	for _, a := range m.Assocs {
		from, err := resolve(a.Object1)
		if err != nil {
			return nil, err
		}
		to, err := resolve(a.Object2)
		if err != nil {
			return nil, err
		}
		out[from] = append(out[from], to)
	}
	return out, nil
}

// Run executes the full profiling analysis for a study: per-term detected
// and differential gene counts rolled up over the ontology's IS_A
// hierarchy, followed by hypergeometric enrichment over the entire
// taxonomy.
func (p *Pipeline) Run(study *Study) (*Enrichment, error) {
	annotations, err := p.ProbeAnnotations()
	if err != nil {
		return nil, err
	}
	ontology := p.repo.SourceByName(p.Ontology)

	// Build the IS_A DAG of the ontology.
	isaRel, hasIsA, err := p.repo.FindIsARel(ontology.ID)
	if err != nil {
		return nil, err
	}
	var dag *taxonomy.DAG
	if hasIsA {
		assocs, err := p.repo.Associations(isaRel)
		if err != nil {
			return nil, err
		}
		edges := make([]taxonomy.Edge, len(assocs))
		for i, a := range assocs {
			edges[i] = taxonomy.Edge{Child: int64(a.Object1), Parent: int64(a.Object2)}
		}
		dag = taxonomy.NewDAG(edges)
	} else {
		dag = taxonomy.NewDAG(nil)
	}
	objs, err := p.repo.ObjectsBySource(ontology.ID)
	if err != nil {
		return nil, err
	}
	termIDs := make(map[string]int64, len(objs))
	termNames := make(map[string]string, len(objs))
	idToTerm := make(map[int64]string, len(objs))
	for _, o := range objs {
		dag.AddNode(int64(o.ID))
		termIDs[o.Accession] = int64(o.ID)
		idToTerm[int64(o.ID)] = o.Accession
		termNames[o.Accession] = o.Text
	}

	// Per-term direct probe annotations, split by study group. Probe
	// identity serves as gene identity (objects are distinct probe sets).
	detAnn := make(map[int64][]int64)
	diffAnn := make(map[int64][]int64)
	probeNum := make(map[string]int64)
	next := int64(1)
	for probe, terms := range annotations {
		id, ok := probeNum[probe]
		if !ok {
			id = next
			next++
			probeNum[probe] = id
		}
		for _, term := range terms {
			tid, ok := termIDs[term]
			if !ok {
				continue
			}
			if study.Detected[probe] {
				detAnn[tid] = append(detAnn[tid], id)
			}
			if study.Differential[probe] {
				diffAnn[tid] = append(diffAnn[tid], id)
			}
		}
	}

	// Roll up over the hierarchy: a gene annotated to a term counts for
	// every ancestor term (equivalently, each term aggregates its Subsumed
	// terms).
	detCounts, err := dag.RollupCounts(detAnn)
	if err != nil {
		return nil, fmt.Errorf("profile: rollup: %w", err)
	}
	diffCounts, err := dag.RollupCounts(diffAnn)
	if err != nil {
		return nil, fmt.Errorf("profile: rollup: %w", err)
	}

	termDetected := make(map[string]int, len(detCounts))
	termDifferential := make(map[string]int, len(diffCounts))
	for tid, c := range detCounts {
		if term, ok := idToTerm[tid]; ok && c > 0 {
			termDetected[term] = c
		}
	}
	for tid, c := range diffCounts {
		if term, ok := idToTerm[tid]; ok && c > 0 {
			termDifferential[term] = c
		}
	}

	_, detected, differential := study.Counts()
	return Analyze(termDetected, termDifferential, termNames, detected, differential), nil
}

// ProbeAccessions lists the chip's probe accessions (study input).
func (p *Pipeline) ProbeAccessions() ([]string, error) {
	chip := p.repo.SourceByName(p.Chip)
	objs, err := p.repo.ObjectsBySource(chip.ID)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(objs))
	for i, o := range objs {
		out[i] = o.Accession
	}
	return out, nil
}

// TermAccessions lists the ontology's term accessions.
func (p *Pipeline) TermAccessions() ([]string, error) {
	ont := p.repo.SourceByName(p.Ontology)
	objs, err := p.repo.ObjectsBySource(ont.ID)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(objs))
	for i, o := range objs {
		out[i] = o.Accession
	}
	return out, nil
}
