package profile

import (
	"testing"

	"genmapper/internal/eav"
	"genmapper/internal/gam"
	"genmapper/internal/importer"
	"genmapper/internal/sqldb"
)

// buildMiniWorld assembles the §5.2 mapping chain: a NetAffx chip whose
// probes map to Unigene clusters, Unigene to LocusLink, LocusLink to GO,
// plus a small GO IS_A hierarchy.
func buildMiniWorld(t *testing.T) *gam.Repo {
	t.Helper()
	repo, err := gam.Open(sqldb.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	imp := func(d *eav.Dataset, opts importer.Options) {
		t.Helper()
		if _, err := importer.Import(repo, d, opts); err != nil {
			t.Fatal(err)
		}
	}

	goData := eav.NewDataset(eav.SourceInfo{Name: "GO", Structure: "network"})
	goData.Add("GO:root", eav.TargetName, "", "biological process")
	goData.Add("GO:meta", eav.TargetName, "", "metabolism")
	goData.Add("GO:nuc", eav.TargetName, "", "nucleoside metabolism")
	goData.Add("GO:sig", eav.TargetName, "", "signaling")
	goData.Add("GO:meta", eav.TargetIsA, "GO:root", "")
	goData.Add("GO:nuc", eav.TargetIsA, "GO:meta", "")
	goData.Add("GO:sig", eav.TargetIsA, "GO:root", "")
	imp(goData, importer.Options{DeriveSubsumed: true})

	ll := eav.NewDataset(eav.SourceInfo{Name: "LocusLink", Content: "gene"})
	ll.Add("1", eav.TargetName, "", "gene one")
	ll.Add("1", "GO", "GO:nuc", "")
	ll.Add("2", eav.TargetName, "", "gene two")
	ll.Add("2", "GO", "GO:sig", "")
	ll.Add("3", eav.TargetName, "", "gene three")
	ll.Add("3", "GO", "GO:meta", "")
	imp(ll, importer.Options{})

	ug := eav.NewDataset(eav.SourceInfo{Name: "Unigene", Content: "gene"})
	ug.Add("Hs.1", "LocusLink", "1", "")
	ug.Add("Hs.2", "LocusLink", "2", "")
	ug.Add("Hs.3", "LocusLink", "3", "")
	imp(ug, importer.Options{})

	chip := eav.NewDataset(eav.SourceInfo{Name: "NetAffx-HG-U95A", Content: "gene"})
	chip.AddEvidence("100_at", "Unigene", "Hs.1", "", 0.95)
	chip.AddEvidence("101_at", "Unigene", "Hs.2", "", 0.90)
	chip.AddEvidence("102_at", "Unigene", "Hs.3", "", 0.85)
	chip.AddEvidence("103_at", "Unigene", "Hs.1", "", 0.80)
	imp(chip, importer.Options{})

	return repo
}

func TestNewPipelineValidation(t *testing.T) {
	repo := buildMiniWorld(t)
	if _, err := NewPipeline(repo, "NetAffx-HG-U95A", "Unigene", "LocusLink", "GO"); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPipeline(repo, "NoSuchChip", "Unigene", "LocusLink", "GO"); err == nil {
		t.Fatal("unknown chip accepted")
	}
}

func TestProbeAnnotations(t *testing.T) {
	repo := buildMiniWorld(t)
	p, err := NewPipeline(repo, "NetAffx-HG-U95A", "Unigene", "LocusLink", "GO")
	if err != nil {
		t.Fatal(err)
	}
	ann, err := p.ProbeAnnotations()
	if err != nil {
		t.Fatal(err)
	}
	// 100_at -> Hs.1 -> locus 1 -> GO:nuc
	if len(ann["100_at"]) != 1 || ann["100_at"][0] != "GO:nuc" {
		t.Errorf("100_at annotations = %v", ann["100_at"])
	}
	if len(ann["101_at"]) != 1 || ann["101_at"][0] != "GO:sig" {
		t.Errorf("101_at annotations = %v", ann["101_at"])
	}
	// Two probes share Hs.1 and therefore GO:nuc.
	if len(ann["103_at"]) != 1 || ann["103_at"][0] != "GO:nuc" {
		t.Errorf("103_at annotations = %v", ann["103_at"])
	}
}

func TestPipelineRunRollsUpHierarchy(t *testing.T) {
	repo := buildMiniWorld(t)
	p, err := NewPipeline(repo, "NetAffx-HG-U95A", "Unigene", "LocusLink", "GO")
	if err != nil {
		t.Fatal(err)
	}
	probes, err := p.ProbeAccessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(probes) != 4 {
		t.Fatalf("probes = %v", probes)
	}
	// Deterministic study: everything detected, probes of GO:nuc genes
	// differential.
	study := &Study{
		Probes:       probes,
		Detected:     map[string]bool{"100_at": true, "101_at": true, "102_at": true, "103_at": true},
		Differential: map[string]bool{"100_at": true, "103_at": true},
	}
	e, err := p.Run(study)
	if err != nil {
		t.Fatal(err)
	}
	byTerm := make(map[string]TermResult)
	for _, r := range e.Results {
		byTerm[r.Term] = r
	}
	// GO:nuc: 2 detected (100_at, 103_at), both differential.
	if r := byTerm["GO:nuc"]; r.Detected != 2 || r.Differential != 2 {
		t.Errorf("GO:nuc = %+v", r)
	}
	// GO:meta rolls up GO:nuc plus its own direct gene (102_at): 3
	// detected, 2 differential.
	if r := byTerm["GO:meta"]; r.Detected != 3 || r.Differential != 2 {
		t.Errorf("GO:meta rollup = %+v", r)
	}
	// The root sees all 4 probes, 2 differential.
	if r := byTerm["GO:root"]; r.Detected != 4 || r.Differential != 2 {
		t.Errorf("GO:root rollup = %+v", r)
	}
	// GO:sig: only 101_at, not differential.
	if r := byTerm["GO:sig"]; r.Detected != 1 || r.Differential != 0 {
		t.Errorf("GO:sig = %+v", r)
	}
	// Most significant should be a metabolism-branch term.
	top := e.Results[0].Term
	if top != "GO:nuc" && top != "GO:meta" {
		t.Errorf("top term = %s", top)
	}
	// Term names carried through.
	if byTerm["GO:nuc"].Name != "nucleoside metabolism" {
		t.Errorf("term name = %q", byTerm["GO:nuc"].Name)
	}
}

func TestTermAccessions(t *testing.T) {
	repo := buildMiniWorld(t)
	p, _ := NewPipeline(repo, "NetAffx-HG-U95A", "Unigene", "LocusLink", "GO")
	terms, err := p.TermAccessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(terms) != 4 {
		t.Fatalf("terms = %v", terms)
	}
}
