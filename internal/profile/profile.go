// Package profile implements the large-scale automatic gene functional
// profiling application of the paper (§5.2): mapping proprietary
// microarray probe sets to UniGene, deriving GO annotations through
// LocusLink, expanding over the GO IS_A hierarchy via Subsumed
// relationships, and running a statistical enrichment analysis over the
// entire taxonomy to find functions conserved or changed between groups
// (humans vs. chimpanzees in the original study).
//
// The original expression measurements are proprietary Affymetrix data, so
// NewStudy synthesizes an expression study with the published shape: ~40k
// probed genes, ~20k detected, ~2.5k differentially expressed, with a
// configurable function-correlated bias so that enrichment is present to
// find.
package profile

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// StudyConfig shapes the synthetic expression study.
type StudyConfig struct {
	Seed int64
	// DetectedFraction of probes detected as expressed (~0.5 in §5.2).
	DetectedFraction float64
	// DifferentialFraction of detected probes showing significantly
	// different expression (~0.125 in §5.2: 2.5k of 20k).
	DifferentialFraction float64
	// BiasTerms is the number of GO terms whose annotated genes are made
	// more likely to be differential (the biological signal).
	BiasTerms int
	// BiasBoost multiplies the differential probability of biased genes.
	BiasBoost float64
}

// DefaultStudyConfig mirrors the §5.2 study proportions.
func DefaultStudyConfig() StudyConfig {
	return StudyConfig{
		Seed:                 1,
		DetectedFraction:     0.5,
		DifferentialFraction: 0.125,
		BiasTerms:            8,
		BiasBoost:            6,
	}
}

// Study is a synthetic expression experiment over a set of probes.
type Study struct {
	Probes       []string
	Detected     map[string]bool
	Differential map[string]bool
	// BiasedTerms are the GO terms carrying injected signal (ground truth
	// for evaluating the enrichment analysis).
	BiasedTerms []string
}

// NewStudy synthesizes detection and differential-expression calls for the
// given probes. probeTerms maps each probe to its (directly or indirectly)
// annotated GO terms; it drives the bias injection. allTerms is the GO
// term universe the bias terms are drawn from.
func NewStudy(cfg StudyConfig, probes []string, probeTerms map[string][]string, allTerms []string) *Study {
	rng := rand.New(rand.NewSource(cfg.Seed))
	st := &Study{
		Probes:       append([]string(nil), probes...),
		Detected:     make(map[string]bool),
		Differential: make(map[string]bool),
	}
	// Pick biased terms deterministically.
	terms := append([]string(nil), allTerms...)
	sort.Strings(terms)
	rng.Shuffle(len(terms), func(i, j int) { terms[i], terms[j] = terms[j], terms[i] })
	n := cfg.BiasTerms
	if n > len(terms) {
		n = len(terms)
	}
	st.BiasedTerms = terms[:n]
	biased := make(map[string]bool, n)
	for _, t := range st.BiasedTerms {
		biased[t] = true
	}

	baseDiff := cfg.DifferentialFraction
	for _, p := range st.Probes {
		if rng.Float64() >= cfg.DetectedFraction {
			continue
		}
		st.Detected[p] = true
		pDiff := baseDiff
		for _, term := range probeTerms[p] {
			if biased[term] {
				pDiff = math.Min(0.95, baseDiff*cfg.BiasBoost)
				break
			}
		}
		if rng.Float64() < pDiff {
			st.Differential[p] = true
		}
	}
	return st
}

// Counts returns (total, detected, differential) probe counts.
func (s *Study) Counts() (int, int, int) {
	return len(s.Probes), len(s.Detected), len(s.Differential)
}

// ---------------------------------------------------------------------------
// Enrichment statistics

// TermResult is the enrichment outcome for one GO term.
type TermResult struct {
	Term         string
	Name         string
	Detected     int // detected genes annotated to the term (rolled up)
	Differential int // differential genes annotated to the term (rolled up)
	Expected     float64
	FoldChange   float64
	PValue       float64
}

// Enrichment is the full profiling result over the taxonomy.
type Enrichment struct {
	PopulationSize int // detected genes
	SampleSize     int // differential genes
	Results        []TermResult
}

// TopK returns the k most significant terms.
func (e *Enrichment) TopK(k int) []TermResult {
	if k > len(e.Results) {
		k = len(e.Results)
	}
	return e.Results[:k]
}

// Analyze computes hypergeometric enrichment for every term. termDetected
// and termDifferential give per-term rolled-up gene counts (including
// subsumed terms, per §5.2); population and sample are the global detected
// and differential counts. Terms with no detected genes are skipped.
func Analyze(termDetected, termDifferential map[string]int, termNames map[string]string, population, sample int) *Enrichment {
	e := &Enrichment{PopulationSize: population, SampleSize: sample}
	for term, det := range termDetected {
		if det == 0 {
			continue
		}
		diff := termDifferential[term]
		expected := float64(sample) * float64(det) / float64(population)
		fold := 0.0
		if expected > 0 {
			fold = float64(diff) / expected
		}
		p := HypergeomTail(population, det, sample, diff)
		e.Results = append(e.Results, TermResult{
			Term:         term,
			Name:         termNames[term],
			Detected:     det,
			Differential: diff,
			Expected:     expected,
			FoldChange:   fold,
			PValue:       p,
		})
	}
	sort.Slice(e.Results, func(i, j int) bool {
		if e.Results[i].PValue != e.Results[j].PValue {
			return e.Results[i].PValue < e.Results[j].PValue
		}
		return e.Results[i].Term < e.Results[j].Term
	})
	return e
}

// HypergeomTail returns P(X >= k) for the hypergeometric distribution with
// population size N, K successes in the population, and n draws: the
// over-representation p-value of observing k or more annotated genes in
// the differential set. Computed in log space for numerical stability.
func HypergeomTail(N, K, n, k int) float64 {
	if k <= 0 {
		return 1
	}
	max := n
	if K < max {
		max = K
	}
	if k > max {
		return 0
	}
	sum := 0.0
	for i := k; i <= max; i++ {
		sum += math.Exp(logHypergeomPMF(N, K, n, i))
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// logHypergeomPMF returns log P(X = k).
func logHypergeomPMF(N, K, n, k int) float64 {
	if k < 0 || k > K || n-k > N-K {
		return math.Inf(-1)
	}
	return logChoose(K, k) + logChoose(N-K, n-k) - logChoose(N, n)
}

func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}

// BenjaminiHochberg annotates results with BH-adjusted significance: it
// returns the number of terms significant at the given false discovery
// rate. Results must already be sorted by ascending p-value (Analyze does
// this).
func (e *Enrichment) BenjaminiHochberg(fdr float64) int {
	m := len(e.Results)
	cut := 0
	for i, r := range e.Results {
		if r.PValue <= fdr*float64(i+1)/float64(m) {
			cut = i + 1
		}
	}
	return cut
}

// FormatTable renders the top results like the analysis pipeline's report.
func (e *Enrichment) FormatTable(k int) string {
	rows := e.TopK(k)
	out := fmt.Sprintf("%-14s %9s %9s %9s %7s %12s  %s\n",
		"term", "detected", "diff", "expected", "fold", "p-value", "name")
	for _, r := range rows {
		out += fmt.Sprintf("%-14s %9d %9d %9.2f %7.2f %12.3e  %s\n",
			r.Term, r.Detected, r.Differential, r.Expected, r.FoldChange, r.PValue, r.Name)
	}
	return out
}
