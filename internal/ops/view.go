package ops

import (
	"fmt"
	"sort"

	"genmapper/internal/gam"
)

// Combine selects how GenerateView combines the per-target mappings.
type Combine int

// Combination modes: AND uses inner joins, OR left outer joins (Figure 5).
const (
	CombineOR Combine = iota
	CombineAND
)

// String returns the SQL-ish spelling.
func (c Combine) String() string {
	if c == CombineAND {
		return "AND"
	}
	return "OR"
}

// TargetSpec describes one annotation target of a view: the target source,
// an optional restriction to target objects of interest, an optional
// negation flag, and an optional explicit mapping path (source IDs from
// the view source to the target) overriding automatic mapping lookup.
type TargetSpec struct {
	Source   gam.SourceID
	Restrict ObjectSet // nil = all target objects
	Negate   bool
	Path     []gam.SourceID
	// Mapping, when non-nil, is a pre-resolved mapping from the view
	// source to the target that overrides both Path and the resolver —
	// the hook callers use to route explicit paths through a caching
	// executor.
	Mapping *Mapping
	// MinEvidence drops associations below the threshold before joining
	// (associations with unset evidence always pass). This is the control
	// point the paper flags for "mappings containing associations of
	// reduced evidence".
	MinEvidence float64
}

// Resolver produces the mapping between the view source and a target; it
// is the hook through which GenerateView uses either a direct Map or a
// Compose over a path found in the source graph ("Determine mapping Mi:
// S<->Ti, using either the Map or Compose operation").
type Resolver func(s, t gam.SourceID) (*Mapping, error)

// DirectResolver resolves only via existing mappings (plain Map).
func DirectResolver(repo *gam.Repo) Resolver {
	return func(s, t gam.SourceID) (*Mapping, error) {
		return Map(repo, s, t)
	}
}

// ViewRow is one tuple of a generated annotation view: position 0 is the
// source object, positions 1..m the target objects. 0 encodes NULL (no
// association).
type ViewRow []gam.ObjectID

// View is the result of GenerateView: a relation of m+1 attributes over
// object IDs (rendering to accessions is the job of package view).
type View struct {
	Source  gam.SourceID
	Targets []gam.SourceID
	Rows    []ViewRow
}

// SourceObjects returns the distinct source objects present in the view.
func (v *View) SourceObjects() []gam.ObjectID {
	set := make(ObjectSet)
	for _, r := range v.Rows {
		set[r[0]] = true
	}
	return set.Sorted()
}

// GenerateView implements the algorithm of Figure 5. S is the source to be
// annotated; s the relevant source objects (nil = all objects of S);
// targets the annotation targets; mode the AND/OR combination. resolve
// finds mappings for targets without an explicit path.
func GenerateView(repo *gam.Repo, s gam.SourceID, sSet ObjectSet, targets []TargetSpec, mode Combine, resolve Resolver) (*View, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("ops: GenerateView needs at least one target")
	}
	if resolve == nil {
		resolve = DirectResolver(repo)
	}
	if sSet == nil {
		objs, err := repo.ObjectsBySource(s)
		if err != nil {
			return nil, err
		}
		sSet = make(ObjectSet, len(objs))
		for _, o := range objs {
			sSet[o.ID] = true
		}
	}

	// V = s: start with all given source objects.
	view := &View{Source: s}
	for _, id := range sSet.Sorted() {
		view.Rows = append(view.Rows, ViewRow{id})
	}

	for i, tgt := range targets {
		view.Targets = append(view.Targets, tgt.Source)

		// Determine mapping Mi: S <-> Ti.
		var mi *Mapping
		var err error
		if tgt.Mapping != nil {
			if tgt.Mapping.From != s || tgt.Mapping.To != tgt.Source {
				return nil, fmt.Errorf("ops: target %d: pre-resolved mapping leads %d->%d, want %d->%d",
					i, tgt.Mapping.From, tgt.Mapping.To, s, tgt.Source)
			}
			mi = tgt.Mapping
		} else if len(tgt.Path) > 0 {
			if tgt.Path[0] != s || tgt.Path[len(tgt.Path)-1] != tgt.Source {
				return nil, fmt.Errorf("ops: target %d: path must lead from source %d to target %d", i, s, tgt.Source)
			}
			mi, err = MapPath(repo, tgt.Path)
		} else {
			mi, err = resolve(s, tgt.Source)
		}
		if err != nil {
			return nil, fmt.Errorf("ops: target %d (source %d): %w", i, tgt.Source, err)
		}

		// mi = RestrictRange(RestrictDomain(Mi, s), ti).
		if tgt.MinEvidence > 0 {
			mi = MinEvidence(mi, tgt.MinEvidence)
		}
		restricted := RestrictRange(RestrictDomain(mi, sSet), tgt.Restrict)

		var joinMap map[gam.ObjectID][]gam.ObjectID
		if tgt.Negate {
			// sî = s \ Domain(mi); show the associations those objects do
			// have in the unrestricted mapping, padded with NULLs
			// (mî right outer join sî of Figure 5).
			matched := make(ObjectSet)
			for _, a := range restricted.Assocs {
				matched[a.Object1] = true
			}
			neg := make(ObjectSet)
			for id := range sSet {
				if !matched[id] {
					neg[id] = true
				}
			}
			outside := RestrictDomain(mi, neg)
			joinMap = groupByDomain(outside)
			for id := range neg {
				if _, ok := joinMap[id]; !ok {
					joinMap[id] = []gam.ObjectID{0}
				}
			}
		} else {
			joinMap = groupByDomain(restricted)
		}

		// V = V inner join (AND) / left outer join (OR) mi on S.
		var next []ViewRow
		for _, row := range view.Rows {
			matches := joinMap[row[0]]
			if len(matches) == 0 {
				if mode == CombineAND {
					continue
				}
				next = append(next, append(append(ViewRow{}, row...), 0))
				continue
			}
			for _, t := range matches {
				next = append(next, append(append(ViewRow{}, row...), t))
			}
		}
		view.Rows = next
	}
	sortViewRows(view.Rows)
	return view, nil
}

// groupByDomain indexes associations by domain object with deterministic
// (ascending) target order and per-domain deduplication.
func groupByDomain(m *Mapping) map[gam.ObjectID][]gam.ObjectID {
	out := make(map[gam.ObjectID][]gam.ObjectID)
	for _, a := range m.Assocs {
		out[a.Object1] = append(out[a.Object1], a.Object2)
	}
	for id, list := range out {
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		dedup := list[:0]
		var prev gam.ObjectID = -1
		for _, t := range list {
			if t != prev {
				dedup = append(dedup, t)
				prev = t
			}
		}
		out[id] = dedup
	}
	return out
}

func sortViewRows(rows []ViewRow) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}
