// Mapping-path execution engine. The plain ops.MapPath loads and composes
// every mapping from the SQL layer on each call; the Executor turns the
// same operation into a cached, parallel pipeline so that repeated
// annotation queries (the paper's dominant workload, §5.1) hit memory:
//
//   - loaded edge mappings and composed path results live in a bounded
//     LRU, keyed by (from, to, relType) for edges and by path signature
//     for composed paths;
//   - cache entries carry the repository generation observed before the
//     load; any repository write bumps the generation, so stale entries
//     are detected on lookup and refetched — a materialized or deleted
//     mapping is never served stale;
//   - on a path-cache miss, the per-edge associations of all uncached
//     edges are fetched in one batched SQL round-trip
//     (Repo.AssociationsBatch) instead of one query per edge, and the
//     edge mappings are composed by parallel pairwise tree reduction
//     across a worker pool instead of a sequential left fold.
package ops

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"genmapper/internal/cache"
	"genmapper/internal/gam"
)

// DefaultCacheCapacity bounds the executor LRU when no explicit capacity
// is configured.
const DefaultCacheCapacity = 256

// ExecutorConfig tunes an Executor.
type ExecutorConfig struct {
	// Capacity is the maximum number of cached mappings (edges and
	// composed paths together). <= 0 selects DefaultCacheCapacity.
	Capacity int
	// Workers bounds the compose worker pool. <= 0 selects GOMAXPROCS.
	// This is a local pool bound; it does not affect the storage engine.
	Workers int
	// EngineParallelism, when > 0, is forwarded to the storage engine as
	// its execution-parallelism hint (Repo.SetParallelism), so the SQL
	// scans behind mapping loads and view preloads fan out across the
	// same order of parallelism as the compose pool. It is an explicit
	// opt-in because the hint is database-global.
	EngineParallelism int
	// EngineBatchMinRows, when non-zero, tunes the storage engine's
	// vectorized-execution threshold: a positive value is forwarded as
	// the minimum table cardinality before the planner picks the
	// columnar batch leg (Repo.SetBatchMinRows); a negative value
	// disables batch execution entirely. Zero keeps the engine defaults
	// (batch execution on). Like EngineParallelism, the knob is
	// database-global.
	EngineBatchMinRows int64
}

// CacheStats reports executor cache effectiveness.
type CacheStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`
}

// Executor executes mapping-path queries against a repository with
// caching and parallel composition. It is safe for concurrent use.
type Executor struct {
	repo    *gam.Repo
	workers int

	mu     sync.Mutex
	lru    *cache.LRU[string, *cacheEntry]
	hits   uint64
	misses uint64
}

type cacheEntry struct {
	gen uint64 // repo generation observed before the load
	m   *Mapping
}

// NewExecutor creates an executor with default configuration.
func NewExecutor(repo *gam.Repo) *Executor {
	return NewExecutorConfig(repo, ExecutorConfig{})
}

// NewExecutorConfig creates an executor with explicit tuning.
func NewExecutorConfig(repo *gam.Repo, cfg ExecutorConfig) *Executor {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCacheCapacity
	}
	if cfg.EngineParallelism > 0 {
		repo.SetParallelism(cfg.EngineParallelism)
	}
	switch {
	case cfg.EngineBatchMinRows > 0:
		repo.SetBatchMinRows(cfg.EngineBatchMinRows)
	case cfg.EngineBatchMinRows < 0:
		repo.SetBatchExecution(false)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	return &Executor{
		repo:    repo,
		workers: cfg.Workers,
		lru:     cache.New[string, *cacheEntry](cfg.Capacity),
	}
}

// Repo returns the repository the executor reads from.
func (e *Executor) Repo() *gam.Repo { return e.repo }

// Stats returns a snapshot of the cache counters.
func (e *Executor) Stats() CacheStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return CacheStats{Hits: e.hits, Misses: e.misses, Entries: e.lru.Len()}
}

// Reset drops every cached mapping and zeroes the counters (used by cold
// benchmarks and tests).
func (e *Executor) Reset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.lru = cache.New[string, *cacheEntry](e.lru.Capacity())
	e.hits, e.misses = 0, 0
}

// get returns a cached mapping when present and still valid at the current
// repository generation. Stale entries are evicted on sight. The returned
// mapping is a private clone the caller may mutate.
func (e *Executor) get(key string, gen uint64) (*Mapping, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ent, ok := e.lru.Get(key)
	if !ok {
		e.misses++
		return nil, false
	}
	if ent.gen != gen {
		e.lru.Delete(key)
		e.misses++
		return nil, false
	}
	e.hits++
	return ent.m.clone(), true
}

// put stores a mapping loaded while the repository was at generation gen.
// The executor keeps a private clone so later caller mutations cannot leak
// into the cache.
func (e *Executor) put(key string, gen uint64, m *Mapping) {
	e.putOwned(key, gen, m.clone())
}

// putOwned stores a mapping the executor takes ownership of: the caller
// must not hand m to code that mutates it afterwards. Used for edge
// mappings, which are only ever read (by Compose) and never returned to
// callers uncloned.
func (e *Executor) putOwned(key string, gen uint64, cp *Mapping) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.lru.Put(key, &cacheEntry{gen: gen, m: cp})
}

func edgeKey(s, t gam.SourceID, typ gam.RelType) string {
	return fmt.Sprintf("e|%d|%d|%s", s, t, typ)
}

func pathKey(path []gam.SourceID) string {
	var sb strings.Builder
	sb.WriteString("p")
	for _, s := range path {
		fmt.Fprintf(&sb, "|%d", s)
	}
	return sb.String()
}

// Map is the cached equivalent of ops.Map: it returns the mapping between
// s and t, serving repeated requests from the LRU.
func (e *Executor) Map(s, t gam.SourceID) (*Mapping, error) {
	gen := e.repo.Generation()
	rel, reversed, err := e.repo.FindMapping(s, t)
	if err != nil {
		return nil, err
	}
	if rel == nil {
		return nil, fmt.Errorf("ops: %w: %d and %d", ErrNoMapping, s, t)
	}
	key := edgeKey(s, t, rel.Type)
	if m, ok := e.get(key, gen); ok {
		return m, nil
	}
	m, err := e.loadEdgeMapping(s, t, rel, reversed)
	if err != nil {
		return nil, err
	}
	e.putOwned(key, gen, m)
	return m.clone(), nil
}

// loadEdgeMapping streams one edge's associations straight from the engine
// cursor into the working Mapping, flipping stored-reversed associations
// inline so that From is always s — a single buffering instead of
// query-materialize-then-copy.
func (e *Executor) loadEdgeMapping(s, t gam.SourceID, rel *gam.SourceRel, reversed bool) (*Mapping, error) {
	m := &Mapping{Rel: rel.ID, From: s, To: t, Type: rel.Type}
	err := e.repo.AssociationsEach(rel.ID, func(a gam.Assoc) error {
		if reversed {
			a.Object1, a.Object2 = a.Object2, a.Object1
		}
		m.Assocs = append(m.Assocs, a)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// edgeMapping builds the working Mapping for one traversal edge from an
// already-loaded association set (the batched path), flipping
// stored-reversed associations so that From is always s.
func edgeMapping(s, t gam.SourceID, rel *gam.SourceRel, reversed bool, assocs []gam.Assoc) *Mapping {
	m := &Mapping{Rel: rel.ID, From: s, To: t, Type: rel.Type}
	if !reversed {
		m.Assocs = assocs
		return m
	}
	m.Assocs = make([]gam.Assoc, len(assocs))
	for i, a := range assocs {
		m.Assocs[i] = gam.Assoc{Object1: a.Object2, Object2: a.Object1, Evidence: a.Evidence}
	}
	return m
}

// MapPath is the cached, parallel equivalent of ops.MapPath: it loads the
// mappings along the source path and composes them into a single mapping
// from path[0] to path[len-1].
func (e *Executor) MapPath(path []gam.SourceID) (*Mapping, error) {
	if len(path) < 2 {
		return nil, fmt.Errorf("ops: mapping path needs at least two sources, got %d", len(path))
	}
	gen := e.repo.Generation()
	pkey := pathKey(path)
	if m, ok := e.get(pkey, gen); ok {
		return m, nil
	}
	maps, err := e.loadEdges(path, gen)
	if err != nil {
		return nil, err
	}
	composed, err := e.composeParallel(maps)
	if err != nil {
		return nil, err
	}
	e.put(pkey, gen, composed)
	return composed, nil
}

// loadEdges returns the per-edge mappings of a path, serving cached edges
// from the LRU and fetching all remaining edge associations in one batched
// SQL round-trip.
func (e *Executor) loadEdges(path []gam.SourceID, gen uint64) ([]*Mapping, error) {
	type pending struct {
		idx      int
		rel      *gam.SourceRel
		reversed bool
	}
	maps := make([]*Mapping, len(path)-1)
	var misses []pending
	for i := 0; i+1 < len(path); i++ {
		s, t := path[i], path[i+1]
		rel, reversed, err := e.repo.FindMapping(s, t)
		if err != nil {
			return nil, err
		}
		if rel == nil {
			return nil, fmt.Errorf("ops: path step %d: %w: %d and %d", i, ErrNoMapping, s, t)
		}
		if m, ok := e.get(edgeKey(s, t, rel.Type), gen); ok {
			maps[i] = m
			continue
		}
		misses = append(misses, pending{idx: i, rel: rel, reversed: reversed})
	}
	if len(misses) == 0 {
		return maps, nil
	}
	ids := make([]gam.SourceRelID, len(misses))
	for i, p := range misses {
		ids[i] = p.rel.ID
	}
	batch, err := e.repo.AssociationsBatch(ids)
	if err != nil {
		return nil, err
	}
	for _, p := range misses {
		s, t := path[p.idx], path[p.idx+1]
		m := edgeMapping(s, t, p.rel, p.reversed, batch[p.rel.ID])
		e.putOwned(edgeKey(s, t, p.rel.Type), gen, m)
		maps[p.idx] = m
	}
	return maps, nil
}

// composeParallel reduces the edge mappings to a single mapping by
// pairwise tree reduction: each round composes adjacent pairs concurrently
// across the worker pool, halving the chain, until one mapping remains.
// Edge order is preserved and the pairing is fixed, so the result is
// deterministic and equals the sequential left fold of ComposePath:
// Compose is associative, and Dedup's strength ordering (facts outrank
// scored evidence) makes duplicate collapse grouping-independent.
func (e *Executor) composeParallel(maps []*Mapping) (*Mapping, error) {
	if len(maps) == 1 {
		return maps[0].clone(), nil
	}
	sem := make(chan struct{}, e.workers)
	for len(maps) > 1 {
		if len(maps) <= 3 {
			// One compose this round: run it inline, goroutines buy nothing.
			c, err := Compose(maps[0], maps[1])
			if err != nil {
				return nil, err
			}
			if len(maps) == 2 {
				return c, nil
			}
			maps = []*Mapping{c, maps[2]}
			continue
		}
		next := make([]*Mapping, (len(maps)+1)/2)
		errs := make([]error, len(next))
		var wg sync.WaitGroup
		for i := 0; i < len(next); i++ {
			if 2*i+1 == len(maps) {
				next[i] = maps[2*i] // odd leftover rides up a level
				continue
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				next[i], errs[i] = Compose(maps[2*i], maps[2*i+1])
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		maps = next
	}
	return maps[0], nil
}

// Resolver returns a mapping resolver backed by the executor cache: a
// direct mapping when one exists, otherwise a composition over the path
// found by pathFind (typically graph.ShortestPath). Only the absence of a
// direct mapping triggers the path fallback; real repository errors
// propagate unchanged.
func (e *Executor) Resolver(pathFind func(from, to gam.SourceID) []gam.SourceID) Resolver {
	return func(from, to gam.SourceID) (*Mapping, error) {
		m, err := e.Map(from, to)
		if err == nil {
			return m, nil
		}
		if !errors.Is(err, ErrNoMapping) {
			return nil, err
		}
		p := pathFind(from, to)
		if p == nil {
			return nil, fmt.Errorf("ops: no mapping or mapping path between sources %d and %d", from, to)
		}
		return e.MapPath(p)
	}
}
