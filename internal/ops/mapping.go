// Package ops implements GenMapper's high-level GAM operators (paper §4.2):
// the simple operations Map, Domain, Range, RestrictDomain and
// RestrictRange (Table 2), the Compose operation deriving new mappings by
// transitivity, and the GenerateView operation (Figure 5) that assembles
// tailored annotation views with AND/OR combination and per-target
// negation.
//
// Operators work on in-memory Mapping values fetched from the GAM
// repository; results of general interest (e.g. composed mappings) can be
// materialized back into the database with Materialize.
package ops

import (
	"errors"
	"fmt"
	"sort"

	"genmapper/internal/gam"
)

// ErrNoMapping reports that no mapping (in either direction) exists
// between two sources. Callers that fall back to path composition (e.g.
// Executor.Resolver) test for it with errors.Is to distinguish "nothing
// stored" from real repository failures.
var ErrNoMapping = errors.New("no mapping between sources")

// Mapping is the working representation of one source-level relationship
// with its object associations: the operator algebra's value type.
// From is the domain source, To the range source.
type Mapping struct {
	Rel    gam.SourceRelID // 0 for derived, not-yet-materialized mappings
	From   gam.SourceID
	To     gam.SourceID
	Type   gam.RelType
	Assocs []gam.Assoc
}

// Len returns the number of associations.
func (m *Mapping) Len() int { return len(m.Assocs) }

// ObjectSet is a set of object IDs used to restrict domains and ranges.
type ObjectSet map[gam.ObjectID]bool

// NewObjectSet builds a set from IDs.
func NewObjectSet(ids ...gam.ObjectID) ObjectSet {
	s := make(ObjectSet, len(ids))
	for _, id := range ids {
		s[id] = true
	}
	return s
}

// Sorted returns the set's IDs in ascending order.
func (s ObjectSet) Sorted() []gam.ObjectID {
	out := make([]gam.ObjectID, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Map implements the Map(S, T) operation of Table 2: it searches the
// database for an existing mapping between S and T and returns the
// corresponding object associations. Mappings stored in the opposite
// direction are flipped so that the result always has From = S.
func Map(repo *gam.Repo, s, t gam.SourceID) (*Mapping, error) {
	rel, reversed, err := repo.FindMapping(s, t)
	if err != nil {
		return nil, err
	}
	if rel == nil {
		return nil, fmt.Errorf("ops: %w: %d and %d", ErrNoMapping, s, t)
	}
	assocs, err := repo.Associations(rel.ID)
	if err != nil {
		return nil, err
	}
	return edgeMapping(s, t, rel, reversed, assocs), nil
}

// Domain implements Table 2's Domain(map): SELECT DISTINCT S FROM map.
func Domain(m *Mapping) []gam.ObjectID {
	seen := make(ObjectSet, len(m.Assocs))
	for _, a := range m.Assocs {
		seen[a.Object1] = true
	}
	return seen.Sorted()
}

// Range implements Table 2's Range(map): SELECT DISTINCT T FROM map.
func Range(m *Mapping) []gam.ObjectID {
	seen := make(ObjectSet, len(m.Assocs))
	for _, a := range m.Assocs {
		seen[a.Object2] = true
	}
	return seen.Sorted()
}

// RestrictDomain implements Table 2's RestrictDomain(map, s):
// SELECT * FROM map WHERE S in s. A nil set means no restriction.
func RestrictDomain(m *Mapping, s ObjectSet) *Mapping {
	if s == nil {
		return m.clone()
	}
	out := &Mapping{Rel: m.Rel, From: m.From, To: m.To, Type: m.Type}
	for _, a := range m.Assocs {
		if s[a.Object1] {
			out.Assocs = append(out.Assocs, a)
		}
	}
	return out
}

// RestrictRange implements Table 2's RestrictRange(map, t):
// SELECT * FROM map WHERE T in t. A nil set means no restriction.
func RestrictRange(m *Mapping, t ObjectSet) *Mapping {
	if t == nil {
		return m.clone()
	}
	out := &Mapping{Rel: m.Rel, From: m.From, To: m.To, Type: m.Type}
	for _, a := range m.Assocs {
		if t[a.Object2] {
			out.Assocs = append(out.Assocs, a)
		}
	}
	return out
}

func (m *Mapping) clone() *Mapping {
	cp := *m
	cp.Assocs = append([]gam.Assoc(nil), m.Assocs...)
	return &cp
}

// Invert swaps domain and range.
func Invert(m *Mapping) *Mapping {
	out := &Mapping{Rel: m.Rel, From: m.To, To: m.From, Type: m.Type}
	out.Assocs = make([]gam.Assoc, len(m.Assocs))
	for i, a := range m.Assocs {
		out.Assocs[i] = gam.Assoc{Object1: a.Object2, Object2: a.Object1, Evidence: a.Evidence}
	}
	return out
}

// Dedup removes duplicate (Object1, Object2) pairs, keeping the strongest
// evidence among duplicates. Unset evidence (0) denotes a curated fact and
// outranks any scored value — a derivation certain by facts must not be
// downgraded by a weaker scored derivation of the same pair; among scored
// values the highest wins. This ordering makes duplicate collapse agree
// with evidence strength and keeps multi-step composition independent of
// the grouping order (sequential fold vs. the executor's tree reduction).
func Dedup(m *Mapping) *Mapping {
	stronger := func(a, b float64) bool { // is a stronger than b?
		if b == 0 {
			return false // nothing beats a fact
		}
		return a == 0 || a > b
	}
	best := make(map[[2]gam.ObjectID]float64, len(m.Assocs))
	order := make([][2]gam.ObjectID, 0, len(m.Assocs))
	for _, a := range m.Assocs {
		key := [2]gam.ObjectID{a.Object1, a.Object2}
		ev, seen := best[key]
		if !seen {
			order = append(order, key)
			best[key] = a.Evidence
			continue
		}
		if stronger(a.Evidence, ev) {
			best[key] = a.Evidence
		}
	}
	out := &Mapping{Rel: m.Rel, From: m.From, To: m.To, Type: m.Type}
	out.Assocs = make([]gam.Assoc, len(order))
	for i, key := range order {
		out.Assocs[i] = gam.Assoc{Object1: key[0], Object2: key[1], Evidence: best[key]}
	}
	return out
}

// Compose derives a new mapping between m1.From and m2.To by transitivity
// of associations (paper §4.2): it joins on the shared middle source
// (m1.To must equal m2.From). Evidence values combine multiplicatively.
// An unset evidence (0, a curated fact) acts as the multiplicative
// identity, and a pair of unset evidences stays unset — but an explicitly
// asserted 1.0 is preserved as 1.0 rather than collapsed to "unset", so
// asserted certainty remains distinguishable from absence of evidence.
// Duplicate derived pairs collapse, keeping the strongest evidence.
func Compose(m1, m2 *Mapping) (*Mapping, error) {
	if m1.To != m2.From {
		return nil, fmt.Errorf("ops: cannot compose: mapping targets source %d but next mapping starts at %d", m1.To, m2.From)
	}
	// Hash join on the shared middle objects.
	byMiddle := make(map[gam.ObjectID][]gam.Assoc)
	for _, a := range m2.Assocs {
		byMiddle[a.Object1] = append(byMiddle[a.Object1], a)
	}
	out := &Mapping{From: m1.From, To: m2.To, Type: gam.RelComposed}
	for _, a1 := range m1.Assocs {
		for _, a2 := range byMiddle[a1.Object2] {
			var ev float64
			switch ev1, ev2 := a1.Evidence, a2.Evidence; {
			case ev1 == 0 && ev2 == 0:
				ev = 0 // both facts: the derived pair is a fact
			case ev1 == 0:
				ev = ev2
			case ev2 == 0:
				ev = ev1
			default:
				ev = ev1 * ev2
			}
			out.Assocs = append(out.Assocs, gam.Assoc{Object1: a1.Object1, Object2: a2.Object2, Evidence: ev})
		}
	}
	return Dedup(out), nil
}

// ComposePath folds Compose over a mapping path of two or more mappings
// connecting two sources (the "mapping path" input of the paper's Compose).
func ComposePath(maps ...*Mapping) (*Mapping, error) {
	if len(maps) == 0 {
		return nil, fmt.Errorf("ops: empty mapping path")
	}
	acc := maps[0].clone()
	for _, next := range maps[1:] {
		composed, err := Compose(acc, next)
		if err != nil {
			return nil, err
		}
		acc = composed
	}
	return acc, nil
}

// MapPath loads the mappings along a source path and composes them into a
// single mapping from path[0] to path[len-1]. A path of length 2 reduces
// to Map.
func MapPath(repo *gam.Repo, path []gam.SourceID) (*Mapping, error) {
	if len(path) < 2 {
		return nil, fmt.Errorf("ops: mapping path needs at least two sources, got %d", len(path))
	}
	maps := make([]*Mapping, 0, len(path)-1)
	for i := 0; i+1 < len(path); i++ {
		m, err := Map(repo, path[i], path[i+1])
		if err != nil {
			return nil, fmt.Errorf("ops: path step %d: %w", i, err)
		}
		maps = append(maps, m)
	}
	return ComposePath(maps...)
}

// Materialize stores a derived mapping in the central database as a
// Composed relationship (paper §2: "Results of such operators that are of
// general interest ... can be materialized in the central database").
// An existing Composed mapping between the same sources is replaced
// atomically: delete, re-create and insert run in one transaction, so a
// failure mid-refresh leaves the previously materialized mapping intact.
func Materialize(repo *gam.Repo, m *Mapping) (gam.SourceRelID, error) {
	rel, err := repo.ReplaceMapping(m.From, m.To, gam.RelComposed, m.Assocs)
	if err != nil {
		return 0, err
	}
	m.Rel = rel
	m.Type = gam.RelComposed
	return rel, nil
}

// MinEvidence filters associations below the threshold (the paper flags
// "mappings containing associations of reduced evidence" as needing
// user control; this operator implements that control point). Associations
// with unset evidence (0 = fact) always pass.
func MinEvidence(m *Mapping, threshold float64) *Mapping {
	out := &Mapping{Rel: m.Rel, From: m.From, To: m.To, Type: m.Type}
	for _, a := range m.Assocs {
		if a.Evidence == 0 || a.Evidence >= threshold {
			out.Assocs = append(out.Assocs, a)
		}
	}
	return out
}
