package ops

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"genmapper/internal/gam"
	"genmapper/internal/sqldb"
)

// fixture sets up the paper's running example: LocusLink genes annotated
// with GO terms, plus Unigene clusters mapped to LocusLink.
type fixture struct {
	repo    *gam.Repo
	locus   *gam.Source
	unigene *gam.Source
	gene    *gam.Source // GO stand-in
	loci    []gam.ObjectID
	clus    []gam.ObjectID
	terms   []gam.ObjectID
	relLG   gam.SourceRelID // LocusLink <-> GO
	relUL   gam.SourceRelID // Unigene  <-> LocusLink
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	repo, err := gam.Open(sqldb.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{repo: repo}
	f.locus, _, _ = repo.EnsureSource(gam.Source{Name: "LocusLink", Content: gam.ContentGene})
	f.unigene, _, _ = repo.EnsureSource(gam.Source{Name: "Unigene", Content: gam.ContentGene})
	f.gene, _, _ = repo.EnsureSource(gam.Source{Name: "GO", Structure: gam.StructureNetwork})

	f.loci, _, err = repo.EnsureObjects(f.locus.ID, []gam.ObjectSpec{
		{Accession: "353"}, {Accession: "354"}, {Accession: "355"}, {Accession: "356"},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.clus, _, err = repo.EnsureObjects(f.unigene.ID, []gam.ObjectSpec{
		{Accession: "Hs.1"}, {Accession: "Hs.2"}, {Accession: "Hs.3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.terms, _, err = repo.EnsureObjects(f.gene.ID, []gam.ObjectSpec{
		{Accession: "GO:1"}, {Accession: "GO:2"}, {Accession: "GO:3"},
	})
	if err != nil {
		t.Fatal(err)
	}

	f.relLG, _, _ = repo.EnsureSourceRel(f.locus.ID, f.gene.ID, gam.RelFact)
	// locus 353 -> GO:1, GO:2 ; locus 354 -> GO:2 ; locus 355 -> GO:3
	// locus 356 has no GO annotation.
	_, err = repo.AddAssociations(f.relLG, []gam.Assoc{
		{Object1: f.loci[0], Object2: f.terms[0]},
		{Object1: f.loci[0], Object2: f.terms[1]},
		{Object1: f.loci[1], Object2: f.terms[1]},
		{Object1: f.loci[2], Object2: f.terms[2]},
	}, false)
	if err != nil {
		t.Fatal(err)
	}

	f.relUL, _, _ = repo.EnsureSourceRel(f.unigene.ID, f.locus.ID, gam.RelFact)
	// Hs.1 -> 353 ; Hs.2 -> 354 ; Hs.3 -> 356
	_, err = repo.AddAssociations(f.relUL, []gam.Assoc{
		{Object1: f.clus[0], Object2: f.loci[0]},
		{Object1: f.clus[1], Object2: f.loci[1]},
		{Object1: f.clus[2], Object2: f.loci[3]},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestMapDirect(t *testing.T) {
	f := newFixture(t)
	m, err := Map(f.repo, f.locus.ID, f.gene.ID)
	if err != nil {
		t.Fatal(err)
	}
	if m.From != f.locus.ID || m.To != f.gene.ID || m.Len() != 4 {
		t.Fatalf("Map = %+v", m)
	}
}

func TestMapReversed(t *testing.T) {
	f := newFixture(t)
	// The mapping is stored as LocusLink->GO; asking for GO->LocusLink
	// must flip the associations.
	m, err := Map(f.repo, f.gene.ID, f.locus.ID)
	if err != nil {
		t.Fatal(err)
	}
	if m.From != f.gene.ID || m.To != f.locus.ID {
		t.Fatalf("reversed Map endpoints = %d -> %d", m.From, m.To)
	}
	dom := Domain(m)
	if len(dom) != 3 {
		t.Fatalf("reversed domain = %v (want the 3 GO terms)", dom)
	}
}

func TestMapMissing(t *testing.T) {
	f := newFixture(t)
	if _, err := Map(f.repo, f.unigene.ID, f.gene.ID); err == nil {
		t.Fatal("expected no-mapping error for Unigene<->GO")
	}
}

func TestDomainRange(t *testing.T) {
	f := newFixture(t)
	m, _ := Map(f.repo, f.locus.ID, f.gene.ID)
	dom := Domain(m)
	if len(dom) != 3 { // 353, 354, 355 (356 unmapped)
		t.Errorf("Domain = %v", dom)
	}
	rng := Range(m)
	if len(rng) != 3 {
		t.Errorf("Range = %v", rng)
	}
}

func TestRestrictDomainRange(t *testing.T) {
	f := newFixture(t)
	m, _ := Map(f.repo, f.locus.ID, f.gene.ID)
	rd := RestrictDomain(m, NewObjectSet(f.loci[0]))
	if rd.Len() != 2 {
		t.Errorf("RestrictDomain = %d assocs", rd.Len())
	}
	rr := RestrictRange(m, NewObjectSet(f.terms[1]))
	if rr.Len() != 2 { // 353->GO:2, 354->GO:2
		t.Errorf("RestrictRange = %d assocs", rr.Len())
	}
	// Table 2's example: RestrictDomain(map, {s1}) = {s1<->t1}.
	both := RestrictRange(RestrictDomain(m, NewObjectSet(f.loci[0])), NewObjectSet(f.terms[0]))
	if both.Len() != 1 || both.Assocs[0].Object1 != f.loci[0] || both.Assocs[0].Object2 != f.terms[0] {
		t.Errorf("combined restriction = %+v", both.Assocs)
	}
	// nil set = no restriction, and the result is an independent copy.
	cp := RestrictDomain(m, nil)
	if cp.Len() != m.Len() {
		t.Errorf("nil restriction changed size")
	}
	cp.Assocs[0].Object1 = 999
	if m.Assocs[0].Object1 == 999 {
		t.Error("RestrictDomain(nil) aliases the input")
	}
}

func TestCompose(t *testing.T) {
	f := newFixture(t)
	ul, _ := Map(f.repo, f.unigene.ID, f.locus.ID)
	lg, _ := Map(f.repo, f.locus.ID, f.gene.ID)
	// The paper's example: Unigene<->GO = Unigene<->LocusLink o LocusLink<->GO.
	ug, err := Compose(ul, lg)
	if err != nil {
		t.Fatal(err)
	}
	if ug.From != f.unigene.ID || ug.To != f.gene.ID || ug.Type != gam.RelComposed {
		t.Fatalf("composed mapping = %+v", ug)
	}
	// Hs.1 -> 353 -> {GO:1, GO:2}; Hs.2 -> 354 -> {GO:2}; Hs.3 -> 356 -> {}.
	if ug.Len() != 3 {
		t.Fatalf("composed associations = %d, want 3", ug.Len())
	}
	dom := Domain(ug)
	if len(dom) != 2 {
		t.Errorf("composed domain = %v", dom)
	}
}

func TestComposeMismatch(t *testing.T) {
	f := newFixture(t)
	lg, _ := Map(f.repo, f.locus.ID, f.gene.ID)
	if _, err := Compose(lg, lg); err == nil {
		t.Fatal("mismatched compose accepted")
	}
}

func TestComposeEvidence(t *testing.T) {
	a := &Mapping{From: 1, To: 2, Assocs: []gam.Assoc{{Object1: 10, Object2: 20, Evidence: 0.5}}}
	b := &Mapping{From: 2, To: 3, Assocs: []gam.Assoc{{Object1: 20, Object2: 30, Evidence: 0.4}}}
	c, err := Compose(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Assocs) != 1 || c.Assocs[0].Evidence != 0.2 {
		t.Fatalf("evidence = %+v", c.Assocs)
	}
	// Unset evidence treated as certain.
	b.Assocs[0].Evidence = 0
	c, _ = Compose(a, b)
	if c.Assocs[0].Evidence != 0.5 {
		t.Fatalf("evidence with unset = %v", c.Assocs[0].Evidence)
	}
	// Both unset stays unset.
	a.Assocs[0].Evidence = 0
	c, _ = Compose(a, b)
	if c.Assocs[0].Evidence != 0 {
		t.Fatalf("both-unset evidence = %v", c.Assocs[0].Evidence)
	}
}

func TestComposeDedup(t *testing.T) {
	// Two distinct middle objects leading to the same (s, t) pair collapse,
	// keeping the stronger evidence.
	a := &Mapping{From: 1, To: 2, Assocs: []gam.Assoc{
		{Object1: 10, Object2: 20, Evidence: 0.9},
		{Object1: 10, Object2: 21, Evidence: 0.3},
	}}
	b := &Mapping{From: 2, To: 3, Assocs: []gam.Assoc{
		{Object1: 20, Object2: 30},
		{Object1: 21, Object2: 30},
	}}
	c, err := Compose(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Assocs) != 1 {
		t.Fatalf("dedup failed: %+v", c.Assocs)
	}
	if c.Assocs[0].Evidence != 0.9 {
		t.Fatalf("kept evidence = %v, want the stronger 0.9", c.Assocs[0].Evidence)
	}
}

func TestMapPath(t *testing.T) {
	f := newFixture(t)
	m, err := MapPath(f.repo, []gam.SourceID{f.unigene.ID, f.locus.ID, f.gene.ID})
	if err != nil {
		t.Fatal(err)
	}
	if m.From != f.unigene.ID || m.To != f.gene.ID || m.Len() != 3 {
		t.Fatalf("MapPath = %+v", m)
	}
	// Length-2 path is just Map.
	m2, err := MapPath(f.repo, []gam.SourceID{f.locus.ID, f.gene.ID})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Len() != 4 {
		t.Fatalf("length-2 MapPath = %d", m2.Len())
	}
	if _, err := MapPath(f.repo, []gam.SourceID{f.locus.ID}); err == nil {
		t.Fatal("single-source path accepted")
	}
}

func TestInvert(t *testing.T) {
	f := newFixture(t)
	m, _ := Map(f.repo, f.locus.ID, f.gene.ID)
	inv := Invert(m)
	if inv.From != f.gene.ID || inv.To != f.locus.ID || inv.Len() != m.Len() {
		t.Fatalf("Invert = %+v", inv)
	}
	back := Invert(inv)
	for i := range m.Assocs {
		if back.Assocs[i] != m.Assocs[i] {
			t.Fatalf("double inversion differs at %d", i)
		}
	}
}

func TestMaterialize(t *testing.T) {
	f := newFixture(t)
	ul, _ := Map(f.repo, f.unigene.ID, f.locus.ID)
	lg, _ := Map(f.repo, f.locus.ID, f.gene.ID)
	ug, _ := Compose(ul, lg)

	rel, err := Materialize(f.repo, ug)
	if err != nil {
		t.Fatal(err)
	}
	if rel == 0 || ug.Rel != rel {
		t.Fatalf("materialize rel = %d", rel)
	}
	// The materialized mapping is now found by Map.
	found, err := Map(f.repo, f.unigene.ID, f.gene.ID)
	if err != nil {
		t.Fatal(err)
	}
	if found.Len() != 3 || found.Type != gam.RelComposed {
		t.Fatalf("materialized Map = %+v", found)
	}
	// Re-materializing replaces rather than duplicates.
	rel2, err := Materialize(f.repo, ug)
	if err != nil {
		t.Fatal(err)
	}
	found2, _ := Map(f.repo, f.unigene.ID, f.gene.ID)
	if found2.Len() != 3 {
		t.Fatalf("re-materialize duplicated: %d assocs", found2.Len())
	}
	if rel2 == rel {
		t.Fatal("refresh should assign a fresh mapping ID")
	}
}

func TestComposeEvidenceTable(t *testing.T) {
	// Evidence combination rules: unset (0) is a curated fact and acts as
	// the multiplicative identity; two facts stay a fact; an explicitly
	// asserted 1.0 survives as 1.0 instead of collapsing to "unset".
	cases := []struct {
		name     string
		ev1, ev2 float64
		want     float64
	}{
		{"both unset", 0, 0, 0},
		{"unset left", 0, 0.4, 0.4},
		{"unset right", 0.4, 0, 0.4},
		{"explicit certain pair", 1.0, 1.0, 1.0},
		{"explicit certain left", 1.0, 0.4, 0.4},
		{"explicit certain with unset", 1.0, 0, 1.0},
		{"fractional", 0.5, 0.4, 0.2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := &Mapping{From: 1, To: 2, Assocs: []gam.Assoc{{Object1: 10, Object2: 20, Evidence: tc.ev1}}}
			b := &Mapping{From: 2, To: 3, Assocs: []gam.Assoc{{Object1: 20, Object2: 30, Evidence: tc.ev2}}}
			c, err := Compose(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if len(c.Assocs) != 1 || c.Assocs[0].Evidence != tc.want {
				t.Fatalf("Compose(%v, %v) evidence = %+v, want %v", tc.ev1, tc.ev2, c.Assocs, tc.want)
			}
		})
	}
}

func TestMaterializeAtomicOnFailure(t *testing.T) {
	f := newFixture(t)
	ul, _ := Map(f.repo, f.unigene.ID, f.locus.ID)
	lg, _ := Map(f.repo, f.locus.ID, f.gene.ID)
	ug, _ := Compose(ul, lg)
	if _, err := Materialize(f.repo, ug); err != nil {
		t.Fatal(err)
	}
	want, err := Map(f.repo, f.unigene.ID, f.gene.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Inject a failure between the delete of the old mapping and the
	// commit of its replacement: the refresh must roll back and leave the
	// previously materialized mapping fully intact.
	for _, stage := range []string{"after-delete", "after-insert"} {
		f.repo.SetReplaceMappingHook(func(s string) error {
			if s == stage {
				return fmt.Errorf("injected %s failure", s)
			}
			return nil
		})
		broken := ug.clone()
		broken.Assocs = broken.Assocs[:1]
		if _, err := Materialize(f.repo, broken); err == nil {
			t.Fatalf("%s: injected failure not reported", stage)
		}
		f.repo.SetReplaceMappingHook(nil)

		got, err := Map(f.repo, f.unigene.ID, f.gene.ID)
		if err != nil {
			t.Fatalf("%s: materialized mapping destroyed by failed refresh: %v", stage, err)
		}
		if got.Rel != want.Rel || got.Len() != want.Len() {
			t.Fatalf("%s: mapping after failed refresh = rel %d / %d assocs, want rel %d / %d",
				stage, got.Rel, got.Len(), want.Rel, want.Len())
		}
		wantSet := make(map[[2]gam.ObjectID]bool, len(want.Assocs))
		for _, a := range want.Assocs {
			wantSet[[2]gam.ObjectID{a.Object1, a.Object2}] = true
		}
		for _, a := range got.Assocs {
			if !wantSet[[2]gam.ObjectID{a.Object1, a.Object2}] {
				t.Fatalf("%s: unexpected association %+v after rollback", stage, a)
			}
		}
	}

	// After the failed refreshes, a clean re-materialize still works.
	if _, err := Materialize(f.repo, ug); err != nil {
		t.Fatal(err)
	}
}

func TestMinEvidence(t *testing.T) {
	m := &Mapping{Assocs: []gam.Assoc{
		{Object1: 1, Object2: 2, Evidence: 0.9},
		{Object1: 1, Object2: 3, Evidence: 0.2},
		{Object1: 2, Object2: 3}, // fact: passes any threshold
	}}
	out := MinEvidence(m, 0.5)
	if len(out.Assocs) != 2 {
		t.Fatalf("MinEvidence = %+v", out.Assocs)
	}
}

// ---------------------------------------------------------------------------
// GenerateView

func TestGenerateViewOR(t *testing.T) {
	f := newFixture(t)
	v, err := GenerateView(f.repo, f.locus.ID, nil,
		[]TargetSpec{{Source: f.gene.ID}}, CombineOR, nil)
	if err != nil {
		t.Fatal(err)
	}
	// OR = left outer join: all 4 loci appear; 353 twice (two GO terms).
	if len(v.Rows) != 5 {
		t.Fatalf("OR view rows = %d, want 5", len(v.Rows))
	}
	if got := v.SourceObjects(); len(got) != 4 {
		t.Fatalf("OR view source objects = %v", got)
	}
	// Locus 356 must appear with a NULL target.
	foundNull := false
	for _, r := range v.Rows {
		if r[0] == f.loci[3] && r[1] == 0 {
			foundNull = true
		}
	}
	if !foundNull {
		t.Error("unannotated locus lost its NULL row")
	}
}

func TestGenerateViewAND(t *testing.T) {
	f := newFixture(t)
	v, err := GenerateView(f.repo, f.locus.ID, nil,
		[]TargetSpec{{Source: f.gene.ID}}, CombineAND, nil)
	if err != nil {
		t.Fatal(err)
	}
	// AND = inner join: locus 356 disappears.
	if len(v.Rows) != 4 {
		t.Fatalf("AND view rows = %d, want 4", len(v.Rows))
	}
	for _, r := range v.Rows {
		if r[1] == 0 {
			t.Errorf("AND view contains NULL row %v", r)
		}
	}
}

func TestGenerateViewRestrictedSource(t *testing.T) {
	f := newFixture(t)
	v, err := GenerateView(f.repo, f.locus.ID, NewObjectSet(f.loci[0], f.loci[1]),
		[]TargetSpec{{Source: f.gene.ID}}, CombineOR, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Rows) != 3 { // 353 x2, 354 x1
		t.Fatalf("restricted view rows = %d", len(v.Rows))
	}
}

func TestGenerateViewRestrictedTarget(t *testing.T) {
	f := newFixture(t)
	v, err := GenerateView(f.repo, f.locus.ID, nil,
		[]TargetSpec{{Source: f.gene.ID, Restrict: NewObjectSet(f.terms[1])}}, CombineAND, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Only loci annotated with GO:2 survive: 353 and 354.
	if len(v.Rows) != 2 {
		t.Fatalf("target-restricted rows = %v", v.Rows)
	}
	for _, r := range v.Rows {
		if r[1] != f.terms[1] {
			t.Errorf("row %v has target outside restriction", r)
		}
	}
}

func TestGenerateViewNegation(t *testing.T) {
	f := newFixture(t)
	// "Not annotated with GO:2": loci 355 (GO:3 only) and 356 (nothing).
	v, err := GenerateView(f.repo, f.locus.ID, nil,
		[]TargetSpec{{Source: f.gene.ID, Restrict: NewObjectSet(f.terms[1]), Negate: true}},
		CombineAND, nil)
	if err != nil {
		t.Fatal(err)
	}
	src := v.SourceObjects()
	if len(src) != 2 || src[0] != f.loci[2] || src[1] != f.loci[3] {
		t.Fatalf("negated view sources = %v, want [355 356]", src)
	}
	// Figure 5 keeps the associations the negated objects do have: locus
	// 355 shows GO:3, locus 356 shows NULL.
	for _, r := range v.Rows {
		switch r[0] {
		case f.loci[2]:
			if r[1] != f.terms[2] {
				t.Errorf("locus 355 target = %v, want GO:3", r[1])
			}
		case f.loci[3]:
			if r[1] != 0 {
				t.Errorf("locus 356 target = %v, want NULL", r[1])
			}
		}
	}
}

func TestGenerateViewMultiTargetAND(t *testing.T) {
	f := newFixture(t)
	// Loci that have a GO term AND a Unigene cluster.
	// Unigene mapping is stored Unigene->LocusLink; view target resolution
	// must handle the reversed direction.
	v, err := GenerateView(f.repo, f.locus.ID, nil,
		[]TargetSpec{{Source: f.gene.ID}, {Source: f.unigene.ID}}, CombineAND, nil)
	if err != nil {
		t.Fatal(err)
	}
	src := v.SourceObjects()
	// 353: GO yes, Unigene yes. 354: yes, yes. 355: GO yes, Unigene no.
	// 356: GO no. -> {353, 354}
	if len(src) != 2 || src[0] != f.loci[0] || src[1] != f.loci[1] {
		t.Fatalf("AND multi-target sources = %v", src)
	}
	if len(v.Targets) != 2 {
		t.Fatalf("view targets = %v", v.Targets)
	}
}

func TestGenerateViewExplicitPath(t *testing.T) {
	f := newFixture(t)
	// Annotate Unigene clusters with GO terms through the explicit
	// Unigene -> LocusLink -> GO mapping path (no direct mapping exists).
	v, err := GenerateView(f.repo, f.unigene.ID, nil,
		[]TargetSpec{{Source: f.gene.ID, Path: []gam.SourceID{f.unigene.ID, f.locus.ID, f.gene.ID}}},
		CombineOR, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Hs.1 -> GO:1, GO:2 ; Hs.2 -> GO:2 ; Hs.3 -> NULL.
	if len(v.Rows) != 4 {
		t.Fatalf("path view rows = %v", v.Rows)
	}
	// Bad path endpoints rejected.
	_, err = GenerateView(f.repo, f.unigene.ID, nil,
		[]TargetSpec{{Source: f.gene.ID, Path: []gam.SourceID{f.locus.ID, f.gene.ID}}},
		CombineOR, nil)
	if err == nil {
		t.Fatal("mismatched path endpoints accepted")
	}
}

func TestGenerateViewMinEvidence(t *testing.T) {
	f := newFixture(t)
	// Add a similarity mapping LocusLink -> Unigene with mixed evidence.
	rel, _, _ := f.repo.EnsureSourceRel(f.locus.ID, f.unigene.ID, gam.RelSimilarity)
	f.repo.AddAssociations(rel, []gam.Assoc{
		{Object1: f.loci[0], Object2: f.clus[0], Evidence: 0.95},
		{Object1: f.loci[1], Object2: f.clus[1], Evidence: 0.40},
		{Object1: f.loci[2], Object2: f.clus[2]}, // fact: always passes
	}, false)
	// Delete the stored fact mapping so the similarity one is used.
	facts, _, _ := f.repo.FindRel(f.unigene.ID, f.locus.ID, gam.RelFact)
	if facts != 0 {
		f.repo.DeleteMapping(facts)
	}

	withThreshold, err := GenerateView(f.repo, f.locus.ID, nil,
		[]TargetSpec{{Source: f.unigene.ID, MinEvidence: 0.5}}, CombineAND, nil)
	if err != nil {
		t.Fatal(err)
	}
	src := withThreshold.SourceObjects()
	// 0.40 association dropped: loci[1] disappears; loci[0] (0.95) and
	// loci[2] (fact) stay.
	if len(src) != 2 || src[0] != f.loci[0] || src[1] != f.loci[2] {
		t.Fatalf("thresholded sources = %v", src)
	}

	without, err := GenerateView(f.repo, f.locus.ID, nil,
		[]TargetSpec{{Source: f.unigene.ID}}, CombineAND, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(without.SourceObjects()) != 3 {
		t.Fatalf("unthresholded sources = %v", without.SourceObjects())
	}
}

func TestGenerateViewNoTargets(t *testing.T) {
	f := newFixture(t)
	if _, err := GenerateView(f.repo, f.locus.ID, nil, nil, CombineOR, nil); err == nil {
		t.Fatal("empty target list accepted")
	}
}

// ---------------------------------------------------------------------------
// Property-based tests

func randomMapping(rng *rand.Rand, from, to gam.SourceID, nd, nr int) *Mapping {
	m := &Mapping{From: from, To: to, Type: gam.RelFact}
	n := rng.Intn(30)
	for i := 0; i < n; i++ {
		m.Assocs = append(m.Assocs, gam.Assoc{
			Object1: gam.ObjectID(rng.Intn(nd) + 1),
			Object2: gam.ObjectID(rng.Intn(nr) + 1000),
		})
	}
	return Dedup(m)
}

func TestRestrictDomainAlgebraProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomMapping(rng, 1, 2, 10, 10)
		sub := make(ObjectSet)
		for i := 0; i < 5; i++ {
			sub[gam.ObjectID(rng.Intn(10)+1)] = true
		}
		restricted := RestrictDomain(m, sub)
		// Domain(RestrictDomain(m, s)) ⊆ s
		for _, id := range Domain(restricted) {
			if !sub[id] {
				return false
			}
		}
		// RestrictDomain(m, Domain(m)) = m
		full := RestrictDomain(m, NewObjectSet(Domain(m)...))
		return full.Len() == m.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestComposeAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMapping(rng, 1, 2, 8, 8)
		b := randomMapping(rng, 2, 3, 8, 8)
		c := randomMapping(rng, 3, 4, 8, 8)
		// Shift b and c object spaces so they chain: b's domain must live
		// in a's range space.
		for i := range b.Assocs {
			b.Assocs[i].Object1 += 999 // a's range starts at 1000
		}
		for i := range c.Assocs {
			c.Assocs[i].Object1 += 999
		}
		ab, err := Compose(a, b)
		if err != nil {
			return false
		}
		abc1, err := Compose(ab, c)
		if err != nil {
			return false
		}
		bc, err := Compose(b, c)
		if err != nil {
			return false
		}
		abc2, err := Compose(a, bc)
		if err != nil {
			return false
		}
		// Same association sets (evidence may differ in float rounding but
		// all-unset here, so exact equality of pairs).
		set := func(m *Mapping) map[[2]gam.ObjectID]bool {
			s := make(map[[2]gam.ObjectID]bool)
			for _, x := range m.Assocs {
				s[[2]gam.ObjectID{x.Object1, x.Object2}] = true
			}
			return s
		}
		s1, s2 := set(abc1), set(abc2)
		if len(s1) != len(s2) {
			return false
		}
		for k := range s1 {
			if !s2[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestComposeIdentityProperty(t *testing.T) {
	// Composing with an identity mapping over the domain yields the
	// original mapping.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomMapping(rng, 2, 3, 8, 8)
		ident := &Mapping{From: 1, To: 2}
		for i := 1; i <= 8; i++ {
			ident.Assocs = append(ident.Assocs, gam.Assoc{Object1: gam.ObjectID(i), Object2: gam.ObjectID(i)})
		}
		out, err := Compose(ident, m)
		if err != nil {
			return false
		}
		return out.Len() == m.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// referenceGenerateView is a deliberately naive nested-loop implementation
// of Figure 5 used to cross-check the production implementation.
func referenceGenerateView(repo *gam.Repo, s gam.SourceID, sSet ObjectSet, targets []TargetSpec, mode Combine) (*View, error) {
	if sSet == nil {
		objs, err := repo.ObjectsBySource(s)
		if err != nil {
			return nil, err
		}
		sSet = make(ObjectSet)
		for _, o := range objs {
			sSet[o.ID] = true
		}
	}
	rows := [][]gam.ObjectID{}
	for _, id := range sSet.Sorted() {
		rows = append(rows, []gam.ObjectID{id})
	}
	view := &View{Source: s}
	for _, tgt := range targets {
		view.Targets = append(view.Targets, tgt.Source)
		var mi *Mapping
		var err error
		if len(tgt.Path) > 0 {
			mi, err = MapPath(repo, tgt.Path)
		} else {
			mi, err = Map(repo, s, tgt.Source)
		}
		if err != nil {
			return nil, err
		}
		pairs := map[gam.ObjectID]map[gam.ObjectID]bool{}
		for _, a := range mi.Assocs {
			if !sSet[a.Object1] {
				continue
			}
			if tgt.Restrict != nil && !tgt.Restrict[a.Object2] {
				continue
			}
			if pairs[a.Object1] == nil {
				pairs[a.Object1] = map[gam.ObjectID]bool{}
			}
			pairs[a.Object1][a.Object2] = true
		}
		if tgt.Negate {
			negPairs := map[gam.ObjectID]map[gam.ObjectID]bool{}
			for id := range sSet {
				if pairs[id] != nil {
					continue
				}
				negPairs[id] = map[gam.ObjectID]bool{}
				for _, a := range mi.Assocs {
					if a.Object1 == id {
						negPairs[id][a.Object2] = true
					}
				}
				if len(negPairs[id]) == 0 {
					negPairs[id][0] = true
				}
			}
			pairs = negPairs
		}
		var next [][]gam.ObjectID
		for _, row := range rows {
			match := pairs[row[0]]
			if len(match) == 0 {
				if mode == CombineAND {
					continue
				}
				next = append(next, append(append([]gam.ObjectID{}, row...), 0))
				continue
			}
			tgtIDs := make([]gam.ObjectID, 0, len(match))
			for id := range match {
				tgtIDs = append(tgtIDs, id)
			}
			for i := 1; i < len(tgtIDs); i++ {
				for j := i; j > 0 && tgtIDs[j] < tgtIDs[j-1]; j-- {
					tgtIDs[j], tgtIDs[j-1] = tgtIDs[j-1], tgtIDs[j]
				}
			}
			for _, tid := range tgtIDs {
				next = append(next, append(append([]gam.ObjectID{}, row...), tid))
			}
		}
		rows = next
	}
	for _, r := range rows {
		view.Rows = append(view.Rows, ViewRow(r))
	}
	sortViewRows(view.Rows)
	return view, nil
}

func TestGenerateViewMatchesReference(t *testing.T) {
	f := newFixture(t)
	combos := []struct {
		targets []TargetSpec
		mode    Combine
	}{
		{[]TargetSpec{{Source: f.gene.ID}}, CombineOR},
		{[]TargetSpec{{Source: f.gene.ID}}, CombineAND},
		{[]TargetSpec{{Source: f.gene.ID}, {Source: f.unigene.ID}}, CombineOR},
		{[]TargetSpec{{Source: f.gene.ID}, {Source: f.unigene.ID}}, CombineAND},
		{[]TargetSpec{{Source: f.gene.ID, Negate: true}}, CombineOR},
		{[]TargetSpec{{Source: f.gene.ID, Restrict: NewObjectSet(f.terms[1])}, {Source: f.unigene.ID, Negate: true}}, CombineAND},
	}
	for ci, combo := range combos {
		got, err := GenerateView(f.repo, f.locus.ID, nil, combo.targets, combo.mode, nil)
		if err != nil {
			t.Fatalf("combo %d: %v", ci, err)
		}
		want, err := referenceGenerateView(f.repo, f.locus.ID, nil, combo.targets, combo.mode)
		if err != nil {
			t.Fatalf("combo %d reference: %v", ci, err)
		}
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("combo %d: %d rows vs reference %d\n got: %v\nwant: %v",
				ci, len(got.Rows), len(want.Rows), got.Rows, want.Rows)
		}
		for i := range got.Rows {
			for j := range got.Rows[i] {
				if got.Rows[i][j] != want.Rows[i][j] {
					t.Fatalf("combo %d row %d: %v vs reference %v", ci, i, got.Rows[i], want.Rows[i])
				}
			}
		}
	}
}

func TestGenerateViewRandomizedAgainstReference(t *testing.T) {
	f := newFixture(t)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		var sSet ObjectSet
		if rng.Intn(2) == 0 {
			sSet = make(ObjectSet)
			for _, id := range f.loci {
				if rng.Intn(2) == 0 {
					sSet[id] = true
				}
			}
			if len(sSet) == 0 {
				sSet[f.loci[0]] = true
			}
		}
		var targets []TargetSpec
		for _, src := range []gam.SourceID{f.gene.ID, f.unigene.ID} {
			if rng.Intn(2) == 0 {
				continue
			}
			spec := TargetSpec{Source: src, Negate: rng.Intn(3) == 0}
			targets = append(targets, spec)
		}
		if len(targets) == 0 {
			targets = []TargetSpec{{Source: f.gene.ID}}
		}
		mode := Combine(rng.Intn(2))
		got, err := GenerateView(f.repo, f.locus.ID, sSet, targets, mode, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := referenceGenerateView(f.repo, f.locus.ID, sSet, targets, mode)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got.Rows) != fmt.Sprint(want.Rows) {
			t.Fatalf("trial %d diverged:\n got %v\nwant %v", trial, got.Rows, want.Rows)
		}
	}
}
