package ops

import (
	"fmt"
	"sync"
	"testing"

	"genmapper/internal/gam"
	"genmapper/internal/sqldb"
)

// chainFixture builds a linear chain of n sources S0 -> S1 -> ... -> Sn-1
// with objPer objects each and a Fact mapping between neighbours. Object i
// of a source maps to objects i and (i+3)%objPer of the next, with a mix
// of unset and fractional evidence.
type chainFixture struct {
	repo    *gam.Repo
	sources []*gam.Source
	objs    [][]gam.ObjectID
}

func newChainFixture(t testing.TB, n, objPer int) *chainFixture {
	t.Helper()
	repo, err := gam.Open(sqldb.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	f := &chainFixture{repo: repo}
	for i := 0; i < n; i++ {
		src, _, err := repo.EnsureSource(gam.Source{Name: fmt.Sprintf("S%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		specs := make([]gam.ObjectSpec, objPer)
		for j := range specs {
			specs[j] = gam.ObjectSpec{Accession: fmt.Sprintf("s%d-o%d", i, j)}
		}
		ids, _, err := repo.EnsureObjects(src.ID, specs)
		if err != nil {
			t.Fatal(err)
		}
		f.sources = append(f.sources, src)
		f.objs = append(f.objs, ids)
	}
	for i := 0; i+1 < n; i++ {
		rel, _, err := repo.EnsureSourceRel(f.sources[i].ID, f.sources[i+1].ID, gam.RelFact)
		if err != nil {
			t.Fatal(err)
		}
		var assocs []gam.Assoc
		for j := 0; j < objPer; j++ {
			ev := 0.0
			if j%2 == 1 {
				ev = 0.5 + float64(j%5)/10
			}
			assocs = append(assocs,
				gam.Assoc{Object1: f.objs[i][j], Object2: f.objs[i+1][j], Evidence: ev},
				gam.Assoc{Object1: f.objs[i][j], Object2: f.objs[i+1][(j+3)%objPer]})
		}
		if _, err := repo.AddAssociations(rel, assocs, false); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func (f *chainFixture) path() []gam.SourceID {
	out := make([]gam.SourceID, len(f.sources))
	for i, s := range f.sources {
		out[i] = s.ID
	}
	return out
}

// assocSet reduces a mapping to its set of (Object1, Object2) pairs.
func assocSet(m *Mapping) map[[2]gam.ObjectID]float64 {
	out := make(map[[2]gam.ObjectID]float64, len(m.Assocs))
	for _, a := range m.Assocs {
		out[[2]gam.ObjectID{a.Object1, a.Object2}] = a.Evidence
	}
	return out
}

func TestExecutorMapMatchesOps(t *testing.T) {
	f := newChainFixture(t, 3, 10)
	e := NewExecutor(f.repo)
	for _, dir := range [][2]int{{0, 1}, {1, 0}} { // stored and reversed
		want, err := Map(f.repo, f.sources[dir[0]].ID, f.sources[dir[1]].ID)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Map(f.sources[dir[0]].ID, f.sources[dir[1]].ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.From != want.From || got.To != want.To || len(got.Assocs) != len(want.Assocs) {
			t.Fatalf("executor Map %v = %+v, want %+v", dir, got, want)
		}
		ws, gs := assocSet(want), assocSet(got)
		for k, v := range ws {
			if gs[k] != v {
				t.Fatalf("executor Map %v: pair %v evidence %v, want %v", dir, k, gs[k], v)
			}
		}
	}
}

func TestExecutorMapPathMatchesSequential(t *testing.T) {
	for _, hops := range []int{2, 3, 4, 6} {
		f := newChainFixture(t, hops+1, 12)
		e := NewExecutor(f.repo)
		want, err := MapPath(f.repo, f.path())
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.MapPath(f.path())
		if err != nil {
			t.Fatal(err)
		}
		if got.From != want.From || got.To != want.To {
			t.Fatalf("%d hops: endpoints %d->%d, want %d->%d", hops, got.From, got.To, want.From, want.To)
		}
		ws, gs := assocSet(want), assocSet(got)
		if len(ws) != len(gs) {
			t.Fatalf("%d hops: %d pairs, want %d", hops, len(gs), len(ws))
		}
		for k, v := range ws {
			gv, ok := gs[k]
			if !ok || gv != v {
				t.Fatalf("%d hops: pair %v = %v, want %v", hops, k, gv, v)
			}
		}
		// A second run must be answered from the path cache.
		st := e.Stats()
		if _, err := e.MapPath(f.path()); err != nil {
			t.Fatal(err)
		}
		st2 := e.Stats()
		if st2.Hits != st.Hits+1 || st2.Misses != st.Misses {
			t.Fatalf("%d hops: warm run stats %+v -> %+v, want one new hit", hops, st, st2)
		}
	}
}

func TestExecutorCacheCounters(t *testing.T) {
	f := newChainFixture(t, 4, 8)
	e := NewExecutor(f.repo)
	if _, err := e.MapPath(f.path()); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	// Cold: one path miss + three edge misses, zero hits.
	if st.Hits != 0 || st.Misses != 4 {
		t.Fatalf("cold stats = %+v, want 0 hits / 4 misses", st)
	}
	if st.Entries != 4 {
		t.Fatalf("cold entries = %d, want 4 (3 edges + 1 path)", st.Entries)
	}
	// An edge of the cached path is also served warm.
	if _, err := e.Map(f.sources[0].ID, f.sources[1].ID); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if st.Hits != 1 || st.Misses != 4 {
		t.Fatalf("edge reuse stats = %+v, want 1 hit / 4 misses", st)
	}
}

func TestExecutorCacheInvalidationOnMaterialize(t *testing.T) {
	f := newChainFixture(t, 3, 6)
	e := NewExecutor(f.repo)
	path := f.path()
	before, err := e.MapPath(path)
	if err != nil {
		t.Fatal(err)
	}
	// Materialize a different composed mapping: a repo write that must
	// invalidate every cached entry (the composed S0->S2 mapping now
	// resolves directly and could differ from the cached composition).
	derived := &Mapping{From: f.sources[0].ID, To: f.sources[2].ID, Assocs: []gam.Assoc{
		{Object1: f.objs[0][0], Object2: f.objs[2][5]},
	}}
	if _, err := Materialize(f.repo, derived); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	after, err := e.MapPath(path)
	if err != nil {
		t.Fatal(err)
	}
	if e.Stats().Hits != st.Hits {
		t.Fatal("MapPath after Materialize served from stale cache")
	}
	if len(after.Assocs) != len(before.Assocs) {
		t.Fatalf("recomputed path changed size: %d -> %d", len(before.Assocs), len(after.Assocs))
	}
	// The direct S0->S2 lookup must see the freshly materialized mapping,
	// not any stale entry.
	m, err := e.Map(f.sources[0].ID, f.sources[2].ID)
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != gam.RelComposed || len(m.Assocs) != 1 || m.Assocs[0].Object2 != f.objs[2][5] {
		t.Fatalf("direct lookup after Materialize = %+v, want the materialized mapping", m)
	}
}

func TestExecutorCacheInvalidationOnDelete(t *testing.T) {
	f := newChainFixture(t, 3, 6)
	e := NewExecutor(f.repo)
	derived, err := e.MapPath(f.path())
	if err != nil {
		t.Fatal(err)
	}
	rel, err := Materialize(f.repo, derived)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the direct-edge cache with the materialized mapping...
	if _, err := e.Map(f.sources[0].ID, f.sources[2].ID); err != nil {
		t.Fatal(err)
	}
	// ...then delete it. The executor must not serve the deleted mapping.
	if err := f.repo.DeleteMapping(rel); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Map(f.sources[0].ID, f.sources[2].ID); err == nil {
		t.Fatal("executor served a deleted mapping from cache")
	}
	// The path composition still works, recomputed at the new generation.
	if _, err := e.MapPath(f.path()); err != nil {
		t.Fatal(err)
	}
}

func TestExecutorLRUBound(t *testing.T) {
	f := newChainFixture(t, 6, 4)
	e := NewExecutorConfig(f.repo, ExecutorConfig{Capacity: 2, Workers: 2})
	for i := 0; i+1 < len(f.sources); i++ {
		if _, err := e.Map(f.sources[i].ID, f.sources[i+1].ID); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.Stats(); st.Entries > 2 {
		t.Fatalf("LRU grew to %d entries with capacity 2", st.Entries)
	}
}

func TestExecutorConcurrentMapPath(t *testing.T) {
	f := newChainFixture(t, 5, 10)
	e := NewExecutor(f.repo)
	want, err := MapPath(f.repo, f.path())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := e.MapPath(f.path())
			if err != nil {
				errc <- err
				return
			}
			if len(m.Assocs) != len(want.Assocs) {
				errc <- fmt.Errorf("concurrent MapPath: %d assocs, want %d", len(m.Assocs), len(want.Assocs))
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

func TestAssociationsBatchMatchesPerRel(t *testing.T) {
	f := newChainFixture(t, 4, 9)
	rels, err := f.repo.SourceRels()
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]gam.SourceRelID, len(rels))
	for i, r := range rels {
		ids[i] = r.ID
	}
	// Duplicate an ID and add a nonexistent one: duplicates fetch once,
	// unknown IDs come back empty.
	ids = append(ids, ids[0], gam.SourceRelID(99999))
	batch, err := f.repo.AssociationsBatch(ids)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rels {
		want, err := f.repo.Associations(r.ID)
		if err != nil {
			t.Fatal(err)
		}
		got := batch[r.ID]
		if len(got) != len(want) {
			t.Fatalf("rel %d: batch returned %d assocs, want %d", r.ID, len(got), len(want))
		}
		ws := make(map[[2]gam.ObjectID]float64, len(want))
		for _, a := range want {
			ws[[2]gam.ObjectID{a.Object1, a.Object2}] = a.Evidence
		}
		for _, a := range got {
			if ws[[2]gam.ObjectID{a.Object1, a.Object2}] != a.Evidence {
				t.Fatalf("rel %d: batch pair %v mismatch", r.ID, a)
			}
		}
	}
	if got := batch[gam.SourceRelID(99999)]; len(got) != 0 {
		t.Fatalf("unknown rel returned %d assocs", len(got))
	}
}

func TestExecutorCachedMappingIsIsolated(t *testing.T) {
	f := newChainFixture(t, 3, 5)
	e := NewExecutor(f.repo)
	m1, err := e.MapPath(f.path())
	if err != nil {
		t.Fatal(err)
	}
	// Mutating a returned mapping must not corrupt the cached copy.
	for i := range m1.Assocs {
		m1.Assocs[i].Object1 = 0
	}
	m2, err := e.MapPath(f.path())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range m2.Assocs {
		if a.Object1 == 0 {
			t.Fatal("caller mutation leaked into the executor cache")
		}
	}
}
