package gam

import (
	"fmt"
	"sort"
	"strings"

	"genmapper/internal/sqldb"
)

// EnsureSourceRel returns the mapping (s1, s2, typ), creating it when
// absent. The boolean reports creation. Mappings are directional rows but
// FindMapping searches both directions.
func (r *Repo) EnsureSourceRel(s1, s2 SourceID, typ RelType) (SourceRelID, bool, error) {
	if _, err := ParseRelType(string(typ)); err != nil {
		return 0, false, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.loadRelsLocked(); err != nil {
		return 0, false, err
	}
	if r.sourcesByID[s1] == nil || r.sourcesByID[s2] == nil {
		return 0, false, fmt.Errorf("gam: source rel references unknown source (%d, %d)", s1, s2)
	}
	key := relKey{s1: s1, s2: s2, typ: typ}
	if id, ok := r.rels[key]; ok {
		return id, false, nil
	}
	res, err := r.db.Exec(sqlInsertSourceRel,
		int64(s1), int64(s2), string(typ))
	if err != nil {
		return 0, false, fmt.Errorf("gam: insert source_rel: %w", err)
	}
	id := SourceRelID(res.LastInsertID)
	r.rels[key] = id
	r.bumpGen()
	return id, true, nil
}

func (r *Repo) loadRelsLocked() error {
	if r.relsLoaded {
		return nil
	}
	err := queryEach(r.db, sqlSelectSourceRels, nil, func(row []sqldb.Value) error {
		key := relKey{
			s1:  SourceID(row[1].(int64)),
			s2:  SourceID(row[2].(int64)),
			typ: RelType(row[3].(string)),
		}
		r.rels[key] = SourceRelID(row[0].(int64))
		return nil
	})
	if err != nil {
		return fmt.Errorf("gam: load source rels: %w", err)
	}
	r.relsLoaded = true
	return nil
}

// SourceRelByID returns the mapping row, or nil.
func (r *Repo) SourceRelByID(id SourceRelID) (*SourceRel, error) {
	rs, err := r.db.Query(sqlSelectSourceRels+" WHERE source_rel_id = ?", int64(id))
	if err != nil {
		return nil, err
	}
	if len(rs.Rows) == 0 {
		return nil, nil
	}
	row := rs.Rows[0]
	return &SourceRel{
		ID:      SourceRelID(row[0].(int64)),
		Source1: SourceID(row[1].(int64)),
		Source2: SourceID(row[2].(int64)),
		Type:    RelType(row[3].(string)),
	}, nil
}

// SourceRels returns all mappings ordered by ID.
func (r *Repo) SourceRels() ([]*SourceRel, error) {
	var out []*SourceRel
	err := queryEach(r.db, sqlSelectSourceRels+" ORDER BY source_rel_id", nil, func(row []sqldb.Value) error {
		out = append(out, &SourceRel{
			ID:      SourceRelID(row[0].(int64)),
			Source1: SourceID(row[1].(int64)),
			Source2: SourceID(row[2].(int64)),
			Type:    RelType(row[3].(string)),
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FindMapping locates a mapping between two sources, searching both
// directions. The second return value reports whether the found mapping is
// reversed (stored as s2->s1). Annotation and derived mappings are
// preferred over structural ones; among candidates, Fact beats Similarity
// beats Composed.
func (r *Repo) FindMapping(s1, s2 SourceID) (*SourceRel, bool, error) {
	r.mu.Lock()
	if err := r.loadRelsLocked(); err != nil {
		r.mu.Unlock()
		return nil, false, err
	}
	prefs := []RelType{RelFact, RelSimilarity, RelComposed, RelSubsumed, RelIsA, RelContains}
	var found *SourceRel
	reversed := false
	for _, typ := range prefs {
		if id, ok := r.rels[relKey{s1: s1, s2: s2, typ: typ}]; ok {
			found = &SourceRel{ID: id, Source1: s1, Source2: s2, Type: typ}
			break
		}
		if id, ok := r.rels[relKey{s1: s2, s2: s1, typ: typ}]; ok {
			found = &SourceRel{ID: id, Source1: s2, Source2: s1, Type: typ}
			reversed = true
			break
		}
	}
	r.mu.Unlock()
	return found, reversed, nil
}

// FindIsARel returns the intra-source IS_A mapping of a source, or 0 when
// the source has no taxonomy structure. The boolean reports presence.
func (r *Repo) FindIsARel(src SourceID) (SourceRelID, bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.loadRelsLocked(); err != nil {
		return 0, false, err
	}
	id, ok := r.rels[relKey{s1: src, s2: src, typ: RelIsA}]
	return id, ok, nil
}

// FindRel returns the mapping (s1, s2, typ) exactly as stored, or 0.
func (r *Repo) FindRel(s1, s2 SourceID, typ RelType) (SourceRelID, bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.loadRelsLocked(); err != nil {
		return 0, false, err
	}
	id, ok := r.rels[relKey{s1: s1, s2: s2, typ: typ}]
	return id, ok, nil
}

// ---------------------------------------------------------------------------
// Associations (OBJECT_REL)

// AddAssociations bulk-inserts associations under a mapping. When dedup is
// true, pairs already present in the mapping are skipped (object-level
// duplicate elimination on re-import). It returns the number of rows
// inserted.
func (r *Repo) AddAssociations(rel SourceRelID, assocs []Assoc, dedup bool) (int, error) {
	if len(assocs) == 0 {
		return 0, nil
	}
	var seen map[[2]ObjectID]bool
	if dedup {
		existing, err := r.Associations(rel)
		if err != nil {
			return 0, err
		}
		seen = make(map[[2]ObjectID]bool, len(existing))
		for _, a := range existing {
			seen[[2]ObjectID{a.Object1, a.Object2}] = true
		}
	} else {
		seen = make(map[[2]ObjectID]bool, len(assocs))
	}

	var pending []Assoc
	for _, a := range assocs {
		key := [2]ObjectID{a.Object1, a.Object2}
		if seen[key] {
			continue
		}
		seen[key] = true
		pending = append(pending, a)
	}

	inserted, err := insertAssociations(r.db, rel, pending)
	if inserted > 0 {
		r.bumpGen()
	}
	return inserted, err
}

// execer abstracts the write surface shared by *sqldb.DB and *sqldb.Tx so
// association inserts run identically inside and outside a transaction.
type execer interface {
	Exec(sql string, args ...any) (sqldb.Result, error)
}

// insertAssociations chunk-inserts associations under a mapping with
// multi-row INSERTs (unset evidence is stored as NULL). It returns the
// number of rows inserted before any error.
func insertAssociations(ex execer, rel SourceRelID, assocs []Assoc) (int, error) {
	inserted := 0
	for start := 0; start < len(assocs); start += batchChunk {
		end := start + batchChunk
		if end > len(assocs) {
			end = len(assocs)
		}
		batch := assocs[start:end]
		args := make([]any, 0, len(batch)*4)
		for _, a := range batch {
			var ev any
			if a.Evidence != 0 {
				ev = a.Evidence
			}
			args = append(args, int64(rel), int64(a.Object1), int64(a.Object2), ev)
		}
		if _, err := ex.Exec(assocInsertSQL(len(batch)), args...); err != nil {
			return inserted, fmt.Errorf("gam: insert associations: %w", err)
		}
		inserted += len(batch)
	}
	return inserted, nil
}

// AssociationsEach streams every association of a mapping through fn in
// storage order, without materializing the association list. fn runs
// under the engine's read lock (the rows are one consistent snapshot);
// it must not write to the repository or issue further queries.
func (r *Repo) AssociationsEach(rel SourceRelID, fn func(Assoc) error) error {
	return queryEach(r.db, sqlSelectAssociations, []any{int64(rel)}, func(row []sqldb.Value) error {
		a := Assoc{
			Object1: ObjectID(row[0].(int64)),
			Object2: ObjectID(row[1].(int64)),
		}
		if v, ok := row[2].(float64); ok {
			a.Evidence = v
		}
		return fn(a)
	})
}

// Associations returns every association of a mapping.
func (r *Repo) Associations(rel SourceRelID) ([]Assoc, error) {
	var out []Assoc
	if err := r.AssociationsEach(rel, func(a Assoc) error {
		out = append(out, a)
		return nil
	}); err != nil {
		return nil, err
	}
	if out == nil {
		out = []Assoc{}
	}
	return out, nil
}

// AssociationsBatch fetches the associations of several mappings in a single
// SQL round-trip, keyed by mapping ID. Mapping IDs without associations map
// to an empty (nil) slice. Duplicate IDs in rels are fetched once. The
// result rows stream straight from the engine cursor into the per-mapping
// slices — one buffering, not two.
func (r *Repo) AssociationsBatch(rels []SourceRelID) (map[SourceRelID][]Assoc, error) {
	out := make(map[SourceRelID][]Assoc, len(rels))
	if len(rels) == 0 {
		return out, nil
	}
	var sb strings.Builder
	sb.WriteString("SELECT source_rel_id, object1_id, object2_id, evidence FROM object_rel WHERE source_rel_id IN (")
	args := make([]any, 0, len(rels))
	seen := make(map[SourceRelID]bool, len(rels))
	for _, rel := range rels {
		if seen[rel] {
			continue
		}
		seen[rel] = true
		if len(args) > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("?")
		args = append(args, int64(rel))
		out[rel] = nil
	}
	sb.WriteString(")")
	err := queryEach(r.db, sb.String(), args, func(row []sqldb.Value) error {
		rel := SourceRelID(row[0].(int64))
		a := Assoc{
			Object1: ObjectID(row[1].(int64)),
			Object2: ObjectID(row[2].(int64)),
		}
		if v, ok := row[3].(float64); ok {
			a.Evidence = v
		}
		out[rel] = append(out[rel], a)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("gam: batch associations: %w", err)
	}
	return out, nil
}

// AssociationCount returns the number of associations under a mapping
// (all mappings when rel is 0).
func (r *Repo) AssociationCount(rel SourceRelID) (int64, error) {
	if rel == 0 {
		rs, err := r.db.Query(sqlCountAssociations)
		if err != nil {
			return 0, err
		}
		return rs.Rows[0][0].(int64), nil
	}
	rs, err := r.db.Query(sqlCountAssocsByRel, int64(rel))
	if err != nil {
		return 0, err
	}
	return rs.Rows[0][0].(int64), nil
}

// DeleteMapping removes a mapping and its associations (used to refresh
// materialized derived mappings).
func (r *Repo) DeleteMapping(rel SourceRelID) error {
	if _, err := r.db.Exec(sqlDeleteAssociations, int64(rel)); err != nil {
		return err
	}
	if _, err := r.db.Exec(sqlDeleteSourceRel, int64(rel)); err != nil {
		return err
	}
	r.mu.Lock()
	for k, id := range r.rels {
		if id == rel {
			delete(r.rels, k)
		}
	}
	r.mu.Unlock()
	r.bumpGen()
	return nil
}

// ReplaceMapping atomically replaces the mapping (s1, s2, typ) and all its
// associations with the given association set, creating the mapping when
// absent. Delete, re-create and insert run in a single transaction: on any
// failure the transaction rolls back and the previous mapping (ID and
// associations) survives intact. It returns the mapping ID now holding the
// associations.
func (r *Repo) ReplaceMapping(s1, s2 SourceID, typ RelType, assocs []Assoc) (SourceRelID, error) {
	if _, err := ParseRelType(string(typ)); err != nil {
		return 0, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.loadRelsLocked(); err != nil {
		return 0, err
	}
	if r.sourcesByID[s1] == nil || r.sourcesByID[s2] == nil {
		return 0, fmt.Errorf("gam: source rel references unknown source (%d, %d)", s1, s2)
	}

	tx := r.db.Begin()
	fail := func(err error) (SourceRelID, error) {
		tx.Rollback()
		return 0, err
	}
	hook := func(stage string) error {
		if r.replaceHook == nil {
			return nil
		}
		return r.replaceHook(stage)
	}

	key := relKey{s1: s1, s2: s2, typ: typ}
	old, hadOld := r.rels[key]
	if hadOld {
		if _, err := tx.Exec(sqlDeleteAssociations, int64(old)); err != nil {
			return fail(err)
		}
		if _, err := tx.Exec(sqlDeleteSourceRel, int64(old)); err != nil {
			return fail(err)
		}
	}
	if err := hook("after-delete"); err != nil {
		return fail(err)
	}
	res, err := tx.Exec(sqlInsertSourceRel,
		int64(s1), int64(s2), string(typ))
	if err != nil {
		return fail(fmt.Errorf("gam: replace mapping: insert source_rel: %w", err))
	}
	id := SourceRelID(res.LastInsertID)
	if _, err := insertAssociations(tx, id, assocs); err != nil {
		return fail(fmt.Errorf("gam: replace mapping: %w", err))
	}
	if err := hook("after-insert"); err != nil {
		return fail(err)
	}
	if err := tx.Commit(); err != nil {
		return fail(err)
	}
	r.rels[key] = id
	r.bumpGen()
	return id, nil
}

// Stats summarizes database content the way the paper reports its
// deployment figures (§5: "approx. 2 million objects of over 60 data
// sources, and 5 million object associations organized in over 500
// different mappings").
type Stats struct {
	Sources      int64
	Objects      int64
	Mappings     int64
	Associations int64
	ByType       map[RelType]int64
}

// Stats computes the summary counters.
func (r *Repo) Stats() (*Stats, error) {
	st := &Stats{ByType: make(map[RelType]int64)}
	q := func(sql string) (int64, error) {
		rs, err := r.db.Query(sql)
		if err != nil {
			return 0, err
		}
		return rs.Rows[0][0].(int64), nil
	}
	var err error
	if st.Sources, err = q(sqlCountSources); err != nil {
		return nil, err
	}
	if st.Objects, err = q(sqlCountObjects); err != nil {
		return nil, err
	}
	if st.Mappings, err = q(sqlCountSourceRels); err != nil {
		return nil, err
	}
	if st.Associations, err = q(sqlCountAssociations); err != nil {
		return nil, err
	}
	rs, err := r.db.Query(`SELECT sr.type, COUNT(*) FROM object_rel o
		JOIN source_rel sr ON o.source_rel_id = sr.source_rel_id GROUP BY sr.type`)
	if err != nil {
		return nil, err
	}
	for _, row := range rs.Rows {
		st.ByType[RelType(row[0].(string))] = row[1].(int64)
	}
	return st, nil
}

// String renders the stats in a compact single line.
func (s *Stats) String() string {
	types := make([]string, 0, len(s.ByType))
	for t := range s.ByType {
		types = append(types, string(t))
	}
	sort.Strings(types)
	var sb strings.Builder
	fmt.Fprintf(&sb, "sources=%d objects=%d mappings=%d associations=%d",
		s.Sources, s.Objects, s.Mappings, s.Associations)
	for _, t := range types {
		fmt.Fprintf(&sb, " %s=%d", t, s.ByType[RelType(t)])
	}
	return sb.String()
}
