package gam

import (
	"fmt"
	"sync"
	"testing"
)

func TestConcurrentImportersAndReaders(t *testing.T) {
	r := newRepo(t)
	s, _, _ := r.EnsureSource(Source{Name: "Hub"})
	const writers, perWriter, readers = 4, 50, 4

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				spec := ObjectSpec{Accession: fmt.Sprintf("w%d-obj%d", w, i)}
				if _, _, err := r.EnsureObjects(s.ID, []ObjectSpec{spec}); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				if _, err := r.ObjectCount(s.ID); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				if _, err := r.Stats(); err != nil {
					t.Errorf("reader stats: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	n, err := r.ObjectCount(s.ID)
	if err != nil {
		t.Fatal(err)
	}
	if n != writers*perWriter {
		t.Fatalf("objects = %d, want %d", n, writers*perWriter)
	}
}

func TestConcurrentSourceCreation(t *testing.T) {
	r := newRepo(t)
	const n = 8
	var wg sync.WaitGroup
	ids := make([]SourceID, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Everyone races to create the same source.
			s, _, err := r.EnsureSource(Source{Name: "Shared"})
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			ids[i] = s.ID
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("racing EnsureSource produced different IDs: %v", ids)
		}
	}
	cnt, _ := r.db.Query("SELECT COUNT(*) FROM source WHERE name = 'Shared'")
	if cnt.Rows[0][0] != int64(1) {
		t.Fatalf("source duplicated under race: %v", cnt.Rows[0][0])
	}
}

func TestConcurrentAssociations(t *testing.T) {
	r := newRepo(t)
	a, _, _ := r.EnsureSource(Source{Name: "A"})
	b, _, _ := r.EnsureSource(Source{Name: "B"})
	aIDs, _, _ := r.EnsureObjects(a.ID, []ObjectSpec{{Accession: "a1"}, {Accession: "a2"}})
	bIDs, _, _ := r.EnsureObjects(b.ID, []ObjectSpec{{Accession: "b1"}, {Accession: "b2"}})

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rel, _, err := r.EnsureSourceRel(a.ID, b.ID, RelFact)
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			if _, err := r.AddAssociations(rel, []Assoc{
				{Object1: aIDs[w%2], Object2: bIDs[(w+1)%2]},
			}, false); err != nil {
				t.Errorf("worker %d: %v", w, err)
			}
		}(w)
	}
	wg.Wait()
	// All workers used the same mapping.
	rels, _ := r.SourceRels()
	factCount := 0
	for _, rel := range rels {
		if rel.Type == RelFact {
			factCount++
		}
	}
	if factCount != 1 {
		t.Fatalf("racing EnsureSourceRel created %d fact mappings", factCount)
	}
}

func TestFillMissingObjectInfo(t *testing.T) {
	r := newRepo(t)
	s, _, _ := r.EnsureSource(Source{Name: "S"})
	ids, _, _ := r.EnsureObjects(s.ID, []ObjectSpec{
		{Accession: "bare"},
		{Accession: "named", Text: "already has text"},
	})
	updated, err := r.FillMissingObjectInfo(s.ID, []ObjectSpec{
		{Accession: "bare", Text: "filled in", HasNumber: true, Number: 4.5},
		{Accession: "named", Text: "must not overwrite"},
		{Accession: "unknown", Text: "no such object"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if updated != 1 {
		t.Fatalf("updated = %d, want 1", updated)
	}
	bare, _ := r.Object(ids[0])
	if bare.Text != "filled in" || !bare.HasNumber || bare.Number != 4.5 {
		t.Fatalf("bare after fill = %+v", bare)
	}
	named, _ := r.Object(ids[1])
	if named.Text != "already has text" {
		t.Fatalf("named overwritten: %+v", named)
	}
	// No-op when nothing to fill.
	updated, err = r.FillMissingObjectInfo(s.ID, []ObjectSpec{{Accession: "x"}})
	if err != nil || updated != 0 {
		t.Fatalf("empty fill = %d, %v", updated, err)
	}
}
