package gam

import (
	"fmt"
	"sync/atomic"
	"testing"

	"genmapper/internal/sqldb"
)

func newRepo(t *testing.T) *Repo {
	t.Helper()
	r, err := Open(sqldb.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestOpenCreatesSchema(t *testing.T) {
	db := sqldb.NewDB()
	if _, err := Open(db); err != nil {
		t.Fatal(err)
	}
	want := []string{"object", "object_rel", "source", "source_rel"}
	got := db.TableNames()
	if len(got) != len(want) {
		t.Fatalf("tables = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tables = %v, want %v", got, want)
		}
	}
	// Idempotent: opening again must not fail.
	if _, err := Open(db); err != nil {
		t.Fatalf("second Open: %v", err)
	}
}

func TestEnsureSource(t *testing.T) {
	r := newRepo(t)
	s, created, err := r.EnsureSource(Source{Name: "LocusLink", Content: ContentGene, Structure: StructureFlat, Release: "r1"})
	if err != nil {
		t.Fatal(err)
	}
	if !created || s.ID == 0 {
		t.Fatalf("created=%v id=%d", created, s.ID)
	}
	// Duplicate elimination by name (case-insensitive).
	s2, created, err := r.EnsureSource(Source{Name: "locuslink"})
	if err != nil {
		t.Fatal(err)
	}
	if created || s2.ID != s.ID {
		t.Fatalf("dup source: created=%v id=%d", created, s2.ID)
	}
	// New release updates audit info.
	s3, created, err := r.EnsureSource(Source{Name: "LocusLink", Release: "r2", Date: "2004-02-01"})
	if err != nil {
		t.Fatal(err)
	}
	if created || s3.Release != "r2" {
		t.Fatalf("audit update: created=%v release=%q", created, s3.Release)
	}
	if got := r.SourceByName("LOCUSLINK"); got == nil || got.ID != s.ID {
		t.Error("SourceByName case-insensitive lookup failed")
	}
	if got := r.SourceByID(s.ID); got == nil || got.Name != "LocusLink" {
		t.Error("SourceByID failed")
	}
	if r.SourceByName("nope") != nil {
		t.Error("unknown source should be nil")
	}
}

func TestEnsureSourceValidation(t *testing.T) {
	r := newRepo(t)
	if _, _, err := r.EnsureSource(Source{Name: ""}); err == nil {
		t.Error("empty name accepted")
	}
	if _, _, err := r.EnsureSource(Source{Name: "X", Content: "weird"}); err == nil {
		t.Error("bad content accepted")
	}
	if _, _, err := r.EnsureSource(Source{Name: "X", Structure: "weird"}); err == nil {
		t.Error("bad structure accepted")
	}
	// Empty content/structure default sensibly.
	s, _, err := r.EnsureSource(Source{Name: "Defaulted"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Content != ContentOther || s.Structure != StructureFlat {
		t.Errorf("defaults = %s/%s", s.Content, s.Structure)
	}
}

func TestEnsureObjects(t *testing.T) {
	r := newRepo(t)
	s, _, _ := r.EnsureSource(Source{Name: "GO", Structure: StructureNetwork})

	specs := []ObjectSpec{
		{Accession: "GO:0001", Text: "term one"},
		{Accession: "GO:0002", Text: "term two"},
		{Accession: "GO:0001"}, // batch-internal duplicate
	}
	ids, created, err := r.EnsureObjects(s.ID, specs)
	if err != nil {
		t.Fatal(err)
	}
	if created != 2 {
		t.Fatalf("created = %d, want 2", created)
	}
	if ids[0] != ids[2] {
		t.Errorf("batch-internal dup got different IDs: %d vs %d", ids[0], ids[2])
	}
	if ids[0] == ids[1] {
		t.Error("distinct objects share an ID")
	}

	// Re-import: everything already present.
	ids2, created, err := r.EnsureObjects(s.ID, specs[:2])
	if err != nil {
		t.Fatal(err)
	}
	if created != 0 {
		t.Fatalf("re-import created %d objects", created)
	}
	if ids2[0] != ids[0] || ids2[1] != ids[1] {
		t.Error("re-import returned different IDs")
	}

	n, err := r.ObjectCount(s.ID)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("ObjectCount = %d, want 2", n)
	}
}

func TestEnsureObjectsDuplicateNotFirst(t *testing.T) {
	// Regression: a batch-internal duplicate whose first occurrence is NOT
	// at index 0 must resolve to that occurrence's ID, not to ids[0].
	r := newRepo(t)
	s, _, _ := r.EnsureSource(Source{Name: "S"})
	specs := []ObjectSpec{
		{Accession: "a"},
		{Accession: "b"},
		{Accession: "b"}, // dup of index 1
		{Accession: "c"},
		{Accession: "b"}, // dup of index 1 again
	}
	ids, created, err := r.EnsureObjects(s.ID, specs)
	if err != nil {
		t.Fatal(err)
	}
	if created != 3 {
		t.Fatalf("created = %d, want 3", created)
	}
	if ids[2] != ids[1] || ids[4] != ids[1] {
		t.Fatalf("duplicate IDs = %v; positions 2 and 4 must equal position 1", ids)
	}
	if ids[2] == ids[0] {
		t.Fatal("duplicate wrongly collapsed onto index 0")
	}
	// The stored accessions resolve back correctly.
	m, _ := r.LookupObjects(s.ID, []string{"a", "b", "c"})
	if m["a"] != ids[0] || m["b"] != ids[1] || m["c"] != ids[3] {
		t.Fatalf("lookup mismatch: %v vs %v", m, ids)
	}
}

func TestEnsureObjectsErrors(t *testing.T) {
	r := newRepo(t)
	if _, _, err := r.EnsureObjects(999, []ObjectSpec{{Accession: "x"}}); err == nil {
		t.Error("unknown source accepted")
	}
	s, _, _ := r.EnsureSource(Source{Name: "S"})
	if _, _, err := r.EnsureObjects(s.ID, []ObjectSpec{{}}); err == nil {
		t.Error("empty accession accepted")
	}
}

func TestObjectRoundTrip(t *testing.T) {
	r := newRepo(t)
	s, _, _ := r.EnsureSource(Source{Name: "S"})
	id, _, err := r.EnsureObject(s.ID, ObjectSpec{Accession: "A1", Text: "alpha", HasNumber: true, Number: 16.24})
	if err != nil {
		t.Fatal(err)
	}
	o, err := r.Object(id)
	if err != nil {
		t.Fatal(err)
	}
	if o == nil || o.Accession != "A1" || o.Text != "alpha" || !o.HasNumber || o.Number != 16.24 {
		t.Fatalf("object = %+v", o)
	}
	missing, err := r.Object(9999)
	if err != nil {
		t.Fatal(err)
	}
	if missing != nil {
		t.Error("missing object should be nil")
	}

	objs, err := r.ObjectsBySource(s.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 || objs[0].ID != id {
		t.Fatalf("ObjectsBySource = %v", objs)
	}
}

func TestLookupObjects(t *testing.T) {
	r := newRepo(t)
	s, _, _ := r.EnsureSource(Source{Name: "S"})
	ids, _, err := r.EnsureObjects(s.ID, []ObjectSpec{{Accession: "a"}, {Accession: "b"}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := r.LookupObjects(s.ID, []string{"a", "b", "missing"})
	if err != nil {
		t.Fatal(err)
	}
	if m["a"] != ids[0] || m["b"] != ids[1] || m["missing"] != 0 {
		t.Fatalf("lookup = %v", m)
	}
	id, err := r.LookupObject(s.ID, "a")
	if err != nil || id != ids[0] {
		t.Fatalf("LookupObject = %d, %v", id, err)
	}
}

func TestSourceRels(t *testing.T) {
	r := newRepo(t)
	s1, _, _ := r.EnsureSource(Source{Name: "LocusLink"})
	s2, _, _ := r.EnsureSource(Source{Name: "GO"})

	rel, created, err := r.EnsureSourceRel(s1.ID, s2.ID, RelFact)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("first EnsureSourceRel should create")
	}
	rel2, created, err := r.EnsureSourceRel(s1.ID, s2.ID, RelFact)
	if err != nil {
		t.Fatal(err)
	}
	if created || rel2 != rel {
		t.Fatalf("dup mapping: created=%v id=%d want %d", created, rel2, rel)
	}
	// Different type is a different mapping.
	rel3, created, err := r.EnsureSourceRel(s1.ID, s2.ID, RelComposed)
	if err != nil {
		t.Fatal(err)
	}
	if !created || rel3 == rel {
		t.Fatal("different type should create a new mapping")
	}

	if _, _, err := r.EnsureSourceRel(s1.ID, 999, RelFact); err == nil {
		t.Error("unknown target source accepted")
	}
	if _, _, err := r.EnsureSourceRel(s1.ID, s2.ID, "bogus"); err == nil {
		t.Error("bogus rel type accepted")
	}

	sr, err := r.SourceRelByID(rel)
	if err != nil {
		t.Fatal(err)
	}
	if sr == nil || sr.Source1 != s1.ID || sr.Source2 != s2.ID || sr.Type != RelFact {
		t.Fatalf("SourceRelByID = %+v", sr)
	}
	all, err := r.SourceRels()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("SourceRels = %d, want 2", len(all))
	}
}

func TestFindMappingDirectionAndPreference(t *testing.T) {
	r := newRepo(t)
	a, _, _ := r.EnsureSource(Source{Name: "A"})
	b, _, _ := r.EnsureSource(Source{Name: "B"})
	c, _, _ := r.EnsureSource(Source{Name: "C"})

	relAB, _, _ := r.EnsureSourceRel(a.ID, b.ID, RelSimilarity)
	// Reversed direction must be found too.
	found, reversed, err := r.FindMapping(b.ID, a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if found == nil || found.ID != relAB || !reversed {
		t.Fatalf("reverse find = %+v reversed=%v", found, reversed)
	}
	// Fact is preferred over Similarity.
	relABFact, _, _ := r.EnsureSourceRel(a.ID, b.ID, RelFact)
	found, reversed, err = r.FindMapping(a.ID, b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if found.ID != relABFact || reversed {
		t.Fatalf("preference find = %+v", found)
	}
	// No mapping between a and c.
	found, _, err = r.FindMapping(a.ID, c.ID)
	if err != nil {
		t.Fatal(err)
	}
	if found != nil {
		t.Fatalf("unexpected mapping %+v", found)
	}
}

func TestAssociations(t *testing.T) {
	r := newRepo(t)
	s1, _, _ := r.EnsureSource(Source{Name: "A"})
	s2, _, _ := r.EnsureSource(Source{Name: "B"})
	ids1, _, _ := r.EnsureObjects(s1.ID, []ObjectSpec{{Accession: "a1"}, {Accession: "a2"}})
	ids2, _, _ := r.EnsureObjects(s2.ID, []ObjectSpec{{Accession: "b1"}, {Accession: "b2"}})
	rel, _, _ := r.EnsureSourceRel(s1.ID, s2.ID, RelFact)

	assocs := []Assoc{
		{Object1: ids1[0], Object2: ids2[0], Evidence: 0.9},
		{Object1: ids1[0], Object2: ids2[1]},
		{Object1: ids1[1], Object2: ids2[1]},
		{Object1: ids1[1], Object2: ids2[1]}, // duplicate in batch
	}
	n, err := r.AddAssociations(rel, assocs, true)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("inserted %d, want 3 (dup collapsed)", n)
	}
	// Re-adding with dedup inserts nothing.
	n, err = r.AddAssociations(rel, assocs, true)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("re-insert with dedup added %d", n)
	}
	got, err := r.Associations(rel)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("associations = %d", len(got))
	}
	if got[0].Evidence != 0.9 {
		t.Errorf("evidence = %v", got[0].Evidence)
	}
	if got[1].Evidence != 0 {
		t.Errorf("unset evidence = %v", got[1].Evidence)
	}
	cnt, err := r.AssociationCount(rel)
	if err != nil || cnt != 3 {
		t.Fatalf("AssociationCount = %d, %v", cnt, err)
	}
	total, err := r.AssociationCount(0)
	if err != nil || total != 3 {
		t.Fatalf("total AssociationCount = %d, %v", total, err)
	}
}

func TestDeleteMapping(t *testing.T) {
	r := newRepo(t)
	s1, _, _ := r.EnsureSource(Source{Name: "A"})
	s2, _, _ := r.EnsureSource(Source{Name: "B"})
	o1, _, _ := r.EnsureObject(s1.ID, ObjectSpec{Accession: "a"})
	o2, _, _ := r.EnsureObject(s2.ID, ObjectSpec{Accession: "b"})
	rel, _, _ := r.EnsureSourceRel(s1.ID, s2.ID, RelComposed)
	if _, err := r.AddAssociations(rel, []Assoc{{Object1: o1, Object2: o2}}, false); err != nil {
		t.Fatal(err)
	}
	if err := r.DeleteMapping(rel); err != nil {
		t.Fatal(err)
	}
	cnt, _ := r.AssociationCount(rel)
	if cnt != 0 {
		t.Fatalf("associations survived delete: %d", cnt)
	}
	// The mapping can be re-created after deletion.
	rel2, created, err := r.EnsureSourceRel(s1.ID, s2.ID, RelComposed)
	if err != nil || !created {
		t.Fatalf("re-create after delete: created=%v err=%v", created, err)
	}
	if rel2 == rel {
		t.Error("recreated mapping should have a new ID")
	}
}

func TestStats(t *testing.T) {
	r := newRepo(t)
	s1, _, _ := r.EnsureSource(Source{Name: "A"})
	s2, _, _ := r.EnsureSource(Source{Name: "B"})
	ids1, _, _ := r.EnsureObjects(s1.ID, []ObjectSpec{{Accession: "a1"}, {Accession: "a2"}})
	ids2, _, _ := r.EnsureObjects(s2.ID, []ObjectSpec{{Accession: "b1"}})
	relF, _, _ := r.EnsureSourceRel(s1.ID, s2.ID, RelFact)
	relC, _, _ := r.EnsureSourceRel(s1.ID, s1.ID, RelIsA)
	r.AddAssociations(relF, []Assoc{{Object1: ids1[0], Object2: ids2[0]}, {Object1: ids1[1], Object2: ids2[0]}}, false)
	r.AddAssociations(relC, []Assoc{{Object1: ids1[0], Object2: ids1[1]}}, false)

	st, err := r.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Sources != 2 || st.Objects != 3 || st.Mappings != 2 || st.Associations != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ByType[RelFact] != 2 || st.ByType[RelIsA] != 1 {
		t.Fatalf("by type = %v", st.ByType)
	}
	if st.String() == "" {
		t.Error("empty stats string")
	}
}

func TestRelTypeHelpers(t *testing.T) {
	if !RelComposed.IsDerived() || !RelSubsumed.IsDerived() {
		t.Error("derived classification wrong")
	}
	if RelFact.IsDerived() || RelIsA.IsDerived() {
		t.Error("non-derived misclassified")
	}
	if !RelIsA.IsStructural() || !RelContains.IsStructural() {
		t.Error("structural classification wrong")
	}
	if RelFact.IsStructural() {
		t.Error("fact is not structural")
	}
}

func TestRepoReopenKeepsData(t *testing.T) {
	db := sqldb.NewDB()
	r1, err := Open(db)
	if err != nil {
		t.Fatal(err)
	}
	s, _, _ := r1.EnsureSource(Source{Name: "Persist"})
	r1.EnsureObject(s.ID, ObjectSpec{Accession: "x"})

	// A second repo over the same database adopts existing data.
	r2, err := Open(db)
	if err != nil {
		t.Fatal(err)
	}
	got := r2.SourceByName("Persist")
	if got == nil || got.ID != s.ID {
		t.Fatal("reopened repo lost sources")
	}
	id, err := r2.LookupObject(s.ID, "x")
	if err != nil || id == 0 {
		t.Fatalf("reopened repo lost objects: %d, %v", id, err)
	}
}

func TestBulkScale(t *testing.T) {
	if testing.Short() {
		t.Skip("bulk test skipped in -short mode")
	}
	r := newRepo(t)
	s, _, _ := r.EnsureSource(Source{Name: "Bulk"})
	specs := make([]ObjectSpec, 5000)
	for i := range specs {
		specs[i] = ObjectSpec{Accession: fmt.Sprintf("OBJ:%05d", i)}
	}
	ids, created, err := r.EnsureObjects(s.ID, specs)
	if err != nil {
		t.Fatal(err)
	}
	if created != 5000 {
		t.Fatalf("created = %d", created)
	}
	unique := make(map[ObjectID]bool, len(ids))
	for _, id := range ids {
		unique[id] = true
	}
	if len(unique) != 5000 {
		t.Fatalf("non-unique IDs: %d", len(unique))
	}
}

// The streaming iteration APIs must visit the same data the materializing
// accessors return, in the same order, and stop early on callback error.
func TestStreamingIterationAPIs(t *testing.T) {
	r := newRepo(t)
	s1, _, _ := r.EnsureSource(Source{Name: "A", Content: ContentGene})
	s2, _, _ := r.EnsureSource(Source{Name: "B", Content: ContentGene})
	var specs []ObjectSpec
	for i := 0; i < 50; i++ {
		specs = append(specs, ObjectSpec{Accession: fmt.Sprintf("a%03d", i), Text: fmt.Sprintf("t%d", i)})
	}
	ids1, _, err := r.EnsureObjects(s1.ID, specs)
	if err != nil {
		t.Fatal(err)
	}
	ids2, _, err := r.EnsureObjects(s2.ID, specs)
	if err != nil {
		t.Fatal(err)
	}
	rel, _, err := r.EnsureSourceRel(s1.ID, s2.ID, RelFact)
	if err != nil {
		t.Fatal(err)
	}
	var assocs []Assoc
	for i := range ids1 {
		assocs = append(assocs, Assoc{Object1: ids1[i], Object2: ids2[i], Evidence: float64(i%3) / 2})
	}
	if _, err := r.AddAssociations(rel, assocs, false); err != nil {
		t.Fatal(err)
	}

	want, err := r.Associations(rel)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []Assoc
	if err := r.AssociationsEach(rel, func(a Assoc) error {
		streamed = append(streamed, a)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(streamed) != fmt.Sprint(want) {
		t.Fatalf("AssociationsEach mismatch:\n got %v\nwant %v", streamed, want)
	}

	wantObjs, err := r.ObjectsBySource(s1.ID)
	if err != nil {
		t.Fatal(err)
	}
	var gotObjs []Object
	if err := r.ObjectsBySourceEach(s1.ID, func(o *Object) error {
		gotObjs = append(gotObjs, *o) // must copy: o is reused
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(gotObjs) != len(wantObjs) {
		t.Fatalf("ObjectsBySourceEach = %d objects, want %d", len(gotObjs), len(wantObjs))
	}
	for i := range gotObjs {
		if gotObjs[i] != *wantObjs[i] {
			t.Fatalf("object %d = %+v, want %+v", i, gotObjs[i], *wantObjs[i])
		}
	}

	// Early stop: the callback error propagates and iteration halts.
	n := 0
	errStop := fmt.Errorf("stop")
	if err := r.AssociationsEach(rel, func(Assoc) error {
		n++
		if n == 5 {
			return errStop
		}
		return nil
	}); err != errStop {
		t.Fatalf("early-stop error = %v, want errStop", err)
	}
	if n != 5 {
		t.Fatalf("iterated %d rows after stop, want 5", n)
	}
}

// AssociationsEach must stream one consistent statement snapshot: while a
// concurrent ReplaceMapping swaps the association set between A and B, a
// reader may observe all-A, all-B, or the empty mid-transaction state —
// never a torn half-A/half-B mix.
func TestAssociationsEachSnapshotUnderReplace(t *testing.T) {
	r := newRepo(t)
	s1, _, _ := r.EnsureSource(Source{Name: "A", Content: ContentGene})
	s2, _, _ := r.EnsureSource(Source{Name: "B", Content: ContentGene})
	mkSpecs := func(n int) []ObjectSpec {
		specs := make([]ObjectSpec, n)
		for i := range specs {
			specs[i] = ObjectSpec{Accession: fmt.Sprintf("o%04d", i)}
		}
		return specs
	}
	ids1, _, _ := r.EnsureObjects(s1.ID, mkSpecs(150))
	ids2, _, _ := r.EnsureObjects(s2.ID, mkSpecs(150))
	mkAssocs := func(ev float64) []Assoc {
		out := make([]Assoc, len(ids1))
		for i := range ids1 {
			out[i] = Assoc{Object1: ids1[i], Object2: ids2[i], Evidence: ev}
		}
		return out
	}
	setA, setB := mkAssocs(0.25), mkAssocs(0.75)

	first, err := r.ReplaceMapping(s1.ID, s2.ID, RelComposed, setA)
	if err != nil {
		t.Fatal(err)
	}
	var rel atomic.Int64
	rel.Store(int64(first))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 40; i++ {
			set := setA
			if i%2 == 0 {
				set = setB
			}
			id, err := r.ReplaceMapping(s1.ID, s2.ID, RelComposed, set)
			if err != nil {
				t.Error(err)
				return
			}
			rel.Store(int64(id))
		}
	}()
	for i := 0; i < 200; i++ {
		var evs []float64
		if err := r.AssociationsEach(SourceRelID(rel.Load()), func(a Assoc) error {
			evs = append(evs, a.Evidence)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for _, ev := range evs {
			if ev != evs[0] {
				t.Fatalf("torn association snapshot: mixed evidence %v and %v in one read", evs[0], ev)
			}
		}
	}
	<-done
}
