package gam

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"genmapper/internal/sqldb"
)

// Repo provides GAM-schema access over an embedded database. It maintains
// in-memory lookup caches (source names, object accessions, mapping keys)
// so that bulk import achieves set-at-a-time speed while the authoritative
// data always lives in the database.
//
// A Repo is safe for concurrent use.
type Repo struct {
	db *sqldb.DB

	// gen counts mapping-affecting writes (EnsureSourceRel, AddAssociations,
	// DeleteMapping, ReplaceMapping). Caches of derived mapping data compare
	// it against the value observed at load time to detect staleness.
	gen atomic.Uint64

	// replaceHook, when set, is invoked at named stages of ReplaceMapping so
	// tests can inject mid-transaction failures. Production code leaves it nil.
	replaceHook func(stage string) error

	mu          sync.Mutex
	sources     map[string]*Source // lower(name) -> source
	sourcesByID map[SourceID]*Source
	objects     map[SourceID]map[string]ObjectID // accession -> id, lazily loaded
	rels        map[relKey]SourceRelID
	relsLoaded  bool
}

// Generation returns the mapping-write counter. Any change to mappings or
// associations bumps it, so a cached value loaded at generation g is valid
// exactly while Generation() == g.
func (r *Repo) Generation() uint64 { return r.gen.Load() }

func (r *Repo) bumpGen() { r.gen.Add(1) }

// SetReplaceMappingHook installs a failure-injection hook for tests of
// ReplaceMapping atomicity. Stages: "after-delete" (old mapping rows gone,
// new not yet written) and "after-insert" (new rows written, not committed).
func (r *Repo) SetReplaceMappingHook(h func(stage string) error) { r.replaceHook = h }

type relKey struct {
	s1, s2 SourceID
	typ    RelType
}

// DDL statements creating the GAM schema (Figure 4 of the paper).
var schemaDDL = []string{
	`CREATE TABLE IF NOT EXISTS source (
		source_id INTEGER PRIMARY KEY AUTOINCREMENT,
		name TEXT NOT NULL,
		content TEXT NOT NULL,
		structure TEXT NOT NULL,
		release TEXT,
		import_date TEXT
	)`,
	`CREATE UNIQUE INDEX IF NOT EXISTS idx_source_name ON source (name)`,
	`CREATE TABLE IF NOT EXISTS object (
		object_id INTEGER PRIMARY KEY AUTOINCREMENT,
		source_id INTEGER NOT NULL,
		accession TEXT NOT NULL,
		text TEXT,
		number REAL
	)`,
	`CREATE INDEX IF NOT EXISTS idx_object_source ON object (source_id)`,
	`CREATE INDEX IF NOT EXISTS idx_object_accession ON object (accession)`,
	`CREATE TABLE IF NOT EXISTS source_rel (
		source_rel_id INTEGER PRIMARY KEY AUTOINCREMENT,
		source1_id INTEGER NOT NULL,
		source2_id INTEGER NOT NULL,
		type TEXT NOT NULL
	)`,
	`CREATE INDEX IF NOT EXISTS idx_srcrel_s1 ON source_rel (source1_id)`,
	`CREATE INDEX IF NOT EXISTS idx_srcrel_s2 ON source_rel (source2_id)`,
	`CREATE TABLE IF NOT EXISTS object_rel (
		object_rel_id INTEGER PRIMARY KEY AUTOINCREMENT,
		source_rel_id INTEGER NOT NULL,
		object1_id INTEGER NOT NULL,
		object2_id INTEGER NOT NULL,
		evidence REAL
	)`,
	`CREATE INDEX IF NOT EXISTS idx_objrel_rel ON object_rel (source_rel_id)`,
	`CREATE INDEX IF NOT EXISTS idx_objrel_o1 ON object_rel (object1_id)`,
	`CREATE INDEX IF NOT EXISTS idx_objrel_o2 ON object_rel (object2_id)`,
}

// SchemaStatementCount returns the number of DDL statements the GAM schema
// needs, once, regardless of how many sources are later integrated (the
// schema-churn metric of the design ablation).
func SchemaStatementCount() int { return len(schemaDDL) }

// batchChunk is the number of rows per multi-row INSERT during bulk import.
const batchChunk = 200

// batchInsertSQL renders prefix followed by n value groups of the given
// width: "INSERT ... VALUES (?, ?), (?, ?), ...".
func batchInsertSQL(prefix string, width, n int) string {
	var sb strings.Builder
	sb.WriteString(prefix)
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteByte('(')
		for j := 0; j < width; j++ {
			if j > 0 {
				sb.WriteString(", ")
			}
			sb.WriteByte('?')
		}
		sb.WriteByte(')')
	}
	return sb.String()
}

// The full-chunk INSERT texts are precomputed: bulk imports issue these
// exact statements thousands of times, so neither the text nor (thanks to
// the engine's statement cache) the parse is rebuilt per batch.
const (
	objectInsertPrefix = "INSERT INTO object (source_id, accession, text, number) VALUES "
	assocInsertPrefix  = "INSERT INTO object_rel (source_rel_id, object1_id, object2_id, evidence) VALUES "
)

var (
	objectInsertFull = batchInsertSQL(objectInsertPrefix, 4, batchChunk)
	assocInsertFull  = batchInsertSQL(assocInsertPrefix, 4, batchChunk)
)

// objectInsertSQL returns the multi-row object INSERT text for n rows.
func objectInsertSQL(n int) string {
	if n == batchChunk {
		return objectInsertFull
	}
	return batchInsertSQL(objectInsertPrefix, 4, n)
}

// assocInsertSQL returns the multi-row association INSERT text for n rows.
func assocInsertSQL(n int) string {
	if n == batchChunk {
		return assocInsertFull
	}
	return batchInsertSQL(assocInsertPrefix, 4, n)
}

// The hot statement texts are named constants so the call sites and the
// prepare-at-Open warm-up list below can never drift apart.
const (
	sqlSelectSources             = "SELECT source_id, name, content, structure, release, import_date FROM source"
	sqlSelectSourcesByName       = "SELECT source_id, name, content, structure, release, import_date FROM source ORDER BY name"
	sqlInsertSource              = "INSERT INTO source (name, content, structure, release, import_date) VALUES (?, ?, ?, ?, ?)"
	sqlUpdateSourceAudit         = "UPDATE source SET release = ?, import_date = ? WHERE source_id = ?"
	sqlSelectObjectAccs          = "SELECT object_id, accession FROM object WHERE source_id = ?"
	sqlSelectObjectByID          = "SELECT object_id, source_id, accession, text, number FROM object WHERE object_id = ?"
	sqlSelectObjectsBySource     = "SELECT object_id, source_id, accession, text, number FROM object WHERE source_id = ? ORDER BY accession"
	sqlSelectObjectsBySourceScan = "SELECT object_id, source_id, accession, text, number FROM object WHERE source_id = ?"
	sqlSelectObjectsNoText       = "SELECT object_id, accession FROM object WHERE source_id = ? AND text IS NULL"
	sqlUpdateObjectInfo          = "UPDATE object SET text = ?, number = ? WHERE object_id = ?"
	sqlCountObjects              = "SELECT COUNT(*) FROM object"
	sqlCountObjectsBySource      = "SELECT COUNT(*) FROM object WHERE source_id = ?"
	sqlInsertSourceRel           = "INSERT INTO source_rel (source1_id, source2_id, type) VALUES (?, ?, ?)"
	sqlSelectSourceRels          = "SELECT source_rel_id, source1_id, source2_id, type FROM source_rel"
	sqlSelectAssociations        = "SELECT object1_id, object2_id, evidence FROM object_rel WHERE source_rel_id = ?"
	sqlCountSources              = "SELECT COUNT(*) FROM source"
	sqlCountSourceRels           = "SELECT COUNT(*) FROM source_rel"
	sqlCountAssociations         = "SELECT COUNT(*) FROM object_rel"
	sqlCountAssocsByRel          = "SELECT COUNT(*) FROM object_rel WHERE source_rel_id = ?"
	sqlDeleteAssociations        = "DELETE FROM object_rel WHERE source_rel_id = ?"
	sqlDeleteSourceRel           = "DELETE FROM source_rel WHERE source_rel_id = ?"
)

// hotStatements lists the fixed-text statements issued per imported object,
// association or interactive query. Open prepares them all so the first
// request after startup already runs on compiled plans.
var hotStatements = []string{
	sqlSelectSources,
	sqlSelectSourcesByName,
	sqlSelectObjectAccs,
	sqlSelectObjectByID,
	sqlSelectObjectsBySource,
	sqlSelectObjectsBySourceScan,
	sqlCountObjects,
	sqlCountObjectsBySource,
	sqlSelectObjectsNoText,
	sqlInsertSource,
	sqlUpdateSourceAudit,
	sqlUpdateObjectInfo,
	sqlInsertSourceRel,
	sqlSelectSourceRels,
	sqlSelectAssociations,
	sqlCountSourceRels,
	sqlCountAssociations,
	sqlCountAssocsByRel,
	sqlDeleteAssociations,
	sqlDeleteSourceRel,
}

// prepareHotStatements parses and plans the statements every import and
// query path hammers. Must run after the schema DDL (plans depend on it).
func (r *Repo) prepareHotStatements() error {
	for _, sql := range hotStatements {
		if _, err := r.db.Prepare(sql); err != nil {
			return fmt.Errorf("gam: prepare hot statement %q: %w", sql, err)
		}
	}
	for _, sql := range []string{objectInsertFull, assocInsertFull} {
		if _, err := r.db.Prepare(sql); err != nil {
			return fmt.Errorf("gam: prepare bulk insert: %w", err)
		}
	}
	return nil
}

// Open creates (or adopts) the GAM schema on the given database and returns
// a repository handle.
func Open(db *sqldb.DB) (*Repo, error) {
	for _, ddl := range schemaDDL {
		if _, err := db.Exec(ddl); err != nil {
			return nil, fmt.Errorf("gam: create schema: %w", err)
		}
	}
	r := &Repo{
		db:          db,
		sources:     make(map[string]*Source),
		sourcesByID: make(map[SourceID]*Source),
		objects:     make(map[SourceID]map[string]ObjectID),
		rels:        make(map[relKey]SourceRelID),
	}
	if err := r.prepareHotStatements(); err != nil {
		return nil, err
	}
	if err := r.loadSources(); err != nil {
		return nil, err
	}
	return r, nil
}

// DB exposes the underlying database (for the operator layer's SQL).
func (r *Repo) DB() *sqldb.DB { return r.db }

// SetParallelism forwards an execution-parallelism hint to the storage
// engine: bulk loaders and association streams (AssociationsBatch,
// ObjectsScanEach, the Materialize refresh scans) then run their full-table
// scans and aggregates on the partition-parallel paths. 0 restores the
// default (one worker per CPU), 1 forces serial execution.
func (r *Repo) SetParallelism(n int) { r.db.SetParallelism(n) }

// SetBatchExecution toggles the storage engine's vectorized (columnar
// batch) leg for eligible scans and aggregates; the row engine remains
// the fallback for everything the batch kernels don't cover.
func (r *Repo) SetBatchExecution(on bool) { r.db.SetBatchExecution(on) }

// SetBatchMinRows sets the minimum table cardinality before the engine's
// planner picks the vectorized leg (0 restores the engine default).
func (r *Repo) SetBatchMinRows(n int64) { r.db.SetBatchMinRows(n) }

// Reload discards every in-memory lookup cache (sources, object
// accessions, source-rel keys) and reloads the source catalog from the
// database. Call it after the database's contents were replaced wholesale
// (DB.Restore): the cached IDs reference pre-restore rows. Reload bumps
// the mapping generation, so executor caches keyed on it invalidate too.
func (r *Repo) Reload() error {
	sources := make(map[string]*Source)
	sourcesByID := make(map[SourceID]*Source)
	err := queryEach(r.db, sqlSelectSources, nil, func(row []sqldb.Value) error {
		s := rowToSource(row)
		sources[strings.ToLower(s.Name)] = s
		sourcesByID[s.ID] = s
		return nil
	})
	if err != nil {
		return fmt.Errorf("gam: reload sources: %w", err)
	}
	r.mu.Lock()
	r.sources = sources
	r.sourcesByID = sourcesByID
	r.objects = make(map[SourceID]map[string]ObjectID)
	r.rels = make(map[relKey]SourceRelID)
	r.relsLoaded = false
	r.mu.Unlock()
	r.bumpGen()
	return nil
}

// queryEach streams a SELECT's rows through fn without materializing the
// result set, holding the engine's read lock for the whole iteration so
// fn observes one consistent statement snapshot (a concurrent
// ReplaceMapping can never produce a half-old/half-new row set). The row
// slice passed to fn is reused between calls; fn must copy anything it
// keeps and must not write to the database (use queryEachInterleaved for
// loops that write).
func queryEach(db *sqldb.DB, sql string, args []any, fn func([]sqldb.Value) error) error {
	return db.QueryEach(sql, func(row []sqldb.Value) error { return fn(row) }, args...)
}

// queryEachInterleaved streams rows via a cursor that takes the read lock
// per step, so fn may issue writes between rows. Reads are read-committed
// row by row, not a snapshot.
func queryEachInterleaved(db *sqldb.DB, sql string, args []any, fn func([]sqldb.Value) error) error {
	cur, err := db.QueryCursor(sql, args...)
	if err != nil {
		return err
	}
	defer cur.Close()
	for {
		row, err := cur.Next()
		if err != nil {
			return err
		}
		if row == nil {
			return nil
		}
		if err := fn(row); err != nil {
			return err
		}
	}
}

func (r *Repo) loadSources() error {
	err := queryEach(r.db, sqlSelectSources, nil, func(row []sqldb.Value) error {
		s := rowToSource(row)
		r.sources[strings.ToLower(s.Name)] = s
		r.sourcesByID[s.ID] = s
		return nil
	})
	if err != nil {
		return fmt.Errorf("gam: load sources: %w", err)
	}
	return nil
}

func rowToSource(row []sqldb.Value) *Source {
	s := &Source{
		ID:        SourceID(row[0].(int64)),
		Name:      row[1].(string),
		Content:   Content(row[2].(string)),
		Structure: Structure(row[3].(string)),
	}
	if v, ok := row[4].(string); ok {
		s.Release = v
	}
	if v, ok := row[5].(string); ok {
		s.Date = v
	}
	return s
}

// ---------------------------------------------------------------------------
// Sources

// EnsureSource returns the existing source with the given name or creates
// it. The boolean reports whether a new source was created. When the source
// exists but release/date differ, the audit fields are updated (the paper's
// source-level duplicate elimination compares name and audit info).
func (r *Repo) EnsureSource(info Source) (*Source, bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := strings.ToLower(info.Name)
	if s, ok := r.sources[key]; ok {
		if info.Release != "" && info.Release != s.Release {
			if _, err := r.db.Exec(
				sqlUpdateSourceAudit,
				info.Release, info.Date, int64(s.ID)); err != nil {
				return nil, false, fmt.Errorf("gam: update source audit: %w", err)
			}
			s.Release, s.Date = info.Release, info.Date
		}
		return s, false, nil
	}
	if info.Name == "" {
		return nil, false, fmt.Errorf("gam: source name must not be empty")
	}
	content, err := ParseContent(string(info.Content))
	if err != nil {
		return nil, false, err
	}
	structure, err := ParseStructure(string(info.Structure))
	if err != nil {
		return nil, false, err
	}
	res, err := r.db.Exec(
		sqlInsertSource,
		info.Name, string(content), string(structure), info.Release, info.Date)
	if err != nil {
		return nil, false, fmt.Errorf("gam: insert source: %w", err)
	}
	s := &Source{
		ID: SourceID(res.LastInsertID), Name: info.Name,
		Content: content, Structure: structure,
		Release: info.Release, Date: info.Date,
	}
	r.sources[key] = s
	r.sourcesByID[s.ID] = s
	return s, true, nil
}

// SourceByName returns the source with the given name (case-insensitive),
// or nil when unknown.
func (r *Repo) SourceByName(name string) *Source {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sources[strings.ToLower(name)]
}

// SourceByID returns the source with the given ID, or nil.
func (r *Repo) SourceByID(id SourceID) *Source {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sourcesByID[id]
}

// Sources returns all sources ordered by name.
func (r *Repo) Sources() []*Source {
	var out []*Source
	if err := queryEach(r.db, sqlSelectSourcesByName, nil, func(row []sqldb.Value) error {
		out = append(out, rowToSource(row))
		return nil
	}); err != nil {
		return nil
	}
	return out
}

// ---------------------------------------------------------------------------
// Objects

// objectCache returns the accession->ID map for a source, loading it from
// the database on first use. Caller holds r.mu.
func (r *Repo) objectCache(src SourceID) (map[string]ObjectID, error) {
	if m, ok := r.objects[src]; ok {
		return m, nil
	}
	m := make(map[string]ObjectID)
	err := queryEach(r.db, sqlSelectObjectAccs, []any{int64(src)}, func(row []sqldb.Value) error {
		m[row[1].(string)] = ObjectID(row[0].(int64))
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("gam: load objects of source %d: %w", src, err)
	}
	r.objects[src] = m
	return m, nil
}

// ObjectSpec describes an object to insert.
type ObjectSpec struct {
	Accession string
	Text      string
	HasNumber bool
	Number    float64
}

// EnsureObject inserts the object unless an object with the same accession
// already exists in the source (object-level duplicate elimination, §4.1).
// It returns the object ID and whether a new row was created.
func (r *Repo) EnsureObject(src SourceID, spec ObjectSpec) (ObjectID, bool, error) {
	ids, created, err := r.EnsureObjects(src, []ObjectSpec{spec})
	if err != nil {
		return 0, false, err
	}
	return ids[0], created == 1, nil
}

// EnsureObjects bulk-inserts objects with duplicate elimination by
// accession. It returns the object IDs aligned with specs and the number of
// newly created rows. Batched multi-row INSERTs keep large imports fast.
func (r *Repo) EnsureObjects(src SourceID, specs []ObjectSpec) ([]ObjectID, int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sourcesByID[src] == nil {
		return nil, 0, fmt.Errorf("gam: unknown source id %d", src)
	}
	cache, err := r.objectCache(src)
	if err != nil {
		return nil, 0, err
	}

	ids := make([]ObjectID, len(specs))
	var newIdx []int
	// firstSeen records the spec index of the first occurrence of each new
	// accession; batch-internal duplicates collapse onto it (encoded as a
	// negative placeholder patched after insertion).
	firstSeen := make(map[string]int)
	for i, spec := range specs {
		if spec.Accession == "" {
			return nil, 0, fmt.Errorf("gam: object %d has empty accession", i)
		}
		if id, ok := cache[spec.Accession]; ok {
			ids[i] = id
			continue
		}
		if first, dup := firstSeen[spec.Accession]; dup {
			ids[i] = ObjectID(-int64(first) - 1)
			continue
		}
		firstSeen[spec.Accession] = i
		newIdx = append(newIdx, i)
	}

	for start := 0; start < len(newIdx); start += batchChunk {
		end := start + batchChunk
		if end > len(newIdx) {
			end = len(newIdx)
		}
		batch := newIdx[start:end]
		args := make([]any, 0, len(batch)*4)
		for _, i := range batch {
			spec := specs[i]
			var num any
			if spec.HasNumber {
				num = spec.Number
			}
			var text any
			if spec.Text != "" {
				text = spec.Text
			}
			args = append(args, int64(src), spec.Accession, text, num)
		}
		res, err := r.db.Exec(objectInsertSQL(len(batch)), args...)
		if err != nil {
			return nil, 0, fmt.Errorf("gam: insert objects: %w", err)
		}
		// AUTOINCREMENT IDs are contiguous for a single multi-row insert.
		firstID := res.LastInsertID - int64(len(batch)) + 1
		for bi, i := range batch {
			id := ObjectID(firstID + int64(bi))
			ids[i] = id
			cache[specs[i].Accession] = id
		}
	}
	// Patch batch-internal duplicates.
	for i := range ids {
		if ids[i] < 0 {
			first := int(-int64(ids[i]) - 1)
			ids[i] = ids[first]
		}
	}
	return ids, len(newIdx), nil
}

// FillMissingObjectInfo back-fills text and number on existing objects
// that lack them. Cross-references create bare target objects before the
// target source itself is imported; when the real source data arrives, the
// descriptive text must land on those pre-existing rows. It returns the
// number of updated objects.
func (r *Repo) FillMissingObjectInfo(src SourceID, specs []ObjectSpec) (int, error) {
	bySpec := make(map[string]ObjectSpec, len(specs))
	for _, s := range specs {
		if s.Text != "" || s.HasNumber {
			bySpec[s.Accession] = s
		}
	}
	if len(bySpec) == 0 {
		return 0, nil
	}
	// Cursor iteration interleaves the UPDATEs with the scan: each row is
	// updated after it streams out, and updating text never re-qualifies a
	// later "text IS NULL" row, so the interleaving is safe.
	updated := 0
	err := queryEachInterleaved(r.db, sqlSelectObjectsNoText, []any{int64(src)}, func(row []sqldb.Value) error {
		spec, ok := bySpec[row[1].(string)]
		if !ok {
			return nil
		}
		var num any
		if spec.HasNumber {
			num = spec.Number
		}
		var text any
		if spec.Text != "" {
			text = spec.Text
		}
		if _, err := r.db.Exec(sqlUpdateObjectInfo, text, num, row[0].(int64)); err != nil {
			return err
		}
		updated++
		return nil
	})
	return updated, err
}

// LookupObject returns the ID of the object with the given accession in
// the source, or 0 when absent.
func (r *Repo) LookupObject(src SourceID, accession string) (ObjectID, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cache, err := r.objectCache(src)
	if err != nil {
		return 0, err
	}
	return cache[accession], nil
}

// LookupObjects resolves many accessions at once; missing accessions map
// to 0.
func (r *Repo) LookupObjects(src SourceID, accessions []string) (map[string]ObjectID, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cache, err := r.objectCache(src)
	if err != nil {
		return nil, err
	}
	out := make(map[string]ObjectID, len(accessions))
	for _, a := range accessions {
		out[a] = cache[a]
	}
	return out, nil
}

// Object returns the full object row by ID, or nil.
func (r *Repo) Object(id ObjectID) (*Object, error) {
	rs, err := r.db.Query(sqlSelectObjectByID, int64(id))
	if err != nil {
		return nil, err
	}
	if len(rs.Rows) == 0 {
		return nil, nil
	}
	return rowToObject(rs.Rows[0]), nil
}

// ObjectsScanEach streams all objects of a source in storage order (no
// accession sort) through fn — the cheapest full pass over a source, used
// by bulk renderers to build lookup maps. The Object passed to fn is
// reused between calls; copy it if kept. fn runs under the engine's read
// lock and must not write to the repository or issue further queries.
func (r *Repo) ObjectsScanEach(src SourceID, fn func(*Object) error) error {
	var obj Object
	return queryEach(r.db, sqlSelectObjectsBySourceScan, []any{int64(src)}, func(row []sqldb.Value) error {
		obj = Object{}
		fillObject(&obj, row)
		return fn(&obj)
	})
}

// ObjectsBySourceEach streams all objects of a source ordered by
// accession through fn, without materializing the object list. The Object
// passed to fn is reused between calls; copy it if kept. fn runs under
// the engine's read lock and must not write to the repository or issue
// further queries.
func (r *Repo) ObjectsBySourceEach(src SourceID, fn func(*Object) error) error {
	var obj Object
	return queryEach(r.db, sqlSelectObjectsBySource, []any{int64(src)}, func(row []sqldb.Value) error {
		obj = Object{}
		fillObject(&obj, row)
		return fn(&obj)
	})
}

// ObjectsBySource returns all objects of a source ordered by accession.
func (r *Repo) ObjectsBySource(src SourceID) ([]*Object, error) {
	var out []*Object
	err := r.ObjectsBySourceEach(src, func(o *Object) error {
		cp := *o
		out = append(out, &cp)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ObjectCount returns the number of objects in a source (all sources when
// src is 0).
func (r *Repo) ObjectCount(src SourceID) (int64, error) {
	var rs *sqldb.ResultSet
	var err error
	if src == 0 {
		rs, err = r.db.Query(sqlCountObjects)
	} else {
		rs, err = r.db.Query(sqlCountObjectsBySource, int64(src))
	}
	if err != nil {
		return 0, err
	}
	return rs.Rows[0][0].(int64), nil
}

func rowToObject(row []sqldb.Value) *Object {
	o := &Object{}
	fillObject(o, row)
	return o
}

// fillObject populates an Object from a full object row, copying the
// scalar values out so the (reused) row slice may be recycled.
func fillObject(o *Object, row []sqldb.Value) {
	o.ID = ObjectID(row[0].(int64))
	o.Source = SourceID(row[1].(int64))
	o.Accession = row[2].(string)
	if v, ok := row[3].(string); ok {
		o.Text = v
	}
	if v, ok := row[4].(float64); ok {
		o.HasNumber, o.Number = true, v
	}
}
