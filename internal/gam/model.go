// Package gam implements the Generic Annotation Model (GAM), the core data
// model of the GenMapper system (paper §3, Figure 4).
//
// GAM represents arbitrary annotation data from heterogeneous
// molecular-biological sources in four relations:
//
//	SOURCE      — data sources (public collections, ontologies, schemas)
//	OBJECT      — source objects: accession plus optional text/number
//	SOURCE_REL  — typed relationships between sources ("mappings")
//	OBJECT_REL  — relationships between objects ("associations"),
//	              optionally weighted with an evidence value
//
// The Repo type wraps an embedded relational database (internal/sqldb,
// standing in for the original system's MySQL backend) with the GAM schema
// and the lookup/ingestion operations the import pipeline and the operator
// layer need.
package gam

import "fmt"

// Content classifies a source by what its objects describe (paper §3:
// "gene-oriented, protein-oriented and other sources").
type Content string

// Source content classes.
const (
	ContentGene    Content = "gene"
	ContentProtein Content = "protein"
	ContentOther   Content = "other"
)

// ParseContent validates a content string.
func ParseContent(s string) (Content, error) {
	switch Content(s) {
	case ContentGene, ContentProtein, ContentOther:
		return Content(s), nil
	case "":
		return ContentOther, nil
	}
	return "", fmt.Errorf("gam: unknown content class %q", s)
}

// Structure distinguishes flat object collections from network sources
// (taxonomies, database schemas) whose objects are organized in a
// structure.
type Structure string

// Source structure classes.
const (
	StructureFlat    Structure = "flat"
	StructureNetwork Structure = "network"
)

// ParseStructure validates a structure string.
func ParseStructure(s string) (Structure, error) {
	switch Structure(s) {
	case StructureFlat, StructureNetwork:
		return Structure(s), nil
	case "":
		return StructureFlat, nil
	}
	return "", fmt.Errorf("gam: unknown structure class %q", s)
}

// RelType is the semantic type of a source-level relationship.
type RelType string

// Relationship types (paper §3). Fact and Similarity are annotation
// relationships imported from external sources; Contains and IsA are
// structural; Composed and Subsumed are derived by GenMapper itself.
const (
	RelFact       RelType = "fact"
	RelSimilarity RelType = "similarity"
	RelContains   RelType = "contains"
	RelIsA        RelType = "is_a"
	RelComposed   RelType = "composed"
	RelSubsumed   RelType = "subsumed"
)

// ParseRelType validates a relationship type string.
func ParseRelType(s string) (RelType, error) {
	switch RelType(s) {
	case RelFact, RelSimilarity, RelContains, RelIsA, RelComposed, RelSubsumed:
		return RelType(s), nil
	}
	return "", fmt.Errorf("gam: unknown relationship type %q", s)
}

// IsDerived reports whether the type is computed by GenMapper rather than
// imported from an external source.
func (t RelType) IsDerived() bool { return t == RelComposed || t == RelSubsumed }

// IsStructural reports whether the type describes intra-source structure.
func (t RelType) IsStructural() bool { return t == RelContains || t == RelIsA }

// SourceID identifies a row of SOURCE.
type SourceID int64

// ObjectID identifies a row of OBJECT.
type ObjectID int64

// SourceRelID identifies a row of SOURCE_REL (a mapping).
type SourceRelID int64

// Source is one row of the SOURCE relation.
type Source struct {
	ID        SourceID
	Name      string
	Content   Content
	Structure Structure
	Release   string
	Date      string
}

// Object is one row of the OBJECT relation. Text and Number are optional
// (paper §3: accession "often accompanied by a textual component";
// "alternatively, an object may also have a numeric representation").
type Object struct {
	ID        ObjectID
	Source    SourceID
	Accession string
	Text      string
	HasNumber bool
	Number    float64
}

// SourceRel is one row of SOURCE_REL: a typed mapping between two sources
// (or within one source, for structural relationships).
type SourceRel struct {
	ID      SourceRelID
	Source1 SourceID
	Source2 SourceID
	Type    RelType
}

// Assoc is one row of OBJECT_REL: an association between two objects under
// a specific mapping, with an optional evidence value (0 means unset).
type Assoc struct {
	Object1  ObjectID
	Object2  ObjectID
	Evidence float64
}
