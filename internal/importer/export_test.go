package importer

import (
	"sort"
	"strings"
	"testing"

	"genmapper/internal/eav"
	"genmapper/internal/gam"
	"genmapper/internal/gen"
	"genmapper/internal/sqldb"
)

// recordKey canonicalizes a record for set comparison.
func recordKey(r eav.Record) string {
	var sb strings.Builder
	sb.WriteString(r.Accession)
	sb.WriteByte('\x00')
	sb.WriteString(r.Target)
	sb.WriteByte('\x00')
	sb.WriteString(r.TargetAccession)
	return sb.String()
}

func recordSet(d *eav.Dataset) []string {
	out := make([]string, 0, len(d.Records))
	seen := make(map[string]bool)
	for _, r := range d.Records {
		k := recordKey(r)
		if r.Target == eav.TargetName && r.Text == "" {
			continue
		}
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

func TestExportRoundTrip(t *testing.T) {
	repo := newRepo(t)
	orig := eav.NewDataset(eav.SourceInfo{Name: "LocusLink", Content: "gene", Release: "r1", Date: "d1"})
	orig.Add("353", eav.TargetName, "", "adenine phosphoribosyltransferase")
	orig.Add("353", "Hugo", "APRT", "")
	orig.Add("353", "GO", "GO:0009116", "")
	orig.AddEvidence("353", "Unigene", "Hs.28914", "", 0.91)
	orig.Add("354", eav.TargetName, "", "locus two")
	orig.Add("354", eav.TargetNumber, "", "7.25")
	if _, err := Import(repo, orig, Options{}); err != nil {
		t.Fatal(err)
	}
	src := repo.SourceByName("LocusLink")

	exported, err := Export(repo, src.ID)
	if err != nil {
		t.Fatal(err)
	}
	if exported.Source.Name != "LocusLink" || exported.Source.Release != "r1" {
		t.Fatalf("exported source info = %+v", exported.Source)
	}

	// Record sets match (order-independent; NAME text preserved).
	got, want := recordSet(exported), recordSet(orig)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("export record set differs:\n got: %v\nwant: %v", got, want)
	}
	// Evidence survives.
	foundEv := false
	for _, r := range exported.Records {
		if r.Target == "Unigene" {
			foundEv = true
			if r.Evidence != 0.91 {
				t.Errorf("evidence = %g", r.Evidence)
			}
		}
	}
	if !foundEv {
		t.Fatal("similarity record lost")
	}

	// Import(Export(s)) changes nothing.
	st, err := Import(repo, exported, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.ObjectsNew != 0 || st.AssocsNew != 0 || st.TargetObjects != 0 {
		t.Fatalf("re-import of export not a no-op: %s", st)
	}
}

func TestExportStructure(t *testing.T) {
	repo := newRepo(t)
	orig := eav.NewDataset(eav.SourceInfo{Name: "GO", Structure: "network"})
	orig.Add("GO:1", eav.TargetName, "", "root")
	orig.Add("GO:2", eav.TargetName, "", "child")
	orig.Add("GO:2", eav.TargetIsA, "GO:1", "")
	orig.Add("bp", eav.TargetContains, "GO:1", "")
	orig.Add("bp", eav.TargetContains, "GO:2", "")
	if _, err := Import(repo, orig, Options{DeriveSubsumed: true}); err != nil {
		t.Fatal(err)
	}
	src := repo.SourceByName("GO")
	exported, err := Export(repo, src.ID)
	if err != nil {
		t.Fatal(err)
	}
	var isa, contains, subsumed int
	for _, r := range exported.Records {
		switch r.Target {
		case eav.TargetIsA:
			isa++
		case eav.TargetContains:
			contains++
		case "GO":
			subsumed++ // would indicate leaked derived mapping
		}
	}
	if isa != 1 || contains != 2 {
		t.Fatalf("structural records: isa=%d contains=%d", isa, contains)
	}
	if subsumed != 0 {
		t.Fatal("derived Subsumed mapping leaked into export")
	}
}

func TestExportUnknownSource(t *testing.T) {
	repo := newRepo(t)
	if _, err := Export(repo, 12345); err == nil {
		t.Fatal("unknown source accepted")
	}
}

// TestExportImportRoundTripProperty runs the round-trip over generated
// universe sources with diverse shapes.
func TestExportImportRoundTripProperty(t *testing.T) {
	u := gen.NewUniverse(gen.Config{Seed: 13, Scale: 0.001})
	repo, err := gam.Open(sqldb.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"GO", "LocusLink", "Enzyme", "Unigene", "NetAffx-HG-U95A"} {
		d, err := u.Dataset(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Import(repo, d, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"GO", "LocusLink", "Enzyme", "Unigene", "NetAffx-HG-U95A"} {
		src := repo.SourceByName(name)
		exported, err := Export(repo, src.ID)
		if err != nil {
			t.Fatalf("export %s: %v", name, err)
		}
		st, err := Import(repo, exported, Options{})
		if err != nil {
			t.Fatalf("re-import %s: %v", name, err)
		}
		if st.ObjectsNew != 0 || st.AssocsNew != 0 {
			t.Fatalf("source %s: Import(Export(s)) not a no-op: %s", name, st)
		}
	}
}
