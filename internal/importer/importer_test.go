package importer

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"genmapper/internal/eav"
	"genmapper/internal/gam"
	"genmapper/internal/sqldb"
)

func newRepo(t *testing.T) *gam.Repo {
	t.Helper()
	repo, err := gam.Open(sqldb.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	return repo
}

// table1Dataset reproduces the paper's Table 1 (parsed LocusLink data).
func table1Dataset() *eav.Dataset {
	d := eav.NewDataset(eav.SourceInfo{Name: "LocusLink", Content: "gene", Structure: "flat", Release: "r1"})
	d.Add("353", eav.TargetName, "", "adenine phosphoribosyltransferase")
	d.Add("353", "Hugo", "APRT", "adenine phosphoribosyltransferase")
	d.Add("353", "Location", "16q24", "")
	d.Add("353", "Enzyme", "2.4.2.7", "")
	d.Add("353", "GO", "GO:0009116", "nucleoside metabolism")
	return d
}

func TestImportTable1(t *testing.T) {
	repo := newRepo(t)
	st, err := Import(repo, table1Dataset(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.SourceCreated || st.ObjectsNew != 1 || st.TargetObjects != 4 || st.AssocsNew != 4 {
		t.Fatalf("stats = %+v", st)
	}
	// LocusLink object carries its NAME text.
	src := repo.SourceByName("LocusLink")
	id, _ := repo.LookupObject(src.ID, "353")
	obj, _ := repo.Object(id)
	if obj.Text != "adenine phosphoribosyltransferase" {
		t.Errorf("object text = %q", obj.Text)
	}
	// Four target sources auto-created, each with one mapping.
	for _, name := range []string{"Hugo", "Location", "Enzyme", "GO"} {
		tgt := repo.SourceByName(name)
		if tgt == nil {
			t.Fatalf("target source %s missing", name)
		}
		rel, _, err := repo.FindMapping(src.ID, tgt.ID)
		if err != nil || rel == nil {
			t.Fatalf("mapping LocusLink->%s missing: %v", name, err)
		}
		if rel.Type != gam.RelFact {
			t.Errorf("mapping type = %s, want fact", rel.Type)
		}
	}
}

func TestReImportIsIdempotent(t *testing.T) {
	repo := newRepo(t)
	if _, err := Import(repo, table1Dataset(), Options{}); err != nil {
		t.Fatal(err)
	}
	st, err := Import(repo, table1Dataset(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.SourceCreated {
		t.Error("source re-created on re-import")
	}
	if st.ObjectsNew != 0 || st.ObjectsDup != 1 {
		t.Errorf("objects new=%d dup=%d", st.ObjectsNew, st.ObjectsDup)
	}
	if st.AssocsNew != 0 || st.AssocsDup != 4 {
		t.Errorf("assocs new=%d dup=%d", st.AssocsNew, st.AssocsDup)
	}
	gstats, _ := repo.Stats()
	if gstats.Objects != 5 || gstats.Associations != 4 {
		t.Fatalf("duplicated data after re-import: %s", gstats)
	}
}

func TestIncrementalImportRelatesToExisting(t *testing.T) {
	// The paper's scenario: GO is already integrated; importing LocusLink
	// afterwards must relate new LocusLink objects to existing GO terms.
	repo := newRepo(t)
	goData := eav.NewDataset(eav.SourceInfo{Name: "GO", Structure: "network"})
	goData.Add("GO:0009116", eav.TargetName, "", "nucleoside metabolism")
	goData.Add("GO:0009117", eav.TargetName, "", "nucleotide metabolism")
	goData.Add("GO:0009116", eav.TargetIsA, "GO:0009117", "")
	if _, err := Import(repo, goData, Options{}); err != nil {
		t.Fatal(err)
	}
	goSrc := repo.SourceByName("GO")
	before, _ := repo.ObjectCount(goSrc.ID)

	st, err := Import(repo, table1Dataset(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	after, _ := repo.ObjectCount(goSrc.ID)
	if after != before {
		t.Fatalf("GO objects grew from %d to %d; GO:0009116 should be reused", before, after)
	}
	if st.TargetObjects != 3 { // Hugo, Location, Enzyme objects; GO reused
		t.Errorf("target objects = %d, want 3", st.TargetObjects)
	}
	// The association lands on the existing GO term.
	ll := repo.SourceByName("LocusLink")
	rel, _, _ := repo.FindMapping(ll.ID, goSrc.ID)
	assocs, _ := repo.Associations(rel.ID)
	if len(assocs) != 1 {
		t.Fatalf("LocusLink->GO assocs = %d", len(assocs))
	}
	goID, _ := repo.LookupObject(goSrc.ID, "GO:0009116")
	if assocs[0].Object2 != goID {
		t.Error("association does not point at the pre-existing GO term")
	}
}

func TestTextBackFill(t *testing.T) {
	// LocusLink references GO terms before GO itself is imported; the
	// later GO import must attach names to the pre-created bare objects.
	repo := newRepo(t)
	if _, err := Import(repo, table1Dataset(), Options{}); err != nil {
		t.Fatal(err)
	}
	goSrc := repo.SourceByName("GO")
	id, _ := repo.LookupObject(goSrc.ID, "GO:0009116")
	obj, _ := repo.Object(id)
	if obj.Text != "" {
		t.Fatalf("bare target object has text %q", obj.Text)
	}

	goData := eav.NewDataset(eav.SourceInfo{Name: "GO", Structure: "network"})
	goData.Add("GO:0009116", eav.TargetName, "", "nucleoside metabolism")
	if _, err := Import(repo, goData, Options{}); err != nil {
		t.Fatal(err)
	}
	obj, _ = repo.Object(id)
	if obj.Text != "nucleoside metabolism" {
		t.Fatalf("text not back-filled: %q", obj.Text)
	}
	// Existing text is never overwritten.
	goData2 := eav.NewDataset(eav.SourceInfo{Name: "GO", Structure: "network"})
	goData2.Add("GO:0009116", eav.TargetName, "", "a different name")
	if _, err := Import(repo, goData2, Options{}); err != nil {
		t.Fatal(err)
	}
	obj, _ = repo.Object(id)
	if obj.Text != "nucleoside metabolism" {
		t.Fatalf("text overwritten to %q", obj.Text)
	}
}

func TestImportStructuralRelationships(t *testing.T) {
	repo := newRepo(t)
	d := eav.NewDataset(eav.SourceInfo{Name: "GO", Structure: "network"})
	d.Add("biological_process", eav.TargetName, "", "Biological Process")
	d.Add("GO:1", eav.TargetName, "", "root term")
	d.Add("GO:2", eav.TargetName, "", "child term")
	d.Add("GO:2", eav.TargetIsA, "GO:1", "")
	d.Add("biological_process", eav.TargetContains, "GO:1", "")
	d.Add("biological_process", eav.TargetContains, "GO:2", "")
	st, err := Import(repo, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.AssocsNew != 3 {
		t.Fatalf("structural assocs = %d, want 3", st.AssocsNew)
	}
	src := repo.SourceByName("GO")
	if src.Structure != gam.StructureNetwork {
		t.Errorf("structure = %s, want network", src.Structure)
	}
	isaRel, ok, _ := repo.FindIsARel(src.ID)
	if !ok {
		t.Fatal("IS_A mapping missing")
	}
	isa, _ := repo.Associations(isaRel)
	if len(isa) != 1 {
		t.Fatalf("IS_A assocs = %d", len(isa))
	}
	containsRel, ok, _ := repo.FindRel(src.ID, src.ID, gam.RelContains)
	if !ok {
		t.Fatal("Contains mapping missing")
	}
	contains, _ := repo.Associations(containsRel)
	if len(contains) != 2 {
		t.Fatalf("Contains assocs = %d", len(contains))
	}
}

func TestDeriveSubsumed(t *testing.T) {
	repo := newRepo(t)
	d := eav.NewDataset(eav.SourceInfo{Name: "GO", Structure: "network"})
	// Chain GO:3 -> GO:2 -> GO:1.
	d.Add("GO:1", eav.TargetName, "", "root")
	d.Add("GO:2", eav.TargetIsA, "GO:1", "")
	d.Add("GO:3", eav.TargetIsA, "GO:2", "")
	st, err := Import(repo, d, Options{DeriveSubsumed: true})
	if err != nil {
		t.Fatal(err)
	}
	// Subsumed: GO:1 -> {GO:2, GO:3}, GO:2 -> {GO:3}.
	if st.SubsumedAssocs != 3 {
		t.Fatalf("subsumed = %d, want 3", st.SubsumedAssocs)
	}
	src := repo.SourceByName("GO")
	rel, ok, _ := repo.FindRel(src.ID, src.ID, gam.RelSubsumed)
	if !ok {
		t.Fatal("Subsumed mapping missing")
	}
	assocs, _ := repo.Associations(rel)
	if len(assocs) != 3 {
		t.Fatalf("stored subsumed = %d", len(assocs))
	}
	// Re-derivation replaces, not duplicates.
	n, err := DeriveSubsumed(repo, src.ID)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("re-derive = %d", n)
	}
}

func TestDeriveSubsumedFlatSource(t *testing.T) {
	repo := newRepo(t)
	if _, err := Import(repo, table1Dataset(), Options{}); err != nil {
		t.Fatal(err)
	}
	src := repo.SourceByName("LocusLink")
	n, err := DeriveSubsumed(repo, src.ID)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("flat source derived %d subsumed assocs", n)
	}
}

func TestDeriveSubsumedRejectsCycle(t *testing.T) {
	repo := newRepo(t)
	d := eav.NewDataset(eav.SourceInfo{Name: "Broken", Structure: "network"})
	d.Add("a", eav.TargetIsA, "b", "")
	d.Add("b", eav.TargetIsA, "a", "")
	if _, err := Import(repo, d, Options{DeriveSubsumed: true}); err == nil {
		t.Fatal("cyclic IS_A accepted by subsumption derivation")
	}
}

func TestSimilarityMappings(t *testing.T) {
	repo := newRepo(t)
	d := eav.NewDataset(eav.SourceInfo{Name: "NetAffx-HG-U95A", Content: "gene"})
	d.AddEvidence("100_at", "Unigene", "Hs.1", "", 0.87)
	d.Add("100_at", "Unigene", "Hs.2", "") // curated fact
	st, err := Import(repo, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.MappingsTouched != 2 {
		t.Fatalf("mappings touched = %d, want 2 (fact + similarity)", st.MappingsTouched)
	}
	src := repo.SourceByName("NetAffx-HG-U95A")
	tgt := repo.SourceByName("Unigene")
	factRel, ok, _ := repo.FindRel(src.ID, tgt.ID, gam.RelFact)
	if !ok {
		t.Fatal("fact mapping missing")
	}
	simRel, ok, _ := repo.FindRel(src.ID, tgt.ID, gam.RelSimilarity)
	if !ok {
		t.Fatal("similarity mapping missing")
	}
	facts, _ := repo.Associations(factRel)
	sims, _ := repo.Associations(simRel)
	if len(facts) != 1 || len(sims) != 1 {
		t.Fatalf("facts=%d sims=%d", len(facts), len(sims))
	}
	if sims[0].Evidence != 0.87 {
		t.Errorf("similarity evidence = %g", sims[0].Evidence)
	}
}

func TestContentHints(t *testing.T) {
	repo := newRepo(t)
	st, err := Import(repo, table1Dataset(), Options{
		ContentHints: map[string]gam.Content{"hugo": gam.ContentGene},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = st
	if got := repo.SourceByName("Hugo").Content; got != gam.ContentGene {
		t.Errorf("Hugo content = %s, want gene (hinted)", got)
	}
	if got := repo.SourceByName("Enzyme").Content; got != gam.ContentOther {
		t.Errorf("Enzyme content = %s, want other (default)", got)
	}
}

func TestImportNumberRecords(t *testing.T) {
	repo := newRepo(t)
	d := eav.NewDataset(eav.SourceInfo{Name: "Scores"})
	d.Add("s1", eav.TargetNumber, "", "3.25")
	if _, err := Import(repo, d, Options{}); err != nil {
		t.Fatal(err)
	}
	src := repo.SourceByName("Scores")
	id, _ := repo.LookupObject(src.ID, "s1")
	obj, _ := repo.Object(id)
	if !obj.HasNumber || obj.Number != 3.25 {
		t.Fatalf("number = %+v", obj)
	}
	bad := eav.NewDataset(eav.SourceInfo{Name: "Scores"})
	bad.Add("s2", eav.TargetNumber, "", "NaN-ish")
	if _, err := Import(repo, bad, Options{}); err == nil {
		t.Fatal("bad NUMBER accepted")
	}
}

func TestImportInvalidDataset(t *testing.T) {
	repo := newRepo(t)
	d := eav.NewDataset(eav.SourceInfo{}) // missing name
	if _, err := Import(repo, d, Options{}); err == nil {
		t.Fatal("invalid dataset accepted")
	}
}

func TestImportFile(t *testing.T) {
	repo := newRepo(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "ll.txt")
	content := ">>353\nNAME: adenine phosphoribosyltransferase\nGO: GO:0009116 | nucleoside metabolism\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := ImportFile(repo, "locuslink", path, eav.SourceInfo{Name: "LocusLink", Content: "gene"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.ObjectsNew != 1 || st.AssocsNew != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if _, err := ImportFile(repo, "locuslink", filepath.Join(dir, "missing"), eav.SourceInfo{Name: "X"}, Options{}); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.txt")
	os.WriteFile(bad, []byte("HUGO: before record\n"), 0o644)
	if _, err := ImportFile(repo, "locuslink", bad, eav.SourceInfo{Name: "X"}, Options{}); err == nil {
		t.Fatal("malformed file accepted")
	}
}

func TestStatsString(t *testing.T) {
	st := &Stats{Source: "X", ObjectsNew: 1}
	if !strings.Contains(st.String(), "source=X") {
		t.Errorf("String = %q", st.String())
	}
}
