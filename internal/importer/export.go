package importer

import (
	"fmt"
	"strconv"

	"genmapper/internal/eav"
	"genmapper/internal/gam"
)

// Export reconstructs the EAV staging dataset of a source from its GAM
// representation: the inverse of Import, restricted to data that
// originated from the source itself (imported Fact/Similarity mappings
// stored with the source as domain, plus IS_A/Contains structure). Derived
// mappings (Composed, Subsumed) are GenMapper's own products and are not
// exported.
//
// Import(Export(s)) is a no-op on an up-to-date database, which the test
// suite uses as the round-trip invariant of the generic transformation.
func Export(repo *gam.Repo, src gam.SourceID) (*eav.Dataset, error) {
	source := repo.SourceByID(src)
	if source == nil {
		return nil, fmt.Errorf("importer: unknown source id %d", src)
	}
	d := eav.NewDataset(eav.SourceInfo{
		Name:      source.Name,
		Content:   string(source.Content),
		Structure: string(source.Structure),
		Release:   source.Release,
		Date:      source.Date,
	})

	objs, err := repo.ObjectsBySource(src)
	if err != nil {
		return nil, err
	}
	accByID := make(map[gam.ObjectID]string, len(objs))
	for _, o := range objs {
		accByID[o.ID] = o.Accession
		if o.Text != "" {
			d.Add(o.Accession, eav.TargetName, "", o.Text)
		}
		if o.HasNumber {
			d.Add(o.Accession, eav.TargetNumber, "", strconv.FormatFloat(o.Number, 'g', -1, 64))
		}
	}

	rels, err := repo.SourceRels()
	if err != nil {
		return nil, err
	}
	for _, rel := range rels {
		if rel.Source1 != src || rel.Type.IsDerived() {
			continue
		}
		assocs, err := repo.Associations(rel.ID)
		if err != nil {
			return nil, err
		}
		switch rel.Type {
		case gam.RelIsA, gam.RelContains:
			target := eav.TargetIsA
			if rel.Type == gam.RelContains {
				target = eav.TargetContains
			}
			for _, a := range assocs {
				from, to := accByID[a.Object1], accByID[a.Object2]
				if from == "" || to == "" {
					return nil, fmt.Errorf("importer: export: structural association references foreign object")
				}
				d.Add(from, target, to, "")
			}
		default: // fact, similarity
			tgtSource := repo.SourceByID(rel.Source2)
			if tgtSource == nil {
				return nil, fmt.Errorf("importer: export: mapping %d has unknown target source", rel.ID)
			}
			for _, a := range assocs {
				from := accByID[a.Object1]
				if from == "" {
					return nil, fmt.Errorf("importer: export: association domain outside source")
				}
				tgtObj, err := repo.Object(a.Object2)
				if err != nil {
					return nil, err
				}
				if tgtObj == nil {
					return nil, fmt.Errorf("importer: export: dangling target object %d", a.Object2)
				}
				if a.Evidence != 0 {
					d.AddEvidence(from, tgtSource.Name, tgtObj.Accession, "", a.Evidence)
				} else {
					d.Add(from, tgtSource.Name, tgtObj.Accession, "")
				}
			}
		}
	}
	return d, nil
}
