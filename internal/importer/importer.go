// Package importer implements the Import step of GenMapper's two-phase
// integration pipeline (paper §4.1): the generic EAV-to-GAM transformation
// and migration module that is "implemented once" and works for every
// source.
//
// Import consumes an eav.Dataset (the output of any parser), performs
// duplicate elimination at the source level (by name and audit info) and
// at the object level (by accession), relates new associations to objects
// that already exist in the database, and materializes structural
// relationships (IS_A, Contains) plus, optionally, the derived Subsumed
// mapping.
package importer

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"genmapper/internal/eav"
	"genmapper/internal/gam"
	"genmapper/internal/parser"
	"genmapper/internal/taxonomy"
)

// Options tunes an import run.
type Options struct {
	// DeriveSubsumed materializes the Subsumed mapping (transitive closure
	// of IS_A) after importing a network source.
	DeriveSubsumed bool
	// ContentHints assigns content classes to target sources created as
	// side effects (keyed by source name, case-insensitive).
	ContentHints map[string]gam.Content
}

// Stats reports what one import run did.
type Stats struct {
	Source          string
	SourceCreated   bool
	ObjectsNew      int
	ObjectsDup      int
	TargetObjects   int
	AssocsNew       int
	AssocsDup       int
	MappingsTouched int
	SubsumedAssocs  int
}

// String renders the stats in one line for CLI output.
func (s *Stats) String() string {
	return fmt.Sprintf("source=%s created=%v objects(new=%d dup=%d) targets=%d assocs(new=%d dup=%d) mappings=%d subsumed=%d",
		s.Source, s.SourceCreated, s.ObjectsNew, s.ObjectsDup, s.TargetObjects,
		s.AssocsNew, s.AssocsDup, s.MappingsTouched, s.SubsumedAssocs)
}

// Import runs the generic EAV-to-GAM transformation for one dataset.
func Import(repo *gam.Repo, d *eav.Dataset, opts Options) (*Stats, error) {
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("importer: %w", err)
	}
	st := &Stats{Source: d.Source.Name}

	structure := d.Source.Structure
	if hasStructuralRecords(d) {
		structure = string(gam.StructureNetwork)
	}
	src, created, err := repo.EnsureSource(gam.Source{
		Name:      d.Source.Name,
		Content:   gam.Content(d.Source.Content),
		Structure: gam.Structure(structure),
		Release:   d.Source.Release,
		Date:      d.Source.Date,
	})
	if err != nil {
		return nil, fmt.Errorf("importer: %w", err)
	}
	st.SourceCreated = created

	if err := importOwnObjects(repo, d, src, st); err != nil {
		return nil, err
	}
	if err := importCrossReferences(repo, d, src, opts, st); err != nil {
		return nil, err
	}
	if err := importStructure(repo, d, src, st); err != nil {
		return nil, err
	}
	if opts.DeriveSubsumed {
		n, err := DeriveSubsumed(repo, src.ID)
		if err != nil {
			return nil, err
		}
		st.SubsumedAssocs = n
		if n > 0 {
			st.MappingsTouched++
		}
	}
	return st, nil
}

// ImportFile parses a source file with the named format parser and imports
// the result.
func ImportFile(repo *gam.Repo, format, path string, info eav.SourceInfo, opts Options) (*Stats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("importer: %w", err)
	}
	defer f.Close()
	d, err := parser.Parse(format, f, info)
	if err != nil {
		return nil, err
	}
	return Import(repo, d, opts)
}

func hasStructuralRecords(d *eav.Dataset) bool {
	for _, r := range d.Records {
		if r.Target == eav.TargetIsA || r.Target == eav.TargetContains {
			return true
		}
	}
	return false
}

// importOwnObjects creates the dataset's own objects, carrying NAME text
// and NUMBER values. Objects referenced by IS_A / CONTAINS records within
// the same source are created too.
func importOwnObjects(repo *gam.Repo, d *eav.Dataset, src *gam.Source, st *Stats) error {
	type objInfo struct {
		text   string
		num    float64
		hasNum bool
	}
	infos := make(map[string]*objInfo)
	var order []string
	touch := func(acc string) *objInfo {
		if oi, ok := infos[acc]; ok {
			return oi
		}
		oi := &objInfo{}
		infos[acc] = oi
		order = append(order, acc)
		return oi
	}
	for _, r := range d.Records {
		oi := touch(r.Accession)
		switch r.Target {
		case eav.TargetName:
			if oi.text == "" {
				oi.text = r.Text
			}
		case eav.TargetNumber:
			n, err := strconv.ParseFloat(strings.TrimSpace(r.Text), 64)
			if err != nil {
				return fmt.Errorf("importer: object %s: bad NUMBER %q", r.Accession, r.Text)
			}
			oi.num, oi.hasNum = n, true
		case eav.TargetIsA, eav.TargetContains:
			touch(r.TargetAccession)
		}
	}
	specs := make([]gam.ObjectSpec, len(order))
	for i, acc := range order {
		oi := infos[acc]
		specs[i] = gam.ObjectSpec{Accession: acc, Text: oi.text, HasNumber: oi.hasNum, Number: oi.num}
	}
	_, createdN, err := repo.EnsureObjects(src.ID, specs)
	if err != nil {
		return fmt.Errorf("importer: %w", err)
	}
	st.ObjectsNew = createdN
	st.ObjectsDup = len(specs) - createdN
	// Back-fill text/number on objects that earlier imports created as
	// bare cross-reference targets.
	if st.ObjectsDup > 0 {
		if _, err := repo.FillMissingObjectInfo(src.ID, specs); err != nil {
			return fmt.Errorf("importer: back-fill object info: %w", err)
		}
	}
	return nil
}

// importCrossReferences creates target sources/objects and the Fact /
// Similarity mappings with their associations.
func importCrossReferences(repo *gam.Repo, d *eav.Dataset, src *gam.Source, opts Options, st *Stats) error {
	// Group cross-reference records per target source, split into fact
	// (no evidence) and similarity (computed, with evidence).
	type pair struct {
		from, to string
		evidence float64
	}
	facts := make(map[string][]pair)
	sims := make(map[string][]pair)
	for _, r := range d.Records {
		if eav.IsPseudoTarget(r.Target) {
			continue
		}
		p := pair{from: r.Accession, to: r.TargetAccession, evidence: r.Evidence}
		if r.Evidence != 0 {
			sims[r.Target] = append(sims[r.Target], p)
		} else {
			facts[r.Target] = append(facts[r.Target], p)
		}
	}

	process := func(targetName string, pairs []pair, relType gam.RelType) error {
		content := gam.ContentOther
		if opts.ContentHints != nil {
			if c, ok := opts.ContentHints[strings.ToLower(targetName)]; ok {
				content = c
			}
		}
		tgt, _, err := repo.EnsureSource(gam.Source{Name: targetName, Content: content})
		if err != nil {
			return err
		}
		// Create referenced target objects (they may predate this import,
		// in which case the new associations relate to the existing rows —
		// the "re-importing LocusLink only requires to relate the new
		// LocusLink objects with the existing GO terms" case).
		accs := make([]gam.ObjectSpec, len(pairs))
		for i, p := range pairs {
			accs[i] = gam.ObjectSpec{Accession: p.to}
		}
		tgtIDs, tgtNew, err := repo.EnsureObjects(tgt.ID, accs)
		if err != nil {
			return err
		}
		st.TargetObjects += tgtNew

		srcIDs := make([]string, len(pairs))
		for i, p := range pairs {
			srcIDs[i] = p.from
		}
		fromIDs, err := repo.LookupObjects(src.ID, srcIDs)
		if err != nil {
			return err
		}
		rel, _, err := repo.EnsureSourceRel(src.ID, tgt.ID, relType)
		if err != nil {
			return err
		}
		assocs := make([]gam.Assoc, len(pairs))
		for i, p := range pairs {
			from := fromIDs[p.from]
			if from == 0 {
				return fmt.Errorf("importer: internal: source object %q missing", p.from)
			}
			assocs[i] = gam.Assoc{Object1: from, Object2: tgtIDs[i], Evidence: p.evidence}
		}
		inserted, err := repo.AddAssociations(rel, assocs, true)
		if err != nil {
			return err
		}
		st.AssocsNew += inserted
		st.AssocsDup += len(assocs) - inserted
		st.MappingsTouched++
		return nil
	}

	for _, targetName := range d.Targets() {
		if pairs := facts[targetName]; len(pairs) > 0 {
			if err := process(targetName, pairs, gam.RelFact); err != nil {
				return fmt.Errorf("importer: target %s: %w", targetName, err)
			}
		}
		if pairs := sims[targetName]; len(pairs) > 0 {
			if err := process(targetName, pairs, gam.RelSimilarity); err != nil {
				return fmt.Errorf("importer: target %s: %w", targetName, err)
			}
		}
	}
	return nil
}

// importStructure materializes IS_A and Contains mappings within the
// source.
func importStructure(repo *gam.Repo, d *eav.Dataset, src *gam.Source, st *Stats) error {
	var isa, contains []gam.Assoc
	for _, r := range d.Records {
		if r.Target != eav.TargetIsA && r.Target != eav.TargetContains {
			continue
		}
		from, err := repo.LookupObject(src.ID, r.Accession)
		if err != nil {
			return err
		}
		to, err := repo.LookupObject(src.ID, r.TargetAccession)
		if err != nil {
			return err
		}
		if from == 0 || to == 0 {
			return fmt.Errorf("importer: structural record %s -> %s references missing object", r.Accession, r.TargetAccession)
		}
		if r.Target == eav.TargetIsA {
			// Object1 = child, Object2 = parent.
			isa = append(isa, gam.Assoc{Object1: from, Object2: to})
		} else {
			// Object1 = partition, Object2 = member.
			contains = append(contains, gam.Assoc{Object1: from, Object2: to})
		}
	}
	add := func(assocs []gam.Assoc, typ gam.RelType) error {
		if len(assocs) == 0 {
			return nil
		}
		rel, _, err := repo.EnsureSourceRel(src.ID, src.ID, typ)
		if err != nil {
			return err
		}
		inserted, err := repo.AddAssociations(rel, assocs, true)
		if err != nil {
			return err
		}
		st.AssocsNew += inserted
		st.AssocsDup += len(assocs) - inserted
		st.MappingsTouched++
		return nil
	}
	if err := add(isa, gam.RelIsA); err != nil {
		return fmt.Errorf("importer: is_a: %w", err)
	}
	if err := add(contains, gam.RelContains); err != nil {
		return fmt.Errorf("importer: contains: %w", err)
	}
	return nil
}

// DeriveSubsumed materializes the Subsumed mapping of a source from its
// IS_A structure (paper §3: "Subsumed relationships are automatically
// derived from the IS_A structure of a source and contain the associations
// of a term in a taxonomy to all subsumed terms"). An existing Subsumed
// mapping is replaced. It returns the number of subsumed associations.
func DeriveSubsumed(repo *gam.Repo, src gam.SourceID) (int, error) {
	isaRel, _, err := repo.FindIsARel(src)
	if err != nil {
		return 0, err
	}
	if isaRel == 0 {
		return 0, nil // flat source: nothing to derive
	}
	assocs, err := repo.Associations(isaRel)
	if err != nil {
		return 0, err
	}
	edges := make([]taxonomy.Edge, len(assocs))
	for i, a := range assocs {
		edges[i] = taxonomy.Edge{Child: int64(a.Object1), Parent: int64(a.Object2)}
	}
	dag := taxonomy.NewDAG(edges)
	if err := dag.Validate(); err != nil {
		return 0, fmt.Errorf("importer: source %d: %w", src, err)
	}
	subsumed, err := dag.SubsumedEdges()
	if err != nil {
		return 0, err
	}

	rel, created, err := repo.EnsureSourceRel(src, src, gam.RelSubsumed)
	if err != nil {
		return 0, err
	}
	if !created {
		if err := repo.DeleteMapping(rel); err != nil {
			return 0, err
		}
		rel, _, err = repo.EnsureSourceRel(src, src, gam.RelSubsumed)
		if err != nil {
			return 0, err
		}
	}
	out := make([]gam.Assoc, len(subsumed))
	for i, e := range subsumed {
		// Object1 = term, Object2 = subsumed (descendant) term.
		out[i] = gam.Assoc{Object1: gam.ObjectID(e.Parent), Object2: gam.ObjectID(e.Child)}
	}
	n, err := repo.AddAssociations(rel, out, false)
	if err != nil {
		return 0, err
	}
	return n, nil
}
