// Package gen deterministically generates the synthetic universe of public
// data sources GenMapper integrates. Real 2004 snapshots of LocusLink, GO,
// Enzyme, NetAffx and the other sources are unavailable (and would not be
// redistributable), so this package reproduces their *statistical shape*:
// per-source accession schemes, native file formats, cross-reference
// fan-out, taxonomy depth and inter-source connectivity. A scale factor of
// 1.0 regenerates the paper's deployment volume (§5: ~2M objects, 60+
// sources, ~5M associations, several hundred mappings); smaller factors
// produce proportionally smaller universes for tests and benchmarks.
//
// Generation is fully deterministic per (Seed, Scale): every source is
// rendered in its native format (LocusLink record dumps, OBO term files,
// Enzyme .dat files, cross-reference tables) and parsed back through the
// production parsers, so the same code path handles synthetic and real
// files.
package gen

import (
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"genmapper/internal/eav"
	"genmapper/internal/parser"
)

// Config selects a reproducible universe.
type Config struct {
	Seed  int64
	Scale float64 // 1.0 = paper scale (~2M objects)
}

// DefaultConfig is a laptop-friendly universe (about 1/50 of paper scale).
func DefaultConfig() Config { return Config{Seed: 1, Scale: 0.02} }

// Universe generates source files and datasets on demand.
type Universe struct {
	cfg    Config
	specs  []SourceSpec
	byName map[string]*SourceSpec
}

// NewUniverse scales the source catalog by cfg.Scale.
func NewUniverse(cfg Config) *Universe {
	if cfg.Scale <= 0 {
		cfg.Scale = 0.02
	}
	u := &Universe{cfg: cfg, byName: make(map[string]*SourceSpec, len(catalog))}
	for _, spec := range catalog {
		s := spec
		s.BaseCount = scaledCount(spec, cfg.Scale)
		u.specs = append(u.specs, s)
	}
	for i := range u.specs {
		u.byName[strings.ToLower(u.specs[i].Name)] = &u.specs[i]
	}
	return u
}

func scaledCount(spec SourceSpec, scale float64) int {
	n := int(float64(spec.BaseCount) * scale)
	min := 5
	if spec.Structure == "network" {
		min = 30 // keep taxonomies deep enough to be interesting
	}
	if n < min {
		n = min
	}
	return n
}

// Names lists the universe's sources in import order.
func (u *Universe) Names() []string {
	out := make([]string, len(u.specs))
	for i, s := range u.specs {
		out[i] = s.Name
	}
	return out
}

// Spec returns the scaled spec of a source (nil when unknown).
func (u *Universe) Spec(name string) *SourceSpec {
	return u.byName[strings.ToLower(name)]
}

// Count returns the scaled object count of a source.
func (u *Universe) Count(name string) int {
	if s := u.Spec(name); s != nil {
		return s.BaseCount
	}
	return 0
}

// Accession returns the i-th accession of a source; the same function
// drives both object generation and cross-reference generation, keeping
// references consistent across files.
func (u *Universe) Accession(name string, i int) string {
	spec := u.Spec(name)
	if spec == nil {
		return fmt.Sprintf("%s:%d", name, i)
	}
	if spec.Format == "enzyme" {
		return ecNumber(i)
	}
	return accession(spec.AccPattern, i)
}

func accession(pattern string, i int) string {
	switch strings.Count(pattern, "%") {
	case 0:
		return fmt.Sprintf("%s%d", pattern, i+1)
	case 1:
		return fmt.Sprintf(pattern, i+1)
	default:
		if strings.Contains(pattern, "%c") {
			return fmt.Sprintf(pattern, 'A'+rune(i%26), i/26+1)
		}
		return fmt.Sprintf(pattern, 1+i%5, i+1)
	}
}

// ecNumber enumerates unique EC numbers in mixed radix.
func ecNumber(i int) string {
	d := 1 + i%20
	c := 1 + (i/20)%10
	b := 1 + (i/200)%12
	a := 1 + (i/2400)%6
	return fmt.Sprintf("%d.%d.%d.%d", a, b, c, d)
}

// rng returns the deterministic random stream of one source.
func (u *Universe) rng(name string) *rand.Rand {
	h := fnv.New64a()
	io.WriteString(h, name)
	return rand.New(rand.NewSource(u.cfg.Seed*1099511628211 + int64(h.Sum64()&0x7fffffffffff)))
}

// SourceInfo builds the audit header for a source.
func (u *Universe) SourceInfo(name string) eav.SourceInfo {
	spec := u.Spec(name)
	if spec == nil {
		return eav.SourceInfo{Name: name}
	}
	return eav.SourceInfo{
		Name:      spec.Name,
		Content:   spec.Content,
		Structure: spec.Structure,
		Release:   fmt.Sprintf("synthetic-seed%d-scale%g", u.cfg.Seed, u.cfg.Scale),
		Date:      "2004-03-14",
	}
}

// Render writes the native-format file of one source.
func (u *Universe) Render(name string, w io.Writer) error {
	spec := u.Spec(name)
	if spec == nil {
		return fmt.Errorf("gen: unknown source %q", name)
	}
	rng := u.rng(spec.Name)
	switch spec.Format {
	case "locuslink":
		return u.renderLocusLink(spec, rng, w)
	case "obo":
		return u.renderOBO(spec, rng, w)
	case "enzyme":
		return u.renderEnzyme(spec, rng, w)
	case "tabular":
		return u.renderTabular(spec, rng, w)
	}
	return fmt.Errorf("gen: source %q has unknown format %q", name, spec.Format)
}

// Dataset renders and parses one source, returning the EAV dataset exactly
// as a real import would stage it.
func (u *Universe) Dataset(name string) (*eav.Dataset, error) {
	spec := u.Spec(name)
	if spec == nil {
		return nil, fmt.Errorf("gen: unknown source %q", name)
	}
	var sb strings.Builder
	if err := u.Render(name, &sb); err != nil {
		return nil, err
	}
	return parser.Parse(spec.Format, strings.NewReader(sb.String()), u.SourceInfo(name))
}

// WriteFiles renders every source into dir, one file per source, and
// returns the file paths keyed by source name.
func (u *Universe) WriteFiles(dir string) (map[string]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("gen: %w", err)
	}
	out := make(map[string]string, len(u.specs))
	for _, spec := range u.specs {
		path := filepath.Join(dir, fileName(spec))
		f, err := os.Create(path)
		if err != nil {
			return nil, fmt.Errorf("gen: %w", err)
		}
		if err := u.Render(spec.Name, f); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, fmt.Errorf("gen: %w", err)
		}
		out[spec.Name] = path
	}
	return out, nil
}

func fileName(spec SourceSpec) string {
	ext := map[string]string{
		"locuslink": ".ll", "obo": ".obo", "enzyme": ".dat", "tabular": ".tsv",
	}[spec.Format]
	return strings.ToLower(spec.Name) + ext
}

// ---------------------------------------------------------------------------
// Cross-reference generation

// xrefTargets picks the referenced accessions for one object under one
// XRef declaration.
func (u *Universe) xrefTargets(x XRef, rng *rand.Rand) []string {
	n := int(x.AvgFanOut)
	if rng.Float64() < x.AvgFanOut-float64(n) {
		n++
	}
	if n == 0 {
		return nil
	}
	count := u.Count(x.Target)
	if count == 0 {
		return nil
	}
	out := make([]string, 0, n)
	for k := 0; k < n; k++ {
		out = append(out, u.Accession(x.Target, rng.Intn(count)))
	}
	return out
}

func evidenceValue(rng *rand.Rand) float64 {
	return float64(50+rng.Intn(50)) / 100 // 0.50 .. 0.99
}

// ---------------------------------------------------------------------------
// Format renderers

func (u *Universe) renderLocusLink(spec *SourceSpec, rng *rand.Rand, w io.Writer) error {
	bw := newErrWriter(w)
	for i := 0; i < spec.BaseCount; i++ {
		bw.printf(">>%s\n", u.Accession(spec.Name, i))
		bw.printf("NAME: %s\n", objectName(rng))
		for _, x := range spec.XRefs {
			for _, tgt := range u.xrefTargets(x, rng) {
				key := strings.ToUpper(x.Target)
				if rng.Intn(4) == 0 {
					bw.printf("%s: %s | %s\n", key, tgt, termName(rng))
				} else {
					bw.printf("%s: %s\n", key, tgt)
				}
			}
		}
	}
	return bw.err
}

func (u *Universe) renderOBO(spec *SourceSpec, rng *rand.Rand, w io.Writer) error {
	bw := newErrWriter(w)
	bw.printf("format-version: 1.2\nontology: %s\n\n", strings.ToLower(spec.Name))
	namespaces := spec.Namespaces
	if len(namespaces) == 0 {
		namespaces = []string{"default"}
	}
	// Track earlier terms per namespace so is_a links stay acyclic and
	// within a sub-taxonomy (Contains partition).
	prev := make(map[string][]string, len(namespaces))
	for i := 0; i < spec.BaseCount; i++ {
		id := u.Accession(spec.Name, i)
		ns := namespaces[i%len(namespaces)]
		bw.printf("[Term]\nid: %s\nname: %s\nnamespace: %s\n", id, termName(rng), ns)
		if earlier := prev[ns]; len(earlier) > 0 {
			parent := earlier[rng.Intn(len(earlier))]
			bw.printf("is_a: %s ! parent\n", parent)
			// Occasional multiple inheritance (GO terms may specialize
			// several terms).
			if len(earlier) > 1 && rng.Intn(10) == 0 {
				second := earlier[rng.Intn(len(earlier))]
				if second != parent {
					bw.printf("is_a: %s ! second parent\n", second)
				}
			}
		}
		bw.printf("\n")
		prev[ns] = append(prev[ns], id)
	}
	return bw.err
}

func (u *Universe) renderEnzyme(spec *SourceSpec, rng *rand.Rand, w io.Writer) error {
	bw := newErrWriter(w)
	for i := 0; i < spec.BaseCount; i++ {
		bw.printf("ID   %s\n", ecNumber(i))
		bw.printf("DE   %s.\n", strings.Title(objectName(rng)))
		for _, x := range spec.XRefs {
			for _, tgt := range u.xrefTargets(x, rng) {
				bw.printf("DR   %s, %s_HUMAN;\n", tgt, geneSymbol(rng, i))
			}
		}
		bw.printf("//\n")
	}
	return bw.err
}

func (u *Universe) renderTabular(spec *SourceSpec, rng *rand.Rand, w io.Writer) error {
	bw := newErrWriter(w)
	bw.printf("#accession\tname\txrefs\n")
	for i := 0; i < spec.BaseCount; i++ {
		acc := u.Accession(spec.Name, i)
		var name string
		if spec.Name == "Hugo" {
			name = geneSymbol(rng, i)
		} else {
			name = objectName(rng)
		}
		var refs []string
		for _, x := range spec.XRefs {
			for _, tgt := range u.xrefTargets(x, rng) {
				if x.Evidence {
					refs = append(refs, fmt.Sprintf("%s:%s|%.2f", x.Target, tgt, evidenceValue(rng)))
				} else {
					refs = append(refs, fmt.Sprintf("%s:%s", x.Target, tgt))
				}
			}
		}
		bw.printf("%s\t%s\t%s\n", acc, name, strings.Join(refs, ";"))
	}
	return bw.err
}

// errWriter folds write errors so renderers stay readable.
type errWriter struct {
	w   io.Writer
	err error
}

func newErrWriter(w io.Writer) *errWriter { return &errWriter{w: w} }

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// ExpectedTotals estimates the number of objects across all sources (used
// by the scale experiment harness to report target vs achieved counts).
func (u *Universe) ExpectedTotals() (objects int) {
	for _, s := range u.specs {
		objects += s.BaseCount
	}
	return objects
}

// SortedSpecs returns specs sorted by name (for stable reporting).
func (u *Universe) SortedSpecs() []SourceSpec {
	out := append([]SourceSpec(nil), u.specs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
