package gen

import (
	"math/rand"
	"strings"
)

// Deterministic pseudo-biological vocabulary for object names. The texts
// only need to look like curated annotation strings ("adenine
// phosphoribosyltransferase"); they carry no semantics.

var nameStems = []string{
	"adenine", "guanine", "cytosine", "thymine", "uracil", "purine",
	"pyrimidine", "nucleoside", "nucleotide", "ribose", "phosphate",
	"kinase", "phosphatase", "transferase", "hydrolase", "ligase",
	"oxidase", "reductase", "synthase", "synthetase", "isomerase",
	"mutase", "carboxylase", "dehydrogenase", "peptidase", "protease",
	"receptor", "channel", "transporter", "carrier", "binding",
	"membrane", "nuclear", "ribosomal", "mitochondrial", "cytoplasmic",
	"histone", "tubulin", "actin", "myosin", "collagen", "keratin",
	"globin", "albumin", "ferritin", "insulin", "interferon",
	"interleukin", "cadherin", "integrin", "laminin", "fibronectin",
}

var nameQualifiers = []string{
	"alpha", "beta", "gamma", "delta", "epsilon", "kappa", "sigma",
	"type I", "type II", "type III", "precursor", "isoform 1",
	"isoform 2", "subunit A", "subunit B", "like", "associated",
	"regulatory", "catalytic", "putative", "family member",
}

var processWords = []string{
	"metabolism", "biosynthesis", "catabolism", "transport", "signaling",
	"regulation", "response", "assembly", "organization", "repair",
	"replication", "transcription", "translation", "splicing", "folding",
	"degradation", "adhesion", "migration", "proliferation", "apoptosis",
	"differentiation", "development", "morphogenesis", "homeostasis",
}

// objectName produces a protein/gene-product style name.
func objectName(rng *rand.Rand) string {
	var sb strings.Builder
	sb.WriteString(nameStems[rng.Intn(len(nameStems))])
	sb.WriteByte(' ')
	sb.WriteString(nameStems[rng.Intn(len(nameStems))])
	if rng.Intn(3) == 0 {
		sb.WriteByte(' ')
		sb.WriteString(nameQualifiers[rng.Intn(len(nameQualifiers))])
	}
	return sb.String()
}

// termName produces a GO-style process/function term name.
func termName(rng *rand.Rand) string {
	var sb strings.Builder
	sb.WriteString(nameStems[rng.Intn(len(nameStems))])
	sb.WriteByte(' ')
	sb.WriteString(processWords[rng.Intn(len(processWords))])
	if rng.Intn(4) == 0 {
		sb.WriteString(", ")
		sb.WriteString(nameQualifiers[rng.Intn(len(nameQualifiers))])
	}
	return sb.String()
}

// geneSymbol produces a Hugo-style short gene symbol.
func geneSymbol(rng *rand.Rand, i int) string {
	letters := "ABCDEFGHIKLMNPRSTVWYZ"
	var sb strings.Builder
	n := 3 + rng.Intn(2)
	for j := 0; j < n; j++ {
		sb.WriteByte(letters[rng.Intn(len(letters))])
	}
	sb.WriteByte('0' + byte(1+i%9))
	return sb.String()
}
