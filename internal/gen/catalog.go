package gen

// The source catalog models the landscape of public molecular-biological
// data sources GenMapper integrated in 2004 (paper §1/§5: "more than 60
// public sources", LocusLink, Unigene, GO, Enzyme, OMIM, Hugo, SwissProt,
// InterPro, NetAffx sub-divisions, ...). Counts are calibrated so that a
// scale factor of 1.0 reproduces the deployment statistics of §5: approx.
// 2 million objects across 60+ sources and approx. 5 million associations
// in several hundred mappings.

// XRef declares that objects of a source cross-reference a target source.
type XRef struct {
	Target string
	// AvgFanOut is the mean number of references per object (Poisson-like,
	// deterministic per seed). Values below 1 leave some objects
	// unannotated, mirroring incomplete curation.
	AvgFanOut float64
	// Evidence marks computed references (sequence similarity, attribute
	// matching); they import as Similarity mappings with evidence values.
	Evidence bool
}

// SourceSpec describes one synthetic source.
type SourceSpec struct {
	Name      string
	Content   string // gene | protein | other
	Structure string // flat | network
	Format    string // locuslink | obo | enzyme | tabular
	// BaseCount is the object count at scale 1.0.
	BaseCount int
	// AccPattern produces accessions; see accession().
	AccPattern string
	XRefs      []XRef
	// Namespaces are the Contains partitions of OBO sources.
	Namespaces []string
}

// catalog lists every synthetic source. Order is the import order used by
// ImportAll (hubs first so cross-references resolve into existing objects
// where possible; the importer copes either way).
var catalog = []SourceSpec{
	// --- Gene-oriented hub sources -------------------------------------
	{Name: "LocusLink", Content: "gene", Structure: "flat", Format: "locuslink", BaseCount: 150000, AccPattern: "%d",
		XRefs: []XRef{
			{Target: "Hugo", AvgFanOut: 0.9},
			{Target: "Location", AvgFanOut: 1.0},
			{Target: "Enzyme", AvgFanOut: 0.25},
			{Target: "GO", AvgFanOut: 2.4},
			{Target: "OMIM", AvgFanOut: 0.35},
			{Target: "Unigene", AvgFanOut: 1.0},
			{Target: "SwissProt", AvgFanOut: 0.8},
			{Target: "RefSeq", AvgFanOut: 1.1},
			{Target: "PubMed", AvgFanOut: 1.5},
		}},
	{Name: "Unigene", Content: "gene", Structure: "flat", Format: "tabular", BaseCount: 130000, AccPattern: "Hs.%d",
		XRefs: []XRef{
			{Target: "LocusLink", AvgFanOut: 0.85},
			{Target: "GenBank", AvgFanOut: 2.0},
			{Target: "dbEST", AvgFanOut: 1.6},
		}},
	{Name: "Hugo", Content: "gene", Structure: "flat", Format: "tabular", BaseCount: 25000, AccPattern: "HGNC:%d",
		XRefs: []XRef{
			{Target: "LocusLink", AvgFanOut: 1.0},
			{Target: "OMIM", AvgFanOut: 0.5},
		}},
	{Name: "OMIM", Content: "gene", Structure: "flat", Format: "tabular", BaseCount: 15000, AccPattern: "%d",
		XRefs: []XRef{
			{Target: "LocusLink", AvgFanOut: 0.9},
			{Target: "PubMed", AvgFanOut: 3.0},
		}},
	{Name: "Location", Content: "other", Structure: "flat", Format: "tabular", BaseCount: 1000, AccPattern: "cyto%d"},
	{Name: "RefSeq", Content: "gene", Structure: "flat", Format: "tabular", BaseCount: 100000, AccPattern: "NM_%06d",
		XRefs: []XRef{
			{Target: "LocusLink", AvgFanOut: 1.0},
			{Target: "SwissProt", AvgFanOut: 0.6, Evidence: true},
		}},
	{Name: "Ensembl", Content: "gene", Structure: "flat", Format: "tabular", BaseCount: 110000, AccPattern: "ENSG%09d",
		XRefs: []XRef{
			{Target: "LocusLink", AvgFanOut: 0.8, Evidence: true},
			{Target: "Hugo", AvgFanOut: 0.6},
			{Target: "GO", AvgFanOut: 1.8},
		}},
	{Name: "GeneCards", Content: "gene", Structure: "flat", Format: "tabular", BaseCount: 60000, AccPattern: "GC%05d",
		XRefs: []XRef{
			{Target: "Hugo", AvgFanOut: 0.9},
			{Target: "LocusLink", AvgFanOut: 0.9},
		}},
	{Name: "MGI", Content: "gene", Structure: "flat", Format: "tabular", BaseCount: 50000, AccPattern: "MGI:%d",
		XRefs: []XRef{
			{Target: "GO", AvgFanOut: 1.5},
			{Target: "HomoloGene", AvgFanOut: 0.5},
		}},
	{Name: "RGD", Content: "gene", Structure: "flat", Format: "tabular", BaseCount: 40000, AccPattern: "RGD:%d",
		XRefs: []XRef{{Target: "GO", AvgFanOut: 1.2}, {Target: "HomoloGene", AvgFanOut: 0.4}}},
	{Name: "FlyBase", Content: "gene", Structure: "flat", Format: "tabular", BaseCount: 35000, AccPattern: "FBgn%07d",
		XRefs: []XRef{{Target: "GO", AvgFanOut: 1.6}}},
	{Name: "WormBase", Content: "gene", Structure: "flat", Format: "tabular", BaseCount: 30000, AccPattern: "WBGene%08d",
		XRefs: []XRef{{Target: "GO", AvgFanOut: 1.4}}},
	{Name: "SGD", Content: "gene", Structure: "flat", Format: "tabular", BaseCount: 15000, AccPattern: "SGD:S%09d",
		XRefs: []XRef{{Target: "GO", AvgFanOut: 2.2}, {Target: "Enzyme", AvgFanOut: 0.3}}},
	{Name: "ZFIN", Content: "gene", Structure: "flat", Format: "tabular", BaseCount: 20000, AccPattern: "ZDB-GENE-%06d",
		XRefs: []XRef{{Target: "GO", AvgFanOut: 1.0}}},
	{Name: "TAIR", Content: "gene", Structure: "flat", Format: "tabular", BaseCount: 28000, AccPattern: "AT%dG%05d",
		XRefs: []XRef{{Target: "GO", AvgFanOut: 1.7}}},

	// --- Ontologies and other network sources --------------------------
	{Name: "GO", Content: "other", Structure: "network", Format: "obo", BaseCount: 16000, AccPattern: "GO:%07d",
		Namespaces: []string{"biological_process", "molecular_function", "cellular_component"}},
	{Name: "Enzyme", Content: "other", Structure: "network", Format: "enzyme", BaseCount: 4500, AccPattern: "",
		XRefs: []XRef{{Target: "SwissProt", AvgFanOut: 1.2}}},
	{Name: "KEGG", Content: "other", Structure: "network", Format: "obo", BaseCount: 8000, AccPattern: "ko%05d",
		Namespaces: []string{"metabolism", "genetic_information", "cellular_processes"}},
	{Name: "NCBITaxonomy", Content: "other", Structure: "network", Format: "obo", BaseCount: 60000, AccPattern: "taxon:%d",
		Namespaces: []string{"cellular_organisms"}},

	// --- Protein-oriented sources ---------------------------------------
	{Name: "SwissProt", Content: "protein", Structure: "flat", Format: "tabular", BaseCount: 140000, AccPattern: "P%05d",
		XRefs: []XRef{
			{Target: "InterPro", AvgFanOut: 1.4},
			{Target: "Pfam", AvgFanOut: 1.1},
			{Target: "GO", AvgFanOut: 1.9},
			{Target: "PDB", AvgFanOut: 0.25},
			{Target: "Enzyme", AvgFanOut: 0.3},
			{Target: "PROSITE", AvgFanOut: 0.4},
		}},
	{Name: "TrEMBL", Content: "protein", Structure: "flat", Format: "tabular", BaseCount: 180000, AccPattern: "Q%05d",
		XRefs: []XRef{
			{Target: "InterPro", AvgFanOut: 1.0, Evidence: true},
			{Target: "SwissProt", AvgFanOut: 0.3, Evidence: true},
		}},
	{Name: "InterPro", Content: "protein", Structure: "flat", Format: "tabular", BaseCount: 10000, AccPattern: "IPR%06d",
		XRefs: []XRef{
			{Target: "GO", AvgFanOut: 0.8},
			{Target: "Pfam", AvgFanOut: 0.9},
			{Target: "PROSITE", AvgFanOut: 0.4},
		}},
	{Name: "Pfam", Content: "protein", Structure: "flat", Format: "tabular", BaseCount: 7000, AccPattern: "PF%05d",
		XRefs: []XRef{{Target: "InterPro", AvgFanOut: 0.9}}},
	{Name: "PDB", Content: "protein", Structure: "flat", Format: "tabular", BaseCount: 25000, AccPattern: "%04dpdb",
		XRefs: []XRef{{Target: "SwissProt", AvgFanOut: 1.3, Evidence: true}}},
	{Name: "PROSITE", Content: "protein", Structure: "flat", Format: "tabular", BaseCount: 2000, AccPattern: "PS%05d"},
	{Name: "ProDom", Content: "protein", Structure: "flat", Format: "tabular", BaseCount: 4000, AccPattern: "PD%06d",
		XRefs: []XRef{{Target: "InterPro", AvgFanOut: 0.7}}},
	{Name: "SMART", Content: "protein", Structure: "flat", Format: "tabular", BaseCount: 1000, AccPattern: "SM%05d",
		XRefs: []XRef{{Target: "InterPro", AvgFanOut: 0.8}}},
	{Name: "TIGRFAMs", Content: "protein", Structure: "flat", Format: "tabular", BaseCount: 4000, AccPattern: "TIGR%05d",
		XRefs: []XRef{{Target: "InterPro", AvgFanOut: 0.6}}},
	{Name: "PIR", Content: "protein", Structure: "flat", Format: "tabular", BaseCount: 80000, AccPattern: "PIR:%c%05d",
		XRefs: []XRef{{Target: "SwissProt", AvgFanOut: 0.9, Evidence: true}}},

	// --- NetAffx sub-divisions (vendor annotations per chip, §1) --------
	{Name: "NetAffx-HG-U95A", Content: "gene", Structure: "flat", Format: "tabular", BaseCount: 12000, AccPattern: "%d_at"},
	{Name: "NetAffx-HG-U95B", Content: "gene", Structure: "flat", Format: "tabular", BaseCount: 12000, AccPattern: "%d_b_at"},
	{Name: "NetAffx-HG-U95C", Content: "gene", Structure: "flat", Format: "tabular", BaseCount: 12000, AccPattern: "%d_c_at"},
	{Name: "NetAffx-HG-U95D", Content: "gene", Structure: "flat", Format: "tabular", BaseCount: 12000, AccPattern: "%d_d_at"},
	{Name: "NetAffx-HG-U95E", Content: "gene", Structure: "flat", Format: "tabular", BaseCount: 12000, AccPattern: "%d_e_at"},
	{Name: "NetAffx-HG-U133A", Content: "gene", Structure: "flat", Format: "tabular", BaseCount: 22000, AccPattern: "%d_s_at"},
	{Name: "NetAffx-HG-U133B", Content: "gene", Structure: "flat", Format: "tabular", BaseCount: 22000, AccPattern: "%d_x_at"},
	{Name: "NetAffx-MG-U74A", Content: "gene", Structure: "flat", Format: "tabular", BaseCount: 12000, AccPattern: "mg%d_at"},
	{Name: "NetAffx-MG-U74B", Content: "gene", Structure: "flat", Format: "tabular", BaseCount: 12000, AccPattern: "mg%d_b_at"},
	{Name: "NetAffx-MG-U74C", Content: "gene", Structure: "flat", Format: "tabular", BaseCount: 12000, AccPattern: "mg%d_c_at"},
	{Name: "NetAffx-RG-U34A", Content: "gene", Structure: "flat", Format: "tabular", BaseCount: 9000, AccPattern: "rg%d_at"},
	{Name: "NetAffx-RG-U34B", Content: "gene", Structure: "flat", Format: "tabular", BaseCount: 9000, AccPattern: "rg%d_b_at"},
	{Name: "NetAffx-RG-U34C", Content: "gene", Structure: "flat", Format: "tabular", BaseCount: 9000, AccPattern: "rg%d_c_at"},

	// --- Other supporting sources ---------------------------------------
	{Name: "dbSNP", Content: "other", Structure: "flat", Format: "tabular", BaseCount: 60000, AccPattern: "rs%d",
		XRefs: []XRef{{Target: "LocusLink", AvgFanOut: 0.8}}},
	{Name: "dbEST", Content: "other", Structure: "flat", Format: "tabular", BaseCount: 50000, AccPattern: "EST%07d"},
	{Name: "GenBank", Content: "other", Structure: "flat", Format: "tabular", BaseCount: 40000, AccPattern: "AF%06d"},
	{Name: "EMBL", Content: "other", Structure: "flat", Format: "tabular", BaseCount: 30000, AccPattern: "AJ%06d",
		XRefs: []XRef{{Target: "GenBank", AvgFanOut: 0.9}}},
	{Name: "DDBJ", Content: "other", Structure: "flat", Format: "tabular", BaseCount: 20000, AccPattern: "AB%06d",
		XRefs: []XRef{{Target: "GenBank", AvgFanOut: 0.9}}},
	{Name: "PubMed", Content: "other", Structure: "flat", Format: "tabular", BaseCount: 50000, AccPattern: "%d"},
	{Name: "HomoloGene", Content: "gene", Structure: "flat", Format: "tabular", BaseCount: 20000, AccPattern: "HG:%d",
		XRefs: []XRef{{Target: "LocusLink", AvgFanOut: 1.8, Evidence: true}}},
	{Name: "COG", Content: "protein", Structure: "flat", Format: "tabular", BaseCount: 5000, AccPattern: "COG%04d"},
	{Name: "CDD", Content: "protein", Structure: "flat", Format: "tabular", BaseCount: 10000, AccPattern: "CDD:%d",
		XRefs: []XRef{{Target: "Pfam", AvgFanOut: 0.5}, {Target: "SMART", AvgFanOut: 0.2}}},
	{Name: "BIND", Content: "protein", Structure: "flat", Format: "tabular", BaseCount: 8000, AccPattern: "BIND:%d",
		XRefs: []XRef{{Target: "SwissProt", AvgFanOut: 1.6}}},
	{Name: "DIP", Content: "protein", Structure: "flat", Format: "tabular", BaseCount: 5000, AccPattern: "DIP:%dN",
		XRefs: []XRef{{Target: "SwissProt", AvgFanOut: 1.4}}},
	{Name: "MINT", Content: "protein", Structure: "flat", Format: "tabular", BaseCount: 4000, AccPattern: "MINT-%d",
		XRefs: []XRef{{Target: "SwissProt", AvgFanOut: 1.3}}},
	{Name: "IntAct", Content: "protein", Structure: "flat", Format: "tabular", BaseCount: 6000, AccPattern: "EBI-%d",
		XRefs: []XRef{{Target: "SwissProt", AvgFanOut: 1.5}}},
	{Name: "TRANSFAC", Content: "other", Structure: "flat", Format: "tabular", BaseCount: 3000, AccPattern: "T%05d",
		XRefs: []XRef{{Target: "LocusLink", AvgFanOut: 0.6}}},
	{Name: "EPD", Content: "other", Structure: "flat", Format: "tabular", BaseCount: 2000, AccPattern: "EP%05d"},
	{Name: "UTRdb", Content: "other", Structure: "flat", Format: "tabular", BaseCount: 4000, AccPattern: "UTR%06d"},
	{Name: "GeneSNPs", Content: "gene", Structure: "flat", Format: "tabular", BaseCount: 3000, AccPattern: "GSNP%05d",
		XRefs: []XRef{{Target: "dbSNP", AvgFanOut: 2.0}}},
	{Name: "HGVbase", Content: "other", Structure: "flat", Format: "tabular", BaseCount: 3000, AccPattern: "HGV%06d",
		XRefs: []XRef{{Target: "dbSNP", AvgFanOut: 1.0}}},
	{Name: "MITOMAP", Content: "gene", Structure: "flat", Format: "tabular", BaseCount: 1000, AccPattern: "MM%04d",
		XRefs: []XRef{{Target: "OMIM", AvgFanOut: 0.5}}},
	{Name: "HPRD", Content: "protein", Structure: "flat", Format: "tabular", BaseCount: 6000, AccPattern: "HPRD:%05d",
		XRefs: []XRef{{Target: "SwissProt", AvgFanOut: 1.1}, {Target: "OMIM", AvgFanOut: 0.3}}},
}

// NetAffxChips lists the NetAffx sub-division sources; every chip's probe
// sets reference Unigene clusters with similarity evidence (the proprietary
// probe -> Unigene step of §5.2).
var NetAffxChips = []string{
	"NetAffx-HG-U95A", "NetAffx-HG-U95B", "NetAffx-HG-U95C", "NetAffx-HG-U95D", "NetAffx-HG-U95E",
	"NetAffx-HG-U133A", "NetAffx-HG-U133B",
	"NetAffx-MG-U74A", "NetAffx-MG-U74B", "NetAffx-MG-U74C",
	"NetAffx-RG-U34A", "NetAffx-RG-U34B", "NetAffx-RG-U34C",
}

func init() {
	// All NetAffx chips cross-reference Unigene (computed matches), GO
	// (vendor-curated functional annotations), plus LocusLink and RefSeq
	// (computed probe-to-transcript matches).
	chips := make(map[string]bool, len(NetAffxChips))
	for _, c := range NetAffxChips {
		chips[c] = true
	}
	for i := range catalog {
		if chips[catalog[i].Name] {
			catalog[i].XRefs = append(catalog[i].XRefs,
				XRef{Target: "Unigene", AvgFanOut: 0.95, Evidence: true},
				XRef{Target: "GO", AvgFanOut: 1.2},
				XRef{Target: "LocusLink", AvgFanOut: 0.5, Evidence: true},
				XRef{Target: "RefSeq", AvgFanOut: 0.4, Evidence: true},
			)
		}
	}
	// Literature and genome-position links are near-universal in the real
	// source landscape: gene sources cite PubMed and map to cytogenetic
	// locations; protein sources cite PubMed. This inter-connectivity is
	// what pushes the mapping count toward the paper's "over 500".
	for i := range catalog {
		s := &catalog[i]
		if chips[s.Name] || s.Name == "PubMed" || s.Name == "Location" {
			continue
		}
		switch s.Content {
		case "gene":
			if !hasXRef(s, "PubMed") {
				s.XRefs = append(s.XRefs, XRef{Target: "PubMed", AvgFanOut: 0.4})
			}
			if !hasXRef(s, "Location") {
				s.XRefs = append(s.XRefs, XRef{Target: "Location", AvgFanOut: 0.5})
			}
		case "protein":
			if !hasXRef(s, "PubMed") {
				s.XRefs = append(s.XRefs, XRef{Target: "PubMed", AvgFanOut: 0.3})
			}
		}
	}
}

func hasXRef(s *SourceSpec, target string) bool {
	for _, x := range s.XRefs {
		if x.Target == target {
			return true
		}
	}
	return false
}
