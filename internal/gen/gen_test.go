package gen

import (
	"path/filepath"
	"strings"
	"testing"

	"genmapper/internal/eav"
)

func TestCatalogShape(t *testing.T) {
	if len(catalog) < 60 {
		t.Fatalf("catalog has %d sources, paper needs 60+", len(catalog))
	}
	names := make(map[string]bool)
	base := 0
	for _, s := range catalog {
		if names[s.Name] {
			t.Errorf("duplicate source %q", s.Name)
		}
		names[s.Name] = true
		base += s.BaseCount
		for _, x := range s.XRefs {
			if x.Target == s.Name {
				t.Errorf("source %q references itself", s.Name)
			}
		}
	}
	// Paper scale: approx. 2 million objects.
	if base < 1_800_000 || base > 2_300_000 {
		t.Errorf("total base objects = %d, want ~2M", base)
	}
	// Every xref target must exist in the catalog.
	for _, s := range catalog {
		for _, x := range s.XRefs {
			if !names[x.Target] {
				t.Errorf("source %q references unknown target %q", s.Name, x.Target)
			}
		}
	}
	// NetAffx chips present as sub-divisions.
	for _, chip := range NetAffxChips {
		if !names[chip] {
			t.Errorf("missing NetAffx chip %q", chip)
		}
	}
}

func TestUniverseScaling(t *testing.T) {
	small := NewUniverse(Config{Seed: 1, Scale: 0.001})
	if small.Count("LocusLink") != 150 {
		t.Errorf("scaled LocusLink = %d, want 150", small.Count("LocusLink"))
	}
	// Network sources keep a useful minimum.
	if small.Count("GO") < 30 {
		t.Errorf("GO scaled below minimum: %d", small.Count("GO"))
	}
	if small.Count("nope") != 0 {
		t.Error("unknown source should count 0")
	}
	full := NewUniverse(Config{Seed: 1, Scale: 1})
	if tot := full.ExpectedTotals(); tot < 1_800_000 {
		t.Errorf("full-scale totals = %d", tot)
	}
}

func TestDeterminism(t *testing.T) {
	u1 := NewUniverse(Config{Seed: 42, Scale: 0.002})
	u2 := NewUniverse(Config{Seed: 42, Scale: 0.002})
	for _, name := range []string{"LocusLink", "GO", "Enzyme", "Unigene"} {
		var a, b strings.Builder
		if err := u1.Render(name, &a); err != nil {
			t.Fatal(err)
		}
		if err := u2.Render(name, &b); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Errorf("source %s not deterministic", name)
		}
	}
	// A different seed must change the content.
	u3 := NewUniverse(Config{Seed: 43, Scale: 0.002})
	var a, c strings.Builder
	u1.Render("LocusLink", &a)
	u3.Render("LocusLink", &c)
	if a.String() == c.String() {
		t.Error("different seeds produced identical output")
	}
}

func TestDatasetsParseCleanly(t *testing.T) {
	u := NewUniverse(Config{Seed: 7, Scale: 0.001})
	for _, name := range u.Names() {
		d, err := u.Dataset(name)
		if err != nil {
			t.Fatalf("source %s: %v", name, err)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("source %s: invalid dataset: %v", name, err)
		}
		if d.Source.Name != name {
			t.Errorf("source %s: dataset labelled %s", name, d.Source.Name)
		}
		if len(d.Accessions()) == 0 {
			t.Errorf("source %s: no objects", name)
		}
	}
}

func TestCrossReferenceConsistency(t *testing.T) {
	// Cross-references must point at accessions the target source actually
	// generates, so that import connects rather than fabricates objects.
	u := NewUniverse(Config{Seed: 3, Scale: 0.002})
	ll, err := u.Dataset("LocusLink")
	if err != nil {
		t.Fatal(err)
	}
	goAccs := make(map[string]bool)
	goCount := u.Count("GO")
	for i := 0; i < goCount; i++ {
		goAccs[u.Accession("GO", i)] = true
	}
	checked := 0
	for _, r := range ll.Records {
		if r.Target != "GO" {
			continue
		}
		checked++
		if !goAccs[r.TargetAccession] {
			t.Fatalf("LocusLink references GO accession %q outside the generated set", r.TargetAccession)
		}
	}
	if checked == 0 {
		t.Fatal("no GO cross-references generated")
	}
}

func TestGOStructure(t *testing.T) {
	u := NewUniverse(Config{Seed: 5, Scale: 0.005})
	d, err := u.Dataset("GO")
	if err != nil {
		t.Fatal(err)
	}
	var isa, contains int
	namespaces := make(map[string]bool)
	for _, r := range d.Records {
		switch r.Target {
		case eav.TargetIsA:
			isa++
		case eav.TargetContains:
			contains++
			namespaces[r.Accession] = true
		}
	}
	if isa == 0 {
		t.Error("GO has no is_a structure")
	}
	if len(namespaces) != 3 {
		t.Errorf("GO namespaces = %v, want the 3 sub-taxonomies", namespaces)
	}
	if contains < u.Count("GO") {
		t.Errorf("contains records = %d, want >= %d (every term in a partition)", contains, u.Count("GO"))
	}
}

func TestEnzymeHierarchy(t *testing.T) {
	u := NewUniverse(Config{Seed: 5, Scale: 0.005})
	d, err := u.Dataset("Enzyme")
	if err != nil {
		t.Fatal(err)
	}
	foundIsA := false
	for _, r := range d.Records {
		if r.Target == eav.TargetIsA {
			foundIsA = true
			break
		}
	}
	if !foundIsA {
		t.Error("Enzyme import lacks EC hierarchy")
	}
}

func TestEvidenceGeneration(t *testing.T) {
	u := NewUniverse(Config{Seed: 5, Scale: 0.005})
	d, err := u.Dataset("NetAffx-HG-U133A")
	if err != nil {
		t.Fatal(err)
	}
	withEv := 0
	for _, r := range d.Records {
		if r.Target == "Unigene" {
			if r.Evidence <= 0 || r.Evidence > 1 {
				t.Fatalf("NetAffx Unigene xref evidence = %g", r.Evidence)
			}
			withEv++
		}
	}
	if withEv == 0 {
		t.Error("no evidence-bearing xrefs generated for NetAffx chip")
	}
}

func TestAccessionSchemes(t *testing.T) {
	u := NewUniverse(DefaultConfig())
	cases := []struct {
		source string
		i      int
		want   string
	}{
		{"LocusLink", 0, "1"},
		{"Unigene", 0, "Hs.1"},
		{"GO", 0, "GO:0000001"},
		{"SwissProt", 41, "P00042"},
		{"Enzyme", 0, "1.1.1.1"},
		{"Enzyme", 1, "1.1.1.2"},
		{"Enzyme", 20, "1.1.2.1"},
	}
	for _, c := range cases {
		if got := u.Accession(c.source, c.i); got != c.want {
			t.Errorf("Accession(%s, %d) = %q, want %q", c.source, c.i, got, c.want)
		}
	}
	// EC numbers must be unique across a large range.
	seen := make(map[string]bool)
	for i := 0; i < 5000; i++ {
		ec := ecNumber(i)
		if seen[ec] {
			t.Fatalf("duplicate EC number %s at %d", ec, i)
		}
		seen[ec] = true
	}
}

func TestWriteFiles(t *testing.T) {
	u := NewUniverse(Config{Seed: 2, Scale: 0.0005})
	dir := t.TempDir()
	paths, err := u.WriteFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != len(u.Names()) {
		t.Fatalf("wrote %d files, want %d", len(paths), len(u.Names()))
	}
	if filepath.Dir(paths["GO"]) != dir {
		t.Errorf("GO path = %s", paths["GO"])
	}
	if !strings.HasSuffix(paths["GO"], ".obo") || !strings.HasSuffix(paths["LocusLink"], ".ll") {
		t.Errorf("unexpected extensions: %s / %s", paths["GO"], paths["LocusLink"])
	}
}

func TestRenderUnknownSource(t *testing.T) {
	u := NewUniverse(DefaultConfig())
	var sb strings.Builder
	if err := u.Render("nope", &sb); err == nil {
		t.Fatal("unknown source accepted")
	}
	if _, err := u.Dataset("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}
