package parser

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"genmapper/internal/eav"
)

// ParseLocusLink parses LocusLink-style record dumps. The format mirrors
// the LL_tmpl flat file NCBI distributed for LocusLink: records start with
// ">>accession", followed by "KEY: value" annotation lines. Values that
// reference another source may carry descriptive text after a "|".
//
//	>>353
//	NAME: adenine phosphoribosyltransferase
//	HUGO: APRT | adenine phosphoribosyltransferase
//	LOCATION: 16q24
//	ENZYME: 2.4.2.7
//	GO: GO:0009116 | nucleoside metabolism
//	OMIM: 102600
//
// Keys map to target sources: NAME becomes the object's own text, every
// other key names the target source (case preserved per targetNames).
func ParseLocusLink(r io.Reader, info eav.SourceInfo) (*eav.Dataset, error) {
	d := eav.NewDataset(info)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var current string
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
			continue
		case strings.HasPrefix(line, ">>"):
			current = strings.TrimSpace(line[2:])
			if current == "" {
				return nil, fmt.Errorf("parser: locuslink line %d: empty record accession", lineNo)
			}
		default:
			if current == "" {
				return nil, fmt.Errorf("parser: locuslink line %d: annotation before first record", lineNo)
			}
			key, value, ok := strings.Cut(line, ":")
			if !ok {
				return nil, fmt.Errorf("parser: locuslink line %d: malformed annotation %q", lineNo, line)
			}
			key = strings.TrimSpace(key)
			value = strings.TrimSpace(value)
			if key == "" || value == "" {
				return nil, fmt.Errorf("parser: locuslink line %d: empty key or value", lineNo)
			}
			acc, text, _ := strings.Cut(value, "|")
			acc = strings.TrimSpace(acc)
			text = strings.TrimSpace(text)
			if strings.EqualFold(key, "NAME") {
				d.Add(current, eav.TargetName, "", value)
				continue
			}
			d.Add(current, canonicalTarget(key), acc, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("parser: locuslink: %w", err)
	}
	return d, nil
}

// targetNames maps upper-cased annotation keys to canonical source names
// matching the public sources GenMapper imports.
var targetNames = map[string]string{
	"HUGO":      "Hugo",
	"LOCATION":  "Location",
	"ENZYME":    "Enzyme",
	"GO":        "GO",
	"OMIM":      "OMIM",
	"UNIGENE":   "Unigene",
	"SWISSPROT": "SwissProt",
	"INTERPRO":  "InterPro",
	"REFSEQ":    "RefSeq",
	"ENSEMBL":   "Ensembl",
	"PUBMED":    "PubMed",
	"ALIAS":     "Alias",
	"CHR":       "Chromosome",
}

func canonicalTarget(key string) string {
	if name, ok := targetNames[strings.ToUpper(key)]; ok {
		return name
	}
	return key
}
