package parser

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"genmapper/internal/eav"
)

// ParseOBO parses OBO-style ontology files, the format GeneOntology
// distributes its taxonomy in:
//
//	[Term]
//	id: GO:0009116
//	name: nucleoside metabolism
//	namespace: biological_process
//	is_a: GO:0009117 ! nucleotide metabolism
//
// Each term yields a NAME record; is_a lines yield IS_A records; the
// namespace yields a CONTAINS record linking the sub-taxonomy partition
// (e.g. "biological_process") to the term, modelling the paper's Contains
// relationship between GO and its sub-taxonomies.
func ParseOBO(r io.Reader, info eav.SourceInfo) (*eav.Dataset, error) {
	d := eav.NewDataset(info)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	var id, name, namespace string
	var isa []string
	inTerm := false
	lineNo := 0

	flush := func() error {
		if !inTerm {
			return nil
		}
		if id == "" {
			return fmt.Errorf("parser: obo: term stanza without id")
		}
		if name != "" {
			d.Add(id, eav.TargetName, "", name)
		} else {
			d.Add(id, eav.TargetName, "", id)
		}
		for _, parent := range isa {
			d.Add(id, eav.TargetIsA, parent, "")
		}
		if namespace != "" {
			d.Add(namespace, eav.TargetContains, id, "")
		}
		id, name, namespace, isa = "", "", "", nil
		return nil
	}

	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "!"):
			continue
		case line == "[Term]":
			if err := flush(); err != nil {
				return nil, err
			}
			inTerm = true
		case strings.HasPrefix(line, "["):
			// Other stanza types ([Typedef], ...) end the current term and
			// are skipped.
			if err := flush(); err != nil {
				return nil, err
			}
			inTerm = false
		default:
			if !inTerm {
				continue // header lines (format-version etc.)
			}
			key, value, ok := strings.Cut(line, ":")
			if !ok {
				return nil, fmt.Errorf("parser: obo line %d: malformed tag %q", lineNo, line)
			}
			key = strings.TrimSpace(key)
			value = strings.TrimSpace(value)
			switch key {
			case "id":
				id = value
			case "name":
				name = value
			case "namespace":
				namespace = value
			case "is_a":
				parent, _, _ := strings.Cut(value, "!")
				parent = strings.TrimSpace(parent)
				if parent == "" {
					return nil, fmt.Errorf("parser: obo line %d: empty is_a target", lineNo)
				}
				isa = append(isa, parent)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("parser: obo: %w", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return d, nil
}
