// Package parser implements the Parse step of GenMapper's two-phase import
// pipeline (paper §4.1): small pieces of source-specific code that turn a
// source's native file format into the uniform EAV staging format of
// package eav. Each parser corresponds to what the paper calls "a small
// portion of source-specific code to be implemented" per source.
//
// Supported native formats:
//
//   - LocusLink-style record files (">>accession" + "KEY: value" lines)
//   - OBO-style ontology files (GO, term stanzas with is_a links)
//   - Enzyme-style .dat files (ID/DE/// line codes, EC-number hierarchy)
//   - Generic tabular files (UniGene, Hugo, OMIM, NetAffx, SwissProt,
//     InterPro and other cross-reference tables)
package parser

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"genmapper/internal/eav"
)

// Func parses one source file into an EAV dataset. The SourceInfo carries
// the source identity and audit data recorded during download.
type Func func(r io.Reader, info eav.SourceInfo) (*eav.Dataset, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Func{}
)

// Register adds a parser under a format name. Registering the same name
// twice panics, mirroring database/sql driver registration.
func Register(format string, fn Func) {
	registryMu.Lock()
	defer registryMu.Unlock()
	key := strings.ToLower(format)
	if _, dup := registry[key]; dup {
		panic(fmt.Sprintf("parser: Register called twice for format %q", format))
	}
	registry[key] = fn
}

// Lookup returns the parser for a format name, or nil.
func Lookup(format string) Func {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return registry[strings.ToLower(format)]
}

// Formats lists the registered format names in sorted order.
func Formats() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for f := range registry {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Parse dispatches to the registered parser for the format.
func Parse(format string, r io.Reader, info eav.SourceInfo) (*eav.Dataset, error) {
	fn := Lookup(format)
	if fn == nil {
		return nil, fmt.Errorf("parser: unknown format %q (registered: %s)", format, strings.Join(Formats(), ", "))
	}
	d, err := fn(r, info)
	if err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("parser: %s produced invalid dataset: %w", format, err)
	}
	return d, nil
}

func init() {
	Register("locuslink", ParseLocusLink)
	Register("obo", ParseOBO)
	Register("enzyme", ParseEnzyme)
	Register("tabular", ParseTabular)
}
