package parser

import (
	"strings"
	"testing"

	"genmapper/internal/eav"
)

func info(name string) eav.SourceInfo {
	return eav.SourceInfo{Name: name, Content: "gene", Structure: "flat", Release: "r1", Date: "2004-01-01"}
}

func TestRegistry(t *testing.T) {
	formats := Formats()
	want := []string{"enzyme", "locuslink", "obo", "tabular"}
	if strings.Join(formats, ",") != strings.Join(want, ",") {
		t.Fatalf("Formats = %v, want %v", formats, want)
	}
	if Lookup("LOCUSLINK") == nil {
		t.Error("Lookup should be case-insensitive")
	}
	if Lookup("nope") != nil {
		t.Error("unknown format should return nil")
	}
	if _, err := Parse("nope", strings.NewReader(""), info("X")); err == nil {
		t.Error("Parse with unknown format should fail")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register("locuslink", ParseLocusLink)
}

// --- LocusLink -------------------------------------------------------------

const locusLinkSample = `
# LocusLink-style dump
>>353
NAME: adenine phosphoribosyltransferase
HUGO: APRT | adenine phosphoribosyltransferase
LOCATION: 16q24
ENZYME: 2.4.2.7
GO: GO:0009116 | nucleoside metabolism
OMIM: 102600
>>354
NAME: second locus
UNIGENE: Hs.28914
`

func TestParseLocusLink(t *testing.T) {
	d, err := Parse("locuslink", strings.NewReader(locusLinkSample), info("LocusLink"))
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Accessions(); len(got) != 2 || got[0] != "353" {
		t.Fatalf("accessions = %v", got)
	}
	// Table 1 shape: locus 353 has Hugo/Location/Enzyme/GO targets.
	_, groups := d.ByAccession()
	recs := groups["353"]
	if len(recs) != 6 {
		t.Fatalf("locus 353 records = %d, want 6", len(recs))
	}
	if recs[0].Target != eav.TargetName || !strings.Contains(recs[0].Text, "phosphoribosyl") {
		t.Errorf("NAME record = %+v", recs[0])
	}
	if recs[1].Target != "Hugo" || recs[1].TargetAccession != "APRT" {
		t.Errorf("Hugo record = %+v", recs[1])
	}
	if recs[1].Text != "adenine phosphoribosyltransferase" {
		t.Errorf("Hugo text = %q", recs[1].Text)
	}
	if recs[4].Target != "GO" || recs[4].TargetAccession != "GO:0009116" || recs[4].Text != "nucleoside metabolism" {
		t.Errorf("GO record = %+v", recs[4])
	}
	// Key canonicalization: LOCATION -> Location.
	if recs[2].Target != "Location" {
		t.Errorf("Location target = %q", recs[2].Target)
	}
}

func TestParseLocusLinkErrors(t *testing.T) {
	cases := []string{
		"HUGO: APRT\n",            // annotation before record
		">>353\nmalformed line\n", // no colon
		">>353\nHUGO:\n",          // empty value
		">>\nNAME: x\n",           // empty accession
	}
	for _, in := range cases {
		if _, err := Parse("locuslink", strings.NewReader(in), info("LocusLink")); err == nil {
			t.Errorf("expected error for %q", in)
		}
	}
}

// --- OBO ---------------------------------------------------------------------

const oboSample = `format-version: 1.2
ontology: go

[Term]
id: GO:0008150
name: biological_process
namespace: biological_process

[Term]
id: GO:0009117
name: nucleotide metabolism
namespace: biological_process
is_a: GO:0008150 ! biological_process

[Term]
id: GO:0009116
name: nucleoside metabolism
namespace: biological_process
is_a: GO:0009117 ! nucleotide metabolism
is_a: GO:0008150 ! biological_process

[Typedef]
id: part_of
name: part of
`

func TestParseOBO(t *testing.T) {
	d, err := Parse("obo", strings.NewReader(oboSample), eav.SourceInfo{Name: "GO", Structure: "network"})
	if err != nil {
		t.Fatal(err)
	}
	var names, isa, contains int
	for _, r := range d.Records {
		switch r.Target {
		case eav.TargetName:
			names++
		case eav.TargetIsA:
			isa++
		case eav.TargetContains:
			contains++
		}
	}
	if names != 3 {
		t.Errorf("NAME records = %d, want 3", names)
	}
	if isa != 3 {
		t.Errorf("IS_A records = %d, want 3", isa)
	}
	if contains != 3 {
		t.Errorf("CONTAINS records = %d, want 3 (namespace partitions)", contains)
	}
	// is_a comments after "!" are stripped.
	for _, r := range d.Records {
		if r.Target == eav.TargetIsA && strings.Contains(r.TargetAccession, "!") {
			t.Errorf("is_a target not cleaned: %q", r.TargetAccession)
		}
	}
}

func TestParseOBOErrors(t *testing.T) {
	missingID := "[Term]\nname: no id\n"
	if _, err := Parse("obo", strings.NewReader(missingID), info("GO")); err == nil {
		t.Error("term without id accepted")
	}
	badTag := "[Term]\nid: GO:1\nnocolonline\n"
	if _, err := Parse("obo", strings.NewReader(badTag), info("GO")); err == nil {
		t.Error("malformed tag accepted")
	}
	emptyIsA := "[Term]\nid: GO:1\nis_a: ! comment only\n"
	if _, err := Parse("obo", strings.NewReader(emptyIsA), info("GO")); err == nil {
		t.Error("empty is_a accepted")
	}
}

// --- Enzyme ------------------------------------------------------------------

const enzymeSample = `ID   2.4.2.7
DE   Adenine phosphoribosyltransferase.
DR   P07741, APT_HUMAN; P36135, APT_YEAST;
//
ID   1.1.1.1
DE   Alcohol dehydrogenase.
//
`

func TestParseEnzyme(t *testing.T) {
	d, err := Parse("enzyme", strings.NewReader(enzymeSample), eav.SourceInfo{Name: "Enzyme", Structure: "network"})
	if err != nil {
		t.Fatal(err)
	}
	var isa, swissprot, names int
	for _, r := range d.Records {
		switch r.Target {
		case eav.TargetIsA:
			isa++
		case "SwissProt":
			swissprot++
		case eav.TargetName:
			names++
		}
	}
	// Each 4-part EC number contributes 3 hierarchy links.
	if isa != 6 {
		t.Errorf("IS_A records = %d, want 6", isa)
	}
	if swissprot != 2 {
		t.Errorf("SwissProt xrefs = %d, want 2", swissprot)
	}
	// 2 entries + 6 distinct class entries (2.4.2.-, 2.4.-.-, 2.-.-.-,
	// 1.1.1.-, 1.1.-.-, 1.-.-.-).
	if names != 8 {
		t.Errorf("NAME records = %d, want 8", names)
	}
	// Hierarchy: 2.4.2.7 IS_A 2.4.2.-
	found := false
	for _, r := range d.Records {
		if r.Target == eav.TargetIsA && r.Accession == "2.4.2.7" && r.TargetAccession == "2.4.2.-" {
			found = true
		}
	}
	if !found {
		t.Error("missing 2.4.2.7 IS_A 2.4.2.-")
	}
}

func TestParseEnzymeErrors(t *testing.T) {
	cases := []string{
		"DE   before id.\n",
		"XX   unknown code\n",
		"ID\n",
		"X\n",
	}
	for _, in := range cases {
		if _, err := Parse("enzyme", strings.NewReader(in), info("Enzyme")); err == nil {
			t.Errorf("expected error for %q", in)
		}
	}
}

// --- Tabular -----------------------------------------------------------------

const tabularSample = "#accession\tname\txrefs\n" +
	"Hs.28914\tAPRT cluster\tLocusLink:353;GO:GO:0009116\n" +
	"Hs.2\tsecond\tLocusLink:354|0.92\n" +
	"Hs.3\tno refs\t\n"

func TestParseTabular(t *testing.T) {
	d, err := Parse("tabular", strings.NewReader(tabularSample), info("Unigene"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Accessions()) != 3 {
		t.Fatalf("accessions = %v", d.Accessions())
	}
	var goRef, evRef *eav.Record
	for i, r := range d.Records {
		if r.Target == "GO" {
			goRef = &d.Records[i]
		}
		if r.Evidence != 0 {
			evRef = &d.Records[i]
		}
	}
	// GO accessions contain ':' themselves; only the first ':' splits.
	if goRef == nil || goRef.TargetAccession != "GO:0009116" {
		t.Errorf("GO xref = %+v", goRef)
	}
	if evRef == nil || evRef.Evidence != 0.92 || evRef.Target != "LocusLink" {
		t.Errorf("evidence xref = %+v", evRef)
	}
}

func TestParseTabularErrors(t *testing.T) {
	cases := []string{
		"onlyonecolumn\n",
		"acc\tname\tbadxref\n",
		"acc\tname\tTarget:\n",
		"acc\tname\tTarget:x|notanumber\n",
		"acc\tname\tTarget:x|1.5\n", // evidence out of range
		"\tname\tTarget:x\n",        // empty accession
	}
	for _, in := range cases {
		if _, err := Parse("tabular", strings.NewReader(in), info("X")); err == nil {
			t.Errorf("expected error for %q", in)
		}
	}
}

func TestParseTabularSkipsComments(t *testing.T) {
	in := "# comment\n\nacc1\tname one\t\n# another\nacc2\tname two\t\n"
	d, err := Parse("tabular", strings.NewReader(in), info("X"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Accessions()) != 2 {
		t.Fatalf("accessions = %v", d.Accessions())
	}
}
