package parser

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"genmapper/internal/eav"
)

// ParseTabular parses the generic cross-reference table format used for
// UniGene, Hugo, OMIM, NetAffx probe-set annotations, SwissProt, InterPro
// and similar tab-delimited dumps:
//
//	#accession	name	xrefs
//	Hs.28914	APRT	LocusLink:353;GO:GO:0009116|0.92
//
// Column 1 is the source accession, column 2 the object's descriptive
// text, column 3 a semicolon-separated list of Target:accession pairs,
// each optionally suffixed with |evidence for computed (Similarity)
// associations. The target accession may itself contain ':' (e.g. GO IDs);
// only the first ':' separates the target name.
func ParseTabular(r io.Reader, info eav.SourceInfo) (*eav.Dataset, error) {
	d := eav.NewDataset(info)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cols := strings.Split(line, "\t")
		if len(cols) < 2 {
			return nil, fmt.Errorf("parser: tabular line %d: expected at least 2 columns", lineNo)
		}
		acc := strings.TrimSpace(cols[0])
		if acc == "" {
			return nil, fmt.Errorf("parser: tabular line %d: empty accession", lineNo)
		}
		if name := strings.TrimSpace(cols[1]); name != "" {
			d.Add(acc, eav.TargetName, "", name)
		}
		if len(cols) < 3 || strings.TrimSpace(cols[2]) == "" {
			continue
		}
		for _, xref := range strings.Split(cols[2], ";") {
			xref = strings.TrimSpace(xref)
			if xref == "" {
				continue
			}
			target, rest, ok := strings.Cut(xref, ":")
			if !ok || target == "" || rest == "" {
				return nil, fmt.Errorf("parser: tabular line %d: malformed xref %q", lineNo, xref)
			}
			refAcc, evStr, hasEv := strings.Cut(rest, "|")
			refAcc = strings.TrimSpace(refAcc)
			if refAcc == "" {
				return nil, fmt.Errorf("parser: tabular line %d: xref %q without accession", lineNo, xref)
			}
			if !hasEv {
				d.Add(acc, target, refAcc, "")
				continue
			}
			var ev float64
			if _, err := fmt.Sscanf(strings.TrimSpace(evStr), "%g", &ev); err != nil {
				return nil, fmt.Errorf("parser: tabular line %d: bad evidence %q", lineNo, evStr)
			}
			if ev < 0 || ev > 1 {
				return nil, fmt.Errorf("parser: tabular line %d: evidence %g out of [0,1]", lineNo, ev)
			}
			d.AddEvidence(acc, target, refAcc, "", ev)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("parser: tabular: %w", err)
	}
	return d, nil
}
