package parser

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"genmapper/internal/eav"
)

// ParseEnzyme parses Enzyme-nomenclature .dat files in the ExPASy line-code
// style:
//
//	ID   2.4.2.7
//	DE   Adenine phosphoribosyltransferase.
//	DR   P07741, APT_HUMAN;
//	//
//
// Each entry yields a NAME record and IS_A records reconstructing the EC
// number hierarchy (2.4.2.7 IS_A 2.4.2.-, 2.4.2.- IS_A 2.4.-.-, ...), so
// Enzyme imports as a Network source like the paper describes. DR lines
// yield SwissProt cross-references.
func ParseEnzyme(r io.Reader, info eav.SourceInfo) (*eav.Dataset, error) {
	d := eav.NewDataset(info)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	var id string
	classes := make(map[string]bool) // emitted class entries
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), " \t")
		if line == "" {
			continue
		}
		if line == "//" {
			id = ""
			continue
		}
		if len(line) < 2 {
			return nil, fmt.Errorf("parser: enzyme line %d: short line %q", lineNo, line)
		}
		code := line[:2]
		rest := strings.TrimSpace(line[2:])
		switch code {
		case "ID":
			if rest == "" {
				return nil, fmt.Errorf("parser: enzyme line %d: empty ID", lineNo)
			}
			id = rest
			emitHierarchy(d, id, classes)
		case "DE":
			if id == "" {
				return nil, fmt.Errorf("parser: enzyme line %d: DE before ID", lineNo)
			}
			d.Add(id, eav.TargetName, "", strings.TrimSuffix(rest, "."))
		case "DR":
			if id == "" {
				return nil, fmt.Errorf("parser: enzyme line %d: DR before ID", lineNo)
			}
			for _, ref := range strings.Split(rest, ";") {
				ref = strings.TrimSpace(ref)
				if ref == "" {
					continue
				}
				acc, _, _ := strings.Cut(ref, ",")
				acc = strings.TrimSpace(acc)
				if acc != "" {
					d.Add(id, "SwissProt", acc, "")
				}
			}
		case "CC", "CA", "AN", "CF", "PR":
			// Comment/catalytic-activity/alternate-name lines: skipped.
		default:
			return nil, fmt.Errorf("parser: enzyme line %d: unknown line code %q", lineNo, code)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("parser: enzyme: %w", err)
	}
	return d, nil
}

// emitHierarchy adds IS_A records from an EC number up its class chain,
// creating class pseudo-entries (with NAME) once each.
func emitHierarchy(d *eav.Dataset, ec string, classes map[string]bool) {
	parts := strings.Split(ec, ".")
	if len(parts) != 4 {
		return // malformed or already a top-level code; no hierarchy
	}
	child := ec
	for level := 3; level >= 1; level-- {
		parentParts := make([]string, 4)
		for i := range parentParts {
			if i < level {
				parentParts[i] = parts[i]
			} else {
				parentParts[i] = "-"
			}
		}
		parent := strings.Join(parentParts, ".")
		if parent == child {
			continue
		}
		d.Add(child, eav.TargetIsA, parent, "")
		if !classes[parent] {
			classes[parent] = true
			d.Add(parent, eav.TargetName, "", "EC class "+parent)
		}
		child = parent
	}
}
