package srs

import (
	"testing"

	"genmapper/internal/eav"
)

func buildIndex(t *testing.T) *Index {
	t.Helper()
	x := NewIndex()
	ll := eav.NewDataset(eav.SourceInfo{Name: "LocusLink"})
	ll.Add("353", eav.TargetName, "", "adenine phosphoribosyltransferase")
	ll.Add("353", "Hugo", "APRT", "")
	ll.Add("353", "GO", "GO:0009116", "")
	ll.Add("354", eav.TargetName, "", "adenine deaminase")
	ll.Add("354", "Unigene", "Hs.2", "")
	if err := x.AddDataset(ll); err != nil {
		t.Fatal(err)
	}
	ug := eav.NewDataset(eav.SourceInfo{Name: "Unigene"})
	ug.Add("Hs.2", eav.TargetName, "", "cluster two")
	ug.Add("Hs.2", "LocusLink", "354", "")
	if err := x.AddDataset(ug); err != nil {
		t.Fatal(err)
	}
	return x
}

func TestIndexBasics(t *testing.T) {
	x := buildIndex(t)
	if got := x.Sources(); len(got) != 2 || got[0] != "LocusLink" {
		t.Fatalf("sources = %v", got)
	}
	if x.EntryCount("LocusLink") != 2 {
		t.Errorf("LocusLink entries = %d", x.EntryCount("LocusLink"))
	}
	if x.EntryCount("nope") != 0 {
		t.Error("unknown source should count 0")
	}
	e := x.Lookup("LocusLink", "353")
	if e == nil || e.Name != "adenine phosphoribosyltransferase" {
		t.Fatalf("entry = %+v", e)
	}
	if x.Lookup("LocusLink", "999") != nil {
		t.Error("missing entry found")
	}
	if x.Lookup("nope", "353") != nil {
		t.Error("missing source found")
	}
}

func TestKeywordSearch(t *testing.T) {
	x := buildIndex(t)
	// Both loci mention "adenine".
	if got := x.Search("LocusLink", "adenine"); len(got) != 2 {
		t.Fatalf("search adenine = %v", got)
	}
	if got := x.Search("LocusLink", "ADENINE"); len(got) != 2 {
		t.Error("search should be case-insensitive")
	}
	if got := x.Search("LocusLink", "deaminase"); len(got) != 1 || got[0] != "354" {
		t.Fatalf("search deaminase = %v", got)
	}
	if got := x.Search("LocusLink", "missing"); len(got) != 0 {
		t.Fatalf("search missing = %v", got)
	}
}

func TestNavigation(t *testing.T) {
	x := buildIndex(t)
	if got := x.Navigate("LocusLink", "353", "GO"); len(got) != 1 || got[0] != "GO:0009116" {
		t.Fatalf("navigate = %v", got)
	}
	// No composition: Unigene entry Hs.2 has no direct GO link even though
	// LocusLink 354 -> ... would be reachable with a join.
	if got := x.Navigate("Unigene", "Hs.2", "GO"); len(got) != 0 {
		t.Fatalf("SRS should not compose, got %v", got)
	}
}

func TestAnnotateSetCountsLookups(t *testing.T) {
	x := buildIndex(t)
	x.ResetLookups()
	result := x.AnnotateSet("LocusLink", []string{"353", "354"}, []string{"Hugo", "GO", "Unigene"})
	// Per-object, per-target navigation: 2 objects x 3 targets = 6 lookups.
	if x.Lookups() != 6 {
		t.Fatalf("lookups = %d, want 6", x.Lookups())
	}
	if len(result["353"]["Hugo"]) != 1 || len(result["353"]["GO"]) != 1 {
		t.Errorf("353 annotations = %v", result["353"])
	}
	if len(result["354"]["GO"]) != 0 {
		t.Errorf("354 should have no GO link")
	}
}

func TestAddDatasetValidation(t *testing.T) {
	x := NewIndex()
	bad := eav.NewDataset(eav.SourceInfo{})
	if err := x.AddDataset(bad); err == nil {
		t.Fatal("invalid dataset accepted")
	}
}

func TestIncrementalIndexing(t *testing.T) {
	x := buildIndex(t)
	more := eav.NewDataset(eav.SourceInfo{Name: "LocusLink"})
	more.Add("355", eav.TargetName, "", "third locus")
	if err := x.AddDataset(more); err != nil {
		t.Fatal(err)
	}
	if x.EntryCount("LocusLink") != 3 {
		t.Fatalf("entries after increment = %d", x.EntryCount("LocusLink"))
	}
}
