// Package srs implements the second baseline of the paper (§1): an
// SRS/DBGET-style retrieval system. Each source is indexed separately with
// its queryable attributes; cross-references support link navigation from
// one entry to another. There is no join capability and no transitive
// composition: multi-source annotation of an object set degenerates to
// per-object, per-target link chasing, and targets reachable only through
// an intermediate source are simply not reachable ("join queries over
// multiple sources are not possible. Cross-references can be utilized for
// interactive navigation, but not for the generation and analysis of
// annotation profiles").
package srs

import (
	"fmt"
	"sort"
	"strings"

	"genmapper/internal/eav"
)

// Entry is one indexed record of a source.
type Entry struct {
	Accession string
	Name      string
	// Links maps target source name -> referenced accessions.
	Links map[string][]string
}

// sourceIndex holds one source's parsed, indexed entries.
type sourceIndex struct {
	name    string
	entries map[string]*Entry
	// keyword index: lower-cased word -> accessions.
	words map[string][]string
}

// Index is the per-source index collection (the "replicated locally as is,
// parsed and indexed" architecture).
type Index struct {
	sources map[string]*sourceIndex
	// lookups counts entry accesses, the cost metric of the E12 ablation.
	lookups int
}

// NewIndex creates an empty index collection.
func NewIndex() *Index {
	return &Index{sources: make(map[string]*sourceIndex)}
}

// AddDataset indexes one parsed source.
func (x *Index) AddDataset(d *eav.Dataset) error {
	if err := d.Validate(); err != nil {
		return fmt.Errorf("srs: %w", err)
	}
	key := strings.ToLower(d.Source.Name)
	si, ok := x.sources[key]
	if !ok {
		si = &sourceIndex{
			name:    d.Source.Name,
			entries: make(map[string]*Entry),
			words:   make(map[string][]string),
		}
		x.sources[key] = si
	}
	for _, r := range d.Records {
		e, ok := si.entries[r.Accession]
		if !ok {
			e = &Entry{Accession: r.Accession, Links: make(map[string][]string)}
			si.entries[r.Accession] = e
		}
		switch {
		case r.Target == eav.TargetName:
			if e.Name == "" {
				e.Name = r.Text
				for _, word := range strings.Fields(strings.ToLower(r.Text)) {
					si.words[word] = append(si.words[word], r.Accession)
				}
			}
		case eav.IsPseudoTarget(r.Target):
			// Structure is browsable per entry in SRS-like systems but not
			// usable for closure computation; index as a link to self.
			e.Links[d.Source.Name] = append(e.Links[d.Source.Name], r.TargetAccession)
		default:
			e.Links[r.Target] = append(e.Links[r.Target], r.TargetAccession)
		}
	}
	return nil
}

// Sources lists indexed source names in sorted order.
func (x *Index) Sources() []string {
	out := make([]string, 0, len(x.sources))
	for _, si := range x.sources {
		out = append(out, si.name)
	}
	sort.Strings(out)
	return out
}

// EntryCount returns the number of entries indexed for a source.
func (x *Index) EntryCount(source string) int {
	si := x.sources[strings.ToLower(source)]
	if si == nil {
		return 0
	}
	return len(si.entries)
}

// Lookup retrieves one entry; it counts toward the navigation cost.
func (x *Index) Lookup(source, accession string) *Entry {
	x.lookups++
	si := x.sources[strings.ToLower(source)]
	if si == nil {
		return nil
	}
	return si.entries[accession]
}

// Search runs a keyword query against one source's indexed attributes (the
// "uniform query interface" of SRS). It returns matching accessions.
func (x *Index) Search(source, keyword string) []string {
	si := x.sources[strings.ToLower(source)]
	if si == nil {
		return nil
	}
	accs := si.words[strings.ToLower(keyword)]
	out := make([]string, len(accs))
	copy(out, accs)
	sort.Strings(out)
	return out
}

// Navigate follows direct cross-references from one entry to a target
// source: one interactive link-click. Indirect targets (reachable only
// through an intermediate source) return nothing — the system cannot
// compose.
func (x *Index) Navigate(source, accession, target string) []string {
	e := x.Lookup(source, accession)
	if e == nil {
		return nil
	}
	links := e.Links[target]
	out := make([]string, len(links))
	copy(out, links)
	sort.Strings(out)
	return out
}

// AnnotateSet emulates what a user must do to build an annotation profile
// for a set of objects with per-source indexes only: iterate objects ×
// targets, following direct links one entry at a time. The result maps
// accession -> target -> referenced accessions. Lookups() exposes the
// per-entry access count for comparison with one set-oriented
// GenerateView.
func (x *Index) AnnotateSet(source string, accessions []string, targets []string) map[string]map[string][]string {
	out := make(map[string]map[string][]string, len(accessions))
	for _, acc := range accessions {
		row := make(map[string][]string, len(targets))
		for _, tgt := range targets {
			if links := x.Navigate(source, acc, tgt); len(links) > 0 {
				row[tgt] = links
			}
		}
		out[acc] = row
	}
	return out
}

// Lookups returns the number of per-entry accesses performed so far.
func (x *Index) Lookups() int { return x.lookups }

// ResetLookups clears the access counter (between experiment phases).
func (x *Index) ResetLookups() { x.lookups = 0 }
