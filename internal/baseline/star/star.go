// Package star implements the baseline GenMapper argues against (paper §1):
// a data warehouse with an application-specific global schema. Gene
// annotations live in a fixed star schema — a gene dimension table with one
// column per supported annotation source plus fact tables for
// multi-valued annotations. The schema must be known up front; integrating
// a source or attribute the schema designers did not anticipate requires
// DDL (schema evolution), which is the maintenance cost the generic GAM
// representation avoids.
package star

import (
	"fmt"
	"sort"
	"strings"

	"genmapper/internal/eav"
	"genmapper/internal/sqldb"
)

// Warehouse is a fixed-schema annotation warehouse over the embedded
// database.
type Warehouse struct {
	db *sqldb.DB
	// singleValued maps supported source names to their gene-table column.
	singleValued map[string]string
	// multiValued maps supported source names to their fact table.
	multiValued map[string]string
	ddlCount    int
}

// DefaultSingleValued lists the annotation sources the schema designers
// anticipated as single-valued gene attributes.
var DefaultSingleValued = []string{"Hugo", "Location", "Unigene"}

// DefaultMultiValued lists the anticipated multi-valued annotations, each
// getting its own fact table.
var DefaultMultiValued = []string{"GO", "OMIM", "Enzyme"}

// Build creates the star schema for the default anticipated sources.
func Build(db *sqldb.DB) (*Warehouse, error) {
	w := &Warehouse{
		db:           db,
		singleValued: make(map[string]string),
		multiValued:  make(map[string]string),
	}
	cols := []string{"accession TEXT PRIMARY KEY", "name TEXT"}
	for _, src := range DefaultSingleValued {
		col := columnName(src)
		w.singleValued[strings.ToLower(src)] = col
		cols = append(cols, col+" TEXT")
	}
	ddl := "CREATE TABLE gene (" + strings.Join(cols, ", ") + ")"
	if err := w.exec(ddl); err != nil {
		return nil, err
	}
	for _, src := range DefaultMultiValued {
		if err := w.addFactTable(src); err != nil {
			return nil, err
		}
	}
	return w, nil
}

func columnName(src string) string {
	return strings.ToLower(strings.ReplaceAll(src, "-", "_"))
}

func factTableName(src string) string {
	return columnName(src) + "_annotation"
}

func (w *Warehouse) exec(ddl string, args ...any) error {
	if _, err := w.db.Exec(ddl, args...); err != nil {
		return fmt.Errorf("star: %w", err)
	}
	w.ddlCount++
	return nil
}

func (w *Warehouse) addFactTable(src string) error {
	table := factTableName(src)
	w.multiValued[strings.ToLower(src)] = table
	if err := w.exec(fmt.Sprintf(
		"CREATE TABLE %s (gene_accession TEXT NOT NULL, target_accession TEXT NOT NULL, text TEXT)", table)); err != nil {
		return err
	}
	return w.exec(fmt.Sprintf("CREATE INDEX idx_%s_gene ON %s (gene_accession)", table, table))
}

// DDLCount reports how many DDL statements the warehouse has needed so
// far. This is the schema-churn metric of the E10 ablation: GAM needs zero
// DDL to absorb a new source, the star schema needs at least one.
func (w *Warehouse) DDLCount() int { return w.ddlCount }

// Supports reports whether the warehouse can store annotations of the
// given target source without schema evolution.
func (w *Warehouse) Supports(target string) bool {
	key := strings.ToLower(target)
	if _, ok := w.singleValued[key]; ok {
		return true
	}
	_, ok := w.multiValued[key]
	return ok
}

// AddTarget evolves the schema to accept a previously unanticipated
// annotation source (always as a multi-valued fact table). This is the
// operation the generic model renders unnecessary.
func (w *Warehouse) AddTarget(target string) error {
	if w.Supports(target) {
		return nil
	}
	return w.addFactTable(target)
}

// LoadDataset loads a gene dataset (e.g. parsed LocusLink) into the
// warehouse. Annotations whose target the schema does not support are
// counted as dropped — the warehouse silently loses what its schema cannot
// express.
func (w *Warehouse) LoadDataset(d *eav.Dataset) (loaded, dropped int, err error) {
	type geneRow struct {
		name   string
		single map[string]string
	}
	genes := make(map[string]*geneRow)
	var order []string
	get := func(acc string) *geneRow {
		g, ok := genes[acc]
		if !ok {
			g = &geneRow{single: make(map[string]string)}
			genes[acc] = g
			order = append(order, acc)
		}
		return g
	}
	type fact struct {
		table, gene, target, text string
	}
	var facts []fact
	for _, r := range d.Records {
		g := get(r.Accession)
		switch {
		case r.Target == eav.TargetName:
			g.name = r.Text
		case eav.IsPseudoTarget(r.Target):
			dropped++
		default:
			key := strings.ToLower(r.Target)
			if col, ok := w.singleValued[key]; ok {
				if _, dup := g.single[col]; !dup {
					g.single[col] = r.TargetAccession
					loaded++
				}
				continue
			}
			if table, ok := w.multiValued[key]; ok {
				facts = append(facts, fact{table: table, gene: r.Accession, target: r.TargetAccession, text: r.Text})
				loaded++
				continue
			}
			dropped++
		}
	}

	// Insert genes.
	singleCols := make([]string, 0, len(w.singleValued))
	for _, col := range w.singleValued {
		singleCols = append(singleCols, col)
	}
	sort.Strings(singleCols)
	colList := "accession, name"
	placeholders := "?, ?"
	for _, col := range singleCols {
		colList += ", " + col
		placeholders += ", ?"
	}
	insertSQL := fmt.Sprintf("INSERT INTO gene (%s) VALUES (%s)", colList, placeholders)
	for _, acc := range order {
		existing, err := w.db.Query("SELECT accession FROM gene WHERE accession = ?", acc)
		if err != nil {
			return loaded, dropped, fmt.Errorf("star: %w", err)
		}
		if existing.Len() > 0 {
			continue // re-load: gene row already present
		}
		g := genes[acc]
		args := []any{acc, g.name}
		for _, col := range singleCols {
			if v, ok := g.single[col]; ok {
				args = append(args, v)
			} else {
				args = append(args, nil)
			}
		}
		if _, err := w.db.Exec(insertSQL, args...); err != nil {
			return loaded, dropped, fmt.Errorf("star: insert gene: %w", err)
		}
	}
	for _, f := range facts {
		if _, err := w.db.Exec(
			fmt.Sprintf("INSERT INTO %s (gene_accession, target_accession, text) VALUES (?, ?, ?)", f.table),
			f.gene, f.target, f.text); err != nil {
			return loaded, dropped, fmt.Errorf("star: insert fact: %w", err)
		}
	}
	return loaded, dropped, nil
}

// AnnotationView builds the Figure-3-style view (gene plus one column per
// requested target) through SQL joins on the star schema. Requested
// targets outside the schema are an error — the fixed schema cannot serve
// them.
func (w *Warehouse) AnnotationView(genes []string, targets []string) (*sqldb.ResultSet, error) {
	selectCols := []string{"g.accession"}
	fromClause := "gene g"
	for i, tgt := range targets {
		key := strings.ToLower(tgt)
		if col, ok := w.singleValued[key]; ok {
			selectCols = append(selectCols, "g."+col)
			continue
		}
		table, ok := w.multiValued[key]
		if !ok {
			return nil, fmt.Errorf("star: schema does not support target %q", tgt)
		}
		alias := fmt.Sprintf("t%d", i)
		selectCols = append(selectCols, alias+".target_accession")
		fromClause += fmt.Sprintf(" LEFT JOIN %s %s ON g.accession = %s.gene_accession", table, alias, alias)
	}
	sql := "SELECT " + strings.Join(selectCols, ", ") + " FROM " + fromClause
	var args []any
	if len(genes) > 0 {
		marks := make([]string, len(genes))
		for i, g := range genes {
			marks[i] = "?"
			args = append(args, g)
		}
		sql += " WHERE g.accession IN (" + strings.Join(marks, ", ") + ")"
	}
	sql += " ORDER BY g.accession"
	return w.db.Query(sql, args...)
}

// GeneCount returns the number of loaded genes.
func (w *Warehouse) GeneCount() int {
	return w.db.RowCount("gene")
}
