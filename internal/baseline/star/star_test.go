package star

import (
	"testing"

	"genmapper/internal/eav"
	"genmapper/internal/sqldb"
)

func locusDataset() *eav.Dataset {
	d := eav.NewDataset(eav.SourceInfo{Name: "LocusLink", Content: "gene"})
	d.Add("353", eav.TargetName, "", "adenine phosphoribosyltransferase")
	d.Add("353", "Hugo", "APRT", "")
	d.Add("353", "Location", "16q24", "")
	d.Add("353", "GO", "GO:0009116", "nucleoside metabolism")
	d.Add("353", "GO", "GO:0016740", "transferase activity")
	d.Add("353", "OMIM", "102600", "")
	d.Add("354", eav.TargetName, "", "second locus")
	d.Add("354", "Hugo", "XYZ1", "")
	return d
}

func TestBuildAndLoad(t *testing.T) {
	w, err := Build(sqldb.NewDB())
	if err != nil {
		t.Fatal(err)
	}
	initialDDL := w.DDLCount()
	if initialDDL == 0 {
		t.Fatal("schema creation needs DDL")
	}
	loaded, dropped, err := w.LoadDataset(locusDataset())
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 6 || dropped != 0 {
		t.Fatalf("loaded=%d dropped=%d", loaded, dropped)
	}
	if w.GeneCount() != 2 {
		t.Fatalf("genes = %d", w.GeneCount())
	}
}

func TestAnnotationView(t *testing.T) {
	w, _ := Build(sqldb.NewDB())
	if _, _, err := w.LoadDataset(locusDataset()); err != nil {
		t.Fatal(err)
	}
	rs, err := w.AnnotationView([]string{"353"}, []string{"Hugo", "GO"})
	if err != nil {
		t.Fatal(err)
	}
	// 353 with two GO terms: two rows (single-valued Hugo repeats).
	if len(rs.Rows) != 2 {
		t.Fatalf("view rows = %d, want 2", len(rs.Rows))
	}
	if rs.Rows[0][1] != "APRT" {
		t.Errorf("hugo cell = %v", rs.Rows[0][1])
	}
	// Whole-warehouse view (no gene restriction) includes 354 with NULL GO.
	rs, err = w.AnnotationView(nil, []string{"GO"})
	if err != nil {
		t.Fatal(err)
	}
	found354 := false
	for _, r := range rs.Rows {
		if r[0] == "354" {
			found354 = true
			if r[1] != nil {
				t.Errorf("354 GO = %v, want NULL", r[1])
			}
		}
	}
	if !found354 {
		t.Error("left join lost unannotated gene")
	}
}

func TestUnsupportedTargetRequiresDDL(t *testing.T) {
	// The E10 schema-churn scenario: a source the schema designers did not
	// anticipate arrives.
	w, _ := Build(sqldb.NewDB())
	d := eav.NewDataset(eav.SourceInfo{Name: "LocusLink"})
	d.Add("353", "InterPro", "IPR000001", "")
	_, dropped, err := w.LoadDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1 (unsupported target lost)", dropped)
	}
	if w.Supports("InterPro") {
		t.Fatal("InterPro should be unsupported initially")
	}
	if _, err := w.AnnotationView(nil, []string{"InterPro"}); err == nil {
		t.Fatal("view over unsupported target must fail")
	}

	before := w.DDLCount()
	if err := w.AddTarget("InterPro"); err != nil {
		t.Fatal(err)
	}
	ddlNeeded := w.DDLCount() - before
	if ddlNeeded < 1 {
		t.Fatalf("schema evolution needed %d DDL statements, want >= 1", ddlNeeded)
	}
	if !w.Supports("InterPro") {
		t.Fatal("AddTarget did not register the source")
	}
	// Idempotent.
	before = w.DDLCount()
	if err := w.AddTarget("InterPro"); err != nil {
		t.Fatal(err)
	}
	if w.DDLCount() != before {
		t.Error("re-adding a supported target should be free")
	}
	// Now the data loads.
	loaded, dropped, err := w.LoadDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	_ = loaded
	if dropped != 0 {
		t.Fatalf("still dropping after evolution: %d", dropped)
	}
}

func TestStructuralRecordsDropped(t *testing.T) {
	// The star schema has no place for taxonomy structure.
	w, _ := Build(sqldb.NewDB())
	d := eav.NewDataset(eav.SourceInfo{Name: "GO"})
	d.Add("GO:2", eav.TargetIsA, "GO:1", "")
	_, dropped, err := w.LoadDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatalf("IS_A dropped = %d, want 1", dropped)
	}
}
