package sqldb

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// readSQLDoc loads docs/sql.md relative to this package.
func readSQLDoc(t *testing.T) string {
	t.Helper()
	path := filepath.Join("..", "..", "docs", "sql.md")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("docs/sql.md must exist and document the grammar: %v", err)
	}
	return string(data)
}

// fences extracts the contents of ```lang fenced blocks, in order.
func fences(doc, lang string) []string {
	var out []string
	var cur []string
	in := false
	for _, line := range strings.Split(doc, "\n") {
		switch {
		case !in && strings.TrimSpace(line) == "```"+lang:
			in = true
			cur = nil
		case in && strings.TrimSpace(line) == "```":
			in = false
			out = append(out, strings.Join(cur, "\n"))
		case in:
			cur = append(cur, line)
		}
	}
	return out
}

// TestDocsSQLKeywordSync keeps docs/sql.md and the lexer's keyword table
// in lockstep, both ways: every UPPERCASE token in a grammar production
// (```text fence) must be a real keyword, and every keyword the lexer
// recognizes must appear in a production — so adding a keyword without
// documenting its grammar, or documenting grammar the parser does not
// have, fails here.
func TestDocsSQLKeywordSync(t *testing.T) {
	doc := readSQLDoc(t)
	grammar := strings.Join(fences(doc, "text"), "\n")
	if grammar == "" {
		t.Fatal("docs/sql.md has no ```text grammar fences")
	}
	word := regexp.MustCompile(`\b[A-Z]{2,}\b`)
	for _, w := range word.FindAllString(grammar, -1) {
		if !sqlKeywords[w] {
			t.Errorf("grammar production uses %q, which the lexer does not recognize as a keyword", w)
		}
	}
	for kw := range sqlKeywords {
		if !regexp.MustCompile(`\b` + kw + `\b`).MatchString(grammar) {
			t.Errorf("keyword %q is recognized by the lexer but appears in no grammar production of docs/sql.md", kw)
		}
	}
}

// TestDocsSQLExamples executes every ```sql fence of docs/sql.md, in
// document order, against one fresh database — the examples are the
// spec's proof of runnability, so an example that stops parsing or
// executing fails CI. BEGIN/COMMIT/ROLLBACK drive a real transaction.
func TestDocsSQLExamples(t *testing.T) {
	doc := readSQLDoc(t)
	blocks := fences(doc, "sql")
	if len(blocks) == 0 {
		t.Fatal("docs/sql.md has no ```sql example fences")
	}
	db := NewDB()
	var tx *Tx
	run := 0
	for _, block := range blocks {
		for _, stmt := range strings.Split(block, ";") {
			stmt = strings.TrimSpace(stmt)
			if stmt == "" {
				continue
			}
			run++
			if _, err := Parse(stmt); err != nil {
				t.Fatalf("example does not parse: %v\n%s", err, stmt)
			}
			kw := strings.ToUpper(strings.Fields(stmt)[0])
			var err error
			switch kw {
			case "BEGIN":
				if tx != nil {
					t.Fatalf("example opens a nested transaction:\n%s", stmt)
				}
				tx = db.Begin()
			case "COMMIT":
				err = tx.Commit()
				tx = nil
			case "ROLLBACK":
				err = tx.Rollback()
				tx = nil
			case "SELECT", "EXPLAIN":
				if tx != nil {
					_, err = tx.Query(stmt)
				} else {
					_, err = db.Query(stmt)
				}
			default:
				if tx != nil {
					_, err = tx.Exec(stmt)
				} else {
					_, err = db.Exec(stmt)
				}
			}
			if err != nil {
				t.Fatalf("example does not execute: %v\n%s", err, stmt)
			}
		}
	}
	if tx != nil {
		t.Fatal("docs/sql.md leaves a transaction open")
	}
	if run < 30 {
		t.Fatalf("only %d example statements found; the grammar doc should exercise every construct", run)
	}
}
