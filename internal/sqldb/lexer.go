package sqldb

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol
	tokParam
)

type token struct {
	kind tokenKind
	text string // keyword text is upper-cased; idents keep original case
	num  Value  // int64 or float64 for tokNumber
	pos  int    // byte offset in input, for error messages
}

// keywords recognized by the parser. Identifiers matching these
// (case-insensitively) lex as tokKeyword.
var sqlKeywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "INSERT": true, "INTO": true,
	"VALUES": true, "UPDATE": true, "SET": true, "DELETE": true, "CREATE": true,
	"TABLE": true, "INDEX": true, "UNIQUE": true, "ON": true, "DROP": true,
	"JOIN": true, "LEFT": true, "RIGHT": true, "CROSS": true, "INNER": true,
	"OUTER": true, "AND": true,
	"OR": true, "NOT": true, "NULL": true, "IS": true, "IN": true, "LIKE": true,
	"BETWEEN": true, "AS": true, "DISTINCT": true, "ORDER": true, "BY": true,
	"GROUP": true, "HAVING": true, "LIMIT": true, "OFFSET": true, "ASC": true,
	"DESC": true, "PRIMARY": true, "KEY": true, "AUTOINCREMENT": true,
	"DEFAULT": true, "INTEGER": true, "INT": true, "REAL": true, "FLOAT": true,
	"TEXT": true, "VARCHAR": true, "BOOLEAN": true, "BOOL": true, "TRUE": true,
	"FALSE": true, "BEGIN": true, "COMMIT": true, "ROLLBACK": true,
	"USING": true, "HASH": true, "BTREE": true, "IF": true, "EXISTS": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"TRANSACTION": true, "EXPLAIN": true, "FORMAT": true, "JSON": true,
}

// lexer turns SQL text into tokens.
type lexer struct {
	src    string
	pos    int
	tokens []token
}

// lexSQL tokenizes the input or returns a descriptive error.
func lexSQL(src string) ([]token, error) {
	lx := &lexer{src: src}
	if err := lx.run(); err != nil {
		return nil, err
	}
	return lx.tokens, nil
}

func (lx *lexer) run() error {
	n := 0 // parameter counter for bare '?'
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			lx.pos++
		case c == '-' && lx.peekAt(1) == '-':
			// Line comment.
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case isIdentStart(rune(c)):
			lx.lexIdent()
		case c >= '0' && c <= '9':
			if err := lx.lexNumber(); err != nil {
				return err
			}
		case c == '\'':
			if err := lx.lexString(); err != nil {
				return err
			}
		case c == '?':
			lx.tokens = append(lx.tokens, token{kind: tokParam, text: strconv.Itoa(n), pos: lx.pos})
			n++
			lx.pos++
		case c == '"':
			if err := lx.lexQuotedIdent(); err != nil {
				return err
			}
		default:
			if ok := lx.lexSymbol(); !ok {
				return fmt.Errorf("sqldb: unexpected character %q at offset %d", c, lx.pos)
			}
		}
	}
	lx.tokens = append(lx.tokens, token{kind: tokEOF, pos: lx.pos})
	return nil
}

func (lx *lexer) peekAt(off int) byte {
	if lx.pos+off < len(lx.src) {
		return lx.src[lx.pos+off]
	}
	return 0
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (lx *lexer) lexIdent() {
	start := lx.pos
	for lx.pos < len(lx.src) && isIdentPart(rune(lx.src[lx.pos])) {
		lx.pos++
	}
	word := lx.src[start:lx.pos]
	upper := strings.ToUpper(word)
	if sqlKeywords[upper] {
		lx.tokens = append(lx.tokens, token{kind: tokKeyword, text: upper, pos: start})
		return
	}
	lx.tokens = append(lx.tokens, token{kind: tokIdent, text: word, pos: start})
}

func (lx *lexer) lexQuotedIdent() error {
	start := lx.pos
	lx.pos++ // opening quote
	var sb strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == '"' {
			if lx.peekAt(1) == '"' {
				sb.WriteByte('"')
				lx.pos += 2
				continue
			}
			lx.pos++
			lx.tokens = append(lx.tokens, token{kind: tokIdent, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		lx.pos++
	}
	return fmt.Errorf("sqldb: unterminated quoted identifier at offset %d", start)
}

func (lx *lexer) lexNumber() error {
	start := lx.pos
	sawDot, sawExp := false, false
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c >= '0' && c <= '9':
			lx.pos++
		case c == '.' && !sawDot && !sawExp:
			sawDot = true
			lx.pos++
		case (c == 'e' || c == 'E') && !sawExp:
			sawExp = true
			lx.pos++
			if lx.pos < len(lx.src) && (lx.src[lx.pos] == '+' || lx.src[lx.pos] == '-') {
				lx.pos++
			}
		default:
			goto done
		}
	}
done:
	text := lx.src[start:lx.pos]
	if sawDot || sawExp {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return fmt.Errorf("sqldb: bad numeric literal %q at offset %d", text, start)
		}
		lx.tokens = append(lx.tokens, token{kind: tokNumber, text: text, num: f, pos: start})
		return nil
	}
	i, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return fmt.Errorf("sqldb: bad integer literal %q at offset %d", text, start)
	}
	lx.tokens = append(lx.tokens, token{kind: tokNumber, text: text, num: i, pos: start})
	return nil
}

func (lx *lexer) lexString() error {
	start := lx.pos
	lx.pos++ // opening quote
	var sb strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == '\'' {
			if lx.peekAt(1) == '\'' {
				sb.WriteByte('\'')
				lx.pos += 2
				continue
			}
			lx.pos++
			lx.tokens = append(lx.tokens, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		lx.pos++
	}
	return fmt.Errorf("sqldb: unterminated string literal at offset %d", start)
}

// twoCharSymbols in match priority order.
var twoCharSymbols = []string{"<>", "<=", ">=", "!=", "||"}

func (lx *lexer) lexSymbol() bool {
	rest := lx.src[lx.pos:]
	for _, s := range twoCharSymbols {
		if strings.HasPrefix(rest, s) {
			text := s
			if s == "!=" {
				text = "<>"
			}
			lx.tokens = append(lx.tokens, token{kind: tokSymbol, text: text, pos: lx.pos})
			lx.pos += 2
			return true
		}
	}
	switch rest[0] {
	case '(', ')', ',', '=', '<', '>', '+', '-', '*', '/', '%', '.', ';':
		lx.tokens = append(lx.tokens, token{kind: tokSymbol, text: string(rest[0]), pos: lx.pos})
		lx.pos++
		return true
	}
	return false
}
