package sqldb

import (
	"database/sql"
	"testing"
)

func openSQL(t *testing.T, dsn string) *sql.DB {
	t.Helper()
	ResetNamed(dsn)
	db, err := sql.Open(DriverName, dsn)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		db.Close()
		ResetNamed(dsn)
	})
	return db
}

func TestDriverBasicFlow(t *testing.T) {
	db := openSQL(t, "test-basic")
	if _, err := db.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY AUTOINCREMENT, name TEXT)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("INSERT INTO t (name) VALUES (?)", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	id, err := res.LastInsertId()
	if err != nil || id != 1 {
		t.Fatalf("LastInsertId = %d, %v", id, err)
	}
	n, err := res.RowsAffected()
	if err != nil || n != 1 {
		t.Fatalf("RowsAffected = %d, %v", n, err)
	}

	rows, err := db.Query("SELECT id, name FROM t WHERE name = ?", "alpha")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatal("no rows")
	}
	var gotID int64
	var gotName string
	if err := rows.Scan(&gotID, &gotName); err != nil {
		t.Fatal(err)
	}
	if gotID != 1 || gotName != "alpha" {
		t.Fatalf("row = %d, %q", gotID, gotName)
	}
	if rows.Next() {
		t.Fatal("unexpected extra row")
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestDriverNullScan(t *testing.T) {
	db := openSQL(t, "test-null")
	if _, err := db.Exec("CREATE TABLE t (v TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t VALUES (NULL)"); err != nil {
		t.Fatal(err)
	}
	var v sql.NullString
	if err := db.QueryRow("SELECT v FROM t").Scan(&v); err != nil {
		t.Fatal(err)
	}
	if v.Valid {
		t.Fatalf("expected NULL, got %q", v.String)
	}
}

func TestDriverPrepared(t *testing.T) {
	db := openSQL(t, "test-prepared")
	if _, err := db.Exec("CREATE TABLE t (n INTEGER)"); err != nil {
		t.Fatal(err)
	}
	stmt, err := db.Prepare("INSERT INTO t VALUES (?)")
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	for i := 0; i < 10; i++ {
		if _, err := stmt.Exec(i); err != nil {
			t.Fatal(err)
		}
	}
	var count int
	if err := db.QueryRow("SELECT COUNT(*) FROM t").Scan(&count); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("count = %d", count)
	}

	qstmt, err := db.Prepare("SELECT COUNT(*) FROM t WHERE n < ?")
	if err != nil {
		t.Fatal(err)
	}
	defer qstmt.Close()
	if err := qstmt.QueryRow(5).Scan(&count); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("count below 5 = %d", count)
	}
}

func TestDriverTransaction(t *testing.T) {
	db := openSQL(t, "test-tx")
	db.SetMaxOpenConns(1) // transactions pin a connection
	if _, err := db.Exec("CREATE TABLE t (n INTEGER)"); err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	var count int
	if err := db.QueryRow("SELECT COUNT(*) FROM t").Scan(&count); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("count after rollback = %d", count)
	}

	tx, err = db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO t VALUES (2)"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.QueryRow("SELECT COUNT(*) FROM t").Scan(&count); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("count after commit = %d", count)
	}
}

func TestDriverSharedDSN(t *testing.T) {
	dsn := "test-shared"
	db1 := openSQL(t, dsn)
	if _, err := db1.Exec("CREATE TABLE t (n INTEGER)"); err != nil {
		t.Fatal(err)
	}
	// A second sql.Open with the same DSN sees the same data.
	db2, err := sql.Open(DriverName, dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.Exec("INSERT INTO t VALUES (7)"); err != nil {
		t.Fatal(err)
	}
	var n int
	if err := db1.QueryRow("SELECT n FROM t").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("n = %d", n)
	}
	// Native access to the same database.
	native := OpenNamed(dsn)
	if native.RowCount("t") != 1 {
		t.Fatal("OpenNamed did not return the shared instance")
	}
}

func TestDriverQueryError(t *testing.T) {
	db := openSQL(t, "test-err")
	if _, err := db.Query("SELECT * FROM missing"); err == nil {
		t.Fatal("expected error for missing table")
	}
	if _, err := db.Exec("NONSENSE"); err == nil {
		t.Fatal("expected parse error")
	}
}
