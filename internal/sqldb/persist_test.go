package sqldb

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.snap")

	db := NewDB()
	mustExec(t, db, `CREATE TABLE src (id INTEGER PRIMARY KEY AUTOINCREMENT, name TEXT NOT NULL, weight REAL, active BOOLEAN, note TEXT)`)
	mustExec(t, db, "CREATE INDEX idx_name ON src (name)")
	mustExec(t, db, "CREATE INDEX idx_weight ON src (weight) USING BTREE")
	mustExec(t, db, "INSERT INTO src (name, weight, active, note) VALUES ('a', 1.5, TRUE, NULL)")
	mustExec(t, db, "INSERT INTO src (name, weight, active, note) VALUES ('b', -2.25, FALSE, 'hello')")
	mustExec(t, db, "INSERT INTO src (name, weight, active, note) VALUES ('c', NULL, NULL, 'x')")

	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}

	rs := mustQuery(t, loaded, "SELECT id, name, weight, active, note FROM src ORDER BY id")
	if len(rs.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rs.Rows))
	}
	if rs.Rows[0][1] != "a" || rs.Rows[0][2] != 1.5 || rs.Rows[0][3] != true || rs.Rows[0][4] != nil {
		t.Errorf("row 0 = %v", rs.Rows[0])
	}
	if rs.Rows[1][2] != -2.25 || rs.Rows[1][3] != false {
		t.Errorf("row 1 = %v", rs.Rows[1])
	}

	// Indexes work after load.
	rs = mustQuery(t, loaded, "SELECT id FROM src WHERE name = 'b'")
	if len(rs.Rows) != 1 || rs.Rows[0][0] != int64(2) {
		t.Fatalf("index lookup after load = %v", rs.Rows)
	}

	// AUTOINCREMENT sequence resumes.
	res, err := loaded.Exec("INSERT INTO src (name) VALUES ('d')")
	if err != nil {
		t.Fatal(err)
	}
	if res.LastInsertID != 4 {
		t.Errorf("sequence after load = %d, want 4", res.LastInsertID)
	}

	// Unique constraint still enforced after load.
	if _, err := loaded.Exec("INSERT INTO src (id, name) VALUES (1, 'dup')"); err == nil {
		t.Fatal("primary key uniqueness lost after load")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.snap")); err == nil {
		t.Fatal("expected error for missing snapshot")
	}
}

func TestLoadCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.snap")
	if err := os.WriteFile(path, []byte("this is not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("expected error for corrupt snapshot")
	}
}

func TestSaveOverwritesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.snap")
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (n INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "INSERT INTO t VALUES (2)")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	rs := mustQuery(t, loaded, "SELECT COUNT(*) FROM t")
	if rs.Rows[0][0] != int64(2) {
		t.Fatalf("count = %v, want 2", rs.Rows[0][0])
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temporary file left behind")
	}
}

func TestSaveEmptyDB(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.snap")
	db := NewDB()
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(loaded.TableNames()); n != 0 {
		t.Fatalf("empty snapshot loaded %d tables", n)
	}
}

// Restoring a snapshot must invalidate statement plans compiled against
// the pre-restore schema. Before the schema-generation bump on load, a
// cached plan kept pointing at the replaced *Table and served pre-restore
// rows.
func TestRestoreInvalidatesCachedPlans(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.snap")

	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	mustExec(t, db, "INSERT INTO t VALUES (1)")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}

	// Diverge from the snapshot and warm the plan cache on the diverged
	// state.
	mustExec(t, db, "INSERT INTO t VALUES (2)")
	const q = "SELECT a FROM t ORDER BY a"
	rs := mustQuery(t, db, q)
	if rs.Len() != 2 {
		t.Fatalf("pre-restore rows = %d, want 2", rs.Len())
	}

	if err := db.Restore(path); err != nil {
		t.Fatal(err)
	}
	rs = mustQuery(t, db, q)
	if rs.Len() != 1 || rs.Rows[0][0] != int64(1) {
		t.Fatalf("post-restore rows = %v, want just [1] (stale plan served the replaced table?)", rs.Rows)
	}
}

// Restore is DDL from a cursor's point of view: iteration must stop with
// ErrCursorInvalidated, not continue over vanished storage.
func TestRestoreInvalidatesOpenCursors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.snap")

	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	for i := 0; i < 10; i++ {
		mustExec(t, db, "INSERT INTO t VALUES (?)", i)
	}
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}

	cur, err := db.QueryCursor("SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if _, err := cur.Next(); err != nil {
		t.Fatal(err)
	}
	if err := db.Restore(path); err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Next(); err != ErrCursorInvalidated {
		t.Fatalf("Next after Restore = %v, want ErrCursorInvalidated", err)
	}
}

// A freshly loaded database must not sit at the zero schema generation a
// brand-new DB starts from: gen 0 would let compiled forms prepared against
// an empty pre-load state pass the generation check.
func TestLoadBumpsSchemaGeneration(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.snap")
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (a INTEGER)")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.gen.Load() == 0 {
		t.Fatal("loaded database still at schema generation 0")
	}
}
