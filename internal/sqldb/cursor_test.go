package sqldb

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func cursorTestDB(t *testing.T, rows int) *DB {
	t.Helper()
	db := NewDB()
	mustExec(t, db, "CREATE TABLE c (id INTEGER PRIMARY KEY, k INTEGER, s TEXT)")
	mustExec(t, db, "CREATE INDEX idx_c_k ON c (k) USING BTREE")
	for i := 0; i < rows; i++ {
		mustExec(t, db, "INSERT INTO c VALUES (?, ?, ?)", i, i%7, fmt.Sprintf("s%04d", i))
	}
	return db
}

// drainCursor copies every row out of a cursor (Next reuses its buffer).
func drainCursor(cur Cursor) ([][]Value, error) {
	var out [][]Value
	for {
		row, err := cur.Next()
		if err != nil {
			return out, err
		}
		if row == nil {
			return out, nil
		}
		cp := make([]Value, len(row))
		copy(cp, row)
		out = append(out, cp)
	}
}

func TestCursorMatchesQuery(t *testing.T) {
	db := cursorTestDB(t, 500)
	for _, q := range []string{
		"SELECT * FROM c",
		"SELECT id, s FROM c WHERE k = 3",
		"SELECT id FROM c WHERE k IN (1, 2) AND id > 100",
		"SELECT id, k FROM c ORDER BY k",                    // ordered via B-tree, >1 chunk
		"SELECT id, k FROM c ORDER BY k DESC",               // descending tie reversal
		"SELECT id, k FROM c ORDER BY k LIMIT 10",           // early exit
		"SELECT id FROM c ORDER BY s DESC LIMIT 5 OFFSET 3", // buffered sort
		"SELECT k, COUNT(*) FROM c GROUP BY k ORDER BY k",   // buffered aggregation
		"SELECT DISTINCT k FROM c",
		"SELECT id FROM c LIMIT 20 OFFSET 490",
		"SELECT id FROM c WHERE k = 99", // empty result
	} {
		want := mustQuery(t, db, q)
		cur, err := db.QueryCursor(q)
		if err != nil {
			t.Fatalf("%s: open: %v", q, err)
		}
		if fmt.Sprint(cur.Columns()) != fmt.Sprint(want.Columns) {
			t.Fatalf("%s: columns %v, want %v", q, cur.Columns(), want.Columns)
		}
		got, err := drainCursor(cur)
		if err != nil {
			t.Fatalf("%s: drain: %v", q, err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want.Rows) {
			t.Fatalf("%s:\ncursor %v\nquery  %v", q, got, want.Rows)
		}
		cur.Close()
	}
}

func TestCursorExhaustionIsSticky(t *testing.T) {
	db := cursorTestDB(t, 3)
	cur, err := db.QueryCursor("SELECT id FROM c")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	n := 0
	for {
		row, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if row == nil {
			break
		}
		n++
	}
	if n != 3 {
		t.Fatalf("rows = %d, want 3", n)
	}
	// Further Next calls keep reporting exhaustion, not rows or errors.
	for i := 0; i < 3; i++ {
		row, err := cur.Next()
		if row != nil || err != nil {
			t.Fatalf("Next after exhaustion = %v, %v", row, err)
		}
	}
}

func TestCursorEarlyClose(t *testing.T) {
	db := cursorTestDB(t, 100)
	cur, err := db.QueryCursor("SELECT id FROM c")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Next(); err != nil {
		t.Fatal(err)
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cur.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil (idempotent)", err)
	}
	if _, err := cur.Next(); err == nil {
		t.Fatal("Next after Close succeeded")
	}
	// A closed cursor must not pin the database: writes proceed.
	mustExec(t, db, "INSERT INTO c VALUES (1000, 0, 'late')")
}

func TestCursorInvalidatedByDDL(t *testing.T) {
	db := cursorTestDB(t, 50)
	for _, ddl := range []string{
		"CREATE INDEX idx_late ON c (s)",
		"DROP INDEX idx_late",
		"CREATE TABLE other (x INTEGER)",
		"DROP TABLE other",
	} {
		cur, err := db.QueryCursor("SELECT id FROM c")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cur.Next(); err != nil {
			t.Fatal(err)
		}
		mustExec(t, db, ddl)
		if _, err := cur.Next(); !errors.Is(err, ErrCursorInvalidated) {
			t.Fatalf("after %q: Next = %v, want ErrCursorInvalidated", ddl, err)
		}
		cur.Close()
	}
}

func TestCursorInvalidatedBeforeFirstNext(t *testing.T) {
	db := cursorTestDB(t, 10)
	cur, err := db.QueryCursor("SELECT id FROM c")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	mustExec(t, db, "CREATE TABLE zz (x INTEGER)")
	if _, err := cur.Next(); !errors.Is(err, ErrCursorInvalidated) {
		t.Fatalf("Next = %v, want ErrCursorInvalidated", err)
	}
}

func TestCursorSurvivesDML(t *testing.T) {
	db := cursorTestDB(t, 100)
	cur, err := db.QueryCursor("SELECT id FROM c")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	seen := map[int64]bool{}
	for i := 0; i < 10; i++ {
		row, err := cur.Next()
		if err != nil || row == nil {
			t.Fatalf("step %d: %v, %v", i, row, err)
		}
		seen[row[0].(int64)] = true
	}
	// DML between steps must not invalidate the cursor — only DDL does —
	// and must never make it re-emit a row.
	mustExec(t, db, "DELETE FROM c WHERE id >= 50 AND id < 70")
	mustExec(t, db, "INSERT INTO c VALUES (2000, 1, 'new')")
	mustExec(t, db, "UPDATE c SET s = 'upd' WHERE id < 5")
	for {
		row, err := cur.Next()
		if err != nil {
			t.Fatalf("Next after DML: %v", err)
		}
		if row == nil {
			break
		}
		id := row[0].(int64)
		if seen[id] {
			t.Fatalf("row %d emitted twice", id)
		}
		seen[id] = true
		if id >= 50 && id < 70 {
			t.Fatalf("deleted row %d emitted after DELETE", id)
		}
	}
	if !seen[2000] {
		t.Fatal("row inserted during iteration (higher row ID) not observed")
	}
}

func TestCursorQueryCursorRejectsNonSelect(t *testing.T) {
	db := cursorTestDB(t, 1)
	if _, err := db.QueryCursor("INSERT INTO c VALUES (900, 0, 'x')"); err == nil {
		t.Fatal("QueryCursor accepted INSERT")
	}
}

func TestTxQueryCursorSeesOwnWrites(t *testing.T) {
	db := cursorTestDB(t, 5)
	tx := db.Begin()
	if _, err := tx.Exec("INSERT INTO c VALUES (500, 0, 'tx')"); err != nil {
		t.Fatal(err)
	}
	cur, err := tx.QueryCursor("SELECT id FROM c WHERE id = 500")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := drainCursor(cur)
	cur.Close()
	if err != nil || len(rows) != 1 {
		t.Fatalf("rows = %v, err = %v; want the uncommitted row", rows, err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
}

// TestCursorConcurrentWriters iterates cursors while writer goroutines
// hammer the same table. Run under -race this proves per-step locking is
// sound; the assertions prove rows stay well-formed and IDs never repeat.
func TestCursorConcurrentWriters(t *testing.T) {
	db := cursorTestDB(t, 2000)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				id := 10000 + w*100000 + i
				if _, err := db.Exec("INSERT INTO c VALUES (?, ?, 'w')", id, i%7); err != nil {
					t.Error(err)
					return
				}
				if i%3 == 0 {
					if _, err := db.Exec("DELETE FROM c WHERE id = ?", id); err != nil {
						t.Error(err)
						return
					}
				}
				if i%5 == 0 {
					if _, err := db.Exec("UPDATE c SET s = 'u' WHERE id = ?", i%2000); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}

	for round := 0; round < 5; round++ {
		for _, q := range []string{
			"SELECT id, k, s FROM c",
			"SELECT id FROM c WHERE k = 3",
			"SELECT id, k FROM c ORDER BY k",
		} {
			cur, err := db.QueryCursor(q)
			if err != nil {
				t.Fatal(err)
			}
			// Scans walk ascending internal row IDs, so no row — however
			// the writers interleave — may ever be emitted twice.
			fullScan := q == "SELECT id, k, s FROM c"
			seen := make(map[int64]bool)
			for {
				row, err := cur.Next()
				if err != nil {
					t.Fatalf("%s: %v", q, err)
				}
				if row == nil {
					break
				}
				id, ok := row[0].(int64)
				if !ok {
					t.Fatalf("%s: malformed id %v", q, row[0])
				}
				if fullScan {
					if seen[id] {
						t.Fatalf("%s: row %d emitted twice", q, id)
					}
					seen[id] = true
				}
			}
			cur.Close()
		}
	}
	stop.Store(true)
	wg.Wait()
}
