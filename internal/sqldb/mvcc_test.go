package sqldb

// MVCC snapshot-isolation tests: visibility rules, repeatable reads,
// first-committer-wins conflicts, rollback unlinking, vacuum reclamation,
// and the headline property — readers never block on writers.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func mvccDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, v TEXT)")
	mustExec(t, db, "CREATE INDEX idx_k ON t (k)")
	for i := 0; i < 100; i++ {
		mustExec(t, db, "INSERT INTO t VALUES (?, ?, ?)", i, i%10, fmt.Sprintf("val%d", i))
	}
	// Pin the background vacuum far away: these tests assert the results
	// of explicit Vacuum calls, which a background pass would race.
	db.SetVacuumInterval(time.Hour)
	db.SetMVCC(true)
	return db
}

func countRows(t *testing.T, q func(string, ...any) (*ResultSet, error), sql string, args ...any) int64 {
	t.Helper()
	rs, err := q(sql, args...)
	if err != nil {
		t.Fatal(err)
	}
	return rs.Rows[0][0].(int64)
}

// A cursor opened before a commit must keep streaming the pre-commit
// state; a query issued after the commit sees the new state.
func TestMVCCCursorSnapshotStability(t *testing.T) {
	db := mvccDB(t)
	cur, err := db.QueryCursor("SELECT id FROM t ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	// Drain a prefix, then land a commit that would change the result.
	for i := 0; i < 10; i++ {
		if _, err := cur.Next(); err != nil {
			t.Fatal(err)
		}
	}
	mustExec(t, db, "DELETE FROM t WHERE id >= 50")
	mustExec(t, db, "INSERT INTO t VALUES (1000, 0, 'new')")
	n := 10
	for {
		row, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if row == nil {
			break
		}
		n++
	}
	if n != 100 {
		t.Fatalf("snapshot cursor streamed %d rows, want the 100 visible at open", n)
	}
	if got := countRows(t, db.Query, "SELECT COUNT(*) FROM t"); got != 51 {
		t.Fatalf("post-commit count = %d, want 51", got)
	}
}

// Reads inside a transaction observe the Begin snapshot plus the
// transaction's own writes, and stay repeatable while other transactions
// commit around them.
func TestMVCCRepeatableReads(t *testing.T) {
	db := mvccDB(t)
	tx := db.Begin()
	defer tx.Rollback()
	before := countRows(t, tx.Query, "SELECT COUNT(*) FROM t")
	mustExec(t, db, "DELETE FROM t WHERE id < 20") // concurrent auto-commit
	if got := countRows(t, tx.Query, "SELECT COUNT(*) FROM t"); got != before {
		t.Fatalf("read not repeatable: %d then %d", before, got)
	}
	// Read-your-own-writes: the tx sees its provisional insert, the
	// outside world does not.
	if _, err := tx.Exec("INSERT INTO t VALUES (2000, 5, 'mine')"); err != nil {
		t.Fatal(err)
	}
	if got := countRows(t, tx.Query, "SELECT COUNT(*) FROM t WHERE id = 2000"); got != 1 {
		t.Fatal("transaction does not see its own provisional write")
	}
	if got := countRows(t, db.Query, "SELECT COUNT(*) FROM t WHERE id = 2000"); got != 0 {
		t.Fatal("provisional write leaked to a snapshot reader before commit")
	}
}

// First committer wins: a transaction writing a row that another
// transaction committed after its snapshot fails with ErrWriteConflict.
func TestMVCCWriteConflict(t *testing.T) {
	db := mvccDB(t)
	tx := db.Begin()
	defer tx.Rollback()
	// The snapshot is captured at Begin; this later auto-commit postdates it.
	mustExec(t, db, "UPDATE t SET v = 'first' WHERE id = 7")
	_, err := tx.Exec("UPDATE t SET v = 'second' WHERE id = 7")
	if !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("err = %v, want ErrWriteConflict", err)
	}
	if db.MVCCStats().Conflicts == 0 {
		t.Fatal("conflict counter did not move")
	}
	// The losing statement rolled back; the winner's value survives.
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	rs, err := db.Query("SELECT v FROM t WHERE id = 7")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0] != "first" {
		t.Fatalf("v = %v, want the first committer's value", rs.Rows[0][0])
	}
}

// Rollback unlinks provisional versions: nothing the transaction wrote is
// ever visible, and the abort is counted.
func TestMVCCRollbackUnlinksProvisional(t *testing.T) {
	db := mvccDB(t)
	tx := db.Begin()
	if _, err := tx.Exec("UPDATE t SET v = 'doomed' WHERE k = 3"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("DELETE FROM t WHERE k = 4"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO t VALUES (3000, 1, 'doomed')"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := countRows(t, db.Query, "SELECT COUNT(*) FROM t WHERE v = 'doomed'"); got != 0 {
		t.Fatalf("%d rolled-back rows visible", got)
	}
	if got := countRows(t, db.Query, "SELECT COUNT(*) FROM t"); got != 100 {
		t.Fatalf("count = %d after rollback, want 100", got)
	}
	if db.MVCCStats().Aborts == 0 {
		t.Fatal("abort counter did not move")
	}
}

// Vacuum reclaims versions below the oldest active snapshot — and not the
// versions an open snapshot still needs.
func TestMVCCVacuumReclaims(t *testing.T) {
	db := mvccDB(t)
	// Pin a snapshot with an open cursor, then pile up versions.
	cur, err := db.QueryCursor("SELECT COUNT(*) FROM t WHERE id = 0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		mustExec(t, db, "UPDATE t SET v = ? WHERE id = 0", fmt.Sprintf("rev%d", i))
	}
	if got := db.Vacuum(); got != 0 {
		t.Fatalf("vacuum reclaimed %d versions below a pinned snapshot", got)
	}
	cur.Close()
	if got := db.Vacuum(); got == 0 {
		t.Fatal("vacuum reclaimed nothing after the snapshot released")
	}
	// The surviving state is the newest committed version.
	rs, err := db.Query("SELECT v FROM t WHERE id = 0")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0] != "rev4" {
		t.Fatalf("v = %v after vacuum, want rev4", rs.Rows[0][0])
	}
	// Deleted rows become tombstones; vacuum physically drops them once
	// no snapshot can see them.
	mustExec(t, db, "DELETE FROM t WHERE id >= 90")
	if got := db.Vacuum(); got < 10 {
		t.Fatalf("vacuum reclaimed %d versions, want the 10 tombstoned rows", got)
	}
	if got := countRows(t, db.Query, "SELECT COUNT(*) FROM t"); got != 90 {
		t.Fatalf("count = %d after tombstone vacuum, want 90", got)
	}
	if st := db.MVCCStats(); st.VacuumRuns == 0 || st.VersionsVacuumed == 0 {
		t.Fatalf("vacuum stats did not move: %+v", st)
	}
}

// Updating an indexed column leaves the old key's index entry until
// vacuum; lookups through either key must respect snapshot visibility.
func TestMVCCIndexVisibilityAcrossKeyChange(t *testing.T) {
	db := mvccDB(t)
	cur, err := db.QueryCursor("SELECT id FROM t WHERE k = 3 ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	mustExec(t, db, "UPDATE t SET k = 777 WHERE id = 3") // was k=3
	// Latest snapshot: the row answers only to its new key.
	if got := countRows(t, db.Query, "SELECT COUNT(*) FROM t WHERE k = 3 AND id = 3"); got != 0 {
		t.Fatal("stale index entry leaked a superseded key into a new snapshot")
	}
	if got := countRows(t, db.Query, "SELECT COUNT(*) FROM t WHERE k = 777"); got != 1 {
		t.Fatal("new key not reachable through the index")
	}
	// The pinned pre-update snapshot still finds it under the old key.
	n := 0
	for {
		row, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if row == nil {
			break
		}
		n++
	}
	if n != 10 {
		t.Fatalf("pre-update snapshot saw %d rows for k=3, want 10", n)
	}
}

// The headline regression test: a held writer lock (a write statement in
// progress holds db.writer plus exclusive db.mu) must not stall an MVCC
// snapshot read.
func TestMVCCReaderNotBlockedByHeldWriterLock(t *testing.T) {
	db := mvccDB(t)
	// Seize the locks exactly as a write statement does, and hold them.
	db.writer.Lock()
	db.mu.Lock()
	release := make(chan struct{})
	go func() {
		<-release
		db.mu.Unlock()
		db.writer.Unlock()
	}()
	defer close(release)

	done := make(chan error, 1)
	go func() {
		rs, err := db.Query("SELECT COUNT(*) FROM t")
		if err == nil && rs.Rows[0][0] != int64(100) {
			err = fmt.Errorf("count = %v", rs.Rows[0][0])
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("snapshot read stalled behind a held writer lock")
	}
}

// Concurrent-transactions oracle: one writer commits batches with a known
// invariant while readers snapshot-read; every read must observe exactly
// a committed prefix (all-or-nothing per transaction), and in-tx reads
// must be repeatable. Run with -race in CI.
func TestMVCCConcurrentCommittedPrefix(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE acct (id INTEGER PRIMARY KEY, bal INTEGER)")
	const accounts = 10
	for i := 0; i < accounts; i++ {
		mustExec(t, db, "INSERT INTO acct VALUES (?, ?)", i, 100)
	}
	db.SetMVCC(true)

	// Writer: transfer between accounts in transactions; total balance is
	// invariant, so any reader observing a partial transaction sees a
	// wrong SUM.
	var stop atomic.Bool
	var writerErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			from, to := i%accounts, (i+3)%accounts
			tx := db.Begin()
			_, err1 := tx.Exec("UPDATE acct SET bal = bal - 1 WHERE id = ?", from)
			_, err2 := tx.Exec("UPDATE acct SET bal = bal + 1 WHERE id = ?", to)
			if err1 != nil || err2 != nil {
				tx.Rollback()
				// Conflicts are impossible here (single writer), so any
				// error is real.
				writerErr = errors.Join(err1, err2)
				return
			}
			if err := tx.Commit(); err != nil {
				writerErr = err
				return
			}
		}
	}()

	const readers = 4
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rs, err := db.Query("SELECT SUM(bal), COUNT(*) FROM acct")
				if err != nil {
					errs <- err
					return
				}
				if sum, n := rs.Rows[0][0].(int64), rs.Rows[0][1].(int64); sum != int64(accounts*100) || n != accounts {
					errs <- fmt.Errorf("torn read: SUM=%d COUNT=%d (want %d/%d)", sum, n, accounts*100, accounts)
					return
				}
				// Repeatable reads inside a read-only transaction while
				// commits land around it.
				tx := db.Begin()
				a, err := tx.Query("SELECT bal FROM acct WHERE id = 0")
				if err != nil {
					tx.Rollback()
					errs <- err
					return
				}
				b, err := tx.Query("SELECT bal FROM acct WHERE id = 0")
				if err != nil {
					tx.Rollback()
					errs <- err
					return
				}
				if a.Rows[0][0] != b.Rows[0][0] {
					tx.Rollback()
					errs <- fmt.Errorf("non-repeatable read in tx: %v then %v", a.Rows[0][0], b.Rows[0][0])
					return
				}
				tx.Rollback()
			}
			errs <- nil
		}()
	}
	for r := 0; r < readers; r++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	if writerErr != nil {
		t.Fatal(writerErr)
	}
	if st := db.MVCCStats(); st.Commits == 0 {
		t.Fatalf("writer never committed: %+v", st)
	}
}

// Mixed concurrent load across every read path (point, range via index,
// full scan, aggregate, cursor stream) against single-statement writers.
// Asserts only engine invariants — no torn rows, no errors — and exists
// to give the race detector surface area over the lock-free paths.
func TestMVCCConcurrentMixedPaths(t *testing.T) {
	db := mvccDB(t)
	db.SetParallelMinRows(1)
	db.SetBatchMinRows(1)
	var stop atomic.Bool
	errs := make(chan error, 8)

	var writerDone sync.WaitGroup
	writerDone.Add(1)
	go func() { // writer: updates, deletes, inserts, occasional vacuum
		defer writerDone.Done()
		for i := 0; !stop.Load(); i++ {
			var err error
			switch i % 4 {
			case 0:
				_, err = db.Exec("UPDATE t SET v = ? WHERE id = ?", fmt.Sprintf("w%d", i), i%100)
			case 1:
				_, err = db.Exec("DELETE FROM t WHERE id = ?", 100+i)
			case 2:
				_, err = db.Exec("INSERT INTO t VALUES (?, ?, ?)", 200+i, i%10, "ins")
			case 3:
				db.Vacuum()
			}
			if err != nil {
				errs <- err
				return
			}
		}
	}()

	queries := []string{
		"SELECT v FROM t WHERE id = 42",
		"SELECT COUNT(*) FROM t WHERE k = 5",
		"SELECT COUNT(*), MIN(id), MAX(id) FROM t",
		"SELECT id, v FROM t WHERE k < 8 ORDER BY id LIMIT 20",
	}
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for i := 0; i < 300; i++ {
				q := queries[(r+i)%len(queries)]
				if i%7 == 0 {
					cur, err := db.QueryCursor(q)
					if err != nil {
						errs <- err
						return
					}
					for {
						row, err := cur.Next()
						if err != nil || row == nil {
							break
						}
					}
					cur.Close()
					continue
				}
				if _, err := db.Query(q); err != nil {
					errs <- err
					return
				}
			}
		}(r)
	}

	readers.Wait()
	stop.Store(true)
	writerDone.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if st := db.MVCCStats(); st.ActiveSnapshots != 0 {
		t.Fatalf("leaked snapshot registrations: %+v", st)
	}
}

// Toggling the mode mid-flight invalidates open cursors instead of mixing
// locking disciplines.
func TestSetMVCCInvalidatesCursors(t *testing.T) {
	db := mvccDB(t)
	cur, err := db.QueryCursor("SELECT id FROM t")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if _, err := cur.Next(); err != nil {
		t.Fatal(err)
	}
	db.SetMVCC(false)
	if _, err := cur.Next(); err == nil {
		t.Fatal("cursor survived a mode switch; it must invalidate")
	}
}

// The epoch advances once per commit and snapshots release: basic stats
// accounting a monitoring endpoint can rely on.
func TestMVCCStatsAccounting(t *testing.T) {
	db := mvccDB(t)
	st0 := db.MVCCStats()
	if !st0.Enabled {
		t.Fatal("stats report MVCC disabled")
	}
	mustExec(t, db, "UPDATE t SET v = 'x' WHERE id = 1")
	mustExec(t, db, "UPDATE t SET v = 'y' WHERE id = 2")
	st := db.MVCCStats()
	if st.Epoch != st0.Epoch+2 || st.Commits != st0.Commits+2 {
		t.Fatalf("epoch/commits did not advance per commit: %+v -> %+v", st0, st)
	}
	if st.ActiveSnapshots != 0 {
		t.Fatalf("idle database reports %d active snapshots", st.ActiveSnapshots)
	}
	// A statement that changes nothing publishes nothing.
	mustExec(t, db, "UPDATE t SET v = 'z' WHERE id = -1")
	if got := db.MVCCStats().Epoch; got != st.Epoch {
		t.Fatalf("no-op statement advanced the epoch: %d -> %d", st.Epoch, got)
	}
}

// Stale index entries from a deleted row must not resurrect it through
// any indexed access shape (equality, IN, range).
func TestMVCCDeletedRowNotResurrectedViaIndex(t *testing.T) {
	db := mvccDB(t)
	mustExec(t, db, "DELETE FROM t WHERE id = 33") // k = 3
	for _, q := range []string{
		"SELECT COUNT(*) FROM t WHERE k = 3 AND id = 33",
		"SELECT COUNT(*) FROM t WHERE k IN (3) AND id = 33",
		"SELECT COUNT(*) FROM t WHERE k >= 3 AND k <= 3 AND id = 33",
	} {
		if got := countRows(t, db.Query, q); got != 0 {
			t.Fatalf("%s = %d, want 0", q, got)
		}
	}
}
