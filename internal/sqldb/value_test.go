package sqldb

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTypeOf(t *testing.T) {
	cases := []struct {
		v    Value
		want Type
	}{
		{nil, TypeNull},
		{int64(1), TypeInt},
		{1.5, TypeFloat},
		{"x", TypeText},
		{true, TypeBool},
	}
	for _, c := range cases {
		if got := TypeOf(c.v); got != c.want {
			t.Errorf("TypeOf(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestTypeString(t *testing.T) {
	names := map[Type]string{
		TypeNull: "NULL", TypeInt: "INTEGER", TypeFloat: "REAL",
		TypeText: "TEXT", TypeBool: "BOOLEAN",
	}
	for typ, want := range names {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct {
		in   any
		want Value
	}{
		{int(7), int64(7)},
		{int8(-3), int64(-3)},
		{int16(300), int64(300)},
		{int32(1 << 20), int64(1 << 20)},
		{uint(9), int64(9)},
		{uint8(255), int64(255)},
		{uint16(65535), int64(65535)},
		{uint32(1 << 30), int64(1 << 30)},
		{uint64(42), int64(42)},
		{float32(1.5), float64(1.5)},
		{[]byte("abc"), "abc"},
		{"s", "s"},
		{true, true},
		{nil, nil},
	}
	for _, c := range cases {
		got, err := Normalize(c.in)
		if err != nil {
			t.Fatalf("Normalize(%v): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("Normalize(%v) = %v (%T), want %v (%T)", c.in, got, got, c.want, c.want)
		}
	}
}

func TestNormalizeOverflow(t *testing.T) {
	if _, err := Normalize(uint64(math.MaxUint64)); err == nil {
		t.Fatal("expected overflow error for MaxUint64")
	}
	if _, err := Normalize(struct{}{}); err == nil {
		t.Fatal("expected error for unsupported type")
	}
}

func TestCoerce(t *testing.T) {
	cases := []struct {
		v    Value
		t    Type
		want Value
		ok   bool
	}{
		{nil, TypeInt, nil, true},
		{int64(5), TypeInt, int64(5), true},
		{float64(5), TypeInt, int64(5), true},
		{float64(5.5), TypeInt, nil, false},
		{true, TypeInt, int64(1), true},
		{false, TypeInt, int64(0), true},
		{"42", TypeInt, int64(42), true},
		{" 42 ", TypeInt, int64(42), true},
		{"x", TypeInt, nil, false},
		{int64(3), TypeFloat, float64(3), true},
		{"2.5", TypeFloat, 2.5, true},
		{int64(7), TypeText, "7", true},
		{2.5, TypeText, "2.5", true},
		{true, TypeText, "true", true},
		{false, TypeText, "false", true},
		{int64(0), TypeBool, false, true},
		{int64(2), TypeBool, true, true},
		{"yes", TypeBool, nil, false},
	}
	for _, c := range cases {
		got, err := Coerce(c.v, c.t)
		if c.ok && err != nil {
			t.Errorf("Coerce(%v, %v): unexpected error %v", c.v, c.t, err)
			continue
		}
		if !c.ok {
			if err == nil {
				t.Errorf("Coerce(%v, %v): expected error, got %v", c.v, c.t, got)
			}
			continue
		}
		if got != c.want {
			t.Errorf("Coerce(%v, %v) = %v, want %v", c.v, c.t, got, c.want)
		}
	}
}

func TestCompareOrdering(t *testing.T) {
	// NULL < everything; within types natural order.
	ordered := []Value{nil, int64(-5), int64(0), 0.5, int64(1), 2.5, int64(3)}
	for i := 0; i < len(ordered); i++ {
		for j := 0; j < len(ordered); j++ {
			got := Compare(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if sign(got) != want {
				t.Errorf("Compare(%v, %v) = %d, want sign %d", ordered[i], ordered[j], got, want)
			}
		}
	}
	if Compare("a", "b") >= 0 {
		t.Error("string compare failed")
	}
	if Compare(false, true) >= 0 {
		t.Error("bool compare failed")
	}
	if Compare(true, true) != 0 || Compare(false, false) != 0 {
		t.Error("bool equality compare failed")
	}
}

func sign(n int) int {
	switch {
	case n < 0:
		return -1
	case n > 0:
		return 1
	}
	return 0
}

func TestCompareMixedTypesTotal(t *testing.T) {
	// Incomparable types order deterministically by type tag.
	f := func(s string, n int64) bool {
		a, b := Compare(s, n), Compare(n, s)
		return a == -b && a != 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return sign(Compare(a, b)) == -sign(Compare(b, a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEqualNullSemantics(t *testing.T) {
	if Equal(nil, nil) {
		t.Error("NULL = NULL must be false in SQL semantics")
	}
	if Equal(nil, int64(1)) || Equal(int64(1), nil) {
		t.Error("NULL never equals a value")
	}
	if !Equal(int64(2), 2.0) {
		t.Error("2 should equal 2.0 numerically")
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{nil, "NULL"},
		{int64(42), "42"},
		{2.5, "2.5"},
		{"hello", "hello"},
		{true, "true"},
		{false, "false"},
	}
	for _, c := range cases {
		if got := FormatValue(c.v); got != c.want {
			t.Errorf("FormatValue(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestHashKeyNumericEquivalence(t *testing.T) {
	// int64(5) and float64(5) must hash to the same bucket so that numeric
	// equality agrees with hash lookup.
	if makeHashKey(int64(5)) != makeHashKey(float64(5)) {
		t.Error("int and integral float should share a hash key")
	}
	if makeHashKey("5") == makeHashKey(int64(5)) {
		t.Error("text and numeric must not collide")
	}
	if makeHashKey(nil) == makeHashKey(int64(0)) {
		t.Error("NULL must not collide with zero")
	}
	if makeHashKey(true) == makeHashKey(int64(1)) {
		t.Error("bool must not collide with int")
	}
}

func TestCoerceRoundTripProperty(t *testing.T) {
	// Any int64 survives int -> text -> int.
	f := func(n int64) bool {
		s, err := Coerce(n, TypeText)
		if err != nil {
			return false
		}
		back, err := Coerce(s, TypeInt)
		if err != nil {
			return false
		}
		return back == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
