package sqldb

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestRightJoin(t *testing.T) {
	db := newJoinDB(t)
	// RIGHT JOIN preserves the right-hand relation: every gene appears,
	// ORPHAN with a NULL term — exactly the LEFT JOIN with inputs flipped.
	rs := mustQuery(t, db, `SELECT g.symbol, a.term FROM annos a
		RIGHT JOIN genes g ON a.gene_id = g.id ORDER BY g.symbol, a.term`)
	left := mustQuery(t, db, `SELECT g.symbol, a.term FROM genes g
		LEFT JOIN annos a ON a.gene_id = g.id ORDER BY g.symbol, a.term`)
	if len(rs.Rows) != len(left.Rows) {
		t.Fatalf("right join rows = %d, flipped left join rows = %d", len(rs.Rows), len(left.Rows))
	}
	for i := range rs.Rows {
		if FormatValue(rs.Rows[i][0]) != FormatValue(left.Rows[i][0]) ||
			FormatValue(rs.Rows[i][1]) != FormatValue(left.Rows[i][1]) {
			t.Fatalf("row %d: right=%v left=%v", i, rs.Rows[i], left.Rows[i])
		}
	}
}

func TestRightJoinPreservesDangling(t *testing.T) {
	db := newJoinDB(t)
	// Flipping the other way: annos is preserved, so the dangling
	// annotation (gene_id=99) survives with a NULL symbol.
	rs := mustQuery(t, db, `SELECT a.term, g.symbol FROM genes g
		RIGHT JOIN annos a ON a.gene_id = g.id ORDER BY a.term`)
	if len(rs.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rs.Rows))
	}
	found := false
	for _, r := range rs.Rows {
		if r[0] == "GO:dangling" {
			found = true
			if r[1] != nil {
				t.Errorf("dangling annotation symbol = %v, want NULL", r[1])
			}
		}
	}
	if !found {
		t.Error("right join lost the dangling annotation")
	}
}

func TestRightJoinRequiresSoleJoin(t *testing.T) {
	db := newJoinDB(t)
	mustExec(t, db, "CREATE TABLE terms (term TEXT, name TEXT)")
	_, err := db.Query(`SELECT g.symbol FROM genes g
		RIGHT JOIN annos a ON a.gene_id = g.id
		JOIN terms t ON a.term = t.term`)
	if err == nil || !strings.Contains(err.Error(), "RIGHT JOIN") {
		t.Fatalf("multi-join RIGHT JOIN err = %v, want sole-join restriction", err)
	}
}

func TestCrossJoin(t *testing.T) {
	db := newJoinDB(t)
	rs := mustQuery(t, db, "SELECT g.symbol, a.term FROM genes g CROSS JOIN annos a")
	if len(rs.Rows) != 4*5 {
		t.Fatalf("cross join rows = %d, want 20", len(rs.Rows))
	}
	// A WHERE over the cross product recovers the equi-join.
	rs = mustQuery(t, db, `SELECT g.symbol, a.term FROM genes g CROSS JOIN annos a
		WHERE g.id = a.gene_id ORDER BY g.symbol, a.term`)
	inner := mustQuery(t, db, `SELECT g.symbol, a.term FROM genes g
		JOIN annos a ON g.id = a.gene_id ORDER BY g.symbol, a.term`)
	if len(rs.Rows) != len(inner.Rows) {
		t.Fatalf("filtered cross product rows = %d, inner join rows = %d", len(rs.Rows), len(inner.Rows))
	}
}

// TestLeftJoinNullThroughWhere pins the Kleene tri-state treatment of
// NULL-extended rows: a comparison against the NULL-extended column is
// unknown, so both the predicate and its negation drop the row; only IS
// NULL keeps it.
func TestLeftJoinNullThroughWhere(t *testing.T) {
	db := newJoinDB(t)
	q := func(where string) int {
		rs := mustQuery(t, db, `SELECT g.symbol FROM genes g
			LEFT JOIN annos a ON g.id = a.gene_id WHERE `+where)
		return len(rs.Rows)
	}
	if n := q("a.term <> 'GO:0009116'"); n != 3 {
		t.Errorf("<> over NULL-extended rows = %d, want 3 (unknown filters out)", n)
	}
	if n := q("NOT (a.term = 'GO:0009116')"); n != 3 {
		t.Errorf("NOT(=) over NULL-extended rows = %d, want 3 (NOT unknown is unknown)", n)
	}
	if n := q("a.term IS NULL"); n != 1 {
		t.Errorf("IS NULL rows = %d, want 1", n)
	}
	if n := q("a.term IS NOT NULL"); n != 4 {
		t.Errorf("IS NOT NULL rows = %d, want 4", n)
	}
}

// TestLeftJoinNullThroughAggregates: COUNT(col) skips the NULL-extended
// values COUNT(*) keeps, and MIN/MAX/SUM ignore them.
func TestLeftJoinNullThroughAggregates(t *testing.T) {
	db := newJoinDB(t)
	rs := mustQuery(t, db, `SELECT COUNT(*), COUNT(a.term) FROM genes g
		LEFT JOIN annos a ON g.id = a.gene_id`)
	if rs.Rows[0][0].(int64) != 5 || rs.Rows[0][1].(int64) != 4 {
		t.Fatalf("COUNT(*), COUNT(term) = %v, want 5, 4", rs.Rows[0])
	}
	rs = mustQuery(t, db, `SELECT MIN(a.term), MAX(a.term) FROM genes g
		LEFT JOIN annos a ON g.id = a.gene_id WHERE g.symbol = 'ORPHAN'`)
	if rs.Rows[0][0] != nil || rs.Rows[0][1] != nil {
		t.Fatalf("MIN/MAX over only-NULL group = %v, want NULLs", rs.Rows[0])
	}
}

// TestLeftJoinNullThroughDistinct: the NULL-extended value is one distinct
// value, not dropped and not duplicated.
func TestLeftJoinNullThroughDistinct(t *testing.T) {
	db := newJoinDB(t)
	rs := mustQuery(t, db, `SELECT DISTINCT a.term FROM genes g
		LEFT JOIN annos a ON g.id = a.gene_id`)
	nulls, vals := 0, map[string]bool{}
	for _, r := range rs.Rows {
		if r[0] == nil {
			nulls++
		} else {
			vals[r[0].(string)] = true
		}
	}
	if nulls != 1 || len(vals) != 4 {
		t.Fatalf("distinct terms = %d values + %d NULL rows, want 4 + 1", len(vals), nulls)
	}
}

// TestLeftJoinAntiJoinUnionOracle proves on random data that LEFT JOIN
// equals the manual union of the inner join and the NULL-extended
// anti-join, across the row and index legs.
func TestLeftJoinAntiJoinUnionOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := NewDB()
	mustExec(t, db, "CREATE TABLE l (id INTEGER PRIMARY KEY, k INTEGER)")
	mustExec(t, db, "CREATE TABLE r (k INTEGER, w TEXT)")
	mustExec(t, db, "CREATE INDEX idx_r_k ON r (k)")
	type lrow struct {
		id int64
		k  any
	}
	var left []lrow
	rightKs := map[int64]int{} // k -> matching right-row count
	for i := 0; i < 120; i++ {
		var k any
		if rng.Intn(8) > 0 {
			k = int64(rng.Intn(15))
		}
		left = append(left, lrow{int64(i), k})
		mustExec(t, db, "INSERT INTO l VALUES (?, ?)", i, k)
	}
	for i := 0; i < 50; i++ {
		var k any
		if rng.Intn(8) > 0 {
			kk := int64(rng.Intn(15))
			k = kk
			rightKs[kk]++
		}
		mustExec(t, db, "INSERT INTO r VALUES (?, ?)", k, fmt.Sprintf("w%d", i))
	}

	format := func(rows [][]Value) []string {
		var out []string
		for _, r := range rows {
			out = append(out, FormatValue(r[0])+"|"+FormatValue(r[1]))
		}
		sortStrings(out)
		return out
	}

	for _, useIndex := range []bool{true, false} {
		db.SetIndexAccess(useIndex)
		outer := mustQuery(t, db, "SELECT l.id, r.w FROM l LEFT JOIN r ON l.k = r.k")
		inner := mustQuery(t, db, "SELECT l.id, r.w FROM l JOIN r ON l.k = r.k")
		// Manual anti-join: left rows with no right match (a NULL key never
		// matches), NULL-extended.
		union := append([][]Value{}, inner.Rows...)
		for _, lr := range left {
			k, ok := lr.k.(int64)
			if !ok || rightKs[k] == 0 {
				union = append(union, []Value{lr.id, nil})
			}
		}
		got, want := format(outer.Rows), format(union)
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Fatalf("useIndex=%v: LEFT JOIN (%d rows) != inner ∪ anti-join (%d rows)",
				useIndex, len(got), len(want))
		}
	}
	db.SetIndexAccess(true)
}
