package sqldb

// Durable write-path benchmarks: the cost of the WAL under each fsync
// policy, against the in-memory baseline (BenchmarkInsertSingleRow), plus
// the group-commit win under concurrent committers.

import (
	"testing"

	"genmapper/internal/wal"
)

func benchDurableDB(b *testing.B, sync wal.SyncPolicy) *DB {
	b.Helper()
	db, err := OpenDurable(b.TempDir(), DurableOptions{
		Sync:               sync,
		CheckpointInterval: -1, // benchmarks measure the log, not snapshots
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	if _, err := db.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY AUTOINCREMENT, v TEXT)"); err != nil {
		b.Fatal(err)
	}
	return db
}

func benchInsertLoop(b *testing.B, db *DB) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec("INSERT INTO t (v) VALUES (?)", "value"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALInsertOff: WAL on, fsync off — the pure logging overhead
// (encode + CRC + buffered write) over the in-memory engine.
func BenchmarkWALInsertOff(b *testing.B) {
	benchInsertLoop(b, benchDurableDB(b, wal.SyncOff))
}

// BenchmarkWALInsertGroup: fsync before every acknowledge, shareable.
// Single-threaded there is nobody to share with, so this is the worst
// case for the group policy.
func BenchmarkWALInsertGroup(b *testing.B) {
	benchInsertLoop(b, benchDurableDB(b, wal.SyncGroup))
}

// BenchmarkWALInsertAlways: one dedicated fsync per commit.
func BenchmarkWALInsertAlways(b *testing.B) {
	benchInsertLoop(b, benchDurableDB(b, wal.SyncAlways))
}

// BenchmarkWALInsertGroupParallel: concurrent committers sharing fsyncs.
// Reports fsyncs-per-commit; the acceptance criterion (fsyncs < commits)
// is additionally enforced by TestGroupCommitFewerFsyncsThanCommits.
func BenchmarkWALInsertGroupParallel(b *testing.B) {
	db := benchDurableDB(b, wal.SyncGroup)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := db.Exec("INSERT INTO t (v) VALUES (?)", "value"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	st := db.WALStats()
	if st.Appends > 0 {
		b.ReportMetric(float64(st.Fsyncs)/float64(st.Appends), "fsyncs/commit")
	}
}

// BenchmarkWALInsertAlwaysParallel: the same concurrency without sharing —
// the baseline the group policy is measured against.
func BenchmarkWALInsertAlwaysParallel(b *testing.B) {
	db := benchDurableDB(b, wal.SyncAlways)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := db.Exec("INSERT INTO t (v) VALUES (?)", "value"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	st := db.WALStats()
	if st.Appends > 0 {
		b.ReportMetric(float64(st.Fsyncs)/float64(st.Appends), "fsyncs/commit")
	}
}

// BenchmarkWALRecovery: replaying a 10k-record log tail into a fresh
// database (the startup cost the checkpointer bounds).
func BenchmarkWALRecovery(b *testing.B) {
	fs := wal.NewFaultFS()
	db, err := OpenDurable("", DurableOptions{Sync: wal.SyncOff, CheckpointInterval: -1, FS: fs})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY AUTOINCREMENT, v TEXT)"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if _, err := db.Exec("INSERT INTO t (v) VALUES (?)", "value"); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := OpenDurable("", DurableOptions{Sync: wal.SyncOff, CheckpointInterval: -1, FS: fs})
		if err != nil {
			b.Fatal(err)
		}
		if n := rec.RowCount("t"); n != 10000 {
			b.Fatalf("recovered %d rows", n)
		}
		rec.Close()
	}
}
