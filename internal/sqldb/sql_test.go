package sqldb

import (
	"strings"
	"testing"
)

func mustExec(t *testing.T, db *DB, sql string, args ...any) Result {
	t.Helper()
	res, err := db.Exec(sql, args...)
	if err != nil {
		t.Fatalf("Exec(%s): %v", sql, err)
	}
	return res
}

func mustQuery(t *testing.T, db *DB, sql string, args ...any) *ResultSet {
	t.Helper()
	rs, err := db.Query(sql, args...)
	if err != nil {
		t.Fatalf("Query(%s): %v", sql, err)
	}
	return rs
}

func newPeopleDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	mustExec(t, db, `CREATE TABLE people (
		id INTEGER PRIMARY KEY AUTOINCREMENT,
		name TEXT NOT NULL,
		age INTEGER,
		city TEXT
	)`)
	rows := []struct {
		name string
		age  any
		city any
	}{
		{"alice", 30, "leipzig"},
		{"bob", 25, "berlin"},
		{"carol", 35, "leipzig"},
		{"dave", nil, "munich"},
		{"erin", 28, nil},
	}
	for _, r := range rows {
		mustExec(t, db, "INSERT INTO people (name, age, city) VALUES (?, ?, ?)", r.name, r.age, r.city)
	}
	return db
}

func TestCreateInsertSelect(t *testing.T) {
	db := newPeopleDB(t)
	rs := mustQuery(t, db, "SELECT id, name FROM people ORDER BY id")
	if len(rs.Rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rs.Rows))
	}
	if rs.Rows[0][0] != int64(1) || rs.Rows[0][1] != "alice" {
		t.Errorf("first row = %v", rs.Rows[0])
	}
	if rs.Columns[0] != "id" || rs.Columns[1] != "name" {
		t.Errorf("columns = %v", rs.Columns)
	}
}

func TestAutoIncrement(t *testing.T) {
	db := newPeopleDB(t)
	res := mustExec(t, db, "INSERT INTO people (name) VALUES ('frank')")
	if res.LastInsertID != 6 {
		t.Errorf("LastInsertID = %d, want 6", res.LastInsertID)
	}
	// Explicit higher ID advances the sequence.
	mustExec(t, db, "INSERT INTO people (id, name) VALUES (100, 'gina')")
	res = mustExec(t, db, "INSERT INTO people (name) VALUES ('hank')")
	if res.LastInsertID != 101 {
		t.Errorf("LastInsertID after explicit 100 = %d, want 101", res.LastInsertID)
	}
}

func TestWhereOperators(t *testing.T) {
	db := newPeopleDB(t)
	cases := []struct {
		where string
		want  []string
	}{
		{"age = 30", []string{"alice"}},
		{"age <> 30", []string{"bob", "carol", "erin"}},
		{"age > 28", []string{"alice", "carol"}},
		{"age >= 28", []string{"alice", "carol", "erin"}},
		{"age < 28", []string{"bob"}},
		{"age <= 28", []string{"bob", "erin"}},
		{"age BETWEEN 25 AND 30", []string{"alice", "bob", "erin"}},
		{"age NOT BETWEEN 25 AND 30", []string{"carol"}},
		{"age IS NULL", []string{"dave"}},
		{"age IS NOT NULL", []string{"alice", "bob", "carol", "erin"}},
		{"name LIKE 'a%'", []string{"alice"}},
		{"name LIKE '%o%'", []string{"bob", "carol"}},
		{"name LIKE '_ob'", []string{"bob"}},
		{"name NOT LIKE '%a%'", []string{"bob", "erin"}},
		{"city IN ('leipzig', 'berlin')", []string{"alice", "bob", "carol"}},
		{"city NOT IN ('leipzig')", []string{"bob", "dave"}},
		{"age = 30 OR age = 25", []string{"alice", "bob"}},
		{"age > 20 AND city = 'leipzig'", []string{"alice", "carol"}},
		{"NOT (city = 'leipzig')", []string{"bob", "dave"}},
	}
	for _, c := range cases {
		rs := mustQuery(t, db, "SELECT name FROM people WHERE "+c.where+" ORDER BY name")
		var got []string
		for _, r := range rs.Rows {
			got = append(got, r[0].(string))
		}
		if strings.Join(got, ",") != strings.Join(c.want, ",") {
			t.Errorf("WHERE %s: got %v, want %v", c.where, got, c.want)
		}
	}
}

func TestNullComparisonYieldsNoRows(t *testing.T) {
	db := newPeopleDB(t)
	// age = NULL is never true.
	rs := mustQuery(t, db, "SELECT name FROM people WHERE age = NULL")
	if len(rs.Rows) != 0 {
		t.Errorf("age = NULL matched %d rows, want 0", len(rs.Rows))
	}
	// NULL city doesn't match NOT IN either (three-valued logic).
	rs = mustQuery(t, db, "SELECT name FROM people WHERE city NOT IN ('munich')")
	for _, r := range rs.Rows {
		if r[0] == "erin" {
			t.Error("NULL city must not satisfy NOT IN")
		}
	}
}

func TestProjectionExpressions(t *testing.T) {
	db := newPeopleDB(t)
	rs := mustQuery(t, db, "SELECT name, age + 10 AS later, UPPER(name) FROM people WHERE age IS NOT NULL ORDER BY age")
	if rs.Columns[1] != "later" {
		t.Errorf("alias column = %q", rs.Columns[1])
	}
	if rs.Rows[0][1] != int64(35) {
		t.Errorf("bob age+10 = %v", rs.Rows[0][1])
	}
	if rs.Rows[0][2] != "BOB" {
		t.Errorf("UPPER = %v", rs.Rows[0][2])
	}
}

func TestScalarFunctions(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (s TEXT, n INTEGER, f REAL)")
	mustExec(t, db, "INSERT INTO t VALUES ('  Hello  ', -7, -2.5)")
	rs := mustQuery(t, db, "SELECT TRIM(s), LOWER(s), LENGTH(s), ABS(n), ABS(f), SUBSTR(TRIM(s), 2, 3), COALESCE(NULL, n, 99) FROM t")
	row := rs.Rows[0]
	if row[0] != "Hello" {
		t.Errorf("TRIM = %q", row[0])
	}
	if row[1] != "  hello  " {
		t.Errorf("LOWER = %q", row[1])
	}
	if row[2] != int64(9) {
		t.Errorf("LENGTH = %v", row[2])
	}
	if row[3] != int64(7) {
		t.Errorf("ABS int = %v", row[3])
	}
	if row[4] != 2.5 {
		t.Errorf("ABS float = %v", row[4])
	}
	if row[5] != "ell" {
		t.Errorf("SUBSTR = %q", row[5])
	}
	if row[6] != int64(-7) {
		t.Errorf("COALESCE = %v", row[6])
	}
}

func TestStringConcat(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (a TEXT, b TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES ('foo', 'bar')")
	rs := mustQuery(t, db, "SELECT a || '-' || b FROM t")
	if rs.Rows[0][0] != "foo-bar" {
		t.Errorf("concat = %v", rs.Rows[0][0])
	}
}

func TestArithmetic(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (n INTEGER, f REAL)")
	mustExec(t, db, "INSERT INTO t VALUES (7, 2.0)")
	rs := mustQuery(t, db, "SELECT n + 3, n - 3, n * 2, n / 2, n % 3, n / f, -n FROM t")
	row := rs.Rows[0]
	want := []Value{int64(10), int64(4), int64(14), int64(3), int64(1), 3.5, int64(-7)}
	for i, w := range want {
		if row[i] != w {
			t.Errorf("col %d = %v, want %v", i, row[i], w)
		}
	}
	if _, err := db.Query("SELECT n / 0 FROM t"); err == nil {
		t.Error("expected division-by-zero error")
	}
}

func TestOrderByDirections(t *testing.T) {
	db := newPeopleDB(t)
	rs := mustQuery(t, db, "SELECT name FROM people WHERE age IS NOT NULL ORDER BY age DESC, name ASC")
	got := make([]string, len(rs.Rows))
	for i, r := range rs.Rows {
		got[i] = r[0].(string)
	}
	want := []string{"carol", "alice", "erin", "bob"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("ORDER BY DESC = %v, want %v", got, want)
	}
	// NULLs sort first ascending.
	rs = mustQuery(t, db, "SELECT name FROM people ORDER BY age, name")
	if rs.Rows[0][0] != "dave" {
		t.Errorf("NULL should sort first, got %v", rs.Rows[0][0])
	}
}

func TestOrderByOrdinalAndAlias(t *testing.T) {
	db := newPeopleDB(t)
	rs := mustQuery(t, db, "SELECT name, age AS years FROM people WHERE age IS NOT NULL ORDER BY 2 DESC")
	if rs.Rows[0][0] != "carol" {
		t.Errorf("ORDER BY ordinal: first = %v", rs.Rows[0][0])
	}
	rs = mustQuery(t, db, "SELECT name, age * 2 AS doubled FROM people WHERE age IS NOT NULL ORDER BY doubled")
	if rs.Rows[0][0] != "bob" {
		t.Errorf("ORDER BY alias: first = %v", rs.Rows[0][0])
	}
}

func TestLimitOffset(t *testing.T) {
	db := newPeopleDB(t)
	rs := mustQuery(t, db, "SELECT name FROM people ORDER BY name LIMIT 2")
	if len(rs.Rows) != 2 || rs.Rows[0][0] != "alice" {
		t.Errorf("LIMIT 2 = %v", rs.Rows)
	}
	rs = mustQuery(t, db, "SELECT name FROM people ORDER BY name LIMIT 2 OFFSET 3")
	if len(rs.Rows) != 2 || rs.Rows[0][0] != "dave" {
		t.Errorf("LIMIT/OFFSET = %v", rs.Rows)
	}
	rs = mustQuery(t, db, "SELECT name FROM people ORDER BY name LIMIT 10 OFFSET 100")
	if len(rs.Rows) != 0 {
		t.Errorf("offset beyond end should be empty, got %v", rs.Rows)
	}
}

func TestDistinct(t *testing.T) {
	db := newPeopleDB(t)
	rs := mustQuery(t, db, "SELECT DISTINCT city FROM people WHERE city IS NOT NULL ORDER BY city")
	if len(rs.Rows) != 3 {
		t.Fatalf("DISTINCT returned %d rows, want 3", len(rs.Rows))
	}
}

func TestAggregates(t *testing.T) {
	db := newPeopleDB(t)
	rs := mustQuery(t, db, "SELECT COUNT(*), COUNT(age), SUM(age), AVG(age), MIN(age), MAX(age) FROM people")
	row := rs.Rows[0]
	if row[0] != int64(5) {
		t.Errorf("COUNT(*) = %v", row[0])
	}
	if row[1] != int64(4) {
		t.Errorf("COUNT(age) = %v (NULLs must be skipped)", row[1])
	}
	if row[2] != int64(118) {
		t.Errorf("SUM = %v", row[2])
	}
	if row[3] != 29.5 {
		t.Errorf("AVG = %v", row[3])
	}
	if row[4] != int64(25) || row[5] != int64(35) {
		t.Errorf("MIN/MAX = %v/%v", row[4], row[5])
	}
}

func TestAggregateEmptyTable(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE empty (n INTEGER)")
	rs := mustQuery(t, db, "SELECT COUNT(*), SUM(n), MIN(n) FROM empty")
	if len(rs.Rows) != 1 {
		t.Fatalf("global aggregate over empty table must yield one row, got %d", len(rs.Rows))
	}
	row := rs.Rows[0]
	if row[0] != int64(0) {
		t.Errorf("COUNT(*) = %v, want 0", row[0])
	}
	if row[1] != nil || row[2] != nil {
		t.Errorf("SUM/MIN over empty = %v/%v, want NULL/NULL", row[1], row[2])
	}
}

func TestGroupByHaving(t *testing.T) {
	db := newPeopleDB(t)
	rs := mustQuery(t, db, `SELECT city, COUNT(*) AS n, AVG(age)
		FROM people WHERE city IS NOT NULL
		GROUP BY city HAVING COUNT(*) > 1 ORDER BY city`)
	if len(rs.Rows) != 1 {
		t.Fatalf("HAVING filtered to %d groups, want 1", len(rs.Rows))
	}
	if rs.Rows[0][0] != "leipzig" || rs.Rows[0][1] != int64(2) || rs.Rows[0][2] != 32.5 {
		t.Errorf("group row = %v", rs.Rows[0])
	}
}

func TestGroupByExpression(t *testing.T) {
	db := newPeopleDB(t)
	rs := mustQuery(t, db, "SELECT age % 2, COUNT(*) FROM people WHERE age IS NOT NULL GROUP BY age % 2 ORDER BY 1")
	if len(rs.Rows) != 2 {
		t.Fatalf("groups = %d, want 2", len(rs.Rows))
	}
}

func TestUpdate(t *testing.T) {
	db := newPeopleDB(t)
	res := mustExec(t, db, "UPDATE people SET city = 'dresden' WHERE city = 'leipzig'")
	if res.RowsAffected != 2 {
		t.Fatalf("RowsAffected = %d, want 2", res.RowsAffected)
	}
	rs := mustQuery(t, db, "SELECT COUNT(*) FROM people WHERE city = 'dresden'")
	if rs.Rows[0][0] != int64(2) {
		t.Errorf("dresden count = %v", rs.Rows[0][0])
	}
	// Update referencing old value.
	mustExec(t, db, "UPDATE people SET age = age + 1 WHERE age IS NOT NULL")
	rs = mustQuery(t, db, "SELECT age FROM people WHERE name = 'alice'")
	if rs.Rows[0][0] != int64(31) {
		t.Errorf("alice age = %v, want 31", rs.Rows[0][0])
	}
}

func TestDelete(t *testing.T) {
	db := newPeopleDB(t)
	res := mustExec(t, db, "DELETE FROM people WHERE age < 30")
	if res.RowsAffected != 2 {
		t.Fatalf("RowsAffected = %d, want 2", res.RowsAffected)
	}
	rs := mustQuery(t, db, "SELECT COUNT(*) FROM people")
	if rs.Rows[0][0] != int64(3) {
		t.Errorf("remaining = %v, want 3", rs.Rows[0][0])
	}
	res = mustExec(t, db, "DELETE FROM people")
	if res.RowsAffected != 3 {
		t.Fatalf("delete all affected %d", res.RowsAffected)
	}
}

func TestNotNullConstraint(t *testing.T) {
	db := newPeopleDB(t)
	if _, err := db.Exec("INSERT INTO people (age) VALUES (40)"); err == nil {
		t.Fatal("expected NOT NULL violation for missing name")
	}
}

func TestUniquePrimaryKey(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 'a')")
	_, err := db.Exec("INSERT INTO t VALUES (1, 'b')")
	if err == nil {
		t.Fatal("expected UNIQUE violation")
	}
	var ue *UniqueError
	if !asUniqueError(err, &ue) {
		t.Fatalf("error type = %T, want *UniqueError", err)
	}
}

func asUniqueError(err error, target **UniqueError) bool {
	for err != nil {
		if ue, ok := err.(*UniqueError); ok {
			*target = ue
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestMultiRowInsertAtomicity(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (id INTEGER PRIMARY KEY)")
	mustExec(t, db, "INSERT INTO t VALUES (3)")
	// Second row collides; the whole statement must roll back.
	if _, err := db.Exec("INSERT INTO t VALUES (1), (3), (5)"); err == nil {
		t.Fatal("expected UNIQUE violation")
	}
	rs := mustQuery(t, db, "SELECT COUNT(*) FROM t")
	if rs.Rows[0][0] != int64(1) {
		t.Errorf("partial insert leaked rows: count = %v, want 1", rs.Rows[0][0])
	}
}

func TestDefaultValues(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (id INTEGER PRIMARY KEY AUTOINCREMENT, status TEXT DEFAULT 'new', score INTEGER DEFAULT 0)")
	mustExec(t, db, "INSERT INTO t (id) VALUES (NULL)")
	rs := mustQuery(t, db, "SELECT status, score FROM t")
	if rs.Rows[0][0] != "new" || rs.Rows[0][1] != int64(0) {
		t.Errorf("defaults = %v", rs.Rows[0])
	}
}

func TestSecondaryIndexUse(t *testing.T) {
	db := newPeopleDB(t)
	mustExec(t, db, "CREATE INDEX idx_city ON people (city)")
	rs := mustQuery(t, db, "SELECT name FROM people WHERE city = 'leipzig' ORDER BY name")
	if len(rs.Rows) != 2 {
		t.Fatalf("indexed lookup returned %d rows, want 2", len(rs.Rows))
	}
	// Index stays consistent across update/delete.
	mustExec(t, db, "UPDATE people SET city = 'halle' WHERE name = 'alice'")
	rs = mustQuery(t, db, "SELECT name FROM people WHERE city = 'leipzig'")
	if len(rs.Rows) != 1 || rs.Rows[0][0] != "carol" {
		t.Fatalf("after update: %v", rs.Rows)
	}
	mustExec(t, db, "DELETE FROM people WHERE city = 'halle'")
	rs = mustQuery(t, db, "SELECT name FROM people WHERE city = 'halle'")
	if len(rs.Rows) != 0 {
		t.Fatalf("after delete: %v", rs.Rows)
	}
}

func TestUniqueSecondaryIndex(t *testing.T) {
	db := newPeopleDB(t)
	mustExec(t, db, "CREATE UNIQUE INDEX idx_name ON people (name)")
	if _, err := db.Exec("INSERT INTO people (name) VALUES ('alice')"); err == nil {
		t.Fatal("expected unique index violation")
	}
	// Building a unique index over duplicate data must fail.
	mustExec(t, db, "INSERT INTO people (name, city) VALUES ('zeta', 'leipzig')")
	mustExec(t, db, "INSERT INTO people (name, city) VALUES ('ypsilon', 'leipzig')")
	if _, err := db.Exec("CREATE UNIQUE INDEX idx_city2 ON people (city)"); err == nil {
		t.Fatal("expected unique index build failure over duplicates")
	}
}

func TestBTreeIndexRangeConsistency(t *testing.T) {
	db := newPeopleDB(t)
	mustExec(t, db, "CREATE INDEX idx_age ON people (age) USING BTREE")
	rs := mustQuery(t, db, "SELECT name FROM people WHERE age >= 28 AND age <= 35 ORDER BY name")
	if len(rs.Rows) != 3 {
		t.Fatalf("range query rows = %d, want 3", len(rs.Rows))
	}
}

func TestDropTableAndIndex(t *testing.T) {
	db := newPeopleDB(t)
	mustExec(t, db, "CREATE INDEX idx_city ON people (city)")
	mustExec(t, db, "DROP INDEX idx_city ON people")
	if _, err := db.Exec("DROP INDEX idx_city ON people"); err == nil {
		t.Fatal("double drop index should fail")
	}
	mustExec(t, db, "DROP INDEX IF EXISTS idx_city ON people")
	mustExec(t, db, "DROP TABLE people")
	if _, err := db.Query("SELECT * FROM people"); err == nil {
		t.Fatal("query after drop should fail")
	}
	mustExec(t, db, "DROP TABLE IF EXISTS people")
	if _, err := db.Exec("DROP TABLE people"); err == nil {
		t.Fatal("double drop table should fail")
	}
}

func TestCreateTableIfNotExists(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (id INTEGER)")
	if _, err := db.Exec("CREATE TABLE t (id INTEGER)"); err == nil {
		t.Fatal("duplicate create should fail")
	}
	mustExec(t, db, "CREATE TABLE IF NOT EXISTS t (id INTEGER)")
}

func TestSelectStar(t *testing.T) {
	db := newPeopleDB(t)
	rs := mustQuery(t, db, "SELECT * FROM people WHERE name = 'alice'")
	if len(rs.Columns) != 4 {
		t.Fatalf("star columns = %v", rs.Columns)
	}
	if rs.Rows[0][1] != "alice" {
		t.Errorf("star row = %v", rs.Rows[0])
	}
}

func TestQuotedIdentifiersAndComments(t *testing.T) {
	db := NewDB()
	mustExec(t, db, `CREATE TABLE "select" ("order" INTEGER) -- tricky names`)
	mustExec(t, db, `INSERT INTO "select" ("order") VALUES (1)`)
	rs := mustQuery(t, db, `SELECT "order" FROM "select"`)
	if rs.Rows[0][0] != int64(1) {
		t.Errorf("quoted identifier round trip = %v", rs.Rows[0])
	}
}

func TestParameterBinding(t *testing.T) {
	db := newPeopleDB(t)
	rs := mustQuery(t, db, "SELECT name FROM people WHERE age > ? AND city = ? ORDER BY name", 20, "leipzig")
	if len(rs.Rows) != 2 {
		t.Fatalf("param query rows = %d, want 2", len(rs.Rows))
	}
	if _, err := db.Query("SELECT name FROM people WHERE age > ?"); err == nil {
		t.Fatal("missing argument should fail")
	}
}

func TestParseErrors(t *testing.T) {
	db := NewDB()
	bad := []string{
		"",
		"SELEC * FROM t",
		"SELECT FROM t",
		"SELECT * FROM",
		"INSERT t VALUES (1)",
		"CREATE TABLE t (x BLOB)",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t GROUP",
		"CREATE UNIQUE TABLE t (x INTEGER)",
		"SELECT * FROM t; garbage",
		"SELECT 'unterminated FROM t",
	}
	for _, sql := range bad {
		if _, err := db.Query(sql); err == nil {
			t.Errorf("expected parse error for %q", sql)
		}
	}
}

func TestQueryRejectsWrites(t *testing.T) {
	db := NewDB()
	if _, err := db.Query("CREATE TABLE t (x INTEGER)"); err == nil {
		t.Fatal("Query must reject DDL")
	}
	if _, err := db.Exec("SELECT 1 FROM t"); err == nil {
		t.Fatal("Exec must reject SELECT")
	}
}

func TestInsertColumnCountMismatch(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (a INTEGER, b INTEGER)")
	if _, err := db.Exec("INSERT INTO t (a) VALUES (1, 2)"); err == nil {
		t.Fatal("expected column/value count mismatch error")
	}
	if _, err := db.Exec("INSERT INTO t VALUES (1)"); err == nil {
		t.Fatal("expected full-width mismatch error")
	}
	if _, err := db.Exec("INSERT INTO t (nope) VALUES (1)"); err == nil {
		t.Fatal("expected unknown column error")
	}
}

func TestTypeCoercionOnInsert(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (n INTEGER, s TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES ('42', 17)")
	rs := mustQuery(t, db, "SELECT n, s FROM t")
	if rs.Rows[0][0] != int64(42) {
		t.Errorf("text->int coercion = %v", rs.Rows[0][0])
	}
	if rs.Rows[0][1] != "17" {
		t.Errorf("int->text coercion = %v", rs.Rows[0][1])
	}
	if _, err := db.Exec("INSERT INTO t VALUES ('abc', 'x')"); err == nil {
		t.Fatal("non-numeric text into INTEGER should fail")
	}
}
