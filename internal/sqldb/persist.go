package sqldb

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sort"
)

// snapshot is the serializable on-disk image of a database.
type snapshot struct {
	Version int
	Tables  []tableSnapshot
}

type tableSnapshot struct {
	Name    string
	Columns []Column
	NextRow int64
	NextSeq int64
	RowIDs  []int64
	Rows    [][]Value
	Indexes []indexSnapshot
}

type indexSnapshot struct {
	Name   string
	Column string
	Kind   IndexKind
	Unique bool
}

const snapshotVersion = 1

func init() {
	// Register the concrete types stored inside Value (any) cells so the
	// gob codec can round-trip them.
	gob.Register(int64(0))
	gob.Register(float64(0))
	gob.Register("")
	gob.Register(false)
}

// Save writes a consistent snapshot of the whole database to path. The file
// is written atomically via a temporary file and rename.
func (db *DB) Save(path string) error {
	// Exclusive mu: latched writers and concurrent committers hold mu
	// shared, and the snapshot must not see a half-applied statement.
	db.mu.Lock()
	snap := db.buildSnapshot()
	db.mu.Unlock()

	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("sqldb: save: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	enc := gob.NewEncoder(w)
	if err := enc.Encode(snap); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("sqldb: save: %w", err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("sqldb: save: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("sqldb: save: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("sqldb: save: %w", err)
	}
	return nil
}

func (db *DB) buildSnapshot() *snapshot {
	snap := &snapshot{Version: snapshotVersion}
	tables := db.tableMap()
	names := make([]string, 0, len(tables))
	for n := range tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := tables[n]
		ts := tableSnapshot{
			Name:    t.Name,
			Columns: t.Schema.Columns,
			NextRow: t.nextRow,
			NextSeq: t.nextSeq,
		}
		// Scan emits live rows in ascending row-ID order regardless of the
		// partition layout, so snapshots (and therefore checkpoints) stay
		// byte-identical across partition counts.
		ts.RowIDs = make([]int64, 0, t.RowCount())
		ts.Rows = make([][]Value, 0, t.RowCount())
		t.Scan(func(id int64, row []Value) bool {
			ts.RowIDs = append(ts.RowIDs, id)
			ts.Rows = append(ts.Rows, row)
			return true
		})
		for _, idx := range t.Indexes() {
			if idx.Name == pkIndexName(t.Name) {
				continue // recreated automatically
			}
			ts.Indexes = append(ts.Indexes, indexSnapshot{
				Name: idx.Name, Column: idx.Column, Kind: idx.Kind, Unique: idx.Unique,
			})
		}
		snap.Tables = append(snap.Tables, ts)
	}
	return snap
}

// Load reads a snapshot file previously written by Save and returns a new
// database populated with its contents.
func Load(path string) (*DB, error) {
	db := NewDB()
	if err := db.Restore(path); err != nil {
		return nil, err
	}
	return db, nil
}

// Restore replaces the database's entire contents with a snapshot file
// previously written by Save, in place: existing statement handles and the
// database reference itself stay valid. The snapshot is decoded and its
// tables rebuilt before any lock is taken; the swap itself is a single
// exclusive-lock critical section.
//
// Restoring is a schema change: it bumps the schema generation so cached
// statement plans compiled against the pre-restore tables are rebuilt
// (serving them would read the replaced tables and return pre-restore
// rows) and open cursors fail with ErrCursorInvalidated instead of
// continuing over vanished storage.
//
// On a durable database, Restore also resets the WAL: the restored state
// is written as a new checkpoint covering every record logged so far, the
// log is rotated, and the covered segments pruned — the pre-restore log
// tail can never be replayed over the restored state. Restore returns
// only once the restored state is itself durable.
func (db *DB) Restore(path string) error {
	tables, err := loadTables(path)
	if err != nil {
		return err
	}
	db.writer.Lock()
	db.mu.Lock()
	db.storeTables(tables)
	// Loaded tables carry the package default partition count; re-shard to
	// this database's configured layout (no-op when they match).
	for _, t := range tables {
		t.repartition(db.partitionCount())
	}
	db.bumpSchemaGen()
	var snap *snapshot
	var lsn uint64
	if db.durable != nil {
		// Snapshot the restored state and its log position inside the
		// critical section; encode and fsync after releasing the locks.
		snap = db.buildSnapshot()
		lsn = db.durable.w.LastLSN()
	}
	db.mu.Unlock()
	db.writer.Unlock()
	if snap != nil {
		return db.restoreCheckpoint(snap, lsn)
	}
	return nil
}

// loadTables decodes a snapshot file into a fresh table map.
func loadTables(path string) (map[string]*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sqldb: load: %w", err)
	}
	defer f.Close()
	return decodeTables(bufio.NewReaderSize(f, 1<<20))
}

// decodeTables decodes a gob snapshot stream into a fresh table map. It
// backs both snapshot files (Save/Load/Restore) and durable checkpoints.
func decodeTables(r io.Reader) (map[string]*Table, error) {
	var snap snapshot
	dec := gob.NewDecoder(r)
	if err := dec.Decode(&snap); err != nil {
		return nil, fmt.Errorf("sqldb: load: corrupt snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("sqldb: load: unsupported snapshot version %d", snap.Version)
	}
	tables := make(map[string]*Table, len(snap.Tables))
	for _, ts := range snap.Tables {
		schema, err := NewSchema(ts.Columns)
		if err != nil {
			return nil, fmt.Errorf("sqldb: load: table %s: %w", ts.Name, err)
		}
		t := NewTable(ts.Name, schema)
		t.nextRow = ts.NextRow
		t.nextSeq = ts.NextSeq
		for i, id := range ts.RowIDs {
			row := ts.Rows[i]
			if len(row) != len(schema.Columns) {
				return nil, fmt.Errorf("sqldb: load: table %s row %d has %d values, want %d", ts.Name, id, len(row), len(schema.Columns))
			}
			t.loadRow(id, row)
		}
		// Save writes RowIDs sorted, but Scan/restore depend on the
		// invariant, so don't trust external snapshot producers.
		t.finishLoad()
		for _, is := range ts.Indexes {
			if _, err := t.CreateIndex(is.Name, is.Column, is.Kind, is.Unique); err != nil {
				return nil, fmt.Errorf("sqldb: load: rebuild index %s: %w", is.Name, err)
			}
		}
		tables[toLowerASCII(ts.Name)] = t
	}
	return tables, nil
}

func toLowerASCII(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
