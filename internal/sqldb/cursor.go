package sqldb

// Volcano-style pull execution. Every SELECT — materialized Query and
// streaming QueryCursor alike — runs through the producer pipeline in this
// file: an access-path producer at the bottom (full scan, index candidate
// list, ordered B-tree traversal), one join producer per JOIN clause
// stacked on top, and a selectCursor driving WHERE evaluation, projection
// and LIMIT/OFFSET at the top. Materializing execution is just "drain the
// cursor"; there is exactly one execution engine.
//
// Pipeline breakers (GROUP BY, DISTINCT, and ORDER BY that an index cannot
// satisfy) buffer their input before emitting, as in any Volcano engine.
// Everything else streams: the first row leaves the engine before the
// second is produced, and memory stays O(1) in the result size.

import (
	"errors"
	"fmt"
	"sort"
)

// Cursor is a streaming query result. Rows are pulled one at a time with
// Next; a nil row with a nil error marks exhaustion. Close releases the
// cursor's resources and is idempotent.
//
// Cursors do not pin the database: in lock mode each Next acquires the
// read lock for just that step, so writers make progress while a large
// result streams out and row reads are read-committed — concurrent
// INSERT/UPDATE/DELETE may or may not be observed by the remaining rows.
// Under MVCC the cursor instead pins a snapshot epoch at open: Next takes
// no database lock at all and every row reflects exactly that snapshot;
// the snapshot is released at Close (or exhaustion), unblocking vacuum.
// In both modes any schema change (DDL, snapshot restore, index-access or
// MVCC-mode toggle) invalidates the cursor: Next then fails with
// ErrCursorInvalidated.
//
// The slice returned by Next is reused between calls; copy the values you
// need before calling Next again. A Cursor must not be used from multiple
// goroutines concurrently.
type Cursor interface {
	// Columns returns the output column names.
	Columns() []string
	// Next returns the next row, or (nil, nil) once the result is
	// exhausted. The returned slice is only valid until the next call.
	Next() ([]Value, error)
	// Close releases the cursor. Further Next calls fail.
	Close() error
}

// ErrCursorInvalidated is returned by Cursor.Next when a schema change
// (DDL, Restore, SetIndexAccess) occurred after the cursor was opened.
var ErrCursorInvalidated = errors.New("sqldb: cursor invalidated by schema change")

var errCursorClosed = errors.New("sqldb: cursor is closed")

// orderedChunkSize bounds how many row IDs an ordered index traversal
// pulls per refill, so ORDER BY ... LIMIT consumers stop the B-tree walk
// after roughly one chunk instead of collecting every matching entry.
const orderedChunkSize = 256

// QueryCursor executes a SELECT and returns a streaming cursor over its
// rows. See Cursor for locking and invalidation semantics.
func (db *DB) QueryCursor(sql string, args ...any) (Cursor, error) {
	return db.stmts.get(db, sql).QueryCursor(args...)
}

// QueryEach executes a SELECT and streams its rows through fn under a
// single consistent statement snapshot (like Query) without materializing
// a result set (like QueryCursor). In lock mode the database read lock is
// held for the whole iteration, so fn must not write to this database —
// the held read lock would deadlock the write; under MVCC the iteration
// holds a snapshot epoch instead of any lock. The row slice passed to fn
// is reused between calls; fn must copy anything it keeps. A non-nil
// error from fn stops the iteration and is returned.
func (db *DB) QueryEach(sql string, fn func(row []Value) error, args ...any) error {
	return db.stmts.get(db, sql).QueryEach(fn, args...)
}

// QueryEach executes the prepared statement as a SELECT, streaming rows
// to fn under one read lock. See DB.QueryEach.
func (s *Stmt) QueryEach(fn func(row []Value) error, args ...any) error {
	vals, err := normalizeArgs(args)
	if err != nil {
		return err
	}
	db := s.db
	if !db.mvcc.Load() {
		db.mu.RLock()
		if !db.mvcc.Load() {
			// Shared lock pins the mode: raw lock-mode reads are safe.
			defer db.mu.RUnlock()
			return s.eachVis(fn, vals, visLatest)
		}
		// Mode flipped to MVCC between check and lock — latched writers
		// may be running, so take the MVCC path (see Stmt.Query).
		db.mu.RUnlock()
	}
	snap := db.snaps.acquire(db)
	defer db.snaps.release(snap)
	return s.eachVis(fn, vals, visibility{snap: snap, lockPart: true})
}

// eachVis runs the QueryEach drain pinned to vis; the caller provides the
// synchronization (read lock in lock mode, registered snapshot under MVCC).
func (s *Stmt) eachVis(fn func(row []Value) error, vals []Value, vis visibility) error {
	db := s.db
	p, err := s.ensure(db)
	if err != nil {
		return err
	}
	if p.expl != nil {
		rs, err := db.explainResult(p.expl)
		if err != nil {
			return err
		}
		for _, row := range rs.Rows {
			if err := fn(row); err != nil {
				return err
			}
		}
		return nil
	}
	if p.sel == nil {
		return fmt.Errorf("sqldb: QueryEach requires a SELECT statement")
	}
	if err := p.checkArgs(vals); err != nil {
		return err
	}
	c := newSelectCursor(db, p.sel, vals, true, vis)
	// fn may abort the iteration mid-stream; close cancels a parallel
	// exchange so its workers never outlive the call.
	defer c.close()
	return c.each(fn)
}

// QueryCursor executes the prepared statement as a streaming SELECT.
func (s *Stmt) QueryCursor(args ...any) (Cursor, error) {
	vals, err := normalizeArgs(args)
	if err != nil {
		return nil, err
	}
	db := s.db
	if !db.mvcc.Load() {
		db.mu.RLock()
		if !db.mvcc.Load() {
			// Shared lock pins the mode: the lock-mode build is safe, and
			// dbCursor.Next re-checks the schema generation under the lock
			// on every step, so a later flip invalidates before any raw read.
			defer db.mu.RUnlock()
			return s.cursorVis(vals, visLatest)
		}
		// Mode flipped to MVCC between check and lock — latched writers
		// may be running, so build an MVCC cursor (see Stmt.Query).
		db.mu.RUnlock()
	}
	snap := db.snaps.acquire(db)
	c, err := s.cursorVis(vals, visibility{snap: snap, lockPart: true})
	if err != nil {
		db.snaps.release(snap)
		return nil, err
	}
	c.ownSnap = true
	return c, nil
}

// cursorVis builds the public cursor handle pinned to vis. The caller
// provides the synchronization for the build itself (read lock in lock
// mode; under MVCC planning is lock-free).
func (s *Stmt) cursorVis(vals []Value, vis visibility) (*dbCursor, error) {
	db := s.db
	p, err := s.ensure(db)
	if err != nil {
		return nil, err
	}
	if p.expl != nil {
		// EXPLAIN yields a small, already-materialized plan rendering; the
		// cursor serves the static rows with no engine pipeline behind it.
		rs, err := db.explainResult(p.expl)
		if err != nil {
			return nil, err
		}
		return &dbCursor{db: db, static: rs, cols: rs.Columns, gen: db.gen.Load(), mvcc: vis.lockPart, snap: vis.snap}, nil
	}
	if p.sel == nil {
		return nil, fmt.Errorf("sqldb: QueryCursor requires a SELECT statement")
	}
	if err := p.checkArgs(vals); err != nil {
		return nil, err
	}
	return &dbCursor{
		db:    db,
		inner: newSelectCursor(db, p.sel, vals, true, vis),
		cols:  p.sel.projNames,
		gen:   db.gen.Load(),
		mvcc:  vis.lockPart,
		snap:  vis.snap,
	}, nil
}

// QueryCursor runs a streaming SELECT inside the transaction, observing
// its own (uncommitted) writes like Tx.Query does. Under MVCC the cursor
// reads at the transaction's snapshot (which the transaction owns — the
// cursor does not release it) and sees the transaction's provisional
// versions.
func (tx *Tx) QueryCursor(sql string, args ...any) (Cursor, error) {
	if tx.done {
		return nil, fmt.Errorf("sqldb: transaction already finished")
	}
	if tx.mvcc {
		vals, err := normalizeArgs(args)
		if err != nil {
			return nil, err
		}
		return tx.db.stmts.get(tx.db, sql).cursorVis(vals, visibility{snap: tx.snap, tx: tx.id, lockPart: true})
	}
	return tx.db.QueryCursor(sql, args...)
}

// dbCursor is the public cursor handle: it wraps the lock-free engine
// cursor with schema-generation validation plus, in lock mode, per-step
// read locking, or, under MVCC, the pinned snapshot's lifetime.
type dbCursor struct {
	db     *DB
	inner  *selectCursor
	cols   []string
	gen    uint64
	closed bool

	mvcc    bool   // MVCC read: skip per-step locking
	snap    uint64 // pinned snapshot epoch (MVCC)
	ownSnap bool   // this cursor registered snap and must release it

	// static serves pre-materialized rows (EXPLAIN) with no engine cursor;
	// inner is nil for the cursor's whole lifetime then.
	static *ResultSet
	spos   int
}

// Columns returns the output column names.
func (c *dbCursor) Columns() []string { return c.cols }

// releaseSnap hands a cursor-owned snapshot back to the tracker so vacuum
// can advance past it. Idempotent.
func (c *dbCursor) releaseSnap() {
	if c.ownSnap {
		c.ownSnap = false
		c.db.snaps.release(c.snap)
	}
}

// Next returns the next row, or (nil, nil) at exhaustion.
func (c *dbCursor) Next() ([]Value, error) {
	if c.closed {
		return nil, errCursorClosed
	}
	if c.static != nil {
		if c.spos >= len(c.static.Rows) {
			c.releaseSnap()
			return nil, nil
		}
		row := c.static.Rows[c.spos]
		c.spos++
		return row, nil
	}
	db := c.db
	if c.mvcc {
		if db.gen.Load() != c.gen {
			c.releaseSnap()
			return nil, ErrCursorInvalidated
		}
		if db.snapRevoked(c.snap) {
			// The retention budget revoked this cursor's snapshot: the
			// versions it reads may be vacuumed at any moment.
			c.releaseSnap()
			return nil, ErrSnapshotTooOld
		}
		row, err := c.inner.step()
		if row == nil {
			// Terminal (exhaustion or error): stop pinning the vacuum
			// horizon even if the caller forgets to Close.
			c.releaseSnap()
		}
		return row, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.gen.Load() != c.gen {
		return nil, ErrCursorInvalidated
	}
	return c.inner.step()
}

// Close releases the cursor's buffered state, cancels any parallel scan
// workers still running, and releases a cursor-owned snapshot. Idempotent.
func (c *dbCursor) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	if c.inner != nil {
		c.inner.close()
		c.inner = nil // release snapshots, hash tables and buffers
	}
	c.releaseSnap()
	return nil
}

// ---------------------------------------------------------------------------
// Engine cursor

// selectCursor executes one SELECT as a pull pipeline. It takes no locks
// itself: the materializing drain runs entirely under the caller's read
// lock, and dbCursor re-acquires the lock around every step.
type selectCursor struct {
	ex *selectExec
	// reuseRow makes step return one shared output buffer (the streaming
	// Cursor contract); the materializing drain keeps it off so ResultSet
	// rows are independent slices.
	reuseRow bool
	started  bool
	done     bool

	// Streaming state (non-grouped, non-distinct, order already satisfied).
	streaming bool
	prod      rowProducer
	par       *parallelScan // non-nil: partition-parallel exchange instead of prod
	bsrc      batchSource   // non-nil: vectorized batch leg instead of prod
	batchProj []int         // batch leg's projection column positions
	skip      int64         // OFFSET rows still to drop
	remain    int64         // LIMIT rows still to emit; -1 = unlimited
	rowBuf    []Value

	// Buffered state (pipeline breakers: GROUP BY, DISTINCT, real sorts).
	buf [][]Value
	pos int
}

func newSelectCursor(db *DB, p *selectPlan, args []Value, reuseRow bool, vis visibility) *selectCursor {
	return &selectCursor{
		ex:       &selectExec{db: db, p: p, env: p.newEnv(args), vis: vis},
		reuseRow: reuseRow,
	}
}

// step returns the next output row, or (nil, nil) at exhaustion.
func (c *selectCursor) step() ([]Value, error) {
	if !c.started {
		if err := c.start(); err != nil {
			c.done = true
			return nil, err
		}
	}
	if c.done {
		return nil, nil
	}
	if c.streaming {
		return c.stepStreaming()
	}
	if c.pos >= len(c.buf) {
		c.done = true
		c.buf = nil
		return nil, nil
	}
	row := c.buf[c.pos]
	c.pos++
	return row, nil
}

// drain runs the cursor to completion, returning all rows at once (the
// materializing Query path).
func (c *selectCursor) drain() ([][]Value, error) {
	if !c.started {
		if err := c.start(); err != nil {
			c.done = true
			return nil, err
		}
	}
	if !c.streaming {
		rows := c.buf
		if c.pos > 0 {
			rows = rows[c.pos:]
		}
		c.buf = nil
		c.done = true
		return rows, nil
	}
	var out [][]Value
	for {
		row, err := c.step()
		if err != nil {
			return nil, err
		}
		if row == nil {
			return out, nil
		}
		out = append(out, row)
	}
}

// start decides between the streaming and buffered pipelines and builds
// the producer chain. It runs lazily on the first step, so a cursor opened
// but never read does no work.
func (c *selectCursor) start() error {
	c.started = true
	p := c.ex.p
	c.streaming = !p.grouped && !p.st.Distinct && (len(p.st.OrderBy) == 0 || p.orderSatisfied)
	if !c.streaming {
		rows, err := c.ex.runBuffered()
		if err != nil {
			return err
		}
		c.buf = rows
		return nil
	}
	skip, remain, err := c.ex.evalLimitOffset()
	if err != nil {
		return err
	}
	c.skip, c.remain = skip, remain
	if c.remain == 0 {
		// LIMIT 0: done before touching any table (or counter).
		c.done = true
		return nil
	}
	if c.remain > 0 && c.remain+c.skip <= 1<<20 {
		c.ex.orderedHint = int(c.remain + c.skip)
	}
	// The vectorized leg wins over the row-parallel exchange when both
	// are eligible: it does strictly less per-row work. Under a
	// parallelism hint it fans out the batch workers per partition;
	// otherwise the serial batch producer amortizes the caller's lock
	// over one batch instead of one row.
	if bs := c.ex.batchScanBinding(); bs != nil {
		c.ex.db.plans.batchScans.Add(1)
		c.batchProj = bs.shape.projCols
		t := c.ex.p.rels[0].table
		if c.ex.db.Parallelism() > 1 && t.PartitionCount() > 1 {
			c.bsrc = newBatchScanExchange(c.ex, bs)
		} else {
			c.bsrc = newSerialBatchScan(c.ex, bs)
		}
		if c.reuseRow {
			c.rowBuf = make([]Value, len(p.projExprs))
		}
		return nil
	}
	if c.ex.parallelScanEligible() {
		c.ex.db.plans.parScans.Add(1)
		c.par = newParallelScan(c.ex)
		return nil
	}
	prod, err := c.ex.buildProducer()
	if err != nil {
		return err
	}
	c.prod = prod
	if c.reuseRow {
		c.rowBuf = make([]Value, len(p.projExprs))
	}
	return nil
}

// close releases engine-cursor resources; with a parallel scan running it
// cancels the workers and waits them out. Idempotent, and required on
// every exit path that can leave the exchange mid-stream (early Close,
// LIMIT, errors).
func (c *selectCursor) close() {
	c.done = true
	if c.par != nil {
		c.par.close()
	}
	if c.bsrc != nil {
		c.bsrc.close()
	}
	c.buf = nil
}

// stepParallel pulls merged rows from the exchange. The workers have
// already applied the WHERE clause and the projection; only the
// OFFSET/LIMIT window — which needs the global row order — runs here.
func (c *selectCursor) stepParallel() ([]Value, error) {
	ex := c.ex
	for {
		row, err := c.par.next()
		if err != nil {
			c.close()
			return nil, err
		}
		if row == nil {
			c.close()
			return nil, nil
		}
		if c.skip > 0 {
			c.skip--
			continue
		}
		if c.remain > 0 {
			c.remain--
			if c.remain == 0 {
				// Row production stops before the source is exhausted.
				ex.db.plans.earlyLimitHit.Add(1)
				c.close()
			}
		}
		return row, nil
	}
}

// stepBatch is the batch-to-row adapter: it pulls merged filtered rows
// (original storage references) from the batch source, applies the column
// projection, and runs the OFFSET/LIMIT window — keeping the public
// Cursor/QueryEach surface identical to the row leg.
func (c *selectCursor) stepBatch() ([]Value, error) {
	ex := c.ex
	for {
		row, err := c.bsrc.next()
		if err != nil {
			c.close()
			return nil, err
		}
		if row == nil {
			c.close()
			return nil, nil
		}
		if c.skip > 0 {
			c.skip--
			continue
		}
		out := c.rowBuf
		if out == nil {
			out = make([]Value, len(c.batchProj))
		}
		for j, pos := range c.batchProj {
			out[j] = row[pos]
		}
		if c.remain > 0 {
			c.remain--
			if c.remain == 0 {
				// Row production stops before the source is exhausted.
				ex.db.plans.earlyLimitHit.Add(1)
				c.close()
			}
		}
		return out, nil
	}
}

// each streams every output row to fn (the QueryEach drain). On the
// vectorized leg it consumes whole filtered runs instead of stepping row
// by row, which drops the per-row pull dispatch from the hot loop; the
// emitted sequence, OFFSET/LIMIT window, and counter behavior are
// identical to the step path.
func (c *selectCursor) each(fn func(row []Value) error) error {
	if !c.started {
		if err := c.start(); err != nil {
			c.done = true
			return err
		}
	}
	if !c.done && c.streaming && c.bsrc != nil {
		if s, ok := c.bsrc.(*serialBatchScan); ok {
			return c.eachSerialBatch(s, fn)
		}
		if ps, ok := c.bsrc.(*parallelScan); ok {
			return c.eachExchange(ps, fn)
		}
		for !c.done {
			row, err := c.stepBatch()
			if err != nil {
				return err
			}
			if row == nil {
				return nil
			}
			if err := fn(row); err != nil {
				return err
			}
		}
		return nil
	}
	for {
		row, err := c.step()
		if err != nil {
			return err
		}
		if row == nil {
			return nil
		}
		if err := fn(row); err != nil {
			return err
		}
	}
}

// eachSerialBatch drains the serial batch producer run-at-a-time: the
// OFFSET/LIMIT window is applied by slicing each run, and the projection
// copies into the one shared output buffer the QueryEach contract
// promises (rows are valid only during the callback).
func (c *selectCursor) eachSerialBatch(s *serialBatchScan, fn func(row []Value) error) error {
	proj := c.batchProj
	buf := c.rowBuf
	if buf == nil {
		buf = make([]Value, len(proj))
	}
	for {
		rows, err := s.nextRun()
		if err != nil {
			c.close()
			return err
		}
		if rows == nil {
			c.close()
			return nil
		}
		if c.skip > 0 {
			if n := int64(len(rows)); c.skip >= n {
				c.skip -= n
				continue
			}
			rows = rows[c.skip:]
			c.skip = 0
		}
		limited := false
		if c.remain > 0 {
			if int64(len(rows)) >= c.remain {
				rows = rows[:c.remain]
				limited = true
			}
			c.remain -= int64(len(rows))
		}
		for _, row := range rows {
			for j, pos := range proj {
				buf[j] = row[pos]
			}
			if err := fn(buf); err != nil {
				c.close()
				return err
			}
		}
		if limited {
			// Row production stops before the source is exhausted.
			c.ex.db.plans.earlyLimitHit.Add(1)
			c.close()
			return nil
		}
	}
}

// eachExchange drains the batch exchange for QueryEach: the min-merge
// over the partition streams is pulled directly — no per-row adapter
// dispatch — with the projection landing in the shared output buffer and
// the OFFSET/LIMIT window behaving exactly like stepBatch.
func (c *selectCursor) eachExchange(ps *parallelScan, fn func(row []Value) error) error {
	proj := c.batchProj
	buf := c.rowBuf
	if buf == nil {
		buf = make([]Value, len(proj))
	}
	for {
		row, err := ps.next()
		if err != nil {
			c.close()
			return err
		}
		if row == nil {
			c.close()
			return nil
		}
		if c.skip > 0 {
			c.skip--
			continue
		}
		for j, pos := range proj {
			buf[j] = row[pos]
		}
		last := false
		if c.remain > 0 {
			c.remain--
			if c.remain == 0 {
				// Row production stops before the source is exhausted.
				c.ex.db.plans.earlyLimitHit.Add(1)
				c.close()
				last = true
			}
		}
		if err := fn(buf); err != nil {
			c.close()
			return err
		}
		if last {
			return nil
		}
	}
}

func (c *selectCursor) stepStreaming() ([]Value, error) {
	if c.bsrc != nil {
		return c.stepBatch()
	}
	if c.par != nil {
		return c.stepParallel()
	}
	ex := c.ex
	for {
		ok, err := c.prod.next(ex)
		if err != nil {
			c.done = true
			return nil, err
		}
		if !ok {
			c.done = true
			return nil, nil
		}
		pass, err := ex.evalWhere()
		if err != nil {
			c.done = true
			return nil, err
		}
		if !pass {
			continue
		}
		if c.skip > 0 {
			c.skip--
			continue
		}
		row := c.rowBuf
		if row == nil {
			row = make([]Value, len(ex.p.projExprs))
		}
		if err := ex.projectInto(row); err != nil {
			c.done = true
			return nil, err
		}
		if c.remain > 0 {
			c.remain--
			if c.remain == 0 {
				// Row production stops before the source is exhausted.
				ex.db.plans.earlyLimitHit.Add(1)
				c.done = true
			}
		}
		return row, nil
	}
}

// ---------------------------------------------------------------------------
// Row producers

// rowProducer is one stage of the pull pipeline: next advances the
// execution's row environment to the next produced tuple.
type rowProducer interface {
	next(ex *selectExec) (bool, error)
}

// buildProducer assembles the access-path producer for the driving
// relation and stacks one join producer per JOIN clause on top. The driver
// is rels[0] except for a swapped (RIGHT) join, whose producer drives from
// the preserved right-hand relation and probes rels[0].
func (ex *selectExec) buildProducer() (rowProducer, error) {
	p := ex.p
	base := p.rels[p.driver]
	a := &p.access
	c := &ex.db.plans

	var prod rowProducer
	switch {
	case a.kind == accessScan:
		c.fullScans.Add(1)
		prod = newScanProducer(base)
	case a.ordered:
		c.orderedScans.Add(1)
		op, err := newOrderedProducer(ex, base)
		if err != nil {
			return nil, err
		}
		prod = op
	default:
		switch a.kind {
		case accessEq:
			c.indexEq.Add(1)
		case accessIn:
			c.indexIn.Add(1)
		case accessRange:
			c.indexRange.Add(1)
		}
		ids, err := collectAccessIDs(a, ex.env)
		if err != nil {
			return nil, err
		}
		prod = &idListProducer{rel: base, ids: ids}
	}

	for i := range p.joins {
		rel := p.rels[i+1]
		if p.joins[i].swapped {
			rel = p.rels[0]
		}
		jp := &joinProducer{child: prod, plan: &p.joins[i], rel: rel}
		jp.init(ex)
		prod = jp
	}
	return prod, nil
}

// scanProducer emits the base table's rows in ascending row-ID order. It
// walks a loaded view of the table's live ID slice by position and
// re-loads (re-synchronizing via binary search) whenever the table's
// mutation counter moves, so an open cursor survives concurrent inserts,
// deletes and ID-slice compaction without snapshotting anything. Row
// visibility comes from the execution's snapshot, so under MVCC a reload
// never changes which rows the cursor observes.
type scanProducer struct {
	rel    relBinding
	ids    []int64
	pos    int
	lastID int64
	mut    uint64
}

func newScanProducer(rel relBinding) *scanProducer {
	return &scanProducer{rel: rel, ids: rel.table.ids.load(), mut: rel.table.mut.Load()}
}

func (s *scanProducer) next(ex *selectExec) (bool, error) {
	t := s.rel.table
	if m := t.mut.Load(); m != s.mut {
		// The ID slice may have been appended to, compacted or truncated
		// since the last step; continue after the last row emitted. Row
		// IDs are monotone, so this never re-emits a row.
		s.ids = t.ids.load()
		s.pos = sort.Search(len(s.ids), func(i int) bool { return s.ids[i] > s.lastID })
		s.mut = m
	}
	for s.pos < len(s.ids) {
		id := s.ids[s.pos]
		s.pos++
		row := t.get(id, ex.vis)
		if row == nil {
			continue // tombstone, or a version invisible at this snapshot
		}
		s.lastID = id
		ex.env.SetRow(s.rel.off, row)
		return true, nil
	}
	return false, nil
}

// idListProducer emits the rows of a precomputed candidate ID list (the
// equality, IN-list and range index access paths). Rows deleted since the
// list was collected come back nil from Get and are skipped.
type idListProducer struct {
	rel relBinding
	ids []int64
	pos int
}

func (p *idListProducer) next(ex *selectExec) (bool, error) {
	for p.pos < len(p.ids) {
		id := p.ids[p.pos]
		p.pos++
		row := p.rel.table.get(id, ex.vis)
		if row == nil {
			continue
		}
		ex.env.SetRow(p.rel.off, row)
		return true, nil
	}
	return false, nil
}

// orderedStage sequences the phases of an ordered traversal: rows with
// NULL keys live outside the B-tree and are served at the NULL end of the
// order (first ascending, last descending); bounds from a WHERE range
// predicate exclude NULLs entirely.
type orderedStage int

const (
	stageNulls orderedStage = iota
	stageTree
	stageDone
)

// orderedProducer walks a B-tree index in (possibly descending) key order,
// pulling row IDs in bounded chunks so a LIMIT consumer stops the
// traversal after roughly one chunk. Chunks always end at a key-run
// boundary; the next refill resumes strictly beyond the last completed
// key, which stays correct even if the tree changed between pulls.
type orderedProducer struct {
	rel relBinding
	a   *accessPlan

	lo, hi       Value
	hasLo, hasHi bool

	stages   []orderedStage
	stageIdx int

	nullIDs   []int64
	nullsInit bool
	nullPos   int

	chunk     []int64
	chunkKeys []Value // entry key per chunk ID (MVCC stale-entry check)
	runStarts []int   // chunk offsets where a new key run begins (desc only)
	chunkPos  int
	chunkSize int
	treeDone  bool
	resumeKey Value
	hasResume bool
}

func newOrderedProducer(ex *selectExec, rel relBinding) (*orderedProducer, error) {
	a := &ex.p.access
	lo, hi, hasLo, hasHi, empty, err := a.evalBounds(ex.env)
	if err != nil {
		return nil, err
	}
	p := &orderedProducer{rel: rel, a: a, lo: lo, hi: hi, hasLo: hasLo, hasHi: hasHi}
	// Size the first chunk to the consumer's LIMIT when known, so an
	// ORDER BY ... LIMIT n pulls ~n entries instead of a full chunk; a
	// WHERE clause may reject rows, in which case later refills grow the
	// chunk geometrically toward full size.
	p.chunkSize = orderedChunkSize
	if hint := ex.orderedHint; hint > 0 && hint < orderedChunkSize {
		p.chunkSize = hint
	}
	includeNulls := !hasLo && !hasHi
	switch {
	case empty:
		p.stages = []orderedStage{stageDone}
	case includeNulls && !a.desc: // NULL sorts first ascending
		p.stages = []orderedStage{stageNulls, stageTree, stageDone}
	case includeNulls: // NULL sorts last descending
		p.stages = []orderedStage{stageTree, stageNulls, stageDone}
	default:
		p.stages = []orderedStage{stageTree, stageDone}
	}
	return p, nil
}

func (p *orderedProducer) next(ex *selectExec) (bool, error) {
	t := p.rel.table
	col := p.a.idx.Col
	// Under MVCC, index entries are maintained lazily (vacuum removes
	// postings whose key no longer appears in the row's version chain), so
	// an entry's key can be stale for the version visible at this snapshot.
	// Emitting such an entry would place the row at the wrong position of
	// the key order (or emit it twice); require the visible row to still
	// carry the entry's key. Lock mode maintains entries eagerly 1:1, so
	// the check is skipped there.
	checkKey := ex.vis.lockPart
	emit := func(id int64, key Value, isNull bool) bool {
		row := t.get(id, ex.vis)
		if row == nil {
			return false
		}
		if checkKey {
			v := row[col]
			if isNull {
				if v != nil {
					return false
				}
			} else if v == nil || Compare(v, key) != 0 {
				return false
			}
		}
		ex.env.SetRow(p.rel.off, row)
		return true
	}
	for {
		switch p.stages[p.stageIdx] {
		case stageNulls:
			if !p.nullsInit {
				p.nullIDs = p.a.idx.NullRowIDs()
				p.nullsInit = true
			}
			for p.nullPos < len(p.nullIDs) {
				id := p.nullIDs[p.nullPos]
				p.nullPos++
				if emit(id, nil, true) {
					return true, nil
				}
			}
			p.stageIdx++
		case stageTree:
			for {
				for p.chunkPos < len(p.chunk) {
					id := p.chunk[p.chunkPos]
					key := p.chunkKeys[p.chunkPos]
					p.chunkPos++
					if emit(id, key, false) {
						return true, nil
					}
				}
				if p.treeDone {
					break
				}
				p.refill()
			}
			p.stageIdx++
		case stageDone:
			return false, nil
		}
	}
}

// refill pulls the next chunk of row IDs from the tree. Collection runs
// past the nominal chunk size until the current key's run is complete, so
// the resume bound (exclusive on the last collected key) is exact. Each
// refill after the first grows the chunk geometrically: a small first
// chunk serves LIMIT consumers, full chunks amortize long traversals.
func (p *orderedProducer) refill() {
	p.chunk = p.chunk[:0]
	p.chunkKeys = p.chunkKeys[:0]
	p.chunkPos = 0
	size := p.chunkSize
	if next := size * 4; next < orderedChunkSize {
		p.chunkSize = next
	} else {
		p.chunkSize = orderedChunkSize
	}
	var lastKey Value
	full, stopped := false, false
	if !p.a.desc {
		lo, loIncl, hasLo := p.lo, p.a.loIncl, p.hasLo
		if p.hasResume {
			lo, loIncl, hasLo = p.resumeKey, false, true
		}
		p.a.idx.Range(lo, p.hi, hasLo, p.hasHi, loIncl, p.a.hiIncl, func(key Value, id int64) bool {
			if full && Compare(key, lastKey) != 0 {
				p.resumeKey, p.hasResume = lastKey, true
				stopped = true
				return false
			}
			p.chunk = append(p.chunk, id)
			p.chunkKeys = append(p.chunkKeys, key)
			lastKey = key
			if len(p.chunk) >= size {
				full = true
			}
			return true
		})
		if !stopped {
			p.treeDone = true
		}
		return
	}

	hi, hiIncl, hasHi := p.hi, p.a.hiIncl, p.hasHi
	if p.hasResume {
		hi, hiIncl, hasHi = p.resumeKey, false, true
	}
	p.runStarts = p.runStarts[:0]
	p.a.idx.RangeDesc(p.lo, hi, p.hasLo, hasHi, p.a.loIncl, hiIncl, func(key Value, id int64) bool {
		if len(p.chunk) == 0 || Compare(key, lastKey) != 0 {
			if full {
				p.resumeKey, p.hasResume = lastKey, true
				stopped = true
				return false
			}
			p.runStarts = append(p.runStarts, len(p.chunk))
		}
		p.chunk = append(p.chunk, id)
		p.chunkKeys = append(p.chunkKeys, key)
		lastKey = key
		if len(p.chunk) >= size {
			full = true
		}
		return true
	})
	if !stopped {
		p.treeDone = true
	}
	// The tree yields ties in descending row-ID order, but the stable sort
	// this traversal replaces keeps ties ascending; reverse each run of
	// equal keys (runs are never split across chunks). Keys within a run
	// compare equal, so only the IDs need reversing.
	for ri, start := range p.runStarts {
		end := len(p.chunk)
		if ri+1 < len(p.runStarts) {
			end = p.runStarts[ri+1]
		}
		for l, r := start, end-1; l < r; l, r = l+1, r-1 {
			p.chunk[l], p.chunk[r] = p.chunk[r], p.chunk[l]
		}
	}
}

// joinProducer joins its child's tuples against one probe relation (the
// syntactically-right relation, or — for a swapped RIGHT join — the left
// one). For each driving tuple it iterates the candidate probe rows of the
// planned strategy, re-checking the full ON clause (nil for CROSS joins:
// every pair matches); an unmatched driving tuple of a LEFT JOIN is
// emitted once with the probe columns NULL-padded.
type joinProducer struct {
	child rowProducer
	plan  *joinPlan
	rel   relBinding

	hash     map[hashKey][][]Value // joinHashBuild: built once per execution
	rightIDs []int64               // joinNestedLoop: right table's row IDs

	haveLeft bool
	matched  bool
	candIDs  []int64
	candRows [][]Value
	pos      int
}

// init builds per-execution join state and counts the strategy that runs.
func (j *joinProducer) init(ex *selectExec) {
	switch j.plan.strategy {
	case joinHashBuild:
		ex.db.plans.hashJoins.Add(1)
		hash := make(map[hashKey][][]Value)
		col := j.plan.rightCol
		j.rel.table.scanVis(ex.vis, func(_ int64, row []Value) bool {
			k := row[col]
			if k == nil {
				return true
			}
			hk := makeHashKey(k)
			hash[hk] = append(hash[hk], row)
			return true
		})
		j.hash = hash
	case joinIndexLoop:
		ex.db.plans.indexJoins.Add(1)
	default:
		ex.db.plans.nestedJoins.Add(1)
		ids := make([]int64, 0, j.rel.table.RowCount())
		j.rel.table.scanVis(ex.vis, func(id int64, _ []Value) bool {
			ids = append(ids, id)
			return true
		})
		j.rightIDs = ids
	}
}

// startLeft resolves the candidate right rows for the freshly produced
// left tuple.
func (j *joinProducer) startLeft(ex *selectExec) error {
	j.pos, j.matched = 0, false
	j.candIDs, j.candRows = nil, nil
	switch j.plan.strategy {
	case joinIndexLoop:
		key, err := j.plan.keyExpr.Eval(ex.env)
		if err != nil {
			return err
		}
		if key != nil {
			ids := j.plan.idx.Lookup(key)
			sortInt64s(ids) // match the right table's scan order for ties
			j.candIDs = ids
		}
	case joinHashBuild:
		key, err := j.plan.keyExpr.Eval(ex.env)
		if err != nil {
			return err
		}
		if key != nil {
			j.candRows = j.hash[makeHashKey(key)]
		}
	default:
		j.candIDs = j.rightIDs
	}
	return nil
}

// nextCandidate returns the next candidate right row, or nil when the
// current left tuple's candidates are exhausted. Rows resolve at the
// execution's snapshot; stale MVCC index entries resolve to a row whose
// key no longer matches and are rejected by the ON re-check.
func (j *joinProducer) nextCandidate(ex *selectExec) []Value {
	if j.candRows != nil {
		if j.pos < len(j.candRows) {
			row := j.candRows[j.pos]
			j.pos++
			return row
		}
		return nil
	}
	for j.pos < len(j.candIDs) {
		id := j.candIDs[j.pos]
		j.pos++
		if row := j.rel.table.get(id, ex.vis); row != nil {
			return row
		}
	}
	return nil
}

func (j *joinProducer) next(ex *selectExec) (bool, error) {
	for {
		if !j.haveLeft {
			ok, err := j.child.next(ex)
			if err != nil || !ok {
				return ok, err
			}
			if err := j.startLeft(ex); err != nil {
				return false, err
			}
			j.haveLeft = true
		}
		for {
			row := j.nextCandidate(ex)
			if row == nil {
				break
			}
			ex.env.SetRow(j.rel.off, row)
			if j.plan.on != nil {
				v, err := j.plan.on.Eval(ex.env)
				if err != nil {
					return false, err
				}
				b, isNull := toBool(v)
				if isNull || !b {
					continue
				}
			}
			j.matched = true
			return true, nil
		}
		j.haveLeft = false
		if !j.matched && j.plan.kind == JoinLeft {
			ex.env.ClearRow(j.rel.off, j.rel.width)
			return true, nil
		}
	}
}
