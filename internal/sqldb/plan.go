package sqldb

import (
	"fmt"
	"strings"
)

// This file contains the query planner. Planning happens once per prepared
// statement (db.Prepare or the internal statement cache) and produces an
// immutable plan that every execution shares:
//
//	parse (parser.go)  →  plan (here)  →  execute (exec.go)
//
// The planner decides, per relation, how candidate rows are produced
// (accessPlan) and, per join, which join strategy runs (joinPlan). Key
// expressions stay symbolic — they may reference `?` parameters — and are
// evaluated against the execution's argument list, so one plan is valid for
// every binding of the same statement.

// ---------------------------------------------------------------------------
// Access paths

type accessKind int

const (
	// accessScan visits the whole table in row-ID order.
	accessScan accessKind = iota
	// accessEq probes one index key.
	accessEq
	// accessIn unions the postings of several index keys (IN list).
	accessIn
	// accessRange walks a B-tree index over a key interval; with `ordered`
	// set the traversal order itself satisfies the query's ORDER BY.
	accessRange
)

// accessPlan describes how the executor obtains candidate rows for one
// relation. Candidates are a superset of the matching rows: the full WHERE
// clause is still evaluated per row, so access planning can only err on the
// side of inclusion.
type accessPlan struct {
	kind  accessKind
	idx   *Index
	key   Expr   // accessEq probe key
	items []Expr // accessIn probe keys
	// accessRange bounds; a nil bound is unbounded on that side.
	lo, hi         Expr
	loIncl, hiIncl bool
	// ordered marks a B-tree traversal emitted in key order (descending when
	// desc is set) because it satisfies the statement's ORDER BY. Non-ordered
	// index access emits candidates in row-ID order to match scan order.
	ordered bool
	desc    bool
}

// planTableAccess inspects the AND-connected conjuncts of where for an
// indexable predicate over one relation. resolve maps a column reference to
// the relation's column position, or -1 when the reference does not
// (unambiguously) belong to the relation. Preference order: equality probe,
// IN-list union, B-tree range.
func planTableAccess(t *Table, where Expr, resolve func(*ColumnRef) int, noIndex bool) accessPlan {
	if noIndex || where == nil {
		return accessPlan{kind: accessScan}
	}
	var eq, in *accessPlan
	type rangeBounds struct {
		idx            *Index
		lo, hi         Expr
		loIncl, hiIncl bool
	}
	ranges := make(map[int]*rangeBounds)
	var rangeOrder []int

	addBound := func(ci int, idx *Index, isLo bool, bound Expr, incl bool) {
		rb, ok := ranges[ci]
		if !ok {
			rb = &rangeBounds{idx: idx}
			ranges[ci] = rb
			rangeOrder = append(rangeOrder, ci)
		}
		// First bound per side wins; the residual WHERE re-check keeps any
		// tighter duplicate bound correct.
		if isLo && rb.lo == nil {
			rb.lo, rb.loIncl = bound, incl
		} else if !isLo && rb.hi == nil {
			rb.hi, rb.hiIncl = bound, incl
		}
	}

	visitConjuncts(where, func(e Expr) bool {
		switch x := e.(type) {
		case *Binary:
			col, c, op, ok := matchColCmp(x)
			if !ok {
				return true
			}
			ci := resolve(col)
			if ci < 0 {
				return true
			}
			switch op {
			case OpEq:
				if eq == nil {
					if idx := t.IndexOn(ci); idx != nil {
						eq = &accessPlan{kind: accessEq, idx: idx, key: c}
					}
				}
			case OpGt, OpGe:
				if idx := t.BTreeIndexOn(ci); idx != nil {
					addBound(ci, idx, true, c, op == OpGe)
				}
			case OpLt, OpLe:
				if idx := t.BTreeIndexOn(ci); idx != nil {
					addBound(ci, idx, false, c, op == OpLe)
				}
			}
		case *Between:
			if x.Negate {
				return true
			}
			col, ok := x.X.(*ColumnRef)
			if !ok || !isConst(x.Lo) || !isConst(x.Hi) {
				return true
			}
			ci := resolve(col)
			if ci < 0 {
				return true
			}
			if idx := t.BTreeIndexOn(ci); idx != nil {
				addBound(ci, idx, true, x.Lo, true)
				addBound(ci, idx, false, x.Hi, true)
			}
		case *InList:
			if x.Negate || in != nil {
				return true
			}
			col, ok := x.X.(*ColumnRef)
			if !ok {
				return true
			}
			for _, item := range x.Items {
				if !isConst(item) {
					return true
				}
			}
			ci := resolve(col)
			if ci < 0 {
				return true
			}
			if idx := t.IndexOn(ci); idx != nil {
				in = &accessPlan{kind: accessIn, idx: idx, items: x.Items}
			}
		}
		return true
	})

	switch {
	case eq != nil:
		return *eq
	case in != nil:
		return *in
	case len(rangeOrder) > 0:
		rb := ranges[rangeOrder[0]]
		return accessPlan{
			kind: accessRange, idx: rb.idx,
			lo: rb.lo, hi: rb.hi, loIncl: rb.loIncl, hiIncl: rb.hiIncl,
		}
	}
	return accessPlan{kind: accessScan}
}

// ---------------------------------------------------------------------------
// Write plans (UPDATE / DELETE)

// writePlan is the compiled access portion of an UPDATE or DELETE: the
// target table, the bound WHERE clause, the chosen access path and the
// row-environment layout. Like selectPlan it is built once per prepared
// statement and shared immutably across executions, so writes no longer
// re-bind and re-plan per Exec under the exclusive lock.
type writePlan struct {
	t      *Table
	where  Expr
	access accessPlan
	cols   []envCol
}

// newEnv builds a fresh single-relation environment for one execution.
func (wp *writePlan) newEnv(args []Value) *RowEnv {
	return &RowEnv{cols: wp.cols, vals: make([]Value, len(wp.cols)), params: args}
}

// updatePlan is the compiled form of an UPDATE statement.
type updatePlan struct {
	writePlan
	setPos   []int
	setExprs []Expr
}

// deletePlan is the compiled form of a DELETE statement.
type deletePlan struct {
	writePlan
}

// planWriteAccess resolves the target table, binds the WHERE clause and
// selects the access path shared with the SELECT planner, so UPDATE and
// DELETE get equality, IN-list and B-tree range index access too.
func planWriteAccess(db *DB, tableName string, where Expr) (writePlan, error) {
	t := db.table(tableName)
	if t == nil {
		return writePlan{}, fmt.Errorf("sqldb: no such table %q", tableName)
	}
	env := NewRowEnv(tableName, t.Schema.Names())
	if where != nil {
		if err := bindColumns(where, env); err != nil {
			return writePlan{}, err
		}
	}
	resolve := func(col *ColumnRef) int {
		if col.Qual != "" && !strings.EqualFold(col.Qual, tableName) {
			return -1
		}
		return t.Schema.ColumnIndex(col.Name)
	}
	return writePlan{
		t:      t,
		where:  where,
		access: planTableAccess(t, where, resolve, db.noIndex.Load()),
		cols:   env.cols,
	}, nil
}

// planUpdate compiles an UPDATE: access path plus resolved SET positions
// and bound SET expressions.
func planUpdate(db *DB, st *UpdateStmt) (*updatePlan, error) {
	wp, err := planWriteAccess(db, st.Table, st.Where)
	if err != nil {
		return nil, err
	}
	up := &updatePlan{writePlan: wp}
	env := &RowEnv{cols: wp.cols}
	for _, s := range st.Sets {
		ci := wp.t.Schema.ColumnIndex(s.Column)
		if ci < 0 {
			return nil, fmt.Errorf("sqldb: no column %q in table %s", s.Column, wp.t.Name)
		}
		if err := bindColumns(s.Expr, env); err != nil {
			return nil, err
		}
		up.setPos = append(up.setPos, ci)
		up.setExprs = append(up.setExprs, s.Expr)
	}
	return up, nil
}

// planDelete compiles a DELETE.
func planDelete(db *DB, st *DeleteStmt) (*deletePlan, error) {
	wp, err := planWriteAccess(db, st.Table, st.Where)
	if err != nil {
		return nil, err
	}
	return &deletePlan{writePlan: wp}, nil
}

// matchColCmp matches a comparison between a column reference and a constant
// in either operand order, normalizing the operator to `col OP const`.
func matchColCmp(b *Binary) (*ColumnRef, Expr, BinOp, bool) {
	switch b.Op {
	case OpEq, OpLt, OpLe, OpGt, OpGe:
	default:
		return nil, nil, 0, false
	}
	if c, ok := b.L.(*ColumnRef); ok && isConst(b.R) {
		return c, b.R, b.Op, true
	}
	if c, ok := b.R.(*ColumnRef); ok && isConst(b.L) {
		return c, b.L, flipCmp(b.Op), true
	}
	return nil, nil, 0, false
}

// flipCmp mirrors a comparison operator for swapped operands.
func flipCmp(op BinOp) BinOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	}
	return op
}

// visitConjuncts calls fn for every AND-connected conjunct of e.
func visitConjuncts(e Expr, fn func(Expr) bool) {
	if b, ok := e.(*Binary); ok && b.Op == OpAnd {
		visitConjuncts(b.L, fn)
		visitConjuncts(b.R, fn)
		return
	}
	fn(e)
}

// isConst reports whether e evaluates to the same value for every row of one
// execution: literals always, parameters because their binding is fixed per
// execution.
func isConst(e Expr) bool {
	switch e.(type) {
	case *Literal, *Param:
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Join plans

type joinStrategy int

const (
	// joinNestedLoop rescans the right table per left tuple (no equi-key).
	joinNestedLoop joinStrategy = iota
	// joinHashBuild builds a hash table over the right table once per
	// execution (equi-key but no usable index).
	joinHashBuild
	// joinIndexLoop probes an existing index on the right column per left
	// tuple — no per-query build cost at all.
	joinIndexLoop
)

// joinPlan is the chosen strategy for one JOIN clause. kind is normalized
// at plan time: a RIGHT join becomes a LEFT join with swapped set (the
// executor drives from the syntactically-right relation and probes — and
// NULL-extends — the left one), and a CROSS join becomes an INNER join
// with a nil ON clause (every pair matches).
type joinPlan struct {
	kind     JoinKind
	on       Expr // full ON clause, re-checked per candidate; nil for CROSS
	strategy joinStrategy
	rightCol int  // probe relation's key column (joinHashBuild/joinIndexLoop)
	keyExpr  Expr // driving-side key expression (joinHashBuild/joinIndexLoop)
	idx      *Index
	// swapped marks a RIGHT join executed as LEFT with exchanged inputs:
	// the probe relation is rels[0] instead of rels[i+1].
	swapped bool
}

// ---------------------------------------------------------------------------
// Select plans

// selectPlan is the compiled, immutable execution plan of one SELECT.
// Everything mutable per execution (row values, parameters, aggregate
// accumulators, hash-join tables) lives in selectExec / RowEnv instead.
type selectPlan struct {
	st   *SelectStmt
	cols []envCol
	rels []relBinding

	// driver is the relation the access path scans (0 except for a RIGHT
	// join, which drives from the preserved right-hand relation).
	driver int

	access accessPlan
	joins  []joinPlan

	projExprs  []Expr
	projNames  []string
	havingExpr Expr
	orderExprs []Expr
	aggCalls   []*FuncCall
	grouped    bool

	// orderSatisfied means rows are produced in ORDER BY order already, so
	// the sort is skipped and LIMIT can stop the scan early.
	orderSatisfied bool

	// batch is the vectorized-execution coverage record (nil when no
	// batch leg applies); see batch_kernels.go.
	batch *batchShape
}

// newEnv builds a fresh row environment for one execution of the plan. The
// column layout is shared (read-only); values and parameters are private.
func (p *selectPlan) newEnv(args []Value) *RowEnv {
	return &RowEnv{cols: p.cols, vals: make([]Value, len(p.cols)), params: args}
}

// planner carries state while compiling one SELECT.
type planner struct {
	db   *DB
	env  *RowEnv // template environment: column layout only
	plan *selectPlan
}

// planSelect compiles a parsed SELECT into an executable plan.
func planSelect(db *DB, st *SelectStmt) (*selectPlan, error) {
	pl := &planner{db: db, env: &RowEnv{}, plan: &selectPlan{st: st}}
	if err := pl.setupRelations(); err != nil {
		return nil, err
	}
	if err := pl.setupProjection(); err != nil {
		return nil, err
	}
	p := pl.plan
	p.grouped = len(st.GroupBy) > 0 || len(p.aggCalls) > 0
	if err := pl.setupDriver(); err != nil {
		return nil, err
	}
	pl.planAccess()
	pl.planOrder()
	pl.planJoins()
	if err := pl.bindAll(); err != nil {
		return nil, err
	}
	p.cols = pl.env.cols
	// Kernel coverage needs bound column positions, so it compiles last.
	p.batch = compileBatchShape(p)
	return p, nil
}

func (pl *planner) setupRelations() error {
	st := pl.plan.st
	add := func(ref TableRef) error {
		t := pl.db.table(ref.Name)
		if t == nil {
			return fmt.Errorf("sqldb: no such table %q", ref.Name)
		}
		off := pl.env.Width()
		pl.env.AddRelation(ref.Binding(), t.Schema.Names())
		pl.plan.rels = append(pl.plan.rels, relBinding{
			table: t, qual: strings.ToLower(ref.Binding()), off: off, width: len(t.Schema.Columns),
		})
		return nil
	}
	if err := add(st.From); err != nil {
		return err
	}
	for _, j := range st.Joins {
		if err := add(j.Table); err != nil {
			return err
		}
	}
	return nil
}

// setupProjection expands stars, names output columns and rewrites
// aggregates into slots reading the group's precomputed values.
func (pl *planner) setupProjection() error {
	p := pl.plan
	for _, item := range p.st.Items {
		if item.Star {
			if err := pl.expandStar(item.Qual); err != nil {
				return err
			}
			continue
		}
		e, err := pl.rewriteAggs(item.Expr)
		if err != nil {
			return err
		}
		p.projExprs = append(p.projExprs, e)
		name := item.Alias
		if name == "" {
			name = projName(item.Expr)
		}
		p.projNames = append(p.projNames, name)
	}
	if p.st.Having != nil {
		h, err := pl.rewriteAggs(p.st.Having)
		if err != nil {
			return err
		}
		p.havingExpr = h
	}
	for _, o := range p.st.OrderBy {
		// ORDER BY <ordinal> references a select item.
		if lit, ok := o.Expr.(*Literal); ok {
			if n, ok := lit.Val.(int64); ok {
				if n < 1 || int(n) > len(p.projExprs) {
					return fmt.Errorf("sqldb: ORDER BY position %d out of range", n)
				}
				p.orderExprs = append(p.orderExprs, p.projExprs[n-1])
				continue
			}
		}
		// ORDER BY <alias> references a select item by its alias.
		if cr, ok := o.Expr.(*ColumnRef); ok && cr.Qual == "" {
			matched := false
			for i, name := range p.projNames {
				if strings.EqualFold(name, cr.Name) {
					// Only treat as alias when it is not a real column.
					if _, err := pl.env.Resolve("", cr.Name); err != nil {
						p.orderExprs = append(p.orderExprs, p.projExprs[i])
						matched = true
					}
					break
				}
			}
			if matched {
				continue
			}
		}
		e, err := pl.rewriteAggs(o.Expr)
		if err != nil {
			return err
		}
		p.orderExprs = append(p.orderExprs, e)
	}
	return nil
}

func (pl *planner) expandStar(qual string) error {
	q := strings.ToLower(qual)
	matched := false
	for _, rel := range pl.plan.rels {
		if q != "" && rel.qual != q {
			continue
		}
		matched = true
		for i, c := range rel.table.Schema.Columns {
			pl.plan.projExprs = append(pl.plan.projExprs, &fixedCol{pos: rel.off + i})
			pl.plan.projNames = append(pl.plan.projNames, c.Name)
		}
	}
	if !matched {
		return fmt.Errorf("sqldb: unknown table qualifier %q in select list", qual)
	}
	return nil
}

// rewriteAggs returns a copy of e with aggregate calls replaced by slots.
// It registers each aggregate in the plan's aggCalls.
func (pl *planner) rewriteAggs(e Expr) (Expr, error) {
	p := pl.plan
	switch x := e.(type) {
	case nil:
		return nil, nil
	case *Literal, *ColumnRef, *Param, *fixedCol:
		return e, nil
	case *FuncCall:
		if x.IsAggregate() {
			for _, a := range x.Args {
				hasAgg := false
				walkExpr(a, func(sub Expr) {
					if f, ok := sub.(*FuncCall); ok && f.IsAggregate() {
						hasAgg = true
					}
				})
				if hasAgg {
					return nil, fmt.Errorf("sqldb: nested aggregate in %s", x.Name)
				}
			}
			p.aggCalls = append(p.aggCalls, x)
			return &aggSlot{idx: len(p.aggCalls) - 1, name: x.String()}, nil
		}
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			na, err := pl.rewriteAggs(a)
			if err != nil {
				return nil, err
			}
			args[i] = na
		}
		return &FuncCall{Name: x.Name, Args: args}, nil
	case *Binary:
		l, err := pl.rewriteAggs(x.L)
		if err != nil {
			return nil, err
		}
		r, err := pl.rewriteAggs(x.R)
		if err != nil {
			return nil, err
		}
		return &Binary{Op: x.Op, L: l, R: r}, nil
	case *Unary:
		sub, err := pl.rewriteAggs(x.X)
		if err != nil {
			return nil, err
		}
		return &Unary{Op: x.Op, X: sub}, nil
	case *IsNull:
		sub, err := pl.rewriteAggs(x.X)
		if err != nil {
			return nil, err
		}
		return &IsNull{X: sub, Negate: x.Negate}, nil
	case *InList:
		sub, err := pl.rewriteAggs(x.X)
		if err != nil {
			return nil, err
		}
		items := make([]Expr, len(x.Items))
		for i, it := range x.Items {
			ni, err := pl.rewriteAggs(it)
			if err != nil {
				return nil, err
			}
			items[i] = ni
		}
		return &InList{X: sub, Items: items, Negate: x.Negate}, nil
	case *Between:
		sub, err := pl.rewriteAggs(x.X)
		if err != nil {
			return nil, err
		}
		lo, err := pl.rewriteAggs(x.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := pl.rewriteAggs(x.Hi)
		if err != nil {
			return nil, err
		}
		return &Between{X: sub, Lo: lo, Hi: hi, Negate: x.Negate}, nil
	}
	return e, nil
}

func projName(e Expr) string {
	if c, ok := e.(*ColumnRef); ok {
		return c.Name
	}
	return e.String()
}

// setupDriver picks the driving relation for the access path. It is the
// base relation except for a RIGHT join, which is normalized to a LEFT
// join by an input swap: the executor drives from the preserved right-hand
// relation and probes (NULL-extending on miss) the left one. The swap only
// has a sound access/NULL-extension story for a single join, so multi-join
// statements reject RIGHT at plan time with a clear error.
func (pl *planner) setupDriver() error {
	p := pl.plan
	for _, j := range p.st.Joins {
		if j.Kind != JoinRight {
			continue
		}
		if len(p.st.Joins) != 1 {
			return fmt.Errorf("sqldb: RIGHT JOIN is only supported as the sole join of a statement (rewrite as LEFT JOIN)")
		}
		p.driver = 1
	}
	return nil
}

// planAccess chooses the access path for the driving relation from the
// WHERE clause. Pushing WHERE conjuncts into the driver is sound even for
// outer joins because the driver is the preserved side: every output row
// carries a real driver row, and the full WHERE is re-checked per row, so
// access planning can only err on the side of inclusion.
func (pl *planner) planAccess() {
	p := pl.plan
	base := p.rels[p.driver]
	p.access = planTableAccess(base.table, p.st.Where, pl.baseResolver(), pl.db.noIndex.Load())
}

// baseResolver maps a column reference to a driver-relation column
// position, or -1 when the reference belongs elsewhere or is ambiguous
// across joined relations.
func (pl *planner) baseResolver() func(*ColumnRef) int {
	base := pl.plan.rels[pl.plan.driver]
	return func(col *ColumnRef) int {
		if col.Qual != "" && strings.ToLower(col.Qual) != base.qual {
			return -1
		}
		ci := base.table.Schema.ColumnIndex(col.Name)
		if ci < 0 {
			return -1
		}
		if col.Qual == "" {
			// Unqualified: require the name to resolve uniquely to the base
			// relation, otherwise leave the decision to evaluation.
			p, err := pl.env.Resolve("", col.Name)
			if err != nil || p < base.off || p >= base.off+base.width {
				return -1
			}
		}
		return ci
	}
}

// planOrder upgrades the access path to an ordered B-tree traversal when a
// single-column ORDER BY over the base relation can be served from an index,
// making the sort (and, with LIMIT, most of the scan) unnecessary.
func (pl *planner) planOrder() {
	p := pl.plan
	if p.grouped || len(p.st.OrderBy) != 1 || len(p.orderExprs) != 1 || pl.db.noIndex.Load() {
		return
	}
	base := p.rels[p.driver]
	pos := -1
	switch e := p.orderExprs[0].(type) {
	case *ColumnRef:
		rp, err := pl.env.Resolve(e.Qual, e.Name)
		if err != nil {
			return
		}
		pos = rp
	case *fixedCol:
		pos = e.pos
	default:
		return
	}
	if pos < base.off || pos >= base.off+base.width {
		return
	}
	ci := pos - base.off
	desc := p.st.OrderBy[0].Desc

	switch p.access.kind {
	case accessScan:
		idx := base.table.BTreeIndexOn(ci)
		if idx == nil {
			return
		}
		p.access = accessPlan{kind: accessRange, idx: idx, ordered: true, desc: desc}
		p.orderSatisfied = true
	case accessRange:
		if p.access.idx.Col == ci {
			p.access.ordered = true
			p.access.desc = desc
			p.orderSatisfied = true
		}
	case accessEq:
		// All candidates share the ORDER BY key, so row-ID emission order is
		// already a stable order for it; only the sort is skipped.
		if p.access.idx.Col == ci {
			p.orderSatisfied = true
		}
	}
}

// planJoins picks a strategy per JOIN clause: index-nested-loop when the
// probe column is indexed, hash build otherwise, nested loop without an
// equi-key. A CROSS join normalizes to an INNER join with a nil ON clause
// (pure nested loop, every pair matches); a RIGHT join normalizes to a
// LEFT join over swapped inputs, probing rels[0] instead of rels[i+1].
// The strategy choice depends only on the statement shape (never on
// machine knobs), and index candidates are emitted in row-ID order, so
// results are deterministic across index on/off.
func (pl *planner) planJoins() {
	p := pl.plan
	for i, j := range p.st.Joins {
		jp := joinPlan{kind: j.Kind, on: j.On, strategy: joinNestedLoop, rightCol: -1}
		probe := p.rels[i+1]
		switch j.Kind {
		case JoinCross:
			jp.kind = JoinInner
			p.joins = append(p.joins, jp)
			continue
		case JoinRight:
			jp.kind, jp.swapped = JoinLeft, true
			probe = p.rels[0]
		}
		driveOK := func(e Expr) bool { return pl.referencesOnlyBefore(e, probe.off) }
		if jp.swapped {
			drv := p.rels[p.driver]
			driveOK = func(e Expr) bool { return pl.referencesWithin(e, drv.off, drv.off+drv.width) }
		}
		probeCol, keyExpr := pl.findEquiKey(j.On, probe, driveOK)
		if probeCol >= 0 {
			jp.rightCol, jp.keyExpr = probeCol, keyExpr
			if idx := probe.table.IndexOn(probeCol); idx != nil && !pl.db.noIndex.Load() {
				jp.strategy, jp.idx = joinIndexLoop, idx
			} else {
				jp.strategy = joinHashBuild
			}
		}
		p.joins = append(p.joins, jp)
	}
}

// findEquiKey looks for `probe.col = keyExpr` (either side order) among
// the conjuncts of on, where the key expression satisfies driveOK (it
// references only relations already produced when the probe runs). It
// returns the probe column position and the key expression, or (-1, nil).
func (pl *planner) findEquiKey(on Expr, rel relBinding, driveOK func(Expr) bool) (int, Expr) {
	resCol := -1
	var resExpr Expr
	visitConjuncts(on, func(e Expr) bool {
		if resCol >= 0 {
			return true
		}
		b, ok := e.(*Binary)
		if !ok || b.Op != OpEq {
			return true
		}
		try := func(side, other Expr) bool {
			c, ok := side.(*ColumnRef)
			if !ok {
				return false
			}
			// The column must belong to the probe relation.
			q := strings.ToLower(c.Qual)
			if q != "" && q != rel.qual {
				return false
			}
			ci := rel.table.Schema.ColumnIndex(c.Name)
			if ci < 0 {
				return false
			}
			if q == "" {
				// Unqualified: require that the name resolves uniquely to
				// the probe relation.
				p, err := pl.env.Resolve("", c.Name)
				if err != nil || p < rel.off || p >= rel.off+rel.width {
					return false
				}
			}
			// The other side must be evaluable from the driving rows alone.
			if !driveOK(other) {
				return false
			}
			resCol, resExpr = ci, other
			return true
		}
		if try(b.L, b.R) {
			return true
		}
		try(b.R, b.L)
		return true
	})
	return resCol, resExpr
}

// referencesOnlyBefore reports whether all column references in e resolve
// to environment positions before off.
func (pl *planner) referencesOnlyBefore(e Expr, off int) bool {
	ok := true
	walkExpr(e, func(sub Expr) {
		switch c := sub.(type) {
		case *ColumnRef:
			p, err := pl.env.Resolve(c.Qual, c.Name)
			if err != nil || p >= off {
				ok = false
			}
		case *fixedCol:
			if c.pos >= off {
				ok = false
			}
		}
	})
	return ok
}

// referencesWithin reports whether all column references in e resolve to
// environment positions in [lo, hi).
func (pl *planner) referencesWithin(e Expr, lo, hi int) bool {
	ok := true
	walkExpr(e, func(sub Expr) {
		switch c := sub.(type) {
		case *ColumnRef:
			p, err := pl.env.Resolve(c.Qual, c.Name)
			if err != nil || p < lo || p >= hi {
				ok = false
			}
		case *fixedCol:
			if c.pos < lo || c.pos >= hi {
				ok = false
			}
		}
	})
	return ok
}

// bindAll eagerly resolves every column reference in the plan's expressions
// so execution never mutates the shared AST and resolution errors surface at
// plan time.
func (pl *planner) bindAll() error {
	p := pl.plan
	exprs := []Expr{p.st.Where, p.havingExpr}
	exprs = append(exprs, p.projExprs...)
	exprs = append(exprs, p.orderExprs...)
	exprs = append(exprs, p.st.GroupBy...)
	for _, call := range p.aggCalls {
		exprs = append(exprs, call.Args...)
	}
	for _, j := range p.joins {
		exprs = append(exprs, j.on, j.keyExpr)
	}
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if err := bindColumns(e, pl.env); err != nil {
			return err
		}
	}
	// LIMIT/OFFSET evaluate outside any row, so a column reference there
	// (e.g. the typo'd "LIMIT 1O") would read leftover row state; reject it.
	for _, e := range []Expr{p.st.Limit, p.st.Offset} {
		if e == nil {
			continue
		}
		bad := false
		walkExpr(e, func(x Expr) {
			switch x.(type) {
			case *ColumnRef, *fixedCol:
				bad = true
			}
		})
		if bad {
			return fmt.Errorf("sqldb: LIMIT/OFFSET must not reference columns")
		}
	}
	return nil
}
