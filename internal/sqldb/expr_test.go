package sqldb

import (
	"regexp"
	"strings"
	"testing"
	"testing/quick"
)

func evalSQL(t *testing.T, expr string) Value {
	t.Helper()
	db := NewDB()
	mustExec(t, db, "CREATE TABLE one (x INTEGER)")
	mustExec(t, db, "INSERT INTO one VALUES (1)")
	rs := mustQuery(t, db, "SELECT "+expr+" FROM one")
	return rs.Rows[0][0]
}

func TestThreeValuedLogic(t *testing.T) {
	// Kleene truth tables: T=true, F=false, N=NULL.
	cases := []struct {
		expr string
		want Value // nil = NULL
	}{
		{"TRUE AND TRUE", true},
		{"TRUE AND FALSE", false},
		{"TRUE AND NULL", nil},
		{"FALSE AND NULL", false}, // false dominates
		{"NULL AND NULL", nil},
		{"TRUE OR NULL", true}, // true dominates
		{"FALSE OR NULL", nil},
		{"FALSE OR FALSE", false},
		{"NULL OR NULL", nil},
		{"NOT NULL", nil},
		{"NOT TRUE", false},
		{"NULL = NULL", nil},
		{"1 = NULL", nil},
		{"1 <> NULL", nil},
		{"NULL IS NULL", true},
		{"NULL IS NOT NULL", false},
		{"1 + NULL", nil},
		{"NULL BETWEEN 1 AND 2", nil},
		{"1 IN (NULL)", nil},
		{"1 IN (1, NULL)", true},
		{"2 NOT IN (1, NULL)", nil}, // unknown because of the NULL
		{"2 NOT IN (1, 3)", true},
	}
	for _, c := range cases {
		got := evalSQL(t, c.expr)
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestLikeSemantics(t *testing.T) {
	cases := []struct {
		s, pattern string
		want       bool
	}{
		{"abc", "abc", true},
		{"abc", "a%", true},
		{"abc", "%c", true},
		{"abc", "%b%", true},
		{"abc", "a_c", true},
		{"abc", "a_", false},
		{"abc", "_", false},
		{"", "%", true},
		{"", "_", false},
		{"abc", "", false},
		{"a%c", "a%c", true}, // % in pattern is a wildcard, still matches
		{"aXXXc", "a%c", true},
		{"abcabc", "%abc", true},
		{"mississippi", "%iss%ppi", true},
		{"mississippi", "m%i%s%p_", true},
		{"ABC", "abc", false}, // case-sensitive
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.pattern); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.pattern, got, c.want)
		}
	}
}

// TestLikeMatchesRegexpOracle cross-checks the two-pointer LIKE matcher
// against a regexp translation on random inputs.
func TestLikeMatchesRegexpOracle(t *testing.T) {
	alphabet := []byte("ab%_")
	f := func(sRaw, pRaw []byte) bool {
		var s, p strings.Builder
		for _, c := range sRaw {
			ch := alphabet[int(c)%2] // strings contain only a/b
			s.WriteByte(ch)
		}
		for _, c := range pRaw {
			p.WriteByte(alphabet[int(c)%4])
		}
		pattern := p.String()
		var re strings.Builder
		re.WriteString("^")
		for i := 0; i < len(pattern); i++ {
			switch pattern[i] {
			case '%':
				re.WriteString(".*")
			case '_':
				re.WriteString(".")
			default:
				re.WriteByte(pattern[i])
			}
		}
		re.WriteString("$")
		want := regexp.MustCompile(re.String()).MatchString(s.String())
		return likeMatch(s.String(), pattern) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestScalarFunctionErrors(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (n INTEGER, s TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 'x')")
	bad := []string{
		"SELECT LOWER(n) FROM t",
		"SELECT LENGTH(n) FROM t",
		"SELECT ABS(s) FROM t",
		"SELECT SUBSTR(s) FROM t",
		"SELECT SUBSTR(s, 'a') FROM t",
		"SELECT NOSUCHFUNC(s) FROM t",
		"SELECT LOWER(s, s) FROM t",
	}
	for _, sql := range bad {
		if _, err := db.Query(sql); err == nil {
			t.Errorf("expected error for %s", sql)
		}
	}
}

func TestScalarFunctionNullPropagation(t *testing.T) {
	for _, expr := range []string{"LOWER(NULL)", "UPPER(NULL)", "LENGTH(NULL)", "ABS(NULL)", "TRIM(NULL)", "SUBSTR(NULL, 1)"} {
		if got := evalSQL(t, expr); got != nil {
			t.Errorf("%s = %v, want NULL", expr, got)
		}
	}
}

func TestSubstrEdgeCases(t *testing.T) {
	cases := []struct {
		expr string
		want Value
	}{
		{"SUBSTR('hello', 1, 2)", "he"},
		{"SUBSTR('hello', 2)", "ello"},
		{"SUBSTR('hello', 0)", "hello"},
		{"SUBSTR('hello', 10)", ""},
		{"SUBSTR('hello', 1, 0)", ""},
		{"SUBSTR('hello', 1, 100)", "hello"},
		{"SUBSTR('hello', 4, -1)", ""},
	}
	for _, c := range cases {
		if got := evalSQL(t, c.expr); got != c.want {
			t.Errorf("%s = %q, want %q", c.expr, got, c.want)
		}
	}
}

func TestExprString(t *testing.T) {
	// Expression rendering is used in error messages and column naming.
	sql := "SELECT x + 1, x IS NULL, x IN (1, 2), x BETWEEN 1 AND 2, NOT x, -x, COUNT(*), LOWER('A''B') FROM one"
	db := NewDB()
	mustExec(t, db, "CREATE TABLE one (x INTEGER)")
	mustExec(t, db, "INSERT INTO one VALUES (1)")
	rs := mustQuery(t, db, sql)
	for i, name := range rs.Columns {
		if name == "" {
			t.Errorf("column %d has no derived name", i)
		}
	}
	if rs.Columns[6] != "COUNT(*)" {
		t.Errorf("count column name = %q", rs.Columns[6])
	}
}

func TestSoftKeywordColumns(t *testing.T) {
	// Columns named like type keywords or aggregates work unquoted.
	db := NewDB()
	mustExec(t, db, "CREATE TABLE gam_like (text TEXT, count INTEGER, min REAL)")
	mustExec(t, db, "INSERT INTO gam_like VALUES ('hello', 3, 1.5)")
	rs := mustQuery(t, db, "SELECT text, count, min FROM gam_like WHERE count > 1")
	if rs.Rows[0][0] != "hello" || rs.Rows[0][1] != int64(3) || rs.Rows[0][2] != 1.5 {
		t.Fatalf("soft keyword columns = %v", rs.Rows[0])
	}
	// Qualified soft-keyword column.
	rs = mustQuery(t, db, "SELECT gam_like.text FROM gam_like")
	if rs.Rows[0][0] != "hello" {
		t.Fatalf("qualified soft keyword = %v", rs.Rows[0])
	}
	// Aggregates still work alongside.
	rs = mustQuery(t, db, "SELECT COUNT(*), MAX(count) FROM gam_like")
	if rs.Rows[0][0] != int64(1) || rs.Rows[0][1] != int64(3) {
		t.Fatalf("aggregate over soft columns = %v", rs.Rows[0])
	}
}

func TestDeepExpressionNesting(t *testing.T) {
	// Parser and evaluator handle reasonably deep nesting.
	expr := "1"
	for i := 0; i < 200; i++ {
		expr = "(" + expr + " + 1)"
	}
	got := evalSQL(t, expr)
	if got != int64(201) {
		t.Fatalf("deep nesting = %v", got)
	}
}

func TestComparisonAcrossNumericTypes(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (i INTEGER, f REAL)")
	mustExec(t, db, "INSERT INTO t VALUES (2, 2.0), (3, 2.5)")
	rs := mustQuery(t, db, "SELECT COUNT(*) FROM t WHERE i = f")
	if rs.Rows[0][0] != int64(1) {
		t.Errorf("int/float equality count = %v", rs.Rows[0][0])
	}
	rs = mustQuery(t, db, "SELECT COUNT(*) FROM t WHERE i > f")
	if rs.Rows[0][0] != int64(1) {
		t.Errorf("int/float greater count = %v", rs.Rows[0][0])
	}
}
