package sqldb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBTreeInsertAscend(t *testing.T) {
	bt := newBTree()
	const n = 1000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, v := range perm {
		bt.Insert(int64(v), int64(v))
	}
	if bt.Len() != n {
		t.Fatalf("Len = %d, want %d", bt.Len(), n)
	}
	var got []int64
	bt.Ascend(func(k Value, row int64) bool {
		got = append(got, k.(int64))
		return true
	})
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("out of order at %d: %d >= %d", i, got[i-1], got[i])
		}
	}
	if msg := bt.checkInvariants(); msg != "" {
		t.Fatalf("invariant violated: %s", msg)
	}
}

func TestBTreeDuplicateKeys(t *testing.T) {
	bt := newBTree()
	for row := int64(0); row < 100; row++ {
		bt.Insert("same", row)
	}
	if bt.Len() != 100 {
		t.Fatalf("Len = %d, want 100 (duplicate keys with distinct rows)", bt.Len())
	}
	// Exact duplicate (key,row) is a no-op.
	bt.Insert("same", 50)
	if bt.Len() != 100 {
		t.Fatalf("exact duplicate changed Len to %d", bt.Len())
	}
}

func TestBTreeDelete(t *testing.T) {
	bt := newBTree()
	const n = 500
	for i := 0; i < n; i++ {
		bt.Insert(int64(i), int64(i))
	}
	rng := rand.New(rand.NewSource(2))
	perm := rng.Perm(n)
	for i, v := range perm {
		if !bt.Delete(int64(v), int64(v)) {
			t.Fatalf("Delete(%d) returned false", v)
		}
		if bt.Len() != n-i-1 {
			t.Fatalf("Len = %d after %d deletions", bt.Len(), i+1)
		}
		if msg := bt.checkInvariants(); msg != "" {
			t.Fatalf("invariant violated after deleting %d: %s", v, msg)
		}
	}
	if bt.Delete(int64(0), 0) {
		t.Fatal("Delete on empty tree returned true")
	}
}

func TestBTreeDeleteMissing(t *testing.T) {
	bt := newBTree()
	bt.Insert(int64(1), 1)
	if bt.Delete(int64(1), 2) {
		t.Fatal("Delete with wrong row ID should fail")
	}
	if bt.Delete(int64(2), 1) {
		t.Fatal("Delete with missing key should fail")
	}
	if bt.Len() != 1 {
		t.Fatalf("Len = %d, want 1", bt.Len())
	}
}

func TestBTreeRange(t *testing.T) {
	bt := newBTree()
	for i := 0; i < 100; i++ {
		bt.Insert(int64(i), int64(i))
	}
	collect := func(lo, hi Value, hasLo, hasHi, loIncl, hiIncl bool) []int64 {
		var out []int64
		bt.AscendRange(lo, hi, hasLo, hasHi, loIncl, hiIncl, func(k Value, _ int64) bool {
			out = append(out, k.(int64))
			return true
		})
		return out
	}
	got := collect(int64(10), int64(15), true, true, true, true)
	want := []int64{10, 11, 12, 13, 14, 15}
	if !equalInt64s(got, want) {
		t.Errorf("inclusive range = %v, want %v", got, want)
	}
	got = collect(int64(10), int64(15), true, true, false, false)
	want = []int64{11, 12, 13, 14}
	if !equalInt64s(got, want) {
		t.Errorf("exclusive range = %v, want %v", got, want)
	}
	got = collect(int64(95), nil, true, false, true, true)
	want = []int64{95, 96, 97, 98, 99}
	if !equalInt64s(got, want) {
		t.Errorf("open upper range = %v, want %v", got, want)
	}
	got = collect(nil, int64(3), false, true, true, true)
	want = []int64{0, 1, 2, 3}
	if !equalInt64s(got, want) {
		t.Errorf("open lower range = %v, want %v", got, want)
	}
}

func TestBTreeEarlyStop(t *testing.T) {
	bt := newBTree()
	for i := 0; i < 100; i++ {
		bt.Insert(int64(i), int64(i))
	}
	count := 0
	bt.Ascend(func(Value, int64) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d entries, want 5", count)
	}
}

func equalInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBTreeInvariantsProperty drives the tree with random operation
// sequences and validates structural invariants throughout.
func TestBTreeInvariantsProperty(t *testing.T) {
	f := func(seed int64, opsRaw []uint16) bool {
		bt := newBTree()
		live := map[int64]bool{}
		rng := rand.New(rand.NewSource(seed))
		for _, raw := range opsRaw {
			v := int64(raw % 256)
			if rng.Intn(3) > 0 {
				bt.Insert(v, v)
				live[v] = true
			} else {
				got := bt.Delete(v, v)
				if got != live[v] {
					return false
				}
				delete(live, v)
			}
			if bt.Len() != len(live) {
				return false
			}
		}
		if msg := bt.checkInvariants(); msg != "" {
			t.Logf("invariant: %s", msg)
			return false
		}
		// Content check.
		seen := map[int64]bool{}
		bt.Ascend(func(k Value, _ int64) bool {
			seen[k.(int64)] = true
			return true
		})
		if len(seen) != len(live) {
			return false
		}
		for v := range live {
			if !seen[v] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestBTreeDepthGrowth(t *testing.T) {
	bt := newBTree()
	if bt.depth() != 1 {
		t.Fatalf("empty tree depth = %d", bt.depth())
	}
	for i := 0; i < 10000; i++ {
		bt.Insert(int64(i), int64(i))
	}
	if d := bt.depth(); d < 2 || d > 5 {
		t.Fatalf("depth after 10k inserts = %d, expected small logarithmic depth", d)
	}
}
