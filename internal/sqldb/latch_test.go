package sqldb

// Concurrent MVCC writer tests: per-partition write latching (latch.go).
// Disjoint writers must run concurrently and correctly; overlapping
// writers must resolve to exactly one winner per row; latch waits are
// counted; statements that cannot run latched fall back to the global
// writer path. The multi-writer tests are in the CI race-shake matrix.

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// multiWriterDB builds a table large enough that disjoint writers spread
// over every partition.
func multiWriterDB(t *testing.T, rows int) *DB {
	t.Helper()
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (id INTEGER PRIMARY KEY, n INTEGER, v TEXT)")
	for i := 0; i < rows; i++ {
		mustExec(t, db, "INSERT INTO t VALUES (?, ?, ?)", i, 0, fmt.Sprintf("val%d", i))
	}
	db.SetMVCC(true)
	return db
}

// N goroutines auto-commit UPDATEs over disjoint key ranges; every
// increment must land exactly once and nothing may conflict.
func TestMVCCMultiWriterDisjoint(t *testing.T) {
	const writers, rows, rounds = 4, 64, 25
	db := multiWriterDB(t, rows)
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for id := w; id < rows; id += writers {
					if _, err := db.Exec("UPDATE t SET n = n + 1 WHERE id = ?", id); err != nil {
						errs <- fmt.Errorf("writer %d round %d id %d: %w", w, r, id, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if got := countRows(t, db.Query, "SELECT SUM(n) FROM t"); got != rows*rounds {
		t.Fatalf("SUM(n) = %d, want %d (lost or duplicated updates)", got, rows*rounds)
	}
	if got := countRows(t, db.Query, "SELECT COUNT(*) FROM t WHERE n <> ?", rounds); got != 0 {
		t.Fatalf("%d rows have a wrong increment count", got)
	}
	if st := db.MVCCStats(); st.ActiveSnapshots != 0 {
		t.Fatalf("leaked snapshot registrations: %+v", st)
	}
}

// Conflict-heavy leg: per round, N transactions capture the same snapshot
// (barrier after Begin) and write the same row. First-committer-wins must
// let exactly one commit; every loser observes ErrWriteConflict.
func TestMVCCMultiWriterConflictOneWinner(t *testing.T) {
	const writers, rounds = 4, 20
	db := multiWriterDB(t, 8)
	totalWins := 0
	for r := 0; r < rounds; r++ {
		var begun, done sync.WaitGroup
		begun.Add(writers)
		done.Add(writers)
		results := make(chan error, writers)
		for w := 0; w < writers; w++ {
			go func(w int) {
				defer done.Done()
				tx := db.Begin()
				begun.Done()
				begun.Wait() // everyone's snapshot predates every commit
				if _, err := tx.Exec("UPDATE t SET n = ? WHERE id = 3", w); err != nil {
					tx.Rollback()
					results <- err
					return
				}
				results <- tx.Commit()
			}(w)
		}
		done.Wait()
		wins := 0
		for w := 0; w < writers; w++ {
			err := <-results
			if err == nil {
				wins++
				continue
			}
			if !errors.Is(err, ErrWriteConflict) {
				t.Fatalf("round %d: loser failed with %v, want ErrWriteConflict", r, err)
			}
		}
		if wins != 1 {
			t.Fatalf("round %d: %d winners, want exactly 1", r, wins)
		}
		totalWins += wins
	}
	if totalWins != rounds {
		t.Fatalf("total winners %d, want %d", totalWins, rounds)
	}
	if st := db.MVCCStats(); st.ActiveSnapshots != 0 {
		t.Fatalf("leaked snapshot registrations: %+v", st)
	}
}

// A held partition latch blocks an overlapping writer and the wait is
// counted in latch_waits. The latch is taken directly (same package), so
// the contention is deterministic, not a scheduling race.
func TestMVCCLatchWaitCounted(t *testing.T) {
	db := multiWriterDB(t, 16)
	tbl := db.table("t")
	before := db.MVCCStats().LatchWaits
	ls := tbl.acquireLatches(db, []int{int(uint64(3) % uint64(tbl.PartitionCount()))})
	execDone := make(chan error, 1)
	go func() {
		_, err := db.Exec("UPDATE t SET v = 'blocked' WHERE id = 3")
		execDone <- err
	}()
	deadline := time.After(5 * time.Second)
	for db.MVCCStats().LatchWaits == before {
		select {
		case err := <-execDone:
			t.Fatalf("writer finished (err=%v) while its partition latch was held", err)
		case <-deadline:
			t.Fatal("latch_waits never moved while an overlapping writer was blocked")
		case <-time.After(time.Millisecond):
		}
	}
	ls.release()
	if err := <-execDone; err != nil {
		t.Fatalf("blocked writer failed after latch release: %v", err)
	}
	rs, err := db.Query("SELECT v FROM t WHERE id = 3")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0] != "blocked" {
		t.Fatalf("v = %v, want the blocked writer's update", rs.Rows[0][0])
	}
}

// Statement eligibility: plain UPDATEs and DELETEs run latched; UPDATEs
// that set a unique-indexed column (the PK here) must take the global
// writer path, because the uniqueness probe is not atomic across
// partition latches. INSERT and DDL are never eligible.
func TestLatchEligibility(t *testing.T) {
	db := multiWriterDB(t, 8)
	cases := []struct {
		sql     string
		latched bool
	}{
		{"UPDATE t SET n = n + 1 WHERE id = 1", true},
		{"UPDATE t SET v = 'x' WHERE n = 0", true},
		{"DELETE FROM t WHERE id = 7", true},
		{"UPDATE t SET id = 100 WHERE id = 1", false}, // sets the PK
		{"INSERT INTO t VALUES (200, 0, 'ins')", false},
		{"CREATE TABLE other (id INTEGER)", false},
	}
	for _, c := range cases {
		p, err := db.stmts.get(db, c.sql).ensure(db)
		if err != nil {
			t.Fatalf("%s: %v", c.sql, err)
		}
		if got := latchEligible(p) != nil; got != c.latched {
			t.Errorf("latchEligible(%q) = %v, want %v", c.sql, got, c.latched)
		}
	}
	// The ineligible PK update still executes correctly on the fallback
	// path, and uniqueness stays enforced.
	if _, err := db.Exec("UPDATE t SET id = 100 WHERE id = 1"); err != nil {
		t.Fatalf("PK update on fallback path: %v", err)
	}
	if _, err := db.Exec("UPDATE t SET id = 100 WHERE id = 2"); err == nil {
		t.Fatal("duplicate PK update succeeded")
	} else {
		var ue *UniqueError
		if !errors.As(err, &ue) {
			t.Fatalf("duplicate PK update failed with %v, want UniqueError", err)
		}
	}
}

// Flipping SetMVCC under concurrent transactional and query load must
// drain cleanly: no stranded provisional versions, no torn states, no
// leaked snapshots. Run with -race in CI.
func TestSetMVCCUnderConcurrentLoad(t *testing.T) {
	db := multiWriterDB(t, 32)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 8)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tx := db.Begin()
				_, err := tx.Exec("UPDATE t SET n = n + 1 WHERE id = ?", (w*11+i)%32)
				if err != nil {
					tx.Rollback()
					if !errors.Is(err, ErrWriteConflict) {
						errs <- err
						return
					}
					continue
				}
				if err := tx.Commit(); err != nil && !errors.Is(err, ErrWriteConflict) {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.Query("SELECT SUM(n), COUNT(*) FROM t"); err != nil {
				errs <- err
				return
			}
		}
	}()

	for flip := 0; flip < 6; flip++ {
		time.Sleep(10 * time.Millisecond)
		db.SetMVCC(flip%2 == 0)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	// Whatever mode we ended in: every version chain must resolve to a
	// committed state (a stranded provisional version would make the row
	// invisible) and the snapshot tracker must be empty.
	db.SetMVCC(true)
	if got := countRows(t, db.Query, "SELECT COUNT(*) FROM t"); got != 32 {
		t.Fatalf("COUNT(*) = %d after mode flips, want 32", got)
	}
	if st := db.MVCCStats(); st.ActiveSnapshots != 0 {
		t.Fatalf("leaked snapshot registrations: %+v", st)
	}
	db.Vacuum()
	if got := countRows(t, db.Query, "SELECT COUNT(*) FROM t"); got != 32 {
		t.Fatalf("COUNT(*) = %d after vacuum, want 32", got)
	}
}
