package sqldb

import (
	"fmt"
	"strings"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// SelectStmt is a parsed SELECT.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     TableRef
	Joins    []JoinClause
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    Expr // nil when absent
	Offset   Expr // nil when absent
}

// SelectItem is one projection in the SELECT list. Star items project all
// columns (optionally of one qualifier: `t.*`).
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
	Qual  string // qualifier for `t.*`
}

// TableRef names a base table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// Binding returns the name queries use to qualify this table's columns.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// JoinKind distinguishes join types.
type JoinKind int

// Supported join types. RIGHT joins are normalized to LEFT joins by an
// input swap at plan time; CROSS joins have no ON clause.
const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinRight
	JoinCross
)

// String renders the SQL spelling of the join type.
func (k JoinKind) String() string {
	switch k {
	case JoinInner:
		return "INNER"
	case JoinLeft:
		return "LEFT"
	case JoinRight:
		return "RIGHT"
	case JoinCross:
		return "CROSS"
	}
	return "JOIN"
}

// JoinClause is one JOIN ... ON ... segment. On is nil for CROSS joins.
type JoinClause struct {
	Kind  JoinKind
	Table TableRef
	On    Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// InsertStmt is a parsed INSERT.
type InsertStmt struct {
	Table   string
	Columns []string // empty means all columns in schema order
	Rows    [][]Expr
}

// UpdateStmt is a parsed UPDATE.
type UpdateStmt struct {
	Table string
	Sets  []SetClause
	Where Expr
}

// SetClause is one `col = expr` assignment.
type SetClause struct {
	Column string
	Expr   Expr
}

// DeleteStmt is a parsed DELETE.
type DeleteStmt struct {
	Table string
	Where Expr
}

// CreateTableStmt is a parsed CREATE TABLE.
type CreateTableStmt struct {
	Name        string
	Columns     []Column
	IfNotExists bool
}

// CreateIndexStmt is a parsed CREATE [UNIQUE] INDEX.
type CreateIndexStmt struct {
	Name        string
	Table       string
	Column      string
	Kind        IndexKind
	Unique      bool
	IfNotExists bool
}

// DropTableStmt is a parsed DROP TABLE.
type DropTableStmt struct {
	Name     string
	IfExists bool
}

// DropIndexStmt is a parsed DROP INDEX name ON table.
type DropIndexStmt struct {
	Name     string
	Table    string
	IfExists bool
}

// ExplainStmt wraps another statement for plan inspection:
// EXPLAIN [ (FORMAT JSON|TEXT) ] <stmt>. Format is "json" or "text"
// (the default).
type ExplainStmt struct {
	Format string
	Stmt   Statement
}

// BeginStmt, CommitStmt and RollbackStmt control transactions.
type BeginStmt struct{}

// CommitStmt commits the current transaction.
type CommitStmt struct{}

// RollbackStmt aborts the current transaction.
type RollbackStmt struct{}

func (*SelectStmt) stmt()      {}
func (*ExplainStmt) stmt()     {}
func (*InsertStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*CreateTableStmt) stmt() {}
func (*CreateIndexStmt) stmt() {}
func (*DropTableStmt) stmt()   {}
func (*DropIndexStmt) stmt()   {}
func (*BeginStmt) stmt()       {}
func (*CommitStmt) stmt()      {}
func (*RollbackStmt) stmt()    {}

// Parse parses a single SQL statement. A trailing semicolon is permitted.
func Parse(sql string) (Statement, error) {
	toks, err := lexSQL(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: sql}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errf("unexpected trailing input %q", p.cur().text)
	}
	return st, nil
}

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	if t.kind != kind {
		return false
	}
	return text == "" || t.text == text
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		switch kind {
		case tokIdent:
			want = "identifier"
		case tokNumber:
			want = "number"
		default:
			want = "token"
		}
	}
	return token{}, p.errf("expected %s, found %q", want, p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqldb: parse error at offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

// softKeywords may be used as plain identifiers (column and table names)
// where the grammar is unambiguous, so that schemas can have columns like
// "text" or "count" without quoting.
var softKeywords = map[string]bool{
	"TEXT": true, "INTEGER": true, "INT": true, "REAL": true, "FLOAT": true,
	"BOOLEAN": true, "BOOL": true, "VARCHAR": true, "HASH": true,
	"BTREE": true, "KEY": true, "COUNT": true, "SUM": true, "AVG": true,
	"MIN": true, "MAX": true, "FORMAT": true, "JSON": true,
}

// expectIdent accepts an identifier or a soft keyword used as a name.
func (p *parser) expectIdent() (token, error) {
	t := p.cur()
	if t.kind == tokIdent || (t.kind == tokKeyword && softKeywords[t.text]) {
		p.pos++
		return t, nil
	}
	return token{}, p.errf("expected identifier, found %q", t.text)
}

// atIdent reports whether the current token can serve as an identifier.
func (p *parser) atIdent() bool {
	t := p.cur()
	return t.kind == tokIdent || (t.kind == tokKeyword && softKeywords[t.text])
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.cur()
	if t.kind != tokKeyword {
		return nil, p.errf("expected statement keyword, found %q", t.text)
	}
	switch t.text {
	case "SELECT":
		return p.parseSelect()
	case "EXPLAIN":
		return p.parseExplain()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	case "BEGIN":
		p.next()
		p.accept(tokKeyword, "TRANSACTION")
		return &BeginStmt{}, nil
	case "COMMIT":
		p.next()
		return &CommitStmt{}, nil
	case "ROLLBACK":
		p.next()
		return &RollbackStmt{}, nil
	}
	return nil, p.errf("unsupported statement %q", t.text)
}

// parseExplain parses EXPLAIN [ (FORMAT JSON|TEXT) ] <stmt>.
func (p *parser) parseExplain() (*ExplainStmt, error) {
	p.next() // EXPLAIN
	st := &ExplainStmt{Format: "text"}
	if p.accept(tokSymbol, "(") {
		if _, err := p.expect(tokKeyword, "FORMAT"); err != nil {
			return nil, err
		}
		switch {
		case p.accept(tokKeyword, "JSON"):
			st.Format = "json"
		case p.accept(tokKeyword, "TEXT"):
			st.Format = "text"
		default:
			return nil, p.errf("expected JSON or TEXT after FORMAT")
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
	}
	if p.at(tokKeyword, "EXPLAIN") {
		return nil, p.errf("EXPLAIN cannot be nested")
	}
	inner, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	st.Stmt = inner
	return st, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	p.next() // SELECT
	st := &SelectStmt{}
	st.Distinct = p.accept(tokKeyword, "DISTINCT")

	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}

	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	ref, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	st.From = ref

	for {
		kind, isJoin := JoinInner, false
		switch {
		case p.at(tokKeyword, "JOIN"):
			p.next()
			isJoin = true
		case p.at(tokKeyword, "INNER"):
			p.next()
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
			isJoin = true
		case p.at(tokKeyword, "LEFT"):
			p.next()
			p.accept(tokKeyword, "OUTER")
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
			kind, isJoin = JoinLeft, true
		case p.at(tokKeyword, "RIGHT"):
			p.next()
			p.accept(tokKeyword, "OUTER")
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
			kind, isJoin = JoinRight, true
		case p.at(tokKeyword, "CROSS"):
			p.next()
			if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
				return nil, err
			}
			kind, isJoin = JoinCross, true
		}
		if !isJoin {
			break
		}
		jt, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		var on Expr
		if kind != JoinCross {
			if _, err := p.expect(tokKeyword, "ON"); err != nil {
				return nil, err
			}
			on, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		st.Joins = append(st.Joins, JoinClause{Kind: kind, Table: jt, On: on})
	}

	if p.accept(tokKeyword, "WHERE") {
		st.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "HAVING") {
		st.Having, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			st.OrderBy = append(st.OrderBy, item)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		st.Limit, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if p.accept(tokKeyword, "OFFSET") {
		st.Offset, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	// `*`
	if p.accept(tokSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	// `t.*`
	if p.cur().kind == tokIdent && p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "." &&
		p.toks[p.pos+2].kind == tokSymbol && p.toks[p.pos+2].text == "*" {
		qual := p.next().text
		p.next() // .
		p.next() // *
		return SelectItem{Star: true, Qual: qual}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(tokKeyword, "AS") {
		t, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = t.text
	} else if p.cur().kind == tokIdent {
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	t, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: t.text}
	if p.accept(tokKeyword, "AS") {
		a, err := p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = a.text
	} else if p.cur().kind == tokIdent {
		ref.Alias = p.next().text
	}
	return ref, nil
}

func (p *parser) parseInsert() (*InsertStmt, error) {
	p.next() // INSERT
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	t, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: t.text}
	if p.accept(tokSymbol, "(") {
		for {
			c, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, c.text)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	return st, nil
}

func (p *parser) parseUpdate() (*UpdateStmt, error) {
	p.next() // UPDATE
	t, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: t.text}
	if _, err := p.expect(tokKeyword, "SET"); err != nil {
		return nil, err
	}
	for {
		c, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Sets = append(st.Sets, SetClause{Column: c.text, Expr: e})
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		st.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) parseDelete() (*DeleteStmt, error) {
	p.next() // DELETE
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	t, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: t.text}
	if p.accept(tokKeyword, "WHERE") {
		st.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) parseCreate() (Statement, error) {
	p.next() // CREATE
	unique := p.accept(tokKeyword, "UNIQUE")
	switch {
	case p.accept(tokKeyword, "TABLE"):
		if unique {
			return nil, p.errf("UNIQUE is not valid before TABLE")
		}
		return p.parseCreateTable()
	case p.accept(tokKeyword, "INDEX"):
		return p.parseCreateIndex(unique)
	}
	return nil, p.errf("expected TABLE or INDEX after CREATE")
}

func (p *parser) parseIfNotExists() (bool, error) {
	if !p.accept(tokKeyword, "IF") {
		return false, nil
	}
	if _, err := p.expect(tokKeyword, "NOT"); err != nil {
		return false, err
	}
	if _, err := p.expect(tokKeyword, "EXISTS"); err != nil {
		return false, err
	}
	return true, nil
}

func (p *parser) parseCreateTable() (*CreateTableStmt, error) {
	ifNotExists, err := p.parseIfNotExists()
	if err != nil {
		return nil, err
	}
	t, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &CreateTableStmt{Name: t.text, IfNotExists: ifNotExists}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	for {
		col, err := p.parseColumnDef()
		if err != nil {
			return nil, err
		}
		st.Columns = append(st.Columns, col)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) parseColumnDef() (Column, error) {
	name, err := p.expectIdent()
	if err != nil {
		return Column{}, err
	}
	col := Column{Name: name.text}
	typ := p.cur()
	if typ.kind != tokKeyword {
		return Column{}, p.errf("expected column type, found %q", typ.text)
	}
	switch typ.text {
	case "INTEGER", "INT":
		col.Type = TypeInt
	case "REAL", "FLOAT":
		col.Type = TypeFloat
	case "TEXT", "VARCHAR":
		col.Type = TypeText
	case "BOOLEAN", "BOOL":
		col.Type = TypeBool
	default:
		return Column{}, p.errf("unsupported column type %q", typ.text)
	}
	p.next()
	// VARCHAR(255)-style size suffixes are accepted and ignored.
	if p.accept(tokSymbol, "(") {
		if _, err := p.expect(tokNumber, ""); err != nil {
			return Column{}, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return Column{}, err
		}
	}
	for {
		switch {
		case p.accept(tokKeyword, "PRIMARY"):
			if _, err := p.expect(tokKeyword, "KEY"); err != nil {
				return Column{}, err
			}
			col.PrimaryKey = true
		case p.accept(tokKeyword, "AUTOINCREMENT"):
			col.AutoIncrement = true
		case p.accept(tokKeyword, "NOT"):
			if _, err := p.expect(tokKeyword, "NULL"); err != nil {
				return Column{}, err
			}
			col.NotNull = true
		case p.accept(tokKeyword, "DEFAULT"):
			lit, err := p.parsePrimary()
			if err != nil {
				return Column{}, err
			}
			l, ok := lit.(*Literal)
			if !ok {
				return Column{}, p.errf("DEFAULT requires a literal value")
			}
			col.Default = l.Val
		default:
			return col, nil
		}
	}
}

func (p *parser) parseCreateIndex(unique bool) (*CreateIndexStmt, error) {
	ifNotExists, err := p.parseIfNotExists()
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "ON"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	col, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	st := &CreateIndexStmt{
		Name: name.text, Table: table.text, Column: col.text,
		Unique: unique, Kind: IndexHash, IfNotExists: ifNotExists,
	}
	if p.accept(tokKeyword, "USING") {
		switch {
		case p.accept(tokKeyword, "HASH"):
			st.Kind = IndexHash
		case p.accept(tokKeyword, "BTREE"):
			st.Kind = IndexBTree
		default:
			return nil, p.errf("expected HASH or BTREE after USING")
		}
	}
	return st, nil
}

func (p *parser) parseDrop() (Statement, error) {
	p.next() // DROP
	switch {
	case p.accept(tokKeyword, "TABLE"):
		ifExists := false
		if p.accept(tokKeyword, "IF") {
			if _, err := p.expect(tokKeyword, "EXISTS"); err != nil {
				return nil, err
			}
			ifExists = true
		}
		t, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &DropTableStmt{Name: t.text, IfExists: ifExists}, nil
	case p.accept(tokKeyword, "INDEX"):
		ifExists := false
		if p.accept(tokKeyword, "IF") {
			if _, err := p.expect(tokKeyword, "EXISTS"); err != nil {
				return nil, err
			}
			ifExists = true
		}
		n, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st := &DropIndexStmt{Name: n.text, IfExists: ifExists}
		if p.accept(tokKeyword, "ON") {
			t, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			st.Table = t.text
		}
		return st, nil
	}
	return nil, p.errf("expected TABLE or INDEX after DROP")
}

// ---------------------------------------------------------------------------
// Expression parsing (precedence climbing)

// parseExpr parses a full boolean expression.
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for {
		// Disambiguate: AND inside BETWEEN is consumed by parseComparison.
		if !p.at(tokKeyword, "AND") {
			return l, nil
		}
		p.next()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpAnd, L: l, R: r}
	}
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.accept(tokKeyword, "IS") {
		neg := p.accept(tokKeyword, "NOT")
		if _, err := p.expect(tokKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &IsNull{X: l, Negate: neg}, nil
	}
	// [NOT] IN / LIKE / BETWEEN
	neg := false
	if p.at(tokKeyword, "NOT") {
		nt := p.toks[p.pos+1]
		if nt.kind == tokKeyword && (nt.text == "IN" || nt.text == "LIKE" || nt.text == "BETWEEN") {
			p.next()
			neg = true
		}
	}
	switch {
	case p.accept(tokKeyword, "IN"):
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var items []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			items = append(items, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return &InList{X: l, Items: items, Negate: neg}, nil
	case p.accept(tokKeyword, "LIKE"):
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		like := Expr(&Binary{Op: OpLike, L: l, R: r})
		if neg {
			like = &Unary{Op: "NOT", X: like}
		}
		return like, nil
	case p.accept(tokKeyword, "BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Between{X: l, Lo: lo, Hi: hi, Negate: neg}, nil
	}
	if neg {
		return nil, p.errf("dangling NOT")
	}
	ops := map[string]BinOp{"=": OpEq, "<>": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe}
	if p.cur().kind == tokSymbol {
		if op, ok := ops[p.cur().text]; ok {
			p.next()
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch {
		case p.at(tokSymbol, "+"):
			op = OpAdd
		case p.at(tokSymbol, "-"):
			op = OpSub
		case p.at(tokSymbol, "||"):
			op = OpConcat
		default:
			return l, nil
		}
		p.next()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch {
		case p.at(tokSymbol, "*"):
			op = OpMul
		case p.at(tokSymbol, "/"):
			op = OpDiv
		case p.at(tokSymbol, "%"):
			op = OpMod
		default:
			return l, nil
		}
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokSymbol, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if l, ok := x.(*Literal); ok {
			switch v := l.Val.(type) {
			case int64:
				return &Literal{Val: -v}, nil
			case float64:
				return &Literal{Val: -v}, nil
			}
		}
		return &Unary{Op: "-", X: x}, nil
	}
	p.accept(tokSymbol, "+")
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.next()
		return &Literal{Val: t.num}, nil
	case tokString:
		p.next()
		return &Literal{Val: t.text}, nil
	case tokParam:
		p.next()
		n := 0
		fmt.Sscanf(t.text, "%d", &n)
		return &Param{Pos: n}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return &Literal{Val: nil}, nil
		case "TRUE":
			p.next()
			return &Literal{Val: true}, nil
		case "FALSE":
			p.next()
			return &Literal{Val: false}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			if p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(" {
				return p.parseFuncCall(t.text)
			}
		}
		// Soft keywords may appear as (optionally qualified) column names.
		if softKeywords[t.text] {
			p.next()
			if p.accept(tokSymbol, ".") {
				c, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				return &ColumnRef{Qual: t.text, Name: c.text}, nil
			}
			return &ColumnRef{Name: t.text}, nil
		}
		return nil, p.errf("unexpected keyword %q in expression", t.text)
	case tokIdent:
		// Function call?
		if p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(" {
			return p.parseFuncCall(strings.ToUpper(t.text))
		}
		p.next()
		// Qualified column `a.b`?
		if p.accept(tokSymbol, ".") {
			c, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Qual: t.text, Name: c.text}, nil
		}
		return &ColumnRef{Name: t.text}, nil
	case tokSymbol:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected token %q in expression", t.text)
}

func (p *parser) parseFuncCall(name string) (Expr, error) {
	p.next() // function name
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	fc := &FuncCall{Name: name}
	if name == "COUNT" && p.accept(tokSymbol, "*") {
		fc.Star = true
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return fc, nil
	}
	if !p.at(tokSymbol, ")") {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fc.Args = append(fc.Args, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return fc, nil
}
