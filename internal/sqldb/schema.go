package sqldb

import (
	"fmt"
	"strings"
)

// Column describes one column of a table.
type Column struct {
	Name    string
	Type    Type
	NotNull bool
	// PrimaryKey marks the column as the table's primary key. Primary key
	// columns are implicitly NOT NULL and receive a unique index.
	PrimaryKey bool
	// AutoIncrement assigns 1,2,3,... when the inserted value is NULL.
	// Only valid on INTEGER primary key columns.
	AutoIncrement bool
	// Default is used when an INSERT omits the column. nil means NULL.
	Default Value
}

// Schema is the ordered column list of a table.
type Schema struct {
	Columns []Column
	byName  map[string]int
}

// NewSchema builds a schema and validates column names for uniqueness.
func NewSchema(cols []Column) (*Schema, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("sqldb: table must have at least one column")
	}
	s := &Schema{Columns: cols, byName: make(map[string]int, len(cols))}
	pk := 0
	for i, c := range cols {
		name := strings.ToLower(c.Name)
		if name == "" {
			return nil, fmt.Errorf("sqldb: empty column name at position %d", i)
		}
		if _, dup := s.byName[name]; dup {
			return nil, fmt.Errorf("sqldb: duplicate column %q", c.Name)
		}
		s.byName[name] = i
		if c.PrimaryKey {
			pk++
			if c.AutoIncrement && c.Type != TypeInt {
				return nil, fmt.Errorf("sqldb: AUTOINCREMENT requires INTEGER column, got %s", c.Type)
			}
		} else if c.AutoIncrement {
			return nil, fmt.Errorf("sqldb: AUTOINCREMENT column %q must be PRIMARY KEY", c.Name)
		}
	}
	if pk > 1 {
		return nil, fmt.Errorf("sqldb: composite primary keys are not supported")
	}
	return s, nil
}

// ColumnIndex returns the position of the named column (case-insensitive),
// or -1 when absent.
func (s *Schema) ColumnIndex(name string) int {
	if i, ok := s.byName[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// PrimaryKeyIndex returns the position of the primary key column, or -1.
func (s *Schema) PrimaryKeyIndex() int {
	for i, c := range s.Columns {
		if c.PrimaryKey {
			return i
		}
	}
	return -1
}

// Names returns the column names in declaration order.
func (s *Schema) Names() []string {
	names := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		names[i] = c.Name
	}
	return names
}
