package sqldb

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"
)

// newParallelTestDB builds a partitioned database with the parallel paths
// forced on (tiny threshold, explicit worker hint — GOMAXPROCS may be 1 in
// CI containers) and a populated table `p` of n rows.
//
// Columns: id (pk), grp (0..groups-1 or NULL), val (int), f (float or
// NULL), s (text). Float sums no longer need dyadic fixtures: the
// accumulators use Kahan-compensated partials, so parallel aggregates are
// byte-identical to serial ones for any values.
func newParallelTestDB(t *testing.T, n, parts int) *DB {
	t.Helper()
	db := NewDB()
	db.SetPartitions(parts)
	db.SetParallelism(parts)
	db.SetParallelMinRows(1)
	// These tests pin the row-parallel operators; the vectorized leg
	// would otherwise win the dispatch (it has its own suite in
	// batch_test.go and the oracle's forced-vectorized legs).
	db.SetBatchExecution(false)
	mustExec(t, db, "CREATE TABLE p (id INTEGER PRIMARY KEY, grp INTEGER, val INTEGER, f REAL, s TEXT)")
	fillParallelTable(t, db, n)
	return db
}

func fillParallelTable(t *testing.T, db *DB, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	words := []string{"alpha", "beta", "gamma", "delta", ""}
	for i := 0; i < n; i++ {
		var grp, f any
		if rng.Intn(8) > 0 {
			grp = int64(rng.Intn(7))
		}
		if rng.Intn(8) > 0 {
			f = float64(rng.Intn(64)) / 10
		}
		mustExec(t, db, "INSERT INTO p VALUES (?, ?, ?, ?, ?)",
			i, grp, int64(rng.Intn(1000)), f, words[rng.Intn(len(words))])
	}
}

// withSerial runs fn with the parallel paths disabled, restoring the hint
// afterwards.
func withSerial(db *DB, fn func()) {
	prev := db.Parallelism()
	db.SetParallelism(1)
	fn()
	db.SetParallelism(prev)
}

func formatResult(rs *ResultSet) string {
	var sb strings.Builder
	for _, row := range rs.Rows {
		for _, v := range row {
			sb.WriteString(FormatValue(v))
			sb.WriteByte('|')
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestParallelScanMatchesSerial asserts byte-identical output — including
// row order, which the exchange's ID merge preserves — between serial and
// parallel execution for streaming SEL ECT shapes.
func TestParallelScanMatchesSerial(t *testing.T) {
	db := newParallelTestDB(t, 5000, 4)
	queries := []string{
		"SELECT * FROM p",
		"SELECT id, val FROM p WHERE val > 500",
		"SELECT id FROM p WHERE grp = 3",
		"SELECT s, val + 1 FROM p WHERE f IS NOT NULL",
		"SELECT * FROM p LIMIT 37",
		"SELECT id FROM p LIMIT 100 OFFSET 53",
		"SELECT id FROM p WHERE s LIKE 'a%' OFFSET 10",
		"SELECT id FROM p WHERE val < 0", // empty result
	}
	for _, q := range queries {
		par, err := db.Query(q)
		if err != nil {
			t.Fatalf("%s: parallel: %v", q, err)
		}
		if got := db.ParallelStats().ParallelScans; got == 0 {
			t.Fatalf("%s: parallel scan did not run", q)
		}
		var ser *ResultSet
		withSerial(db, func() {
			ser, err = db.Query(q)
		})
		if err != nil {
			t.Fatalf("%s: serial: %v", q, err)
		}
		if formatResult(par) != formatResult(ser) {
			t.Fatalf("%s: parallel != serial\nparallel (%d rows):\n%s\nserial (%d rows):\n%s",
				q, par.Len(), formatResult(par), ser.Len(), formatResult(ser))
		}
	}
}

// TestParallelAggregateMatchesSerial covers partition-parallel partial
// aggregation: grouped and global aggregates, HAVING, and first-seen group
// ordering must all match serial execution exactly.
func TestParallelAggregateMatchesSerial(t *testing.T) {
	db := newParallelTestDB(t, 5000, 4)
	queries := []string{
		"SELECT grp, COUNT(*), SUM(val), MIN(f), MAX(s) FROM p GROUP BY grp",
		"SELECT grp, AVG(val) FROM p GROUP BY grp ORDER BY grp",
		"SELECT grp, SUM(f) FROM p WHERE val > 200 GROUP BY grp",
		"SELECT grp, COUNT(*) FROM p GROUP BY grp HAVING COUNT(*) > 400",
		"SELECT COUNT(*), SUM(val), AVG(f), MIN(val), MAX(f) FROM p",
		"SELECT COUNT(*) FROM p WHERE val < 0", // zero-row global aggregate
		"SELECT grp, s, COUNT(*) FROM p GROUP BY grp, s",
	}
	for _, q := range queries {
		before := db.ParallelStats().ParallelAggregates
		par, err := db.Query(q)
		if err != nil {
			t.Fatalf("%s: parallel: %v", q, err)
		}
		if got := db.ParallelStats().ParallelAggregates; got == before {
			t.Fatalf("%s: parallel aggregation did not run", q)
		}
		var ser *ResultSet
		withSerial(db, func() {
			ser, err = db.Query(q)
		})
		if err != nil {
			t.Fatalf("%s: serial: %v", q, err)
		}
		if formatResult(par) != formatResult(ser) {
			t.Fatalf("%s: parallel != serial\nparallel:\n%s\nserial:\n%s", q, formatResult(par), formatResult(ser))
		}
	}
}

// TestParallelWriteMatchesSerial runs the same UPDATE/DELETE workload on
// two identical databases — one collecting candidates in parallel, one
// serially — and requires byte-identical dumps and row counts.
func TestParallelWriteMatchesSerial(t *testing.T) {
	par := newParallelTestDB(t, 4000, 4)
	ser := newParallelTestDB(t, 4000, 4)
	ser.SetParallelism(1)

	writes := []struct {
		sql  string
		args []any
	}{
		{"UPDATE p SET val = val + 7 WHERE val > ?", []any{500}},
		{"DELETE FROM p WHERE grp = ? AND val < ?", []any{2, 300}},
		{"UPDATE p SET s = ? WHERE s = ?", []any{"omega", "alpha"}},
		{"DELETE FROM p WHERE f IS NULL AND val > ?", []any{900}},
		{"UPDATE p SET f = ? WHERE grp IS NULL", []any{0.25}},
	}
	for _, w := range writes {
		rp, err := par.Exec(w.sql, w.args...)
		if err != nil {
			t.Fatalf("parallel %s: %v", w.sql, err)
		}
		rs, err := ser.Exec(w.sql, w.args...)
		if err != nil {
			t.Fatalf("serial %s: %v", w.sql, err)
		}
		if rp.RowsAffected != rs.RowsAffected {
			t.Fatalf("%s: parallel affected %d, serial %d", w.sql, rp.RowsAffected, rs.RowsAffected)
		}
	}
	if par.ParallelStats().ParallelWriteCollects == 0 {
		t.Fatal("parallel write collection did not run")
	}
	if par.DumpString() != ser.DumpString() {
		t.Fatal("parallel and serial write workloads diverged")
	}
}

// waitGoroutines polls until the goroutine count drops back to the
// baseline (parallel workers park asynchronously after close).
func waitGoroutines(t *testing.T, base int, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: goroutines leaked: %d > baseline %d", what, runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestParallelCursorEarlyClose opens a streaming parallel scan, pulls a
// few rows, and closes mid-stream: every worker goroutine must exit (no
// leak), and the closed cursor must refuse further reads.
func TestParallelCursorEarlyClose(t *testing.T) {
	db := newParallelTestDB(t, 6000, 4)
	base := runtime.NumGoroutine()

	cur, err := db.QueryCursor("SELECT id, val FROM p")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		row, err := cur.Next()
		if err != nil || row == nil {
			t.Fatalf("row %d: %v %v", i, row, err)
		}
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Next(); err == nil {
		t.Fatal("Next after Close succeeded")
	}
	waitGoroutines(t, base, "early close")

	// LIMIT exhaustion is an implicit early close: the consumer stops the
	// exchange once the limit is met, before the partitions are drained.
	rs, err := db.Query("SELECT id FROM p LIMIT 3")
	if err != nil || rs.Len() != 3 {
		t.Fatalf("limit query: %v rows=%d", err, rs.Len())
	}
	waitGoroutines(t, base, "limit early stop")
}

// TestParallelCursorInvalidatedByDDL bumps the schema generation while a
// parallel cursor streams; the next pull must fail with
// ErrCursorInvalidated and the workers must wind down.
func TestParallelCursorInvalidatedByDDL(t *testing.T) {
	db := newParallelTestDB(t, 6000, 4)
	base := runtime.NumGoroutine()
	cur, err := db.QueryCursor("SELECT id FROM p")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Next(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE INDEX idx_p_val ON p (val)")
	if _, err := cur.Next(); !errors.Is(err, ErrCursorInvalidated) {
		t.Fatalf("Next after DDL: %v, want ErrCursorInvalidated", err)
	}
	cur.Close()
	waitGoroutines(t, base, "DDL invalidation")
}

// TestParallelScanConcurrentWriters streams a parallel scan while writers
// churn the table. Reads are read-committed: rows may or may not be
// observed, but emission must stay strictly ascending by row ID and
// no row may be emitted twice (run under -race in CI).
func TestParallelScanConcurrentWriters(t *testing.T) {
	db := newParallelTestDB(t, 5000, 4)
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		i := 10000
		for {
			select {
			case <-stop:
				return
			default:
			}
			mustExecErrOK(db, "INSERT INTO p VALUES (?, ?, ?, ?, ?)", i, 1, i, nil, "w")
			mustExecErrOK(db, "DELETE FROM p WHERE id = ?", i-5000)
			mustExecErrOK(db, "UPDATE p SET val = val + 1 WHERE id = ?", i-2000)
			i++
		}
	}()

	for round := 0; round < 10; round++ {
		cur, err := db.QueryCursor("SELECT id FROM p")
		if err != nil {
			t.Fatal(err)
		}
		last := int64(-1)
		for {
			row, err := cur.Next()
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			if row == nil {
				break
			}
			id := row[0].(int64)
			if id <= last {
				t.Fatalf("round %d: row IDs not strictly ascending: %d after %d", round, id, last)
			}
			last = id
		}
		cur.Close()
	}
	close(stop)
	<-writerDone
}

// mustExecErrOK ignores execution errors (concurrent-churn helper: the
// row may already be gone).
func mustExecErrOK(db *DB, sql string, args ...any) {
	_, _ = db.Exec(sql, args...)
}

// TestRepartitionPreservesState re-shards a table across several partition
// counts; dumps, scans and snapshots must be byte-identical throughout —
// storage partitioning is invisible to every layer above it.
func TestRepartitionPreservesState(t *testing.T) {
	db := newParallelTestDB(t, 3000, 3)
	mustExec(t, db, "DELETE FROM p WHERE val BETWEEN 100 AND 300") // leave tombstones
	want := db.DumpString()
	wantRows := db.RowCount("p")
	for _, parts := range []int{1, 2, 5, 8, 3} {
		db.SetPartitions(parts)
		if got := db.DumpString(); got != want {
			t.Fatalf("dump changed after repartition to %d", parts)
		}
		if got := db.RowCount("p"); got != wantRows {
			t.Fatalf("row count %d after repartition to %d, want %d", got, parts, wantRows)
		}
		ps := db.PartitionStats()
		if len(ps) != 1 || ps[0].Partitions != parts {
			t.Fatalf("PartitionStats = %+v, want 1 table with %d partitions", ps, parts)
		}
		sum := 0
		for _, n := range ps[0].Rows {
			sum += n
		}
		if sum != wantRows {
			t.Fatalf("partition rows sum %d, want %d", sum, wantRows)
		}
	}
}

// TestSnapshotPartitionTransparency: databases built with different
// partition counts from the same statements must dump identically and
// save byte-identical snapshots, and a snapshot loads correctly into any
// partition layout.
func TestSnapshotPartitionTransparency(t *testing.T) {
	build := func(parts int) *DB {
		db := NewDB()
		db.SetPartitions(parts)
		mustExec(t, db, "CREATE TABLE p (id INTEGER PRIMARY KEY, grp INTEGER, val INTEGER, f REAL, s TEXT)")
		fillParallelTable(t, db, 500)
		mustExec(t, db, "DELETE FROM p WHERE val < 100")
		return db
	}
	a, b := build(1), build(7)
	if a.DumpString() != b.DumpString() {
		t.Fatal("dumps differ across partition counts")
	}
	dir := t.TempDir()
	if err := a.Save(dir + "/a.snap"); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir + "/a.snap")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.DumpString() != a.DumpString() {
		t.Fatal("loaded dump differs")
	}
	// Restore into a database with a custom partition layout re-shards.
	c := NewDB()
	c.SetPartitions(5)
	if err := c.Restore(dir + "/a.snap"); err != nil {
		t.Fatal(err)
	}
	if c.DumpString() != a.DumpString() {
		t.Fatal("restored dump differs")
	}
	if ps := c.PartitionStats(); len(ps) != 1 || ps[0].Partitions != 5 {
		t.Fatalf("restored partition layout %+v, want 5 partitions", ps)
	}
}

// TestMergeSortedIDs exercises the k-way merge used by parallel write
// collection.
func TestMergeSortedIDs(t *testing.T) {
	cases := []struct {
		in   [][]int64
		want []int64
	}{
		{nil, nil},
		{[][]int64{{}, {}}, nil},
		{[][]int64{{1, 4, 7}}, []int64{1, 4, 7}},
		{[][]int64{{1, 4}, {2, 3, 9}, {}, {5}}, []int64{1, 2, 3, 4, 5, 9}},
		{[][]int64{{3}, {1}, {2}}, []int64{1, 2, 3}},
	}
	for _, c := range cases {
		got := mergeSortedIDs(c.in)
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Fatalf("mergeSortedIDs(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestParallelQueryEachAbort aborts a QueryEach iteration mid-stream; the
// exchange workers must be reaped before QueryEach returns.
func TestParallelQueryEachAbort(t *testing.T) {
	db := newParallelTestDB(t, 6000, 4)
	base := runtime.NumGoroutine()
	stop := errors.New("stop")
	n := 0
	err := db.QueryEach("SELECT id FROM p", func(row []Value) error {
		n++
		if n == 10 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Fatalf("QueryEach: %v", err)
	}
	waitGoroutines(t, base, "QueryEach abort")
}
