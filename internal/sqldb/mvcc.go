package sqldb

// Multi-version concurrency control (ROADMAP item 1). Storage keeps a
// version chain per row (rowVersion); every read resolves the newest
// version visible at its snapshot. Two runtime modes share that storage:
//
//   - Lock mode (the default, SetMVCC(false)): the original discipline.
//     Readers hold db.mu shared, writers exclusive; writes install
//     committed versions directly (beg = 0, "always visible") and chains
//     never grow past one version.
//
//   - MVCC mode (SetMVCC(true)): readers take NO database lock at all.
//     A statement (or transaction) captures a snapshot epoch at start and
//     registers it with the snapshot tracker; every access path resolves
//     row visibility against that epoch, synchronizing only on partition
//     locks held long enough to copy version pointers out of the row map.
//     UPDATE and DELETE writers run concurrently: each holds db.mu SHARED
//     plus the write latches (tablePart.w) of exactly the partitions it
//     touches, acquired in ascending partition order (latch.go), so
//     non-overlapping writers install provisional versions and run their
//     first-committer-wins checks fully in parallel and serialize only at
//     the WAL append + commit-epoch publication (db.commitMu). INSERT and
//     DDL keep the global writer + exclusive-mu path: the logical WAL
//     replays statements in commit order, so row-ID/AUTOINCREMENT
//     allocation must happen in that same order to keep a live database
//     byte-identical to a recovered one. Provisional versions are stamped
//     with the writing transaction's ID and published only AFTER the WAL
//     append (publishCommit), so a crash can never leave an
//     acknowledged-but-unlogged commit and a reader can never observe a
//     mid-statement state. Rollback unlinks the provisional versions.
//     First-committer-wins conflict detection raises ErrWriteConflict when
//     a transaction writes a row whose newest committed version postdates
//     the transaction's snapshot — including, now that writers overlap, a
//     row carrying another in-flight transaction's provisional version.
//
// Version reclamation: a background vacuum goroutine (vacuumLoop, started
// by SetMVCC(true), stopped by SetMVCC(false) and DB.Close) wakes on a
// ticker and trims every chain to the newest version visible at the
// oldest active snapshot; the public Vacuum does the same on demand.
// Vacuum runs under db.writer + exclusive db.mu, which excludes latched
// writers (they hold db.mu shared), checkpoints, and commit publication.
// A retention budget (SetSnapshotRetention) bounds how long a snapshot
// may pin the horizon: older registrations are revoked, their owners'
// next operation fails with ErrSnapshotTooOld, and the horizon advances.

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrWriteConflict is returned (wrapped) by write statements inside an
// MVCC transaction when a row they target was committed by another
// transaction after this transaction's snapshot was taken, or currently
// carries another in-flight transaction's provisional version. The
// transaction should be rolled back and retried. Auto-commit UPDATE and
// DELETE statements retry transient conflicts internally but surface the
// error when the row stays claimed by an open transaction.
var ErrWriteConflict = errors.New("sqldb: write conflict (row committed after transaction snapshot); retry the transaction")

// ErrSnapshotTooOld is returned by transactions and cursors whose
// snapshot was revoked by the retention budget (SetSnapshotRetention):
// the versions the snapshot pinned may since have been vacuumed. The
// transaction must be rolled back and retried on a fresh snapshot.
var ErrSnapshotTooOld = errors.New("sqldb: snapshot too old (exceeded the snapshot retention budget); retry on a fresh snapshot")

// provisionalBit marks a version's beg stamp as "uncommitted": the low
// bits then carry the writing transaction's ID instead of a commit epoch.
// Commit epochs are small monotone counters, so the top bit is never set
// on a committed stamp.
const provisionalBit = uint64(1) << 63

// snapLatest is the snapshot epoch that admits every committed version
// (lock-mode visibility: read the newest committed state).
const snapLatest = provisionalBit - 1

// rowVersion is one version of one row. Versions form a singly linked
// chain from newest to oldest; the row map holds the head. The row slice
// is immutable once the version is published; beg and next are atomic so
// lock-free readers can walk a chain while a commit publishes epochs or a
// vacuum truncates tails below every active snapshot.
type rowVersion struct {
	row  []Value // nil = deletion tombstone
	beg  atomic.Uint64
	next atomic.Pointer[rowVersion]
}

// visibility selects which version of each row a read observes.
type visibility struct {
	// snap admits committed versions with beg <= snap. snapLatest reads
	// the newest committed state.
	snap uint64
	// tx, when non-zero, additionally admits provisional versions written
	// by this transaction (read-your-own-writes).
	tx uint64
	// lockPart marks the lock-free (MVCC) read path: row-map access must
	// take the partition read lock because no database lock excludes
	// writers. Lock-mode readers run under db.mu and skip it.
	lockPart bool
}

// visLatest is lock-mode visibility: newest committed state, reads
// synchronized by db.mu.
var visLatest = visibility{snap: snapLatest}

// visible returns the newest version of the chain visible under vis, or
// nil when no version qualifies.
func (v *rowVersion) visible(vis visibility) *rowVersion {
	for ; v != nil; v = v.next.Load() {
		b := v.beg.Load()
		if b&provisionalBit != 0 {
			if vis.tx != 0 && b&^provisionalBit == vis.tx {
				return v
			}
			continue
		}
		if b <= vis.snap {
			return v
		}
	}
	return nil
}

// resolve returns the visible row contents under vis (nil for invisible
// rows and deletion tombstones).
func (v *rowVersion) resolve(vis visibility) []Value {
	if w := v.visible(vis); w != nil {
		return w.row
	}
	return nil
}

// chainHasKey reports whether any version of the chain (committed or
// provisional) carries the given key in column col. The index keeps one
// (key, row) entry while any version still references the key, so entry
// insertion/removal consults the whole chain.
func chainHasKey(v *rowVersion, col int, key Value) bool {
	for ; v != nil; v = v.next.Load() {
		if v.row == nil {
			continue
		}
		k := v.row[col]
		if key == nil {
			if k == nil {
				return true
			}
			continue
		}
		if k != nil && Compare(k, key) == 0 {
			return true
		}
	}
	return false
}

// writeCtx carries one write statement's MVCC context through the
// executor into storage. The zero value is lock-mode: versions install
// committed (beg 0) and no conflict detection runs.
type writeCtx struct {
	mvcc bool
	// latched marks the concurrent write path: the statement holds db.mu
	// SHARED plus the write latches of the partitions it touches, rather
	// than the database exclusively. Reads must then take partition read
	// locks (vis().lockPart) and candidate collection must stay serial —
	// the parallel collector reads partitions raw.
	latched bool
	tx      uint64 // provisional stamp for installed versions
	snap    uint64 // first-committer-wins conflict horizon
	// installed accumulates the provisional versions this statement (or
	// transaction) created, in install order; publishCommit stamps them
	// with the commit epoch, rollback unlinks them via the undo log.
	installed []*rowVersion
}

// vis is the visibility write statements read under: the newest committed
// state plus the transaction's own provisional writes. On the global path
// the writer holds the database exclusively, so no partition locking is
// needed; on the latched path only the touched partitions are held, so
// reads that may probe other partitions (unique checks, candidate
// collection) take partition read locks.
func (w *writeCtx) vis() visibility {
	return visibility{snap: snapLatest, tx: w.tx, lockPart: w.latched}
}

// stamp returns the beg value for a freshly installed version.
func (w *writeCtx) stamp() uint64 {
	if w.mvcc {
		return provisionalBit | w.tx
	}
	return 0 // lock mode: committed, visible to every snapshot
}

// ---------------------------------------------------------------------------
// Snapshot tracking

// snapEntry is the bookkeeping for one active snapshot epoch: how many
// registrations share it and when the earliest of them was acquired (the
// timestamp the retention budget is enforced against).
type snapEntry struct {
	n  int
	at time.Time
}

// snapTracker is the multiset of active snapshot epochs: statements,
// cursors and transactions register on start and release on finish, and
// vacuum reclaims only below the oldest registered epoch. The retention
// budget revokes registrations that outstay their welcome: a revoked
// epoch stops pinning the vacuum horizon, and its owners observe
// ErrSnapshotTooOld on their next operation.
type snapTracker struct {
	mu      sync.Mutex
	active  map[uint64]*snapEntry
	revoked map[uint64]int // registrations revoked but not yet released
}

// acquire registers a snapshot at the database's current epoch and
// returns it. The epoch is read under the tracker lock, so vacuum — which
// computes its horizon under the same lock — can never miss a snapshot
// that was captured before the horizon was fixed.
func (s *snapTracker) acquire(db *DB) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := db.epoch.Load()
	if s.active == nil {
		s.active = make(map[uint64]*snapEntry)
	}
	ent := s.active[e]
	if ent == nil {
		ent = &snapEntry{at: time.Now()}
		s.active[e] = ent
	}
	ent.n++
	return e
}

// release drops one registration of epoch e, consuming a revocation
// instead when the registration was already aborted by the retention
// budget (so a revoked-then-released snapshot does not leak bookkeeping).
func (s *snapTracker) release(e uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ent := s.active[e]; ent != nil {
		if ent.n <= 1 {
			delete(s.active, e)
		} else {
			ent.n--
		}
		return
	}
	if n := s.revoked[e]; n > 0 {
		if n == 1 {
			delete(s.revoked, e)
		} else {
			s.revoked[e] = n - 1
		}
	}
}

// oldest returns the oldest active snapshot epoch, or def when none is
// registered. Revoked registrations no longer pin the horizon.
func (s *snapTracker) oldest(def uint64) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	min := def
	for e := range s.active {
		if e < min {
			min = e
		}
	}
	return min
}

// count returns how many snapshots are currently registered.
func (s *snapTracker) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, ent := range s.active {
		n += ent.n
	}
	return n
}

// revokeOlder aborts every registration acquired before cutoff at an
// epoch older than cur, returning how many were revoked. Snapshots AT the
// current epoch pin nothing reclaimable (no commit has superseded them),
// so they are left alone no matter their age.
func (s *snapTracker) revokeOlder(cutoff time.Time, cur uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for e, ent := range s.active {
		if e >= cur || !ent.at.Before(cutoff) {
			continue
		}
		if s.revoked == nil {
			s.revoked = make(map[uint64]int)
		}
		s.revoked[e] += ent.n
		n += ent.n
		delete(s.active, e)
	}
	return n
}

// isRevoked reports whether epoch e has outstanding revoked
// registrations (the owner should fail with ErrSnapshotTooOld).
func (s *snapTracker) isRevoked(e uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.revoked[e] > 0
}

// snapRevoked reports whether the snapshot was aborted by the retention
// budget. The retention atomic gates the tracker lock so the check is a
// single atomic load on databases that never set a budget (every cursor
// step runs it).
func (db *DB) snapRevoked(snap uint64) bool {
	return db.retention.Load() != 0 && db.snaps.isRevoked(snap)
}

// SetSnapshotRetention bounds how long a snapshot (a transaction's or a
// cursor's) may pin the vacuum horizon. Registrations older than the
// budget are revoked by the background vacuum's next pass: their owners'
// next operation fails with ErrSnapshotTooOld, and version chains above
// the revoked horizon become reclaimable. A zero (or negative) budget —
// the default — never revokes.
func (db *DB) SetSnapshotRetention(d time.Duration) {
	if d < 0 {
		d = 0
	}
	db.retention.Store(int64(d))
}

// ---------------------------------------------------------------------------
// Mode, epoch publication, stats

// SetMVCC switches between lock-mode and MVCC execution at runtime. The
// switch drains in-flight transactions first — new Begins block until the
// switch completes, active transactions run to Commit/Rollback — so a
// mode flip can never strand another discipline's provisional versions,
// then bumps the schema generation so open cursors — built under the
// other locking discipline — invalidate instead of mixing disciplines.
// Enabling MVCC starts the background vacuum goroutine; disabling stops
// it. Calling SetMVCC from a goroutine that itself holds an open
// transaction deadlocks, exactly like any other whole-database operation.
func (db *DB) SetMVCC(on bool) {
	db.switchMu.Lock()
	for db.switching {
		db.switchCond.Wait()
	}
	if db.mvcc.Load() == on {
		db.switchMu.Unlock()
		return
	}
	db.switching = true
	for db.activeTx > 0 {
		db.switchCond.Wait()
	}
	db.switchMu.Unlock()

	db.writer.Lock()
	db.mu.Lock()
	db.mvcc.Store(on)
	db.bumpSchemaGen()
	db.mu.Unlock()
	db.writer.Unlock()

	if on {
		db.startVacuumer()
	} else {
		db.stopVacuumer()
	}

	db.switchMu.Lock()
	db.switching = false
	db.switchCond.Broadcast()
	db.switchMu.Unlock()
}

// txEnter registers a starting transaction with the mode-switch gate:
// Begins block while a SetMVCC drain is in progress, so the mode a
// transaction observes at Begin is the mode it finishes under.
func (db *DB) txEnter() {
	db.switchMu.Lock()
	for db.switching {
		db.switchCond.Wait()
	}
	db.activeTx++
	db.switchMu.Unlock()
}

// txExit balances txEnter when the transaction finishes.
func (db *DB) txExit() {
	db.switchMu.Lock()
	db.activeTx--
	if db.activeTx == 0 {
		db.switchCond.Broadcast()
	}
	db.switchMu.Unlock()
}

// MVCCEnabled reports whether snapshot-isolation execution is on.
func (db *DB) MVCCEnabled() bool { return db.mvcc.Load() }

// publishCommit makes a write statement's (or transaction's) installed
// versions durable-visible: every provisional version is stamped with the
// next commit epoch, and the global epoch is advanced LAST, so a reader
// that captures the new epoch is guaranteed to observe every stamp
// (release/acquire on db.epoch).
//
// The caller MUST have appended the commit's WAL record first — nothing
// may become visible to lock-free readers before it is in the log — and
// must hold either the database exclusively (writer + exclusive db.mu:
// the INSERT/DDL path and recovery) or db.mu shared + db.commitMu (the
// latched UPDATE/DELETE path). Both serialize epoch advances: exclusive
// mu excludes every latched committer, and latched committers exclude
// each other on commitMu. gmlint's mvccepoch checks the publication
// sites and the append/serialization-before-publish order.
func (db *DB) publishCommit(installed []*rowVersion) {
	if len(installed) == 0 {
		return
	}
	e := db.epoch.Load() + 1
	for _, v := range installed {
		v.beg.Store(e)
	}
	db.epoch.Store(e)
	db.mvccCommits.Add(1)
}

// abortProvisional is the bookkeeping counterpart of publishCommit for
// rolled-back writes: the undo log has already unlinked the versions;
// this only records the abort. Split out so the lint invariant "beg
// stamps flow only through the commit/abort accessors" has a single
// audited publication site.
func (db *DB) abortProvisional(installed []*rowVersion) {
	if len(installed) > 0 {
		db.mvccAborts.Add(1)
	}
}

// ---------------------------------------------------------------------------
// Vacuum

// DefaultVacuumInterval is the background vacuum goroutine's tick period.
// Vacuum cost is proportional to the number of rows with version history
// (each table's hist set), not table size, and a tick with no commits
// since the last pass skips without taking any lock, so a short period
// keeps chains short without taxing idle or insert-only databases.
const DefaultVacuumInterval = 50 * time.Millisecond

// vacuumer is the background vacuum goroutine's lifecycle handle,
// mirroring the checkpointer's stop/done pattern.
type vacuumer struct {
	stop chan struct{}
	done chan struct{}
}

// SetVacuumInterval tunes the background vacuum tick period (restarting
// the goroutine when it is running). Non-positive restores the default.
func (db *DB) SetVacuumInterval(d time.Duration) {
	db.vacMu.Lock()
	db.vacInterval = d
	running := db.vac != nil
	db.vacMu.Unlock()
	if running {
		db.stopVacuumer()
		db.startVacuumer()
	}
}

// startVacuumer launches the background vacuum goroutine (idempotent).
func (db *DB) startVacuumer() {
	db.vacMu.Lock()
	defer db.vacMu.Unlock()
	if db.vac != nil {
		return
	}
	iv := db.vacInterval
	if iv <= 0 {
		iv = DefaultVacuumInterval
	}
	v := &vacuumer{stop: make(chan struct{}), done: make(chan struct{})}
	db.vac = v
	go db.vacuumLoop(v, iv)
}

// stopVacuumer stops the background vacuum goroutine and waits for it to
// exit (idempotent; called by SetMVCC(false) and DB.Close). Never called
// with database locks held — the in-flight tick may be waiting for them.
func (db *DB) stopVacuumer() {
	db.vacMu.Lock()
	v := db.vac
	db.vac = nil
	db.vacMu.Unlock()
	if v != nil {
		close(v.stop)
		<-v.done
	}
}

// vacuumLoop is the background vacuum goroutine: every tick it enforces
// the snapshot retention budget and reclaims versions below the oldest
// live snapshot.
func (db *DB) vacuumLoop(v *vacuumer, interval time.Duration) {
	defer close(v.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-v.stop:
			return
		case <-t.C:
			db.vacuumTick()
		}
	}
}

// vacuumTick runs one background pass: revoke over-budget snapshots,
// then vacuum — but only when commits have landed since the last pass,
// so an idle database pays one atomic load per tick and no locks.
func (db *DB) vacuumTick() {
	revoked := 0
	if ret := time.Duration(db.retention.Load()); ret > 0 {
		revoked = db.snaps.revokeOlder(time.Now().Add(-ret), db.epoch.Load())
		if revoked > 0 {
			db.snapsAborted.Add(uint64(revoked))
		}
	}
	c := db.mvccCommits.Load()
	if c == db.lastVacuum.Load() && revoked == 0 {
		return
	}
	db.writer.Lock()
	defer db.writer.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if !db.mvcc.Load() {
		return
	}
	db.lastVacuum.Store(c)
	db.vacuumLocked()
	db.bgVacuums.Add(1)
}

// Vacuum reclaims row versions no active snapshot can see and removes the
// index entries and tombstoned rows they kept alive. The background
// vacuum goroutine does this automatically while MVCC is on; explicit
// calls are useful after bulk updates and in tests. On a lock-mode
// database Vacuum is a documented no-op that runs (and counts) nothing:
// lock-mode writes never grow version chains, so there is nothing to
// reclaim. Returns the number of versions reclaimed.
func (db *DB) Vacuum() int {
	if !db.mvcc.Load() {
		return 0
	}
	db.writer.Lock()
	defer db.writer.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.vacuumLocked()
}

// vacuumLocked trims version chains below the oldest active snapshot.
// Caller holds db.writer and exclusive db.mu, which excludes latched
// writers, commit publication and checkpoints. In-flight transactions may
// own provisional versions (they hold no locks between statements);
// vacuum preserves them — a provisional stamp is above every horizon.
func (db *DB) vacuumLocked() int {
	horizon := db.snaps.oldest(db.epoch.Load())
	reclaimed := 0
	for _, t := range db.tableMap() {
		reclaimed += t.vacuum(horizon)
	}
	db.vacuumRuns.Add(1)
	db.versionsVacuumed.Add(uint64(reclaimed))
	return reclaimed
}

// MVCCStats is a snapshot of the MVCC subsystem (served as sql_mvcc on
// /api/stats).
type MVCCStats struct {
	Enabled          bool   `json:"enabled"`
	Epoch            uint64 `json:"epoch"`
	ActiveSnapshots  int    `json:"active_snapshots"`
	Commits          uint64 `json:"commits"`
	Aborts           uint64 `json:"aborts"`
	Conflicts        uint64 `json:"conflicts"`
	VacuumRuns       uint64 `json:"vacuum_runs"`
	VersionsVacuumed uint64 `json:"versions_vacuumed"`
	// LatchWaits counts contended partition write-latch acquisitions: a
	// writer that found a latch held and had to wait. The concurrency
	// dividend shows up as this staying near zero for disjoint writers.
	LatchWaits uint64 `json:"latch_waits"`
	// BackgroundVacuums counts passes run by the background goroutine
	// (VacuumRuns additionally includes explicit Vacuum calls).
	BackgroundVacuums uint64 `json:"background_vacuums"`
	// SnapshotsAborted counts registrations revoked by the retention
	// budget (their owners observe ErrSnapshotTooOld).
	SnapshotsAborted uint64 `json:"snapshots_aborted"`
}

// MVCCStats returns the MVCC counters.
func (db *DB) MVCCStats() MVCCStats {
	return MVCCStats{
		Enabled:           db.mvcc.Load(),
		Epoch:             db.epoch.Load(),
		ActiveSnapshots:   db.snaps.count(),
		Commits:           db.mvccCommits.Load(),
		Aborts:            db.mvccAborts.Load(),
		Conflicts:         db.mvccConflicts.Load(),
		VacuumRuns:        db.vacuumRuns.Load(),
		VersionsVacuumed:  db.versionsVacuumed.Load(),
		LatchWaits:        db.latchWaits.Load(),
		BackgroundVacuums: db.bgVacuums.Load(),
		SnapshotsAborted:  db.snapsAborted.Load(),
	}
}

// ---------------------------------------------------------------------------
// Lock-free sorted ID slices

// idSlice publishes a sorted row-ID slice so MVCC readers can iterate it
// with no lock at all. The representation is a backing array plus an
// atomic published length inside one immutable header, so the insert hot
// path — a blind append of a monotone row ID — is a plain element store
// followed by a length store (release) with no allocation; a reader loads
// the header, then the length (acquire), and sees every element the
// length covers. Appends are the only in-place mutation: any splice,
// compaction or truncation publishes a freshly allocated header, because
// shrinking a length and later appending would overwrite an element a
// stale reader may still be iterating.
type idSlice struct {
	p atomic.Pointer[idArr]
}

// idArr is one published generation of an idSlice: buf never moves or
// shrinks for the lifetime of the header, and buf[:n] is the readable
// prefix.
type idArr struct {
	buf []int64
	n   atomic.Int64
}

// load returns the current published slice (nil when empty). The returned
// slice must be treated as immutable.
func (s *idSlice) load() []int64 {
	a := s.p.Load()
	if a == nil {
		return nil
	}
	return a.buf[:a.n.Load()]
}

// append adds id at the end (caller — the single writer — guarantees id
// exceeds every present element; ID-slice mutation happens only under the
// exclusive database lock, see table.go). Steady state is
// allocation-free; the backing array doubles when full.
func (s *idSlice) append(id int64) {
	a := s.p.Load()
	if a == nil || int(a.n.Load()) == len(a.buf) {
		var n int
		if a != nil {
			n = int(a.n.Load())
		}
		capacity := 2 * n
		if capacity < 16 {
			capacity = 16
		}
		grown := &idArr{buf: make([]int64, capacity)}
		if a != nil {
			copy(grown.buf, a.buf[:n])
		}
		grown.n.Store(int64(n))
		s.p.Store(grown)
		a = grown
	}
	n := a.n.Load()
	a.buf[n] = id
	a.n.Store(n + 1)
}

// store publishes ids as the new contents. The caller must pass a freshly
// allocated slice it will never mutate afterwards.
func (s *idSlice) store(ids []int64) {
	a := &idArr{buf: ids}
	a.n.Store(int64(len(ids)))
	s.p.Store(a)
}

// remove splices id out (fresh allocation), reporting whether it was
// present.
func (s *idSlice) remove(id int64) bool {
	ids := s.load()
	pos := searchID(ids, id)
	if pos >= len(ids) || ids[pos] != id {
		return false
	}
	fresh := make([]int64, 0, len(ids)-1)
	fresh = append(fresh, ids[:pos]...)
	fresh = append(fresh, ids[pos+1:]...)
	s.store(fresh)
	return true
}

// insertSorted adds id at its sorted position, reporting whether it was
// already present. A trailing insert reuses the append fast path;
// interior inserts allocate fresh.
func (s *idSlice) insertSorted(id int64) (present bool) {
	ids := s.load()
	pos := searchID(ids, id)
	if pos < len(ids) && ids[pos] == id {
		return true
	}
	if pos == len(ids) {
		s.append(id)
		return false
	}
	fresh := make([]int64, 0, len(ids)+1)
	fresh = append(fresh, ids[:pos]...)
	fresh = append(fresh, id)
	fresh = append(fresh, ids[pos:]...)
	s.store(fresh)
	return false
}

// sortInPlace re-sorts the published contents (bulk-load finalization
// only: the caller guarantees no concurrent readers exist yet).
func (s *idSlice) sortInPlace() {
	a := s.p.Load()
	if a == nil {
		return
	}
	sortInt64s(a.buf[:a.n.Load()])
}

// searchID returns the insertion position of id in the sorted slice.
func searchID(ids []int64, id int64) int {
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
