package sqldb

// Multi-version concurrency control (ROADMAP item 1). Storage keeps a
// version chain per row (rowVersion); every read resolves the newest
// version visible at its snapshot. Two runtime modes share that storage:
//
//   - Lock mode (the default, SetMVCC(false)): the original discipline.
//     Readers hold db.mu shared, writers exclusive; writes install
//     committed versions directly (beg = 0, "always visible") and chains
//     never grow past one version.
//
//   - MVCC mode (SetMVCC(true)): readers take NO database lock at all.
//     A statement (or transaction) captures a snapshot epoch at start and
//     registers it with the snapshot tracker; every access path resolves
//     row visibility against that epoch, synchronizing only on partition
//     locks held long enough to copy version pointers out of the row map.
//     Writers still serialize on db.writer, install *provisional* versions
//     stamped with their transaction ID, and publish the commit epoch only
//     AFTER the WAL append (publishCommit), so a crash can never leave an
//     acknowledged-but-unlogged commit and a reader can never observe a
//     mid-statement state. Rollback unlinks the provisional versions.
//     First-committer-wins conflict detection raises ErrWriteConflict when
//     a transaction writes a row whose newest committed version postdates
//     the transaction's snapshot.
//
// Version reclamation: vacuum (vacuumLocked, triggered every
// vacuumEvery MVCC commits and by the public Vacuum) trims every chain to
// the newest version visible at the oldest active snapshot, removes the
// index entries that kept superseded keys reachable, and physically drops
// fully-dead tombstoned rows. Vacuum runs under db.writer + exclusive
// db.mu, so it can never race a checkpoint (which also takes the writer)
// or observe a provisional version.

import (
	"errors"
	"sync"
	"sync/atomic"
)

// ErrWriteConflict is returned (wrapped) by write statements inside an
// MVCC transaction when a row they target was committed by another
// transaction after this transaction's snapshot was taken. The
// transaction should be rolled back and retried.
var ErrWriteConflict = errors.New("sqldb: write conflict (row committed after transaction snapshot); retry the transaction")

// provisionalBit marks a version's beg stamp as "uncommitted": the low
// bits then carry the writing transaction's ID instead of a commit epoch.
// Commit epochs are small monotone counters, so the top bit is never set
// on a committed stamp.
const provisionalBit = uint64(1) << 63

// snapLatest is the snapshot epoch that admits every committed version
// (lock-mode visibility: read the newest committed state).
const snapLatest = provisionalBit - 1

// rowVersion is one version of one row. Versions form a singly linked
// chain from newest to oldest; the row map holds the head. The row slice
// is immutable once the version is published; beg and next are atomic so
// lock-free readers can walk a chain while a commit publishes epochs or a
// vacuum truncates tails below every active snapshot.
type rowVersion struct {
	row  []Value // nil = deletion tombstone
	beg  atomic.Uint64
	next atomic.Pointer[rowVersion]
}

// visibility selects which version of each row a read observes.
type visibility struct {
	// snap admits committed versions with beg <= snap. snapLatest reads
	// the newest committed state.
	snap uint64
	// tx, when non-zero, additionally admits provisional versions written
	// by this transaction (read-your-own-writes).
	tx uint64
	// lockPart marks the lock-free (MVCC) read path: row-map access must
	// take the partition read lock because no database lock excludes
	// writers. Lock-mode readers run under db.mu and skip it.
	lockPart bool
}

// visLatest is lock-mode visibility: newest committed state, reads
// synchronized by db.mu.
var visLatest = visibility{snap: snapLatest}

// visible returns the newest version of the chain visible under vis, or
// nil when no version qualifies.
func (v *rowVersion) visible(vis visibility) *rowVersion {
	for ; v != nil; v = v.next.Load() {
		b := v.beg.Load()
		if b&provisionalBit != 0 {
			if vis.tx != 0 && b&^provisionalBit == vis.tx {
				return v
			}
			continue
		}
		if b <= vis.snap {
			return v
		}
	}
	return nil
}

// resolve returns the visible row contents under vis (nil for invisible
// rows and deletion tombstones).
func (v *rowVersion) resolve(vis visibility) []Value {
	if w := v.visible(vis); w != nil {
		return w.row
	}
	return nil
}

// chainHasKey reports whether any version of the chain (committed or
// provisional) carries the given key in column col. The index keeps one
// (key, row) entry while any version still references the key, so entry
// insertion/removal consults the whole chain.
func chainHasKey(v *rowVersion, col int, key Value) bool {
	for ; v != nil; v = v.next.Load() {
		if v.row == nil {
			continue
		}
		k := v.row[col]
		if key == nil {
			if k == nil {
				return true
			}
			continue
		}
		if k != nil && Compare(k, key) == 0 {
			return true
		}
	}
	return false
}

// writeCtx carries one write statement's MVCC context through the
// executor into storage. The zero value is lock-mode: versions install
// committed (beg 0) and no conflict detection runs.
type writeCtx struct {
	mvcc bool
	tx   uint64 // provisional stamp for installed versions
	snap uint64 // first-committer-wins conflict horizon
	// installed accumulates the provisional versions this statement (or
	// transaction) created, in install order; publishCommit stamps them
	// with the commit epoch, rollback unlinks them via the undo log.
	installed []*rowVersion
}

// vis is the visibility write statements read under: the newest committed
// state plus the transaction's own provisional writes. Writers hold
// db.writer (and exclusive db.mu), so no other provisional versions can
// exist and partition locking is unnecessary.
func (w *writeCtx) vis() visibility {
	return visibility{snap: snapLatest, tx: w.tx}
}

// stamp returns the beg value for a freshly installed version.
func (w *writeCtx) stamp() uint64 {
	if w.mvcc {
		return provisionalBit | w.tx
	}
	return 0 // lock mode: committed, visible to every snapshot
}

// ---------------------------------------------------------------------------
// Snapshot tracking

// snapTracker is the multiset of active snapshot epochs: statements,
// cursors and transactions register on start and release on finish, and
// vacuum reclaims only below the oldest registered epoch.
type snapTracker struct {
	mu     sync.Mutex
	active map[uint64]int
}

// acquire registers a snapshot at the database's current epoch and
// returns it. The epoch is read under the tracker lock, so vacuum — which
// computes its horizon under the same lock — can never miss a snapshot
// that was captured before the horizon was fixed.
func (s *snapTracker) acquire(db *DB) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := db.epoch.Load()
	if s.active == nil {
		s.active = make(map[uint64]int)
	}
	s.active[e]++
	return e
}

// release drops one registration of epoch e.
func (s *snapTracker) release(e uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := s.active[e]; n <= 1 {
		delete(s.active, e)
	} else {
		s.active[e] = n - 1
	}
}

// oldest returns the oldest active snapshot epoch, or def when none is
// registered.
func (s *snapTracker) oldest(def uint64) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	min := def
	for e := range s.active {
		if e < min {
			min = e
		}
	}
	return min
}

// count returns how many snapshots are currently registered.
func (s *snapTracker) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.active {
		n += c
	}
	return n
}

// ---------------------------------------------------------------------------
// Mode, epoch publication, stats

// SetMVCC switches between lock-mode and MVCC execution at runtime. The
// switch waits out in-flight writers and transactions (db.writer) and
// bumps the schema generation so open cursors — built under the other
// locking discipline — invalidate instead of mixing disciplines.
func (db *DB) SetMVCC(on bool) {
	db.writer.Lock()
	defer db.writer.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.mvcc.Load() == on {
		return
	}
	db.mvcc.Store(on)
	db.bumpSchemaGen()
}

// MVCCEnabled reports whether snapshot-isolation execution is on.
func (db *DB) MVCCEnabled() bool { return db.mvcc.Load() }

// publishCommit makes a write statement's (or transaction's) installed
// versions durable-visible: every provisional version is stamped with the
// next commit epoch, and the global epoch is advanced LAST, so a reader
// that captures the new epoch is guaranteed to observe every stamp
// (release/acquire on db.epoch).
//
// Caller holds db.writer and exclusive db.mu, and MUST have appended the
// commit's WAL record first: nothing may become visible to lock-free
// readers before it is in the log (mvccepoch lint invariant).
func (db *DB) publishCommit(installed []*rowVersion) {
	if len(installed) == 0 {
		return
	}
	e := db.epoch.Load() + 1
	for _, v := range installed {
		v.beg.Store(e)
	}
	db.epoch.Store(e)
	db.mvccCommits.Add(1)
}

// abortProvisional is the bookkeeping counterpart of publishCommit for
// rolled-back writes: the undo log has already unlinked the versions;
// this only records the abort. Split out so the lint invariant "beg
// stamps flow only through the commit/abort accessors" has a single
// audited publication site.
func (db *DB) abortProvisional(installed []*rowVersion) {
	if len(installed) > 0 {
		db.mvccAborts.Add(1)
	}
}

// vacuumEvery is how many MVCC commits elapse between automatic vacuum
// passes. Vacuum cost is proportional to the number of rows with version
// history (each table's hist set), not table size, so a modest period
// keeps chains short without taxing insert-only workloads.
const vacuumEvery = 64

// maybeVacuumLocked runs a vacuum pass once vacuumEvery MVCC commits
// have accumulated since the last pass. Caller holds db.writer and
// exclusive db.mu.
func (db *DB) maybeVacuumLocked() {
	c := db.mvccCommits.Load()
	if c-db.lastVacuum.Load() >= vacuumEvery {
		db.lastVacuum.Store(c)
		db.vacuumLocked()
	}
}

// Vacuum reclaims row versions no active snapshot can see and removes the
// index entries and tombstoned rows they kept alive. It runs
// automatically every vacuumEvery MVCC commits; explicit calls are useful
// after bulk updates. Returns the number of versions reclaimed.
func (db *DB) Vacuum() int {
	db.writer.Lock()
	defer db.writer.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.vacuumLocked()
}

// vacuumLocked trims version chains below the oldest active snapshot.
// Caller holds db.writer and exclusive db.mu (so no provisional versions
// exist and no checkpoint is concurrently building a snapshot).
func (db *DB) vacuumLocked() int {
	horizon := db.snaps.oldest(db.epoch.Load())
	reclaimed := 0
	for _, t := range db.tableMap() {
		reclaimed += t.vacuum(horizon)
	}
	db.vacuumRuns.Add(1)
	db.versionsVacuumed.Add(uint64(reclaimed))
	return reclaimed
}

// MVCCStats is a snapshot of the MVCC subsystem (served as sql_mvcc on
// /api/stats).
type MVCCStats struct {
	Enabled          bool   `json:"enabled"`
	Epoch            uint64 `json:"epoch"`
	ActiveSnapshots  int    `json:"active_snapshots"`
	Commits          uint64 `json:"commits"`
	Aborts           uint64 `json:"aborts"`
	Conflicts        uint64 `json:"conflicts"`
	VacuumRuns       uint64 `json:"vacuum_runs"`
	VersionsVacuumed uint64 `json:"versions_vacuumed"`
}

// MVCCStats returns the MVCC counters.
func (db *DB) MVCCStats() MVCCStats {
	return MVCCStats{
		Enabled:          db.mvcc.Load(),
		Epoch:            db.epoch.Load(),
		ActiveSnapshots:  db.snaps.count(),
		Commits:          db.mvccCommits.Load(),
		Aborts:           db.mvccAborts.Load(),
		Conflicts:        db.mvccConflicts.Load(),
		VacuumRuns:       db.vacuumRuns.Load(),
		VersionsVacuumed: db.versionsVacuumed.Load(),
	}
}

// ---------------------------------------------------------------------------
// Lock-free sorted ID slices

// idSlice publishes a sorted row-ID slice so MVCC readers can iterate it
// with no lock at all. The representation is a backing array plus an
// atomic published length inside one immutable header, so the insert hot
// path — a blind append of a monotone row ID — is a plain element store
// followed by a length store (release) with no allocation; a reader loads
// the header, then the length (acquire), and sees every element the
// length covers. Appends are the only in-place mutation: any splice,
// compaction or truncation publishes a freshly allocated header, because
// shrinking a length and later appending would overwrite an element a
// stale reader may still be iterating.
type idSlice struct {
	p atomic.Pointer[idArr]
}

// idArr is one published generation of an idSlice: buf never moves or
// shrinks for the lifetime of the header, and buf[:n] is the readable
// prefix.
type idArr struct {
	buf []int64
	n   atomic.Int64
}

// load returns the current published slice (nil when empty). The returned
// slice must be treated as immutable.
func (s *idSlice) load() []int64 {
	a := s.p.Load()
	if a == nil {
		return nil
	}
	return a.buf[:a.n.Load()]
}

// append adds id at the end (caller — the single writer — guarantees id
// exceeds every present element). Steady state is allocation-free; the
// backing array doubles when full.
func (s *idSlice) append(id int64) {
	a := s.p.Load()
	if a == nil || int(a.n.Load()) == len(a.buf) {
		var n int
		if a != nil {
			n = int(a.n.Load())
		}
		capacity := 2 * n
		if capacity < 16 {
			capacity = 16
		}
		grown := &idArr{buf: make([]int64, capacity)}
		if a != nil {
			copy(grown.buf, a.buf[:n])
		}
		grown.n.Store(int64(n))
		s.p.Store(grown)
		a = grown
	}
	n := a.n.Load()
	a.buf[n] = id
	a.n.Store(n + 1)
}

// store publishes ids as the new contents. The caller must pass a freshly
// allocated slice it will never mutate afterwards.
func (s *idSlice) store(ids []int64) {
	a := &idArr{buf: ids}
	a.n.Store(int64(len(ids)))
	s.p.Store(a)
}

// remove splices id out (fresh allocation), reporting whether it was
// present.
func (s *idSlice) remove(id int64) bool {
	ids := s.load()
	pos := searchID(ids, id)
	if pos >= len(ids) || ids[pos] != id {
		return false
	}
	fresh := make([]int64, 0, len(ids)-1)
	fresh = append(fresh, ids[:pos]...)
	fresh = append(fresh, ids[pos+1:]...)
	s.store(fresh)
	return true
}

// insertSorted adds id at its sorted position, reporting whether it was
// already present. A trailing insert reuses the append fast path;
// interior inserts allocate fresh.
func (s *idSlice) insertSorted(id int64) (present bool) {
	ids := s.load()
	pos := searchID(ids, id)
	if pos < len(ids) && ids[pos] == id {
		return true
	}
	if pos == len(ids) {
		s.append(id)
		return false
	}
	fresh := make([]int64, 0, len(ids)+1)
	fresh = append(fresh, ids[:pos]...)
	fresh = append(fresh, id)
	fresh = append(fresh, ids[pos:]...)
	s.store(fresh)
	return false
}

// sortInPlace re-sorts the published contents (bulk-load finalization
// only: the caller guarantees no concurrent readers exist yet).
func (s *idSlice) sortInPlace() {
	a := s.p.Load()
	if a == nil {
		return
	}
	sortInt64s(a.buf[:a.n.Load()])
}

// searchID returns the insertion position of id in the sorted slice.
func searchID(ids []int64, id int64) int {
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
