package sqldb

// Differential testing: random WHERE predicates executed through the full
// SQL pipeline are compared against a trivially-correct in-memory filter.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

type oracleRow struct {
	id int64
	n  Value // int64 or nil
	s  Value // string or nil
	f  Value // float64 or nil
}

func buildOracleDB(t *testing.T, rng *rand.Rand, rows int) (*DB, []oracleRow) {
	t.Helper()
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (id INTEGER PRIMARY KEY, n INTEGER, s TEXT, f REAL)")
	if rng.Intn(2) == 0 {
		mustExec(t, db, "CREATE INDEX idx_n ON t (n)")
	}
	var data []oracleRow
	words := []string{"alpha", "beta", "gamma", "delta", "", "alphabet"}
	for i := 0; i < rows; i++ {
		r := oracleRow{id: int64(i)}
		if rng.Intn(5) > 0 {
			r.n = int64(rng.Intn(10))
		}
		if rng.Intn(5) > 0 {
			r.s = words[rng.Intn(len(words))]
		}
		if rng.Intn(5) > 0 {
			r.f = float64(rng.Intn(20)) / 4
		}
		data = append(data, r)
		mustExec(t, db, "INSERT INTO t VALUES (?, ?, ?, ?)", r.id, r.n, r.s, r.f)
	}
	return db, data
}

// predicate is a randomly generated conjunct with both SQL text and a
// reference evaluation. The reference returns true/false/unknown(nil).
type predicate struct {
	sql string
	ref func(r oracleRow) Value
}

func randPredicate(rng *rand.Rand) predicate {
	switch rng.Intn(6) {
	case 0: // numeric comparison on n
		k := int64(rng.Intn(10))
		ops := []struct {
			sym string
			fn  func(a, b int64) bool
		}{
			{"=", func(a, b int64) bool { return a == b }},
			{"<>", func(a, b int64) bool { return a != b }},
			{"<", func(a, b int64) bool { return a < b }},
			{">=", func(a, b int64) bool { return a >= b }},
		}
		op := ops[rng.Intn(len(ops))]
		return predicate{
			sql: fmt.Sprintf("n %s %d", op.sym, k),
			ref: func(r oracleRow) Value {
				if r.n == nil {
					return nil
				}
				return op.fn(r.n.(int64), k)
			},
		}
	case 1: // IS NULL family
		col := []string{"n", "s", "f"}[rng.Intn(3)]
		neg := rng.Intn(2) == 0
		sql := col + " IS NULL"
		if neg {
			sql = col + " IS NOT NULL"
		}
		return predicate{
			sql: sql,
			ref: func(r oracleRow) Value {
				v := map[string]Value{"n": r.n, "s": r.s, "f": r.f}[col]
				return (v == nil) != neg
			},
		}
	case 2: // LIKE on s
		pat := []string{"a%", "%a%", "_eta", "%t%", "alpha"}[rng.Intn(5)]
		return predicate{
			sql: fmt.Sprintf("s LIKE '%s'", pat),
			ref: func(r oracleRow) Value {
				if r.s == nil {
					return nil
				}
				return likeMatch(r.s.(string), pat)
			},
		}
	case 3: // BETWEEN on f
		lo := float64(rng.Intn(10)) / 4
		hi := lo + float64(rng.Intn(8))/4
		return predicate{
			sql: fmt.Sprintf("f BETWEEN %g AND %g", lo, hi),
			ref: func(r oracleRow) Value {
				if r.f == nil {
					return nil
				}
				x := r.f.(float64)
				return x >= lo && x <= hi
			},
		}
	case 4: // IN list on n
		a, b := int64(rng.Intn(10)), int64(rng.Intn(10))
		return predicate{
			sql: fmt.Sprintf("n IN (%d, %d)", a, b),
			ref: func(r oracleRow) Value {
				if r.n == nil {
					return nil
				}
				x := r.n.(int64)
				return x == a || x == b
			},
		}
	default: // arithmetic comparison
		k := int64(rng.Intn(15))
		return predicate{
			sql: fmt.Sprintf("n + n > %d", k),
			ref: func(r oracleRow) Value {
				if r.n == nil {
					return nil
				}
				return r.n.(int64)*2 > k
			},
		}
	}
}

func combineRef(op string, a, b Value) Value {
	ab, anull := toBool(a)
	bb, bnull := toBool(b)
	if op == "AND" {
		switch {
		case !anull && !ab, !bnull && !bb:
			return false
		case anull || bnull:
			return nil
		default:
			return true
		}
	}
	switch {
	case !anull && ab, !bnull && bb:
		return true
	case anull || bnull:
		return nil
	default:
		return false
	}
}

func TestWherePredicatesMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(20040314))
	for trial := 0; trial < 40; trial++ {
		db, data := buildOracleDB(t, rng, 80)
		for q := 0; q < 10; q++ {
			p1, p2 := randPredicate(rng), randPredicate(rng)
			op := []string{"AND", "OR"}[rng.Intn(2)]
			negate := rng.Intn(3) == 0
			where := fmt.Sprintf("(%s) %s (%s)", p1.sql, op, p2.sql)
			ref := func(r oracleRow) Value { return combineRef(op, p1.ref(r), p2.ref(r)) }
			if negate {
				where = "NOT (" + where + ")"
				inner := ref
				ref = func(r oracleRow) Value {
					v := inner(r)
					b, isNull := toBool(v)
					if isNull {
						return nil
					}
					return !b
				}
			}

			rs, err := db.Query("SELECT id FROM t WHERE " + where + " ORDER BY id")
			if err != nil {
				t.Fatalf("trial %d query %q: %v", trial, where, err)
			}
			var want []string
			for _, r := range data {
				v := ref(r)
				if b, isNull := toBool(v); !isNull && b {
					want = append(want, fmt.Sprint(r.id))
				}
			}
			var got []string
			for _, row := range rs.Rows {
				got = append(got, fmt.Sprint(row[0]))
			}
			if strings.Join(got, ",") != strings.Join(want, ",") {
				t.Fatalf("trial %d WHERE %s:\n got %v\nwant %v", trial, where, got, want)
			}
		}
	}
}

// TestPlannerEquivalenceOracle fuzzes the planner: random generated queries
// executed once with index access enabled, once with it forced off, once
// with partition-parallel execution forced on, and once per vectorized leg
// (batch kernels on, serial and parallel) must return identical result
// sequences (joins, ranges, IN lists, ORDER BY/LIMIT/OFFSET, DISTINCT,
// GROUP BY). Since all modes share the executor, the planner preserves
// scan emission order (including sort-tie order), and both exchanges merge
// partitions back into row-ID order, the comparison is exact, not just
// set-based. Float SUM/AVG is exact too: every leg accumulates partials
// with compensated (Kahan) summation, so the fixture's non-dyadic REAL
// values (multiples of 0.1) and the grouped SUM(f)/AVG(f) columns must
// agree to the last bit regardless of how partial sums associate.
func TestPlannerEquivalenceOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(771104))
	db := NewDB()
	// Partition the storage and drop the parallel and batch thresholds so
	// the 250-row fixture takes the parallel and vectorized paths; the
	// parallelism hint stays at 1 (serial) and batch execution stays off
	// except in the explicitly parallel/vectorized legs.
	db.SetPartitions(4)
	db.SetParallelMinRows(1)
	db.SetParallelism(1)
	db.SetBatchMinRows(1)
	db.SetBatchExecution(false)
	mustExec(t, db, "CREATE TABLE big (id INTEGER PRIMARY KEY, n INTEGER, f REAL, s TEXT, u INTEGER)")
	mustExec(t, db, "CREATE INDEX idx_big_n ON big (n)")
	mustExec(t, db, "CREATE INDEX idx_big_f ON big (f) USING BTREE")
	mustExec(t, db, "CREATE INDEX idx_big_s ON big (s) USING BTREE")
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", ""}
	for i := 0; i < 250; i++ {
		var n, f, s, u any
		if rng.Intn(6) > 0 {
			n = int64(rng.Intn(12))
		}
		if rng.Intn(6) > 0 {
			// Multiples of 0.1 are deliberately non-dyadic: naive float
			// summation would expose association-order differences between
			// the serial, parallel, and vectorized legs; Kahan partials
			// keep them byte-identical.
			f = float64(rng.Intn(40)) / 10
		}
		if rng.Intn(6) > 0 {
			s = words[rng.Intn(len(words))]
		}
		if rng.Intn(2) > 0 {
			u = int64(rng.Intn(5))
		}
		mustExec(t, db, "INSERT INTO big VALUES (?, ?, ?, ?, ?)", i, n, f, s, u)
	}
	mustExec(t, db, "CREATE TABLE side (k INTEGER, tag TEXT)")
	mustExec(t, db, "CREATE INDEX idx_side_k ON side (k) USING BTREE")
	for i := 0; i < 40; i++ {
		var k any
		if rng.Intn(8) > 0 {
			k = int64(rng.Intn(12))
		}
		mustExec(t, db, "INSERT INTO side VALUES (?, ?)", k, fmt.Sprintf("tag%d", i%6))
	}

	conjunct := func() string {
		switch rng.Intn(9) {
		case 0:
			return fmt.Sprintf("n = %d", rng.Intn(12))
		case 1:
			return fmt.Sprintf("f %s %g", []string{"<", "<=", ">", ">="}[rng.Intn(4)], float64(rng.Intn(40))/10)
		case 2:
			lo := float64(rng.Intn(30)) / 10
			return fmt.Sprintf("f BETWEEN %g AND %g", lo, lo+float64(rng.Intn(12))/10)
		case 3:
			return fmt.Sprintf("s %s '%s'", []string{"<", ">=", "="}[rng.Intn(3)], words[rng.Intn(len(words))])
		case 4:
			return fmt.Sprintf("id >= %d", rng.Intn(250))
		case 5:
			return fmt.Sprintf("n IN (%d, %d, %d)", rng.Intn(12), rng.Intn(12), rng.Intn(12))
		case 6:
			return []string{"u IS NULL", "u IS NOT NULL"}[rng.Intn(2)]
		case 7:
			i := rng.Intn(5)
			return fmt.Sprintf("s LIKE '%s%%'", "abgde"[i:i+1])
		default:
			return fmt.Sprintf("u = %d", rng.Intn(5))
		}
	}

	genQuery := func() string {
		var sb strings.Builder
		sb.WriteString("SELECT ")
		distinct := rng.Intn(5) == 0
		if distinct {
			sb.WriteString("DISTINCT ")
		}
		grouped := rng.Intn(6) == 0
		if grouped {
			sb.WriteString("n, COUNT(*), MIN(f), SUM(f), AVG(f) FROM big")
		} else {
			sb.WriteString([]string{"*", "id, n, f", "big.*", "id, s AS name, f"}[rng.Intn(4)])
			sb.WriteString(" FROM big")
		}
		joined := !grouped && rng.Intn(3) == 0
		if joined {
			switch rng.Intn(4) {
			case 0:
				sb.WriteString(" JOIN side ON big.n = side.k")
			case 1:
				sb.WriteString(" LEFT JOIN side ON big.n = side.k")
			case 2:
				// RIGHT drives from side and NULL-extends big: the projected
				// big columns go through the Kleene filters as NULLs.
				sb.WriteString(" RIGHT JOIN side ON big.n = side.k")
			case 3:
				sb.WriteString(" CROSS JOIN side")
			}
		}
		if rng.Intn(5) > 0 {
			sb.WriteString(" WHERE ")
			sb.WriteString(conjunct())
			for extra := rng.Intn(3); extra > 0; extra-- {
				sb.WriteString([]string{" AND ", " OR "}[rng.Intn(2)])
				sb.WriteString(conjunct())
			}
		}
		if grouped {
			sb.WriteString(" GROUP BY n")
			if rng.Intn(2) == 0 {
				sb.WriteString(" ORDER BY n")
			}
		} else if rng.Intn(2) == 0 {
			col := []string{"id", "n", "f", "s", "2", "name"}[rng.Intn(6)]
			if col == "name" && !strings.Contains(sb.String(), "AS name") {
				col = "s"
			}
			if col == "2" && strings.Contains(sb.String(), "*") {
				col = "f"
			}
			sb.WriteString(" ORDER BY " + col)
			if rng.Intn(2) == 0 {
				sb.WriteString(" DESC")
			}
		}
		if rng.Intn(3) == 0 {
			fmt.Fprintf(&sb, " LIMIT %d", rng.Intn(30))
			if rng.Intn(2) == 0 {
				fmt.Fprintf(&sb, " OFFSET %d", rng.Intn(10))
			}
		}
		return sb.String()
	}

	formatRows := func(rows [][]Value) string {
		var sb strings.Builder
		for _, row := range rows {
			for _, v := range row {
				sb.WriteString(FormatValue(v))
				sb.WriteByte('|')
			}
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	format := func(rs *ResultSet) string { return formatRows(rs.Rows) }

	// drainCursorFormatted streams a query through the cursor API, building
	// the same formatted transcript the materialized comparison uses.
	drainCursorFormatted := func(query string) (string, error) {
		cur, err := db.QueryCursor(query)
		if err != nil {
			return "", err
		}
		defer cur.Close()
		var sb strings.Builder
		for {
			row, err := cur.Next()
			if err != nil {
				return "", err
			}
			if row == nil {
				return sb.String(), nil
			}
			for _, v := range row {
				sb.WriteString(FormatValue(v))
				sb.WriteByte('|')
			}
			sb.WriteByte('\n')
		}
	}

	for q := 0; q < 500; q++ {
		query := genQuery()
		db.SetIndexAccess(true)
		withIdx, errIdx := db.Query(query)
		streamed, errCur := drainCursorFormatted(query)
		db.SetIndexAccess(false)
		noIdx, errNo := db.Query(query)
		db.SetIndexAccess(true)
		// Parallel leg: partition-parallel scan/aggregate paths forced on
		// (full-scan shapes take them; indexed shapes stay serial by
		// design and must be unaffected).
		db.SetParallelism(8)
		parallel, errPar := db.Query(query)
		parStreamed, errParCur := drainCursorFormatted(query)
		db.SetParallelism(1)
		// Vectorized legs: the batch kernels forced on, serial and
		// parallel. Shapes the kernels don't cover fall back to the row
		// cursor, so every query is answerable on all legs.
		db.SetBatchExecution(true)
		vec, errVec := db.Query(query)
		vecStreamed, errVecCur := drainCursorFormatted(query)
		db.SetParallelism(8)
		vecPar, errVecPar := db.Query(query)
		vecParStreamed, errVecParCur := drainCursorFormatted(query)
		db.SetParallelism(1)
		db.SetBatchExecution(false)
		// MVCC legs: snapshot-isolation reads over the same four engines
		// (serial row, streaming cursor, parallel, vectorized parallel).
		// With no concurrent writer the latest snapshot must reproduce the
		// lock-mode transcripts byte for byte.
		db.SetMVCC(true)
		mvcc, errMvcc := db.Query(query)
		mvccStreamed, errMvccCur := drainCursorFormatted(query)
		db.SetParallelism(8)
		mvccPar, errMvccPar := db.Query(query)
		db.SetBatchExecution(true)
		mvccVecPar, errMvccVecPar := db.Query(query)
		db.SetBatchExecution(false)
		db.SetParallelism(1)
		db.SetMVCC(false)
		if (errIdx != nil) != (errNo != nil) {
			t.Fatalf("query %q: error mismatch: with-index=%v no-index=%v", query, errIdx, errNo)
		}
		if (errIdx != nil) != (errCur != nil) {
			t.Fatalf("query %q: error mismatch: materialized=%v cursor=%v", query, errIdx, errCur)
		}
		if (errIdx != nil) != (errPar != nil) || (errIdx != nil) != (errParCur != nil) {
			t.Fatalf("query %q: error mismatch: serial=%v parallel=%v parallel-cursor=%v", query, errIdx, errPar, errParCur)
		}
		if (errIdx != nil) != (errVec != nil) || (errIdx != nil) != (errVecCur != nil) ||
			(errIdx != nil) != (errVecPar != nil) || (errIdx != nil) != (errVecParCur != nil) {
			t.Fatalf("query %q: error mismatch: serial=%v vec=%v vec-cursor=%v vec-par=%v vec-par-cursor=%v",
				query, errIdx, errVec, errVecCur, errVecPar, errVecParCur)
		}
		if (errIdx != nil) != (errMvcc != nil) || (errIdx != nil) != (errMvccCur != nil) ||
			(errIdx != nil) != (errMvccPar != nil) || (errIdx != nil) != (errMvccVecPar != nil) {
			t.Fatalf("query %q: error mismatch: lock=%v mvcc=%v mvcc-cursor=%v mvcc-par=%v mvcc-vec-par=%v",
				query, errIdx, errMvcc, errMvccCur, errMvccPar, errMvccVecPar)
		}
		if errIdx != nil {
			continue
		}
		if format(withIdx) != format(noIdx) {
			t.Fatalf("query %q:\nwith index (%d rows):\n%s\nwithout index (%d rows):\n%s",
				query, withIdx.Len(), format(withIdx), noIdx.Len(), format(noIdx))
		}
		// The streaming cursor and the materializing drain share one
		// engine; their result transcripts must be byte-identical.
		if streamed != format(withIdx) {
			t.Fatalf("query %q:\ncursor stream:\n%s\nmaterialized:\n%s", query, streamed, format(withIdx))
		}
		// Parallel execution must be indistinguishable from serial, row
		// order included, on both the materializing and streaming paths.
		if format(parallel) != format(withIdx) {
			t.Fatalf("query %q:\nparallel (%d rows):\n%s\nserial (%d rows):\n%s",
				query, parallel.Len(), format(parallel), withIdx.Len(), format(withIdx))
		}
		if parStreamed != format(withIdx) {
			t.Fatalf("query %q:\nparallel cursor stream:\n%s\nserial:\n%s", query, parStreamed, format(withIdx))
		}
		// The vectorized legs must be indistinguishable from the row
		// engine byte for byte — row order, NULL handling, and float
		// SUM/AVG bits included.
		if format(vec) != format(withIdx) {
			t.Fatalf("query %q:\nvectorized (%d rows):\n%s\nrow engine (%d rows):\n%s",
				query, vec.Len(), format(vec), withIdx.Len(), format(withIdx))
		}
		if vecStreamed != format(withIdx) {
			t.Fatalf("query %q:\nvectorized cursor stream:\n%s\nrow engine:\n%s", query, vecStreamed, format(withIdx))
		}
		if format(vecPar) != format(withIdx) {
			t.Fatalf("query %q:\nvectorized parallel (%d rows):\n%s\nrow engine (%d rows):\n%s",
				query, vecPar.Len(), format(vecPar), withIdx.Len(), format(withIdx))
		}
		if vecParStreamed != format(withIdx) {
			t.Fatalf("query %q:\nvectorized parallel cursor stream:\n%s\nrow engine:\n%s", query, vecParStreamed, format(withIdx))
		}
		// MVCC reads take the lock-free snapshot paths; the transcripts
		// must still be byte-identical to lock mode on every leg.
		if format(mvcc) != format(withIdx) {
			t.Fatalf("query %q:\nmvcc (%d rows):\n%s\nlock mode (%d rows):\n%s",
				query, mvcc.Len(), format(mvcc), withIdx.Len(), format(withIdx))
		}
		if mvccStreamed != format(withIdx) {
			t.Fatalf("query %q:\nmvcc cursor stream:\n%s\nlock mode:\n%s", query, mvccStreamed, format(withIdx))
		}
		if format(mvccPar) != format(withIdx) {
			t.Fatalf("query %q:\nmvcc parallel (%d rows):\n%s\nlock mode (%d rows):\n%s",
				query, mvccPar.Len(), format(mvccPar), withIdx.Len(), format(withIdx))
		}
		if format(mvccVecPar) != format(withIdx) {
			t.Fatalf("query %q:\nmvcc vectorized parallel (%d rows):\n%s\nlock mode (%d rows):\n%s",
				query, mvccVecPar.Len(), format(mvccVecPar), withIdx.Len(), format(withIdx))
		}
	}
	if db.ParallelStats().ParallelScans == 0 || db.ParallelStats().ParallelAggregates == 0 {
		t.Fatalf("fuzz never exercised the parallel paths: %+v", db.ParallelStats())
	}
	if bs := db.BatchStats(); bs.BatchScans == 0 || bs.BatchAggregates == 0 {
		t.Fatalf("fuzz never exercised the vectorized paths: %+v", bs)
	}
}

func TestAggregatesMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	db, data := buildOracleDB(t, rng, 200)
	rs := mustQuery(t, db, "SELECT COUNT(*), COUNT(n), SUM(n), MIN(f), MAX(f) FROM t")
	row := rs.Rows[0]

	var cnt, cntN, sum int64
	var minF, maxF Value
	for _, r := range data {
		cnt++
		if r.n != nil {
			cntN++
			sum += r.n.(int64)
		}
		if r.f != nil {
			if minF == nil || r.f.(float64) < minF.(float64) {
				minF = r.f
			}
			if maxF == nil || r.f.(float64) > maxF.(float64) {
				maxF = r.f
			}
		}
	}
	if row[0] != cnt || row[1] != cntN || row[2] != sum {
		t.Fatalf("counts: got %v/%v/%v want %d/%d/%d", row[0], row[1], row[2], cnt, cntN, sum)
	}
	if Compare(row[3], minF) != 0 || Compare(row[4], maxF) != 0 {
		t.Fatalf("min/max: got %v/%v want %v/%v", row[3], row[4], minF, maxF)
	}

	// GROUP BY n cross-check.
	rs = mustQuery(t, db, "SELECT n, COUNT(*) FROM t WHERE n IS NOT NULL GROUP BY n ORDER BY n")
	wantGroups := map[int64]int64{}
	for _, r := range data {
		if r.n != nil {
			wantGroups[r.n.(int64)]++
		}
	}
	if len(rs.Rows) != len(wantGroups) {
		t.Fatalf("groups = %d, want %d", len(rs.Rows), len(wantGroups))
	}
	for _, row := range rs.Rows {
		if wantGroups[row[0].(int64)] != row[1].(int64) {
			t.Fatalf("group %v count %v, want %d", row[0], row[1], wantGroups[row[0].(int64)])
		}
	}
}
