package sqldb

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"genmapper/internal/cache"
)

// DefaultStmtCacheCapacity bounds the internal statement cache. Workloads
// issue a small set of statement shapes (the GAM repository uses ~30) many
// millions of times, so a few hundred entries give parse-once behavior
// without unbounded memory growth.
const DefaultStmtCacheCapacity = 512

// Stmt is a prepared statement: SQL parsed once and, for SELECT / UPDATE /
// DELETE, planned once. A Stmt is safe for concurrent use; executions share
// the immutable plan and carry all per-execution state privately.
//
// Plans depend on the schema (tables, columns, indexes), so each prepared
// form records the schema generation it was built under and transparently
// re-prepares after DDL.
type Stmt struct {
	db   *DB
	sql  string
	prep atomic.Pointer[prepared]
}

// prepared is one immutable compiled form of a statement.
type prepared struct {
	gen     uint64
	sel     *selectPlan  // non-nil for SELECT
	upd     *updatePlan  // non-nil for UPDATE
	del     *deletePlan  // non-nil for DELETE
	expl    *explainPlan // non-nil for EXPLAIN
	write   Statement    // parsed AST for every other statement
	nParams int
}

// checkArgs restores the seed engine's eager argument validation: a missing
// `?` binding errors deterministically instead of depending on whether the
// chosen access path happens to evaluate the parameter.
func (p *prepared) checkArgs(args []Value) error {
	if len(args) < p.nParams {
		return fmt.Errorf("sqldb: not enough arguments: need at least %d", p.nParams)
	}
	return nil
}

// statementParamCount returns the number of `?` positions a statement uses.
func statementParamCount(st Statement) int {
	max := 0
	visit := func(exprs ...Expr) {
		for _, e := range exprs {
			if e == nil {
				continue
			}
			if k := countParams(e); k > max {
				max = k
			}
		}
	}
	switch s := st.(type) {
	case *SelectStmt:
		visit(s.Where, s.Having, s.Limit, s.Offset)
		for _, it := range s.Items {
			visit(it.Expr)
		}
		for _, j := range s.Joins {
			visit(j.On)
		}
		visit(s.GroupBy...)
		for _, o := range s.OrderBy {
			visit(o.Expr)
		}
	case *InsertStmt:
		for _, row := range s.Rows {
			visit(row...)
		}
	case *UpdateStmt:
		for _, set := range s.Sets {
			visit(set.Expr)
		}
		visit(s.Where)
	case *DeleteStmt:
		visit(s.Where)
	case *ExplainStmt:
		// EXPLAIN never evaluates parameters; unbound `?` positions render
		// as "?" in the plan document.
		return 0
	}
	return max
}

// SQL returns the statement text.
func (s *Stmt) SQL() string { return s.sql }

// ensure returns the statement's compiled form for the current schema
// generation, (re)parsing and (re)planning when needed. Planning reads
// only the copy-on-write catalog and atomic planner knobs, so callers on
// the MVCC path run it with no database lock; lock-mode callers hold
// db.mu (shared or exclusive). Concurrent callers may both prepare; each
// builds a private AST, so the losing Store is merely redundant work.
func (s *Stmt) ensure(db *DB) (*prepared, error) {
	gen := db.gen.Load()
	if p := s.prep.Load(); p != nil && p.gen == gen {
		return p, nil
	}
	st, err := Parse(s.sql)
	if err != nil {
		return nil, err
	}
	p := &prepared{gen: gen, nParams: statementParamCount(st)}
	switch stmt := st.(type) {
	case *SelectStmt:
		plan, err := planSelect(db, stmt)
		if err != nil {
			return nil, err
		}
		p.sel = plan
	case *UpdateStmt:
		plan, err := planUpdate(db, stmt)
		if err != nil {
			return nil, err
		}
		p.upd = plan
	case *DeleteStmt:
		plan, err := planDelete(db, stmt)
		if err != nil {
			return nil, err
		}
		p.del = plan
	case *ExplainStmt:
		ep, err := planExplain(db, stmt)
		if err != nil {
			return nil, err
		}
		p.expl = ep
	default:
		p.write = st
	}
	s.prep.Store(p)
	return p, nil
}

// Query executes the prepared statement as a SELECT. In lock mode it
// holds db.mu shared for the whole execution; under MVCC it takes no
// database lock at all — it registers a snapshot epoch and resolves row
// visibility against it, so a concurrent writer (even one holding the
// writer lock across a long transaction) never stalls the read.
func (s *Stmt) Query(args ...any) (*ResultSet, error) {
	vals, err := normalizeArgs(args)
	if err != nil {
		return nil, err
	}
	db := s.db
	if !db.mvcc.Load() {
		db.mu.RLock()
		if !db.mvcc.Load() {
			// The shared lock pins the mode (SetMVCC stores it under
			// exclusive db.mu), so the raw lock-mode reads are safe.
			defer db.mu.RUnlock()
			p, err := s.ensure(db)
			if err != nil {
				return nil, err
			}
			if p.expl != nil {
				return db.explainResult(p.expl)
			}
			if p.sel == nil {
				return nil, fmt.Errorf("sqldb: Query requires a SELECT statement")
			}
			if err := p.checkArgs(vals); err != nil {
				return nil, err
			}
			return db.executeSelect(p.sel, vals)
		}
		// SetMVCC(true) completed between the check and the shared lock:
		// latched writers (which hold db.mu shared, not exclusive) may
		// already be installing versions, so fall through to the MVCC
		// read path. The reverse race — a stale MVCC read while the mode
		// flips off — is harmless: lockPart reads synchronize on the
		// partition locks that every writer path takes around map writes.
		db.mu.RUnlock()
	}
	snap := db.snaps.acquire(db)
	defer db.snaps.release(snap)
	return s.queryVis(vals, visibility{snap: snap, lockPart: true})
}

// queryVis executes the statement as a SELECT at an explicit visibility,
// without any database lock (MVCC path; planning reads only the
// copy-on-write catalog and atomic knobs). The caller owns the snapshot
// registration.
func (s *Stmt) queryVis(vals []Value, vis visibility) (*ResultSet, error) {
	db := s.db
	p, err := s.ensure(db)
	if err != nil {
		return nil, err
	}
	if p.expl != nil {
		return db.explainResult(p.expl)
	}
	if p.sel == nil {
		return nil, fmt.Errorf("sqldb: Query requires a SELECT statement")
	}
	if err := p.checkArgs(vals); err != nil {
		return nil, err
	}
	return db.executeSelectVis(p.sel, vals, vis)
}

// Exec executes the prepared statement as a write or DDL statement.
func (s *Stmt) Exec(args ...any) (Result, error) {
	vals, err := normalizeArgs(args)
	if err != nil {
		return Result{}, err
	}
	// Reject statement kinds Exec can never run BEFORE taking the writer
	// lock: db.Exec("COMMIT") while a transaction is open must error, not
	// block behind it forever.
	switch leadingKeyword(s.sql) {
	case "SELECT":
		return Result{}, fmt.Errorf("sqldb: Exec cannot run SELECT; use Query")
	case "EXPLAIN":
		return Result{}, fmt.Errorf("sqldb: Exec cannot run EXPLAIN; use Query")
	case "BEGIN", "COMMIT", "ROLLBACK":
		return Result{}, fmt.Errorf("%s", errTxnControlExec)
	}
	// Likewise surface syntax errors before locking (the caller may itself
	// hold an open transaction). Only the first use of a statement text
	// pays this extra parse; afterwards prep is populated.
	if s.prep.Load() == nil {
		if _, err := Parse(s.sql); err != nil {
			return Result{}, err
		}
	}
	db := s.db
	// MVCC UPDATE/DELETE takes the latched concurrent path: db.mu shared
	// plus the write latches of the partitions the statement touches, so
	// disjoint writers commit in parallel (see latch.go). Everything else
	// — INSERT (row-ID allocation must follow WAL order), DDL, lock mode —
	// serializes on the global writer lock as before.
	if db.mvcc.Load() {
		res, lsn, handled, err := db.execLatched(s, vals)
		if handled {
			if err != nil {
				return Result{}, err
			}
			if d := db.durable; d != nil && lsn != 0 {
				if err := d.wait(lsn); err != nil {
					return res, err
				}
			}
			return res, nil
		}
	}
	db.writer.Lock()
	db.mu.Lock()
	res, lsn, err := db.execPrepared(s, vals)
	db.mu.Unlock()
	db.writer.Unlock()
	if err != nil {
		return Result{}, err
	}
	// Durability wait happens outside the locks: while this committer
	// waits on the fsync, the next one can already execute and join the
	// same flush round (group commit).
	if d := db.durable; d != nil && lsn != 0 {
		if err := d.wait(lsn); err != nil {
			return res, err
		}
	}
	return res, nil
}

// leadingKeyword returns the first keyword of a statement, upper-cased,
// skipping whitespace and `--` line comments. Every statement of this
// grammar starts with its defining keyword, so this classifies without
// parsing (and without any lock).
func leadingKeyword(sql string) string {
	i := 0
	for i < len(sql) {
		switch {
		case sql[i] == ' ' || sql[i] == '\t' || sql[i] == '\n' || sql[i] == '\r':
			i++
		case strings.HasPrefix(sql[i:], "--"):
			for i < len(sql) && sql[i] != '\n' {
				i++
			}
		default:
			j := i
			for j < len(sql) && (sql[j] >= 'a' && sql[j] <= 'z' || sql[j] >= 'A' && sql[j] <= 'Z') {
				j++
			}
			return strings.ToUpper(sql[i:j])
		}
	}
	return ""
}

// Prepare returns a prepared statement for the SQL text, parsing and
// planning it immediately. Prepared statements are shared with the internal
// statement cache, so preparing a hot statement also warms the string-based
// Query/Exec path for the same text.
func (db *DB) Prepare(sql string) (*Stmt, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := db.stmts.get(db, sql)
	if _, err := s.ensure(db); err != nil {
		return nil, err
	}
	return s, nil
}

// ---------------------------------------------------------------------------
// Statement cache

// stmtCache is a bounded, approximately-LRU cache of prepared statements
// keyed by SQL text. One cache serves DB.Query, DB.Exec, Tx.Exec and
// DB.Prepare, so every path gets parse-once behavior with no caller changes.
//
// Hits take a lock-free fast path (sync.Map lookup + atomic counter) so the
// concurrent read path the immutable-plan design enables does not serialize
// on a cache mutex; only every touchStride-th hit refreshes LRU recency
// under the lock. Misses, eviction and resizing take the mutex around the
// shared generic LRU (internal/cache).
type stmtCache struct {
	bySQL sync.Map // sql string -> *Stmt

	mu  sync.Mutex // guards lru
	lru *cache.LRU[string, *Stmt]

	hits, misses atomic.Uint64
	touches      atomic.Uint64
}

// touchStride is how many cache hits share one LRU-recency refresh.
const touchStride = 64

func newStmtCache(capacity int) *stmtCache {
	c := &stmtCache{lru: cache.New[string, *Stmt](capacity)}
	// Capacity eviction must also drop the lock-free lookup entry.
	c.lru.OnEvict(func(sql string, _ *Stmt) { c.bySQL.Delete(sql) })
	return c
}

// get returns the cached statement for sql, inserting a fresh (unprepared)
// one on miss. With a zero capacity every call returns a fresh statement,
// which restores parse-per-call behavior (used for benchmarking).
func (c *stmtCache) get(db *DB, sql string) *Stmt {
	if v, ok := c.bySQL.Load(sql); ok {
		c.hits.Add(1)
		if c.touches.Add(1)%touchStride == 0 {
			c.mu.Lock()
			// Touch is a no-op if the entry was evicted meanwhile.
			c.lru.Touch(sql)
			c.mu.Unlock()
		}
		return v.(*Stmt)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// Re-check: another goroutine may have inserted while we were unlocked.
	if v, ok := c.bySQL.Load(sql); ok {
		c.hits.Add(1)
		return v.(*Stmt)
	}
	c.misses.Add(1)
	s := &Stmt{db: db, sql: sql}
	if c.lru.Capacity() <= 0 {
		return s
	}
	c.bySQL.Store(sql, s)
	c.lru.Put(sql, s)
	return s
}

// invalidateAll clears every cached compiled form. Called on schema-
// generation bumps so plans release their *Table/*Index references at once
// (a dropped table's rows must not stay pinned until its statement text
// happens to be re-executed or evicted).
func (c *stmtCache) invalidateAll() {
	c.bySQL.Range(func(_, v any) bool {
		v.(*Stmt).prep.Store(nil)
		return true
	})
}

func (c *stmtCache) setCapacity(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.SetCapacity(n)
}

// StmtCacheStats reports statement-cache effectiveness.
type StmtCacheStats struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Entries  int    `json:"entries"`
	Capacity int    `json:"capacity"`
}

// StmtCacheStats returns hit/miss counters and occupancy of the statement
// cache.
func (db *DB) StmtCacheStats() StmtCacheStats {
	c := db.stmts
	c.mu.Lock()
	defer c.mu.Unlock()
	return StmtCacheStats{
		Hits: c.hits.Load(), Misses: c.misses.Load(),
		Entries: c.lru.Len(), Capacity: c.lru.Capacity(),
	}
}

// SetStmtCacheCapacity resizes the statement cache. Zero disables caching
// (every call parses anew), which exists mainly so benchmarks can measure
// the parse-per-call baseline.
func (db *DB) SetStmtCacheCapacity(n int) { db.stmts.setCapacity(n) }

// ---------------------------------------------------------------------------
// Planner counters

// planCounters tallies executed access paths and join strategies.
type planCounters struct {
	fullScans     atomic.Uint64
	indexEq       atomic.Uint64
	indexIn       atomic.Uint64
	indexRange    atomic.Uint64
	orderedScans  atomic.Uint64
	indexJoins    atomic.Uint64
	hashJoins     atomic.Uint64
	nestedJoins   atomic.Uint64
	earlyLimitHit atomic.Uint64

	// Partition-parallel operator executions (see parallel.go).
	parScans  atomic.Uint64
	parAggs   atomic.Uint64
	parWrites atomic.Uint64

	// Vectorized batch operator executions (see batch.go).
	batchScans atomic.Uint64
	batchAggs  atomic.Uint64
}

// PlanStats is a snapshot of the planner's execution counters: how often
// each access path and join strategy actually ran.
type PlanStats struct {
	FullScans       uint64 `json:"full_scans"`
	IndexEqScans    uint64 `json:"index_eq_scans"`
	IndexInScans    uint64 `json:"index_in_scans"`
	IndexRangeScans uint64 `json:"index_range_scans"`
	OrderedScans    uint64 `json:"ordered_scans"`
	IndexJoins      uint64 `json:"index_joins"`
	HashJoins       uint64 `json:"hash_joins"`
	NestedJoins     uint64 `json:"nested_loop_joins"`
	EarlyLimitHits  uint64 `json:"early_limit_hits"`
}

// PlanStats returns a snapshot of the planner's execution counters.
func (db *DB) PlanStats() PlanStats {
	c := &db.plans
	return PlanStats{
		FullScans:       c.fullScans.Load(),
		IndexEqScans:    c.indexEq.Load(),
		IndexInScans:    c.indexIn.Load(),
		IndexRangeScans: c.indexRange.Load(),
		OrderedScans:    c.orderedScans.Load(),
		IndexJoins:      c.indexJoins.Load(),
		HashJoins:       c.hashJoins.Load(),
		NestedJoins:     c.nestedJoins.Load(),
		EarlyLimitHits:  c.earlyLimitHit.Load(),
	}
}

// SetIndexAccess enables or disables index use by the planner. Disabling
// forces full scans and hash/nested-loop joins — the execution model of the
// seed engine — which the oracle tests and benchmarks compare against.
// Toggling bumps the schema generation so cached plans are rebuilt.
func (db *DB) SetIndexAccess(enabled bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.noIndex.Store(!enabled)
	db.bumpSchemaGen()
}
