package sqldb

import "testing"

func TestLikeOnIntColAfterCmpKernel(t *testing.T) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if _, err := db.Exec("INSERT INTO t (a) VALUES (?)", int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Row leg: should be a graceful "LIKE requires TEXT operands" error.
	db.SetBatchExecution(false)
	_, err := db.Query("SELECT a FROM t WHERE a > 3 AND a LIKE 'x%'")
	t.Logf("row leg err: %v", err)
	db.SetBatchExecution(true)
	_, err = db.Query("SELECT a FROM t WHERE a > 3 AND a LIKE 'x%'")
	t.Logf("batch leg err: %v", err)
}
