package sqldb

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DB is an embedded relational database instance. It is safe for concurrent
// use. Two execution modes share the same versioned storage (see mvcc.go):
// in lock mode (the default) readers take a shared lock and writers an
// exclusive one, with transactions providing read-uncommitted isolation;
// with SetMVCC(true) readers run lock-free against a snapshot epoch and
// transactions get snapshot isolation with first-committer-wins conflicts.
type DB struct {
	mu     sync.RWMutex
	writer sync.Mutex // serializes writers and spans transactions

	// tables is the copy-on-write catalog: the map value is immutable and
	// republished whole by DDL (under writer + exclusive mu), so lock-free
	// MVCC planning and execution can resolve tables with a single atomic
	// load.
	tables atomic.Pointer[map[string]*Table]

	// gen is the schema generation, bumped by every DDL change (and its
	// rollback). Prepared plans record the generation they were built under
	// and are transparently rebuilt when it moves. Written under mu; read
	// atomically so parallel scan workers (which never take mu, see
	// parallel.go) can poll it between batches.
	gen atomic.Uint64
	// noIndex disables index access paths in the planner (see
	// SetIndexAccess). Atomic: the MVCC planning path reads it lock-free.
	noIndex atomic.Bool

	// nparts is the hash-partition count for newly created tables (0 =
	// default, one per CPU). Guarded by mu; SetPartitions re-shards
	// existing tables too.
	nparts int
	// par is the runtime parallel-execution hint (see parallel.go).
	par parallelSettings
	// batch is the runtime vectorized-execution hint (see batch.go).
	batch batchSettings

	// MVCC state (see mvcc.go). epoch is the commit epoch: provisional
	// versions become visible when publishCommit stamps them and advances
	// it (always after the WAL append). txSeq hands out transaction IDs
	// for provisional stamps; snaps tracks active snapshots for vacuum.
	mvcc             atomic.Bool
	epoch            atomic.Uint64
	txSeq            atomic.Uint64
	snaps            snapTracker
	mvccCommits      atomic.Uint64
	mvccAborts       atomic.Uint64
	mvccConflicts    atomic.Uint64
	vacuumRuns       atomic.Uint64
	versionsVacuumed atomic.Uint64
	lastVacuum       atomic.Uint64 // mvccCommits value at the last background pass
	latchWaits       atomic.Uint64
	bgVacuums        atomic.Uint64
	snapsAborted     atomic.Uint64
	retention        atomic.Int64 // snapshot retention budget, ns (0 = unbounded)

	// commitMu serializes latched (concurrent UPDATE/DELETE) commits at
	// their narrowest point: the WAL append + publishCommit epoch advance.
	// Latched committers hold db.mu SHARED plus their partition latches;
	// exclusive-mu holders (the INSERT/DDL global path, vacuum,
	// checkpoint, recovery) are excluded from them by mu itself and so
	// never need commitMu. Last in the lock order.
	commitMu sync.Mutex

	// Background vacuum goroutine state (see mvcc.go). vacMu guards the
	// handle and interval; the goroutine runs while MVCC is on.
	vacMu       sync.Mutex
	vac         *vacuumer
	vacInterval time.Duration

	// Mode-switch gate (see SetMVCC): Begins register with the gate so a
	// mode flip drains in-flight transactions instead of stranding their
	// provisional versions. All four fields are guarded by switchMu.
	switchMu   sync.Mutex
	switchCond *sync.Cond
	switching  bool
	activeTx   int

	// stmts caches prepared statements by SQL text so repeated Query/Exec
	// calls parse and plan once.
	stmts *stmtCache
	// plans counts executed access paths and join strategies.
	plans planCounters

	// durable, when non-nil, is the write-ahead-log state of a database
	// opened with OpenDurable: every commit appends a logical record and is
	// acknowledged only once the record is on stable storage (per the
	// configured fsync policy). Nil for in-memory databases.
	durable *durability
}

// bumpSchemaGen advances the schema generation and eagerly clears cached
// compiled statements so plans drop their table/index references. Caller
// holds db.mu exclusively.
func (db *DB) bumpSchemaGen() {
	db.gen.Add(1)
	db.stmts.invalidateAll()
}

// tableMap returns the current catalog. The returned map is immutable;
// catalog changes republish a fresh map through putTable/delTable.
func (db *DB) tableMap() map[string]*Table { return *db.tables.Load() }

// storeTables publishes m as the whole catalog (bootstrap and restore).
// The caller must not mutate m afterwards.
func (db *DB) storeTables(m map[string]*Table) { db.tables.Store(&m) }

// putTable publishes the catalog with t added under key (copy-on-write;
// caller holds writer + exclusive mu).
func (db *DB) putTable(key string, t *Table) {
	old := db.tableMap()
	next := make(map[string]*Table, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[key] = t
	db.tables.Store(&next)
}

// delTable publishes the catalog with key removed (copy-on-write; caller
// holds writer + exclusive mu).
func (db *DB) delTable(key string) {
	old := db.tableMap()
	next := make(map[string]*Table, len(old))
	for k, v := range old {
		if k != key {
			next[k] = v
		}
	}
	db.tables.Store(&next)
}

// Result reports the outcome of a write statement.
type Result struct {
	LastInsertID int64
	RowsAffected int64
}

// NewDB creates an empty database.
func NewDB() *DB {
	db := &DB{stmts: newStmtCache(DefaultStmtCacheCapacity)}
	db.switchCond = sync.NewCond(&db.switchMu)
	db.storeTables(make(map[string]*Table))
	return db
}

func (db *DB) table(name string) *Table {
	return db.tableMap()[strings.ToLower(name)]
}

// TableNames returns the names of all tables in sorted order.
func (db *DB) TableNames() []string {
	m := db.tableMap()
	names := make([]string, 0, len(m))
	for _, t := range m {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}

// TableInfo returns the schema of the named table, or nil when absent.
func (db *DB) TableInfo(name string) *Schema {
	t := db.table(name)
	if t == nil {
		return nil
	}
	return t.Schema
}

// RowCount returns the number of rows in a table (0 when absent).
func (db *DB) RowCount(name string) int {
	t := db.table(name)
	if t == nil {
		return 0
	}
	return t.RowCount()
}

// Query executes a SELECT statement with optional positional arguments
// bound to `?` placeholders. Statements are parsed and planned once and
// cached by SQL text, so repeated calls skip straight to execution.
func (db *DB) Query(sql string, args ...any) (*ResultSet, error) {
	return db.stmts.get(db, sql).Query(args...)
}

// Exec executes a write or DDL statement through the statement cache.
// BEGIN/COMMIT/ROLLBACK are rejected here; use Begin for transactions.
func (db *DB) Exec(sql string, args ...any) (Result, error) {
	return db.stmts.get(db, sql).Exec(args...)
}

// errTxnControl rejects BEGIN/COMMIT/ROLLBACK outside resp. inside a
// transaction with the appropriate message.
const (
	errTxnControlExec = "sqldb: use DB.Begin for transaction control"
	errTxnControlTx   = "sqldb: nested transaction control is not supported"
)

// validateExec rejects statements Exec must not run and checks arguments.
func (p *prepared) validateExec(vals []Value, txnControlErr string) error {
	if p.sel != nil {
		return fmt.Errorf("sqldb: Exec cannot run SELECT; use Query")
	}
	if p.expl != nil {
		return fmt.Errorf("sqldb: Exec cannot run EXPLAIN; use Query")
	}
	switch p.write.(type) {
	case *BeginStmt, *CommitStmt, *RollbackStmt:
		return fmt.Errorf("%s", txnControlErr)
	}
	return p.checkArgs(vals)
}

// newWriteCtx builds the write context for one auto-commit statement:
// under MVCC the snapshot is captured while holding the writer lock, so
// it is the latest epoch and auto-commit writes can never conflict.
func (db *DB) newWriteCtx() *writeCtx {
	w := &writeCtx{}
	if db.mvcc.Load() {
		w.mvcc = true
		w.tx = db.txSeq.Add(1)
		w.snap = db.epoch.Load()
	}
	return w
}

// execPrepared runs a non-SELECT prepared statement as one auto-commit
// transaction. Caller holds writer and db.mu exclusively. On a durable
// database the commit record is appended (in log order, inside the
// exclusive section) and its LSN returned; the caller waits for
// durability after releasing the locks so concurrent committers can share
// one fsync. Under MVCC the statement's provisional versions are
// published — made visible to snapshot readers — only after the append
// succeeds.
func (db *DB) execPrepared(s *Stmt, vals []Value) (Result, uint64, error) {
	p, err := s.ensure(db)
	if err != nil {
		return Result{}, 0, err
	}
	if err := p.validateExec(vals, errTxnControlExec); err != nil {
		return Result{}, 0, err
	}
	undo := &undoLog{}
	w := db.newWriteCtx()
	res, err := db.executeWrite(p, vals, undo, w)
	if err != nil {
		undo.rollback(db)
		db.abortProvisional(w.installed)
		return Result{}, 0, err
	}
	var lsn uint64
	// No-change statements (no undo entries) need no log record; this
	// keeps re-runs of idempotent DDL (gam.Open's CREATE ... IF NOT
	// EXISTS bootstrap) from growing the log at every process start.
	if d := db.durable; d != nil && len(undo.entries) > 0 {
		lsn, err = d.logCommit([]logStmt{{sql: s.sql, args: vals}})
		if err != nil {
			// The log is unavailable, so the write can never be made
			// durable: undo it and fail the statement.
			undo.rollback(db)
			db.abortProvisional(w.installed)
			return Result{}, 0, err
		}
	}
	db.publishCommit(w.installed)
	return res, lsn, nil
}

func normalizeArgs(args []any) ([]Value, error) {
	vals := make([]Value, len(args))
	for i, a := range args {
		v, err := Normalize(a)
		if err != nil {
			return nil, fmt.Errorf("sqldb: argument %d: %w", i+1, err)
		}
		vals[i] = v
	}
	return vals, nil
}

// ---------------------------------------------------------------------------
// Undo log

type undoEntry interface{ undo(db *DB) }

type undoLog struct {
	entries []undoEntry
}

func (u *undoLog) add(e undoEntry) { u.entries = append(u.entries, e) }

// rollback applies undo entries in reverse order. Caller holds db.mu.
func (u *undoLog) rollback(db *DB) {
	u.rollbackTo(db, 0)
}

// rollbackTo undoes every entry past mark, in reverse order, and truncates
// the log back to mark. It gives Tx.Exec statement-level atomicity: a
// statement that fails mid-way (say row 3 of a multi-row INSERT) unwinds
// only its own entries, leaving earlier statements of the transaction
// intact. Caller holds db.mu.
func (u *undoLog) rollbackTo(db *DB, mark int) {
	for i := len(u.entries) - 1; i >= mark; i-- {
		u.entries[i].undo(db)
	}
	u.entries = u.entries[:mark]
}

// insertUndo removes an inserted row AND restores the row/sequence
// counters captured before the insert. Undo entries run in reverse order,
// so the final rollback leaves the counters exactly where the transaction
// found them: a rolled-back transaction consumes no IDs, which keeps a
// live database byte-identical to one that recovers from the WAL (where
// rolled-back transactions never appear at all). The same entry serves
// both modes: an MVCC insert's provisional version is simply removed
// outright (fresh row IDs have single-version chains).
type insertUndo struct {
	table   string
	rowID   int64
	prevRow int64
	prevSeq int64
}

func (e insertUndo) undo(db *DB) {
	if t := db.table(e.table); t != nil {
		t.undoInsert(e.rowID)
		t.nextRow = e.prevRow
		t.nextSeq = e.prevSeq
	}
}

type deleteUndo struct {
	table string
	rowID int64
	row   []Value
}

func (e deleteUndo) undo(db *DB) {
	if t := db.table(e.table); t != nil {
		t.restore(e.rowID, e.row)
	}
}

type updateUndo struct {
	table string
	rowID int64
	old   []Value
}

func (e updateUndo) undo(db *DB) {
	if t := db.table(e.table); t != nil {
		t.undoUpdate(e.rowID, e.old)
	}
}

// mvccUpdateUndo unlinks the provisional version an MVCC update chained
// onto the row and removes exactly the index entries the update
// introduced (unless another version of the chain still needs them).
type mvccUpdateUndo struct {
	table string
	rowID int64
	ver   *rowVersion
	added []idxKeyAdd
}

func (e mvccUpdateUndo) undo(db *DB) {
	t := db.table(e.table)
	if t == nil {
		return
	}
	t.unlinkVersion(e.rowID, e.ver)
	if len(e.added) == 0 {
		return
	}
	head := t.part(e.rowID).rows[e.rowID]
	for _, a := range e.added {
		if !chainHasKey(head, a.idx.Col, a.key) {
			a.idx.delete(a.key, e.rowID)
		}
	}
}

// mvccDeleteUndo unlinks the provisional deletion tombstone and restores
// the live-row count (index and ID-slice entries were never touched).
type mvccDeleteUndo struct {
	table string
	rowID int64
	ver   *rowVersion
}

func (e mvccDeleteUndo) undo(db *DB) {
	if t := db.table(e.table); t != nil {
		t.unlinkVersion(e.rowID, e.ver)
		t.live.Add(1)
	}
}

type createTableUndo struct{ name string }

func (e createTableUndo) undo(db *DB) {
	db.delTable(strings.ToLower(e.name))
	db.bumpSchemaGen()
}

type dropTableUndo struct{ table *Table }

func (e dropTableUndo) undo(db *DB) {
	db.putTable(strings.ToLower(e.table.Name), e.table)
	db.bumpSchemaGen()
}

type createIndexUndo struct {
	table string
	name  string
}

func (e createIndexUndo) undo(db *DB) {
	if t := db.table(e.table); t != nil {
		t.removeIndex(e.name)
	}
	db.bumpSchemaGen()
}

type dropIndexUndo struct {
	table string
	idx   *Index
}

func (e dropIndexUndo) undo(db *DB) {
	if t := db.table(e.table); t != nil {
		t.setIndex(e.idx.Name, e.idx)
	}
	db.bumpSchemaGen()
}

// ---------------------------------------------------------------------------
// Write-statement execution. Caller holds db.mu exclusively.

func (db *DB) executeWrite(p *prepared, args []Value, undo *undoLog, w *writeCtx) (Result, error) {
	// UPDATE and DELETE run on their cached plans (access path chosen and
	// columns bound once at prepare time).
	switch {
	case p.upd != nil:
		return db.executeUpdate(p.upd, args, undo, w)
	case p.del != nil:
		return db.executeDelete(p.del, args, undo, w)
	}
	switch s := p.write.(type) {
	case *InsertStmt:
		return db.executeInsert(s, args, undo, w)
	case *CreateTableStmt:
		return db.executeCreateTable(s, undo)
	case *CreateIndexStmt:
		return db.executeCreateIndex(s, undo)
	case *DropTableStmt:
		return db.executeDropTable(s, undo)
	case *DropIndexStmt:
		return db.executeDropIndex(s, undo)
	}
	return Result{}, fmt.Errorf("sqldb: unsupported statement %T", p.write)
}

func (db *DB) executeInsert(st *InsertStmt, args []Value, undo *undoLog, w *writeCtx) (Result, error) {
	t := db.table(st.Table)
	if t == nil {
		return Result{}, fmt.Errorf("sqldb: no such table %q", st.Table)
	}
	// Map statement columns to schema positions.
	colPos := make([]int, 0, len(st.Columns))
	if len(st.Columns) == 0 {
		for i := range t.Schema.Columns {
			colPos = append(colPos, i)
		}
	} else {
		for _, c := range st.Columns {
			ci := t.Schema.ColumnIndex(c)
			if ci < 0 {
				return Result{}, fmt.Errorf("sqldb: no column %q in table %s", c, t.Name)
			}
			colPos = append(colPos, ci)
		}
	}
	penv := paramEnv(args)
	var res Result
	for _, rowExprs := range st.Rows {
		if len(rowExprs) != len(colPos) {
			return Result{}, fmt.Errorf("sqldb: INSERT expects %d values, got %d", len(colPos), len(rowExprs))
		}
		full := make([]Value, len(t.Schema.Columns))
		for i, e := range rowExprs {
			v, err := e.Eval(penv)
			if err != nil {
				return Result{}, err
			}
			full[colPos[i]] = v
		}
		prevRow, prevSeq := t.nextRow, t.nextSeq
		id, err := t.insertRow(w, full)
		if err != nil {
			return Result{}, err
		}
		undo.add(insertUndo{table: t.Name, rowID: id, prevRow: prevRow, prevSeq: prevSeq})
		res.RowsAffected++
		// LastInsertID reports the autoincrement value when present, else
		// the row ID.
		if pk := t.Schema.PrimaryKeyIndex(); pk >= 0 {
			if n, ok := t.get(id, w.vis())[pk].(int64); ok {
				res.LastInsertID = n
				continue
			}
		}
		res.LastInsertID = id
	}
	return res, nil
}

// collectWriteMatches returns the IDs of rows satisfying the write plan's
// WHERE clause (nil = all), via the plan's precomputed access path. Rows
// resolve at the writer's visibility (newest committed state plus its own
// provisional versions); under MVCC, stale index entries awaiting vacuum
// are filtered by re-evaluating the WHERE clause against the visible row.
func (db *DB) collectWriteMatches(wp *writePlan, args []Value, w *writeCtx) ([]int64, error) {
	return db.collectMatches(wp, args, w, true)
}

// collectMatches is collectWriteMatches with plan-counter accounting made
// optional: the latched path's unlatched prescan (which only seeds the
// latch set and is always re-run under latches) passes counted=false so
// each statement still counts one access-path execution.
func (db *DB) collectMatches(wp *writePlan, args []Value, w *writeCtx, counted bool) ([]int64, error) {
	t := wp.t
	env := wp.newEnv(args)
	vis := w.vis()
	var ids []int64
	check := func(id int64, row []Value) error {
		if wp.where == nil {
			ids = append(ids, id)
			return nil
		}
		env.SetRow(0, row)
		v, err := wp.where.Eval(env)
		if err != nil {
			return err
		}
		b, isNull := toBool(v)
		if !isNull && b {
			ids = append(ids, id)
		}
		return nil
	}

	if wp.access.kind != accessScan {
		if counted {
			switch wp.access.kind {
			case accessEq:
				db.plans.indexEq.Add(1)
			case accessIn:
				db.plans.indexIn.Add(1)
			case accessRange:
				db.plans.indexRange.Add(1)
			}
		}
		candidates, err := collectAccessIDs(&wp.access, env)
		if err != nil {
			return nil, err
		}
		for _, id := range candidates {
			row := t.get(id, vis)
			if row == nil {
				continue
			}
			if err := check(id, row); err != nil {
				return nil, err
			}
		}
		return ids, nil
	}
	// Full-scan candidate collection goes partition-parallel past the
	// cardinality threshold: the global path holds the database
	// exclusively, so the workers read their partitions without further
	// locking. The latched path must stay serial — it holds db.mu only
	// shared, and its visibility takes partition read locks per row.
	if db.parallelEligible(t) && !w.latched {
		if counted {
			db.plans.parWrites.Add(1)
		}
		return parallelCollectMatches(db, wp, args, vis)
	}
	if counted {
		db.plans.fullScans.Add(1)
	}
	var scanErr error
	t.scanVis(vis, func(id int64, row []Value) bool {
		if err := check(id, row); err != nil {
			scanErr = err
			return false
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	return ids, nil
}

func (db *DB) executeUpdate(p *updatePlan, args []Value, undo *undoLog, w *writeCtx) (Result, error) {
	ids, err := db.collectWriteMatches(&p.writePlan, args, w)
	if err != nil {
		return Result{}, err
	}
	return db.applyUpdate(p, args, undo, w, ids)
}

// applyUpdate installs the new versions for the already-collected
// candidate IDs. Split from candidate collection so the latched path can
// run its latch-validate loop between the two (every id's partition is
// then latched, making the raw row-map reads in updateRow safe).
func (db *DB) applyUpdate(p *updatePlan, args []Value, undo *undoLog, w *writeCtx, ids []int64) (Result, error) {
	t := p.t
	env := p.newEnv(args)
	vis := w.vis()
	var res Result
	for _, id := range ids {
		old := t.get(id, vis)
		if old == nil {
			continue
		}
		env.SetRow(0, old)
		next := make([]Value, len(old))
		copy(next, old)
		for i, e := range p.setExprs {
			v, err := e.Eval(env)
			if err != nil {
				return Result{}, err
			}
			next[p.setPos[i]] = v
		}
		coerced, err := t.coerceRow(next)
		if err != nil {
			return Result{}, err
		}
		oldCopy := make([]Value, len(old))
		copy(oldCopy, old)
		ver, added, err := t.updateRow(w, id, coerced)
		if err != nil {
			if errors.Is(err, ErrWriteConflict) {
				db.mvccConflicts.Add(1)
			}
			return Result{}, err
		}
		if w.mvcc {
			undo.add(mvccUpdateUndo{table: t.Name, rowID: id, ver: ver, added: added})
		} else {
			undo.add(updateUndo{table: t.Name, rowID: id, old: oldCopy})
		}
		res.RowsAffected++
	}
	return res, nil
}

func (db *DB) executeDelete(p *deletePlan, args []Value, undo *undoLog, w *writeCtx) (Result, error) {
	ids, err := db.collectWriteMatches(&p.writePlan, args, w)
	if err != nil {
		return Result{}, err
	}
	return db.applyDelete(p, undo, w, ids)
}

// applyDelete is applyUpdate's counterpart for DELETE (see there).
func (db *DB) applyDelete(p *deletePlan, undo *undoLog, w *writeCtx, ids []int64) (Result, error) {
	t := p.t
	vis := w.vis()
	var res Result
	for _, id := range ids {
		row := t.get(id, vis)
		if row == nil {
			continue
		}
		if w.mvcc {
			ver, err := t.deleteRow(w, id)
			if err != nil {
				if errors.Is(err, ErrWriteConflict) {
					db.mvccConflicts.Add(1)
				}
				return Result{}, err
			}
			if ver != nil {
				undo.add(mvccDeleteUndo{table: t.Name, rowID: id, ver: ver})
				res.RowsAffected++
			}
			continue
		}
		rowCopy := make([]Value, len(row))
		copy(rowCopy, row)
		if t.Delete(id) {
			undo.add(deleteUndo{table: t.Name, rowID: id, row: rowCopy})
			res.RowsAffected++
		}
	}
	return res, nil
}

func (db *DB) executeCreateTable(st *CreateTableStmt, undo *undoLog) (Result, error) {
	key := strings.ToLower(st.Name)
	if _, exists := db.tableMap()[key]; exists {
		if st.IfNotExists {
			return Result{}, nil
		}
		return Result{}, fmt.Errorf("sqldb: table %q already exists", st.Name)
	}
	schema, err := NewSchema(st.Columns)
	if err != nil {
		return Result{}, err
	}
	db.putTable(key, NewTablePartitions(st.Name, schema, db.partitionCount()))
	db.bumpSchemaGen()
	undo.add(createTableUndo{name: st.Name})
	return Result{}, nil
}

func (db *DB) executeCreateIndex(st *CreateIndexStmt, undo *undoLog) (Result, error) {
	t := db.table(st.Table)
	if t == nil {
		return Result{}, fmt.Errorf("sqldb: no such table %q", st.Table)
	}
	if _, exists := t.indexMap()[st.Name]; exists && st.IfNotExists {
		return Result{}, nil
	}
	// Large B-tree builds use the partition-parallel sorted-run path; the
	// caller holds the database exclusively (DDL), so its workers read the
	// partitions lock-free. Hash indexes and small tables stay serial.
	var err error
	if st.Kind == IndexBTree && db.parallelEligible(t) {
		_, err = t.CreateIndexParallel(st.Name, st.Column, st.Unique)
	} else {
		_, err = t.CreateIndex(st.Name, st.Column, st.Kind, st.Unique)
	}
	if err != nil {
		return Result{}, err
	}
	db.bumpSchemaGen()
	undo.add(createIndexUndo{table: t.Name, name: st.Name})
	return Result{}, nil
}

func (db *DB) executeDropTable(st *DropTableStmt, undo *undoLog) (Result, error) {
	key := strings.ToLower(st.Name)
	t, exists := db.tableMap()[key]
	if !exists {
		if st.IfExists {
			return Result{}, nil
		}
		return Result{}, fmt.Errorf("sqldb: no such table %q", st.Name)
	}
	db.delTable(key)
	db.bumpSchemaGen()
	undo.add(dropTableUndo{table: t})
	return Result{}, nil
}

func (db *DB) executeDropIndex(st *DropIndexStmt, undo *undoLog) (Result, error) {
	find := func() (*Table, *Index) {
		if st.Table != "" {
			t := db.table(st.Table)
			if t == nil {
				return nil, nil
			}
			return t, t.indexMap()[st.Name]
		}
		for _, t := range db.tableMap() {
			if idx, ok := t.indexMap()[st.Name]; ok {
				return t, idx
			}
		}
		return nil, nil
	}
	t, idx := find()
	if idx == nil {
		if st.IfExists {
			return Result{}, nil
		}
		return Result{}, fmt.Errorf("sqldb: no such index %q", st.Name)
	}
	t.removeIndex(idx.Name)
	db.bumpSchemaGen()
	undo.add(dropIndexUndo{table: t.Name, idx: idx})
	return Result{}, nil
}

// ---------------------------------------------------------------------------
// Transactions

// Tx is a transaction. In lock mode it is exclusive: while open it blocks
// all other writers and readers observe intermediate state (read
// uncommitted). Under MVCC it gets snapshot isolation: reads observe the
// database as of Begin (plus its own writes), the writer lock is acquired
// lazily at the first write statement, and writes to rows committed after
// the snapshot fail with ErrWriteConflict (first committer wins) — roll
// back and retry.
type Tx struct {
	db   *DB
	undo *undoLog
	done bool
	// logged accumulates the transaction's write statements for the WAL
	// (durable databases only). Commit appends them as ONE record, so
	// recovery replays the transaction atomically or not at all.
	logged []logStmt

	// MVCC state: the Begin snapshot, the provisional-version stamp, the
	// versions installed so far, and whether the writer lock is held yet.
	mvcc       bool
	id         uint64
	snap       uint64
	installed  []*rowVersion
	writerHeld bool
}

// Begin opens a transaction. In lock mode it blocks until any other
// writer finishes; under MVCC it only captures a snapshot (read-only
// transactions never serialize). Begin registers with the mode-switch
// gate, so it blocks while a SetMVCC drain is in progress.
func (db *DB) Begin() *Tx {
	db.txEnter()
	if db.mvcc.Load() {
		return &Tx{
			db:   db,
			undo: &undoLog{},
			mvcc: true,
			id:   db.txSeq.Add(1),
			snap: db.snaps.acquire(db),
		}
	}
	db.writer.Lock()
	return &Tx{db: db, undo: &undoLog{}}
}

// Exec runs a write statement inside the transaction. Statements go through
// the database's shared statement cache, so a transaction re-issuing the
// same shapes as the non-transactional path parses nothing anew.
func (tx *Tx) Exec(sql string, args ...any) (Result, error) {
	if tx.done {
		return Result{}, fmt.Errorf("sqldb: transaction already finished")
	}
	vals, err := normalizeArgs(args)
	if err != nil {
		return Result{}, err
	}
	db := tx.db
	if tx.mvcc {
		if db.snapRevoked(tx.snap) {
			return Result{}, ErrSnapshotTooOld
		}
		// Preparation is lock-free under MVCC, so the statement kind is
		// known before any lock is chosen. Eligible UPDATEs and DELETEs
		// take the concurrent latched path: db.mu shared plus the write
		// latches of the partitions they touch, so transactions on
		// disjoint partitions no longer serialize on the global writer
		// lock. Ineligible ones (see latchEligible) fall through.
		s := db.stmts.get(db, sql)
		p, err := s.ensure(db)
		if err != nil {
			return Result{}, err
		}
		if err := p.validateExec(vals, errTxnControlTx); err != nil {
			return Result{}, err
		}
		if latchEligible(p) != nil {
			res, handled, err := tx.execLatchedStmt(sql, s, vals)
			if handled {
				return res, err
			}
		}
		if !tx.writerHeld {
			// First INSERT or DDL: start serializing against the other
			// global writers — row-ID/AUTOINCREMENT allocation must happen
			// in WAL order (see mvcc.go). The snapshot stays at Begin —
			// commits that landed in between are exactly what conflictCheck
			// detects.
			db.writer.Lock()
			tx.writerHeld = true
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	p, err := db.stmts.get(db, sql).ensure(db)
	if err != nil {
		return Result{}, err
	}
	if err := p.validateExec(vals, errTxnControlTx); err != nil {
		return Result{}, err
	}
	w := &writeCtx{mvcc: tx.mvcc, tx: tx.id, snap: tx.snap}
	// Statements are atomic within the transaction: a failure unwinds the
	// statement's own changes immediately (not at Rollback), so a caller
	// that ignores the error and commits anyway commits exactly the
	// successful statements — which is also exactly what the WAL records.
	mark := len(tx.undo.entries)
	res, err := db.executeWrite(p, vals, tx.undo, w)
	if err != nil {
		tx.undo.rollbackTo(db, mark)
		db.abortProvisional(w.installed)
		return Result{}, err
	}
	tx.installed = append(tx.installed, w.installed...)
	// Statements that changed nothing (UPDATE matching no rows, CREATE
	// TABLE IF NOT EXISTS hitting an existing table) leave no undo entries
	// and need no log record: replaying them is a no-op by definition.
	if db.durable != nil && len(tx.undo.entries) > mark {
		tx.logged = append(tx.logged, logStmt{sql: sql, args: vals})
	}
	return res, nil
}

// Query runs a SELECT inside the transaction. In lock mode it observes
// the latest state (including the transaction's own writes); under MVCC
// it observes the Begin snapshot plus the transaction's own writes —
// repeatable reads for everything the transaction did not touch.
func (tx *Tx) Query(sql string, args ...any) (*ResultSet, error) {
	if tx.done {
		return nil, fmt.Errorf("sqldb: transaction already finished")
	}
	if tx.mvcc {
		if tx.db.snapRevoked(tx.snap) {
			return nil, ErrSnapshotTooOld
		}
		vals, err := normalizeArgs(args)
		if err != nil {
			return nil, err
		}
		vis := visibility{snap: tx.snap, tx: tx.id, lockPart: true}
		return tx.db.stmts.get(tx.db, sql).queryVis(vals, vis)
	}
	return tx.db.Query(sql, args...)
}

// Commit makes the transaction's changes permanent. On a durable database
// it appends the transaction's statements as one log record while still
// holding the writer lock (log order == commit order) and then waits for
// the record to reach stable storage per the fsync policy; the wait
// happens after the lock is released, so concurrent committers are
// acknowledged by a shared fsync (group commit). Under MVCC the
// transaction's provisional versions are published — stamped with the
// commit epoch, which is advanced last — strictly after the append, so
// snapshot readers can never observe a commit the log does not contain.
func (tx *Tx) Commit() error {
	if tx.done {
		return fmt.Errorf("sqldb: transaction already finished")
	}
	db := tx.db
	if tx.mvcc && !tx.writerHeld {
		return tx.commitConcurrent()
	}
	var lsn uint64
	if d := db.durable; d != nil && len(tx.logged) > 0 {
		var err error
		if lsn, err = d.logCommit(tx.logged); err != nil {
			// The log is unavailable: the transaction cannot be made
			// durable, so it must not become visible either.
			db.mu.Lock()
			tx.undo.rollback(db)
			db.abortProvisional(tx.installed)
			db.mu.Unlock()
			tx.finish()
			return err
		}
	}
	if tx.mvcc && len(tx.installed) > 0 {
		db.mu.Lock()
		db.publishCommit(tx.installed)
		db.mu.Unlock()
	}
	tx.finish()
	if d := db.durable; d != nil && lsn != 0 {
		return d.wait(lsn)
	}
	return nil
}

// commitConcurrent commits an MVCC transaction that never took the
// global writer lock (UPDATE/DELETE-only, the common OLTP shape): it
// holds db.mu only SHARED and serializes with other such committers on
// commitMu around the WAL append + epoch publication, so disjoint
// committers queue on one short mutex instead of the whole database. A
// snapshot revoked by the retention budget aborts here — its conflict
// checks were still sound, but the retention contract is that over-budget
// transactions do not commit.
func (tx *Tx) commitConcurrent() error {
	db := tx.db
	if db.snapRevoked(tx.snap) {
		db.mu.Lock()
		tx.undo.rollback(db)
		db.abortProvisional(tx.installed)
		db.mu.Unlock()
		tx.finish()
		return ErrSnapshotTooOld
	}
	var lsn uint64
	db.mu.RLock()
	db.commitMu.Lock()
	if d := db.durable; d != nil && len(tx.logged) > 0 {
		var err error
		if lsn, err = d.logCommit(tx.logged); err != nil {
			db.commitMu.Unlock()
			db.mu.RUnlock()
			db.mu.Lock()
			tx.undo.rollback(db)
			db.abortProvisional(tx.installed)
			db.mu.Unlock()
			tx.finish()
			return err
		}
	}
	db.publishCommit(tx.installed)
	db.commitMu.Unlock()
	db.mu.RUnlock()
	tx.finish()
	if d := db.durable; d != nil && lsn != 0 {
		return d.wait(lsn)
	}
	return nil
}

// finish releases the transaction's locks, snapshot registration, and
// mode-switch gate entry.
func (tx *Tx) finish() {
	tx.done = true
	tx.undo = nil
	tx.logged = nil
	tx.installed = nil
	if tx.mvcc {
		if tx.writerHeld {
			tx.db.writer.Unlock()
			tx.writerHeld = false
		}
		tx.db.snaps.release(tx.snap)
	} else {
		tx.db.writer.Unlock()
	}
	tx.db.txExit()
}

// Rollback reverts every change made in the transaction. Nothing reaches
// the WAL: a rolled-back transaction (including its DDL) is invisible to
// recovery, and under MVCC its provisional versions — never published —
// are unlinked before the writer lock is released.
func (tx *Tx) Rollback() error {
	if tx.done {
		return fmt.Errorf("sqldb: transaction already finished")
	}
	tx.db.mu.Lock()
	tx.undo.rollback(tx.db)
	tx.db.abortProvisional(tx.installed)
	tx.db.mu.Unlock()
	tx.finish()
	return nil
}
