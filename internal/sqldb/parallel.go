package sqldb

// Partition-parallel execution. Three operators exploit the hash-partitioned
// row storage (table.go):
//
//   - parallelScan: a streaming exchange for SELECTs whose access path is a
//     full scan with no joins. One worker goroutine per partition walks its
//     partition in ascending row-ID order, evaluates the WHERE clause and
//     the projection against a private row environment, and feeds batches
//     into a bounded channel; the consumer merges the per-partition streams
//     by row ID, so the output order is byte-identical to a serial scan.
//   - parallelGroups (exec.go hooks in here): partition-parallel aggregation
//     — each worker builds partial groups over its partition, merged at the
//     barrier in partition order with first-seen ordering reconstructed
//     from the smallest contributing row ID.
//   - parallelCollectMatches: partition-parallel candidate collection for
//     prepared UPDATE/DELETE plans (the old matchRows shape).
//
// Locking: scan workers never touch db.mu — a consumer may legitimately
// hold it (read-locked) for the whole drain, and a writer waiting on db.mu
// would otherwise deadlock the exchange (Go's RWMutex blocks new readers
// while a writer waits). Workers instead synchronize on the per-partition
// locks, which every storage mutation takes; they poll the schema
// generation at each batch and stop when it moves. In lock mode the
// aggregation workers run entirely under the caller's database read lock,
// so they read their partitions without further locking; under MVCC no
// database lock is held, so they copy visible rows out in bounded chunks
// under the partition read lock and evaluate outside it. The
// write-collection workers are helpers of the writer-lock holder — the
// only mutator — so they never lock partitions in either mode.

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultParallelMinRows is the cardinality threshold below which eligible
// statements stay serial: fan-out plus merge costs more than a small scan.
const DefaultParallelMinRows = 4096

const (
	// parBatchSize rows travel per exchange message, amortizing channel
	// synchronization.
	parBatchSize = 256
	// parChanDepth bounds each partition's exchange channel: workers run at
	// most this many batches ahead of the consumer.
	parChanDepth = 4
)

// parallelSettings is the DB-level execution hint, adjustable at runtime
// without any lock (commands plumb their -parallelism flag here).
type parallelSettings struct {
	// workers is the parallelism hint: <=1 forces serial execution, 0 means
	// "default" (GOMAXPROCS). Values >1 enable the parallel paths, which
	// then fan out one worker per partition.
	workers atomic.Int32
	// minRows overrides DefaultParallelMinRows when positive.
	minRows atomic.Int64
}

// ConfigureParallelism applies an explicit N-way parallelism request (the
// CLI -parallelism semantics): the execution hint always, and for N>1 also
// re-shards storage into N partitions — the default partition count tracks
// GOMAXPROCS, which may be lower than the requested fan-out. Re-sharding
// is a schema change (cached plans rebuild, open cursors invalidate), so
// this belongs at startup; use SetParallelism for the hint alone.
func (db *DB) ConfigureParallelism(n int) {
	db.SetParallelism(n)
	if n > 1 {
		db.SetPartitions(n)
	}
}

// SetParallelism sets the execution parallelism hint: 0 restores the
// default (one worker per CPU), 1 forces serial execution, and any larger
// value enables the partition-parallel access paths.
func (db *DB) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	db.par.workers.Store(int32(n))
}

// Parallelism returns the effective parallelism hint (the default resolves
// to GOMAXPROCS).
func (db *DB) Parallelism() int {
	if n := int(db.par.workers.Load()); n > 0 {
		return n
	}
	return defaultPartitions()
}

// SetParallelMinRows sets the row-count threshold below which eligible
// statements run serially (0 restores the default).
func (db *DB) SetParallelMinRows(n int64) {
	if n < 0 {
		n = 0
	}
	db.par.minRows.Store(n)
}

func (db *DB) parallelMinRows() int64 {
	if n := db.par.minRows.Load(); n > 0 {
		return n
	}
	return DefaultParallelMinRows
}

// parallelEligible reports whether a partition-parallel operator should run
// over t: the hint allows it, the table is actually partitioned, and the
// estimated cardinality (exact, for a full scan) clears the threshold.
func (db *DB) parallelEligible(t *Table) bool {
	return db.Parallelism() > 1 &&
		t.PartitionCount() > 1 &&
		int64(t.RowCount()) >= db.parallelMinRows()
}

// ---------------------------------------------------------------------------
// Parallel scan exchange

// parBatch is one exchange message: a run of filtered, projected rows from
// a single partition, ascending by row ID. A non-nil err aborts the scan.
type parBatch struct {
	ids  []int64
	rows [][]Value
	err  error
}

// parStream is the consumer side of one partition's exchange channel.
type parStream struct {
	ch   chan parBatch
	cur  parBatch
	pos  int
	open bool
}

// parallelScan runs one worker goroutine per partition and merges their
// streams back into global row-ID order.
type parallelScan struct {
	done    chan struct{}
	wg      sync.WaitGroup
	streams []*parStream
	closed  bool
	failed  error
}

// newParallelScan starts the exchange for the execution's base relation.
// In lock mode the caller holds db.mu (shared or exclusive); workers
// capture the partition set and the schema generation before it is
// released. Under MVCC no database lock is held and workers resolve rows
// at the execution's snapshot.
func newParallelScan(ex *selectExec) *parallelScan {
	rel := ex.p.rels[0]
	parts := rel.table.partList()
	ps := &parallelScan{done: make(chan struct{}), streams: make([]*parStream, len(parts))}
	gen := ex.db.gen.Load()
	args := ex.env.params
	for i, part := range parts {
		st := &parStream{ch: make(chan parBatch, parChanDepth), open: true}
		ps.streams[i] = st
		ps.wg.Add(1)
		go ps.worker(ex.db, ex.p, args, ex.vis, rel.off, part, gen, st.ch)
	}
	return ps
}

// send delivers a batch unless the scan was closed, reporting delivery.
func (ps *parallelScan) send(ch chan<- parBatch, b parBatch) bool {
	select {
	case ch <- b:
		return true
	case <-ps.done:
		return false
	}
}

// worker streams one partition: batches of live (id, row) pairs are pulled
// under the partition read lock, then filtered and projected outside any
// lock (row slices are immutable once published — updates swap whole
// slices). The position is re-synchronized through the partition mutation
// counter exactly like the serial scanProducer, so concurrent inserts,
// deletes and compaction never re-emit or skip a live row.
func (ps *parallelScan) worker(db *DB, p *selectPlan, args []Value, vis visibility, off int, part *tablePart, gen uint64, ch chan<- parBatch) {
	defer ps.wg.Done()
	defer close(ch)
	env := p.newEnv(args)
	wex := &selectExec{db: db, p: p, env: env, vis: vis}
	var (
		pos    int
		lastID int64
		mut    uint64
		first  = true
	)
	ids := make([]int64, 0, parBatchSize)
	rows := make([][]Value, 0, parBatchSize)
	for {
		ids, rows = ids[:0], rows[:0]
		part.mu.RLock()
		if db.gen.Load() != gen {
			part.mu.RUnlock()
			ps.send(ch, parBatch{err: ErrCursorInvalidated})
			return
		}
		view := part.ids.load()
		if first {
			mut, first = part.mut.Load(), false
		} else if m := part.mut.Load(); m != mut {
			pos = sort.Search(len(view), func(i int) bool { return view[i] > lastID })
			mut = m
		}
		for pos < len(view) && len(ids) < parBatchSize {
			id := view[pos]
			pos++
			row := part.rows[id].resolve(vis)
			if row == nil {
				continue // tombstone, or a version invisible at this snapshot
			}
			lastID = id
			ids = append(ids, id)
			rows = append(rows, row)
		}
		exhausted := pos >= len(view)
		part.mu.RUnlock()

		// Surviving rows are carved out of one slab per batch: the slab is
		// sized up front and never regrown, so earlier row slices stay
		// valid, and the whole batch costs three allocations instead of
		// one per row.
		var out parBatch
		var slab []Value
		width := len(p.projExprs)
		for i, id := range ids {
			env.SetRow(off, rows[i])
			pass, err := wex.evalWhere()
			if err != nil {
				ps.send(ch, parBatch{err: err})
				return
			}
			if !pass {
				continue
			}
			if slab == nil {
				slab = make([]Value, 0, (len(ids)-i)*width)
			}
			slab = slab[:len(slab)+width]
			prow := slab[len(slab)-width:]
			if err := wex.projectInto(prow); err != nil {
				ps.send(ch, parBatch{err: err})
				return
			}
			out.ids = append(out.ids, id)
			out.rows = append(out.rows, prow)
		}
		if len(out.ids) > 0 && !ps.send(ch, out) {
			return
		}
		if exhausted {
			return
		}
	}
}

// next returns the next merged output row (globally ascending by row ID),
// or (nil, nil) at exhaustion. The per-partition streams are individually
// ascending, so the minimum over the stream heads is the global next row.
func (ps *parallelScan) next() ([]Value, error) {
	if ps.failed != nil {
		return nil, ps.failed
	}
	best := -1
	var bestID int64
	for i, st := range ps.streams {
		for st.open && st.pos >= len(st.cur.ids) {
			b, ok := <-st.ch
			if !ok {
				st.open = false
				break
			}
			if b.err != nil {
				// Remember the failure so repeated Next calls keep failing
				// instead of silently continuing over the surviving streams.
				ps.failed = b.err
				return nil, b.err
			}
			st.cur, st.pos = b, 0
		}
		if st.pos < len(st.cur.ids) {
			if id := st.cur.ids[st.pos]; best < 0 || id < bestID {
				best, bestID = i, id
			}
		}
	}
	if best < 0 {
		return nil, nil
	}
	st := ps.streams[best]
	row := st.cur.rows[st.pos]
	st.pos++
	return row, nil
}

// close cancels the workers, drains the exchange channels so a worker
// blocked on a full channel can observe the cancellation, and waits for
// every worker to exit. Idempotent; after close no goroutine remains.
func (ps *parallelScan) close() {
	if ps == nil || ps.closed {
		return
	}
	ps.closed = true
	close(ps.done)
	for _, st := range ps.streams {
		for range st.ch {
		}
		st.open = false
	}
	ps.wg.Wait()
}

// parallelScanEligible reports whether the streaming-select execution
// should run on the parallel exchange: full-scan access (index candidate
// lists are already narrow — point and index lookups stay serial), no
// joins stacked on top, and a table past the cardinality threshold.
func (ex *selectExec) parallelScanEligible() bool {
	return ex.p.access.kind == accessScan &&
		len(ex.p.joins) == 0 &&
		ex.db.parallelEligible(ex.p.rels[0].table)
}

// ---------------------------------------------------------------------------
// Parallel aggregation

// parallelAggEligible reports whether a grouped execution should use
// partition-parallel partial aggregation: same shape constraints as the
// parallel scan (full-scan access, no joins, past the threshold).
func (ex *selectExec) parallelAggEligible() bool {
	p := ex.p
	return p.access.kind == accessScan &&
		len(p.joins) == 0 &&
		ex.db.parallelEligible(p.rels[0].table)
}

// parallelGroups builds per-partition partial aggregates concurrently and
// merges them at the barrier. In lock mode the caller holds db.mu for the
// whole operation (grouped execution is a pipeline breaker), so workers
// read their partitions without locking; under MVCC workers copy the
// visible rows out in bounded chunks under the partition read lock and
// aggregate outside it, so a writer is never blocked for the whole
// partition. Partials are merged in partition order — deterministic float
// accumulation — and the merged groups are ordered by their smallest
// contributing row ID, which reconstructs the serial engine's first-seen
// emission order exactly.
func (ex *selectExec) parallelGroups() (map[string]*groupState, []string, error) {
	p := ex.p
	rel := p.rels[0]
	parts := rel.table.partList()
	args := ex.env.params
	vis := ex.vis
	type partGroups struct {
		groups map[string]*groupState
		order  []string
	}
	results := make([]partGroups, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i, part := range parts {
		wg.Add(1)
		go func(i int, part *tablePart) {
			defer wg.Done()
			env := p.newEnv(args)
			wex := &selectExec{db: ex.db, p: p, env: env, vis: vis}
			groups := make(map[string]*groupState)
			var order []string
			var kb strings.Builder
			view := part.ids.load()
			chunkIDs := make([]int64, 0, parBatchSize)
			chunkRows := make([][]Value, 0, parBatchSize)
			for start := 0; start < len(view); start += parBatchSize {
				end := start + parBatchSize
				if end > len(view) {
					end = len(view)
				}
				chunkIDs, chunkRows = chunkIDs[:0], chunkRows[:0]
				if vis.lockPart {
					part.mu.RLock()
				}
				for _, id := range view[start:end] {
					row := part.rows[id].resolve(vis)
					if row == nil {
						continue // tombstone, or invisible at this snapshot
					}
					chunkIDs = append(chunkIDs, id)
					chunkRows = append(chunkRows, row)
				}
				if vis.lockPart {
					part.mu.RUnlock()
				}
				for k, id := range chunkIDs {
					env.SetRow(rel.off, chunkRows[k])
					pass, err := wex.evalWhere()
					if err != nil {
						errs[i] = err
						return
					}
					if !pass {
						continue
					}
					if err := wex.addGroupRow(groups, &order, &kb, id); err != nil {
						errs[i] = err
						return
					}
				}
			}
			results[i] = partGroups{groups: groups, order: order}
		}(i, part)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	merged := make(map[string]*groupState)
	var keys []string
	for _, pr := range results {
		for _, key := range pr.order {
			g := pr.groups[key]
			m, ok := merged[key]
			if !ok {
				merged[key] = g
				keys = append(keys, key)
				continue
			}
			if g.firstID < m.firstID {
				m.firstID = g.firstID
				m.repRow = g.repRow
				m.keyVals = g.keyVals
			}
			for j := range m.accs {
				m.accs[j].merge(&g.accs[j])
			}
		}
	}
	sort.Slice(keys, func(a, b int) bool { return merged[keys[a]].firstID < merged[keys[b]].firstID })
	return merged, keys, nil
}

// ---------------------------------------------------------------------------
// Parallel write-candidate collection (prepared UPDATE/DELETE plans)

// parallelCollectMatches evaluates a write plan's WHERE clause over all
// partitions concurrently, returning the matching row IDs in ascending
// order (identical to the serial scan). The caller holds the writer lock —
// the workers are helpers of the only mutator, so partition reads need no
// further synchronization in either mode; rows resolve at the write's
// snapshot.
func parallelCollectMatches(db *DB, wp *writePlan, args []Value, vis visibility) ([]int64, error) {
	parts := wp.t.partList()
	lists := make([][]int64, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i, part := range parts {
		wg.Add(1)
		go func(i int, part *tablePart) {
			defer wg.Done()
			env := wp.newEnv(args)
			var ids []int64
			for _, id := range part.ids.load() {
				row := part.rows[id].resolve(vis)
				if row == nil {
					continue
				}
				if wp.where != nil {
					env.SetRow(0, row)
					v, err := wp.where.Eval(env)
					if err != nil {
						errs[i] = err
						return
					}
					b, isNull := toBool(v)
					if isNull || !b {
						continue
					}
				}
				ids = append(ids, id)
			}
			lists[i] = ids
		}(i, part)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return mergeSortedIDs(lists), nil
}

// mergeSortedIDs k-way-merges ascending ID lists into one ascending list.
func mergeSortedIDs(lists [][]int64) []int64 {
	total := 0
	nonEmpty := 0
	last := -1
	for i, l := range lists {
		total += len(l)
		if len(l) > 0 {
			nonEmpty++
			last = i
		}
	}
	if total == 0 {
		return nil
	}
	if nonEmpty == 1 {
		return lists[last]
	}
	out := make([]int64, 0, total)
	pos := make([]int, len(lists))
	for len(out) < total {
		best := -1
		var bestID int64
		for i, l := range lists {
			if pos[i] < len(l) {
				if id := l[pos[i]]; best < 0 || id < bestID {
					best, bestID = i, id
				}
			}
		}
		out = append(out, bestID)
		pos[best]++
	}
	return out
}

// ---------------------------------------------------------------------------
// Observability

// ParallelStats is a snapshot of the partition-parallel execution state:
// the configured hint and how often each parallel operator actually ran.
type ParallelStats struct {
	Workers               int    `json:"workers"`
	MinRows               int64  `json:"min_rows"`
	ParallelScans         uint64 `json:"parallel_scans"`
	ParallelAggregates    uint64 `json:"parallel_aggregates"`
	ParallelWriteCollects uint64 `json:"parallel_write_collects"`
}

// ParallelStats returns the parallel-execution counters.
func (db *DB) ParallelStats() ParallelStats {
	return ParallelStats{
		Workers:               db.Parallelism(),
		MinRows:               db.parallelMinRows(),
		ParallelScans:         db.plans.parScans.Load(),
		ParallelAggregates:    db.plans.parAggs.Load(),
		ParallelWriteCollects: db.plans.parWrites.Load(),
	}
}

// TablePartitionStats reports one table's partition layout and occupancy.
type TablePartitionStats struct {
	Table      string `json:"table"`
	Partitions int    `json:"partitions"`
	Rows       []int  `json:"rows"`
}

// PartitionStats returns per-partition live row counts for every table,
// sorted by table name. Reads the copy-on-write catalog, so no database
// lock is needed.
func (db *DB) PartitionStats() []TablePartitionStats {
	tables := db.tableMap()
	names := make([]string, 0, len(tables))
	for n := range tables {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]TablePartitionStats, 0, len(names))
	for _, n := range names {
		t := tables[n]
		out = append(out, TablePartitionStats{
			Table:      t.Name,
			Partitions: t.PartitionCount(),
			Rows:       t.PartitionRows(),
		})
	}
	return out
}

// SetPartitions re-shards every table's row storage into n hash partitions
// (0 restores the default, one per CPU) and makes n the partition count
// for tables created afterwards. Repartitioning is a schema change: cached
// plans are rebuilt and open cursors fail with ErrCursorInvalidated.
func (db *DB) SetPartitions(n int) {
	if n < 0 {
		n = 0
	}
	db.writer.Lock()
	defer db.writer.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	db.nparts = n
	for _, t := range db.tableMap() {
		t.repartition(db.partitionCount())
	}
	db.bumpSchemaGen()
}

// Partitions returns the effective partition count for new tables.
func (db *DB) Partitions() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.partitionCount()
}

// partitionCount resolves the configured partition count. Caller holds
// db.mu.
func (db *DB) partitionCount() int {
	if db.nparts > 0 {
		return db.nparts
	}
	return defaultPartitions()
}
