package sqldb

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"genmapper/internal/wal"
)

// reopen closes a durable DB and recovers it from the same filesystem.
func reopen(t *testing.T, db *DB, fs wal.FS, sync wal.SyncPolicy) *DB {
	t.Helper()
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	db2, err := OpenDurable("", durableOpts(fs.(*wal.FaultFS), sync))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	return db2
}

func TestDurableReopenRecoveryReplaysLog(t *testing.T) {
	fs := wal.NewFaultFS()
	db, err := OpenDurable("", durableOpts(fs, wal.SyncGroup))
	if err != nil {
		t.Fatal(err)
	}
	mustExec := func(d *DB, sql string, args ...any) {
		t.Helper()
		if _, err := d.Exec(sql, args...); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec(db, "CREATE TABLE t (id INTEGER PRIMARY KEY AUTOINCREMENT, v TEXT)")
	for i := 0; i < 10; i++ {
		mustExec(db, "INSERT INTO t (v) VALUES (?)", fmt.Sprintf("v%d", i))
	}
	mustExec(db, "DELETE FROM t WHERE id = ?", 3)
	want := db.DumpString()

	db2 := reopen(t, db, fs, wal.SyncGroup)
	defer db2.Close()
	if got := db2.DumpString(); got != want {
		t.Fatalf("recovered state differs from pre-close state:\n--- want\n%s\n--- got\n%s", want, got)
	}
	st := db2.WALStats()
	if !st.Enabled || st.RecoveredRecords != 12 {
		t.Fatalf("WALStats after recovery = %+v, want 12 recovered records", st)
	}
	// And the recovered DB keeps committing to the same log.
	mustExec(db2, "INSERT INTO t (v) VALUES (?)", "after")
	if db2.WALStats().Appends == 0 {
		t.Fatal("no appends after recovery")
	}
}

func TestCheckpointPrunesAndRecoveryUsesIt(t *testing.T) {
	fs := wal.NewFaultFS()
	db, err := OpenDurable("", durableOpts(fs, wal.SyncGroup))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE t (n INTEGER)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := db.Exec("INSERT INTO t (n) VALUES (?)", i); err != nil {
			t.Fatal(err)
		}
	}
	before := db.WALStats()
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	after := db.WALStats()
	if after.Checkpoints != 1 || after.CheckpointLSN != before.LastLSN {
		t.Fatalf("checkpoint stats = %+v", after)
	}
	if after.SizeBytes >= before.SizeBytes {
		t.Fatalf("checkpoint did not shrink the log: %d -> %d bytes", before.SizeBytes, after.SizeBytes)
	}
	if after.CheckpointLagRecs != 0 {
		t.Fatalf("checkpoint lag = %d, want 0", after.CheckpointLagRecs)
	}
	want := db.DumpString()

	db2 := reopen(t, db, fs, wal.SyncGroup)
	defer db2.Close()
	if got := db2.DumpString(); got != want {
		t.Fatal("recovery from checkpoint + empty tail diverged")
	}
	if st := db2.WALStats(); st.RecoveredRecords != 0 {
		t.Fatalf("recovered %d records, want 0 (all covered by checkpoint)", st.RecoveredRecords)
	}
}

func TestBackgroundCheckpointer(t *testing.T) {
	fs := wal.NewFaultFS()
	db, err := OpenDurable("", DurableOptions{
		Sync:               wal.SyncOff,
		SegmentSize:        512,
		CheckpointInterval: 5 * time.Millisecond,
		CheckpointBytes:    1, // checkpoint on any growth
		FS:                 fs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t (n INTEGER)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := db.Exec("INSERT INTO t (n) VALUES (?)", i); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for db.WALStats().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background checkpointer never ran")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRestoreResetsWALTail is the regression test for Restore-while-the-
// WAL-has-a-tail: without the reset, recovery would replay the pre-restore
// log records OVER the restored snapshot.
func TestRestoreResetsWALTail(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDurable(dir, DurableOptions{Sync: wal.SyncGroup, CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	mustExec := func(sql string, args ...any) {
		t.Helper()
		if _, err := db.Exec(sql, args...); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec("CREATE TABLE t (n INTEGER)")
	mustExec("INSERT INTO t (n) VALUES (?)", 1)
	mustExec("INSERT INTO t (n) VALUES (?)", 2)

	snap := filepath.Join(t.TempDir(), "external.snap")
	if err := db.Save(snap); err != nil {
		t.Fatal(err)
	}
	wantDump := db.DumpString()

	// Grow a WAL tail past the snapshot, including DDL.
	mustExec("INSERT INTO t (n) VALUES (?)", 3)
	mustExec("CREATE TABLE junk (x TEXT)")
	mustExec("INSERT INTO junk (x) VALUES (?)", "gone")

	if err := db.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got := db.DumpString(); got != wantDump {
		t.Fatalf("restore did not reproduce snapshot state:\n%s", got)
	}
	// Post-restore commits land after the reset.
	mustExec("INSERT INTO t (n) VALUES (?)", 42)

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenDurable(dir, DurableOptions{Sync: wal.SyncGroup, CheckpointInterval: -1})
	if err != nil {
		t.Fatalf("reopen after restore: %v", err)
	}
	defer db2.Close()
	if db2.TableInfo("junk") != nil {
		t.Fatal("pre-restore WAL tail was replayed over the restored snapshot")
	}
	rs, err := db2.Query("SELECT n FROM t ORDER BY n")
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for _, row := range rs.Rows {
		got = append(got, row[0].(int64))
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 42 {
		t.Fatalf("rows after reopen = %v, want [1 2 42]", got)
	}
}

// TestRestoreWhileDurableInvalidatesCursors: Restore on a durable DB is
// still DDL from a cursor's point of view.
func TestRestoreWhileDurableInvalidatesCursors(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDurable(dir, DurableOptions{Sync: wal.SyncOff, CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t (n INTEGER)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := db.Exec("INSERT INTO t (n) VALUES (?)", i); err != nil {
			t.Fatal(err)
		}
	}
	snap := filepath.Join(t.TempDir(), "s.snap")
	if err := db.Save(snap); err != nil {
		t.Fatal(err)
	}
	cur, err := db.QueryCursor("SELECT n FROM t")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if _, err := cur.Next(); err != nil {
		t.Fatal(err)
	}
	if err := db.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for {
		_, err := cur.Next()
		if err == ErrCursorInvalidated {
			break
		}
		if err != nil {
			t.Fatalf("cursor error = %v, want ErrCursorInvalidated", err)
		}
	}
}

// TestDDLRollbackThenRecovery: a rolled-back transaction containing DDL
// leaves nothing in the WAL; recovery must replay later commits onto the
// undone schema without tripping over the phantom DDL.
func TestDDLRollbackThenRecovery(t *testing.T) {
	fs := wal.NewFaultFS()
	db, err := OpenDurable("", durableOpts(fs, wal.SyncGroup))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE t (n INTEGER)"); err != nil {
		t.Fatal(err)
	}

	// Transaction: DDL + writes, rolled back. The undo path reverses the
	// DDL in memory; the WAL must record none of it.
	tx := db.Begin()
	if _, err := tx.Exec("CREATE TABLE temp (x TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("CREATE INDEX idx_temp ON temp (x)"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO temp (x) VALUES (?)", "doomed"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO t (n) VALUES (?)", 7); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}

	// Later commits reuse the rolled-back names: replay must see them in
	// commit order with the phantom DDL absent.
	if _, err := db.Exec("INSERT INTO t (n) VALUES (?)", 1); err != nil {
		t.Fatal(err)
	}
	tx2 := db.Begin()
	if _, err := tx2.Exec("CREATE TABLE temp (y INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Exec("INSERT INTO temp (y) VALUES (?)", 9); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	want := db.DumpString()

	db2 := reopen(t, db, fs, wal.SyncGroup)
	defer db2.Close()
	if got := db2.DumpString(); got != want {
		t.Fatalf("recovery after DDL rollback diverged:\n--- want\n%s\n--- got\n%s", want, got)
	}
	schema := db2.TableInfo("temp")
	if schema == nil || len(schema.Columns) != 1 || schema.Columns[0].Name != "y" {
		t.Fatal("recovered temp table has the rolled-back schema, not the committed one")
	}
}

// TestPoisonedLogFailsAndRollsBackLaterWrites: the first IO failure
// poisons the log. The commit in flight when it struck gets an error (its
// durability is unknown until recovery — the crash sweep covers that);
// every LATER commit must fail AND be rolled back, never becoming visible
// without a log record.
func TestPoisonedLogFailsAndRollsBackLaterWrites(t *testing.T) {
	fs := wal.NewFaultFS()
	db, err := OpenDurable("", durableOpts(fs, wal.SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t (n INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t (n) VALUES (?)", 1); err != nil {
		t.Fatal(err)
	}
	fs.SetPlan(wal.FaultPlan{AtOp: fs.OpCount() + 1, Kind: wal.FaultErr})
	if _, err := db.Exec("INSERT INTO t (n) VALUES (?)", 2); err == nil {
		t.Fatal("commit through injected IO failure succeeded")
	}
	rowsAfterFailure := db.RowCount("t")

	// The log is now poisoned: this commit's append fails outright, so it
	// must be undone — auto-commit and transaction alike.
	if _, err := db.Exec("INSERT INTO t (n) VALUES (?)", 3); err == nil {
		t.Fatal("commit on poisoned log succeeded")
	}
	tx := db.Begin()
	if _, err := tx.Exec("INSERT INTO t (n) VALUES (?)", 4); err != nil {
		t.Fatal(err) // in-memory execute succeeds; Commit must fail
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("Tx.Commit on poisoned log succeeded")
	}
	if n := db.RowCount("t"); n != rowsAfterFailure {
		t.Fatalf("writes after log poisoning stayed visible: %d rows, want %d", n, rowsAfterFailure)
	}
}

// TestTxFailedStatementAtomicity: a statement that fails mid-way inside a
// transaction (row 1 of the multi-row INSERT lands, row 2 hits the unique
// index) must unwind its own rows immediately. If the caller ignores the
// error and commits anyway, the live state and the recovered state must
// both contain exactly the successful statements — the failed one in
// neither (it is also never logged).
func TestTxFailedStatementAtomicity(t *testing.T) {
	fs := wal.NewFaultFS()
	db, err := OpenDurable("", durableOpts(fs, wal.SyncGroup))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t VALUES (?, ?)", 1, "pre"); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if _, err := tx.Exec("INSERT INTO t VALUES (?, ?)", 2, "ok"); err != nil {
		t.Fatal(err)
	}
	// Fails on the second row (duplicate PK 1); the first row (7) must not
	// survive the statement.
	if _, err := tx.Exec("INSERT INTO t VALUES (?, ?), (?, ?)", 7, "partial", 1, "dup"); err == nil {
		t.Fatal("duplicate-key INSERT succeeded")
	}
	if _, err := tx.Exec("INSERT INTO t VALUES (?, ?)", 3, "after"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for id, want := range map[int64]bool{1: true, 2: true, 3: true, 7: false} {
		rs, err := db.Query("SELECT v FROM t WHERE id = ?", id)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(rs.Rows) == 1; got != want {
			t.Fatalf("live: row %d present=%v, want %v", id, got, want)
		}
	}
	want := db.DumpString()

	db2 := reopen(t, db, fs, wal.SyncGroup)
	defer db2.Close()
	if got := db2.DumpString(); got != want {
		t.Fatalf("recovered state diverged from live committed state:\n--- want\n%s\n--- got\n%s", want, got)
	}
}

// TestNoOpStatementsNotLogged: statements that change nothing (re-run
// idempotent DDL, UPDATE matching no rows) append no log records, so
// repeated schema bootstraps do not grow the log.
func TestNoOpStatementsNotLogged(t *testing.T) {
	fs := wal.NewFaultFS()
	db, err := OpenDurable("", durableOpts(fs, wal.SyncGroup))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t (n INTEGER)"); err != nil {
		t.Fatal(err)
	}
	base := db.WALStats().Appends
	if _, err := db.Exec("CREATE TABLE IF NOT EXISTS t (n INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("DROP TABLE IF EXISTS missing"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("UPDATE t SET n = 1 WHERE n = 99"); err != nil {
		t.Fatal(err)
	}
	if got := db.WALStats().Appends; got != base {
		t.Fatalf("no-op statements appended %d log records", got-base)
	}
}

// TestGroupCommitFewerFsyncsThanCommits enforces the acceptance criterion:
// under concurrent committers, fsyncs < committed transactions.
func TestGroupCommitFewerFsyncsThanCommits(t *testing.T) {
	fs := wal.NewFaultFS()
	fs.SyncDelay = 200 * time.Microsecond
	db, err := OpenDurable("", durableOpts(fs, wal.SyncGroup))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t (g INTEGER, i INTEGER)"); err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const perG = 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := db.Exec("INSERT INTO t (g, i) VALUES (?, ?)", g, i); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := db.WALStats()
	commits := uint64(goroutines*perG) + 1 // + CREATE TABLE
	if st.Appends != commits {
		t.Fatalf("appends = %d, want %d", st.Appends, commits)
	}
	if st.Fsyncs >= commits {
		t.Fatalf("group commit ineffective: %d fsyncs for %d commits", st.Fsyncs, commits)
	}
	if n := db.RowCount("t"); n != goroutines*perG {
		t.Fatalf("rows = %d, want %d", n, goroutines*perG)
	}
	t.Logf("group commit: %d commits, %d fsyncs, max group %d", commits, st.Fsyncs, st.MaxGroupSize)
}

// TestDurableOnRealDirectory exercises the OSFS path end to end.
func TestDurableOnRealDirectory(t *testing.T) {
	dir := t.TempDir()
	open := func() *DB {
		db, err := OpenDurable(dir, DurableOptions{Sync: wal.SyncGroup, CheckpointInterval: -1})
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	db := open()
	if _, err := db.Exec("CREATE TABLE t (n INTEGER)"); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	for i := 0; i < 5; i++ {
		if _, err := tx.Exec("INSERT INTO t (n) VALUES (?)", i); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO t (n) VALUES (?)", 99); err != nil {
		t.Fatal(err)
	}
	want := db.DumpString()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := open()
	defer db2.Close()
	if got := db2.DumpString(); got != want {
		t.Fatal("recovery on real directory diverged")
	}
	if n := db2.RowCount("t"); n != 6 {
		t.Fatalf("rows = %d, want 6", n)
	}
}

func TestWALStatsDisabledForInMemory(t *testing.T) {
	db := NewDB()
	if st := db.WALStats(); st.Enabled {
		t.Fatalf("in-memory DB reports WAL enabled: %+v", st)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close on in-memory DB: %v", err)
	}
}

func TestRecordCodecRoundTrip(t *testing.T) {
	stmts := []logStmt{
		{sql: "INSERT INTO t (a, b, c, d, e) VALUES (?, ?, ?, ?, ?)",
			args: []Value{int64(-42), 3.25, "héllo\x00world", true, nil}},
		{sql: "DELETE FROM t", args: nil},
		{sql: "UPDATE t SET a = ?", args: []Value{false}},
	}
	got, err := decodeRecord(encodeRecord(stmts))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(stmts) {
		t.Fatalf("decoded %d stmts, want %d", len(got), len(stmts))
	}
	for i := range stmts {
		if got[i].sql != stmts[i].sql {
			t.Fatalf("stmt %d sql = %q", i, got[i].sql)
		}
		if len(got[i].args) != len(stmts[i].args) {
			t.Fatalf("stmt %d has %d args, want %d", i, len(got[i].args), len(stmts[i].args))
		}
		for j := range stmts[i].args {
			a, b := got[i].args[j], stmts[i].args[j]
			if (a == nil) != (b == nil) || (a != nil && Compare(a, b) != 0) {
				t.Fatalf("stmt %d arg %d = %#v, want %#v", i, j, a, b)
			}
		}
	}
	// Garbage must fail loudly, not panic.
	if _, err := decodeRecord([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}); err == nil {
		t.Fatal("decodeRecord accepted garbage")
	}
}
