package sqldb

import "errors"

// Per-partition write latching (ROADMAP item 1): MVCC UPDATE and DELETE
// statements do not take the global writer lock. Instead they hold db.mu
// SHARED — which keeps out whole-database operations (DDL, vacuum,
// checkpoint, SetMVCC, the INSERT global path) — plus the write latches
// (tablePart.w) of exactly the partitions they touch, so statements on
// disjoint partitions execute and commit concurrently and serialize only
// on db.commitMu around the WAL append + epoch publication.
//
// Because the candidate rows are not known until the WHERE clause runs,
// latching is optimistic: an unlatched prescan seeds the latch set, the
// latches are acquired in ascending partition order (the total order the
// lockorder analyzer checks), and the candidates are re-collected under
// the latches. If the authoritative set touches partitions outside the
// latch set (a row moved into the predicate between prescan and latch),
// the latches are released and the set grows monotonically — bounded by
// the partition count, so the loop always terminates.

// latchSet is the ordered set of partition write latches one latched
// statement holds.
type latchSet struct {
	parts []*tablePart
}

// acquireLatches locks the write latches of the partitions named by idxs
// — which MUST be sorted ascending and duplicate-free — and returns the
// set to release. Contended acquisitions (latch already held, so this
// writer overlaps another on that partition) count into latch_waits.
func (t *Table) acquireLatches(db *DB, idxs []int) *latchSet {
	ps := t.partList()
	ls := &latchSet{parts: make([]*tablePart, 0, len(idxs))}
	for _, i := range idxs {
		p := ps[i]
		if !p.w.TryLock() {
			db.latchWaits.Add(1)
			p.w.Lock()
		}
		ls.parts = append(ls.parts, p)
	}
	return ls
}

// release unlocks every held latch (reverse order). Safe to call once per
// acquireLatches on every path; gmlint's partlock checks the pairing.
func (ls *latchSet) release() {
	for i := len(ls.parts) - 1; i >= 0; i-- {
		ls.parts[i].w.Unlock()
	}
	ls.parts = nil
}

// partIndexes returns the sorted, duplicate-free partition indexes owning
// the given row IDs.
func (t *Table) partIndexes(ids []int64) []int {
	n := len(t.partList())
	seen := make([]bool, n)
	count := 0
	for _, id := range ids {
		i := int(uint64(id) % uint64(n))
		if !seen[i] {
			seen[i] = true
			count++
		}
	}
	out := make([]int, 0, count)
	for i, s := range seen {
		if s {
			out = append(out, i)
		}
	}
	return out
}

// containsAllSorted reports whether sorted set have contains every element
// of sorted set want.
func containsAllSorted(have, want []int) bool {
	j := 0
	for _, w := range want {
		for j < len(have) && have[j] < w {
			j++
		}
		if j == len(have) || have[j] != w {
			return false
		}
	}
	return true
}

// unionSorted merges two sorted, duplicate-free int sets.
func unionSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// latchEligible extracts the write plan a statement can run latched with,
// or nil when it must take the global writer path: INSERT and DDL (row-ID
// and AUTOINCREMENT allocation must follow WAL order), and UPDATEs that
// set a unique-indexed column — the uniqueness probe and the index insert
// are not atomic across partitions, so two latched writers on different
// partitions could both pass the probe for the same key. DELETE never
// inserts index entries (the tombstone leaves reclamation to vacuum), so
// it is always eligible. Callers hold db.mu at least shared, which keeps
// the index set stable under the check.
func latchEligible(p *prepared) *writePlan {
	switch {
	case p.upd != nil:
		for _, idx := range p.upd.t.indexMap() {
			if !idx.Unique {
				continue
			}
			for _, pos := range p.upd.setPos {
				if pos == idx.Col {
					return nil
				}
			}
		}
		return &p.upd.writePlan
	case p.del != nil:
		return &p.del.writePlan
	}
	return nil
}

// collectLatched runs the latch-validate loop for one latched statement:
// prescan without latches, latch the candidate partitions in order,
// re-collect authoritatively, grow and retry until covered. On success
// the returned latch set is HELD and the returned IDs all live in latched
// partitions; on error no latch is held.
func (db *DB) collectLatched(wp *writePlan, vals []Value, w *writeCtx) ([]int64, *latchSet, error) {
	t := wp.t
	ids, err := db.collectMatches(wp, vals, w, false)
	if err != nil {
		return nil, nil, err
	}
	idxs := t.partIndexes(ids)
	for {
		ls := t.acquireLatches(db, idxs)
		ids, err = db.collectMatches(wp, vals, w, true)
		if err != nil {
			ls.release()
			return nil, nil, err
		}
		need := t.partIndexes(ids)
		if containsAllSorted(idxs, need) {
			return ids, ls, nil
		}
		ls.release()
		idxs = unionSorted(idxs, need)
	}
}

// maxLatchedRetries bounds the auto-commit conflict retry loop: an
// auto-commit statement has no snapshot the caller could be holding
// reads against, so a conflict — racing another writer's publication or
// provisional version — is retried on a fresh snapshot a few times
// before surfacing (a row pinned by an idle open transaction stays a
// conflict no matter how often we retry).
const maxLatchedRetries = 4

// execLatched runs one auto-commit MVCC UPDATE/DELETE on the latched
// path. handled=false means the statement is not eligible (not an
// UPDATE/DELETE, or MVCC was switched off) and the caller must fall back
// to the global writer path. The returned LSN is nonzero when a commit
// record was appended; the caller waits for durability.
func (db *DB) execLatched(s *Stmt, vals []Value) (res Result, lsn uint64, handled bool, err error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if !db.mvcc.Load() {
		// Mode flipped between the caller's check and our shared lock
		// (SetMVCC holds mu exclusively, so under it the mode is stable).
		return Result{}, 0, false, nil
	}
	p, err := s.ensure(db)
	if err != nil {
		return Result{}, 0, true, err
	}
	wp := latchEligible(p)
	if wp == nil {
		return Result{}, 0, false, nil
	}
	if err := p.validateExec(vals, errTxnControlExec); err != nil {
		return Result{}, 0, true, err
	}
	for attempt := 0; ; attempt++ {
		res, lsn, err = db.execLatchedOnce(s.sql, p, wp, vals)
		if err == nil || attempt+1 >= maxLatchedRetries || !isWriteConflict(err) {
			return res, lsn, true, err
		}
	}
}

// execLatchedOnce is one attempt of an auto-commit latched statement:
// collect-and-latch, apply, then commit under commitMu (WAL append before
// publication — mvccepoch checks the order). The snapshot is captured
// after the latches are held, so the statement conflicts only with
// provisional versions of transactions still in flight.
func (db *DB) execLatchedOnce(sqlText string, p *prepared, wp *writePlan, vals []Value) (Result, uint64, error) {
	w := &writeCtx{mvcc: true, latched: true, tx: db.txSeq.Add(1)}
	w.snap = db.epoch.Load()
	ids, ls, err := db.collectLatched(wp, vals, w)
	if err != nil {
		return Result{}, 0, err
	}
	// Re-capture the snapshot now that the latches are held: every commit
	// that published before this point is visible, so it cannot conflict.
	w.snap = db.epoch.Load()
	undo := &undoLog{}
	var res Result
	if p.upd != nil {
		res, err = db.applyUpdate(p.upd, vals, undo, w, ids)
	} else {
		res, err = db.applyDelete(p.del, undo, w, ids)
	}
	if err != nil {
		undo.rollback(db)
		db.abortProvisional(w.installed)
		ls.release()
		return Result{}, 0, err
	}
	var lsn uint64
	db.commitMu.Lock()
	if d := db.durable; d != nil && len(undo.entries) > 0 {
		lsn, err = d.logCommit([]logStmt{{sql: sqlText, args: vals}})
		if err != nil {
			db.commitMu.Unlock()
			undo.rollback(db)
			db.abortProvisional(w.installed)
			ls.release()
			return Result{}, 0, err
		}
	}
	db.publishCommit(w.installed)
	db.commitMu.Unlock()
	ls.release()
	return res, lsn, nil
}

// execLatchedStmt runs one UPDATE/DELETE statement of an open MVCC
// transaction on the latched path. The provisional versions stay in the
// transaction (published at Commit); the latches are held only for the
// statement — between statements the transaction holds nothing, exactly
// as before. Conflicts are NOT retried here: the transaction's snapshot
// is fixed at Begin, so the caller must roll back and retry the whole
// transaction. handled=false sends the caller to the global writer path
// (the statement became ineligible under the shared lock — DDL raced in).
func (tx *Tx) execLatchedStmt(sqlText string, s *Stmt, vals []Value) (Result, bool, error) {
	db := tx.db
	db.mu.RLock()
	defer db.mu.RUnlock()
	p, err := s.ensure(db)
	if err != nil {
		return Result{}, true, err
	}
	wp := latchEligible(p)
	if wp == nil {
		return Result{}, false, nil
	}
	w := &writeCtx{mvcc: true, latched: true, tx: tx.id, snap: tx.snap}
	ids, ls, err := db.collectLatched(wp, vals, w)
	if err != nil {
		return Result{}, true, err
	}
	mark := len(tx.undo.entries)
	var res Result
	if p.upd != nil {
		res, err = db.applyUpdate(p.upd, vals, tx.undo, w, ids)
	} else {
		res, err = db.applyDelete(p.del, tx.undo, w, ids)
	}
	if err != nil {
		// Statement-level atomicity, same contract as the global path.
		tx.undo.rollbackTo(db, mark)
		db.abortProvisional(w.installed)
		ls.release()
		return Result{}, true, err
	}
	tx.installed = append(tx.installed, w.installed...)
	if db.durable != nil && len(tx.undo.entries) > mark {
		tx.logged = append(tx.logged, logStmt{sql: sqlText, args: vals})
	}
	ls.release()
	return res, true, nil
}

// isWriteConflict reports whether err is (or wraps) ErrWriteConflict.
func isWriteConflict(err error) bool {
	return errors.Is(err, ErrWriteConflict)
}
