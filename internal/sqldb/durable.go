package sqldb

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"genmapper/internal/wal"
)

// DurableOptions configures OpenDurable.
type DurableOptions struct {
	// Sync is the WAL fsync policy (default wal.SyncGroup).
	Sync wal.SyncPolicy
	// SegmentSize bounds WAL segment files (default 4 MiB).
	SegmentSize int64
	// CheckpointInterval is how often the background checkpointer wakes up
	// to check the log (default 30s). Zero keeps the default; negative
	// disables the background checkpointer (Checkpoint can still be called
	// explicitly).
	CheckpointInterval time.Duration
	// CheckpointBytes triggers a checkpoint once the log has grown this
	// many bytes past the last checkpoint (default = SegmentSize).
	CheckpointBytes int64
	// FS overrides the filesystem (fault-injection tests). Nil uses the
	// real directory passed to OpenDurable.
	FS wal.FS
}

func (o DurableOptions) withDefaults() DurableOptions {
	if o.SegmentSize <= 0 {
		o.SegmentSize = 4 << 20
	}
	if o.CheckpointInterval == 0 {
		o.CheckpointInterval = 30 * time.Second
	}
	if o.CheckpointBytes <= 0 {
		o.CheckpointBytes = o.SegmentSize
	}
	return o
}

// durability is the per-DB durable-write state: the WAL, the checkpoint
// store, and the background checkpointer.
type durability struct {
	w    *wal.WAL
	fs   wal.FS
	opts DurableOptions

	// ckptMu serializes checkpoints (background + explicit + Restore).
	ckptMu sync.Mutex
	// ckptLSN is the LSN the newest durable checkpoint covers.
	ckptLSN atomic.Uint64
	// ckptSize is the log size observed at the last checkpoint.
	ckptSize atomic.Int64

	checkpoints      atomic.Uint64
	recoveredRecords atomic.Uint64
	recoveries       atomic.Uint64

	stop chan struct{}
	done chan struct{}
}

// WALStats reports the durability subsystem's counters (all zero when the
// database was not opened with OpenDurable).
type WALStats struct {
	Enabled bool   `json:"enabled"`
	Policy  string `json:"policy,omitempty"`
	// Log counters (see wal.Stats).
	Appends             uint64 `json:"appends"`
	Fsyncs              uint64 `json:"fsyncs"`
	GroupCommits        uint64 `json:"group_commits"`
	MaxGroupSize        uint64 `json:"max_group_size"`
	Segments            int    `json:"segments"`
	SizeBytes           int64  `json:"size_bytes"`
	TornTailTruncations uint64 `json:"torn_tail_truncations"`
	// Recovery and checkpoint counters.
	Recoveries        uint64 `json:"recoveries"`
	RecoveredRecords  uint64 `json:"recovered_records"`
	Checkpoints       uint64 `json:"checkpoints"`
	CheckpointLSN     uint64 `json:"checkpoint_lsn"`
	CheckpointLagRecs uint64 `json:"checkpoint_lag_records"`
	LastLSN           uint64 `json:"last_lsn"`
	DurableLSN        uint64 `json:"durable_lsn"`
}

// WALStats returns the durability counters, or a zero value with
// Enabled=false for an in-memory database.
func (db *DB) WALStats() WALStats {
	d := db.durable
	if d == nil {
		return WALStats{}
	}
	ws := d.w.Stats()
	ckpt := d.ckptLSN.Load()
	lag := uint64(0)
	if ws.LastLSN > ckpt {
		lag = ws.LastLSN - ckpt
	}
	return WALStats{
		Enabled:             true,
		Policy:              d.opts.Sync.String(),
		Appends:             ws.Appends,
		Fsyncs:              ws.Fsyncs,
		GroupCommits:        ws.GroupCommits,
		MaxGroupSize:        ws.MaxGroupSize,
		Segments:            ws.Segments,
		SizeBytes:           ws.SizeBytes,
		TornTailTruncations: ws.TornTailTruncations,
		Recoveries:          d.recoveries.Load(),
		RecoveredRecords:    d.recoveredRecords.Load(),
		Checkpoints:         d.checkpoints.Load(),
		CheckpointLSN:       ckpt,
		CheckpointLagRecs:   lag,
		LastLSN:             ws.LastLSN,
		DurableLSN:          ws.DurableLSN,
	}
}

// ---------------------------------------------------------------------------
// Logical log records
//
// A record is one committed transaction: the SQL texts and bound arguments
// of its write statements, in execution order. Replaying the statements
// against the state the log was written over reproduces the exact same
// tables: row IDs and AUTOINCREMENT values are assigned deterministically,
// and expressions have no nondeterministic functions.

// logStmt is one statement of a commit record.
type logStmt struct {
	sql  string
	args []Value
}

// Value wire tags.
const (
	tagNull  = 'n'
	tagInt   = 'i'
	tagFloat = 'f'
	tagText  = 's'
	tagTrue  = 'T'
	tagFalse = 'F'
)

// encodeRecord renders a commit record payload.
func encodeRecord(stmts []logStmt) []byte {
	var buf bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(x uint64) {
		n := binary.PutUvarint(tmp[:], x)
		buf.Write(tmp[:n])
	}
	putUvarint(uint64(len(stmts)))
	for _, st := range stmts {
		putUvarint(uint64(len(st.sql)))
		buf.WriteString(st.sql)
		putUvarint(uint64(len(st.args)))
		for _, v := range st.args {
			switch x := v.(type) {
			case nil:
				buf.WriteByte(tagNull)
			case int64:
				buf.WriteByte(tagInt)
				n := binary.PutVarint(tmp[:], x)
				buf.Write(tmp[:n])
			case float64:
				buf.WriteByte(tagFloat)
				binary.LittleEndian.PutUint64(tmp[:8], math.Float64bits(x))
				buf.Write(tmp[:8])
			case string:
				buf.WriteByte(tagText)
				putUvarint(uint64(len(x)))
				buf.WriteString(x)
			case bool:
				if x {
					buf.WriteByte(tagTrue)
				} else {
					buf.WriteByte(tagFalse)
				}
			default:
				// Normalize guarantees this can't happen; encode as text so
				// a bug degrades loudly at replay rather than panicking here.
				s := fmt.Sprintf("%v", x)
				buf.WriteByte(tagText)
				putUvarint(uint64(len(s)))
				buf.WriteString(s)
			}
		}
	}
	return buf.Bytes()
}

// decodeRecord parses a commit record payload.
func decodeRecord(p []byte) ([]logStmt, error) {
	r := bytes.NewReader(p)
	readUvarint := func() (uint64, error) { return binary.ReadUvarint(r) }
	n, err := readUvarint()
	if err != nil {
		return nil, fmt.Errorf("sqldb: wal record: %w", err)
	}
	if n > uint64(len(p)) {
		return nil, fmt.Errorf("sqldb: wal record: implausible statement count %d", n)
	}
	stmts := make([]logStmt, 0, n)
	readString := func() (string, error) {
		l, err := readUvarint()
		if err != nil {
			return "", err
		}
		if l > uint64(r.Len()) {
			return "", fmt.Errorf("string length %d exceeds record", l)
		}
		b := make([]byte, l)
		if _, err := io.ReadFull(r, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	for i := uint64(0); i < n; i++ {
		sql, err := readString()
		if err != nil {
			return nil, fmt.Errorf("sqldb: wal record stmt %d: %w", i, err)
		}
		nargs, err := readUvarint()
		if err != nil {
			return nil, fmt.Errorf("sqldb: wal record stmt %d: %w", i, err)
		}
		if nargs > uint64(len(p)) {
			return nil, fmt.Errorf("sqldb: wal record stmt %d: implausible arg count", i)
		}
		args := make([]Value, 0, nargs)
		for j := uint64(0); j < nargs; j++ {
			tag, err := r.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("sqldb: wal record stmt %d arg %d: %w", i, j, err)
			}
			switch tag {
			case tagNull:
				args = append(args, nil)
			case tagInt:
				x, err := binary.ReadVarint(r)
				if err != nil {
					return nil, err
				}
				args = append(args, x)
			case tagFloat:
				var b [8]byte
				if _, err := io.ReadFull(r, b[:]); err != nil {
					return nil, err
				}
				args = append(args, math.Float64frombits(binary.LittleEndian.Uint64(b[:])))
			case tagText:
				s, err := readString()
				if err != nil {
					return nil, err
				}
				args = append(args, s)
			case tagTrue:
				args = append(args, true)
			case tagFalse:
				args = append(args, false)
			default:
				return nil, fmt.Errorf("sqldb: wal record stmt %d arg %d: unknown tag %q", i, j, tag)
			}
		}
		stmts = append(stmts, logStmt{sql: sql, args: args})
	}
	return stmts, nil
}

// logCommit appends one commit record for stmts and returns its LSN.
// The caller holds its commit-serialization section — writer + exclusive
// db.mu on the global path, db.commitMu (under shared mu) on the latched
// path — so the append happens in commit order; the fsync wait does not.
func (d *durability) logCommit(stmts []logStmt) (uint64, error) {
	return d.w.Append(encodeRecord(stmts))
}

// wait blocks until the record at lsn is durable per the sync policy.
// Called WITHOUT db locks held, so concurrent committers can share one
// fsync (group commit).
func (d *durability) wait(lsn uint64) error {
	if lsn == 0 {
		return nil
	}
	return d.w.Durable(lsn)
}

// ---------------------------------------------------------------------------
// Open / recovery

// checkpoint file naming: checkpoint-<LSN>.snap, zero-padded so the
// lexicographically greatest is the newest.
const ckptPrefix = "checkpoint-"

func ckptName(lsn uint64) string { return fmt.Sprintf("%s%020d.snap", ckptPrefix, lsn) }

func parseCkptName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	var lsn uint64
	_, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ".snap"), "%d", &lsn)
	return lsn, err == nil
}

// OpenDurable opens (or creates) a durable database rooted at dir: a
// checkpoint snapshot plus a write-ahead log of every commit since.
// Recovery loads the newest readable checkpoint, replays the log tail
// beyond it (verifying checksums and truncating a torn tail), and starts
// a background checkpointer. Every committed write — auto-commit Exec and
// Tx.Commit — is appended to the log before the commit is acknowledged,
// under the configured fsync policy. Close releases the log.
func OpenDurable(dir string, opts DurableOptions) (*DB, error) {
	opts = opts.withDefaults()
	fs := opts.FS
	if fs == nil {
		var err error
		if fs, err = wal.DirFS(dir); err != nil {
			return nil, err
		}
	}

	d := &durability{fs: fs, opts: opts}

	// 1. Newest readable checkpoint.
	tables, ckptLSN, err := loadNewestCheckpoint(fs)
	if err != nil {
		return nil, err
	}

	// 2. Open the log: validates segments, truncates a torn tail. The
	// checkpoint LSN floors the sequence so a fully-checkpointed (empty)
	// tail does not restart numbering below the snapshot.
	w, err := wal.Open(fs, wal.Options{Sync: opts.Sync, SegmentSize: opts.SegmentSize, StartLSN: ckptLSN})
	if err != nil {
		return nil, err
	}
	d.w = w

	db := NewDB()
	if tables != nil {
		db.storeTables(tables)
	}

	// 3. Replay the tail beyond the checkpoint. Statements run through the
	// normal executor but nothing is re-logged (db.durable is still nil).
	replayed := uint64(0)
	err = w.Replay(ckptLSN+1, func(lsn uint64, payload []byte) error {
		stmts, err := decodeRecord(payload)
		if err != nil {
			return fmt.Errorf("sqldb: recover record %d: %w", lsn, err)
		}
		if err := db.applyRecord(stmts); err != nil {
			return fmt.Errorf("sqldb: recover record %d: %w", lsn, err)
		}
		replayed++
		return nil
	})
	if err != nil {
		w.Close()
		return nil, err
	}
	w.AdvanceTo(ckptLSN)
	d.ckptLSN.Store(ckptLSN)
	d.ckptSize.Store(w.Stats().SizeBytes)
	d.recoveredRecords.Store(replayed)
	d.recoveries.Store(1)

	db.durable = d
	if opts.CheckpointInterval > 0 {
		d.stop = make(chan struct{})
		d.done = make(chan struct{})
		go db.checkpointLoop()
	}
	return db, nil
}

// loadNewestCheckpoint returns the table map of the newest checkpoint that
// decodes cleanly (nil when none exists) and the LSN it covers. An
// unreadable newer checkpoint falls back to the next older one: a crash
// mid-checkpoint must never take out the database.
func loadNewestCheckpoint(fs wal.FS) (map[string]*Table, uint64, error) {
	names, err := fs.List()
	if err != nil {
		return nil, 0, fmt.Errorf("sqldb: open durable: %w", err)
	}
	type ckpt struct {
		name string
		lsn  uint64
	}
	var ckpts []ckpt
	for _, n := range names {
		if lsn, ok := parseCkptName(n); ok {
			ckpts = append(ckpts, ckpt{n, lsn})
		}
	}
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i].lsn > ckpts[j].lsn })
	var firstErr error
	for _, c := range ckpts {
		f, err := fs.Open(c.name)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		tables, err := decodeTables(bufio.NewReaderSize(f, 1<<20))
		f.Close()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		return tables, c.lsn, nil
	}
	if len(ckpts) > 0 && firstErr != nil {
		// Every checkpoint is unreadable: refuse to silently start empty.
		return nil, 0, fmt.Errorf("sqldb: no readable checkpoint: %w", firstErr)
	}
	return nil, 0, nil
}

// applyRecord replays one commit record's statements as a single atomic
// unit. A failure rolls the record back and aborts recovery. Replay runs
// in lock mode (a zero writeCtx) regardless of the database's MVCC
// setting: recovery is single-threaded, the record's effects are already
// committed in the log, and lock-mode writes install plain committed
// versions with no epochs to publish.
func (db *DB) applyRecord(stmts []logStmt) error {
	db.writer.Lock()
	defer db.writer.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	undo := &undoLog{}
	w := &writeCtx{}
	for _, st := range stmts {
		p, err := db.stmts.get(db, st.sql).ensure(db)
		if err != nil {
			undo.rollback(db)
			return err
		}
		if p.sel != nil {
			undo.rollback(db)
			return fmt.Errorf("sqldb: SELECT in wal record")
		}
		//gmlint:ignore walack recovery replays records already in the log; re-appending them would double every commit
		if _, err := db.executeWrite(p, st.args, undo, w); err != nil {
			undo.rollback(db)
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Checkpointing

// checkpointLoop is the background checkpointer: it snapshots the database
// and prunes covered log segments whenever the log has grown enough.
func (db *DB) checkpointLoop() {
	d := db.durable
	defer close(d.done)
	t := time.NewTicker(d.opts.CheckpointInterval)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			st := d.w.Stats()
			if st.LastLSN > d.ckptLSN.Load() &&
				st.SizeBytes-d.ckptSize.Load() >= d.opts.CheckpointBytes {
				//gmlint:ignore errdrop best effort: a failed checkpoint leaves the log longer but the database correct; the next tick retries
				_ = db.Checkpoint()
			}
		}
	}
}

// Checkpoint writes a durable snapshot of the current committed state and
// prunes log segments the snapshot covers. Concurrent reads proceed;
// writers are blocked only while the in-memory snapshot is built (row
// slices are immutable, so building is O(rows) pointer copying, with
// encoding and fsync happening outside all locks).
func (db *DB) Checkpoint() error {
	d := db.durable
	if d == nil {
		return fmt.Errorf("sqldb: Checkpoint on a non-durable database")
	}
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()

	// writer.Lock waits out open global-path transactions; the EXCLUSIVE
	// mu additionally waits out latched writers and concurrent committers
	// (they hold mu shared), so the snapshot contains exactly the state
	// described by log records <= lsn.
	db.writer.Lock()
	db.mu.Lock()
	snap := db.buildSnapshot()
	lsn := d.w.LastLSN()
	db.mu.Unlock()
	db.writer.Unlock()

	return d.writeCheckpoint(snap, lsn)
}

// writeCheckpoint encodes snap, installs it as the newest checkpoint
// covering lsn, and prunes obsolete segments and old checkpoints. Caller
// holds d.ckptMu.
func (d *durability) writeCheckpoint(snap *snapshot, lsn uint64) error {
	// The covered log prefix must itself be durable before the checkpoint
	// replaces it (checkpoint may otherwise survive a crash that eats
	// not-yet-synced records it claims to cover).
	if lsn > 0 {
		if err := d.w.Durable(lsn); err != nil {
			return err
		}
	}
	tmp := ckptName(lsn) + ".tmp"
	f, err := d.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("sqldb: checkpoint: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := gob.NewEncoder(bw).Encode(snap); err != nil {
		f.Close()
		return fmt.Errorf("sqldb: checkpoint: %w", err)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("sqldb: checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("sqldb: checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("sqldb: checkpoint: %w", err)
	}
	if err := d.fs.Rename(tmp, ckptName(lsn)); err != nil {
		return fmt.Errorf("sqldb: checkpoint: %w", err)
	}
	d.checkpoints.Add(1)
	d.ckptLSN.Store(lsn)

	// Seal the active segment so the covered records' segments become
	// prunable, then drop them and every older checkpoint.
	if err := d.w.Rotate(); err != nil {
		return err
	}
	if err := d.w.Prune(lsn); err != nil {
		return err
	}
	d.ckptSize.Store(d.w.Stats().SizeBytes)
	if names, err := d.fs.List(); err == nil {
		for _, n := range names {
			if l, ok := parseCkptName(n); ok && l < lsn {
				//gmlint:ignore errdrop stale-checkpoint removal is best effort; a leftover file is re-collected by the next checkpoint
				_ = d.fs.Remove(n)
			} else if strings.HasSuffix(n, ".tmp") && n != tmp {
				//gmlint:ignore errdrop orphaned tmp files are cosmetic; the next checkpoint retries the removal
				_ = d.fs.Remove(n)
			}
		}
	}
	return nil
}

// restoreCheckpoint makes the (already swapped-in) state the new durable
// truth: it is written as a checkpoint covering every existing log record,
// so recovery can never resurrect the pre-restore history. Used by
// Restore on a durable database.
func (db *DB) restoreCheckpoint(snap *snapshot, lsn uint64) error {
	d := db.durable
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	return d.writeCheckpoint(snap, lsn)
}

// Close stops the background vacuum goroutine and the checkpointer and
// releases the WAL. It does not checkpoint: recovery replays the log tail
// on the next open. Close on an in-memory database only stops the vacuum
// goroutine (a no-op when MVCC was never enabled).
func (db *DB) Close() error {
	db.stopVacuumer()
	d := db.durable
	if d == nil {
		return nil
	}
	if d.stop != nil {
		close(d.stop)
		<-d.done
		d.stop = nil
	}
	return d.w.Close()
}

// ---------------------------------------------------------------------------
// Deterministic dump (recovery oracle)

// Dump writes a deterministic, byte-reproducible rendering of the entire
// database: schemas, index definitions, row contents in row-ID order, and
// the row/sequence counters. Two databases that dump identically behave
// identically for all future statements, which is exactly the equivalence
// the crash-recovery oracle tests assert.
func (db *DB) Dump(w io.Writer) error {
	// Exclusive mu: a shared lock would admit latched writers and
	// concurrent committers mid-dump (writer alone no longer excludes
	// them), and the dump reads nextRow/nextSeq and whole chains.
	db.mu.Lock()
	defer db.mu.Unlock()
	tables := db.tableMap()
	names := make([]string, 0, len(tables))
	for n := range tables {
		names = append(names, n)
	}
	sort.Strings(names)
	bw := bufio.NewWriter(w)
	for _, n := range names {
		t := tables[n]
		fmt.Fprintf(bw, "TABLE %s nextRow=%d nextSeq=%d\n", t.Name, t.nextRow, t.nextSeq)
		for _, col := range t.Schema.Columns {
			fmt.Fprintf(bw, "  COL %s %s pk=%v auto=%v notnull=%v\n",
				col.Name, col.Type, col.PrimaryKey, col.AutoIncrement, col.NotNull)
		}
		for _, idx := range t.Indexes() {
			fmt.Fprintf(bw, "  INDEX %s ON %s kind=%v unique=%v\n", idx.Name, idx.Column, idx.Kind, idx.Unique)
		}
		t.Scan(func(id int64, row []Value) bool {
			fmt.Fprintf(bw, "  ROW %d:", id)
			for _, v := range row {
				fmt.Fprintf(bw, " %s", FormatValue(v))
			}
			fmt.Fprintln(bw)
			return true
		})
	}
	return bw.Flush()
}

// DumpString returns Dump as a string (test helper).
func (db *DB) DumpString() string {
	var sb strings.Builder
	//gmlint:ignore errdrop strings.Builder writes cannot fail, so Dump to it cannot either
	_ = db.Dump(&sb)
	return sb.String()
}
