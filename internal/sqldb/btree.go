package sqldb

// btree is an in-memory B-tree keyed by (Value, rowID) pairs. Duplicate
// key values are permitted because the row ID participates in the ordering,
// making every entry unique. It backs ordered (B-tree) indexes and range
// scans.
type btree struct {
	root   *btreeNode
	degree int
	size   int
}

type btreeEntry struct {
	key Value
	row int64
}

type btreeNode struct {
	entries  []btreeEntry
	children []*btreeNode // nil for leaves
}

const btreeDegree = 32 // max children per internal node = 2*degree

func newBTree() *btree {
	return &btree{root: &btreeNode{}, degree: btreeDegree}
}

func entryLess(a, b btreeEntry) bool {
	c := Compare(a.key, b.key)
	if c != 0 {
		return c < 0
	}
	return a.row < b.row
}

func (n *btreeNode) isLeaf() bool { return n.children == nil }

// searchEntry returns the insertion position of e in n.entries and whether
// an equal entry exists at that position.
func (n *btreeNode) searchEntry(e btreeEntry) (int, bool) {
	lo, hi := 0, len(n.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if entryLess(n.entries[mid], e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.entries) && !entryLess(e, n.entries[lo]) && !entryLess(n.entries[lo], e) {
		return lo, true
	}
	return lo, false
}

// Insert adds (key,row). It is a no-op if the exact pair is present.
func (t *btree) Insert(key Value, row int64) {
	e := btreeEntry{key: key, row: row}
	if len(t.root.entries) >= 2*t.degree-1 {
		old := t.root
		t.root = &btreeNode{children: []*btreeNode{old}}
		t.splitChild(t.root, 0)
	}
	if t.insertNonFull(t.root, e) {
		t.size++
	}
}

func (t *btree) splitChild(parent *btreeNode, i int) {
	child := parent.children[i]
	mid := t.degree - 1
	promoted := child.entries[mid]

	right := &btreeNode{}
	right.entries = append(right.entries, child.entries[mid+1:]...)
	if !child.isLeaf() {
		right.children = append(right.children, child.children[mid+1:]...)
		child.children = child.children[:mid+1]
	}
	child.entries = child.entries[:mid]

	parent.entries = append(parent.entries, btreeEntry{})
	copy(parent.entries[i+1:], parent.entries[i:])
	parent.entries[i] = promoted

	parent.children = append(parent.children, nil)
	copy(parent.children[i+2:], parent.children[i+1:])
	parent.children[i+1] = right
}

func (t *btree) insertNonFull(n *btreeNode, e btreeEntry) bool {
	for {
		pos, found := n.searchEntry(e)
		if found {
			return false
		}
		if n.isLeaf() {
			n.entries = append(n.entries, btreeEntry{})
			copy(n.entries[pos+1:], n.entries[pos:])
			n.entries[pos] = e
			return true
		}
		child := n.children[pos]
		if len(child.entries) >= 2*t.degree-1 {
			t.splitChild(n, pos)
			if entryLess(n.entries[pos], e) {
				pos++
			} else if !entryLess(e, n.entries[pos]) {
				return false // promoted entry equals e
			}
		}
		n = n.children[pos]
	}
}

// Delete removes the exact (key,row) pair; it reports whether it was found.
func (t *btree) Delete(key Value, row int64) bool {
	e := btreeEntry{key: key, row: row}
	if !t.delete(t.root, e) {
		return false
	}
	t.size--
	if len(t.root.entries) == 0 && !t.root.isLeaf() {
		t.root = t.root.children[0]
	}
	return true
}

func (t *btree) delete(n *btreeNode, e btreeEntry) bool {
	pos, found := n.searchEntry(e)
	if n.isLeaf() {
		if !found {
			return false
		}
		n.entries = append(n.entries[:pos], n.entries[pos+1:]...)
		return true
	}
	if found {
		left, right := n.children[pos], n.children[pos+1]
		switch {
		case len(left.entries) >= t.degree:
			pred := maxEntry(left)
			n.entries[pos] = pred
			return t.delete(left, pred)
		case len(right.entries) >= t.degree:
			succ := minEntry(right)
			n.entries[pos] = succ
			return t.delete(right, succ)
		default:
			t.mergeChildren(n, pos)
			return t.delete(n.children[pos], e)
		}
	}
	pos = t.ensureChild(n, pos)
	return t.delete(n.children[pos], e)
}

func maxEntry(n *btreeNode) btreeEntry {
	for !n.isLeaf() {
		n = n.children[len(n.children)-1]
	}
	return n.entries[len(n.entries)-1]
}

func minEntry(n *btreeNode) btreeEntry {
	for !n.isLeaf() {
		n = n.children[0]
	}
	return n.entries[0]
}

// mergeChildren merges children[pos], entries[pos] and children[pos+1]
// into a single node stored at children[pos].
func (t *btree) mergeChildren(n *btreeNode, pos int) {
	child, right := n.children[pos], n.children[pos+1]
	child.entries = append(child.entries, n.entries[pos])
	child.entries = append(child.entries, right.entries...)
	if !child.isLeaf() {
		child.children = append(child.children, right.children...)
	}
	n.entries = append(n.entries[:pos], n.entries[pos+1:]...)
	n.children = append(n.children[:pos+1], n.children[pos+2:]...)
}

// ensureChild guarantees the child on the descent path has at least
// `degree` entries by borrowing from a sibling or merging; it returns the
// (possibly shifted) child position to descend into.
func (t *btree) ensureChild(n *btreeNode, pos int) int {
	child := n.children[pos]
	if len(child.entries) >= t.degree {
		return pos
	}
	if pos > 0 && len(n.children[pos-1].entries) >= t.degree {
		left := n.children[pos-1]
		child.entries = append(child.entries, btreeEntry{})
		copy(child.entries[1:], child.entries)
		child.entries[0] = n.entries[pos-1]
		n.entries[pos-1] = left.entries[len(left.entries)-1]
		left.entries = left.entries[:len(left.entries)-1]
		if !child.isLeaf() {
			child.children = append(child.children, nil)
			copy(child.children[1:], child.children)
			child.children[0] = left.children[len(left.children)-1]
			left.children = left.children[:len(left.children)-1]
		}
		return pos
	}
	if pos < len(n.children)-1 && len(n.children[pos+1].entries) >= t.degree {
		right := n.children[pos+1]
		child.entries = append(child.entries, n.entries[pos])
		n.entries[pos] = right.entries[0]
		right.entries = append(right.entries[:0], right.entries[1:]...)
		if !child.isLeaf() {
			child.children = append(child.children, right.children[0])
			right.children = append(right.children[:0], right.children[1:]...)
		}
		return pos
	}
	// Merge with a sibling; after merging, the child to descend into is
	// at the merge position.
	if pos == len(n.children)-1 {
		pos--
	}
	t.mergeChildren(n, pos)
	return pos
}

// Ascend visits all entries in order until fn returns false.
func (t *btree) Ascend(fn func(key Value, row int64) bool) {
	t.ascend(t.root, fn)
}

func (t *btree) ascend(n *btreeNode, fn func(Value, int64) bool) bool {
	for i, e := range n.entries {
		if !n.isLeaf() && !t.ascend(n.children[i], fn) {
			return false
		}
		if !fn(e.key, e.row) {
			return false
		}
	}
	if !n.isLeaf() {
		return t.ascend(n.children[len(n.children)-1], fn)
	}
	return true
}

// AscendRange visits entries with lo <= key <= hi (bounds optional via
// hasLo/hasHi; inclusivity controlled by loIncl/hiIncl) in ascending order.
func (t *btree) AscendRange(lo, hi Value, hasLo, hasHi, loIncl, hiIncl bool, fn func(key Value, row int64) bool) {
	t.ascendRange(t.root, lo, hi, hasLo, hasHi, loIncl, hiIncl, fn)
}

func (t *btree) ascendRange(n *btreeNode, lo, hi Value, hasLo, hasHi, loIncl, hiIncl bool, fn func(Value, int64) bool) bool {
	start := 0
	if hasLo {
		// First entry with key >= lo (or > lo when exclusive).
		lo2, hi2 := 0, len(n.entries)
		for lo2 < hi2 {
			mid := (lo2 + hi2) / 2
			c := Compare(n.entries[mid].key, lo)
			if c < 0 || (c == 0 && !loIncl) {
				lo2 = mid + 1
			} else {
				hi2 = mid
			}
		}
		start = lo2
	}
	for i := start; i <= len(n.entries); i++ {
		if !n.isLeaf() {
			if !t.ascendRange(n.children[i], lo, hi, hasLo, hasHi, loIncl, hiIncl, fn) {
				return false
			}
		}
		if i == len(n.entries) {
			break
		}
		e := n.entries[i]
		if hasHi {
			c := Compare(e.key, hi)
			if c > 0 || (c == 0 && !hiIncl) {
				return false
			}
		}
		if !fn(e.key, e.row) {
			return false
		}
	}
	return true
}

// DescendRange visits entries with lo <= key <= hi (bounds optional via
// hasLo/hasHi; inclusivity controlled by loIncl/hiIncl) in descending order.
func (t *btree) DescendRange(lo, hi Value, hasLo, hasHi, loIncl, hiIncl bool, fn func(key Value, row int64) bool) {
	t.descendRange(t.root, lo, hi, hasLo, hasHi, loIncl, hiIncl, fn)
}

func (t *btree) descendRange(n *btreeNode, lo, hi Value, hasLo, hasHi, loIncl, hiIncl bool, fn func(Value, int64) bool) bool {
	end := len(n.entries)
	if hasHi {
		// One past the last entry with key <= hi (or < hi when exclusive).
		lo2, hi2 := 0, len(n.entries)
		for lo2 < hi2 {
			mid := (lo2 + hi2) / 2
			c := Compare(n.entries[mid].key, hi)
			if c < 0 || (c == 0 && hiIncl) {
				lo2 = mid + 1
			} else {
				hi2 = mid
			}
		}
		end = lo2
	}
	for i := end; i >= 0; i-- {
		if !n.isLeaf() {
			if !t.descendRange(n.children[i], lo, hi, hasLo, hasHi, loIncl, hiIncl, fn) {
				return false
			}
		}
		if i == 0 {
			break
		}
		e := n.entries[i-1]
		if hasLo {
			c := Compare(e.key, lo)
			if c < 0 || (c == 0 && !loIncl) {
				return false
			}
		}
		if !fn(e.key, e.row) {
			return false
		}
	}
	return true
}

// Len returns the number of stored entries.
func (t *btree) Len() int { return t.size }

// depth returns the height of the tree (for invariant tests).
func (t *btree) depth() int {
	d := 1
	for n := t.root; !n.isLeaf(); n = n.children[0] {
		d++
	}
	return d
}

// checkInvariants validates B-tree structural invariants; it returns a
// descriptive string for the first violation found, or "" when valid.
// Used by property-based tests.
func (t *btree) checkInvariants() string {
	var prev *btreeEntry
	ok := ""
	depth := -1
	var walk func(n *btreeNode, d int, root bool) bool
	walk = func(n *btreeNode, d int, root bool) bool {
		if !root {
			if len(n.entries) < t.degree-1 {
				ok = "underfull node"
				return false
			}
		}
		if len(n.entries) > 2*t.degree-1 {
			ok = "overfull node"
			return false
		}
		if n.isLeaf() {
			if depth == -1 {
				depth = d
			} else if depth != d {
				ok = "leaves at different depths"
				return false
			}
		} else if len(n.children) != len(n.entries)+1 {
			ok = "children/entries count mismatch"
			return false
		}
		for i := range n.entries {
			if !n.isLeaf() && !walk(n.children[i], d+1, false) {
				return false
			}
			e := n.entries[i]
			if prev != nil && !entryLess(*prev, e) {
				ok = "entries out of order"
				return false
			}
			ecopy := e
			prev = &ecopy
		}
		if !n.isLeaf() {
			return walk(n.children[len(n.children)-1], d+1, false)
		}
		return true
	}
	walk(t.root, 0, true)
	return ok
}
