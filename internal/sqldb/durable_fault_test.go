package sqldb

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"genmapper/internal/wal"
)

// dbCommit is one committed transaction of a crash-test workload: either a
// single auto-commit statement or a multi-statement transaction.
type dbCommit struct {
	stmts []logStmt
	tx    bool
}

func autoCommit(sql string, args ...any) dbCommit {
	vals, err := normalizeArgs(args)
	if err != nil {
		panic(err)
	}
	return dbCommit{stmts: []logStmt{{sql: sql, args: vals}}}
}

func txCommit(stmts ...logStmt) dbCommit { return dbCommit{stmts: stmts, tx: true} }

func st(sql string, args ...any) logStmt {
	vals, err := normalizeArgs(args)
	if err != nil {
		panic(err)
	}
	return logStmt{sql: sql, args: vals}
}

// apply runs one commit against a database. For transactions, a failure
// mid-transaction rolls back (the commit is all-or-nothing in the shadow
// too).
func (c dbCommit) apply(db *DB) error {
	anyArgs := func(vals []Value) []any {
		out := make([]any, len(vals))
		for i, v := range vals {
			out[i] = v
		}
		return out
	}
	if !c.tx {
		_, err := db.Exec(c.stmts[0].sql, anyArgs(c.stmts[0].args)...)
		return err
	}
	tx := db.Begin()
	for _, s := range c.stmts {
		if _, err := tx.Exec(s.sql, anyArgs(s.args)...); err != nil {
			tx.Rollback()
			return err
		}
	}
	return tx.Commit()
}

// crashWorkload is a fixed, deterministic commit sequence covering INSERT,
// UPDATE, DELETE, DDL (CREATE/DROP TABLE and INDEX) and a multi-statement
// transaction.
func crashWorkload() []dbCommit {
	cs := []dbCommit{
		autoCommit("CREATE TABLE kv (id INTEGER PRIMARY KEY AUTOINCREMENT, k TEXT NOT NULL, v INTEGER)"),
		autoCommit("CREATE INDEX idx_kv_k ON kv (k)"),
	}
	for i := 0; i < 8; i++ {
		cs = append(cs, autoCommit("INSERT INTO kv (k, v) VALUES (?, ?)", fmt.Sprintf("key-%d", i), i*10))
	}
	for i := 8; i < 14; i++ {
		cs = append(cs, autoCommit("INSERT INTO kv (k, v) VALUES (?, ?)", fmt.Sprintf("key-%d", i), i*10))
	}
	cs = append(cs,
		autoCommit("UPDATE kv SET v = v + 1 WHERE k = ?", "key-3"),
		autoCommit("DELETE FROM kv WHERE k = ?", "key-5"),
		txCommit(
			st("INSERT INTO kv (k, v) VALUES (?, ?)", "tx-a", 100),
			st("INSERT INTO kv (k, v) VALUES (?, ?)", "tx-b", 200),
			st("UPDATE kv SET v = 0 WHERE k = ?", "key-0"),
		),
		autoCommit("CREATE TABLE aux (name TEXT, score REAL)"),
		autoCommit("INSERT INTO aux (name, score) VALUES (?, ?), (?, ?)", "x", 1.5, "y", 2.5),
		autoCommit("CREATE INDEX idx_aux_name ON aux (name)"),
		autoCommit("DROP INDEX idx_aux_name"),
		autoCommit("DELETE FROM kv WHERE v > ?", 150),
		autoCommit("DROP TABLE aux"),
		autoCommit("INSERT INTO kv (k, v) VALUES (?, ?)", "final", 999),
	)
	return cs
}

// prefixDumps applies the commits to a fresh in-memory database and
// records its deterministic dump after every commit. prefix[i] is the
// state after the first i commits.
func prefixDumps(t *testing.T, commits []dbCommit) []string {
	t.Helper()
	shadow := NewDB()
	dumps := []string{shadow.DumpString()}
	for i, c := range commits {
		if err := c.apply(shadow); err != nil {
			t.Fatalf("shadow commit %d: %v", i, err)
		}
		dumps = append(dumps, shadow.DumpString())
	}
	return dumps
}

// matchPrefix finds which committed prefix a recovered dump equals, or
// -1. The LARGEST matching index is returned: a no-op commit can leave
// two adjacent prefixes byte-identical, and durability is judged against
// the latest state the bytes can represent.
func matchPrefix(dumps []string, got string) int {
	for i := len(dumps) - 1; i >= 0; i-- {
		if dumps[i] == got {
			return i
		}
	}
	return -1
}

// durableOpts returns test options: no background checkpointer (its timing
// would make IO-op numbering nondeterministic), small segments so the
// sweep also crosses rotation boundaries.
func durableOpts(fs wal.FS, sync wal.SyncPolicy) DurableOptions {
	return DurableOptions{
		Sync:               sync,
		SegmentSize:        512,
		CheckpointInterval: -1,
		FS:                 fs,
	}
}

// runCrashPoint executes the workload against a durable DB on fs with a
// fault planned at IO op n, optionally checkpointing mid-way, and returns
// how many commits were acknowledged.
func runCrashPoint(t *testing.T, fs *wal.FaultFS, commits []dbCommit, checkpointAfter int) (acked int) {
	t.Helper()
	db, err := OpenDurable("", durableOpts(fs, wal.SyncAlways))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()
	for i, c := range commits {
		if err := c.apply(db); err != nil {
			return acked
		}
		acked++
		if checkpointAfter > 0 && i+1 == checkpointAfter {
			if err := db.Checkpoint(); err != nil {
				// A failed checkpoint must never lose data; committing may
				// continue or fail depending on where the fault landed.
				continue
			}
		}
	}
	return acked
}

// TestDBCrashSweep is the database half of the fault-injection harness:
// for EVERY IO operation (write or fsync) the workload performs — once
// plain, once with a mid-workload checkpoint — it crashes the filesystem
// at that operation, recovers, and asserts the recovered database is
// byte-identical to some committed prefix of the workload that includes
// every acknowledged commit. Torn tails (partial sector flush at the
// crash) are exercised on every third point.
func TestDBCrashSweep(t *testing.T) {
	commits := crashWorkload()
	dumps := prefixDumps(t, commits)

	for _, cfg := range []struct {
		name       string
		checkpoint int
	}{
		{"log-only", 0},
		{"with-checkpoint", 9},
	} {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			// Dry run sizes the sweep.
			dry := wal.NewFaultFS()
			if n := runCrashPoint(t, dry, commits, cfg.checkpoint); n != len(commits) {
				t.Fatalf("dry run acked %d of %d", n, len(commits))
			}
			total := dry.OpCount()
			if total < 50 {
				t.Fatalf("workload too small: %d IO ops, need >= 50 crash points", total)
			}
			t.Logf("sweeping %d crash points", total)

			for op := 1; op <= total; op++ {
				fs := wal.NewFaultFS()
				fs.SetPlan(wal.FaultPlan{AtOp: op, Kind: wal.FaultCrash})
				acked := runCrashPoint(t, fs, commits, cfg.checkpoint)

				var torn func(int) int
				if op%3 == 0 {
					rng := rand.New(rand.NewSource(int64(op)))
					torn = func(unsynced int) int {
						if unsynced == 0 {
							return 0
						}
						return rng.Intn(unsynced + 1)
					}
				}
				fs.SimulateCrash(torn)

				rec, err := OpenDurable("", durableOpts(fs, wal.SyncAlways))
				if err != nil {
					t.Fatalf("op %d: recovery failed: %v", op, err)
				}
				got := rec.DumpString()
				k := matchPrefix(dumps, got)
				if k < 0 {
					t.Fatalf("op %d: recovered state equals NO committed prefix (torn or reordered)\nacked=%d\n%s", op, acked, got)
				}
				if k < acked {
					t.Fatalf("op %d: recovered prefix %d but %d commits were acknowledged — durability violated", op, k, acked)
				}
				// The recovered database must accept new writes (kv may not
				// exist yet when the crash predates its CREATE).
				if _, err := rec.Exec("CREATE TABLE IF NOT EXISTS probe (x INTEGER)"); err != nil {
					t.Fatalf("op %d: write after recovery: %v", op, err)
				}
				rec.Close()
			}
		})
	}
}

// TestDBCrashSweepPartitioned proves the WAL and checkpoint/recovery
// machinery is partition-transparent: the durable database runs sharded
// with the partition-parallel write paths forced on, the shadow prefix
// dumps come from a database sharded to a DIFFERENT partition count, and
// after a crash at every third IO op the recovered dump (default layout)
// must still be byte-identical to a committed shadow prefix.
func TestDBCrashSweepPartitioned(t *testing.T) {
	commits := crashWorkload()

	shadow := NewDB()
	shadow.SetPartitions(5)
	dumps := []string{shadow.DumpString()}
	for i, c := range commits {
		if err := c.apply(shadow); err != nil {
			t.Fatalf("shadow commit %d: %v", i, err)
		}
		dumps = append(dumps, shadow.DumpString())
	}

	runPoint := func(fs *wal.FaultFS) int {
		db, err := OpenDurable("", durableOpts(fs, wal.SyncAlways))
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		defer db.Close()
		db.SetPartitions(4)
		db.SetParallelism(4)
		db.SetParallelMinRows(1)
		acked := 0
		for _, c := range commits {
			if err := c.apply(db); err != nil {
				return acked
			}
			acked++
		}
		return acked
	}

	dry := wal.NewFaultFS()
	if n := runPoint(dry); n != len(commits) {
		t.Fatalf("dry run acked %d of %d", n, len(commits))
	}
	total := dry.OpCount()
	for op := 1; op <= total; op += 3 {
		fs := wal.NewFaultFS()
		fs.SetPlan(wal.FaultPlan{AtOp: op, Kind: wal.FaultCrash})
		acked := runPoint(fs)
		fs.SimulateCrash(nil)

		rec, err := OpenDurable("", durableOpts(fs, wal.SyncAlways))
		if err != nil {
			t.Fatalf("op %d: recovery failed: %v", op, err)
		}
		got := rec.DumpString()
		rec.Close()
		k := matchPrefix(dumps, got)
		if k < 0 {
			t.Fatalf("op %d: recovered partitioned state equals NO committed prefix\nacked=%d\n%s", op, acked, got)
		}
		if k < acked {
			t.Fatalf("op %d: recovered prefix %d but %d commits acknowledged", op, k, acked)
		}
	}
}

// TestRandomizedRecoveryOracle extends the planner-equivalence fuzz style
// to durability: N random write statements run against an in-memory
// shadow and a durable database; the durable one is killed at a random
// record boundary, recovered, and its dump must be byte-identical to the
// shadow's dump after the committed prefix.
func TestRandomizedRecoveryOracle(t *testing.T) {
	const rounds = 30
	for round := 0; round < rounds; round++ {
		rng := rand.New(rand.NewSource(int64(round) * 7919))
		commits := randomWorkload(rng)
		dumps := prefixDumps(t, commits)

		// Dry run to learn the op budget for this workload.
		dry := wal.NewFaultFS()
		if n := runCrashPoint(t, dry, commits, 0); n != len(commits) {
			t.Fatalf("round %d: dry run acked %d of %d", round, n, len(commits))
		}
		op := 1 + rng.Intn(dry.OpCount())

		fs := wal.NewFaultFS()
		fs.SetPlan(wal.FaultPlan{AtOp: op, Kind: wal.FaultCrash})
		acked := runCrashPoint(t, fs, commits, 0)
		var torn func(int) int
		if rng.Intn(2) == 0 {
			torn = func(unsynced int) int {
				if unsynced == 0 {
					return 0
				}
				return rng.Intn(unsynced + 1)
			}
		}
		fs.SimulateCrash(torn)

		rec, err := OpenDurable("", durableOpts(fs, wal.SyncAlways))
		if err != nil {
			t.Fatalf("round %d op %d: recovery: %v", round, op, err)
		}
		got := rec.DumpString()
		rec.Close()
		k := matchPrefix(dumps, got)
		if k < 0 {
			t.Fatalf("round %d op %d: recovered state matches no committed prefix", round, op)
		}
		if k < acked {
			t.Fatalf("round %d op %d: recovered prefix %d < %d acked", round, op, k, acked)
		}
	}
}

// TestMVCCCrashSweepInFlightTx is the MVCC leg of the fault harness: the
// workload runs under snapshot isolation (commit epochs published after
// the WAL append), a vacuum pass runs mid-way, and at every crash point a
// transaction with UNCOMMITTED provisional versions is left in flight
// before the crash. Recovery must be byte-identical to a committed prefix
// covering every acknowledged commit, and the in-flight transaction's
// provisional rows must never resurrect (they are in no prefix, so a
// resurrected row fails the prefix match — the marker check just names
// the failure).
func TestMVCCCrashSweepInFlightTx(t *testing.T) {
	commits := crashWorkload()
	dumps := prefixDumps(t, commits)

	runPoint := func(fs *wal.FaultFS) int {
		db, err := OpenDurable("", durableOpts(fs, wal.SyncAlways))
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		defer db.Close()
		db.SetMVCC(true)
		acked := 0
		for i, c := range commits {
			if err := c.apply(db); err != nil {
				return acked
			}
			acked++
			if i == len(commits)/2 {
				db.Vacuum()
			}
		}
		return acked
	}

	dry := wal.NewFaultFS()
	if n := runPoint(dry); n != len(commits) {
		t.Fatalf("dry run acked %d of %d", n, len(commits))
	}
	total := dry.OpCount()
	for op := 1; op <= total; op += 2 {
		fs := wal.NewFaultFS()
		fs.SetPlan(wal.FaultPlan{AtOp: op, Kind: wal.FaultCrash})

		db, err := OpenDurable("", durableOpts(fs, wal.SyncAlways))
		if err != nil {
			t.Fatalf("op %d: open: %v", op, err)
		}
		db.SetMVCC(true)
		acked := 0
		for i, c := range commits {
			if err := c.apply(db); err != nil {
				break
			}
			acked++
			if i == len(commits)/2 {
				db.Vacuum()
			}
		}
		// Leave a writing transaction in flight: its provisional versions
		// exist in memory (never logged, never published) when the crash
		// is taken. kv may not exist yet at early crash points; then the
		// in-flight write simply targets nothing.
		tx := db.Begin()
		tx.Exec("INSERT INTO kv (k, v) VALUES (?, ?)", "inflight", -1)
		tx.Exec("UPDATE kv SET v = -2 WHERE k = ?", "key-1")
		fs.SimulateCrash(nil)
		tx.Rollback()
		db.Close()

		rec, err := OpenDurable("", durableOpts(fs, wal.SyncAlways))
		if err != nil {
			t.Fatalf("op %d: recovery failed: %v", op, err)
		}
		got := rec.DumpString()
		rec.Close()
		if strings.Contains(got, "inflight") {
			t.Fatalf("op %d: in-flight transaction's provisional row resurrected:\n%s", op, got)
		}
		k := matchPrefix(dumps, got)
		if k < 0 {
			t.Fatalf("op %d: recovered MVCC state equals NO committed prefix\nacked=%d\n%s", op, acked, got)
		}
		if k < acked {
			t.Fatalf("op %d: recovered prefix %d but %d commits acknowledged — durability violated", op, k, acked)
		}
	}
}

// randomWorkload builds a random but replayable commit sequence over two
// tables.
func randomWorkload(rng *rand.Rand) []dbCommit {
	cs := []dbCommit{
		autoCommit("CREATE TABLE a (id INTEGER PRIMARY KEY AUTOINCREMENT, n INTEGER, s TEXT)"),
		autoCommit("CREATE TABLE b (n INTEGER, t TEXT)"),
		autoCommit("CREATE INDEX idx_a_n ON a (n)"),
	}
	n := 10 + rng.Intn(15)
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			cs = append(cs, autoCommit("INSERT INTO a (n, s) VALUES (?, ?)", rng.Intn(50), fmt.Sprintf("s%d", rng.Intn(100))))
		case 4, 5:
			cs = append(cs, autoCommit("INSERT INTO b (n, t) VALUES (?, ?)", rng.Intn(50), "b"))
		case 6:
			cs = append(cs, autoCommit("UPDATE a SET n = ? WHERE n = ?", rng.Intn(50), rng.Intn(50)))
		case 7:
			cs = append(cs, autoCommit("DELETE FROM a WHERE n = ?", rng.Intn(50)))
		case 8:
			cs = append(cs, txCommit(
				st("INSERT INTO a (n, s) VALUES (?, ?)", rng.Intn(50), "tx"),
				st("DELETE FROM b WHERE n = ?", rng.Intn(50)),
			))
		case 9:
			cs = append(cs, autoCommit("UPDATE b SET t = ? WHERE n > ?", fmt.Sprintf("u%d", i), rng.Intn(40)))
		}
	}
	return cs
}

// TestMVCCMultiWriterWALEquivalence is the concurrent-writer oracle: N
// latched writers on disjoint key ranges commit concurrently, and the
// recovered database — WAL replay alone, the crash discards nothing
// because every commit was acked under SyncAlways — must be
// byte-identical to the live dump. This pins the invariant that makes
// concurrent commit sound: WAL append order equals epoch publication
// order (both happen under db.commitMu), so a serial replay reproduces
// exactly the state the interleaved writers produced.
func TestMVCCMultiWriterWALEquivalence(t *testing.T) {
	const writers, rows, rounds = 4, 32, 6
	fs := wal.NewFaultFS()
	db, err := OpenDurable("", durableOpts(fs, wal.SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY, n INTEGER)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := db.Exec("INSERT INTO t VALUES (?, ?)", i, 0); err != nil {
			t.Fatal(err)
		}
	}
	db.SetMVCC(true)
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for id := w; id < rows; id += writers {
					if _, err := db.Exec("UPDATE t SET n = n + 1 WHERE id = ?", id); err != nil {
						errs <- fmt.Errorf("writer %d: %w", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	live := db.DumpString()
	fs.SimulateCrash(nil)
	db.Close()

	rec, err := OpenDurable("", durableOpts(fs, wal.SyncAlways))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	got := rec.DumpString()
	rec.Close()
	if got != live {
		t.Fatalf("WAL replay diverges from the live multi-writer state\nlive:\n%s\nrecovered:\n%s", live, got)
	}
}

// Conflict-heavy variant: every writer hammers the same eight rows with
// non-commutative assignments, so the final value of each row depends on
// exactly which commit published last. Replay equivalence therefore
// proves the append/publish order really is atomic under commitMu — a
// single swapped pair would recover a different byte image.
func TestMVCCMultiWriterWALEquivalenceConflict(t *testing.T) {
	const writers, iters = 4, 30
	fs := wal.NewFaultFS()
	db, err := OpenDurable("", durableOpts(fs, wal.SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY, n INTEGER)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := db.Exec("INSERT INTO t VALUES (?, ?)", i, 0); err != nil {
			t.Fatal(err)
		}
	}
	db.SetMVCC(true)
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				_, err := db.Exec("UPDATE t SET n = ? WHERE id = ?", w*1000+i, i%8)
				if err != nil && !isWriteConflict(err) {
					errs <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	live := db.DumpString()
	fs.SimulateCrash(nil)
	db.Close()

	rec, err := OpenDurable("", durableOpts(fs, wal.SyncAlways))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	got := rec.DumpString()
	rec.Close()
	if got != live {
		t.Fatalf("WAL replay diverges under write conflicts\nlive:\n%s\nrecovered:\n%s", live, got)
	}
}

// TestMVCCCrashSweepTwoLatchedWriters extends the in-flight-transaction
// sweep to the latched path: at every crash point TWO transactions have
// each installed provisional versions through latched UPDATEs on
// different rows — overlapping in time exactly as concurrent writers do —
// when the crash is taken. Neither was committed, so neither may appear
// in the recovered image, and recovery must still be byte-identical to an
// acknowledged prefix.
func TestMVCCCrashSweepTwoLatchedWriters(t *testing.T) {
	commits := crashWorkload()
	dumps := prefixDumps(t, commits)

	dry := wal.NewFaultFS()
	func() {
		db, err := OpenDurable("", durableOpts(dry, wal.SyncAlways))
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		defer db.Close()
		db.SetMVCC(true)
		for _, c := range commits {
			if err := c.apply(db); err != nil {
				t.Fatalf("dry run: %v", err)
			}
		}
	}()
	total := dry.OpCount()
	for op := 1; op <= total; op += 2 {
		fs := wal.NewFaultFS()
		fs.SetPlan(wal.FaultPlan{AtOp: op, Kind: wal.FaultCrash})

		db, err := OpenDurable("", durableOpts(fs, wal.SyncAlways))
		if err != nil {
			t.Fatalf("op %d: open: %v", op, err)
		}
		db.SetMVCC(true)
		acked := 0
		for _, c := range commits {
			if err := c.apply(db); err != nil {
				break
			}
			acked++
		}
		// Two writing transactions in flight on different rows: both took
		// the latched path (eligible UPDATEs), both hold uncommitted
		// provisional versions when the crash is taken. At early crash
		// points kv may not exist yet; then the writes target nothing.
		tx1 := db.Begin()
		tx1.Exec("UPDATE kv SET v = ? WHERE k = ?", -777, "key-2")
		tx2 := db.Begin()
		tx2.Exec("UPDATE kv SET v = ? WHERE k = ?", -888, "key-4")
		fs.SimulateCrash(nil)
		tx1.Rollback()
		tx2.Rollback()
		db.Close()

		rec, err := OpenDurable("", durableOpts(fs, wal.SyncAlways))
		if err != nil {
			t.Fatalf("op %d: recovery failed: %v", op, err)
		}
		got := rec.DumpString()
		rec.Close()
		if strings.Contains(got, "-777") || strings.Contains(got, "-888") {
			t.Fatalf("op %d: uncommitted latched write resurrected:\n%s", op, got)
		}
		k := matchPrefix(dumps, got)
		if k < 0 {
			t.Fatalf("op %d: recovered state equals NO committed prefix\nacked=%d\n%s", op, acked, got)
		}
		if k < acked {
			t.Fatalf("op %d: recovered prefix %d but %d commits acknowledged — durability violated", op, k, acked)
		}
	}
}
