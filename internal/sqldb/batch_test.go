package sqldb

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
)

// newBatchTestDB builds a partitioned database with the vectorized leg
// forced on (tiny batch threshold) and a populated table `p` of n rows,
// sharing the fixture shape with the parallel operator tests.
func newBatchTestDB(t *testing.T, n, parts int) *DB {
	t.Helper()
	db := NewDB()
	db.SetPartitions(parts)
	db.SetParallelism(parts)
	db.SetParallelMinRows(1)
	db.SetBatchMinRows(1)
	mustExec(t, db, "CREATE TABLE p (id INTEGER PRIMARY KEY, grp INTEGER, val INTEGER, f REAL, s TEXT)")
	fillParallelTable(t, db, n)
	return db
}

// rowEngineResult evaluates query with the vectorized leg disabled and
// parallelism forced to 1 — the reference row-at-a-time serial plan.
func rowEngineResult(t *testing.T, db *DB, query string) string {
	t.Helper()
	db.SetBatchExecution(false)
	defer db.SetBatchExecution(true)
	var out string
	withSerial(db, func() {
		out = formatResult(mustQuery(t, db, query))
	})
	return out
}

// batchKernelQueries exercises every filter kernel (comparisons both
// directions, BETWEEN, IN, LIKE, IS [NOT] NULL, AND/OR/NOT) plus
// projection orders, DISTINCT, ORDER BY and LIMIT/OFFSET above the scan.
var batchKernelQueries = []string{
	"SELECT * FROM p",
	"SELECT id, val FROM p WHERE val >= 500",
	"SELECT id FROM p WHERE 500 > val",
	"SELECT id FROM p WHERE grp = 3",
	"SELECT id FROM p WHERE grp <> 2",
	"SELECT f, s, id FROM p WHERE f BETWEEN 1.5 AND 4.5",
	"SELECT id FROM p WHERE val IN (1, 2, 3, 500)",
	"SELECT id, s FROM p WHERE s LIKE 'a%'",
	"SELECT id FROM p WHERE s LIKE '%et%'",
	"SELECT id FROM p WHERE grp IS NULL",
	"SELECT id FROM p WHERE grp IS NOT NULL AND val < 300",
	"SELECT id FROM p WHERE NOT (val < 500 OR grp = 1)",
	"SELECT id, s FROM p WHERE s = 'beta' OR f IS NULL",
	"SELECT DISTINCT s FROM p",
	"SELECT id FROM p LIMIT 37 OFFSET 5",
	"SELECT id, val FROM p WHERE val > 100 ORDER BY val LIMIT 20",
	"SELECT COUNT(*) FROM p",
	"SELECT COUNT(*), COUNT(f), SUM(val), SUM(f), MIN(val), MAX(f), AVG(f), AVG(val) FROM p",
	"SELECT grp, COUNT(*), COUNT(f), SUM(val), MIN(val), MAX(f), AVG(f) FROM p GROUP BY grp ORDER BY grp",
	"SELECT grp, SUM(f), AVG(val), MIN(s), MAX(s) FROM p WHERE val > 200 GROUP BY grp ORDER BY grp",
}

// TestBatchExecutionMatchesRowEngine runs the kernel coverage queries on
// the vectorized leg — serial producer and partition exchange — and
// requires byte-identical output against the serial row engine.
func TestBatchExecutionMatchesRowEngine(t *testing.T) {
	db := newBatchTestDB(t, 3000, 4)
	for _, q := range batchKernelQueries {
		want := rowEngineResult(t, db, q)
		var serial string
		withSerial(db, func() {
			serial = formatResult(mustQuery(t, db, q))
		})
		if serial != want {
			t.Fatalf("query %q: serial batch leg diverged\n got:\n%s\nwant:\n%s", q, serial, want)
		}
		if got := formatResult(mustQuery(t, db, q)); got != want {
			t.Fatalf("query %q: batch exchange diverged\n got:\n%s\nwant:\n%s", q, got, want)
		}
	}
	st := db.BatchStats()
	if st.BatchScans == 0 || st.BatchAggregates == 0 {
		t.Fatalf("vectorized paths never ran: %+v", st)
	}
}

// TestBatchBoundarySizes sweeps the batch row capacity across the edge
// cases — one row per batch, exact global multiple (3000 = 125 batches of
// 24), exact per-partition multiple, one off either side — and checks the
// vectorized output never depends on where the batch boundaries fall.
func TestBatchBoundarySizes(t *testing.T) {
	db := newBatchTestDB(t, 3000, 4)
	queries := []string{
		"SELECT id, val FROM p WHERE val >= 500",
		"SELECT grp, COUNT(*), SUM(f) FROM p GROUP BY grp ORDER BY grp",
	}
	for _, q := range queries {
		want := rowEngineResult(t, db, q)
		for _, size := range []int{1, 2, 24, 750, 1000, 1024, 3000, 3001} {
			db.setBatchRows(size)
			var serial string
			withSerial(db, func() {
				serial = formatResult(mustQuery(t, db, q))
			})
			if serial != want {
				t.Fatalf("query %q batch size %d: serial leg diverged", q, size)
			}
			if got := formatResult(mustQuery(t, db, q)); got != want {
				t.Fatalf("query %q batch size %d: exchange diverged", q, size)
			}
		}
		db.setBatchRows(0) // restore default
	}
}

// TestBatchLimitMidBatch stops consumption inside a produced batch: the
// limit must hold exactly and the exchange workers must be reaped even
// though their remaining batches are never pulled.
func TestBatchLimitMidBatch(t *testing.T) {
	db := newBatchTestDB(t, 6000, 4)
	db.setBatchRows(64)
	base := runtime.NumGoroutine()
	for _, limit := range []int{10, 63, 64, 65, 200} {
		q := fmt.Sprintf("SELECT id FROM p LIMIT %d", limit)
		want := rowEngineResult(t, db, q)
		got := formatResult(mustQuery(t, db, q))
		if got != want {
			t.Fatalf("LIMIT %d: batch leg diverged\n got:\n%s\nwant:\n%s", limit, got, want)
		}
		waitGoroutines(t, base, fmt.Sprintf("LIMIT %d", limit))
	}
}

// TestBatchCursorEarlyClose closes a streaming vectorized cursor
// mid-batch; the exchange workers must exit and the cursor must refuse
// further reads.
func TestBatchCursorEarlyClose(t *testing.T) {
	db := newBatchTestDB(t, 6000, 4)
	base := runtime.NumGoroutine()
	cur, err := db.QueryCursor("SELECT id, val FROM p")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		row, err := cur.Next()
		if err != nil || row == nil {
			t.Fatalf("row %d: %v %v", i, row, err)
		}
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Next(); err == nil {
		t.Fatal("Next after Close succeeded")
	}
	waitGoroutines(t, base, "batch early close")
	if db.BatchStats().BatchScans == 0 {
		t.Fatal("cursor did not take the vectorized leg")
	}
}

// TestBatchCursorInvalidatedByDDL bumps the schema generation while
// vectorized cursors stream on both the serial producer and the
// exchange; the next pull must fail with ErrCursorInvalidated.
func TestBatchCursorInvalidatedByDDL(t *testing.T) {
	db := newBatchTestDB(t, 6000, 4)
	base := runtime.NumGoroutine()

	cur, err := db.QueryCursor("SELECT id FROM p")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Next(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE INDEX idx_p_s ON p (s)")
	if _, err := cur.Next(); !errors.Is(err, ErrCursorInvalidated) {
		t.Fatalf("exchange Next after DDL: %v, want ErrCursorInvalidated", err)
	}
	cur.Close()
	waitGoroutines(t, base, "batch DDL invalidation")

	var serialErr error
	withSerial(db, func() {
		cur, err := db.QueryCursor("SELECT id FROM p")
		if err != nil {
			t.Fatal(err)
		}
		defer cur.Close()
		if _, err := cur.Next(); err != nil {
			t.Fatal(err)
		}
		mustExec(t, db, "DROP INDEX idx_p_s")
		_, serialErr = cur.Next()
	})
	if !errors.Is(serialErr, ErrCursorInvalidated) {
		t.Fatalf("serial Next after DDL: %v, want ErrCursorInvalidated", serialErr)
	}
}

// TestBatchAggregateErrorParity forces the aggregate type error on both
// engines; the vectorized leg must refuse the same way the row engine
// does.
func TestBatchAggregateErrorParity(t *testing.T) {
	db := newBatchTestDB(t, 200, 4)
	q := "SELECT SUM(s) FROM p WHERE s = 'beta' GROUP BY grp"
	db.SetBatchExecution(false)
	_, rowErr := db.Query(q)
	db.SetBatchExecution(true)
	_, batchErr := db.Query(q)
	if rowErr == nil || batchErr == nil {
		t.Fatalf("SUM over TEXT must fail on both legs: row=%v batch=%v", rowErr, batchErr)
	}
	if rowErr.Error() != batchErr.Error() {
		t.Fatalf("error mismatch:\n row:   %v\n batch: %v", rowErr, batchErr)
	}
}

// TestBatchKnobsAndStats pins the observability contract: the knobs are
// reflected in BatchStats, the counters move only when the vectorized
// leg actually runs, and the cardinality threshold gates dispatch.
func TestBatchKnobsAndStats(t *testing.T) {
	db := newBatchTestDB(t, 500, 4)
	db.SetBatchMinRows(100)
	db.setBatchRows(64)
	st := db.BatchStats()
	if !st.Enabled || st.MinRows != 100 || st.RowsPerBatch != 64 {
		t.Fatalf("knobs not reflected: %+v", st)
	}
	mustQuery(t, db, "SELECT id FROM p WHERE val >= 0")
	mustQuery(t, db, "SELECT grp, COUNT(*) FROM p GROUP BY grp")
	st = db.BatchStats()
	if st.BatchScans == 0 || st.BatchAggregates == 0 {
		t.Fatalf("counters did not move: %+v", st)
	}

	// Below the row threshold the planner must fall back to the row leg.
	db.SetBatchMinRows(10_000)
	before := db.BatchStats()
	mustQuery(t, db, "SELECT id FROM p")
	if after := db.BatchStats(); after.BatchScans != before.BatchScans {
		t.Fatalf("threshold ignored: %+v -> %+v", before, after)
	}

	// Disabled entirely: counters frozen, flag visible.
	db.SetBatchExecution(false)
	before = db.BatchStats()
	mustQuery(t, db, "SELECT id FROM p WHERE val >= 0")
	after := db.BatchStats()
	if after.Enabled || after.BatchScans != before.BatchScans {
		t.Fatalf("disable ignored: %+v", after)
	}
}

// TestCreateIndexParallelMatchesSerial builds the same B-tree index
// serially and from concurrent per-partition sorted runs; indexed range
// and ordered traversals must be byte-identical, NULL handling included.
func TestCreateIndexParallelMatchesSerial(t *testing.T) {
	build := func(par int) *DB {
		db := NewDB()
		db.SetPartitions(4)
		db.SetParallelism(par)
		db.SetParallelMinRows(1)
		mustExec(t, db, "CREATE TABLE p (id INTEGER PRIMARY KEY, grp INTEGER, val INTEGER, f REAL, s TEXT)")
		fillParallelTable(t, db, 3000)
		mustExec(t, db, "CREATE INDEX idx_val ON p (val) USING BTREE")
		mustExec(t, db, "CREATE INDEX idx_f ON p (f) USING BTREE")
		return db
	}
	serial, parallel := build(1), build(4)
	queries := []string{
		"SELECT id, val FROM p WHERE val BETWEEN 100 AND 400 ORDER BY val",
		"SELECT id, val FROM p WHERE val >= 700 ORDER BY val LIMIT 50",
		"SELECT id, f FROM p WHERE f >= 2.5 ORDER BY f",
		"SELECT id FROM p WHERE f IS NULL",
		"SELECT id, val FROM p ORDER BY val DESC LIMIT 100",
	}
	for _, q := range queries {
		a := formatResult(mustQuery(t, serial, q))
		b := formatResult(mustQuery(t, parallel, q))
		if a != b {
			t.Fatalf("query %q:\nserial-built index:\n%s\nparallel-built index:\n%s", q, a, b)
		}
	}
}

// TestCreateIndexParallelUniqueViolation checks error parity: the
// parallel build must report the same duplicate the serial build hits
// first — the key whose second occurrence has the globally smallest row
// ID — and must leave no partial index behind.
func TestCreateIndexParallelUniqueViolation(t *testing.T) {
	build := func(par int) (*DB, error) {
		db := NewDB()
		db.SetPartitions(4)
		db.SetParallelism(par)
		db.SetParallelMinRows(1)
		mustExec(t, db, "CREATE TABLE u (id INTEGER PRIMARY KEY, k TEXT)")
		for _, r := range []struct {
			id int64
			k  any
		}{
			{0, "x"}, {10, "a"}, {50, "a"}, {200, "x"}, {201, nil}, {202, nil},
		} {
			mustExec(t, db, "INSERT INTO u VALUES (?, ?)", r.id, r.k)
		}
		_, err := db.Exec("CREATE UNIQUE INDEX uk ON u (k) USING BTREE")
		return db, err
	}
	serialDB, serr := build(1)
	parDB, perr := build(4)
	var se, pe *UniqueError
	if !errors.As(serr, &se) {
		t.Fatalf("serial build: %v, want UniqueError", serr)
	}
	if !errors.As(perr, &pe) {
		t.Fatalf("parallel build: %v, want UniqueError", perr)
	}
	// "a" duplicates at row 50, before "x" duplicates at row 200; the two
	// NULLs never violate uniqueness.
	if se.Table != pe.Table || se.Column != pe.Column || Compare(se.Value, pe.Value) != 0 {
		t.Fatalf("violation mismatch: serial=%+v parallel=%+v", se, pe)
	}
	if pe.Value != "a" {
		t.Fatalf("duplicate key = %v, want the globally first second-occurrence %q", pe.Value, "a")
	}
	// A failed build must not register the index: the name stays free.
	for _, db := range []*DB{serialDB, parDB} {
		mustExec(t, db, "CREATE INDEX uk ON u (k) USING BTREE")
	}
}
