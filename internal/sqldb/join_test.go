package sqldb

import (
	"fmt"
	"strings"
	"testing"
)

func newJoinDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	mustExec(t, db, "CREATE TABLE genes (id INTEGER PRIMARY KEY, symbol TEXT)")
	mustExec(t, db, "CREATE TABLE annos (gene_id INTEGER, term TEXT)")
	genes := map[int]string{1: "APRT", 2: "TP53", 3: "BRCA1", 4: "ORPHAN"}
	for id, sym := range genes {
		mustExec(t, db, "INSERT INTO genes VALUES (?, ?)", id, sym)
	}
	annos := [][2]any{{1, "GO:0009116"}, {1, "GO:0016740"}, {2, "GO:0006915"}, {3, "GO:0006281"}, {99, "GO:dangling"}}
	for _, a := range annos {
		mustExec(t, db, "INSERT INTO annos VALUES (?, ?)", a[0], a[1])
	}
	return db
}

func TestInnerJoin(t *testing.T) {
	db := newJoinDB(t)
	rs := mustQuery(t, db, `SELECT g.symbol, a.term FROM genes g
		JOIN annos a ON g.id = a.gene_id ORDER BY g.symbol, a.term`)
	if len(rs.Rows) != 4 {
		t.Fatalf("inner join rows = %d, want 4", len(rs.Rows))
	}
	if rs.Rows[0][0] != "APRT" || rs.Rows[0][1] != "GO:0009116" {
		t.Errorf("first row = %v", rs.Rows[0])
	}
	// ORPHAN (no annotations) and the dangling annotation must be absent.
	for _, r := range rs.Rows {
		if r[0] == "ORPHAN" || r[1] == "GO:dangling" {
			t.Errorf("unexpected row %v in inner join", r)
		}
	}
}

func TestLeftJoin(t *testing.T) {
	db := newJoinDB(t)
	rs := mustQuery(t, db, `SELECT g.symbol, a.term FROM genes g
		LEFT JOIN annos a ON g.id = a.gene_id ORDER BY g.symbol, a.term`)
	if len(rs.Rows) != 5 {
		t.Fatalf("left join rows = %d, want 5", len(rs.Rows))
	}
	foundOrphan := false
	for _, r := range rs.Rows {
		if r[0] == "ORPHAN" {
			foundOrphan = true
			if r[1] != nil {
				t.Errorf("ORPHAN term = %v, want NULL", r[1])
			}
		}
	}
	if !foundOrphan {
		t.Error("left join lost the unmatched gene")
	}
}

func TestLeftOuterJoinSyntax(t *testing.T) {
	db := newJoinDB(t)
	rs := mustQuery(t, db, `SELECT g.symbol FROM genes g LEFT OUTER JOIN annos a ON g.id = a.gene_id WHERE a.term IS NULL`)
	if len(rs.Rows) != 1 || rs.Rows[0][0] != "ORPHAN" {
		t.Fatalf("anti-join = %v", rs.Rows)
	}
}

func TestThreeWayJoin(t *testing.T) {
	db := newJoinDB(t)
	mustExec(t, db, "CREATE TABLE terms (term TEXT, name TEXT)")
	mustExec(t, db, "INSERT INTO terms VALUES ('GO:0009116', 'nucleoside metabolism')")
	mustExec(t, db, "INSERT INTO terms VALUES ('GO:0006915', 'apoptosis')")
	rs := mustQuery(t, db, `SELECT g.symbol, t.name FROM genes g
		JOIN annos a ON g.id = a.gene_id
		JOIN terms t ON a.term = t.term
		ORDER BY g.symbol`)
	if len(rs.Rows) != 2 {
		t.Fatalf("3-way join rows = %d, want 2", len(rs.Rows))
	}
	if rs.Rows[0][0] != "APRT" || rs.Rows[0][1] != "nucleoside metabolism" {
		t.Errorf("row = %v", rs.Rows[0])
	}
}

func TestJoinWithNonEquiResidual(t *testing.T) {
	db := newJoinDB(t)
	rs := mustQuery(t, db, `SELECT g.symbol, a.term FROM genes g
		JOIN annos a ON g.id = a.gene_id AND a.term LIKE 'GO:0009%'`)
	if len(rs.Rows) != 1 || rs.Rows[0][0] != "APRT" {
		t.Fatalf("residual join = %v", rs.Rows)
	}
}

func TestPureNestedLoopJoin(t *testing.T) {
	// A join with no equi-condition falls back to nested loop.
	db := newJoinDB(t)
	rs := mustQuery(t, db, `SELECT g.symbol, a.term FROM genes g
		JOIN annos a ON g.id < a.gene_id ORDER BY g.symbol, a.term`)
	// gene_id=99 pairs with all 4 genes; others: gene 1 with gene_id 2,3; gene 2 with 3...
	// g.id < a.gene_id pairs: (1,2),(1,3),(2,3),(3,99 dangling counts), etc.
	if len(rs.Rows) == 0 {
		t.Fatal("nested loop join returned nothing")
	}
	for _, r := range rs.Rows {
		if r[0] == "ORPHAN" && r[1] != "GO:dangling" {
			t.Errorf("ORPHAN should only pair with gene_id 99: %v", r)
		}
	}
}

func TestSelfJoin(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE edges (parent TEXT, child TEXT)")
	mustExec(t, db, "INSERT INTO edges VALUES ('a','b'), ('b','c'), ('c','d')")
	rs := mustQuery(t, db, `SELECT e1.parent, e2.child FROM edges e1
		JOIN edges e2 ON e1.child = e2.parent ORDER BY e1.parent`)
	if len(rs.Rows) != 2 {
		t.Fatalf("self join rows = %d, want 2", len(rs.Rows))
	}
	if rs.Rows[0][0] != "a" || rs.Rows[0][1] != "c" {
		t.Errorf("grandparent row = %v", rs.Rows[0])
	}
}

func TestJoinGroupBy(t *testing.T) {
	db := newJoinDB(t)
	rs := mustQuery(t, db, `SELECT g.symbol, COUNT(a.term) AS n FROM genes g
		LEFT JOIN annos a ON g.id = a.gene_id
		GROUP BY g.symbol ORDER BY g.symbol`)
	want := map[string]int64{"APRT": 2, "BRCA1": 1, "ORPHAN": 0, "TP53": 1}
	if len(rs.Rows) != len(want) {
		t.Fatalf("groups = %d, want %d", len(rs.Rows), len(want))
	}
	for _, r := range rs.Rows {
		if want[r[0].(string)] != r[1].(int64) {
			t.Errorf("%v count = %v, want %d", r[0], r[1], want[r[0].(string)])
		}
	}
}

func TestJoinAmbiguousColumn(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE a (x INTEGER)")
	mustExec(t, db, "CREATE TABLE b (x INTEGER)")
	mustExec(t, db, "INSERT INTO a VALUES (1)")
	mustExec(t, db, "INSERT INTO b VALUES (1)")
	if _, err := db.Query("SELECT x FROM a JOIN b ON a.x = b.x"); err == nil {
		t.Fatal("ambiguous unqualified column must error")
	}
	rs := mustQuery(t, db, "SELECT a.x FROM a JOIN b ON a.x = b.x")
	if len(rs.Rows) != 1 {
		t.Fatalf("qualified column rows = %d", len(rs.Rows))
	}
}

// TestJoinMatchesNestedLoopReference cross-checks the hash join against a
// brute-force nested loop on randomized data.
func TestJoinMatchesNestedLoopReference(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE l (k INTEGER, v TEXT)")
	mustExec(t, db, "CREATE TABLE r (k INTEGER, w TEXT)")
	type pair struct {
		k int
		s string
	}
	var left, right []pair
	for i := 0; i < 60; i++ {
		left = append(left, pair{i % 7, fmt.Sprintf("l%d", i)})
		right = append(right, pair{i % 5, fmt.Sprintf("r%d", i)})
	}
	for _, p := range left {
		mustExec(t, db, "INSERT INTO l VALUES (?, ?)", p.k, p.s)
	}
	for _, p := range right {
		mustExec(t, db, "INSERT INTO r VALUES (?, ?)", p.k, p.s)
	}
	rs := mustQuery(t, db, "SELECT l.v, r.w FROM l JOIN r ON l.k = r.k ORDER BY l.v, r.w")

	var want []string
	for _, lp := range left {
		for _, rp := range right {
			if lp.k == rp.k {
				want = append(want, lp.s+"|"+rp.s)
			}
		}
	}
	var got []string
	for _, r := range rs.Rows {
		got = append(got, r[0].(string)+"|"+r[1].(string))
	}
	sortStrings(got)
	sortStrings(want)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("hash join diverges from reference: %d vs %d rows", len(got), len(want))
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
