// Package sqldb implements an embedded, in-process relational database
// engine with a SQL subset, used by GenMapper as the substitute for the
// MySQL backend of the original system.
//
// The engine supports typed columns (INTEGER, REAL, TEXT, BOOLEAN), hash
// and B-tree indexes, inner and left outer joins, grouping and aggregation,
// ordering, DISTINCT projection, transactions with rollback, and snapshot
// persistence. It is exposed through a native API (DB.Query / DB.Exec) and
// through a database/sql driver registered under the name "gamdb".
package sqldb

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Type identifies the declared type of a column.
type Type int

// Column types supported by the engine.
const (
	TypeNull Type = iota
	TypeInt
	TypeFloat
	TypeText
	TypeBool
)

// String returns the SQL spelling of the type.
func (t Type) String() string {
	switch t {
	case TypeInt:
		return "INTEGER"
	case TypeFloat:
		return "REAL"
	case TypeText:
		return "TEXT"
	case TypeBool:
		return "BOOLEAN"
	default:
		return "NULL"
	}
}

// Value is a single cell value. The concrete dynamic type is one of
// nil, int64, float64, string, or bool.
type Value any

// TypeOf reports the Type of a runtime value.
func TypeOf(v Value) Type {
	switch v.(type) {
	case nil:
		return TypeNull
	case int64:
		return TypeInt
	case float64:
		return TypeFloat
	case string:
		return TypeText
	case bool:
		return TypeBool
	default:
		return TypeNull
	}
}

// Normalize converts arbitrary numeric Go values (as produced by callers or
// the database/sql layer) into the engine's canonical representations.
func Normalize(v any) (Value, error) {
	switch x := v.(type) {
	case nil, int64, float64, string, bool:
		return x, nil
	case int:
		return int64(x), nil
	case int8:
		return int64(x), nil
	case int16:
		return int64(x), nil
	case int32:
		return int64(x), nil
	case uint:
		return int64(x), nil
	case uint8:
		return int64(x), nil
	case uint16:
		return int64(x), nil
	case uint32:
		return int64(x), nil
	case uint64:
		if x > math.MaxInt64 {
			return nil, fmt.Errorf("sqldb: uint64 value %d overflows INTEGER", x)
		}
		return int64(x), nil
	case float32:
		return float64(x), nil
	case []byte:
		return string(x), nil
	default:
		return nil, fmt.Errorf("sqldb: unsupported value type %T", v)
	}
}

// Coerce converts v to the column type t, or reports an error when the
// conversion would lose meaning. NULL is accepted by every type.
func Coerce(v Value, t Type) (Value, error) {
	if v == nil {
		return nil, nil
	}
	switch t {
	case TypeInt:
		switch x := v.(type) {
		case int64:
			return x, nil
		case float64:
			if x == math.Trunc(x) && !math.IsInf(x, 0) {
				return int64(x), nil
			}
			return nil, fmt.Errorf("sqldb: cannot store non-integral %v in INTEGER column", x)
		case bool:
			if x {
				return int64(1), nil
			}
			return int64(0), nil
		case string:
			n, err := strconv.ParseInt(strings.TrimSpace(x), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("sqldb: cannot convert %q to INTEGER", x)
			}
			return n, nil
		}
	case TypeFloat:
		switch x := v.(type) {
		case float64:
			return x, nil
		case int64:
			return float64(x), nil
		case string:
			f, err := strconv.ParseFloat(strings.TrimSpace(x), 64)
			if err != nil {
				return nil, fmt.Errorf("sqldb: cannot convert %q to REAL", x)
			}
			return f, nil
		}
	case TypeText:
		switch x := v.(type) {
		case string:
			return x, nil
		case int64:
			return strconv.FormatInt(x, 10), nil
		case float64:
			return strconv.FormatFloat(x, 'g', -1, 64), nil
		case bool:
			if x {
				return "true", nil
			}
			return "false", nil
		}
	case TypeBool:
		switch x := v.(type) {
		case bool:
			return x, nil
		case int64:
			return x != 0, nil
		}
	}
	return nil, fmt.Errorf("sqldb: cannot coerce %T to %s", v, t)
}

// Compare orders two values. NULL sorts before every non-NULL value.
// Numeric values of mixed int/float types compare numerically. Comparing
// incomparable types (e.g. TEXT with INTEGER) orders by type tag so that
// sorting remains total and deterministic.
func Compare(a, b Value) int {
	if a == nil && b == nil {
		return 0
	}
	if a == nil {
		return -1
	}
	if b == nil {
		return 1
	}
	switch x := a.(type) {
	case int64:
		switch y := b.(type) {
		case int64:
			switch {
			case x < y:
				return -1
			case x > y:
				return 1
			}
			return 0
		case float64:
			return compareFloat(float64(x), y)
		}
	case float64:
		switch y := b.(type) {
		case int64:
			return compareFloat(x, float64(y))
		case float64:
			return compareFloat(x, y)
		}
	case string:
		if y, ok := b.(string); ok {
			return strings.Compare(x, y)
		}
	case bool:
		if y, ok := b.(bool); ok {
			switch {
			case !x && y:
				return -1
			case x && !y:
				return 1
			}
			return 0
		}
	}
	ta, tb := TypeOf(a), TypeOf(b)
	switch {
	case ta < tb:
		return -1
	case ta > tb:
		return 1
	}
	return 0
}

func compareFloat(x, y float64) int {
	switch {
	case x < y:
		return -1
	case x > y:
		return 1
	}
	return 0
}

// Equal reports SQL equality; NULL never equals anything, including NULL.
// Use Compare for ordering semantics where NULLs group together.
func Equal(a, b Value) bool {
	if a == nil || b == nil {
		return false
	}
	return Compare(a, b) == 0
}

// FormatValue renders a value the way the CLI tools and the test suite
// display result cells.
func FormatValue(v Value) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case string:
		return x
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		if x {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprintf("%v", x)
	}
}

// hashKey converts a value to a comparable map key used by hash indexes
// and hash joins. Integers and integral floats hash identically so that
// numeric equality matches hash-bucket equality.
type hashKey struct {
	kind byte
	num  float64
	str  string
}

func makeHashKey(v Value) hashKey {
	switch x := v.(type) {
	case nil:
		return hashKey{kind: 'n'}
	case int64:
		return hashKey{kind: 'f', num: float64(x)}
	case float64:
		return hashKey{kind: 'f', num: x}
	case string:
		return hashKey{kind: 's', str: x}
	case bool:
		if x {
			return hashKey{kind: 'b', num: 1}
		}
		return hashKey{kind: 'b', num: 0}
	default:
		return hashKey{kind: '?', str: fmt.Sprintf("%v", x)}
	}
}
