package sqldb

// Filter and aggregation kernels over columnar batches (see batch.go for
// the producers). Kernel compilation is two-phase:
//
//   - Plan time (compileBatchShape, called from planSelect after binding):
//     decide coverage and build an immutable kernelNode tree mirroring the
//     WHERE clause, plus the projection/grouping column positions. The
//     shape lives on the shared plan, so it must hold no mutable state.
//   - Execution time (batchShape.bind): evaluate the constant operands
//     (literals and parameters) once into a boundNode tree with private
//     scratch vectors. Binding cannot fail in practice — parameter counts
//     are validated before execution — and any error falls back to the
//     row leg.
//
// Predicates evaluate in SQL three-valued logic over tri-state vectors
// ([]int8: triFalse/triTrue/triNull); a row is selected iff its value is
// exactly triTrue, matching evalWhere. Kleene AND/OR are monotone, so
// evaluating both sides without short-circuiting yields identical results
// to the row engine's evalLogic. Typed fast loops handle the declared
// column type; any value that doesn't match it (snapshot loads bypass
// coercion) flips the column to the generic boxed loop, which uses the
// same Compare calls as the row engine for any type mix.

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// Tri-state predicate values. The zero value is false so fresh vectors
// need no initialization.
const (
	triFalse int8 = 0
	triTrue  int8 = 1
	triNull  int8 = 2
)

func tri(b bool) int8 {
	if b {
		return triTrue
	}
	return triFalse
}

func and3(a, b int8) int8 {
	if a == triFalse || b == triFalse {
		return triFalse
	}
	if a == triNull || b == triNull {
		return triNull
	}
	return triTrue
}

func or3(a, b int8) int8 {
	if a == triTrue || b == triTrue {
		return triTrue
	}
	if a == triNull || b == triNull {
		return triNull
	}
	return triFalse
}

func not3(a int8) int8 {
	switch a {
	case triTrue:
		return triFalse
	case triFalse:
		return triTrue
	}
	return triNull
}

// ---------------------------------------------------------------------------
// Plan-time shape

type kernelOp uint8

const (
	kAnd kernelOp = iota
	kOr
	kNot
	kCmp
	kLike
	kIn
	kBetween
	kIsNull
	kConst
)

// kernelNode is one plan-time filter kernel: an immutable mirror of a
// covered WHERE subtree with column positions resolved and constant
// operands kept as expressions (bound per execution).
type kernelNode struct {
	op       kernelOp
	cmp      BinOp  // kCmp
	col      int    // column position (== env position: single relation)
	typ      Type   // declared column type, selects the typed loop
	constE   Expr   // kCmp comparand / kConst expression
	loE, hiE Expr   // kBetween bounds
	items    []Expr // kIn list
	pattern  string // kLike literal pattern
	negate   bool   // kIn / kBetween / kIsNull
	kids     []*kernelNode
}

// batchShape is the plan's vectorized-coverage record: non-nil means the
// access path is a plain full scan and the WHERE clause (if any) compiles
// to kernels. scanOK additionally requires a pure-column projection;
// aggOK requires pure-column GROUP BY keys and aggregate arguments.
type batchShape struct {
	filter    *kernelNode // nil when there is no WHERE clause
	projCols  []int       // scan leg: projection column positions
	scanOK    bool
	groupCols []int // agg leg: GROUP BY column positions
	aggCols   []int // one per plan aggCall; -1 for COUNT(*)
	aggOK     bool
}

// colPos resolves an expression to a base-relation column position.
func colPos(e Expr) (int, bool) {
	switch x := e.(type) {
	case *ColumnRef:
		if x.ok {
			return x.pos, true
		}
	case *fixedCol:
		return x.pos, true
	}
	return -1, false
}

// compileBatchShape decides kernel coverage for a bound plan. Called from
// planSelect; returns nil when no vectorized leg applies (the execution
// then never even checks thresholds).
func compileBatchShape(p *selectPlan) *batchShape {
	if len(p.rels) != 1 || len(p.joins) != 0 || p.access.kind != accessScan {
		return nil
	}
	t := p.rels[0].table
	sh := &batchShape{}
	if p.st.Where != nil {
		node, ok := compileKernel(p.st.Where, t)
		if !ok {
			return nil
		}
		sh.filter = node
	}
	if p.grouped {
		sh.aggOK = true
		for _, g := range p.st.GroupBy {
			ci, ok := colPos(g)
			if !ok {
				sh.aggOK = false
				break
			}
			sh.groupCols = append(sh.groupCols, ci)
		}
		for _, call := range p.aggCalls {
			if !sh.aggOK {
				break
			}
			switch {
			case call.Star:
				sh.aggCols = append(sh.aggCols, -1)
			case len(call.Args) == 1:
				ci, ok := colPos(call.Args[0])
				if !ok {
					sh.aggOK = false
					break
				}
				sh.aggCols = append(sh.aggCols, ci)
			default:
				sh.aggOK = false
			}
		}
	} else {
		sh.scanOK = true
		for _, e := range p.projExprs {
			ci, ok := colPos(e)
			if !ok {
				sh.scanOK = false
				break
			}
			sh.projCols = append(sh.projCols, ci)
		}
	}
	if !sh.scanOK && !sh.aggOK {
		return nil
	}
	return sh
}

// matchKernelCmp matches col-vs-const comparisons in either operand order
// (like matchColCmp, plus <> which indexes never serve).
func matchKernelCmp(b *Binary) (*ColumnRef, Expr, BinOp, bool) {
	switch b.Op {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
	default:
		return nil, nil, 0, false
	}
	if c, ok := b.L.(*ColumnRef); ok && isConst(b.R) {
		return c, b.R, b.Op, true
	}
	if c, ok := b.R.(*ColumnRef); ok && isConst(b.L) {
		op := b.Op
		if op != OpEq && op != OpNe {
			op = flipCmp(op)
		}
		return c, b.L, op, true
	}
	return nil, nil, 0, false
}

func colType(t *Table, pos int) Type { return t.Schema.Columns[pos].Type }

// compileKernel translates a covered WHERE subtree into kernels; ok=false
// means "not covered" and vetoes the whole vectorized leg.
func compileKernel(e Expr, t *Table) (*kernelNode, bool) {
	switch x := e.(type) {
	case *Binary:
		switch x.Op {
		case OpAnd, OpOr:
			l, ok := compileKernel(x.L, t)
			if !ok {
				return nil, false
			}
			r, ok := compileKernel(x.R, t)
			if !ok {
				return nil, false
			}
			op := kAnd
			if x.Op == OpOr {
				op = kOr
			}
			return &kernelNode{op: op, kids: []*kernelNode{l, r}}, true
		case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
			col, c, cmp, ok := matchKernelCmp(x)
			if !ok || !col.ok {
				return nil, false
			}
			return &kernelNode{op: kCmp, cmp: cmp, col: col.pos, typ: colType(t, col.pos), constE: c}, true
		case OpLike:
			cr, ok := x.L.(*ColumnRef)
			if !ok || !cr.ok {
				return nil, false
			}
			lit, ok := x.R.(*Literal)
			if !ok {
				return nil, false
			}
			pat, ok := lit.Val.(string)
			if !ok {
				return nil, false
			}
			return &kernelNode{op: kLike, col: cr.pos, typ: colType(t, cr.pos), pattern: pat}, true
		}
	case *Unary:
		if x.Op != "NOT" {
			return nil, false
		}
		k, ok := compileKernel(x.X, t)
		if !ok {
			return nil, false
		}
		return &kernelNode{op: kNot, kids: []*kernelNode{k}}, true
	case *IsNull:
		cr, ok := x.X.(*ColumnRef)
		if !ok || !cr.ok {
			return nil, false
		}
		return &kernelNode{op: kIsNull, col: cr.pos, negate: x.Negate}, true
	case *InList:
		cr, ok := x.X.(*ColumnRef)
		if !ok || !cr.ok {
			return nil, false
		}
		for _, it := range x.Items {
			if !isConst(it) {
				return nil, false
			}
		}
		return &kernelNode{op: kIn, col: cr.pos, items: x.Items, negate: x.Negate}, true
	case *Between:
		cr, ok := x.X.(*ColumnRef)
		if !ok || !cr.ok {
			return nil, false
		}
		if !isConst(x.Lo) || !isConst(x.Hi) {
			return nil, false
		}
		return &kernelNode{op: kBetween, col: cr.pos, typ: colType(t, cr.pos), loE: x.Lo, hiE: x.Hi, negate: x.Negate}, true
	case *Literal, *Param:
		return &kernelNode{op: kConst, constE: e}, true
	}
	return nil, false
}

// ---------------------------------------------------------------------------
// Execution-time binding

// boundNode is a kernelNode with its constant operands evaluated. The tree
// is read-only after binding, so exchange workers share it.
type boundNode struct {
	op     kernelOp
	cmp    BinOp
	col    int
	typ    Type
	cv     Value
	lo, hi Value
	items  []Value
	pat    string
	negate bool
	kids   []*boundNode
}

// boundFilter pairs the read-only bound tree with private scratch vectors;
// fork() hands concurrent workers their own scratch over the shared tree.
type boundFilter struct {
	root *boundNode
	out  []int8
	pool [][]int8
}

// bind evaluates the shape's constant operands for one execution. A nil
// result with nil error means there is no filter at all.
func (sh *batchShape) bind(env *RowEnv) (*boundFilter, error) {
	if sh.filter == nil {
		return nil, nil
	}
	root, err := bindKernel(sh.filter, env)
	if err != nil {
		return nil, err
	}
	return &boundFilter{root: root}, nil
}

func bindKernel(k *kernelNode, env *RowEnv) (*boundNode, error) {
	b := &boundNode{op: k.op, cmp: k.cmp, col: k.col, typ: k.typ, pat: k.pattern, negate: k.negate}
	var err error
	if k.constE != nil {
		if b.cv, err = k.constE.Eval(env); err != nil {
			return nil, err
		}
	}
	if k.loE != nil {
		if b.lo, err = k.loE.Eval(env); err != nil {
			return nil, err
		}
	}
	if k.hiE != nil {
		if b.hi, err = k.hiE.Eval(env); err != nil {
			return nil, err
		}
	}
	for _, it := range k.items {
		v, err := it.Eval(env)
		if err != nil {
			return nil, err
		}
		b.items = append(b.items, v)
	}
	for _, kid := range k.kids {
		bk, err := bindKernel(kid, env)
		if err != nil {
			return nil, err
		}
		b.kids = append(b.kids, bk)
	}
	return b, nil
}

func (f *boundFilter) fork() *boundFilter {
	if f == nil {
		return nil
	}
	return &boundFilter{root: f.root}
}

// eval runs the filter over a batch, returning one tri value per row. The
// returned slice is owned by f and valid until the next eval.
func (f *boundFilter) eval(b *colbatch) ([]int8, error) {
	if cap(f.out) < b.n {
		f.out = make([]int8, b.n)
	}
	out := f.out[:b.n]
	if err := f.evalNode(f.root, b, out); err != nil {
		return nil, err
	}
	return out, nil
}

func (f *boundFilter) tmp(n int) []int8 {
	if k := len(f.pool); k > 0 {
		t := f.pool[k-1]
		f.pool = f.pool[:k-1]
		if cap(t) >= n {
			return t[:n]
		}
	}
	return make([]int8, n)
}

func (f *boundFilter) put(t []int8) { f.pool = append(f.pool, t) }

func (f *boundFilter) evalNode(k *boundNode, b *colbatch, out []int8) error {
	n := b.n
	switch k.op {
	case kAnd, kOr:
		if err := f.evalNode(k.kids[0], b, out); err != nil {
			return err
		}
		t := f.tmp(n)
		if err := f.evalNode(k.kids[1], b, t); err != nil {
			f.put(t)
			return err
		}
		if k.op == kAnd {
			for i := 0; i < n; i++ {
				out[i] = and3(out[i], t[i])
			}
		} else {
			for i := 0; i < n; i++ {
				out[i] = or3(out[i], t[i])
			}
		}
		f.put(t)
	case kNot:
		if err := f.evalNode(k.kids[0], b, out); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			out[i] = not3(out[i])
		}
	case kCmp:
		evalCmpKernel(k, b, out)
	case kLike:
		return evalLikeKernel(k, b, out)
	case kIn:
		evalInKernel(k, b, out)
	case kBetween:
		evalBetweenKernel(k, b, out)
	case kIsNull:
		rows := b.rows
		for i := 0; i < n; i++ {
			out[i] = tri((rows[i][k.col] == nil) != k.negate)
		}
	case kConst:
		bv, isNull := toBool(k.cv)
		v := triNull
		if !isNull {
			v = tri(bv)
		}
		for i := range out {
			out[i] = v
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Predicate kernels

// cmpTruthTable maps a three-way comparison result (index cmp+1) to the
// operator's tri value.
func cmpTruthTable(op BinOp) [3]int8 {
	switch op {
	case OpEq:
		return [3]int8{triFalse, triTrue, triFalse}
	case OpNe:
		return [3]int8{triTrue, triFalse, triTrue}
	case OpLt:
		return [3]int8{triTrue, triFalse, triFalse}
	case OpLe:
		return [3]int8{triTrue, triTrue, triFalse}
	case OpGt:
		return [3]int8{triFalse, triFalse, triTrue}
	}
	return [3]int8{triFalse, triTrue, triTrue} // OpGe
}

func evalCmpKernel(k *boundNode, b *colbatch, out []int8) {
	n := b.n
	if k.cv == nil {
		for i := 0; i < n; i++ {
			out[i] = triNull
		}
		return
	}
	tt := cmpTruthTable(k.cmp)
	switch k.typ {
	case TypeInt:
		if v := b.col(k.col, k.typ); v.typed {
			switch c := k.cv.(type) {
			case int64:
				xs, nulls := v.i64, v.nulls
				for i := 0; i < n; i++ {
					if nulls.get(i) {
						out[i] = triNull
						continue
					}
					x, cmp := xs[i], 0
					if x < c {
						cmp = -1
					} else if x > c {
						cmp = 1
					}
					out[i] = tt[cmp+1]
				}
				return
			case float64:
				xs, nulls := v.i64, v.nulls
				for i := 0; i < n; i++ {
					if nulls.get(i) {
						out[i] = triNull
						continue
					}
					out[i] = tt[compareFloat(float64(xs[i]), c)+1]
				}
				return
			}
		}
	case TypeFloat:
		c, numeric := 0.0, false
		switch x := k.cv.(type) {
		case float64:
			c, numeric = x, true
		case int64:
			c, numeric = float64(x), true
		}
		if numeric {
			if v := b.col(k.col, k.typ); v.typed {
				xs, nulls := v.f64, v.nulls
				for i := 0; i < n; i++ {
					if nulls.get(i) {
						out[i] = triNull
						continue
					}
					out[i] = tt[compareFloat(xs[i], c)+1]
				}
				return
			}
		}
	case TypeText:
		if v := b.col(k.col, k.typ); v.typed {
			if c, ok := k.cv.(string); ok {
				xs, nulls := v.str, v.nulls
				for i := 0; i < n; i++ {
					if nulls.get(i) {
						out[i] = triNull
						continue
					}
					x, cmp := xs[i], 0
					if x < c {
						cmp = -1
					} else if x > c {
						cmp = 1
					}
					out[i] = tt[cmp+1]
				}
				return
			}
		}
	}
	// Generic fallback: boxed Compare per row, the row engine's exact
	// semantics for every type combination (including mixed-type rows
	// installed by snapshot loads).
	rows := b.rows
	for i := 0; i < n; i++ {
		x := rows[i][k.col]
		if x == nil {
			out[i] = triNull
			continue
		}
		out[i] = tt[Compare(x, k.cv)+1]
	}
}

func evalLikeKernel(k *boundNode, b *colbatch, out []int8) error {
	n := b.n
	if v := b.col(k.col, TypeText); v.typed {
		xs, nulls := v.str, v.nulls
		for i := 0; i < n; i++ {
			if nulls.get(i) {
				out[i] = triNull
				continue
			}
			out[i] = tri(likeMatch(xs[i], k.pat))
		}
		return nil
	}
	rows := b.rows
	for i := 0; i < n; i++ {
		x := rows[i][k.col]
		if x == nil {
			out[i] = triNull
			continue
		}
		s, ok := x.(string)
		if !ok {
			return fmt.Errorf("sqldb: LIKE requires TEXT operands")
		}
		out[i] = tri(likeMatch(s, k.pat))
	}
	return nil
}

func evalInKernel(k *boundNode, b *colbatch, out []int8) {
	rows := b.rows
	for i := 0; i < b.n; i++ {
		x := rows[i][k.col]
		if x == nil {
			out[i] = triNull
			continue
		}
		out[i] = inListTri(x, k.items, k.negate)
	}
}

// inListTri mirrors InList.Eval over pre-evaluated items: first match wins
// even past NULL items; no match with a NULL item present is NULL.
func inListTri(x Value, items []Value, negate bool) int8 {
	sawNull := false
	for _, it := range items {
		if it == nil {
			sawNull = true
			continue
		}
		if Compare(x, it) == 0 {
			return tri(!negate)
		}
	}
	if sawNull {
		return triNull
	}
	return tri(negate)
}

func evalBetweenKernel(k *boundNode, b *colbatch, out []int8) {
	n := b.n
	if k.lo == nil || k.hi == nil {
		// Any NULL operand makes BETWEEN NULL for every row, matching
		// Between.Eval's nil propagation.
		for i := 0; i < n; i++ {
			out[i] = triNull
		}
		return
	}
	if k.typ == TypeInt {
		if lo, ok := k.lo.(int64); ok {
			if hi, ok := k.hi.(int64); ok {
				if v := b.col(k.col, TypeInt); v.typed {
					xs, nulls := v.i64, v.nulls
					for i := 0; i < n; i++ {
						if nulls.get(i) {
							out[i] = triNull
							continue
						}
						x := xs[i]
						out[i] = tri((x >= lo && x <= hi) != k.negate)
					}
					return
				}
			}
		}
	}
	rows := b.rows
	for i := 0; i < n; i++ {
		x := rows[i][k.col]
		if x == nil {
			out[i] = triNull
			continue
		}
		res := Compare(x, k.lo) >= 0 && Compare(x, k.hi) <= 0
		out[i] = tri(res != k.negate)
	}
}

// ---------------------------------------------------------------------------
// Execution-time leg selection

// boundScan is the per-execution state of a vectorized scan leg.
type boundScan struct {
	shape  *batchShape
	filter *boundFilter
}

// batchScanBinding decides whether this execution takes the vectorized
// scan leg and, if so, binds the filter constants. nil means "row leg".
func (ex *selectExec) batchScanBinding() *boundScan {
	sh := ex.p.batch
	if sh == nil || !sh.scanOK {
		return nil
	}
	if !ex.db.batchEligible(ex.p.rels[0].table) {
		return nil
	}
	bf, err := sh.bind(ex.env)
	if err != nil {
		return nil // cannot happen after checkArgs; fall back to the row leg
	}
	return &boundScan{shape: sh, filter: bf}
}

// boundAgg is the per-execution state of a vectorized aggregation leg.
type boundAgg struct {
	shape  *batchShape
	filter *boundFilter
}

func (ex *selectExec) batchAggBinding() *boundAgg {
	sh := ex.p.batch
	if sh == nil || !sh.aggOK {
		return nil
	}
	if !ex.db.batchEligible(ex.p.rels[0].table) {
		return nil
	}
	bf, err := sh.bind(ex.env)
	if err != nil {
		return nil
	}
	return &boundAgg{shape: sh, filter: bf}
}

// ---------------------------------------------------------------------------
// Vectorized grouped aggregation

// batchGroups is the vectorized grouped-aggregation operator: per
// partition, batches are filtered by the kernels and accumulated through
// typed per-column loops into partial groups, which merge through
// aggAcc.merge under the exact contract of parallelGroups — partition
// order, first-seen output order re-derived from the smallest contributing
// row ID. In lock mode the caller holds db.mu for the whole operation
// (grouped execution is a pipeline breaker), so partitions are read
// without locking; under MVCC each batch is materialized under the
// partition read lock and the kernels run outside it. With a parallelism
// hint above 1 the partitions run on worker goroutines, otherwise
// sequentially — the merged result is identical either way.
func (ex *selectExec) batchGroups(ba *boundAgg) (map[string]*groupState, []string, error) {
	p := ex.p
	t := p.rels[0].table
	parts := t.partList()
	rowsPer := ex.db.batchRows()
	vis := ex.vis
	type partGroups struct {
		groups map[string]*groupState
		order  []string
	}
	results := make([]partGroups, len(parts))
	errs := make([]error, len(parts))
	run := func(i int, part *tablePart, bf *boundFilter) {
		g, ord, err := batchGroupPartition(p, ba.shape, bf, t, part, rowsPer, vis)
		results[i] = partGroups{groups: g, order: ord}
		errs[i] = err
	}
	if ex.db.Parallelism() > 1 && len(parts) > 1 {
		var wg sync.WaitGroup
		for i, part := range parts {
			wg.Add(1)
			go func(i int, part *tablePart) {
				defer wg.Done()
				run(i, part, ba.filter.fork())
			}(i, part)
		}
		wg.Wait()
	} else {
		for i, part := range parts {
			run(i, part, ba.filter)
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	merged := make(map[string]*groupState)
	var keys []string
	for _, pr := range results {
		for _, key := range pr.order {
			g := pr.groups[key]
			m, ok := merged[key]
			if !ok {
				merged[key] = g
				keys = append(keys, key)
				continue
			}
			if g.firstID < m.firstID {
				m.firstID = g.firstID
				m.repRow = g.repRow
				m.keyVals = g.keyVals
			}
			for j := range m.accs {
				m.accs[j].merge(&g.accs[j])
			}
		}
	}
	sort.Slice(keys, func(a, b int) bool { return merged[keys[a]].firstID < merged[keys[b]].firstID })
	return merged, keys, nil
}

// batchGroupPartition aggregates one partition in columnar batches.
func batchGroupPartition(p *selectPlan, sh *batchShape, bf *boundFilter, t *Table, part *tablePart, rowsPer int, vis visibility) (map[string]*groupState, []string, error) {
	b := newColbatch(len(t.Schema.Columns), rowsPer)
	groups := make(map[string]*groupState)
	var order []string
	sel := make([]int32, 0, rowsPer)
	gptr := make([]*groupState, 0, rowsPer)
	var keyBuf []byte
	view := part.ids.load()
	pos := 0
	for pos < len(view) {
		b.reset()
		if vis.lockPart {
			part.mu.RLock()
		}
		for pos < len(view) && b.n < rowsPer {
			id := view[pos]
			pos++
			row := part.rows[id].resolve(vis)
			if row == nil {
				continue // tombstone, or a version invisible at this snapshot
			}
			b.add(id, row)
		}
		if vis.lockPart {
			part.mu.RUnlock()
		}
		if b.n == 0 {
			continue
		}
		sel = sel[:0]
		if bf != nil {
			tv, err := bf.eval(b)
			if err != nil {
				return nil, nil, err
			}
			for i := 0; i < b.n; i++ {
				if tv[i] == triTrue {
					sel = append(sel, int32(i))
				}
			}
		} else {
			for i := 0; i < b.n; i++ {
				sel = append(sel, int32(i))
			}
		}
		if len(sel) == 0 {
			continue
		}
		// Resolve each selected row to its group. The key encoding
		// reproduces the row engine's makeHashKey+Fprintf bytes exactly
		// (numerics fold to their float form) without fmt overhead, so
		// group identity matches the row leg byte-for-byte. Map lookup by
		// string(keyBuf) does not allocate; the key string is only
		// materialized once per new group.
		gptr = gptr[:0]
		for _, si := range sel {
			row := b.rows[si]
			keyBuf = keyBuf[:0]
			for _, gc := range sh.groupCols {
				keyBuf = appendGroupKey(keyBuf, row[gc])
			}
			gs, ok := groups[string(keyBuf)]
			if !ok {
				gs = &groupState{
					accs:    make([]aggAcc, len(p.aggCalls)),
					firstID: b.ids[si],
					repRow:  row, // immutable once published; width == env width
				}
				for j, call := range p.aggCalls {
					gs.accs[j] = newAggAcc(call)
				}
				gs.keyVals = make([]Value, len(sh.groupCols))
				for j, gc := range sh.groupCols {
					gs.keyVals[j] = row[gc]
				}
				key := string(keyBuf)
				groups[key] = gs
				order = append(order, key)
			}
			gptr = append(gptr, gs)
		}
		for j, call := range p.aggCalls {
			ac := sh.aggCols[j]
			if ac < 0 {
				for i := range sel {
					gptr[i].accs[j].count++ // COUNT(*)
				}
				continue
			}
			if err := accumulateCol(call, j, ac, colType(t, ac), b, sel, gptr); err != nil {
				return nil, nil, err
			}
		}
	}
	return groups, order, nil
}

// accumulateCol folds one aggregate's column over the selected rows of a
// batch. SUM/AVG over INT and FLOAT columns run typed loops; everything
// else (MIN/MAX, COUNT(col), mixed-type columns) goes through the boxed
// values, sharing aggAcc.addValue with the row engine so error behavior
// (SUM over non-numeric) and comparison semantics are identical.
func accumulateCol(call *FuncCall, j, col int, typ Type, b *colbatch, sel []int32, gptr []*groupState) error {
	switch call.Name {
	case "COUNT":
		rows := b.rows
		for i, si := range sel {
			if rows[si][col] == nil {
				continue // aggregates skip NULLs
			}
			gptr[i].accs[j].count++
		}
	case "SUM", "AVG":
		switch typ {
		case TypeInt:
			if v := b.col(col, TypeInt); v.typed {
				xs, nulls := v.i64, v.nulls
				for i, si := range sel {
					if nulls.get(int(si)) {
						continue
					}
					a := &gptr[i].accs[j]
					x := xs[si]
					a.count++
					a.sumI += x
					a.kahanAdd(float64(x))
				}
				return nil
			}
		case TypeFloat:
			if v := b.col(col, TypeFloat); v.typed {
				xs, nulls := v.f64, v.nulls
				for i, si := range sel {
					if nulls.get(int(si)) {
						continue
					}
					a := &gptr[i].accs[j]
					a.count++
					a.isFloat = true
					a.kahanAdd(xs[si])
				}
				return nil
			}
		}
		rows := b.rows
		for i, si := range sel {
			x := rows[si][col]
			if x == nil {
				continue
			}
			if err := gptr[i].accs[j].addValue(call.Name, x); err != nil {
				return err
			}
		}
	default: // MIN, MAX
		rows := b.rows
		for i, si := range sel {
			x := rows[si][col]
			if x == nil {
				continue
			}
			if err := gptr[i].accs[j].addValue(call.Name, x); err != nil {
				return err
			}
		}
	}
	return nil
}

// appendGroupKey renders one group-key value exactly as the row engine's
// addGroupRow does — fmt.Fprintf(kb, "%c|%v|%s;", ...) over makeHashKey —
// byte for byte, so batch and row legs agree on group identity including
// the numeric folding (int64 1 and float64 1.0 share a group).
func appendGroupKey(buf []byte, v Value) []byte {
	switch x := v.(type) {
	case nil:
		buf = append(buf, 'n', '|', '0', '|')
	case int64:
		buf = append(buf, 'f', '|')
		buf = strconv.AppendFloat(buf, float64(x), 'g', -1, 64)
		buf = append(buf, '|')
	case float64:
		buf = append(buf, 'f', '|')
		buf = strconv.AppendFloat(buf, x, 'g', -1, 64)
		buf = append(buf, '|')
	case string:
		buf = append(buf, 's', '|', '0', '|')
		buf = append(buf, x...)
	case bool:
		if x {
			buf = append(buf, 'b', '|', '1', '|')
		} else {
			buf = append(buf, 'b', '|', '0', '|')
		}
	default:
		hk := makeHashKey(x)
		buf = append(buf, byte(hk.kind), '|', '0', '|')
		buf = append(buf, hk.str...)
	}
	return append(buf, ';')
}
