package sqldb

// Engine micro-benchmarks: the substrate costs under every GenMapper
// experiment (point lookups, scans, hash joins, bulk inserts).

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"testing"
)

func benchDB(b *testing.B, rows int) *DB {
	b.Helper()
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, v TEXT)"); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Exec("CREATE INDEX idx_k ON t (k)"); err != nil {
		b.Fatal(err)
	}
	const chunk = 200
	for start := 0; start < rows; start += chunk {
		end := start + chunk
		if end > rows {
			end = rows
		}
		sql := "INSERT INTO t VALUES "
		args := make([]any, 0, (end-start)*3)
		for i := start; i < end; i++ {
			if i > start {
				sql += ", "
			}
			sql += "(?, ?, ?)"
			args = append(args, i, i%100, fmt.Sprintf("val%d", i))
		}
		if _, err := db.Exec(sql, args...); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

func BenchmarkInsertSingleRow(b *testing.B) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY AUTOINCREMENT, v TEXT)"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec("INSERT INTO t (v) VALUES (?)", "value"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertBatch200(b *testing.B) {
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY AUTOINCREMENT, v TEXT)"); err != nil {
		b.Fatal(err)
	}
	sql := "INSERT INTO t (v) VALUES "
	args := make([]any, 200)
	for i := 0; i < 200; i++ {
		if i > 0 {
			sql += ", "
		}
		sql += "(?)"
		args[i] = fmt.Sprintf("v%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(sql, args...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPointLookupPK(b *testing.B) {
	db := benchDB(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Query("SELECT v FROM t WHERE id = ?", i%10000)
		if err != nil {
			b.Fatal(err)
		}
		if rs.Len() != 1 {
			b.Fatal("missing row")
		}
	}
}

func BenchmarkSecondaryIndexLookup(b *testing.B) {
	db := benchDB(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Query("SELECT COUNT(*) FROM t WHERE k = ?", i%100)
		if err != nil {
			b.Fatal(err)
		}
		if rs.Rows[0][0] != int64(100) {
			b.Fatalf("count = %v", rs.Rows[0][0])
		}
	}
}

func BenchmarkFullScanFilter(b *testing.B) {
	db := benchDB(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query("SELECT COUNT(*) FROM t WHERE v LIKE 'val1%'"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashJoin(b *testing.B) {
	db := benchDB(b, 10000)
	if _, err := db.Exec("CREATE TABLE dim (k INTEGER, name TEXT)"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := db.Exec("INSERT INTO dim VALUES (?, ?)", i, fmt.Sprintf("dim%d", i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Query("SELECT COUNT(*) FROM t JOIN dim ON t.k = dim.k")
		if err != nil {
			b.Fatal(err)
		}
		if rs.Rows[0][0] != int64(10000) {
			b.Fatalf("join count = %v", rs.Rows[0][0])
		}
	}
}

func BenchmarkGroupBy(b *testing.B) {
	db := benchDB(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Query("SELECT k, COUNT(*) FROM t GROUP BY k")
		if err != nil {
			b.Fatal(err)
		}
		if rs.Len() != 100 {
			b.Fatalf("groups = %d", rs.Len())
		}
	}
}

func BenchmarkOrderByLimit(b *testing.B) {
	db := benchDB(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query("SELECT id FROM t ORDER BY v DESC LIMIT 10"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseOnly(b *testing.B) {
	const sql = `SELECT g.symbol, a.term FROM genes g
		LEFT JOIN annos a ON g.id = a.gene_id
		WHERE g.symbol LIKE 'A%' AND a.term IN ('x', 'y')
		GROUP BY g.symbol HAVING COUNT(*) > 1 ORDER BY g.symbol LIMIT 10`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Statement cache / prepared statements: parse-per-call vs parse-once.

// cacheBenchSQL has the shape of a hot repository statement: long enough
// that lexing+parsing dominate a cheap indexed execution.
const cacheBenchSQL = `SELECT id, k, v FROM t
	WHERE id = ? AND k >= 0 AND k <= 100 AND v LIKE 'val%' LIMIT 1`

func BenchmarkQueryParsePerCall(b *testing.B) {
	db := benchDB(b, 10000)
	db.SetStmtCacheCapacity(0) // seed behavior: every call re-lexes and re-parses
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Query(cacheBenchSQL, i%10000)
		if err != nil {
			b.Fatal(err)
		}
		if rs.Len() != 1 {
			b.Fatal("missing row")
		}
	}
}

func BenchmarkQueryStmtCache(b *testing.B) {
	db := benchDB(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Query(cacheBenchSQL, i%10000)
		if err != nil {
			b.Fatal(err)
		}
		if rs.Len() != 1 {
			b.Fatal("missing row")
		}
	}
}

func BenchmarkPreparedStmtQuery(b *testing.B) {
	db := benchDB(b, 10000)
	stmt, err := db.Prepare(cacheBenchSQL)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := stmt.Query(i % 10000)
		if err != nil {
			b.Fatal(err)
		}
		if rs.Len() != 1 {
			b.Fatal("missing row")
		}
	}
}

// ---------------------------------------------------------------------------
// Index-aware planning: range predicates, ordered limits, join strategies.

// rangeBenchDB builds rows with a B-tree-indexed weight column; the range
// predicate below selects ~100 of 10000 rows.
func rangeBenchDB(b *testing.B) *DB {
	b.Helper()
	db := benchDB(b, 10000)
	if _, err := db.Exec("CREATE INDEX idx_w ON t (k) USING BTREE"); err != nil {
		b.Fatal(err)
	}
	return db
}

const rangeBenchSQL = "SELECT COUNT(*) FROM t WHERE k > 49 AND k <= 50"

func BenchmarkRangeQueryIndexed(b *testing.B) {
	db := rangeBenchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Query(rangeBenchSQL)
		if err != nil {
			b.Fatal(err)
		}
		if rs.Rows[0][0] != int64(100) {
			b.Fatalf("count = %v", rs.Rows[0][0])
		}
	}
}

func BenchmarkRangeQueryFullScan(b *testing.B) {
	db := rangeBenchDB(b)
	db.SetIndexAccess(false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Query(rangeBenchSQL)
		if err != nil {
			b.Fatal(err)
		}
		if rs.Rows[0][0] != int64(100) {
			b.Fatalf("count = %v", rs.Rows[0][0])
		}
	}
}

const orderBenchSQL = "SELECT id, k FROM t ORDER BY k DESC LIMIT 10"

func BenchmarkOrderByLimitIndexed(b *testing.B) {
	db := rangeBenchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Query(orderBenchSQL)
		if err != nil {
			b.Fatal(err)
		}
		if rs.Len() != 10 {
			b.Fatalf("rows = %d", rs.Len())
		}
	}
}

func BenchmarkOrderByLimitFullSort(b *testing.B) {
	db := rangeBenchDB(b)
	db.SetIndexAccess(false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Query(orderBenchSQL)
		if err != nil {
			b.Fatal(err)
		}
		if rs.Len() != 10 {
			b.Fatalf("rows = %d", rs.Len())
		}
	}
}

// joinBenchDB pairs the fact table with an indexed dimension table.
func joinBenchDB(b *testing.B) *DB {
	b.Helper()
	db := benchDB(b, 10000)
	if _, err := db.Exec("CREATE TABLE dim (k INTEGER, name TEXT)"); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := db.Exec("INSERT INTO dim VALUES (?, ?)", i, fmt.Sprintf("dim%d", i)); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := db.Exec("CREATE INDEX idx_dim_k ON dim (k)"); err != nil {
		b.Fatal(err)
	}
	return db
}

// The selective join: one dimension row joins its 100 fact rows. The seed
// strategy rebuilt a hash table over all 10000 fact rows per query; the
// index-nested-loop strategy probes the fact table's existing index instead.
const joinBenchSQL = "SELECT COUNT(*) FROM dim JOIN t ON dim.k = t.k WHERE dim.k = ?"

func BenchmarkJoinIndexLoop(b *testing.B) {
	db := joinBenchDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Query(joinBenchSQL, i%100)
		if err != nil {
			b.Fatal(err)
		}
		if rs.Rows[0][0] != int64(100) {
			b.Fatalf("join count = %v", rs.Rows[0][0])
		}
	}
}

func BenchmarkJoinHashRebuild(b *testing.B) {
	db := joinBenchDB(b)
	db.SetIndexAccess(false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Query(joinBenchSQL, i%100)
		if err != nil {
			b.Fatal(err)
		}
		if rs.Rows[0][0] != int64(100) {
			b.Fatalf("join count = %v", rs.Rows[0][0])
		}
	}
}

func BenchmarkUpdateIndexed(b *testing.B) {
	db := benchDB(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec("UPDATE t SET v = ? WHERE id = ?", "updated", i%10000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshotSaveLoad(b *testing.B) {
	db := benchDB(b, 10000)
	dir := b.TempDir()
	path := dir + "/bench.snap"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Save(path); err != nil {
			b.Fatal(err)
		}
		if _, err := Load(path); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// PR 3: streaming cursor execution vs the materialize-everything seed path.
// The export shape of the acceptance benchmark: a 100k-row result serialized
// to a writer. The materialized path builds the full [][]Value ResultSet
// first (the seed engine's only mode); the cursor path streams rows through
// one reused buffer, removing the O(rows) result allocations entirely.

var exportBenchDB *DB

func benchExportDB(b *testing.B) *DB {
	b.Helper()
	if exportBenchDB != nil {
		return exportBenchDB
	}
	db := NewDB()
	if _, err := db.Exec("CREATE TABLE exp (id INTEGER PRIMARY KEY, acc TEXT, txt TEXT)"); err != nil {
		b.Fatal(err)
	}
	const rows, chunk = 100000, 200
	var sb strings.Builder
	for start := 0; start < rows; start += chunk {
		sb.Reset()
		sb.WriteString("INSERT INTO exp VALUES ")
		args := make([]any, 0, chunk*3)
		for i := start; i < start+chunk; i++ {
			if i > start {
				sb.WriteString(", ")
			}
			sb.WriteString("(?, ?, ?)")
			args = append(args, i, fmt.Sprintf("ACC:%07d", i), fmt.Sprintf("object %d description", i))
		}
		if _, err := db.Exec(sb.String(), args...); err != nil {
			b.Fatal(err)
		}
	}
	exportBenchDB = db
	return db
}

// writeRowTSV serializes one row the way an export renders it; both bench
// variants share it so the only difference is materialized vs streamed row
// production.
func writeRowTSV(w *bufio.Writer, row []Value) {
	for i, v := range row {
		if i > 0 {
			w.WriteByte('\t')
		}
		w.WriteString(FormatValue(v))
	}
	w.WriteByte('\n')
}

const exportBenchQuery = "SELECT id, acc, txt FROM exp"

func BenchmarkExport100kMaterialized(b *testing.B) {
	db := benchExportDB(b)
	w := bufio.NewWriterSize(io.Discard, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Query(exportBenchQuery)
		if err != nil {
			b.Fatal(err)
		}
		if rs.Len() != 100000 {
			b.Fatalf("rows = %d", rs.Len())
		}
		for _, row := range rs.Rows {
			writeRowTSV(w, row)
		}
		w.Flush()
	}
}

func BenchmarkExport100kCursorStream(b *testing.B) {
	db := benchExportDB(b)
	w := bufio.NewWriterSize(io.Discard, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur, err := db.QueryCursor(exportBenchQuery)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			row, err := cur.Next()
			if err != nil {
				b.Fatal(err)
			}
			if row == nil {
				break
			}
			writeRowTSV(w, row)
			n++
		}
		cur.Close()
		if n != 100000 {
			b.Fatalf("rows = %d", n)
		}
		w.Flush()
	}
}

// The LIMIT-prefix shape: a consumer that needs only the first rows of a
// big result. The cursor pays for what it reads, not for the table size.
func BenchmarkPrefix10Of100kMaterialized(b *testing.B) {
	db := benchExportDB(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Query(exportBenchQuery + " LIMIT 10")
		if err != nil || rs.Len() != 10 {
			b.Fatalf("%v / %d rows", err, rs.Len())
		}
	}
}

func BenchmarkPrefix10Of100kCursorStream(b *testing.B) {
	db := benchExportDB(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur, err := db.QueryCursor(exportBenchQuery)
		if err != nil {
			b.Fatal(err)
		}
		for n := 0; n < 10; n++ {
			if _, err := cur.Next(); err != nil {
				b.Fatal(err)
			}
		}
		cur.Close()
	}
}

// ---------------------------------------------------------------------------
// Partition-parallel execution (PR 5). Serial baselines and parallel runs
// over the same 100k-row table at varying partition counts. On multi-core
// hardware the parallel variants scale with partitions; the CI bench gate
// (cmd/gmbenchdiff) watches the allocation counts, which are
// machine-independent.

// benchPartitionedDB builds a 100k-row table sharded into parts partitions
// with the parallel paths forced on (parts <= 1 forces serial execution).
func benchPartitionedDB(b *testing.B, parts int) *DB {
	b.Helper()
	db := NewDB()
	if parts > 1 {
		db.SetPartitions(parts)
		db.SetParallelism(parts)
		db.SetParallelMinRows(1)
	} else {
		db.SetParallelism(1)
	}
	// These benchmarks pin the row-parallel operators; the vectorized leg
	// has its own Vec* set below.
	db.SetBatchExecution(false)
	if _, err := db.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, v TEXT)"); err != nil {
		b.Fatal(err)
	}
	const chunk = 200
	for start := 0; start < 100000; start += chunk {
		sql := "INSERT INTO t VALUES "
		args := make([]any, 0, chunk*3)
		for i := start; i < start+chunk; i++ {
			if i > start {
				sql += ", "
			}
			sql += "(?, ?, ?)"
			args = append(args, i, i%100, fmt.Sprintf("val%d", i))
		}
		if _, err := db.Exec(sql, args...); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

func benchParallelScan(b *testing.B, parts int) {
	db := benchPartitionedDB(b, parts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		err := db.QueryEach("SELECT id, v FROM t WHERE v <> 'nope'", func(row []Value) error {
			n++
			return nil
		})
		if err != nil || n != 100000 {
			b.Fatalf("%v / %d rows", err, n)
		}
	}
}

func BenchmarkParScanSerial(b *testing.B) { benchParallelScan(b, 1) }
func BenchmarkParScanParts2(b *testing.B) { benchParallelScan(b, 2) }
func BenchmarkParScanParts4(b *testing.B) { benchParallelScan(b, 4) }
func BenchmarkParScanParts8(b *testing.B) { benchParallelScan(b, 8) }

func benchParallelAgg(b *testing.B, parts int) {
	db := benchPartitionedDB(b, parts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Query("SELECT k, COUNT(*), SUM(id), MIN(v) FROM t GROUP BY k")
		if err != nil || rs.Len() != 100 {
			b.Fatalf("%v / %d groups", err, rs.Len())
		}
	}
}

func BenchmarkParAggSerial(b *testing.B) { benchParallelAgg(b, 1) }
func BenchmarkParAggParts2(b *testing.B) { benchParallelAgg(b, 2) }
func BenchmarkParAggParts4(b *testing.B) { benchParallelAgg(b, 4) }
func BenchmarkParAggParts8(b *testing.B) { benchParallelAgg(b, 8) }

func benchParallelWriteCollect(b *testing.B, parts int) {
	db := benchPartitionedDB(b, parts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Matches no rows: measures pure candidate collection, not the
		// update application (which would grow the table state per iter).
		res, err := db.Exec("UPDATE t SET v = 'x' WHERE v = 'absent'")
		if err != nil || res.RowsAffected != 0 {
			b.Fatalf("%v / %d affected", err, res.RowsAffected)
		}
	}
}

func BenchmarkParWriteCollectSerial(b *testing.B) { benchParallelWriteCollect(b, 1) }
func BenchmarkParWriteCollectParts4(b *testing.B) { benchParallelWriteCollect(b, 4) }

// ---------------------------------------------------------------------------
// Vectorized columnar execution (PR 7). Each shape runs as a pair — row
// engine vs batch kernels — over the same partitioned 100k-row table, so
// the ns/op ratio is the vectorization win at a fixed partition count.
// (The row legs of scan and aggregate are the ParScan*/ParAgg* benchmarks
// above.)

// benchVectorDB is benchPartitionedDB with the vectorized leg switched as
// requested instead of pinned off.
func benchVectorDB(b *testing.B, parts int, batch bool) *DB {
	db := benchPartitionedDB(b, parts)
	db.SetBatchExecution(batch)
	return db
}

func benchVecScan(b *testing.B, parts int, batch bool) {
	db := benchVectorDB(b, parts, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		err := db.QueryEach("SELECT id, v FROM t WHERE v <> 'nope'", func(row []Value) error {
			n++
			return nil
		})
		if err != nil || n != 100000 {
			b.Fatalf("%v / %d rows", err, n)
		}
	}
}

func BenchmarkVecScanSerial(b *testing.B) { benchVecScan(b, 1, true) }
func BenchmarkVecScanParts4(b *testing.B) { benchVecScan(b, 4, true) }

func benchVecFilter(b *testing.B, parts int, batch bool) {
	db := benchVectorDB(b, parts, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		err := db.QueryEach("SELECT id FROM t WHERE k < 10", func(row []Value) error {
			n++
			return nil
		})
		if err != nil || n != 10000 {
			b.Fatalf("%v / %d rows", err, n)
		}
	}
}

func BenchmarkVecFilterRowSerial(b *testing.B) { benchVecFilter(b, 1, false) }
func BenchmarkVecFilterSerial(b *testing.B)    { benchVecFilter(b, 1, true) }
func BenchmarkVecFilterRowParts4(b *testing.B) { benchVecFilter(b, 4, false) }
func BenchmarkVecFilterParts4(b *testing.B)    { benchVecFilter(b, 4, true) }

func benchVecAgg(b *testing.B, parts int, batch bool) {
	db := benchVectorDB(b, parts, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Query("SELECT k, COUNT(*), SUM(id), MIN(v) FROM t GROUP BY k")
		if err != nil || rs.Len() != 100 {
			b.Fatalf("%v / %d groups", err, rs.Len())
		}
	}
}

func BenchmarkVecAggSerial(b *testing.B) { benchVecAgg(b, 1, true) }
func BenchmarkVecAggParts4(b *testing.B) { benchVecAgg(b, 4, true) }

// benchVecExport measures the view/export streaming shape: every column
// of every row delivered through QueryEach. The sink is a touch of each
// value rather than a TSV writer, so the pair isolates the engine's
// streaming cost — the formatter costs the same on both legs.
func benchVecExport(b *testing.B, parts int, batch bool) {
	db := benchVectorDB(b, parts, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, bytes := 0, 0
		err := db.QueryEach("SELECT id, k, v FROM t", func(row []Value) error {
			bytes += len(row[2].(string))
			n++
			return nil
		})
		if err != nil || n != 100000 || bytes == 0 {
			b.Fatalf("%v / %d rows", err, n)
		}
	}
}

func BenchmarkVecExportRowSerial(b *testing.B) { benchVecExport(b, 1, false) }
func BenchmarkVecExportSerial(b *testing.B)    { benchVecExport(b, 1, true) }
func BenchmarkVecExportRowParts4(b *testing.B) { benchVecExport(b, 4, false) }
func BenchmarkVecExportParts4(b *testing.B)    { benchVecExport(b, 4, true) }

// ---------------------------------------------------------------------------
// CREATE INDEX: serial insert-per-row build vs concurrent per-partition
// sorted runs merged into the B-tree (PR 7 carry-over). Same partitioned
// storage for both, so the delta is the build strategy alone.

func benchCreateIndex(b *testing.B, par int) {
	db := benchPartitionedDB(b, 4)
	db.SetParallelism(par)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec("CREATE INDEX idx_bench_v ON t (v) USING BTREE"); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if _, err := db.Exec("DROP INDEX idx_bench_v"); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

func BenchmarkCreateIndexSerial(b *testing.B)   { benchCreateIndex(b, 1) }
func BenchmarkCreateIndexParallel(b *testing.B) { benchCreateIndex(b, 4) }
