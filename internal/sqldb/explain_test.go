package sqldb

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updatePlans = flag.Bool("update-plans", false, "rewrite testdata/plans goldens from current planner output")

func planFixture(t *testing.T) *DB {
	t.Helper()
	db, err := NewPlanFixtureDB()
	if err != nil {
		t.Fatalf("fixture: %v", err)
	}
	return db
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "plans", name+".json")
}

// TestPlanGoldens asserts that EXPLAIN (FORMAT JSON) is byte-identical to
// the committed goldens for every representative case. Run with
// -update-plans after an intentional planner change.
func TestPlanGoldens(t *testing.T) {
	db := planFixture(t)
	for _, tc := range PlanGoldenCases {
		got, err := db.Explain(tc.SQL, "json")
		if err != nil {
			t.Fatalf("%s: Explain: %v", tc.Name, err)
		}
		got += "\n"
		if *updatePlans {
			if err := os.MkdirAll(filepath.Join("testdata", "plans"), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(goldenPath(tc.Name), []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(goldenPath(tc.Name))
		if err != nil {
			t.Fatalf("%s: missing golden (run go test -run TestPlanGoldens -update-plans): %v", tc.Name, err)
		}
		if got != string(want) {
			t.Errorf("%s: plan JSON drifted from golden\n--- got ---\n%s\n--- want ---\n%s", tc.Name, got, want)
		}
	}
}

// TestPlanGoldenStability re-runs every golden case at partition counts
// 1/2/4/8 with MVCC off and on: the plan document must not change with
// the storage layout or the concurrency mode.
func TestPlanGoldenStability(t *testing.T) {
	db := planFixture(t)
	for _, parts := range []int{1, 2, 4, 8} {
		db.SetPartitions(parts)
		for _, mvcc := range []bool{false, true} {
			db.SetMVCC(mvcc)
			for _, tc := range PlanGoldenCases {
				got, err := db.Explain(tc.SQL, "json")
				if err != nil {
					t.Fatalf("parts=%d mvcc=%v %s: %v", parts, mvcc, tc.Name, err)
				}
				want, err := os.ReadFile(goldenPath(tc.Name))
				if err != nil {
					t.Fatalf("%s: %v", tc.Name, err)
				}
				if got+"\n" != string(want) {
					t.Errorf("parts=%d mvcc=%v %s: plan JSON not byte-stable\n--- got ---\n%s", parts, mvcc, tc.Name, got)
				}
			}
		}
	}
}

// TestPlanGateCatchesRegression is the synthetic planner regression from
// the acceptance criteria: forcing index access off flips an indexed point
// lookup back to a full scan, and the golden comparison must go red.
func TestPlanGateCatchesRegression(t *testing.T) {
	db := planFixture(t)
	db.SetIndexAccess(false)
	got, err := db.Explain("SELECT symbol FROM genes WHERE id = 42", "json")
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(goldenPath("point_lookup"))
	if err != nil {
		t.Fatal(err)
	}
	if got+"\n" == string(want) {
		t.Fatal("disabling index access did not change the plan document; the plan gate cannot catch planner regressions")
	}
	var doc PlanDoc
	if err := json.Unmarshal([]byte(got), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Access == nil || doc.Access.Path != "full-scan" {
		t.Fatalf("expected regressed plan to be a full scan, got %+v", doc.Access)
	}
}

// TestExplainDocumentFields spot-checks the semantic content of a few
// documents rather than their bytes.
func TestExplainDocumentFields(t *testing.T) {
	db := planFixture(t)
	get := func(sql string) PlanDoc {
		t.Helper()
		s, err := db.Explain(sql, "json")
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		var doc PlanDoc
		if err := json.Unmarshal([]byte(s), &doc); err != nil {
			t.Fatal(err)
		}
		return doc
	}

	doc := get("SELECT symbol FROM genes WHERE id = 42")
	if doc.PlanVersion != PlanVersion {
		t.Fatalf("plan_version = %d, want %d", doc.PlanVersion, PlanVersion)
	}
	if doc.Access.Path != "index-eq" || doc.Access.Key != "42" {
		t.Fatalf("point lookup access = %+v", doc.Access)
	}
	if doc.Cardinality == nil || doc.Cardinality.Estimate != 100 || !doc.Cardinality.Exact {
		t.Fatalf("cardinality = %+v", doc.Cardinality)
	}

	doc = get("SELECT symbol FROM genes WHERE id = ?")
	if doc.Access.Key != "?" {
		t.Fatalf("param key rendered %q, want ?", doc.Access.Key)
	}

	doc = get("SELECT symbol, tss FROM genes ORDER BY tss LIMIT 10")
	if !doc.OrderByIdx || !doc.EarlyExit || doc.Limit != "10" {
		t.Fatalf("ordered-limit doc = order_by_satisfied=%v early_exit=%v limit=%q",
			doc.OrderByIdx, doc.EarlyExit, doc.Limit)
	}
	if doc.Access.Path != "index-range" || !doc.Access.Ordered {
		t.Fatalf("ordered-limit access = %+v", doc.Access)
	}

	doc = get("SELECT g.symbol, a.term FROM annos a RIGHT JOIN genes g ON a.gene_id = g.id")
	if len(doc.Joins) != 1 {
		t.Fatalf("joins = %+v", doc.Joins)
	}
	j := doc.Joins[0]
	if j.Kind != "RIGHT" || !j.Swapped || j.Strategy != "index-loop" || j.Table != "annos" {
		t.Fatalf("right join doc = %+v", j)
	}
	if doc.Access.Table != "genes" {
		t.Fatalf("right join drives from %q, want genes", doc.Access.Table)
	}

	doc = get("SELECT g.symbol, a.term FROM genes g CROSS JOIN annos a")
	if doc.Joins[0].Kind != "CROSS" || doc.Joins[0].On != "" || doc.Joins[0].Strategy != "nested-loop" {
		t.Fatalf("cross join doc = %+v", doc.Joins[0])
	}

	doc = get("SELECT n, val FROM big WHERE val > 100.0")
	if doc.Leg != "vectorized" {
		t.Fatalf("big scan leg = %q, want vectorized", doc.Leg)
	}
	doc = get("SELECT n + grp FROM big WHERE val > 100.0")
	if doc.Leg != "parallel" {
		t.Fatalf("expression-projection leg = %q, want parallel", doc.Leg)
	}
	doc = get("SELECT grp, COUNT(*), SUM(val) FROM big GROUP BY grp")
	if doc.Leg != "vectorized" || doc.Aggregate == nil || doc.Aggregate.Mode != "vectorized" {
		t.Fatalf("grouped big doc leg=%q agg=%+v", doc.Leg, doc.Aggregate)
	}

	doc = get("UPDATE genes SET symbol = 'X' WHERE id = 7")
	if doc.Statement != "UPDATE" || doc.Table != "genes" || doc.Access.Path != "index-eq" {
		t.Fatalf("update doc = %+v", doc)
	}
	if len(doc.Sets) != 1 || doc.Sets[0] != "symbol = 'X'" {
		t.Fatalf("update sets = %+v", doc.Sets)
	}

	doc = get("INSERT INTO annos (gene_id, term) VALUES (1, 'GO:1'), (2, 'GO:2')")
	if doc.Statement != "INSERT" || doc.Rows != 2 || doc.Table != "annos" {
		t.Fatalf("insert doc = %+v", doc)
	}
}

// TestExplainSurfaces exercises the non-Query entry points and the error
// paths of the EXPLAIN statement itself.
func TestExplainSurfaces(t *testing.T) {
	db := planFixture(t)

	// Default format is text; rows render one line each.
	rs, err := db.Query("EXPLAIN SELECT symbol FROM genes WHERE id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Columns) != 1 || rs.Columns[0] != "plan" {
		t.Fatalf("columns = %v", rs.Columns)
	}
	if first, _ := rs.Rows[0][0].(string); first != "SELECT" {
		t.Fatalf("text header = %q", first)
	}

	// FORMAT TEXT is accepted explicitly; FORMAT JSON starts a JSON object.
	rs, err = db.Query("EXPLAIN (FORMAT TEXT) SELECT symbol FROM genes")
	if err != nil {
		t.Fatal(err)
	}
	rs, err = db.Query("EXPLAIN (FORMAT JSON) SELECT symbol FROM genes")
	if err != nil {
		t.Fatal(err)
	}
	if first, _ := rs.Rows[0][0].(string); first != "{" {
		t.Fatalf("json first line = %q", first)
	}

	// QueryEach and QueryCursor stream the same rendering.
	var lines []string
	err = db.QueryEach("EXPLAIN (FORMAT JSON) SELECT symbol FROM genes", func(row []Value) error {
		lines = append(lines, row[0].(string))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(rs.Rows) {
		t.Fatalf("QueryEach produced %d lines, Query produced %d", len(lines), len(rs.Rows))
	}
	cur, err := db.QueryCursor("EXPLAIN (FORMAT JSON) SELECT symbol FROM genes")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		row, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if row == nil {
			break
		}
		n++
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if n != len(rs.Rows) {
		t.Fatalf("cursor produced %d rows, want %d", n, len(rs.Rows))
	}

	// Exec must reject EXPLAIN without executing anything.
	if _, err := db.Exec("EXPLAIN SELECT symbol FROM genes"); err == nil ||
		!strings.Contains(err.Error(), "Exec cannot run EXPLAIN") {
		t.Fatalf("Exec(EXPLAIN) err = %v", err)
	}

	// EXPLAIN INSERT does not insert.
	before := mustCount(t, db, "annos")
	if _, err := db.Query("EXPLAIN INSERT INTO annos VALUES (1, 'GO:x')"); err != nil {
		t.Fatal(err)
	}
	if after := mustCount(t, db, "annos"); after != before {
		t.Fatalf("EXPLAIN INSERT changed row count %d -> %d", before, after)
	}

	// Error paths.
	for _, bad := range []string{
		"EXPLAIN EXPLAIN SELECT 1",
		"EXPLAIN CREATE TABLE t (x INTEGER)",
		"EXPLAIN (FORMAT yaml) SELECT symbol FROM genes",
	} {
		if _, err := db.Query(bad); err == nil {
			t.Fatalf("%q unexpectedly succeeded", bad)
		}
	}
	if _, err := db.Explain("SELECT 1 FROM genes", "yaml"); err == nil {
		t.Fatal("Explain with bad format succeeded")
	}
}

func mustCount(t *testing.T, db *DB, table string) int64 {
	t.Helper()
	rs, err := db.Query(fmt.Sprintf("SELECT COUNT(*) FROM %s", table))
	if err != nil {
		t.Fatal(err)
	}
	return rs.Rows[0][0].(int64)
}
