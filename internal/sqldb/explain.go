package sqldb

import (
	"encoding/json"
	"fmt"
	"strings"
)

// PlanVersion is the version stamped into every EXPLAIN (FORMAT JSON)
// document. Bump it only when a field changes meaning or disappears;
// adding fields is backward-compatible within a version. The schema is
// specified field-by-field in docs/plan-json.md.
const PlanVersion = 1

// explainPlan is the compiled form of an EXPLAIN statement: the inner
// statement's plan plus the requested rendering format. Rendering happens
// per execution (describePlan), so cardinality reflects the table sizes at
// EXPLAIN time, not at prepare time.
type explainPlan struct {
	format string // "json" or "text"
	sel    *selectPlan
	upd    *updatePlan
	del    *deletePlan
	ins    *InsertStmt
}

// planExplain compiles the statement wrapped by EXPLAIN. SELECT, UPDATE
// and DELETE go through their real planners — the document describes
// exactly the plan that would execute. INSERT has no plan to choose, so
// only its target table is validated.
func planExplain(db *DB, st *ExplainStmt) (*explainPlan, error) {
	ep := &explainPlan{format: st.Format}
	switch inner := st.Stmt.(type) {
	case *SelectStmt:
		plan, err := planSelect(db, inner)
		if err != nil {
			return nil, err
		}
		ep.sel = plan
	case *UpdateStmt:
		plan, err := planUpdate(db, inner)
		if err != nil {
			return nil, err
		}
		ep.upd = plan
	case *DeleteStmt:
		plan, err := planDelete(db, inner)
		if err != nil {
			return nil, err
		}
		ep.del = plan
	case *InsertStmt:
		if db.table(inner.Table) == nil {
			return nil, fmt.Errorf("sqldb: no such table %q", inner.Table)
		}
		ep.ins = inner
	default:
		return nil, fmt.Errorf("sqldb: EXPLAIN supports SELECT, INSERT, UPDATE and DELETE statements")
	}
	return ep, nil
}

// ---------------------------------------------------------------------------
// Plan document (plan_version 1)

// PlanDoc is the versioned EXPLAIN document. Field order here is the
// serialization order (encoding/json marshals struct fields in declaration
// order), so the JSON output is byte-stable. Runtime partition count and
// the parallelism knob are deliberately excluded: the document must not
// change between machines or partition layouts (see docs/plan-json.md).
type PlanDoc struct {
	PlanVersion int             `json:"plan_version"`
	Statement   string          `json:"statement"`
	Table       string          `json:"table,omitempty"` // write statements' target
	Columns     []string        `json:"columns,omitempty"`
	Access      *AccessDoc      `json:"access,omitempty"`
	Joins       []JoinDoc       `json:"joins,omitempty"`
	Filter      string          `json:"filter,omitempty"`
	Aggregate   *AggregateDoc   `json:"aggregate,omitempty"`
	Distinct    bool            `json:"distinct,omitempty"`
	OrderBy     []string        `json:"order_by,omitempty"`
	OrderByIdx  bool            `json:"order_by_satisfied,omitempty"`
	Limit       string          `json:"limit,omitempty"`
	Offset      string          `json:"offset,omitempty"`
	EarlyExit   bool            `json:"early_exit,omitempty"`
	Leg         string          `json:"leg,omitempty"`
	Cardinality *CardinalityDoc `json:"cardinality,omitempty"`
	Sets        []string        `json:"sets,omitempty"` // UPDATE assignments
	Rows        int             `json:"rows,omitempty"` // INSERT literal rows
}

// AccessDoc describes how candidate rows of the driven relation are
// obtained. Candidates are a superset: Filter is still applied per row.
type AccessDoc struct {
	Table          string   `json:"table"`
	Path           string   `json:"path"` // full-scan | index-eq | index-in | index-range
	Index          string   `json:"index,omitempty"`
	IndexKind      string   `json:"index_kind,omitempty"`
	Key            string   `json:"key,omitempty"`  // index-eq probe
	Keys           []string `json:"keys,omitempty"` // index-in probes
	Lower          string   `json:"lower,omitempty"`
	LowerInclusive bool     `json:"lower_inclusive,omitempty"`
	Upper          string   `json:"upper,omitempty"`
	UpperInclusive bool     `json:"upper_inclusive,omitempty"`
	Ordered        bool     `json:"ordered,omitempty"`
	Descending     bool     `json:"descending,omitempty"`
}

// JoinDoc describes one join in stacking order (bottom-up). Kind is the
// syntactic join form; Swapped marks a RIGHT join the executor runs as
// LEFT with exchanged inputs.
type JoinDoc struct {
	Table    string `json:"table"`    // probe-side relation
	Kind     string `json:"kind"`     // INNER | LEFT | RIGHT | CROSS
	Strategy string `json:"strategy"` // nested-loop | hash-build | index-loop
	Index    string `json:"index,omitempty"`
	Key      string `json:"key,omitempty"` // driving-side equi-key expression
	On       string `json:"on,omitempty"`
	Swapped  bool   `json:"swapped,omitempty"`
}

// AggregateDoc describes grouped execution.
type AggregateDoc struct {
	GroupBy []string `json:"group_by,omitempty"`
	Calls   []string `json:"calls,omitempty"`
	Having  string   `json:"having,omitempty"`
	Mode    string   `json:"mode"` // serial | parallel | vectorized
}

// CardinalityDoc reports the input cardinality of the driven relation.
// The engine maintains exact live row counts, so Exact is always true
// today; the field exists so a future sampled estimator can keep the
// document shape.
type CardinalityDoc struct {
	Estimate int64 `json:"estimate"`
	Exact    bool  `json:"exact"`
}

// planLeg names the execution leg the plan shape prefers, mirroring the
// runtime selection order (vectorized > parallel > serial) but using only
// machine-independent inputs: plan shape, the batch/parallel row
// thresholds and the BatchExecution knob. The runtime additionally
// requires Parallelism() > 1 and more than one partition for the parallel
// leg — both machine- or layout-dependent, so "parallel" here means
// "parallel-preferred; falls back to serial when the layout disallows it".
func (db *DB) planLeg(p *selectPlan) string {
	t := p.rels[p.driver].table
	rows := int64(t.RowCount())
	batchOK := p.batch != nil && p.batch.scanOK
	if p.grouped {
		batchOK = p.batch != nil && p.batch.aggOK
	}
	if batchOK && db.BatchExecution() && rows >= db.batchMinRows() {
		return "vectorized"
	}
	if p.access.kind == accessScan && len(p.joins) == 0 && len(p.rels) == 1 && rows >= db.parallelMinRows() {
		return "parallel"
	}
	return "serial"
}

// describeAccess renders one accessPlan against its relation.
func describeAccess(t *Table, a accessPlan) *AccessDoc {
	d := &AccessDoc{Table: t.Name}
	switch a.kind {
	case accessScan:
		d.Path = "full-scan"
	case accessEq:
		d.Path = "index-eq"
		d.Key = a.key.String()
	case accessIn:
		d.Path = "index-in"
		for _, it := range a.items {
			d.Keys = append(d.Keys, it.String())
		}
	case accessRange:
		d.Path = "index-range"
		if a.lo != nil {
			d.Lower, d.LowerInclusive = a.lo.String(), a.loIncl
		}
		if a.hi != nil {
			d.Upper, d.UpperInclusive = a.hi.String(), a.hiIncl
		}
		d.Ordered, d.Descending = a.ordered, a.desc
	}
	if a.idx != nil {
		d.Index, d.IndexKind = a.idx.Name, a.idx.Kind.String()
	}
	return d
}

var joinStrategyNames = map[joinStrategy]string{
	joinNestedLoop: "nested-loop",
	joinHashBuild:  "hash-build",
	joinIndexLoop:  "index-loop",
}

// describeSelect walks a compiled SELECT plan into a PlanDoc.
func (db *DB) describeSelect(p *selectPlan) *PlanDoc {
	st := p.st
	driver := p.rels[p.driver]
	doc := &PlanDoc{
		PlanVersion: PlanVersion,
		Statement:   "SELECT",
		Columns:     p.projNames,
		Access:      describeAccess(driver.table, p.access),
		Distinct:    st.Distinct,
	}
	for i := range p.joins {
		jp := &p.joins[i]
		probe := p.rels[i+1]
		if jp.swapped {
			probe = p.rels[0]
		}
		jd := JoinDoc{
			Table:    probe.table.Name,
			Kind:     st.Joins[i].Kind.String(),
			Strategy: joinStrategyNames[jp.strategy],
			Swapped:  jp.swapped,
		}
		if jp.idx != nil {
			jd.Index = jp.idx.Name
		}
		if jp.keyExpr != nil {
			jd.Key = jp.keyExpr.String()
		}
		if st.Joins[i].On != nil {
			jd.On = st.Joins[i].On.String()
		}
		doc.Joins = append(doc.Joins, jd)
	}
	if st.Where != nil {
		doc.Filter = st.Where.String()
	}
	leg := db.planLeg(p)
	doc.Leg = leg
	if p.grouped {
		agg := &AggregateDoc{Mode: leg}
		for _, g := range st.GroupBy {
			agg.GroupBy = append(agg.GroupBy, g.String())
		}
		for _, call := range p.aggCalls {
			agg.Calls = append(agg.Calls, call.String())
		}
		if st.Having != nil {
			agg.Having = st.Having.String()
		}
		doc.Aggregate = agg
	}
	for _, o := range st.OrderBy {
		key := o.Expr.String()
		if o.Desc {
			key += " DESC"
		}
		doc.OrderBy = append(doc.OrderBy, key)
	}
	doc.OrderByIdx = p.orderSatisfied
	if st.Limit != nil {
		doc.Limit = st.Limit.String()
	}
	if st.Offset != nil {
		doc.Offset = st.Offset.String()
	}
	// Early exit mirrors the streaming shape: no pipeline breaker between
	// the scan and the LIMIT counter.
	doc.EarlyExit = st.Limit != nil && !p.grouped && !st.Distinct &&
		(len(st.OrderBy) == 0 || p.orderSatisfied)
	doc.Cardinality = &CardinalityDoc{Estimate: int64(driver.table.RowCount()), Exact: true}
	return doc
}

// describeWrite renders UPDATE/DELETE plans, which share writePlan.
func describeWrite(stmt string, wp *writePlan, sets []string) *PlanDoc {
	doc := &PlanDoc{
		PlanVersion: PlanVersion,
		Statement:   stmt,
		Table:       wp.t.Name,
		Access:      describeAccess(wp.t, wp.access),
		Sets:        sets,
	}
	if wp.where != nil {
		doc.Filter = wp.where.String()
	}
	doc.Leg = "serial"
	doc.Cardinality = &CardinalityDoc{Estimate: int64(wp.t.RowCount()), Exact: true}
	return doc
}

// describePlan builds the plan document for one compiled EXPLAIN.
func (db *DB) describePlan(ep *explainPlan) *PlanDoc {
	switch {
	case ep.sel != nil:
		return db.describeSelect(ep.sel)
	case ep.upd != nil:
		var sets []string
		for i, pos := range ep.upd.setPos {
			sets = append(sets, fmt.Sprintf("%s = %s",
				ep.upd.writePlan.t.Schema.Columns[pos].Name, ep.upd.setExprs[i].String()))
		}
		return describeWrite("UPDATE", &ep.upd.writePlan, sets)
	case ep.del != nil:
		return describeWrite("DELETE", &ep.del.writePlan, nil)
	default:
		t := db.table(ep.ins.Table)
		doc := &PlanDoc{PlanVersion: PlanVersion, Statement: "INSERT", Rows: len(ep.ins.Rows)}
		if t != nil {
			doc.Table = t.Name
		} else {
			doc.Table = ep.ins.Table
		}
		doc.Leg = "serial"
		return doc
	}
}

// renderPlanText renders the document as indented text, derived purely
// from the PlanDoc so both formats always agree.
func renderPlanText(doc *PlanDoc) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", doc.Statement)
	if doc.Table != "" {
		fmt.Fprintf(&b, " %s", doc.Table)
	}
	b.WriteByte('\n')
	if len(doc.Columns) > 0 {
		fmt.Fprintf(&b, "  columns: %s\n", strings.Join(doc.Columns, ", "))
	}
	if a := doc.Access; a != nil {
		fmt.Fprintf(&b, "  access: %s %s", a.Table, a.Path)
		if a.Index != "" {
			fmt.Fprintf(&b, " via %s (%s)", a.Index, a.IndexKind)
		}
		switch {
		case a.Key != "":
			fmt.Fprintf(&b, " key=%s", a.Key)
		case len(a.Keys) > 0:
			fmt.Fprintf(&b, " keys=(%s)", strings.Join(a.Keys, ", "))
		case a.Lower != "" || a.Upper != "":
			lo, hi := "-inf", "+inf"
			if a.Lower != "" {
				lo = a.Lower
			}
			if a.Upper != "" {
				hi = a.Upper
			}
			fmt.Fprintf(&b, " range=[%s, %s]", lo, hi)
		}
		if a.Ordered {
			b.WriteString(" ordered")
			if a.Descending {
				b.WriteString(" desc")
			}
		}
		b.WriteByte('\n')
	}
	for _, j := range doc.Joins {
		fmt.Fprintf(&b, "  join: %s %s %s", j.Kind, j.Table, j.Strategy)
		if j.Index != "" {
			fmt.Fprintf(&b, " via %s", j.Index)
		}
		if j.On != "" {
			fmt.Fprintf(&b, " on %s", j.On)
		}
		if j.Swapped {
			b.WriteString(" (inputs swapped)")
		}
		b.WriteByte('\n')
	}
	if doc.Filter != "" {
		fmt.Fprintf(&b, "  filter: %s\n", doc.Filter)
	}
	if g := doc.Aggregate; g != nil {
		b.WriteString("  aggregate:")
		if len(g.GroupBy) > 0 {
			fmt.Fprintf(&b, " group by %s;", strings.Join(g.GroupBy, ", "))
		}
		if len(g.Calls) > 0 {
			fmt.Fprintf(&b, " %s;", strings.Join(g.Calls, ", "))
		}
		if g.Having != "" {
			fmt.Fprintf(&b, " having %s;", g.Having)
		}
		fmt.Fprintf(&b, " mode=%s\n", g.Mode)
	}
	if doc.Distinct {
		b.WriteString("  distinct\n")
	}
	if len(doc.OrderBy) > 0 {
		fmt.Fprintf(&b, "  order by: %s", strings.Join(doc.OrderBy, ", "))
		if doc.OrderByIdx {
			b.WriteString(" (satisfied by access order)")
		}
		b.WriteByte('\n')
	}
	if doc.Limit != "" {
		fmt.Fprintf(&b, "  limit: %s", doc.Limit)
		if doc.EarlyExit {
			b.WriteString(" (early exit)")
		}
		b.WriteByte('\n')
	}
	if doc.Offset != "" {
		fmt.Fprintf(&b, "  offset: %s\n", doc.Offset)
	}
	if len(doc.Sets) > 0 {
		fmt.Fprintf(&b, "  set: %s\n", strings.Join(doc.Sets, ", "))
	}
	if doc.Rows > 0 {
		fmt.Fprintf(&b, "  rows: %d\n", doc.Rows)
	}
	if doc.Leg != "" {
		fmt.Fprintf(&b, "  leg: %s\n", doc.Leg)
	}
	if c := doc.Cardinality; c != nil {
		kind := "estimated"
		if c.Exact {
			kind = "exact"
		}
		fmt.Fprintf(&b, "  cardinality: %d (%s)\n", c.Estimate, kind)
	}
	return strings.TrimRight(b.String(), "\n")
}

// explainResult renders the plan document as a one-column result set with
// one row per output line, so every query surface (Query, QueryEach,
// QueryCursor, the REPL) prints it naturally.
func (db *DB) explainResult(ep *explainPlan) (*ResultSet, error) {
	doc := db.describePlan(ep)
	var text string
	if ep.format == "json" {
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return nil, err
		}
		text = string(b)
	} else {
		text = renderPlanText(doc)
	}
	rs := &ResultSet{Columns: []string{"plan"}}
	for _, line := range strings.Split(text, "\n") {
		rs.Rows = append(rs.Rows, []Value{line})
	}
	return rs, nil
}

// Explain compiles sql (without an EXPLAIN prefix) and returns its plan
// document rendered in format: "json" (the default when empty) or "text".
func (db *DB) Explain(sql, format string) (string, error) {
	switch format {
	case "":
		format = "json"
	case "json", "text":
	default:
		return "", fmt.Errorf("sqldb: unknown EXPLAIN format %q (want \"json\" or \"text\")", format)
	}
	rs, err := db.Query("EXPLAIN (FORMAT " + strings.ToUpper(format) + ") " + sql)
	if err != nil {
		return "", err
	}
	lines := make([]string, 0, len(rs.Rows))
	for _, row := range rs.Rows {
		s, _ := row[0].(string)
		lines = append(lines, s)
	}
	return strings.Join(lines, "\n"), nil
}
