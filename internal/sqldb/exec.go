package sqldb

import (
	"fmt"
	"sort"
	"strings"
)

// ResultSet is the materialized output of a SELECT.
type ResultSet struct {
	Columns []string
	Rows    [][]Value
}

// Len returns the number of result rows.
func (r *ResultSet) Len() int { return len(r.Rows) }

// relBinding records where one relation's columns live in the row
// environment.
type relBinding struct {
	table *Table
	qual  string
	off   int
	width int
}

// selectExec carries per-query state for executing a SELECT.
type selectExec struct {
	db   *DB
	st   *SelectStmt
	env  *RowEnv
	rels []relBinding

	// Aggregation state.
	aggCalls []*FuncCall
	aggVals  []Value // current group's aggregate results
	grouped  bool

	// Rewritten projection/having/order expressions (aggregates replaced
	// by slots reading aggVals).
	projExprs  []Expr
	projNames  []string
	havingExpr Expr
	orderExprs []Expr
}

// aggSlot reads a precomputed aggregate value for the current group.
type aggSlot struct {
	ex  *selectExec
	idx int
}

// Eval returns the aggregate value for the group being projected.
func (a *aggSlot) Eval(*RowEnv) (Value, error) { return a.ex.aggVals[a.idx], nil }
func (a *aggSlot) String() string              { return a.ex.aggCalls[a.idx].String() }

func (db *DB) executeSelect(st *SelectStmt, args []Value) (*ResultSet, error) {
	ex := &selectExec{db: db, st: st}
	if err := ex.bindArgs(args); err != nil {
		return nil, err
	}
	if err := ex.setupRelations(); err != nil {
		return nil, err
	}
	if err := ex.setupProjection(); err != nil {
		return nil, err
	}

	ex.grouped = len(st.GroupBy) > 0 || len(ex.aggCalls) > 0
	var out [][]Value
	var orderKeys [][]Value
	var err error
	if ex.grouped {
		out, orderKeys, err = ex.runGrouped()
	} else {
		out, orderKeys, err = ex.runSimple()
	}
	if err != nil {
		return nil, err
	}

	if st.Distinct {
		out, orderKeys = distinctRows(out, orderKeys)
	}
	if len(st.OrderBy) > 0 {
		sortRows(out, orderKeys, st.OrderBy)
	}
	out, err = ex.applyLimit(out)
	if err != nil {
		return nil, err
	}
	return &ResultSet{Columns: ex.projNames, Rows: out}, nil
}

func (ex *selectExec) bindArgs(args []Value) error {
	st := ex.st
	exprs := []Expr{st.Where, st.Having, st.Limit, st.Offset}
	for _, it := range st.Items {
		exprs = append(exprs, it.Expr)
	}
	for _, j := range st.Joins {
		exprs = append(exprs, j.On)
	}
	exprs = append(exprs, st.GroupBy...)
	for _, o := range st.OrderBy {
		exprs = append(exprs, o.Expr)
	}
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if err := bindParams(e, args); err != nil {
			return err
		}
	}
	return nil
}

func (ex *selectExec) setupRelations() error {
	st := ex.st
	ex.env = &RowEnv{}
	add := func(ref TableRef) error {
		t := ex.db.table(ref.Name)
		if t == nil {
			return fmt.Errorf("sqldb: no such table %q", ref.Name)
		}
		off := ex.env.Width()
		ex.env.AddRelation(ref.Binding(), t.Schema.Names())
		ex.rels = append(ex.rels, relBinding{table: t, qual: strings.ToLower(ref.Binding()), off: off, width: len(t.Schema.Columns)})
		return nil
	}
	if err := add(st.From); err != nil {
		return err
	}
	for _, j := range st.Joins {
		if err := add(j.Table); err != nil {
			return err
		}
	}
	return nil
}

// setupProjection expands stars, names output columns and rewrites
// aggregates into slots.
func (ex *selectExec) setupProjection() error {
	for _, item := range ex.st.Items {
		if item.Star {
			if err := ex.expandStar(item.Qual); err != nil {
				return err
			}
			continue
		}
		e, err := ex.rewriteAggs(item.Expr)
		if err != nil {
			return err
		}
		ex.projExprs = append(ex.projExprs, e)
		name := item.Alias
		if name == "" {
			name = projName(item.Expr)
		}
		ex.projNames = append(ex.projNames, name)
	}
	if ex.st.Having != nil {
		h, err := ex.rewriteAggs(ex.st.Having)
		if err != nil {
			return err
		}
		ex.havingExpr = h
	}
	for _, o := range ex.st.OrderBy {
		// ORDER BY <ordinal> references a select item.
		if lit, ok := o.Expr.(*Literal); ok {
			if n, ok := lit.Val.(int64); ok {
				if n < 1 || int(n) > len(ex.projExprs) {
					return fmt.Errorf("sqldb: ORDER BY position %d out of range", n)
				}
				ex.orderExprs = append(ex.orderExprs, ex.projExprs[n-1])
				continue
			}
		}
		// ORDER BY <alias> references a select item by its alias.
		if cr, ok := o.Expr.(*ColumnRef); ok && cr.Qual == "" {
			matched := false
			for i, name := range ex.projNames {
				if strings.EqualFold(name, cr.Name) {
					// Only treat as alias when it is not a real column.
					if _, err := ex.env.Resolve("", cr.Name); err != nil {
						ex.orderExprs = append(ex.orderExprs, ex.projExprs[i])
						matched = true
					}
					break
				}
			}
			if matched {
				continue
			}
		}
		e, err := ex.rewriteAggs(o.Expr)
		if err != nil {
			return err
		}
		ex.orderExprs = append(ex.orderExprs, e)
	}
	return nil
}

func (ex *selectExec) expandStar(qual string) error {
	q := strings.ToLower(qual)
	matched := false
	for _, rel := range ex.rels {
		if q != "" && rel.qual != q {
			continue
		}
		matched = true
		for i, c := range rel.table.Schema.Columns {
			pos := rel.off + i
			ex.projExprs = append(ex.projExprs, &fixedCol{env: ex.env, pos: pos})
			ex.projNames = append(ex.projNames, c.Name)
		}
	}
	if !matched {
		return fmt.Errorf("sqldb: unknown table qualifier %q in select list", qual)
	}
	return nil
}

// fixedCol reads a pre-resolved environment position (used by star
// expansion, avoiding name ambiguity issues for duplicate column names).
type fixedCol struct {
	env *RowEnv
	pos int
}

// Eval returns the environment value at the fixed position.
func (f *fixedCol) Eval(env *RowEnv) (Value, error) { return env.vals[f.pos], nil }
func (f *fixedCol) String() string                  { return fmt.Sprintf("col#%d", f.pos) }

func projName(e Expr) string {
	if c, ok := e.(*ColumnRef); ok {
		return c.Name
	}
	return e.String()
}

// rewriteAggs returns a copy of e with aggregate calls replaced by slots.
// It registers each aggregate in ex.aggCalls.
func (ex *selectExec) rewriteAggs(e Expr) (Expr, error) {
	switch x := e.(type) {
	case nil:
		return nil, nil
	case *Literal, *ColumnRef, *Param, *fixedCol:
		return e, nil
	case *FuncCall:
		if x.IsAggregate() {
			for _, a := range x.Args {
				hasAgg := false
				walkExpr(a, func(sub Expr) {
					if f, ok := sub.(*FuncCall); ok && f.IsAggregate() {
						hasAgg = true
					}
				})
				if hasAgg {
					return nil, fmt.Errorf("sqldb: nested aggregate in %s", x.Name)
				}
			}
			ex.aggCalls = append(ex.aggCalls, x)
			return &aggSlot{ex: ex, idx: len(ex.aggCalls) - 1}, nil
		}
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			na, err := ex.rewriteAggs(a)
			if err != nil {
				return nil, err
			}
			args[i] = na
		}
		return &FuncCall{Name: x.Name, Args: args}, nil
	case *Binary:
		l, err := ex.rewriteAggs(x.L)
		if err != nil {
			return nil, err
		}
		r, err := ex.rewriteAggs(x.R)
		if err != nil {
			return nil, err
		}
		return &Binary{Op: x.Op, L: l, R: r}, nil
	case *Unary:
		sub, err := ex.rewriteAggs(x.X)
		if err != nil {
			return nil, err
		}
		return &Unary{Op: x.Op, X: sub}, nil
	case *IsNull:
		sub, err := ex.rewriteAggs(x.X)
		if err != nil {
			return nil, err
		}
		return &IsNull{X: sub, Negate: x.Negate}, nil
	case *InList:
		sub, err := ex.rewriteAggs(x.X)
		if err != nil {
			return nil, err
		}
		items := make([]Expr, len(x.Items))
		for i, it := range x.Items {
			ni, err := ex.rewriteAggs(it)
			if err != nil {
				return nil, err
			}
			items[i] = ni
		}
		return &InList{X: sub, Items: items, Negate: x.Negate}, nil
	case *Between:
		sub, err := ex.rewriteAggs(x.X)
		if err != nil {
			return nil, err
		}
		lo, err := ex.rewriteAggs(x.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := ex.rewriteAggs(x.Hi)
		if err != nil {
			return nil, err
		}
		return &Between{X: sub, Lo: lo, Hi: hi, Negate: x.Negate}, nil
	}
	return e, nil
}

// ---------------------------------------------------------------------------
// Row production (scan + joins)

// forEachJoinedRow streams every joined row combination that satisfies the
// join conditions into fn, with values already placed in ex.env.
func (ex *selectExec) forEachJoinedRow(fn func() (bool, error)) error {
	// Pre-build hash tables for equi-joins.
	joins := make([]*joinExec, len(ex.st.Joins))
	for i, j := range ex.st.Joins {
		je, err := ex.prepareJoin(i, j)
		if err != nil {
			return err
		}
		joins[i] = je
	}

	base := ex.rels[0]
	baseRows, useFiltered := ex.baseCandidates()

	var produce func(level int) (bool, error)
	produce = func(level int) (bool, error) {
		if level == len(joins) {
			return fn()
		}
		return joins[level].emit(ex, func() (bool, error) { return produce(level + 1) })
	}

	emitBase := func(row []Value) (bool, error) {
		ex.env.SetRow(base.off, row)
		return produce(0)
	}

	if useFiltered {
		for _, id := range baseRows {
			row := base.table.Get(id)
			if row == nil {
				continue
			}
			cont, err := emitBase(row)
			if err != nil {
				return err
			}
			if !cont {
				return nil
			}
		}
		return nil
	}
	var scanErr error
	base.table.Scan(func(_ int64, row []Value) bool {
		cont, err := emitBase(row)
		if err != nil {
			scanErr = err
			return false
		}
		return cont
	})
	return scanErr
}

// baseCandidates inspects WHERE for an indexable equality predicate on the
// base table (col = literal/param) and returns the candidate row IDs. The
// boolean reports whether the filtered ID list should be used instead of a
// full scan.
func (ex *selectExec) baseCandidates() ([]int64, bool) {
	if ex.st.Where == nil {
		return nil, false
	}
	var ids []int64
	found := false
	visitConjuncts(ex.st.Where, func(e Expr) bool {
		if found {
			return true
		}
		switch x := e.(type) {
		case *Binary:
			if x.Op != OpEq {
				return true
			}
			col, lit := matchColLiteral(x.L, x.R)
			if col == nil {
				return true
			}
			idx := ex.baseIndexFor(col)
			if idx == nil {
				return true
			}
			v, err := lit.Eval(nil)
			if err != nil {
				return true
			}
			ids = idx.Lookup(v)
			found = true
		case *InList:
			// col IN (const, ...) unions the index postings of each item
			// instead of scanning the table.
			if x.Negate {
				return true
			}
			col, ok := x.X.(*ColumnRef)
			if !ok {
				return true
			}
			for _, item := range x.Items {
				if !isConst(item) {
					return true
				}
			}
			idx := ex.baseIndexFor(col)
			if idx == nil {
				return true
			}
			// Distinct values of a column index have disjoint posting
			// lists, so deduplicating the item values keeps the union
			// duplicate-free without a per-row set.
			vals := make([]Value, 0, len(x.Items))
			for _, item := range x.Items {
				v, err := item.Eval(nil)
				if err != nil {
					return true
				}
				if v == nil {
					continue // NULL matches nothing under IN
				}
				dup := false
				for _, seen := range vals {
					if Compare(seen, v) == 0 {
						dup = true
						break
					}
				}
				if !dup {
					vals = append(vals, v)
				}
			}
			var union []int64
			for _, v := range vals {
				union = append(union, idx.Lookup(v)...)
			}
			ids = union
			found = true
		}
		return true
	})
	return ids, found
}

// baseIndexFor returns the index over the base relation's column named by
// col, or nil when the column does not (unambiguously) belong to the base
// relation or has no index.
func (ex *selectExec) baseIndexFor(col *ColumnRef) *Index {
	base := ex.rels[0]
	if col.Qual != "" && strings.ToLower(col.Qual) != base.qual {
		return nil
	}
	ci := base.table.Schema.ColumnIndex(col.Name)
	if ci < 0 {
		return nil
	}
	// Ambiguity: if another relation has the same unqualified column
	// name, skip the optimization and let evaluation decide.
	if col.Qual == "" {
		if _, err := ex.env.Resolve("", col.Name); err != nil {
			return nil
		}
		if p, _ := ex.env.Resolve("", col.Name); p >= base.off+base.width || p < base.off {
			return nil
		}
	}
	return base.table.IndexOn(ci)
}

// visitConjuncts calls fn for every AND-connected conjunct of e.
func visitConjuncts(e Expr, fn func(Expr) bool) {
	if b, ok := e.(*Binary); ok && b.Op == OpAnd {
		visitConjuncts(b.L, fn)
		visitConjuncts(b.R, fn)
		return
	}
	fn(e)
}

// matchColLiteral matches a (ColumnRef, constant) pair in either order.
func matchColLiteral(a, b Expr) (*ColumnRef, Expr) {
	if c, ok := a.(*ColumnRef); ok && isConst(b) {
		return c, b
	}
	if c, ok := b.(*ColumnRef); ok && isConst(a) {
		return c, a
	}
	return nil, nil
}

func isConst(e Expr) bool {
	switch x := e.(type) {
	case *Literal:
		return true
	case *Param:
		return x.set
	}
	return false
}

// joinExec holds the prepared execution strategy for one join clause.
type joinExec struct {
	rel  relBinding
	kind JoinKind
	on   Expr
	// Hash-join fields; nil hash means nested loop.
	hash    map[hashKey][][]Value
	keyExpr Expr // evaluated against left-side env
	// residual is the ON condition re-checked per candidate (always the
	// full ON; cheap because candidates already match the equi-key).
	residual Expr
}

// prepareJoin chooses hash join when the ON clause contains an equi-
// condition between a right-table column and a left-side expression.
func (ex *selectExec) prepareJoin(joinIdx int, j JoinClause) (*joinExec, error) {
	rel := ex.rels[joinIdx+1]
	je := &joinExec{rel: rel, kind: j.Kind, on: j.On, residual: j.On}

	rightCol, leftExpr := ex.findEquiKey(joinIdx, j.On)
	if rightCol >= 0 {
		// Build the hash table over the right relation once.
		hash := make(map[hashKey][][]Value)
		rel.table.Scan(func(_ int64, row []Value) bool {
			k := row[rightCol]
			if k == nil {
				return true
			}
			hk := makeHashKey(k)
			hash[hk] = append(hash[hk], row)
			return true
		})
		je.hash = hash
		je.keyExpr = leftExpr
	}
	return je, nil
}

// findEquiKey looks for `right.col = leftExpr` (either side order) among
// the conjuncts of on. It returns the right column position and the left
// key expression, or (-1, nil).
func (ex *selectExec) findEquiKey(joinIdx int, on Expr) (int, Expr) {
	rel := ex.rels[joinIdx+1]
	resCol := -1
	var resExpr Expr
	visitConjuncts(on, func(e Expr) bool {
		if resCol >= 0 {
			return true
		}
		b, ok := e.(*Binary)
		if !ok || b.Op != OpEq {
			return true
		}
		try := func(side, other Expr) bool {
			c, ok := side.(*ColumnRef)
			if !ok {
				return false
			}
			// The column must belong to the right relation.
			q := strings.ToLower(c.Qual)
			if q != "" && q != rel.qual {
				return false
			}
			ci := rel.table.Schema.ColumnIndex(c.Name)
			if ci < 0 {
				return false
			}
			if q == "" {
				// Unqualified: require that the name resolves uniquely to
				// the right relation.
				p, err := ex.env.Resolve("", c.Name)
				if err != nil || p < rel.off || p >= rel.off+rel.width {
					return false
				}
			}
			// The other side must reference only earlier relations.
			if !ex.referencesOnlyBefore(other, rel.off) {
				return false
			}
			resCol, resExpr = ci, other
			return true
		}
		if try(b.L, b.R) {
			return true
		}
		try(b.R, b.L)
		return true
	})
	return resCol, resExpr
}

// referencesOnlyBefore reports whether all column references in e resolve
// to environment positions before off.
func (ex *selectExec) referencesOnlyBefore(e Expr, off int) bool {
	ok := true
	walkExpr(e, func(sub Expr) {
		switch c := sub.(type) {
		case *ColumnRef:
			p, err := ex.env.Resolve(c.Qual, c.Name)
			if err != nil || p >= off {
				ok = false
			}
		case *fixedCol:
			if c.pos >= off {
				ok = false
			}
		}
	})
	return ok
}

// emit produces all right-row matches for the current left tuple.
func (je *joinExec) emit(ex *selectExec, produce func() (bool, error)) (bool, error) {
	matched := false
	tryRow := func(row []Value) (bool, error) {
		ex.env.SetRow(je.rel.off, row)
		v, err := je.residual.Eval(ex.env)
		if err != nil {
			return false, err
		}
		b, isNull := toBool(v)
		if isNull || !b {
			return true, nil
		}
		matched = true
		return produce()
	}

	if je.hash != nil {
		key, err := je.keyExpr.Eval(ex.env)
		if err != nil {
			return false, err
		}
		if key != nil {
			for _, row := range je.hash[makeHashKey(key)] {
				cont, err := tryRow(row)
				if err != nil || !cont {
					return cont, err
				}
			}
		}
	} else {
		var loopErr error
		contAll := true
		je.rel.table.Scan(func(_ int64, row []Value) bool {
			cont, err := tryRow(row)
			if err != nil {
				loopErr = err
				return false
			}
			if !cont {
				contAll = false
				return false
			}
			return true
		})
		if loopErr != nil {
			return false, loopErr
		}
		if !contAll {
			return false, nil
		}
	}

	if !matched && je.kind == JoinLeft {
		ex.env.ClearRow(je.rel.off, je.rel.width)
		return produce()
	}
	return true, nil
}

// ---------------------------------------------------------------------------
// Simple (non-aggregated) execution

func (ex *selectExec) runSimple() ([][]Value, [][]Value, error) {
	var out [][]Value
	var orderKeys [][]Value
	err := ex.forEachJoinedRow(func() (bool, error) {
		if ex.st.Where != nil {
			v, err := ex.st.Where.Eval(ex.env)
			if err != nil {
				return false, err
			}
			b, isNull := toBool(v)
			if isNull || !b {
				return true, nil
			}
		}
		row := make([]Value, len(ex.projExprs))
		for i, e := range ex.projExprs {
			v, err := e.Eval(ex.env)
			if err != nil {
				return false, err
			}
			row[i] = v
		}
		out = append(out, row)
		if len(ex.orderExprs) > 0 {
			keys := make([]Value, len(ex.orderExprs))
			for i, e := range ex.orderExprs {
				v, err := e.Eval(ex.env)
				if err != nil {
					return false, err
				}
				keys[i] = v
			}
			orderKeys = append(orderKeys, keys)
		}
		return true, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return out, orderKeys, nil
}

// ---------------------------------------------------------------------------
// Grouped (aggregate) execution

type groupState struct {
	keyVals []Value
	repRow  []Value // environment snapshot of the first row in the group
	accs    []aggAcc
}

func (ex *selectExec) runGrouped() ([][]Value, [][]Value, error) {
	groups := make(map[string]*groupState)
	var order []string

	err := ex.forEachJoinedRow(func() (bool, error) {
		if ex.st.Where != nil {
			v, err := ex.st.Where.Eval(ex.env)
			if err != nil {
				return false, err
			}
			b, isNull := toBool(v)
			if isNull || !b {
				return true, nil
			}
		}
		keyVals := make([]Value, len(ex.st.GroupBy))
		var kb strings.Builder
		for i, g := range ex.st.GroupBy {
			v, err := g.Eval(ex.env)
			if err != nil {
				return false, err
			}
			keyVals[i] = v
			hk := makeHashKey(v)
			fmt.Fprintf(&kb, "%c|%v|%s;", hk.kind, hk.num, hk.str)
		}
		key := kb.String()
		gs, ok := groups[key]
		if !ok {
			gs = &groupState{keyVals: keyVals, accs: make([]aggAcc, len(ex.aggCalls))}
			for i, call := range ex.aggCalls {
				gs.accs[i] = newAggAcc(call)
			}
			gs.repRow = make([]Value, len(ex.env.vals))
			copy(gs.repRow, ex.env.vals)
			groups[key] = gs
			order = append(order, key)
		}
		for i, call := range ex.aggCalls {
			if err := gs.accs[i].add(call, ex.env); err != nil {
				return false, err
			}
		}
		return true, nil
	})
	if err != nil {
		return nil, nil, err
	}

	// A global aggregate over zero rows still yields one output row.
	if len(ex.st.GroupBy) == 0 && len(groups) == 0 {
		gs := &groupState{accs: make([]aggAcc, len(ex.aggCalls))}
		for i, call := range ex.aggCalls {
			gs.accs[i] = newAggAcc(call)
		}
		gs.repRow = make([]Value, len(ex.env.vals))
		groups[""] = gs
		order = append(order, "")
	}

	var out [][]Value
	var orderKeys [][]Value
	for _, key := range order {
		gs := groups[key]
		ex.env.SetRow(0, gs.repRow)
		ex.aggVals = make([]Value, len(ex.aggCalls))
		for i := range ex.aggCalls {
			ex.aggVals[i] = gs.accs[i].result()
		}
		if ex.havingExpr != nil {
			v, err := ex.havingExpr.Eval(ex.env)
			if err != nil {
				return nil, nil, err
			}
			b, isNull := toBool(v)
			if isNull || !b {
				continue
			}
		}
		row := make([]Value, len(ex.projExprs))
		for i, e := range ex.projExprs {
			v, err := e.Eval(ex.env)
			if err != nil {
				return nil, nil, err
			}
			row[i] = v
		}
		out = append(out, row)
		if len(ex.orderExprs) > 0 {
			keys := make([]Value, len(ex.orderExprs))
			for i, e := range ex.orderExprs {
				v, err := e.Eval(ex.env)
				if err != nil {
					return nil, nil, err
				}
				keys[i] = v
			}
			orderKeys = append(orderKeys, keys)
		}
	}
	return out, orderKeys, nil
}

// aggAcc accumulates one aggregate function over a group.
type aggAcc struct {
	count   int64
	sumI    int64
	sumF    float64
	isFloat bool
	minV    Value
	maxV    Value
	kind    string
}

func newAggAcc(call *FuncCall) aggAcc { return aggAcc{kind: call.Name} }

func (a *aggAcc) add(call *FuncCall, env *RowEnv) error {
	if call.Star {
		a.count++
		return nil
	}
	if len(call.Args) != 1 {
		return fmt.Errorf("sqldb: %s expects one argument", call.Name)
	}
	v, err := call.Args[0].Eval(env)
	if err != nil {
		return err
	}
	if v == nil {
		return nil // aggregates skip NULLs
	}
	a.count++
	switch call.Name {
	case "SUM", "AVG":
		switch x := v.(type) {
		case int64:
			a.sumI += x
			a.sumF += float64(x)
		case float64:
			a.isFloat = true
			a.sumF += x
		default:
			return fmt.Errorf("sqldb: %s over non-numeric value %s", call.Name, FormatValue(v))
		}
	case "MIN":
		if a.minV == nil || Compare(v, a.minV) < 0 {
			a.minV = v
		}
	case "MAX":
		if a.maxV == nil || Compare(v, a.maxV) > 0 {
			a.maxV = v
		}
	}
	return nil
}

func (a *aggAcc) result() Value {
	switch a.kind {
	case "COUNT":
		return a.count
	case "SUM":
		if a.count == 0 {
			return nil
		}
		if a.isFloat {
			return a.sumF
		}
		return a.sumI
	case "AVG":
		if a.count == 0 {
			return nil
		}
		return a.sumF / float64(a.count)
	case "MIN":
		return a.minV
	case "MAX":
		return a.maxV
	}
	return nil
}

// ---------------------------------------------------------------------------
// Post-processing

func distinctRows(rows, orderKeys [][]Value) ([][]Value, [][]Value) {
	seen := make(map[string]bool, len(rows))
	var outR, outK [][]Value
	for i, row := range rows {
		var kb strings.Builder
		for _, v := range row {
			hk := makeHashKey(v)
			fmt.Fprintf(&kb, "%c|%v|%s;", hk.kind, hk.num, hk.str)
		}
		key := kb.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		outR = append(outR, row)
		if orderKeys != nil {
			outK = append(outK, orderKeys[i])
		}
	}
	if orderKeys == nil {
		return outR, nil
	}
	return outR, outK
}

func sortRows(rows, keys [][]Value, order []OrderItem) {
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		for i, o := range order {
			c := Compare(ka[i], kb[i])
			if c == 0 {
				continue
			}
			if o.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	sortedR := make([][]Value, len(rows))
	for i, j := range idx {
		sortedR[i] = rows[j]
	}
	copy(rows, sortedR)
}

func (ex *selectExec) applyLimit(rows [][]Value) ([][]Value, error) {
	evalInt := func(e Expr, what string) (int64, error) {
		v, err := e.Eval(nil)
		if err != nil {
			return 0, err
		}
		n, ok := v.(int64)
		if !ok || n < 0 {
			return 0, fmt.Errorf("sqldb: %s must be a non-negative integer", what)
		}
		return n, nil
	}
	if ex.st.Offset != nil {
		n, err := evalInt(ex.st.Offset, "OFFSET")
		if err != nil {
			return nil, err
		}
		if int(n) >= len(rows) {
			rows = nil
		} else {
			rows = rows[n:]
		}
	}
	if ex.st.Limit != nil {
		n, err := evalInt(ex.st.Limit, "LIMIT")
		if err != nil {
			return nil, err
		}
		if int(n) < len(rows) {
			rows = rows[:n]
		}
	}
	return rows, nil
}
