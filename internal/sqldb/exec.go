package sqldb

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// ResultSet is the materialized output of a SELECT.
type ResultSet struct {
	Columns []string
	Rows    [][]Value
}

// Len returns the number of result rows.
func (r *ResultSet) Len() int { return len(r.Rows) }

// relBinding records where one relation's columns live in the row
// environment.
type relBinding struct {
	table *Table
	qual  string
	off   int
	width int
}

// selectExec carries the per-execution state of one SELECT: the row
// environment (values + parameters + aggregate slots). The plan itself is
// shared and immutable; producers (cursor.go) hold their own iteration
// state.
type selectExec struct {
	db  *DB
	p   *selectPlan
	env *RowEnv

	// vis is the snapshot this execution reads at. Lock-mode executions
	// run under db.mu and use visLatest; MVCC executions carry the
	// statement's or transaction's snapshot epoch (vis.lockPart set, so
	// row-map reads take the partition read lock).
	vis visibility

	// orderedHint is the number of output rows the consumer expects to
	// need (LIMIT+OFFSET on the streaming path), used to size the first
	// chunk of an ordered index traversal; 0 means unknown.
	orderedHint int
}

// aggSlot reads a precomputed aggregate value for the current group.
type aggSlot struct {
	idx  int
	name string
}

// Eval returns the aggregate value for the group being projected.
func (a *aggSlot) Eval(env *RowEnv) (Value, error) { return env.aggVals[a.idx], nil }
func (a *aggSlot) String() string                  { return a.name }

// fixedCol reads a pre-resolved environment position (used by star
// expansion, avoiding name ambiguity issues for duplicate column names).
type fixedCol struct {
	pos int
}

// Eval returns the environment value at the fixed position.
func (f *fixedCol) Eval(env *RowEnv) (Value, error) { return env.vals[f.pos], nil }
func (f *fixedCol) String() string                  { return fmt.Sprintf("col#%d", f.pos) }

// executeSelect materializes a SELECT by draining its cursor pipeline.
// Caller holds db.mu (shared or exclusive).
func (db *DB) executeSelect(p *selectPlan, args []Value) (*ResultSet, error) {
	return db.executeSelectVis(p, args, visLatest)
}

// executeSelectVis is executeSelect pinned to an explicit snapshot. MVCC
// reads pass a registered snapshot epoch and hold no db.mu at all; the
// partition read locks taken per row copy are the only synchronization.
func (db *DB) executeSelectVis(p *selectPlan, args []Value, vis visibility) (*ResultSet, error) {
	c := newSelectCursor(db, p, args, false, vis)
	defer c.close()
	rows, err := c.drain()
	if err != nil {
		return nil, err
	}
	return &ResultSet{Columns: p.projNames, Rows: rows}, nil
}

// evalWhere evaluates the WHERE clause against the current environment row
// (true when absent).
func (ex *selectExec) evalWhere() (bool, error) {
	where := ex.p.st.Where
	if where == nil {
		return true, nil
	}
	v, err := where.Eval(ex.env)
	if err != nil {
		return false, err
	}
	b, isNull := toBool(v)
	return !isNull && b, nil
}

// projectInto evaluates the projection into row (len(projExprs)).
func (ex *selectExec) projectInto(row []Value) error {
	for i, e := range ex.p.projExprs {
		v, err := e.Eval(ex.env)
		if err != nil {
			return err
		}
		row[i] = v
	}
	return nil
}

// orderKey evaluates the ORDER BY key expressions for the current row.
func (ex *selectExec) orderKey() ([]Value, error) {
	keys := make([]Value, len(ex.p.orderExprs))
	for i, e := range ex.p.orderExprs {
		v, err := e.Eval(ex.env)
		if err != nil {
			return nil, err
		}
		keys[i] = v
	}
	return keys, nil
}

// evalNonNegInt evaluates a LIMIT/OFFSET expression to a non-negative
// integer.
func (ex *selectExec) evalNonNegInt(e Expr, what string) (int64, error) {
	v, err := e.Eval(ex.env)
	if err != nil {
		return 0, err
	}
	n, ok := v.(int64)
	if !ok || n < 0 {
		return 0, fmt.Errorf("sqldb: %s must be a non-negative integer", what)
	}
	return n, nil
}

// evalLimitOffset evaluates the statement's OFFSET and LIMIT clauses for
// the streaming path. remain is -1 when no LIMIT is present.
func (ex *selectExec) evalLimitOffset() (skip, remain int64, err error) {
	remain = -1
	st := ex.p.st
	if st.Offset != nil {
		if skip, err = ex.evalNonNegInt(st.Offset, "OFFSET"); err != nil {
			return 0, 0, err
		}
	}
	if st.Limit != nil {
		if remain, err = ex.evalNonNegInt(st.Limit, "LIMIT"); err != nil {
			return 0, 0, err
		}
	}
	return skip, remain, nil
}

// needOrderKeys reports whether per-row sort keys must be collected (only
// when a sort actually runs afterwards).
func (ex *selectExec) needOrderKeys() bool {
	return len(ex.p.orderExprs) > 0 && !ex.p.orderSatisfied
}

// ---------------------------------------------------------------------------
// Buffered (pipeline-breaking) execution: GROUP BY, DISTINCT and sorts the
// index cannot satisfy. The producer pipeline is drained fully, then
// post-processed exactly as the streaming path would emit.

func (ex *selectExec) runBuffered() ([][]Value, error) {
	var out, orderKeys [][]Value
	var err error
	if ex.p.grouped {
		out, orderKeys, err = ex.runGrouped()
	} else {
		out, orderKeys, err = ex.runSimple()
	}
	if err != nil {
		return nil, err
	}
	if ex.p.st.Distinct {
		out, orderKeys = distinctRows(out, orderKeys)
	}
	if len(ex.p.st.OrderBy) > 0 && !ex.p.orderSatisfied {
		sortRows(out, orderKeys, ex.p.st.OrderBy)
	}
	return ex.applyLimit(out)
}

func (ex *selectExec) runSimple() ([][]Value, [][]Value, error) {
	prod, err := ex.buildProducer()
	if err != nil {
		return nil, nil, err
	}
	needKeys := ex.needOrderKeys()
	var out [][]Value
	var orderKeys [][]Value
	for {
		ok, err := prod.next(ex)
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			break
		}
		pass, err := ex.evalWhere()
		if err != nil {
			return nil, nil, err
		}
		if !pass {
			continue
		}
		row := make([]Value, len(ex.p.projExprs))
		if err := ex.projectInto(row); err != nil {
			return nil, nil, err
		}
		out = append(out, row)
		if needKeys {
			keys, err := ex.orderKey()
			if err != nil {
				return nil, nil, err
			}
			orderKeys = append(orderKeys, keys)
		}
	}
	return out, orderKeys, nil
}

// ---------------------------------------------------------------------------
// Grouped (aggregate) execution

type groupState struct {
	keyVals []Value
	repRow  []Value // environment snapshot of the first row in the group
	accs    []aggAcc
	firstID int64 // smallest contributing row ID (orders the parallel merge)
}

// addGroupRow folds the environment's current row (WHERE already passed)
// into the group map, creating the group on first sight. id is the row's
// storage ID; the serial path passes 0 since its emission order already IS
// first-seen order, while the parallel merge re-derives first-seen order
// from the smallest contributing ID.
func (ex *selectExec) addGroupRow(groups map[string]*groupState, order *[]string, kb *strings.Builder, id int64) error {
	p := ex.p
	keyVals := make([]Value, len(p.st.GroupBy))
	kb.Reset()
	for i, g := range p.st.GroupBy {
		v, err := g.Eval(ex.env)
		if err != nil {
			return err
		}
		keyVals[i] = v
		hk := makeHashKey(v)
		fmt.Fprintf(kb, "%c|%v|%s;", hk.kind, hk.num, hk.str)
	}
	key := kb.String()
	gs, ok := groups[key]
	if !ok {
		gs = &groupState{keyVals: keyVals, accs: make([]aggAcc, len(p.aggCalls)), firstID: id}
		for i, call := range p.aggCalls {
			gs.accs[i] = newAggAcc(call)
		}
		gs.repRow = make([]Value, len(ex.env.vals))
		copy(gs.repRow, ex.env.vals)
		groups[key] = gs
		*order = append(*order, key)
	}
	for i, call := range p.aggCalls {
		if err := gs.accs[i].add(call, ex.env); err != nil {
			return err
		}
	}
	return nil
}

// serialGroups drains the producer pipeline into the group map (the
// pre-partitioning execution shape, still used for joined, indexed or
// small inputs).
func (ex *selectExec) serialGroups() (map[string]*groupState, []string, error) {
	prod, err := ex.buildProducer()
	if err != nil {
		return nil, nil, err
	}
	groups := make(map[string]*groupState)
	var order []string
	// One builder for every row: taking its address inside the loop would
	// heap-allocate it per row.
	var kb strings.Builder

	for {
		ok, err := prod.next(ex)
		if err != nil {
			return nil, nil, err
		}
		if !ok {
			break
		}
		pass, err := ex.evalWhere()
		if err != nil {
			return nil, nil, err
		}
		if !pass {
			continue
		}
		if err := ex.addGroupRow(groups, &order, &kb, 0); err != nil {
			return nil, nil, err
		}
	}
	return groups, order, nil
}

func (ex *selectExec) runGrouped() ([][]Value, [][]Value, error) {
	p := ex.p
	var (
		groups map[string]*groupState
		order  []string
		err    error
	)
	if ba := ex.batchAggBinding(); ba != nil {
		ex.db.plans.batchAggs.Add(1)
		groups, order, err = ex.batchGroups(ba)
	} else if ex.parallelAggEligible() {
		ex.db.plans.parAggs.Add(1)
		groups, order, err = ex.parallelGroups()
	} else {
		groups, order, err = ex.serialGroups()
	}
	if err != nil {
		return nil, nil, err
	}

	// A global aggregate over zero rows still yields one output row.
	if len(p.st.GroupBy) == 0 && len(groups) == 0 {
		gs := &groupState{accs: make([]aggAcc, len(p.aggCalls))}
		for i, call := range p.aggCalls {
			gs.accs[i] = newAggAcc(call)
		}
		gs.repRow = make([]Value, len(ex.env.vals))
		groups[""] = gs
		order = append(order, "")
	}

	needKeys := ex.needOrderKeys()
	var out [][]Value
	var orderKeys [][]Value
	for _, key := range order {
		gs := groups[key]
		ex.env.SetRow(0, gs.repRow)
		ex.env.aggVals = make([]Value, len(p.aggCalls))
		for i := range p.aggCalls {
			ex.env.aggVals[i] = gs.accs[i].result()
		}
		if p.havingExpr != nil {
			v, err := p.havingExpr.Eval(ex.env)
			if err != nil {
				return nil, nil, err
			}
			b, isNull := toBool(v)
			if isNull || !b {
				continue
			}
		}
		row := make([]Value, len(p.projExprs))
		if err := ex.projectInto(row); err != nil {
			return nil, nil, err
		}
		out = append(out, row)
		if needKeys {
			keys, err := ex.orderKey()
			if err != nil {
				return nil, nil, err
			}
			orderKeys = append(orderKeys, keys)
		}
	}
	return out, orderKeys, nil
}

// aggAcc accumulates one aggregate function over a group. Float partials
// use Kahan (Neumaier-compensated) summation, so serial folds, parallel
// per-partition partials and the vectorized kernels all produce the same
// correctly-rounded SUM/AVG — the determinism oracle asserts exact
// equality across all legs on non-dyadic fixtures.
type aggAcc struct {
	count   int64
	sumI    int64
	sumF    float64
	comp    float64 // Kahan compensation carried alongside sumF
	isFloat bool
	minV    Value
	maxV    Value
	kind    string
}

func newAggAcc(call *FuncCall) aggAcc { return aggAcc{kind: call.Name} }

// kahanAdd folds x into the compensated float partial (Neumaier's
// variant, which also handles |x| > |sum|).
func (a *aggAcc) kahanAdd(x float64) {
	t := a.sumF + x
	if math.Abs(a.sumF) >= math.Abs(x) {
		a.comp += (a.sumF - t) + x
	} else {
		a.comp += (x - t) + a.sumF
	}
	a.sumF = t
}

// merge folds another partial accumulator (same aggregate, different
// partition) into a. Ties in MIN/MAX keep a's value, which — with
// partitions merged in order — reproduces the serial first-wins choice.
// COUNT, MIN, MAX and integer SUM merge exactly; float SUM/AVG merge the
// compensated partials (partial sum folded through kahanAdd, compensation
// terms added), which keeps the merged result equal to the serial fold.
func (a *aggAcc) merge(b *aggAcc) {
	a.count += b.count
	a.sumI += b.sumI
	a.kahanAdd(b.sumF)
	a.comp += b.comp
	a.isFloat = a.isFloat || b.isFloat
	if b.minV != nil && (a.minV == nil || Compare(b.minV, a.minV) < 0) {
		a.minV = b.minV
	}
	if b.maxV != nil && (a.maxV == nil || Compare(b.maxV, a.maxV) > 0) {
		a.maxV = b.maxV
	}
}

func (a *aggAcc) add(call *FuncCall, env *RowEnv) error {
	if call.Star {
		a.count++
		return nil
	}
	if len(call.Args) != 1 {
		return fmt.Errorf("sqldb: %s expects one argument", call.Name)
	}
	v, err := call.Args[0].Eval(env)
	if err != nil {
		return err
	}
	if v == nil {
		return nil // aggregates skip NULLs
	}
	return a.addValue(call.Name, v)
}

// addValue folds one non-NULL value — the single accumulation routine
// shared by the row engine (add) and the vectorized generic loops, so
// both legs have identical numeric and error behavior.
func (a *aggAcc) addValue(name string, v Value) error {
	a.count++
	switch name {
	case "SUM", "AVG":
		switch x := v.(type) {
		case int64:
			a.sumI += x
			a.kahanAdd(float64(x))
		case float64:
			a.isFloat = true
			a.kahanAdd(x)
		default:
			return fmt.Errorf("sqldb: %s over non-numeric value %s", name, FormatValue(v))
		}
	case "MIN":
		if a.minV == nil || Compare(v, a.minV) < 0 {
			a.minV = v
		}
	case "MAX":
		if a.maxV == nil || Compare(v, a.maxV) > 0 {
			a.maxV = v
		}
	}
	return nil
}

func (a *aggAcc) result() Value {
	switch a.kind {
	case "COUNT":
		return a.count
	case "SUM":
		if a.count == 0 {
			return nil
		}
		if a.isFloat {
			return a.sumF + a.comp
		}
		return a.sumI
	case "AVG":
		if a.count == 0 {
			return nil
		}
		return (a.sumF + a.comp) / float64(a.count)
	case "MIN":
		return a.minV
	case "MAX":
		return a.maxV
	}
	return nil
}

// ---------------------------------------------------------------------------
// Access-path candidate collection (shared with UPDATE/DELETE)

// collectAccessIDs evaluates a non-ordered index access path into the
// candidate row IDs, sorted ascending so emission matches full-scan order.
func collectAccessIDs(a *accessPlan, penv *RowEnv) ([]int64, error) {
	switch a.kind {
	case accessEq:
		v, err := a.key.Eval(penv)
		if err != nil {
			return nil, err
		}
		ids := a.idx.Lookup(v)
		sortInt64s(ids)
		return ids, nil
	case accessIn:
		// Deduplicate the item values through a hash-bucketed set: the
		// hashKey narrows candidates to one bucket, Compare settles exact
		// equality inside it (hashKey folds int64s beyond 2^53 onto the
		// same float, so it alone would drop Compare-distinct values).
		seen := make(map[hashKey][]Value, len(a.items))
		var ids []int64
		for _, item := range a.items {
			v, err := item.Eval(penv)
			if err != nil {
				return nil, err
			}
			if v == nil {
				continue // NULL matches nothing under IN
			}
			hk := makeHashKey(v)
			dup := false
			for _, prev := range seen[hk] {
				if Compare(prev, v) == 0 {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			seen[hk] = append(seen[hk], v)
			ids = append(ids, a.idx.Lookup(v)...)
		}
		// Hash indexes bucket by hashKey, so Compare-distinct values that
		// share a bucket return overlapping postings; dedup after sorting.
		sortInt64s(ids)
		return dedupSortedInt64s(ids), nil
	case accessRange:
		lo, hi, hasLo, hasHi, empty, err := a.evalBounds(penv)
		if err != nil || empty {
			return nil, err
		}
		var ids []int64
		a.idx.Range(lo, hi, hasLo, hasHi, a.loIncl, a.hiIncl, func(_ Value, id int64) bool {
			ids = append(ids, id)
			return true
		})
		// Under MVCC a row's chain can hold entries under several keys of
		// the same index (set semantics, vacuumed lazily), so one ID may
		// appear under multiple in-range keys.
		sortInt64s(ids)
		return dedupSortedInt64s(ids), nil
	}
	return nil, fmt.Errorf("sqldb: internal: access path has no candidate IDs")
}

// evalBounds evaluates the range bounds against the execution's parameters.
// A NULL bound means the originating predicate can never be true, reported
// as empty.
func (a *accessPlan) evalBounds(penv *RowEnv) (lo, hi Value, hasLo, hasHi, empty bool, err error) {
	if a.lo != nil {
		hasLo = true
		if lo, err = a.lo.Eval(penv); err != nil {
			return
		}
		if lo == nil {
			empty = true
			return
		}
	}
	if a.hi != nil {
		hasHi = true
		if hi, err = a.hi.Eval(penv); err != nil {
			return
		}
		if hi == nil {
			empty = true
		}
	}
	return
}

// ---------------------------------------------------------------------------
// Post-processing

func distinctRows(rows, orderKeys [][]Value) ([][]Value, [][]Value) {
	seen := make(map[string]bool, len(rows))
	var outR, outK [][]Value
	for i, row := range rows {
		var kb strings.Builder
		for _, v := range row {
			hk := makeHashKey(v)
			fmt.Fprintf(&kb, "%c|%v|%s;", hk.kind, hk.num, hk.str)
		}
		key := kb.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		outR = append(outR, row)
		if orderKeys != nil {
			outK = append(outK, orderKeys[i])
		}
	}
	if orderKeys == nil {
		return outR, nil
	}
	return outR, outK
}

func sortRows(rows, keys [][]Value, order []OrderItem) {
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		for i, o := range order {
			c := Compare(ka[i], kb[i])
			if c == 0 {
				continue
			}
			if o.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	sortedR := make([][]Value, len(rows))
	for i, j := range idx {
		sortedR[i] = rows[j]
	}
	copy(rows, sortedR)
}

func (ex *selectExec) applyLimit(rows [][]Value) ([][]Value, error) {
	st := ex.p.st
	if st.Offset != nil {
		n, err := ex.evalNonNegInt(st.Offset, "OFFSET")
		if err != nil {
			return nil, err
		}
		if int(n) >= len(rows) {
			rows = nil
		} else {
			rows = rows[n:]
		}
	}
	if st.Limit != nil {
		n, err := ex.evalNonNegInt(st.Limit, "LIMIT")
		if err != nil {
			return nil, err
		}
		if int(n) < len(rows) {
			rows = rows[:n]
		}
	}
	return rows, nil
}
