package sqldb

import (
	"fmt"
	"sort"
	"strings"
)

// ResultSet is the materialized output of a SELECT.
type ResultSet struct {
	Columns []string
	Rows    [][]Value
}

// Len returns the number of result rows.
func (r *ResultSet) Len() int { return len(r.Rows) }

// relBinding records where one relation's columns live in the row
// environment.
type relBinding struct {
	table *Table
	qual  string
	off   int
	width int
}

// selectExec carries the per-execution state of one SELECT: the row
// environment (values + parameters + aggregate slots), hash-join tables and
// the early-exit limit. The plan itself is shared and immutable.
type selectExec struct {
	db  *DB
	p   *selectPlan
	env *RowEnv

	// limitTarget is the number of output rows after which row production
	// stops (LIMIT+OFFSET pushdown); active only when hasTarget is set.
	limitTarget int
	hasTarget   bool
}

// aggSlot reads a precomputed aggregate value for the current group.
type aggSlot struct {
	idx  int
	name string
}

// Eval returns the aggregate value for the group being projected.
func (a *aggSlot) Eval(env *RowEnv) (Value, error) { return env.aggVals[a.idx], nil }
func (a *aggSlot) String() string                  { return a.name }

// fixedCol reads a pre-resolved environment position (used by star
// expansion, avoiding name ambiguity issues for duplicate column names).
type fixedCol struct {
	pos int
}

// Eval returns the environment value at the fixed position.
func (f *fixedCol) Eval(env *RowEnv) (Value, error) { return env.vals[f.pos], nil }
func (f *fixedCol) String() string                  { return fmt.Sprintf("col#%d", f.pos) }

func (db *DB) executeSelect(p *selectPlan, args []Value) (*ResultSet, error) {
	ex := &selectExec{db: db, p: p, env: p.newEnv(args)}
	ex.computeLimitTarget()

	var out [][]Value
	var orderKeys [][]Value
	var err error
	if p.grouped {
		out, orderKeys, err = ex.runGrouped()
	} else {
		out, orderKeys, err = ex.runSimple()
	}
	if err != nil {
		return nil, err
	}

	if p.st.Distinct {
		out, orderKeys = distinctRows(out, orderKeys)
	}
	if len(p.st.OrderBy) > 0 && !p.orderSatisfied {
		sortRows(out, orderKeys, p.st.OrderBy)
	}
	out, err = ex.applyLimit(out)
	if err != nil {
		return nil, err
	}
	return &ResultSet{Columns: p.projNames, Rows: out}, nil
}

// needOrderKeys reports whether per-row sort keys must be collected (only
// when a sort actually runs afterwards).
func (ex *selectExec) needOrderKeys() bool {
	return len(ex.p.orderExprs) > 0 && !ex.p.orderSatisfied
}

// computeLimitTarget enables early row-production exit when the plan emits
// rows in final order (or no order is requested) and LIMIT is present.
// Errors are ignored here; applyLimit re-evaluates and reports them.
func (ex *selectExec) computeLimitTarget() {
	p := ex.p
	if p.grouped || p.st.Distinct || p.st.Limit == nil {
		return
	}
	if len(p.st.OrderBy) > 0 && !p.orderSatisfied {
		return
	}
	limit, err := p.st.Limit.Eval(ex.env)
	n, ok := limit.(int64)
	if err != nil || !ok || n < 0 {
		return
	}
	var off int64
	if p.st.Offset != nil {
		v, err := p.st.Offset.Eval(ex.env)
		o, ok := v.(int64)
		if err != nil || !ok || o < 0 {
			return
		}
		off = o
	}
	// Huge limits (e.g. LIMIT max-int as the "no limit, just offset" idiom)
	// would overflow n+off — and int(n+off) must also fit a 32-bit int —
	// and early exit buys nothing there, so skip it.
	const maxTarget = 1 << 30
	if n >= maxTarget || off >= maxTarget {
		return
	}
	ex.limitTarget = int(n + off)
	ex.hasTarget = true
}

// ---------------------------------------------------------------------------
// Row production (access path + joins)

// forEachJoinedRow streams every joined row combination that satisfies the
// join conditions into fn, with values already placed in ex.env.
func (ex *selectExec) forEachJoinedRow(fn func() (bool, error)) error {
	p := ex.p
	joins := make([]*joinExec, len(p.joins))
	for i := range p.joins {
		joins[i] = &joinExec{plan: &p.joins[i], rel: p.rels[i+1]}
		joins[i].init(ex)
	}

	var produce func(level int) (bool, error)
	produce = func(level int) (bool, error) {
		if level == len(joins) {
			return fn()
		}
		return joins[level].emit(ex, func() (bool, error) { return produce(level + 1) })
	}

	base := p.rels[0]
	emitBase := func(row []Value) (bool, error) {
		ex.env.SetRow(base.off, row)
		return produce(0)
	}
	return ex.emitBaseRows(base, emitBase)
}

// emitBaseRows produces the base relation's candidate rows according to the
// plan's access path.
func (ex *selectExec) emitBaseRows(base relBinding, emit func([]Value) (bool, error)) error {
	a := &ex.p.access
	c := &ex.db.plans
	if a.kind == accessScan {
		c.fullScans.Add(1)
		var scanErr error
		base.table.Scan(func(_ int64, row []Value) bool {
			cont, err := emit(row)
			if err != nil {
				scanErr = err
				return false
			}
			return cont
		})
		return scanErr
	}
	if a.ordered {
		c.orderedScans.Add(1)
		return ex.emitOrdered(base, emit)
	}
	switch a.kind {
	case accessEq:
		c.indexEq.Add(1)
	case accessIn:
		c.indexIn.Add(1)
	case accessRange:
		c.indexRange.Add(1)
	}
	ids, err := collectAccessIDs(a, ex.env)
	if err != nil {
		return err
	}
	for _, id := range ids {
		row := base.table.Get(id)
		if row == nil {
			continue
		}
		cont, err := emit(row)
		if err != nil {
			return err
		}
		if !cont {
			return nil
		}
	}
	return nil
}

// collectAccessIDs evaluates a non-ordered index access path into the
// candidate row IDs, sorted ascending so emission matches full-scan order.
func collectAccessIDs(a *accessPlan, penv *RowEnv) ([]int64, error) {
	switch a.kind {
	case accessEq:
		v, err := a.key.Eval(penv)
		if err != nil {
			return nil, err
		}
		ids := a.idx.Lookup(v)
		sortInt64s(ids)
		return ids, nil
	case accessIn:
		// Deduplicate the item values through a hash-bucketed set: the
		// hashKey narrows candidates to one bucket, Compare settles exact
		// equality inside it (hashKey folds int64s beyond 2^53 onto the
		// same float, so it alone would drop Compare-distinct values).
		seen := make(map[hashKey][]Value, len(a.items))
		var ids []int64
		for _, item := range a.items {
			v, err := item.Eval(penv)
			if err != nil {
				return nil, err
			}
			if v == nil {
				continue // NULL matches nothing under IN
			}
			hk := makeHashKey(v)
			dup := false
			for _, prev := range seen[hk] {
				if Compare(prev, v) == 0 {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			seen[hk] = append(seen[hk], v)
			ids = append(ids, a.idx.Lookup(v)...)
		}
		// Hash indexes bucket by hashKey, so Compare-distinct values that
		// share a bucket return overlapping postings; dedup after sorting.
		sortInt64s(ids)
		return dedupSortedInt64s(ids), nil
	case accessRange:
		lo, hi, hasLo, hasHi, empty, err := a.evalBounds(penv)
		if err != nil || empty {
			return nil, err
		}
		var ids []int64
		a.idx.Range(lo, hi, hasLo, hasHi, a.loIncl, a.hiIncl, func(_ Value, id int64) bool {
			ids = append(ids, id)
			return true
		})
		sortInt64s(ids)
		return ids, nil
	}
	return nil, fmt.Errorf("sqldb: internal: access path has no candidate IDs")
}

// evalBounds evaluates the range bounds against the execution's parameters.
// A NULL bound means the originating predicate can never be true, reported
// as empty.
func (a *accessPlan) evalBounds(penv *RowEnv) (lo, hi Value, hasLo, hasHi, empty bool, err error) {
	if a.lo != nil {
		hasLo = true
		if lo, err = a.lo.Eval(penv); err != nil {
			return
		}
		if lo == nil {
			empty = true
			return
		}
	}
	if a.hi != nil {
		hasHi = true
		if hi, err = a.hi.Eval(penv); err != nil {
			return
		}
		if hi == nil {
			empty = true
		}
	}
	return
}

// emitOrdered walks a B-tree index in (possibly descending) key order,
// emitting rows in the statement's ORDER BY order. Rows with NULL keys are
// absent from the tree; a pure ordering traversal (no range bounds) serves
// them at the NULL end of the order. When bounds exist they come from a
// WHERE range predicate, which a NULL key can never satisfy.
func (ex *selectExec) emitOrdered(base relBinding, emit func([]Value) (bool, error)) error {
	a := &ex.p.access
	lo, hi, hasLo, hasHi, empty, err := a.evalBounds(ex.env)
	if err != nil || empty {
		return err
	}
	emitID := func(id int64) (bool, error) {
		row := base.table.Get(id)
		if row == nil {
			return true, nil
		}
		return emit(row)
	}
	emitNulls := func() (bool, error) {
		for _, id := range a.idx.NullRowIDs() {
			cont, err := emitID(id)
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	}
	includeNulls := !hasLo && !hasHi

	if !a.desc {
		if includeNulls { // NULL sorts first ascending
			cont, err := emitNulls()
			if err != nil || !cont {
				return err
			}
		}
		var stopErr error
		a.idx.Range(lo, hi, hasLo, hasHi, a.loIncl, a.hiIncl, func(_ Value, id int64) bool {
			cont, err := emitID(id)
			if err != nil {
				stopErr = err
				return false
			}
			return cont
		})
		return stopErr
	}

	// Descending: the tree yields ties in descending row-ID order, but the
	// stable sort this traversal replaces keeps ties in ascending row-ID
	// order. Buffer each run of equal keys and emit it reversed.
	var runKey Value
	var run []int64
	flush := func() (bool, error) {
		for i := len(run) - 1; i >= 0; i-- {
			cont, err := emitID(run[i])
			if err != nil || !cont {
				return cont, err
			}
		}
		run = run[:0]
		return true, nil
	}
	var stopErr error
	stopped := false
	a.idx.RangeDesc(lo, hi, hasLo, hasHi, a.loIncl, a.hiIncl, func(key Value, id int64) bool {
		if len(run) > 0 && Compare(key, runKey) != 0 {
			cont, err := flush()
			if err != nil {
				stopErr = err
				return false
			}
			if !cont {
				stopped = true
				return false
			}
		}
		runKey = key
		run = append(run, id)
		return true
	})
	if stopErr != nil || stopped {
		return stopErr
	}
	if cont, err := flush(); err != nil || !cont {
		return err
	}
	if includeNulls { // NULL sorts last descending
		if _, err := emitNulls(); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Join execution

// joinExec holds the per-execution state for one join clause.
type joinExec struct {
	plan *joinPlan
	rel  relBinding
	// hash is built once per execution for the joinHashBuild strategy.
	hash map[hashKey][][]Value
}

// init builds per-execution join state and counts the strategy that runs.
func (je *joinExec) init(ex *selectExec) {
	switch je.plan.strategy {
	case joinHashBuild:
		ex.db.plans.hashJoins.Add(1)
		hash := make(map[hashKey][][]Value)
		col := je.plan.rightCol
		je.rel.table.Scan(func(_ int64, row []Value) bool {
			k := row[col]
			if k == nil {
				return true
			}
			hk := makeHashKey(k)
			hash[hk] = append(hash[hk], row)
			return true
		})
		je.hash = hash
	case joinIndexLoop:
		ex.db.plans.indexJoins.Add(1)
	default:
		ex.db.plans.nestedJoins.Add(1)
	}
}

// emit produces all right-row matches for the current left tuple.
func (je *joinExec) emit(ex *selectExec, produce func() (bool, error)) (bool, error) {
	matched := false
	tryRow := func(row []Value) (bool, error) {
		ex.env.SetRow(je.rel.off, row)
		v, err := je.plan.on.Eval(ex.env)
		if err != nil {
			return false, err
		}
		b, isNull := toBool(v)
		if isNull || !b {
			return true, nil
		}
		matched = true
		return produce()
	}

	switch je.plan.strategy {
	case joinIndexLoop:
		key, err := je.plan.keyExpr.Eval(ex.env)
		if err != nil {
			return false, err
		}
		if key != nil {
			ids := je.plan.idx.Lookup(key)
			sortInt64s(ids) // match the right table's scan order for ties
			for _, id := range ids {
				row := je.rel.table.Get(id)
				if row == nil {
					continue
				}
				cont, err := tryRow(row)
				if err != nil || !cont {
					return cont, err
				}
			}
		}
	case joinHashBuild:
		key, err := je.plan.keyExpr.Eval(ex.env)
		if err != nil {
			return false, err
		}
		if key != nil {
			for _, row := range je.hash[makeHashKey(key)] {
				cont, err := tryRow(row)
				if err != nil || !cont {
					return cont, err
				}
			}
		}
	default:
		var loopErr error
		contAll := true
		je.rel.table.Scan(func(_ int64, row []Value) bool {
			cont, err := tryRow(row)
			if err != nil {
				loopErr = err
				return false
			}
			if !cont {
				contAll = false
				return false
			}
			return true
		})
		if loopErr != nil {
			return false, loopErr
		}
		if !contAll {
			return false, nil
		}
	}

	if !matched && je.plan.kind == JoinLeft {
		ex.env.ClearRow(je.rel.off, je.rel.width)
		return produce()
	}
	return true, nil
}

// ---------------------------------------------------------------------------
// Simple (non-aggregated) execution

func (ex *selectExec) runSimple() ([][]Value, [][]Value, error) {
	if ex.hasTarget && ex.limitTarget == 0 {
		return nil, nil, nil
	}
	where := ex.p.st.Where
	needKeys := ex.needOrderKeys()
	var out [][]Value
	var orderKeys [][]Value
	err := ex.forEachJoinedRow(func() (bool, error) {
		if where != nil {
			v, err := where.Eval(ex.env)
			if err != nil {
				return false, err
			}
			b, isNull := toBool(v)
			if isNull || !b {
				return true, nil
			}
		}
		row := make([]Value, len(ex.p.projExprs))
		for i, e := range ex.p.projExprs {
			v, err := e.Eval(ex.env)
			if err != nil {
				return false, err
			}
			row[i] = v
		}
		out = append(out, row)
		if needKeys {
			keys := make([]Value, len(ex.p.orderExprs))
			for i, e := range ex.p.orderExprs {
				v, err := e.Eval(ex.env)
				if err != nil {
					return false, err
				}
				keys[i] = v
			}
			orderKeys = append(orderKeys, keys)
		}
		if ex.hasTarget && len(out) >= ex.limitTarget {
			ex.db.plans.earlyLimitHit.Add(1)
			return false, nil
		}
		return true, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return out, orderKeys, nil
}

// ---------------------------------------------------------------------------
// Grouped (aggregate) execution

type groupState struct {
	keyVals []Value
	repRow  []Value // environment snapshot of the first row in the group
	accs    []aggAcc
}

func (ex *selectExec) runGrouped() ([][]Value, [][]Value, error) {
	p := ex.p
	groups := make(map[string]*groupState)
	var order []string

	err := ex.forEachJoinedRow(func() (bool, error) {
		if p.st.Where != nil {
			v, err := p.st.Where.Eval(ex.env)
			if err != nil {
				return false, err
			}
			b, isNull := toBool(v)
			if isNull || !b {
				return true, nil
			}
		}
		keyVals := make([]Value, len(p.st.GroupBy))
		var kb strings.Builder
		for i, g := range p.st.GroupBy {
			v, err := g.Eval(ex.env)
			if err != nil {
				return false, err
			}
			keyVals[i] = v
			hk := makeHashKey(v)
			fmt.Fprintf(&kb, "%c|%v|%s;", hk.kind, hk.num, hk.str)
		}
		key := kb.String()
		gs, ok := groups[key]
		if !ok {
			gs = &groupState{keyVals: keyVals, accs: make([]aggAcc, len(p.aggCalls))}
			for i, call := range p.aggCalls {
				gs.accs[i] = newAggAcc(call)
			}
			gs.repRow = make([]Value, len(ex.env.vals))
			copy(gs.repRow, ex.env.vals)
			groups[key] = gs
			order = append(order, key)
		}
		for i, call := range p.aggCalls {
			if err := gs.accs[i].add(call, ex.env); err != nil {
				return false, err
			}
		}
		return true, nil
	})
	if err != nil {
		return nil, nil, err
	}

	// A global aggregate over zero rows still yields one output row.
	if len(p.st.GroupBy) == 0 && len(groups) == 0 {
		gs := &groupState{accs: make([]aggAcc, len(p.aggCalls))}
		for i, call := range p.aggCalls {
			gs.accs[i] = newAggAcc(call)
		}
		gs.repRow = make([]Value, len(ex.env.vals))
		groups[""] = gs
		order = append(order, "")
	}

	needKeys := ex.needOrderKeys()
	var out [][]Value
	var orderKeys [][]Value
	for _, key := range order {
		gs := groups[key]
		ex.env.SetRow(0, gs.repRow)
		ex.env.aggVals = make([]Value, len(p.aggCalls))
		for i := range p.aggCalls {
			ex.env.aggVals[i] = gs.accs[i].result()
		}
		if p.havingExpr != nil {
			v, err := p.havingExpr.Eval(ex.env)
			if err != nil {
				return nil, nil, err
			}
			b, isNull := toBool(v)
			if isNull || !b {
				continue
			}
		}
		row := make([]Value, len(p.projExprs))
		for i, e := range p.projExprs {
			v, err := e.Eval(ex.env)
			if err != nil {
				return nil, nil, err
			}
			row[i] = v
		}
		out = append(out, row)
		if needKeys {
			keys := make([]Value, len(p.orderExprs))
			for i, e := range p.orderExprs {
				v, err := e.Eval(ex.env)
				if err != nil {
					return nil, nil, err
				}
				keys[i] = v
			}
			orderKeys = append(orderKeys, keys)
		}
	}
	return out, orderKeys, nil
}

// aggAcc accumulates one aggregate function over a group.
type aggAcc struct {
	count   int64
	sumI    int64
	sumF    float64
	isFloat bool
	minV    Value
	maxV    Value
	kind    string
}

func newAggAcc(call *FuncCall) aggAcc { return aggAcc{kind: call.Name} }

func (a *aggAcc) add(call *FuncCall, env *RowEnv) error {
	if call.Star {
		a.count++
		return nil
	}
	if len(call.Args) != 1 {
		return fmt.Errorf("sqldb: %s expects one argument", call.Name)
	}
	v, err := call.Args[0].Eval(env)
	if err != nil {
		return err
	}
	if v == nil {
		return nil // aggregates skip NULLs
	}
	a.count++
	switch call.Name {
	case "SUM", "AVG":
		switch x := v.(type) {
		case int64:
			a.sumI += x
			a.sumF += float64(x)
		case float64:
			a.isFloat = true
			a.sumF += x
		default:
			return fmt.Errorf("sqldb: %s over non-numeric value %s", call.Name, FormatValue(v))
		}
	case "MIN":
		if a.minV == nil || Compare(v, a.minV) < 0 {
			a.minV = v
		}
	case "MAX":
		if a.maxV == nil || Compare(v, a.maxV) > 0 {
			a.maxV = v
		}
	}
	return nil
}

func (a *aggAcc) result() Value {
	switch a.kind {
	case "COUNT":
		return a.count
	case "SUM":
		if a.count == 0 {
			return nil
		}
		if a.isFloat {
			return a.sumF
		}
		return a.sumI
	case "AVG":
		if a.count == 0 {
			return nil
		}
		return a.sumF / float64(a.count)
	case "MIN":
		return a.minV
	case "MAX":
		return a.maxV
	}
	return nil
}

// ---------------------------------------------------------------------------
// Post-processing

func distinctRows(rows, orderKeys [][]Value) ([][]Value, [][]Value) {
	seen := make(map[string]bool, len(rows))
	var outR, outK [][]Value
	for i, row := range rows {
		var kb strings.Builder
		for _, v := range row {
			hk := makeHashKey(v)
			fmt.Fprintf(&kb, "%c|%v|%s;", hk.kind, hk.num, hk.str)
		}
		key := kb.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		outR = append(outR, row)
		if orderKeys != nil {
			outK = append(outK, orderKeys[i])
		}
	}
	if orderKeys == nil {
		return outR, nil
	}
	return outR, outK
}

func sortRows(rows, keys [][]Value, order []OrderItem) {
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		for i, o := range order {
			c := Compare(ka[i], kb[i])
			if c == 0 {
				continue
			}
			if o.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	sortedR := make([][]Value, len(rows))
	for i, j := range idx {
		sortedR[i] = rows[j]
	}
	copy(rows, sortedR)
}

func (ex *selectExec) applyLimit(rows [][]Value) ([][]Value, error) {
	evalInt := func(e Expr, what string) (int64, error) {
		v, err := e.Eval(ex.env)
		if err != nil {
			return 0, err
		}
		n, ok := v.(int64)
		if !ok || n < 0 {
			return 0, fmt.Errorf("sqldb: %s must be a non-negative integer", what)
		}
		return n, nil
	}
	st := ex.p.st
	if st.Offset != nil {
		n, err := evalInt(st.Offset, "OFFSET")
		if err != nil {
			return nil, err
		}
		if int(n) >= len(rows) {
			rows = nil
		} else {
			rows = rows[n:]
		}
	}
	if st.Limit != nil {
		n, err := evalInt(st.Limit, "LIMIT")
		if err != nil {
			return nil, err
		}
		if int(n) < len(rows) {
			rows = rows[:n]
		}
	}
	return rows, nil
}
