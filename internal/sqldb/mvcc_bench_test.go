package sqldb

// MVCC benchmarks: what snapshot isolation costs on the paths lock mode
// already measures (point lookup, scan+filter, grouped aggregate, single
// -row update), plus the contention shape lock mode cannot offer — many
// readers sharing the snapshot tracker with no database lock.

import "testing"

func mvccBenchDB(b *testing.B, rows int) *DB {
	b.Helper()
	db := benchDB(b, rows)
	db.SetMVCC(true)
	return db
}

// Counterpart of BenchmarkPointLookupPK: adds the snapshot acquire/release
// and the per-row version-chain resolve.
func BenchmarkMVCCPointLookup(b *testing.B) {
	db := mvccBenchDB(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Query("SELECT v FROM t WHERE id = ?", i%10000)
		if err != nil {
			b.Fatal(err)
		}
		if rs.Len() != 1 {
			b.Fatal("missing row")
		}
	}
}

// Counterpart of BenchmarkFullScanFilter on the lock-free scan path.
func BenchmarkMVCCScanFilter(b *testing.B) {
	db := mvccBenchDB(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Query("SELECT id FROM t WHERE k < 50 AND v <> 'nope'")
		if err != nil {
			b.Fatal(err)
		}
		if rs.Len() != 5000 {
			b.Fatalf("rows = %d", rs.Len())
		}
	}
}

// Grouped aggregate under MVCC: the batch leg with partition RLock
// chunking instead of lock-free reads.
func BenchmarkMVCCGroupBy(b *testing.B) {
	db := mvccBenchDB(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := db.Query("SELECT k, COUNT(*), MIN(id) FROM t GROUP BY k")
		if err != nil {
			b.Fatal(err)
		}
		if rs.Len() != 100 {
			b.Fatalf("groups = %d", rs.Len())
		}
	}
}

// Writer path: provisional install, first-committer-wins check, epoch
// publication, with the background vacuum goroutine running as it would
// in production.
func BenchmarkMVCCUpdateRow(b *testing.B) {
	db := mvccBenchDB(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec("UPDATE t SET v = ? WHERE id = ?", "upd", i%10000); err != nil {
			b.Fatal(err)
		}
	}
}

// Parallel point readers with no writer: the snapshot tracker mutex is
// the only shared state, so this measures reader-reader scalability.
func BenchmarkMVCCReadersParallel(b *testing.B) {
	db := mvccBenchDB(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			rs, err := db.Query("SELECT v FROM t WHERE id = ?", i%10000)
			if err != nil {
				b.Fatal(err)
			}
			if rs.Len() != 1 {
				b.Fatal("missing row")
			}
			i++
		}
	})
}

// Single-row INSERT with version-chain storage: the PR 5 regression the
// blind two-append bookkeeping shaves (lock mode, matching the historical
// BenchmarkInsertSingleRow shape but on a pre-sized table).
func BenchmarkMVCCInsertRow(b *testing.B) {
	db := mvccBenchDB(b, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec("INSERT INTO t VALUES (?, ?, ?)", i, i%100, "ins"); err != nil {
			b.Fatal(err)
		}
	}
}
