package sqldb

import (
	"fmt"
	"math"
	"strings"
)

// Expr is a SQL expression node evaluated against a row environment.
type Expr interface {
	// Eval computes the expression value for the given environment.
	Eval(env *RowEnv) (Value, error)
	// String renders the expression in SQL-ish syntax for error messages
	// and plan display.
	String() string
}

// RowEnv resolves column references during evaluation. Columns are
// addressed as (qualifier, name) where the qualifier is a table name or
// alias and may be empty for unqualified references.
//
// The environment also carries per-execution state that must never live in
// the (shared, immutable) statement AST: positional arguments for `?`
// placeholders and the current group's aggregate results.
type RowEnv struct {
	cols []envCol
	vals []Value
	// params holds the positional arguments of the current execution.
	params []Value
	// aggVals holds the current group's precomputed aggregate values during
	// projection of a grouped SELECT.
	aggVals []Value
}

// paramEnv builds a minimal environment carrying only positional arguments,
// for evaluating constant expressions (literals and parameters).
func paramEnv(args []Value) *RowEnv { return &RowEnv{params: args} }

type envCol struct {
	qual string // lower-cased table alias, may be ""
	name string // lower-cased column name
}

// NewRowEnv builds an environment for a single relation binding.
func NewRowEnv(qual string, names []string) *RowEnv {
	env := &RowEnv{}
	env.AddRelation(qual, names)
	return env
}

// AddRelation appends the columns of another relation (for joins).
func (e *RowEnv) AddRelation(qual string, names []string) {
	q := strings.ToLower(qual)
	for _, n := range names {
		e.cols = append(e.cols, envCol{qual: q, name: strings.ToLower(n)})
	}
	e.vals = append(e.vals, make([]Value, len(names))...)
}

// SetRow stores values for columns [off, off+len(vals)).
func (e *RowEnv) SetRow(off int, vals []Value) {
	copy(e.vals[off:], vals)
}

// ClearRow sets columns [off, off+n) to NULL (for outer-join padding).
func (e *RowEnv) ClearRow(off, n int) {
	for i := 0; i < n; i++ {
		e.vals[off+i] = nil
	}
}

// Width returns the total number of bound columns.
func (e *RowEnv) Width() int { return len(e.cols) }

// Resolve finds the unique column position matching the reference, or an
// error for unknown / ambiguous references.
func (e *RowEnv) Resolve(qual, name string) (int, error) {
	q, n := strings.ToLower(qual), strings.ToLower(name)
	found := -1
	for i, c := range e.cols {
		if c.name != n {
			continue
		}
		if q != "" && c.qual != q {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("sqldb: ambiguous column reference %q", refString(qual, name))
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("sqldb: unknown column %q", refString(qual, name))
	}
	return found, nil
}

func refString(qual, name string) string {
	if qual == "" {
		return name
	}
	return qual + "." + name
}

// ---------------------------------------------------------------------------
// Expression nodes

// Literal is a constant value.
type Literal struct{ Val Value }

// Eval returns the constant.
func (l *Literal) Eval(*RowEnv) (Value, error) { return l.Val, nil }

func (l *Literal) String() string {
	if s, ok := l.Val.(string); ok {
		return "'" + strings.ReplaceAll(s, "'", "''") + "'"
	}
	return FormatValue(l.Val)
}

// ColumnRef references a column by optional qualifier and name. The
// position is resolved once per statement by bind(); unbound references
// resolve on every evaluation without caching so that a shared AST is never
// mutated during (possibly concurrent) execution.
type ColumnRef struct {
	Qual string
	Name string
	pos  int
	ok   bool
}

// Eval returns the bound column's current value.
func (c *ColumnRef) Eval(env *RowEnv) (Value, error) {
	if !c.ok {
		p, err := env.Resolve(c.Qual, c.Name)
		if err != nil {
			return nil, err
		}
		return env.vals[p], nil
	}
	return env.vals[c.pos], nil
}

func (c *ColumnRef) String() string { return refString(c.Qual, c.Name) }

// bind resolves the column position eagerly so errors surface at plan time.
func (c *ColumnRef) bind(env *RowEnv) error {
	p, err := env.Resolve(c.Qual, c.Name)
	if err != nil {
		return err
	}
	c.pos, c.ok = p, true
	return nil
}

// BinOp identifies a binary operator.
type BinOp int

// Binary operators.
const (
	OpEq BinOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpLike
	OpConcat
)

var binOpNames = map[BinOp]string{
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR", OpAdd: "+", OpSub: "-", OpMul: "*",
	OpDiv: "/", OpMod: "%", OpLike: "LIKE", OpConcat: "||",
}

// Binary applies a binary operator to two sub-expressions.
type Binary struct {
	Op   BinOp
	L, R Expr
}

func (b *Binary) String() string {
	return "(" + b.L.String() + " " + binOpNames[b.Op] + " " + b.R.String() + ")"
}

// Eval applies SQL three-valued logic: comparisons and arithmetic over NULL
// yield NULL; AND/OR short-circuit per Kleene logic.
func (b *Binary) Eval(env *RowEnv) (Value, error) {
	switch b.Op {
	case OpAnd, OpOr:
		return b.evalLogic(env)
	}
	lv, err := b.L.Eval(env)
	if err != nil {
		return nil, err
	}
	rv, err := b.R.Eval(env)
	if err != nil {
		return nil, err
	}
	if lv == nil || rv == nil {
		return nil, nil
	}
	switch b.Op {
	case OpEq:
		return Compare(lv, rv) == 0, nil
	case OpNe:
		return Compare(lv, rv) != 0, nil
	case OpLt:
		return Compare(lv, rv) < 0, nil
	case OpLe:
		return Compare(lv, rv) <= 0, nil
	case OpGt:
		return Compare(lv, rv) > 0, nil
	case OpGe:
		return Compare(lv, rv) >= 0, nil
	case OpLike:
		ls, lok := lv.(string)
		rs, rok := rv.(string)
		if !lok || !rok {
			return nil, fmt.Errorf("sqldb: LIKE requires TEXT operands")
		}
		return likeMatch(ls, rs), nil
	case OpConcat:
		ls, _ := Coerce(lv, TypeText)
		rs, _ := Coerce(rv, TypeText)
		return ls.(string) + rs.(string), nil
	}
	return evalArith(b.Op, lv, rv)
}

func (b *Binary) evalLogic(env *RowEnv) (Value, error) {
	lv, err := b.L.Eval(env)
	if err != nil {
		return nil, err
	}
	lb, lnull := toBool(lv)
	if b.Op == OpAnd && !lnull && !lb {
		return false, nil
	}
	if b.Op == OpOr && !lnull && lb {
		return true, nil
	}
	rv, err := b.R.Eval(env)
	if err != nil {
		return nil, err
	}
	rb, rnull := toBool(rv)
	if b.Op == OpAnd {
		switch {
		case !rnull && !rb:
			return false, nil
		case lnull || rnull:
			return nil, nil
		default:
			return lb && rb, nil
		}
	}
	switch {
	case !rnull && rb:
		return true, nil
	case lnull || rnull:
		return nil, nil
	default:
		return lb || rb, nil
	}
}

func toBool(v Value) (val bool, isNull bool) {
	switch x := v.(type) {
	case nil:
		return false, true
	case bool:
		return x, false
	case int64:
		return x != 0, false
	case float64:
		return x != 0, false
	default:
		return false, true
	}
}

func evalArith(op BinOp, lv, rv Value) (Value, error) {
	li, lInt := lv.(int64)
	ri, rInt := rv.(int64)
	if lInt && rInt {
		switch op {
		case OpAdd:
			return li + ri, nil
		case OpSub:
			return li - ri, nil
		case OpMul:
			return li * ri, nil
		case OpDiv:
			if ri == 0 {
				return nil, fmt.Errorf("sqldb: division by zero")
			}
			return li / ri, nil
		case OpMod:
			if ri == 0 {
				return nil, fmt.Errorf("sqldb: modulo by zero")
			}
			return li % ri, nil
		}
	}
	lf, err := Coerce(lv, TypeFloat)
	if err != nil {
		return nil, fmt.Errorf("sqldb: arithmetic on non-numeric value %s", FormatValue(lv))
	}
	rf, err := Coerce(rv, TypeFloat)
	if err != nil {
		return nil, fmt.Errorf("sqldb: arithmetic on non-numeric value %s", FormatValue(rv))
	}
	x, y := lf.(float64), rf.(float64)
	switch op {
	case OpAdd:
		return x + y, nil
	case OpSub:
		return x - y, nil
	case OpMul:
		return x * y, nil
	case OpDiv:
		if y == 0 {
			return nil, fmt.Errorf("sqldb: division by zero")
		}
		return x / y, nil
	case OpMod:
		if y == 0 {
			return nil, fmt.Errorf("sqldb: modulo by zero")
		}
		return math.Mod(x, y), nil
	}
	return nil, fmt.Errorf("sqldb: unsupported arithmetic operator")
}

// likeMatch implements SQL LIKE with % (any run) and _ (single char)
// wildcards, case-sensitively, using an iterative two-pointer algorithm.
func likeMatch(s, pattern string) bool {
	si, pi := 0, 0
	star, match := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star, match = pi, si
			pi++
		case star >= 0:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// Unary applies NOT or unary minus.
type Unary struct {
	Op string // "NOT" or "-"
	X  Expr
}

func (u *Unary) String() string { return u.Op + " " + u.X.String() }

// Eval evaluates the operand and applies the operator with NULL propagation.
func (u *Unary) Eval(env *RowEnv) (Value, error) {
	v, err := u.X.Eval(env)
	if err != nil {
		return nil, err
	}
	if v == nil {
		return nil, nil
	}
	switch u.Op {
	case "NOT":
		b, isNull := toBool(v)
		if isNull {
			return nil, nil
		}
		return !b, nil
	case "-":
		switch x := v.(type) {
		case int64:
			return -x, nil
		case float64:
			return -x, nil
		}
		return nil, fmt.Errorf("sqldb: unary minus on non-numeric %s", FormatValue(v))
	}
	return nil, fmt.Errorf("sqldb: unknown unary operator %q", u.Op)
}

// IsNull tests `expr IS [NOT] NULL`.
type IsNull struct {
	X      Expr
	Negate bool
}

func (n *IsNull) String() string {
	if n.Negate {
		return n.X.String() + " IS NOT NULL"
	}
	return n.X.String() + " IS NULL"
}

// Eval returns a non-NULL boolean (IS NULL never yields NULL).
func (n *IsNull) Eval(env *RowEnv) (Value, error) {
	v, err := n.X.Eval(env)
	if err != nil {
		return nil, err
	}
	return (v == nil) != n.Negate, nil
}

// InList tests membership of an expression in a literal list.
type InList struct {
	X      Expr
	Items  []Expr
	Negate bool
}

func (in *InList) String() string {
	parts := make([]string, len(in.Items))
	for i, it := range in.Items {
		parts[i] = it.String()
	}
	op := " IN ("
	if in.Negate {
		op = " NOT IN ("
	}
	return in.X.String() + op + strings.Join(parts, ", ") + ")"
}

// Eval implements SQL IN semantics including NULL propagation: x IN (...)
// is NULL when x is NULL or when no item matches but some item is NULL.
func (in *InList) Eval(env *RowEnv) (Value, error) {
	v, err := in.X.Eval(env)
	if err != nil {
		return nil, err
	}
	if v == nil {
		return nil, nil
	}
	sawNull := false
	for _, item := range in.Items {
		iv, err := item.Eval(env)
		if err != nil {
			return nil, err
		}
		if iv == nil {
			sawNull = true
			continue
		}
		if Compare(v, iv) == 0 {
			return !in.Negate, nil
		}
	}
	if sawNull {
		return nil, nil
	}
	return in.Negate, nil
}

// Between tests lo <= x <= hi.
type Between struct {
	X, Lo, Hi Expr
	Negate    bool
}

func (b *Between) String() string {
	op := " BETWEEN "
	if b.Negate {
		op = " NOT BETWEEN "
	}
	return b.X.String() + op + b.Lo.String() + " AND " + b.Hi.String()
}

// Eval evaluates the range check with NULL propagation.
func (b *Between) Eval(env *RowEnv) (Value, error) {
	v, err := b.X.Eval(env)
	if err != nil {
		return nil, err
	}
	lo, err := b.Lo.Eval(env)
	if err != nil {
		return nil, err
	}
	hi, err := b.Hi.Eval(env)
	if err != nil {
		return nil, err
	}
	if v == nil || lo == nil || hi == nil {
		return nil, nil
	}
	res := Compare(v, lo) >= 0 && Compare(v, hi) <= 0
	return res != b.Negate, nil
}

// FuncCall invokes a scalar builtin function. Aggregate functions are
// handled by the executor, not here.
type FuncCall struct {
	Name string // upper-cased
	Args []Expr
	// Star is true for COUNT(*).
	Star bool
}

func (f *FuncCall) String() string {
	if f.Star {
		return f.Name + "(*)"
	}
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return f.Name + "(" + strings.Join(parts, ", ") + ")"
}

// scalarFuncs lists the supported scalar builtins and their implementations.
var scalarFuncs = map[string]func(args []Value) (Value, error){
	"LOWER": func(a []Value) (Value, error) {
		if err := argc("LOWER", a, 1); err != nil {
			return nil, err
		}
		if a[0] == nil {
			return nil, nil
		}
		s, ok := a[0].(string)
		if !ok {
			return nil, fmt.Errorf("sqldb: LOWER expects TEXT")
		}
		return strings.ToLower(s), nil
	},
	"UPPER": func(a []Value) (Value, error) {
		if err := argc("UPPER", a, 1); err != nil {
			return nil, err
		}
		if a[0] == nil {
			return nil, nil
		}
		s, ok := a[0].(string)
		if !ok {
			return nil, fmt.Errorf("sqldb: UPPER expects TEXT")
		}
		return strings.ToUpper(s), nil
	},
	"LENGTH": func(a []Value) (Value, error) {
		if err := argc("LENGTH", a, 1); err != nil {
			return nil, err
		}
		if a[0] == nil {
			return nil, nil
		}
		s, ok := a[0].(string)
		if !ok {
			return nil, fmt.Errorf("sqldb: LENGTH expects TEXT")
		}
		return int64(len(s)), nil
	},
	"ABS": func(a []Value) (Value, error) {
		if err := argc("ABS", a, 1); err != nil {
			return nil, err
		}
		switch x := a[0].(type) {
		case nil:
			return nil, nil
		case int64:
			if x < 0 {
				return -x, nil
			}
			return x, nil
		case float64:
			return math.Abs(x), nil
		}
		return nil, fmt.Errorf("sqldb: ABS expects a numeric argument")
	},
	"COALESCE": func(a []Value) (Value, error) {
		for _, v := range a {
			if v != nil {
				return v, nil
			}
		}
		return nil, nil
	},
	"SUBSTR": func(a []Value) (Value, error) {
		if len(a) != 2 && len(a) != 3 {
			return nil, fmt.Errorf("sqldb: SUBSTR expects 2 or 3 arguments")
		}
		if a[0] == nil || a[1] == nil {
			return nil, nil
		}
		s, ok := a[0].(string)
		if !ok {
			return nil, fmt.Errorf("sqldb: SUBSTR expects TEXT")
		}
		start, ok := a[1].(int64)
		if !ok {
			return nil, fmt.Errorf("sqldb: SUBSTR start must be INTEGER")
		}
		// SQL SUBSTR is 1-based.
		i := int(start) - 1
		if i < 0 {
			i = 0
		}
		if i > len(s) {
			i = len(s)
		}
		end := len(s)
		if len(a) == 3 {
			if a[2] == nil {
				return nil, nil
			}
			n, ok := a[2].(int64)
			if !ok {
				return nil, fmt.Errorf("sqldb: SUBSTR length must be INTEGER")
			}
			if int(n) < 0 {
				n = 0
			}
			if i+int(n) < end {
				end = i + int(n)
			}
		}
		return s[i:end], nil
	},
	"TRIM": func(a []Value) (Value, error) {
		if err := argc("TRIM", a, 1); err != nil {
			return nil, err
		}
		if a[0] == nil {
			return nil, nil
		}
		s, ok := a[0].(string)
		if !ok {
			return nil, fmt.Errorf("sqldb: TRIM expects TEXT")
		}
		return strings.TrimSpace(s), nil
	},
	"MIN2": nil, // placeholder; MIN/MAX are aggregates
}

func argc(name string, args []Value, n int) error {
	if len(args) != n {
		return fmt.Errorf("sqldb: %s expects %d argument(s), got %d", name, n, len(args))
	}
	return nil
}

// aggFuncs lists the recognized aggregate function names.
var aggFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// IsAggregate reports whether the call is an aggregate function.
func (f *FuncCall) IsAggregate() bool { return aggFuncs[f.Name] }

// Eval evaluates a scalar builtin. Aggregates evaluated here is an internal
// error: the executor must rewrite them before row evaluation.
func (f *FuncCall) Eval(env *RowEnv) (Value, error) {
	if f.IsAggregate() {
		return nil, fmt.Errorf("sqldb: aggregate %s used outside of SELECT list or HAVING", f.Name)
	}
	impl, ok := scalarFuncs[f.Name]
	if !ok || impl == nil {
		return nil, fmt.Errorf("sqldb: unknown function %s", f.Name)
	}
	args := make([]Value, len(f.Args))
	for i, a := range f.Args {
		v, err := a.Eval(env)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return impl(args)
}

// aggResult is an executor-internal expression holding a precomputed
// aggregate value for a group.
type aggResult struct {
	val Value
}

func (a *aggResult) Eval(*RowEnv) (Value, error) { return a.val, nil }
func (a *aggResult) String() string              { return FormatValue(a.val) }

// Param is a positional placeholder (`?`) whose value is read from the
// execution environment. Keeping the value out of the AST makes parsed
// statements immutable, so prepared/cached statements can be executed
// concurrently.
type Param struct {
	Pos int // zero-based
}

// Eval returns the argument bound at the parameter's position.
func (p *Param) Eval(env *RowEnv) (Value, error) {
	if env == nil || p.Pos >= len(env.params) {
		return nil, fmt.Errorf("sqldb: not enough arguments: need at least %d", p.Pos+1)
	}
	return env.params[p.Pos], nil
}

func (p *Param) String() string { return "?" }

// walkExpr visits e and all sub-expressions in depth-first order.
func walkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *Binary:
		walkExpr(x.L, fn)
		walkExpr(x.R, fn)
	case *Unary:
		walkExpr(x.X, fn)
	case *IsNull:
		walkExpr(x.X, fn)
	case *InList:
		walkExpr(x.X, fn)
		for _, it := range x.Items {
			walkExpr(it, fn)
		}
	case *Between:
		walkExpr(x.X, fn)
		walkExpr(x.Lo, fn)
		walkExpr(x.Hi, fn)
	case *FuncCall:
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
	}
}

// bindColumns eagerly resolves every column reference in e against env so
// that resolution errors surface at plan time and evaluation never needs to
// mutate the shared AST.
func bindColumns(e Expr, env *RowEnv) error {
	var err error
	walkExpr(e, func(x Expr) {
		if err != nil {
			return
		}
		if c, ok := x.(*ColumnRef); ok && !c.ok {
			err = c.bind(env)
		}
	})
	return err
}

// countParams returns the number of distinct parameter positions in e.
func countParams(e Expr) int {
	max := 0
	walkExpr(e, func(x Expr) {
		if p, ok := x.(*Param); ok && p.Pos+1 > max {
			max = p.Pos + 1
		}
	})
	return max
}
