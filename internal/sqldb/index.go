package sqldb

import "sync"

// IndexKind selects the physical structure backing an index.
type IndexKind int

// Supported index structures.
const (
	// IndexHash supports O(1) equality lookups only.
	IndexHash IndexKind = iota
	// IndexBTree supports ordered traversal and range scans.
	IndexBTree
)

// String returns the SQL spelling used in CREATE INDEX ... USING.
func (k IndexKind) String() string {
	if k == IndexBTree {
		return "BTREE"
	}
	return "HASH"
}

// Index maps one column's values to row IDs. Hash indexes use a bucket map;
// B-tree indexes keep entries ordered for range scans.
//
// Every structural operation synchronizes on the index's own RWMutex:
// writers hold the database writer lock anyway, but MVCC snapshot readers
// probe indexes with no database lock at all, so the per-index lock is
// what keeps a lookup from racing an entry insert. Readers copy matches
// out (Lookup) or finish the traversal (Range) before resolving row
// visibility, so the lock is never held across row access.
type Index struct {
	Name   string
	Column string
	Col    int // column position in the table schema
	Kind   IndexKind
	Unique bool

	mu   sync.RWMutex
	hash map[hashKey][]int64
	tree *btree
	// nullRows tracks rows whose key is NULL; NULL keys are excluded from
	// uniqueness but still need index maintenance bookkeeping.
	nullRows map[int64]bool
}

func newIndex(name, column string, col int, kind IndexKind, unique bool) *Index {
	idx := &Index{Name: name, Column: column, Col: col, Kind: kind, Unique: unique, nullRows: make(map[int64]bool)}
	idx.reset()
	return idx
}

func (idx *Index) reset() {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	idx.nullRows = make(map[int64]bool)
	if idx.Kind == IndexHash {
		idx.hash = make(map[hashKey][]int64)
		idx.tree = nil
	} else {
		idx.tree = newBTree()
		idx.hash = nil
	}
}

func (idx *Index) insert(key Value, row int64) {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	if key == nil {
		idx.nullRows[row] = true
		return
	}
	if idx.Kind == IndexHash {
		k := makeHashKey(key)
		idx.hash[k] = append(idx.hash[k], row)
		return
	}
	idx.tree.Insert(key, row)
}

func (idx *Index) delete(key Value, row int64) {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	if key == nil {
		delete(idx.nullRows, row)
		return
	}
	if idx.Kind == IndexHash {
		k := makeHashKey(key)
		rows := idx.hash[k]
		for i, r := range rows {
			if r == row {
				rows[i] = rows[len(rows)-1]
				rows = rows[:len(rows)-1]
				break
			}
		}
		if len(rows) == 0 {
			delete(idx.hash, k)
		} else {
			idx.hash[k] = rows
		}
		return
	}
	idx.tree.Delete(key, row)
}

func (idx *Index) containsKey(key Value) bool {
	if key == nil {
		return false
	}
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	if idx.Kind == IndexHash {
		return len(idx.hash[makeHashKey(key)]) > 0
	}
	found := false
	idx.tree.AscendRange(key, key, true, true, true, true, func(Value, int64) bool {
		found = true
		return false
	})
	return found
}

// Lookup returns the row IDs whose key equals the given value. NULL keys
// match nothing, per SQL semantics.
func (idx *Index) Lookup(key Value) []int64 {
	if key == nil {
		return nil
	}
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	if idx.Kind == IndexHash {
		rows := idx.hash[makeHashKey(key)]
		out := make([]int64, len(rows))
		copy(out, rows)
		return out
	}
	var out []int64
	idx.tree.AscendRange(key, key, true, true, true, true, func(_ Value, row int64) bool {
		out = append(out, row)
		return true
	})
	return out
}

// Range visits rows with keys in [lo,hi] (bounds optional) in key order.
// Only valid on B-tree indexes.
func (idx *Index) Range(lo, hi Value, hasLo, hasHi, loIncl, hiIncl bool, fn func(key Value, row int64) bool) {
	if idx.Kind != IndexBTree {
		return
	}
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	idx.tree.AscendRange(lo, hi, hasLo, hasHi, loIncl, hiIncl, fn)
}

// RangeDesc visits rows with keys in [lo,hi] (bounds optional) in descending
// key order. Only valid on B-tree indexes.
func (idx *Index) RangeDesc(lo, hi Value, hasLo, hasHi, loIncl, hiIncl bool, fn func(key Value, row int64) bool) {
	if idx.Kind != IndexBTree {
		return
	}
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	idx.tree.DescendRange(lo, hi, hasLo, hasHi, loIncl, hiIncl, fn)
}

// NullRowIDs returns the IDs of rows whose key is NULL, in ascending order.
// Index traversals skip NULL keys, so ordered scans serve them separately.
func (idx *Index) NullRowIDs() []int64 {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	if len(idx.nullRows) == 0 {
		return nil
	}
	out := make([]int64, 0, len(idx.nullRows))
	for id := range idx.nullRows {
		out = append(out, id)
	}
	sortInt64s(out)
	return out
}

// Len returns the number of non-NULL entries in the index.
func (idx *Index) Len() int {
	idx.mu.RLock()
	defer idx.mu.RUnlock()
	if idx.Kind == IndexHash {
		n := 0
		for _, rows := range idx.hash {
			n += len(rows)
		}
		return n
	}
	return idx.tree.Len()
}
