package sqldb

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"fmt"
	"io"
	"sync"
)

// The database/sql driver is registered under this name. DSNs name an
// in-process database instance: two sql.Open calls with the same DSN share
// the same underlying DB.
const DriverName = "gamdb"

var (
	registryMu sync.Mutex
	registry   = map[string]*DB{}
)

func init() {
	sql.Register(DriverName, &sqlDriver{})
}

// OpenNamed returns (creating if needed) the shared in-process database
// bound to the given DSN, for callers that want native access to a database
// also used through database/sql.
func OpenNamed(dsn string) *DB {
	registryMu.Lock()
	defer registryMu.Unlock()
	db, ok := registry[dsn]
	if !ok {
		db = NewDB()
		registry[dsn] = db
	}
	return db
}

// ResetNamed removes the shared database bound to dsn (used by tests).
func ResetNamed(dsn string) {
	registryMu.Lock()
	defer registryMu.Unlock()
	delete(registry, dsn)
}

type sqlDriver struct{}

// Open returns a connection to the in-process database named by the DSN.
func (d *sqlDriver) Open(dsn string) (driver.Conn, error) {
	return &sqlConn{db: OpenNamed(dsn)}, nil
}

type sqlConn struct {
	db *DB
	tx *Tx
}

// Prepare returns a statement handle; the SQL is re-parsed per execution so
// prepared statements are safe for concurrent use.
func (c *sqlConn) Prepare(query string) (driver.Stmt, error) {
	st, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return &sqlStmt{conn: c, query: query, numInput: statementParamCount(st)}, nil
}

// Close releases the connection.
func (c *sqlConn) Close() error { return nil }

// Begin starts a transaction on this connection.
func (c *sqlConn) Begin() (driver.Tx, error) {
	if c.tx != nil {
		return nil, fmt.Errorf("sqldb: connection already in a transaction")
	}
	c.tx = c.db.Begin()
	return &sqlTx{conn: c}, nil
}

// ExecContext implements driver.ExecerContext so Exec bypasses Prepare.
func (c *sqlConn) ExecContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	goArgs := namedToAny(args)
	var res Result
	var err error
	if c.tx != nil {
		res, err = c.tx.Exec(query, goArgs...)
	} else {
		res, err = c.db.Exec(query, goArgs...)
	}
	if err != nil {
		return nil, err
	}
	return sqlResult{res}, nil
}

// QueryContext implements driver.QueryerContext.
func (c *sqlConn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rs, err := c.db.Query(query, namedToAny(args)...)
	if err != nil {
		return nil, err
	}
	return &sqlRows{rs: rs}, nil
}

func namedToAny(args []driver.NamedValue) []any {
	out := make([]any, len(args))
	for i, a := range args {
		out[i] = a.Value
	}
	return out
}

type sqlStmt struct {
	conn     *sqlConn
	query    string
	numInput int
}

// Close releases the statement.
func (s *sqlStmt) Close() error { return nil }

// NumInput reports the number of placeholders.
func (s *sqlStmt) NumInput() int { return s.numInput }

// Exec runs the statement as a write.
func (s *sqlStmt) Exec(args []driver.Value) (driver.Result, error) {
	goArgs := make([]any, len(args))
	for i, a := range args {
		goArgs[i] = a
	}
	var res Result
	var err error
	if s.conn.tx != nil {
		res, err = s.conn.tx.Exec(s.query, goArgs...)
	} else {
		res, err = s.conn.db.Exec(s.query, goArgs...)
	}
	if err != nil {
		return nil, err
	}
	return sqlResult{res}, nil
}

// Query runs the statement as a SELECT.
func (s *sqlStmt) Query(args []driver.Value) (driver.Rows, error) {
	goArgs := make([]any, len(args))
	for i, a := range args {
		goArgs[i] = a
	}
	rs, err := s.conn.db.Query(s.query, goArgs...)
	if err != nil {
		return nil, err
	}
	return &sqlRows{rs: rs}, nil
}

type sqlResult struct{ res Result }

// LastInsertId returns the last AUTOINCREMENT value.
func (r sqlResult) LastInsertId() (int64, error) { return r.res.LastInsertID, nil }

// RowsAffected returns the number of changed rows.
func (r sqlResult) RowsAffected() (int64, error) { return r.res.RowsAffected, nil }

type sqlRows struct {
	rs  *ResultSet
	pos int
}

// Columns returns the result column names.
func (r *sqlRows) Columns() []string { return r.rs.Columns }

// Close releases the cursor.
func (r *sqlRows) Close() error { return nil }

// Next copies the next row into dest or returns io.EOF.
func (r *sqlRows) Next(dest []driver.Value) error {
	if r.pos >= len(r.rs.Rows) {
		return io.EOF
	}
	row := r.rs.Rows[r.pos]
	r.pos++
	for i := range dest {
		dest[i] = row[i]
	}
	return nil
}

type sqlTx struct{ conn *sqlConn }

// Commit finishes the transaction.
func (t *sqlTx) Commit() error {
	tx := t.conn.tx
	t.conn.tx = nil
	if tx == nil {
		return fmt.Errorf("sqldb: no active transaction")
	}
	return tx.Commit()
}

// Rollback aborts the transaction.
func (t *sqlTx) Rollback() error {
	tx := t.conn.tx
	t.conn.tx = nil
	if tx == nil {
		return fmt.Errorf("sqldb: no active transaction")
	}
	return tx.Rollback()
}
