package sqldb

// Vectorized columnar batch execution (ROADMAP item 3). The Volcano cursor
// pays per-row interface dispatch, per-Next lock traffic and per-row
// expression evaluation; the batch leg instead materializes runs of ~1024
// rows at a time straight out of tablePart storage — one lock acquisition
// per batch instead of one per row — converts the referenced columns into
// typed slices (colbatch), and runs the filter/aggregate kernels in
// batch_kernels.go as tight typed loops.
//
// The leg is chosen per execution by the same cardinality machinery as the
// partition-parallel operators: the planner records batch-kernel coverage
// on the plan (selectPlan.batch, compiled in planSelect), and execution
// takes the vectorized path when batch execution is enabled and the table
// clears SetBatchMinRows. Everything the kernels don't cover — point and
// index access, joins, expressions outside the kernel set, pipeline
// breakers' own sort/distinct machinery — falls back to the row cursor,
// so results are byte-identical either way (the planner-equivalence
// oracle forces and checks both legs).
//
// Two producers exist:
//
//   - serialBatchScan walks the global sorted row-ID slice under the
//     caller's database lock (the cursor's per-step read lock, or the
//     single lock QueryEach holds for a whole drain), refilling one
//     colbatch per lock acquisition and re-synchronizing through the table
//     mutation counter exactly like the serial scanProducer.
//   - newBatchScanExchange is the vectorized variant of the PR5 parallel
//     scan: one worker per partition collects (id, row) runs under the
//     partition read lock, evaluates the filter kernels outside any lock
//     (row slices are immutable once published), and ships the surviving
//     rows as batches through the same bounded parBatch channels; the
//     consumer k-way-merges by row ID, so output order matches serial.
//
// Both producers emit original row references; the batch-to-row adapter in
// cursor.go (stepBatch) applies the column projection, keeping the public
// Cursor API, QueryEach and export streaming untouched.

import (
	"sort"
	"sync/atomic"
)

// DefaultBatchMinRows is the cardinality threshold below which eligible
// statements stay on the row cursor: batch materialization has a fixed
// setup cost that a small scan never amortizes.
const DefaultBatchMinRows = 4096

// defaultBatchRows is how many rows travel in one columnar batch.
const defaultBatchRows = 1024

// batchSettings is the DB-level vectorized-execution hint, adjustable at
// runtime without any lock (mirrors parallelSettings).
type batchSettings struct {
	// off disables the vectorized leg entirely (the zero value enables it:
	// batch execution is on by default).
	off atomic.Bool
	// minRows overrides DefaultBatchMinRows when positive.
	minRows atomic.Int64
	// rows overrides defaultBatchRows when positive (tests shrink it to
	// exercise batch-boundary conditions).
	rows atomic.Int32
}

// SetBatchExecution enables or disables the vectorized batch leg (enabled
// by default; disabling forces every statement onto the row cursor).
func (db *DB) SetBatchExecution(on bool) { db.batch.off.Store(!on) }

// BatchExecution reports whether the vectorized batch leg is enabled.
func (db *DB) BatchExecution() bool { return !db.batch.off.Load() }

// SetBatchMinRows sets the row-count threshold below which eligible
// statements stay on the row cursor (0 restores the default).
func (db *DB) SetBatchMinRows(n int64) {
	if n < 0 {
		n = 0
	}
	db.batch.minRows.Store(n)
}

func (db *DB) batchMinRows() int64 {
	if n := db.batch.minRows.Load(); n > 0 {
		return n
	}
	return DefaultBatchMinRows
}

// setBatchRows overrides the per-batch row count (0 restores the default);
// tests use it to exercise batch-boundary edge cases.
func (db *DB) setBatchRows(n int) {
	if n < 0 {
		n = 0
	}
	db.batch.rows.Store(int32(n))
}

func (db *DB) batchRows() int {
	if n := int(db.batch.rows.Load()); n > 0 {
		return n
	}
	return defaultBatchRows
}

// batchEligible reports whether a vectorized operator should run over t:
// batch execution is enabled and the exact scan cardinality clears the
// threshold. (Kernel coverage is the plan's side of the decision.)
func (db *DB) batchEligible(t *Table) bool {
	return db.BatchExecution() && int64(t.RowCount()) >= db.batchMinRows()
}

// BatchStats is a snapshot of the vectorized-execution configuration and
// counters (served as sql_batch on /api/stats).
type BatchStats struct {
	Enabled         bool   `json:"enabled"`
	MinRows         int64  `json:"min_rows"`
	RowsPerBatch    int    `json:"rows_per_batch"`
	BatchScans      uint64 `json:"batch_scans"`
	BatchAggregates uint64 `json:"batch_aggregates"`
}

// BatchStats returns the vectorized-execution counters.
func (db *DB) BatchStats() BatchStats {
	return BatchStats{
		Enabled:         db.BatchExecution(),
		MinRows:         db.batchMinRows(),
		RowsPerBatch:    db.batchRows(),
		BatchScans:      db.plans.batchScans.Load(),
		BatchAggregates: db.plans.batchAggs.Load(),
	}
}

// ---------------------------------------------------------------------------
// Columnar batches

// nullBits is a null bitmap: bit i set means row i of the batch is NULL in
// the extracted column.
type nullBits []uint64

func (n nullBits) set(i int)      { n[i>>6] |= 1 << (uint(i) & 63) }
func (n nullBits) get(i int) bool { return n[i>>6]&(1<<(uint(i)&63)) != 0 }

// colvec is one extracted column of a batch: the typed slice matching the
// declared column type plus a null bitmap. typed=false means at least one
// stored value did not match the declared type (snapshot loads bypass
// coercion) — kernels then fall back to generic loops over the boxed rows,
// which have identical semantics for any value mix.
type colvec struct {
	ok    bool // extracted for the current batch contents
	typ   Type // the type the extraction ran as
	typed bool // the typed slice is complete and trustworthy
	i64   []int64
	f64   []float64
	str   []string
	nulls nullBits
}

// colbatch holds up to batchRows rows column-major: the row IDs, the
// original (immutable) row references, and lazily extracted typed column
// vectors. Extraction happens on demand — only the columns the kernels
// actually touch are ever converted — and always outside storage locks.
type colbatch struct {
	n    int
	ids  []int64
	rows [][]Value
	cols []colvec
}

func newColbatch(width, capRows int) *colbatch {
	return &colbatch{
		ids:  make([]int64, 0, capRows),
		rows: make([][]Value, 0, capRows),
		cols: make([]colvec, width),
	}
}

func (b *colbatch) reset() {
	b.n = 0
	b.ids = b.ids[:0]
	b.rows = b.rows[:0]
	for i := range b.cols {
		b.cols[i].ok = false
	}
}

func (b *colbatch) add(id int64, row []Value) {
	b.ids = append(b.ids, id)
	b.rows = append(b.rows, row)
	b.n++
}

// col returns the extracted vector for column ci, extracting it on first
// use within the current batch. An extraction is only reused when it ran
// as the same type: two kernels can read one column as different types
// (e.g. a comparison as INT, then LIKE as TEXT), and serving the INT
// extraction to the TEXT kernel would index a stale (or empty) slice.
func (b *colbatch) col(ci int, typ Type) *colvec {
	v := &b.cols[ci]
	if !v.ok || v.typ != typ {
		b.extract(ci, typ)
	}
	return v
}

func (b *colbatch) extract(ci int, typ Type) {
	v := &b.cols[ci]
	v.ok, v.typ, v.typed = true, typ, true
	n := b.n
	words := (n + 63) / 64
	if cap(v.nulls) < words {
		v.nulls = make(nullBits, words)
	} else {
		v.nulls = v.nulls[:words]
		for i := range v.nulls {
			v.nulls[i] = 0
		}
	}
	switch typ {
	case TypeInt:
		if cap(v.i64) < n {
			v.i64 = make([]int64, n)
		} else {
			v.i64 = v.i64[:n]
		}
		for i := 0; i < n; i++ {
			switch x := b.rows[i][ci].(type) {
			case nil:
				v.nulls.set(i)
			case int64:
				v.i64[i] = x
			default:
				v.typed = false
				return
			}
		}
	case TypeFloat:
		if cap(v.f64) < n {
			v.f64 = make([]float64, n)
		} else {
			v.f64 = v.f64[:n]
		}
		for i := 0; i < n; i++ {
			switch x := b.rows[i][ci].(type) {
			case nil:
				v.nulls.set(i)
			case float64:
				v.f64[i] = x
			default:
				v.typed = false
				return
			}
		}
	case TypeText:
		if cap(v.str) < n {
			v.str = make([]string, n)
		} else {
			v.str = v.str[:n]
		}
		for i := 0; i < n; i++ {
			switch x := b.rows[i][ci].(type) {
			case nil:
				v.nulls.set(i)
			case string:
				v.str[i] = x
			default:
				v.typed = false
				return
			}
		}
	default:
		// BOOL and untyped columns take the generic boxed loops.
		v.typed = false
	}
}

// ---------------------------------------------------------------------------
// Batch producers

// batchSource is the consumer interface of the vectorized scan leg: merged
// filtered rows (original references, ascending by row ID), (nil, nil) at
// exhaustion. *parallelScan satisfies it too, so the exchange plugs in
// directly.
type batchSource interface {
	next() ([]Value, error)
	close()
}

// serialBatchScan is the single-goroutine batch producer: it refills one
// colbatch per call from the global sorted row-ID slice and runs the
// filter kernels over it, so the per-row cost is a map load plus a typed
// comparison instead of a full expression-tree walk. In lock mode the
// caller holds db.mu (shared) across each next() call — dbCursor takes it
// per step, QueryEach for the whole drain — which is what makes the
// lock-free row reads safe: all storage mutations hold db.mu exclusively.
// Under MVCC no database lock is held; each row resolves through
// Table.get, which takes the partition read lock around the map access
// and picks the version visible at the execution's snapshot.
type serialBatchScan struct {
	t      *Table
	vis    visibility
	filter *boundFilter
	b      *colbatch

	out    parBatch // current filtered run (aliases b's compacted prefix)
	outPos int

	ids    []int64
	pos    int
	lastID int64
	mut    uint64
	first  bool
	done   bool
}

func newSerialBatchScan(ex *selectExec, bs *boundScan) *serialBatchScan {
	t := ex.p.rels[0].table
	return &serialBatchScan{
		t:      t,
		vis:    ex.vis,
		filter: bs.filter,
		b:      newColbatch(len(t.Schema.Columns), ex.db.batchRows()),
		ids:    t.ids.load(),
		first:  true,
	}
}

func (s *serialBatchScan) close() {}

// nextRun returns the remainder of the current filtered run, refilling as
// needed — the run-at-a-time fast path for QueryEach, which amortizes the
// pull machinery as well as the lock over whole batches. A nil run means
// exhaustion. Safe to interleave with next().
func (s *serialBatchScan) nextRun() ([][]Value, error) {
	for {
		if s.outPos < len(s.out.rows) {
			rows := s.out.rows[s.outPos:]
			s.outPos = len(s.out.rows)
			return rows, nil
		}
		if s.done {
			return nil, nil
		}
		if err := s.refill(); err != nil {
			s.done = true
			return nil, err
		}
	}
}

func (s *serialBatchScan) next() ([]Value, error) {
	for {
		if s.outPos < len(s.out.ids) {
			row := s.out.rows[s.outPos]
			s.outPos++
			return row, nil
		}
		if s.done {
			return nil, nil
		}
		if err := s.refill(); err != nil {
			s.done = true
			return nil, err
		}
	}
}

// refill materializes and filters the next batch. The scan position is
// re-synchronized through the table mutation counter exactly like the
// serial scanProducer, so writes between cursor steps never re-emit or
// skip a live row.
func (s *serialBatchScan) refill() error {
	t := s.t
	if s.first {
		s.mut, s.first = t.mut.Load(), false
	} else if m := t.mut.Load(); m != s.mut {
		s.ids = t.ids.load()
		s.pos = sort.Search(len(s.ids), func(i int) bool { return s.ids[i] > s.lastID })
		s.mut = m
	}
	b := s.b
	b.reset()
	max := cap(b.ids)
	for s.pos < len(s.ids) && b.n < max {
		id := s.ids[s.pos]
		s.pos++
		row := t.get(id, s.vis)
		if row == nil {
			continue // tombstone, or a version invisible at this snapshot
		}
		s.lastID = id
		b.add(id, row)
	}
	if s.pos >= len(s.ids) {
		s.done = true
	}
	ids, rows, err := filterBatch(s.filter, b)
	if err != nil {
		return err
	}
	s.out = parBatch{ids: ids, rows: rows}
	s.outPos = 0
	return nil
}

// filterBatch runs the bound filter kernels over b and compacts the
// surviving rows in place, returning the selected prefix. With no filter
// every row survives. The typed column vectors are dead after the kernel
// pass, so in-place compaction of ids/rows is safe.
func filterBatch(f *boundFilter, b *colbatch) ([]int64, [][]Value, error) {
	if f == nil {
		return b.ids, b.rows, nil
	}
	tri, err := f.eval(b)
	if err != nil {
		return nil, nil, err
	}
	k := 0
	for i := 0; i < b.n; i++ {
		if tri[i] == triTrue {
			b.ids[k], b.rows[k] = b.ids[i], b.rows[i]
			k++
		}
	}
	return b.ids[:k], b.rows[:k], nil
}

// newBatchScanExchange starts the vectorized variant of the parallel scan
// exchange: workers ship batches of kernel-filtered (id, row) pairs —
// original row references — and the consumer's batch-to-row adapter
// applies the projection. Caller holds db.mu (shared or exclusive);
// workers capture the partition set and schema generation before it is
// released and synchronize only on partition locks afterwards, exactly
// like the row-path workers.
func newBatchScanExchange(ex *selectExec, bs *boundScan) *parallelScan {
	rel := ex.p.rels[0]
	parts := rel.table.partList()
	ps := &parallelScan{done: make(chan struct{}), streams: make([]*parStream, len(parts))}
	gen := ex.db.gen.Load()
	width := len(rel.table.Schema.Columns)
	rowsPer := ex.db.batchRows()
	for i, part := range parts {
		st := &parStream{ch: make(chan parBatch, parChanDepth), open: true}
		ps.streams[i] = st
		ps.wg.Add(1)
		// Each worker gets its own boundFilter fork: the bound constant
		// tree is shared read-only, the scratch vectors are private.
		go ps.batchWorker(ex.db, ex.vis, part, gen, bs.filter.fork(), width, rowsPer, st.ch)
	}
	return ps
}

// batchWorker streams one partition in columnar batches: runs of live
// (id, row) pairs are pulled under the partition read lock — one
// acquisition per batch — then the filter kernels run outside any lock
// (row slices are immutable once published) and the surviving rows are
// sent. Position re-sync through the partition mutation counter matches
// the row-path worker.
func (ps *parallelScan) batchWorker(db *DB, vis visibility, part *tablePart, gen uint64, filter *boundFilter, width, rowsPer int, ch chan<- parBatch) {
	defer ps.wg.Done()
	defer close(ch)
	// The batches rotate through a fixed ring instead of being copied per
	// send. At most parChanDepth batches sit in the channel plus one held
	// by the consumer plus one being filled here, so with depth+2 buffers
	// a slot is reused only after the FIFO guarantees the consumer has
	// received a later batch from this stream — which it only does after
	// exhausting the earlier one.
	ring := make([]*colbatch, parChanDepth+2)
	for i := range ring {
		ring[i] = newColbatch(width, rowsPer)
	}
	var (
		ri     int
		pos    int
		lastID int64
		mut    uint64
		first  = true
	)
	for {
		b := ring[ri]
		b.reset()
		part.mu.RLock()
		if db.gen.Load() != gen {
			part.mu.RUnlock()
			ps.send(ch, parBatch{err: ErrCursorInvalidated})
			return
		}
		view := part.ids.load()
		if first {
			mut, first = part.mut.Load(), false
		} else if m := part.mut.Load(); m != mut {
			pos = sort.Search(len(view), func(i int) bool { return view[i] > lastID })
			mut = m
		}
		for pos < len(view) && b.n < rowsPer {
			id := view[pos]
			pos++
			row := part.rows[id].resolve(vis)
			if row == nil {
				continue // tombstone, or a version invisible at this snapshot
			}
			lastID = id
			b.add(id, row)
		}
		exhausted := pos >= len(view)
		part.mu.RUnlock()

		ids, rows, err := filterBatch(filter, b)
		if err != nil {
			ps.send(ch, parBatch{err: err})
			return
		}
		if len(ids) > 0 {
			if !ps.send(ch, parBatch{ids: ids, rows: rows}) {
				return
			}
			ri = (ri + 1) % len(ring)
		}
		if exhausted {
			return
		}
	}
}
