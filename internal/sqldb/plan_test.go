package sqldb

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// planTestDB builds a table with hash and B-tree indexes plus data with
// NULLs and duplicate keys.
func planTestDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	mustExec(t, db, "CREATE TABLE p (id INTEGER PRIMARY KEY, k INTEGER, w REAL, s TEXT)")
	mustExec(t, db, "CREATE INDEX idx_pk2 ON p (k)")
	mustExec(t, db, "CREATE INDEX idx_pw ON p (w) USING BTREE")
	for i := 0; i < 200; i++ {
		var w any
		if i%7 != 0 {
			w = float64(i % 50)
		}
		mustExec(t, db, "INSERT INTO p VALUES (?, ?, ?, ?)", i, i%10, w, fmt.Sprintf("s%03d", i))
	}
	return db
}

func TestRangePredicateUsesBTreeIndex(t *testing.T) {
	db := planTestDB(t)
	before := db.PlanStats()
	rs := mustQuery(t, db, "SELECT id FROM p WHERE w >= 10 AND w < 12 ORDER BY id")
	after := db.PlanStats()
	if after.IndexRangeScans != before.IndexRangeScans+1 {
		t.Fatalf("range scan not used: %+v -> %+v", before, after)
	}

	// Same rows as the forced full scan.
	db.SetIndexAccess(false)
	want := mustQuery(t, db, "SELECT id FROM p WHERE w >= 10 AND w < 12 ORDER BY id")
	db.SetIndexAccess(true)
	if fmt.Sprint(rs.Rows) != fmt.Sprint(want.Rows) {
		t.Fatalf("range rows mismatch:\n got %v\nwant %v", rs.Rows, want.Rows)
	}
	if rs.Len() == 0 {
		t.Fatal("range query returned no rows")
	}
}

func TestBetweenUsesBTreeIndex(t *testing.T) {
	db := planTestDB(t)
	before := db.PlanStats()
	rs := mustQuery(t, db, "SELECT COUNT(*) FROM p WHERE w BETWEEN 5 AND 9")
	after := db.PlanStats()
	if after.IndexRangeScans != before.IndexRangeScans+1 {
		t.Fatalf("BETWEEN did not use range scan")
	}
	db.SetIndexAccess(false)
	want := mustQuery(t, db, "SELECT COUNT(*) FROM p WHERE w BETWEEN 5 AND 9")
	if rs.Rows[0][0] != want.Rows[0][0] {
		t.Fatalf("count = %v, want %v", rs.Rows[0][0], want.Rows[0][0])
	}
}

func TestOrderByLimitFromIndex(t *testing.T) {
	db := planTestDB(t)
	for _, q := range []string{
		"SELECT id, w FROM p ORDER BY w LIMIT 5",
		"SELECT id, w FROM p ORDER BY w DESC LIMIT 5",
		"SELECT id, w FROM p ORDER BY w",
		"SELECT id, w FROM p ORDER BY w DESC",
		"SELECT id, w FROM p WHERE w > 40 ORDER BY w LIMIT 3",
		"SELECT id, w FROM p WHERE w > 40 ORDER BY w DESC LIMIT 7 OFFSET 2",
	} {
		before := db.PlanStats()
		got := mustQuery(t, db, q)
		after := db.PlanStats()
		if after.OrderedScans != before.OrderedScans+1 {
			t.Fatalf("%s: ordered scan not used", q)
		}
		db.SetIndexAccess(false)
		want := mustQuery(t, db, q)
		db.SetIndexAccess(true)
		if fmt.Sprint(got.Rows) != fmt.Sprint(want.Rows) {
			t.Fatalf("%s:\n got %v\nwant %v", q, got.Rows, want.Rows)
		}
	}
}

func TestOrderedScanServesNULLs(t *testing.T) {
	db := planTestDB(t)
	asc := mustQuery(t, db, "SELECT w FROM p ORDER BY w")
	if asc.Rows[0][0] != nil {
		t.Fatalf("ascending order must put NULLs first, got %v", asc.Rows[0][0])
	}
	desc := mustQuery(t, db, "SELECT w FROM p ORDER BY w DESC")
	if desc.Rows[len(desc.Rows)-1][0] != nil {
		t.Fatalf("descending order must put NULLs last")
	}
	if asc.Len() != 200 || desc.Len() != 200 {
		t.Fatalf("ordered scans dropped rows: %d/%d", asc.Len(), desc.Len())
	}
}

func TestInListLargeDedup(t *testing.T) {
	db := planTestDB(t)
	// Large IN list with many duplicate items; index union must stay
	// duplicate-free and match the scan result.
	var items []string
	for i := 0; i < 300; i++ {
		items = append(items, fmt.Sprint(i%5))
	}
	q := "SELECT id FROM p WHERE k IN (" + strings.Join(items, ", ") + ") ORDER BY id"
	before := db.PlanStats()
	got := mustQuery(t, db, q)
	after := db.PlanStats()
	if after.IndexInScans != before.IndexInScans+1 {
		t.Fatal("IN list did not use index union")
	}
	db.SetIndexAccess(false)
	want := mustQuery(t, db, q)
	if fmt.Sprint(got.Rows) != fmt.Sprint(want.Rows) {
		t.Fatalf("IN mismatch: got %d rows, want %d", got.Len(), want.Len())
	}
}

func TestUpdateDeleteUseRangeIndex(t *testing.T) {
	db := planTestDB(t)
	before := db.PlanStats()
	res, err := db.Exec("UPDATE p SET s = ? WHERE w > 45", "hot")
	if err != nil {
		t.Fatal(err)
	}
	after := db.PlanStats()
	if after.IndexRangeScans != before.IndexRangeScans+1 {
		t.Fatal("UPDATE did not use range index access")
	}
	want := mustQuery(t, db, "SELECT COUNT(*) FROM p WHERE s = 'hot'")
	if want.Rows[0][0] != res.RowsAffected {
		t.Fatalf("updated %d rows, found %v", res.RowsAffected, want.Rows[0][0])
	}

	before = db.PlanStats()
	res, err = db.Exec("DELETE FROM p WHERE k IN (3, 4, 3)")
	if err != nil {
		t.Fatal(err)
	}
	after = db.PlanStats()
	if after.IndexInScans != before.IndexInScans+1 {
		t.Fatal("DELETE did not use IN index access")
	}
	if res.RowsAffected != 40 {
		t.Fatalf("deleted %d rows, want 40", res.RowsAffected)
	}
}

func TestIndexNestedLoopJoin(t *testing.T) {
	db := planTestDB(t)
	mustExec(t, db, "CREATE TABLE dim (k INTEGER, label TEXT)")
	for i := 0; i < 10; i++ {
		mustExec(t, db, "INSERT INTO dim VALUES (?, ?)", i, fmt.Sprintf("d%d", i))
	}
	mustExec(t, db, "CREATE INDEX idx_dim_k ON dim (k)")

	before := db.PlanStats()
	got := mustQuery(t, db, "SELECT p.id, dim.label FROM p JOIN dim ON p.k = dim.k ORDER BY p.id")
	after := db.PlanStats()
	if after.IndexJoins != before.IndexJoins+1 {
		t.Fatal("join did not use index nested loop")
	}
	db.SetIndexAccess(false)
	want := mustQuery(t, db, "SELECT p.id, dim.label FROM p JOIN dim ON p.k = dim.k ORDER BY p.id")
	db.SetIndexAccess(true)
	if fmt.Sprint(got.Rows) != fmt.Sprint(want.Rows) {
		t.Fatalf("index join mismatch: %d vs %d rows", got.Len(), want.Len())
	}
	if got.Len() != 200 {
		t.Fatalf("join rows = %d, want 200", got.Len())
	}
}

func TestStmtCacheCountersAndEviction(t *testing.T) {
	db := planTestDB(t)
	base := db.StmtCacheStats()
	q := "SELECT COUNT(*) FROM p WHERE k = ?"
	for i := 0; i < 5; i++ {
		mustQuery(t, db, q, i)
	}
	st := db.StmtCacheStats()
	if st.Hits < base.Hits+4 {
		t.Fatalf("expected >=4 cache hits, got %+v (base %+v)", st, base)
	}

	db.SetStmtCacheCapacity(2)
	for i := 0; i < 10; i++ {
		mustQuery(t, db, fmt.Sprintf("SELECT COUNT(*) FROM p WHERE k = %d", i))
	}
	st = db.StmtCacheStats()
	if st.Entries > 2 {
		t.Fatalf("cache exceeded capacity: %+v", st)
	}

	// Capacity zero: every call misses but still works.
	db.SetStmtCacheCapacity(0)
	pre := db.StmtCacheStats()
	mustQuery(t, db, q, 1)
	mustQuery(t, db, q, 1)
	st = db.StmtCacheStats()
	if st.Hits != pre.Hits || st.Misses != pre.Misses+2 {
		t.Fatalf("disabled cache should always miss: %+v -> %+v", pre, st)
	}
}

func TestPreparedStmtSurvivesDDL(t *testing.T) {
	db := planTestDB(t)
	stmt, err := db.Prepare("SELECT id FROM p WHERE w > 45 ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	first, err := stmt.Query()
	if err != nil {
		t.Fatal(err)
	}

	// Dropping the index invalidates the plan; results must not change.
	mustExec(t, db, "DROP INDEX idx_pw ON p")
	second, err := stmt.Query()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(first.Rows) != fmt.Sprint(second.Rows) {
		t.Fatalf("rows changed after DDL:\n%v\n%v", first.Rows, second.Rows)
	}

	// Dropping the table makes the statement invalid at its next use.
	mustExec(t, db, "DROP TABLE p")
	if _, err := stmt.Query(); err == nil {
		t.Fatal("expected error after DROP TABLE")
	}
}

func TestPreparedStmtExec(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE logbook (id INTEGER PRIMARY KEY AUTOINCREMENT, msg TEXT)")
	ins, err := db.Prepare("INSERT INTO logbook (msg) VALUES (?)")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := ins.Exec(fmt.Sprintf("m%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	rs := mustQuery(t, db, "SELECT COUNT(*) FROM logbook")
	if rs.Rows[0][0] != int64(10) {
		t.Fatalf("count = %v", rs.Rows[0][0])
	}
	if _, err := ins.Query(); err == nil {
		t.Fatal("Query on INSERT statement must fail")
	}
}

func TestTxSharesStatementCache(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE c (v INTEGER)")
	const sql = "INSERT INTO c VALUES (?)"
	if _, err := db.Exec(sql, 1); err != nil {
		t.Fatal(err)
	}
	before := db.StmtCacheStats()
	tx := db.Begin()
	if _, err := tx.Exec(sql, 2); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	after := db.StmtCacheStats()
	if after.Hits != before.Hits+1 {
		t.Fatalf("Tx.Exec should hit the shared cache: %+v -> %+v", before, after)
	}
}

func TestScanAfterDeleteAndRollback(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE s (v INTEGER)")
	for i := 0; i < 500; i++ {
		mustExec(t, db, "INSERT INTO s VALUES (?)", i)
	}
	// Mass delete triggers tombstone compaction.
	if _, err := db.Exec("DELETE FROM s WHERE v < 400"); err != nil {
		t.Fatal(err)
	}
	rs := mustQuery(t, db, "SELECT v FROM s ORDER BY v")
	if rs.Len() != 100 || rs.Rows[0][0] != int64(400) {
		t.Fatalf("post-delete scan wrong: %d rows, first %v", rs.Len(), rs.Rows[0][0])
	}

	// Rolled-back deletes must reappear in scans (restore path).
	tx := db.Begin()
	if _, err := tx.Exec("DELETE FROM s WHERE v >= 450"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	rs = mustQuery(t, db, "SELECT COUNT(*) FROM s")
	if rs.Rows[0][0] != int64(100) {
		t.Fatalf("rollback lost rows: %v", rs.Rows[0][0])
	}
	rs = mustQuery(t, db, "SELECT v FROM s ORDER BY v DESC LIMIT 1")
	if rs.Rows[0][0] != int64(499) {
		t.Fatalf("restored row missing: %v", rs.Rows[0][0])
	}
}

func TestExecTxnControlWhileTxOpen(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE w (v INTEGER)")
	tx := db.Begin()
	defer tx.Rollback()
	// Must error immediately, not block behind the open transaction's
	// writer lock.
	done := make(chan error, 3)
	go func() {
		_, err := db.Exec("COMMIT")
		done <- err
	}()
	go func() {
		_, err := db.Exec("SELECT v FROM w")
		done <- err
	}()
	go func() {
		// Comment-prefixed transaction control must be classified too.
		_, err := db.Exec("-- refresh\nCOMMIT")
		done <- err
	}()
	for i := 0; i < 3; i++ {
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("expected rejection error")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Exec blocked behind open transaction instead of erroring")
		}
	}
}

func TestMissingArgumentErrors(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE m (v INTEGER)")
	// No index, empty table: the WHERE clause is never evaluated, but the
	// missing binding must still error deterministically.
	if _, err := db.Query("SELECT v FROM m WHERE v = ?"); err == nil {
		t.Fatal("expected 'not enough arguments' error")
	}
	if _, err := db.Exec("INSERT INTO m VALUES (?)"); err == nil {
		t.Fatal("expected 'not enough arguments' error on INSERT")
	}
}

func TestLimitRejectsColumnRef(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE l (id INTEGER, k INTEGER)")
	mustExec(t, db, "INSERT INTO l VALUES (1, 2), (2, 3)")
	for _, q := range []string{
		"SELECT id FROM l LIMIT k",
		"SELECT id FROM l LIMIT 1 OFFSET k",
	} {
		if _, err := db.Query(q); err == nil {
			t.Fatalf("%s: expected plan-time rejection", q)
		}
	}
}

func TestHugeLimitWithOffset(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE h (v INTEGER)")
	for i := 0; i < 5; i++ {
		mustExec(t, db, "INSERT INTO h VALUES (?)", i)
	}
	// The "no limit, just offset" idiom: LIMIT max-int must not overflow
	// the early-exit target.
	rs := mustQuery(t, db, fmt.Sprintf("SELECT v FROM h LIMIT %d OFFSET 1", int64(1)<<62))
	if rs.Len() != 4 {
		t.Fatalf("rows = %d, want 4", rs.Len())
	}
}

func TestInListBeyondFloatPrecision(t *testing.T) {
	// 2^53 and 2^53+1 collapse onto the same float64 (and hashKey) but are
	// Compare-distinct; IN-list index access must keep both.
	const big = int64(1) << 53
	for _, kind := range []string{"", " USING BTREE"} {
		db := NewDB()
		mustExec(t, db, "CREATE TABLE b (v INTEGER)")
		mustExec(t, db, "CREATE INDEX idx_bv ON b (v)"+kind)
		mustExec(t, db, "INSERT INTO b VALUES (?), (?)", big, big+1)
		rs := mustQuery(t, db, fmt.Sprintf("SELECT v FROM b WHERE v IN (%d, %d) ORDER BY v", big, big+1))
		if rs.Len() != 2 {
			t.Fatalf("index kind %q: rows = %d, want 2", kind, rs.Len())
		}
	}
}

// TestConcurrentPreparedQueries hammers one shared prepared statement from
// many goroutines while DDL churn forces replans, verifying (under -race)
// that plans are immutable during execution and re-preparation is safe.
func TestConcurrentPreparedQueries(t *testing.T) {
	db := planTestDB(t)
	stmt, err := db.Prepare("SELECT id, w FROM p WHERE w > ? ORDER BY w LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 9)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 100; i++ {
				if _, err := stmt.Query(float64(i % 50)); err != nil {
					done <- err
					return
				}
				if _, err := db.Query("SELECT COUNT(*) FROM p WHERE k = ?", i%10); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	go func() {
		for i := 0; i < 20; i++ {
			if _, err := db.Exec("CREATE INDEX idx_churn ON p (s) USING BTREE"); err != nil {
				done <- err
				return
			}
			if _, err := db.Exec("DROP INDEX idx_churn ON p"); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 9; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestEarlyLimitExit(t *testing.T) {
	db := planTestDB(t)
	before := db.PlanStats()
	rs := mustQuery(t, db, "SELECT id FROM p LIMIT 3")
	after := db.PlanStats()
	if rs.Len() != 3 {
		t.Fatalf("limit rows = %d", rs.Len())
	}
	if after.EarlyLimitHits != before.EarlyLimitHits+1 {
		t.Fatal("LIMIT did not stop the scan early")
	}
	// LIMIT 0 yields nothing.
	rs = mustQuery(t, db, "SELECT id FROM p LIMIT 0")
	if rs.Len() != 0 {
		t.Fatalf("LIMIT 0 returned %d rows", rs.Len())
	}
}
