package sqldb

import "fmt"

// PlanGoldenCase is one representative statement whose EXPLAIN (FORMAT
// JSON) document is committed under testdata/plans/<Name>.json and
// asserted byte-stable by TestPlanGoldens and the `gmbenchdiff -plan`
// CI gate. SQL is the statement without the EXPLAIN prefix.
type PlanGoldenCase struct {
	Name string
	SQL  string
}

// PlanGoldenCases covers every planner decision the plan document can
// express: each access path, each join strategy and outer-join form, the
// serial/parallel/vectorized legs, grouped aggregation, DISTINCT,
// order-satisfying scans with early-exit LIMIT, and the write statements.
// The list is exported (with NewPlanFixtureDB) so the golden test and the
// gmbenchdiff plan gate assert the exact same shapes.
var PlanGoldenCases = []PlanGoldenCase{
	{Name: "point_lookup", SQL: "SELECT symbol FROM genes WHERE id = 42"},
	{Name: "point_param", SQL: "SELECT symbol FROM genes WHERE id = ?"},
	{Name: "range_scan", SQL: "SELECT symbol FROM genes WHERE tss > 1000 AND tss <= 5000"},
	{Name: "in_list", SQL: "SELECT symbol FROM genes WHERE id IN (1, 2, 3)"},
	{Name: "full_scan_filter", SQL: "SELECT symbol FROM genes WHERE symbol LIKE 'g01%'"},
	{Name: "ordered_limit", SQL: "SELECT symbol, tss FROM genes ORDER BY tss LIMIT 10"},
	{Name: "index_join", SQL: "SELECT g.symbol, a.term FROM genes g JOIN annos a ON a.gene_id = g.id"},
	{Name: "hash_join", SQL: "SELECT g.symbol, a.term FROM genes g JOIN annos a ON a.term = g.symbol"},
	{Name: "nested_loop_join", SQL: "SELECT g.symbol, a.term FROM genes g JOIN annos a ON a.gene_id < g.id"},
	{Name: "left_join", SQL: "SELECT g.symbol, a.term FROM genes g LEFT JOIN annos a ON a.gene_id = g.id"},
	{Name: "right_join", SQL: "SELECT g.symbol, a.term FROM annos a RIGHT JOIN genes g ON a.gene_id = g.id"},
	{Name: "cross_join", SQL: "SELECT g.symbol, a.term FROM genes g CROSS JOIN annos a"},
	{Name: "group_aggregate", SQL: "SELECT chrom, COUNT(*) FROM genes GROUP BY chrom"},
	{Name: "distinct_order", SQL: "SELECT DISTINCT chrom FROM genes ORDER BY chrom"},
	{Name: "vectorized_scan", SQL: "SELECT n, val FROM big WHERE val > 100.0"},
	{Name: "vectorized_aggregate", SQL: "SELECT grp, COUNT(*), SUM(val) FROM big GROUP BY grp"},
	{Name: "parallel_scan", SQL: "SELECT n + grp FROM big WHERE val > 100.0"},
	{Name: "update_indexed", SQL: "UPDATE genes SET symbol = 'X' WHERE id = 7"},
	{Name: "delete_range", SQL: "DELETE FROM big WHERE n < 100"},
	{Name: "insert_rows", SQL: "INSERT INTO annos (gene_id, term) VALUES (1, 'GO:1'), (2, 'GO:2')"},
}

// NewPlanFixtureDB builds the deterministic database the golden cases
// compile against. Row counts are chosen so `big` (5000 rows) crosses the
// default 4096-row parallel/vectorized thresholds while `genes` (100) and
// `annos` (301) stay on the serial legs — the plan documents therefore
// exercise all three legs without touching machine-dependent knobs.
func NewPlanFixtureDB() (*DB, error) {
	db := NewDB()
	ddl := []string{
		"CREATE TABLE genes (id INTEGER PRIMARY KEY, symbol TEXT, chrom TEXT, tss INTEGER)",
		"CREATE INDEX idx_genes_tss ON genes (tss) USING BTREE",
		"CREATE TABLE annos (gene_id INTEGER, term TEXT)",
		"CREATE INDEX idx_annos_gene ON annos (gene_id) USING HASH",
		"CREATE TABLE big (n INTEGER, grp INTEGER, val REAL)",
		"CREATE INDEX idx_big_n ON big (n) USING BTREE",
	}
	for _, s := range ddl {
		if _, err := db.Exec(s); err != nil {
			return nil, fmt.Errorf("plan fixture DDL %q: %w", s, err)
		}
	}
	for i := 0; i < 100; i++ {
		_, err := db.Exec("INSERT INTO genes VALUES (?, ?, ?, ?)",
			i+1, fmt.Sprintf("g%03d", i+1), fmt.Sprintf("chr%d", i%5+1), (i*37)%10000)
		if err != nil {
			return nil, err
		}
	}
	for i := 0; i < 100; i++ {
		for k := 0; k < 3; k++ {
			_, err := db.Exec("INSERT INTO annos VALUES (?, ?)",
				i+1, fmt.Sprintf("GO:%04d", i*3+k))
			if err != nil {
				return nil, err
			}
		}
	}
	if _, err := db.Exec("INSERT INTO annos VALUES (9999, 'GO:dangling')"); err != nil {
		return nil, err
	}
	for i := 0; i < 5000; i++ {
		_, err := db.Exec("INSERT INTO big VALUES (?, ?, ?)",
			i, i%16, float64((i*7)%1000))
		if err != nil {
			return nil, err
		}
	}
	return db, nil
}
