// Package sqldb is the embedded relational engine: SQL parsing, planning,
// indexed, partition-parallel and vectorized (columnar batch) execution,
// transactions with undo-log rollback, MVCC snapshot isolation with
// lock-free readers, streaming cursors, and WAL-backed durability with
// group commit and checkpointing.
//
// # Vectorized execution
//
// Full-scan SELECTs and aggregates over tables past SetBatchMinRows
// (default 4096 rows) run on the batch leg: producers materialize ~1024
// rows column-major out of tablePart storage under one lock acquisition
// per batch, typed kernels evaluate the WHERE clause into tri-state
// selection vectors, and the aggregate accumulators fold whole batches
// (GROUP BY through per-batch hash grouping merged via aggAcc.merge,
// float sums Kahan-compensated so every leg agrees bit-for-bit). Point,
// index and range access, joins, and expressions the kernels do not
// cover fall back to the row cursor; a batch-to-row adapter keeps the
// Cursor/QueryEach surface — read-committed per-step visibility, DDL
// invalidation, LIMIT/OFFSET, early Close — identical to the row leg,
// which the planner-equivalence fuzz asserts byte-for-byte.
//
// # Invariants
//
// The concurrency and durability design rests on conventions that the
// compiler cannot check but gmlint (cmd/gmlint) does; code in this package
// must preserve them:
//
//  1. Lock order. Locks are always acquired writer < mu < tablePart.w <
//     Table.histMu < tablePart.mu < commitMu, and the WAL's internally
//     are syncMu < mu. tablePart.w latches are multi-instance: a latched
//     statement acquires several, always in ascending partition order
//     and only via Table.acquireLatches. Release before re-acquiring
//     against the order (see wal.AdvanceTo for the dance).
//
//  2. No blocking under exclusive db locks. fsync-class calls
//     (wal.Durable, File.Sync, durability.wait) and channel operations
//     never run while writer, an exclusive mu, a write latch, commitMu,
//     or a partition lock is held. Commits append to the log inside the
//     exclusive section (log order = commit order) — for latched
//     committers that section is commitMu under shared mu — but wait
//     for durability after unlocking —
//     that window is what lets concurrent committers share one fsync
//     (group commit). Parallel-scan workers take only partition read
//     locks, never mu, so a streaming consumer holding mu shared cannot
//     deadlock them.
//
//  3. Write-ahead before acknowledge. All table-state mutation funnels
//     through executeWrite, and every caller must bind the mutation for
//     the log in the same function: logCommit (auto-commit path), or
//     appending to Tx.logged which Tx.Commit logs as one record. Nothing
//     client-visible — a returned Result, an acknowledgement send — may
//     precede the append. The one exception is recovery replay
//     (applyRecord), which re-executes records that are already in the
//     log.
//
//  4. Schema generation is atomic and accessor-only. db.gen is read
//     lock-free by every cursor step to detect invalidation; it is
//     mutated only by bumpSchemaGen, under the exclusive mu of the DDL
//     (or restore) that invalidates those cursors.
//
//  5. Cursors are closed. Every Cursor obtained from QueryCursor is
//     closed on all paths or handed off; on parallel plans Close is what
//     winds down the worker pool (TestParallelCursorEarlyClose guards
//     the no-leak property).
//
//  6. Durability errors are handled. Errors from WAL, fsync, Close and
//     file-removal calls are never silently dropped; best-effort sites
//     carry a //gmlint:ignore justification.
//
//  7. Partition locks are released on every path. Batch producers and
//     parallel-scan workers hold tablePart.mu for a whole batch; any
//     early return (schema-generation bump, send failure, kernel error)
//     must unlock first — a held partition lock wedges every writer
//     touching that partition (checked by gmlint's partlock).
//
//  8. Version visibility flows through the epoch. Storage is version
//     chains in both modes; a chain's head may carry a provisional
//     version (beg = provisionalBit|txID), visible only to its writing
//     transaction, above committed versions ordered newest-first by
//     commit epoch. A reader resolves the newest version with
//     beg <= its snapshot epoch; the snapshot is captured through
//     snapTracker.acquire so vacuum can never reclaim below a live
//     snapshot. Versions are installed with writeCtx.stamp() and become
//     visible ONLY via publishCommit — which stamps the commit epoch
//     and advances db.epoch last (the release fence), strictly after
//     the commit's WAL append — or are unlinked by rollback. gmlint's
//     mvccepoch checks the publication sites and the append-before-
//     publish order.
//
//  9. Latched writes own their partitions, not the database. An MVCC
//     UPDATE/DELETE on the latched path holds db.mu only SHARED plus
//     the tablePart.w latches of every partition it touches (acquired
//     via the collectLatched prescan/validate loop), so it may mutate
//     row maps (under tablePart.mu) and version chains only in latched
//     partitions, and must keep the WAL append and publishCommit atomic
//     under commitMu — WAL order must equal publication order or serial
//     replay diverges from the concurrent execution. Whole-database
//     operations (DDL, INSERT row-ID allocation, vacuum, checkpoint,
//     Dump, Save, SetMVCC) take mu exclusively, which excludes every
//     latched writer wholesale. Latch sets are released on every path
//     or returned to the caller (checked by gmlint's partlock); a mode
//     check made before taking shared mu must be re-validated under it,
//     because SetMVCC flips the mode under exclusive mu.
package sqldb
