package sqldb

// Background vacuum, snapshot retention, and snapshot-release regression
// tests. The leak tests pin the snapshot tracker to zero after every
// failure shape a statement or cursor can take — a leaked registration
// silently pins the vacuum horizon forever.

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// The background goroutine reclaims version chains on its own: no
// explicit Vacuum call anywhere.
func TestBackgroundVacuumReclaims(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
	for i := 0; i < 20; i++ {
		mustExec(t, db, "INSERT INTO t VALUES (?, ?)", i, "v0")
	}
	db.SetVacuumInterval(2 * time.Millisecond)
	db.SetMVCC(true)
	for r := 0; r < 5; r++ {
		for i := 0; i < 20; i++ {
			mustExec(t, db, "UPDATE t SET v = ? WHERE id = ?", fmt.Sprintf("rev%d", r), i)
		}
	}
	waitFor(t, "background vacuum to reclaim versions", func() bool {
		st := db.MVCCStats()
		return st.BackgroundVacuums > 0 && st.VersionsVacuumed > 0
	})
	// An idle database stops vacuuming: passes need commits to chase.
	st := db.MVCCStats()
	idle := st.BackgroundVacuums
	time.Sleep(20 * time.Millisecond)
	if got := db.MVCCStats().BackgroundVacuums; got > idle+1 {
		t.Fatalf("background vacuum ran %d passes on an idle database", got-idle)
	}
	if got := countRows(t, db.Query, "SELECT COUNT(*) FROM t"); got != 20 {
		t.Fatalf("COUNT(*) = %d after background vacuum, want 20", got)
	}
}

// On a lock-mode database Vacuum is a documented no-op: nothing reclaimed
// and no counter moves.
func TestVacuumLockModeNoOp(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
	for i := 0; i < 10; i++ {
		mustExec(t, db, "INSERT INTO t VALUES (?, ?)", i, "v")
		mustExec(t, db, "UPDATE t SET v = 'w' WHERE id = ?", i)
	}
	if got := db.Vacuum(); got != 0 {
		t.Fatalf("lock-mode Vacuum reclaimed %d versions, want 0", got)
	}
	if st := db.MVCCStats(); st.VacuumRuns != 0 {
		t.Fatalf("lock-mode Vacuum bumped vacuum_runs to %d, want 0", st.VacuumRuns)
	}
}

// A snapshot older than the retention budget is revoked by the background
// pass: the owning cursor and transaction fail with ErrSnapshotTooOld,
// the abort is counted, and the horizon advances past the revoked epoch.
func TestSnapshotRetentionRevokes(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
	for i := 0; i < 10; i++ {
		mustExec(t, db, "INSERT INTO t VALUES (?, ?)", i, "v0")
	}
	db.SetVacuumInterval(2 * time.Millisecond)
	db.SetMVCC(true)
	db.SetSnapshotRetention(10 * time.Millisecond)

	// Cursor leg: pin a snapshot, let commits supersede it, outwait the
	// budget.
	cur, err := db.QueryCursor("SELECT id FROM t ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Next(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "UPDATE t SET v = 'v1' WHERE id = 0")
	waitFor(t, "cursor snapshot revocation", func() bool {
		return db.MVCCStats().SnapshotsAborted > 0
	})
	if _, err := cur.Next(); !errors.Is(err, ErrSnapshotTooOld) {
		t.Fatalf("cursor.Next after revocation = %v, want ErrSnapshotTooOld", err)
	}
	cur.Close()

	// Transaction leg: same shape through Tx.Exec and Tx.Commit.
	aborted := db.MVCCStats().SnapshotsAborted
	tx := db.Begin()
	mustExec(t, db, "UPDATE t SET v = 'v2' WHERE id = 1")
	waitFor(t, "transaction snapshot revocation", func() bool {
		return db.MVCCStats().SnapshotsAborted > aborted
	})
	if _, err := tx.Exec("UPDATE t SET v = 'late' WHERE id = 2"); !errors.Is(err, ErrSnapshotTooOld) {
		t.Fatalf("tx.Exec after revocation = %v, want ErrSnapshotTooOld", err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if st := db.MVCCStats(); st.ActiveSnapshots != 0 {
		t.Fatalf("revoked snapshots still registered: %+v", st)
	}
	// With the stale pins gone the background pass reclaims the
	// superseded versions.
	waitFor(t, "vacuum past the revoked horizon", func() bool {
		return db.MVCCStats().VersionsVacuumed > 0
	})
}

// Every failure shape a read can take must return the snapshot tracker to
// zero, and vacuum must then reclaim at full horizon. Covers the acquire
// sites audited in cursor.go and stmt.go.
func TestSnapshotReleasedOnErrorPaths(t *testing.T) {
	db := mvccDB(t)

	// QueryEach aborted mid-stream by the callback.
	sentinel := errors.New("stop")
	n := 0
	err := db.QueryEach("SELECT id FROM t", func(row []Value) error {
		n++
		if n == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("QueryEach abort returned %v", err)
	}
	if st := db.MVCCStats(); st.ActiveSnapshots != 0 {
		t.Fatalf("QueryEach abort leaked a snapshot: %+v", st)
	}

	// Statement that fails after the snapshot would be taken (unknown
	// column is caught during cursor construction).
	if _, err := db.QueryCursor("SELECT nope FROM t"); err == nil {
		t.Fatal("QueryCursor on unknown column succeeded")
	}
	if _, err := db.Query("SELECT nope FROM t"); err == nil {
		t.Fatal("Query on unknown column succeeded")
	}
	if st := db.MVCCStats(); st.ActiveSnapshots != 0 {
		t.Fatalf("failed statements leaked a snapshot: %+v", st)
	}

	// Cursor invalidated by DDL mid-stream, then abandoned via Close.
	cur, err := db.QueryCursor("SELECT id FROM t ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Next(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, "CREATE INDEX idx_tmp ON t (v)")
	if _, err := cur.Next(); !errors.Is(err, ErrCursorInvalidated) {
		t.Fatalf("Next after DDL = %v, want ErrCursorInvalidated", err)
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if st := db.MVCCStats(); st.ActiveSnapshots != 0 {
		t.Fatalf("invalidated cursor leaked a snapshot: %+v", st)
	}

	// With the tracker empty, vacuum reclaims at the full horizon.
	for i := 0; i < 3; i++ {
		mustExec(t, db, "UPDATE t SET v = ? WHERE id = 5", fmt.Sprintf("r%d", i))
	}
	if got := db.Vacuum(); got == 0 {
		t.Fatal("vacuum reclaimed nothing with no active snapshots")
	}
}
