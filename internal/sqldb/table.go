package sqldb

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// defaultPartitions is the partition count used when the database has no
// explicit setting: one partition per schedulable CPU, so a parallel scan
// can keep every core busy without oversubscribing.
func defaultPartitions() int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 1
}

// tablePart is one hash partition of a table's row storage. Rows are
// assigned by row ID (id mod partition count), so monotone ID allocation
// round-robins inserts across partitions and keeps them balanced.
//
// The partition lock is the synchronization point between parallel scan
// workers and writers: writers (who additionally hold the database's
// exclusive lock) take it around every mutation, and parallel workers —
// which deliberately do NOT touch the database lock, so they can never
// deadlock against a consumer that holds it while draining the exchange —
// take the read side around every batch they pull. Serial readers run
// under the database lock and need no partition lock at all.
type tablePart struct {
	mu   sync.RWMutex
	rows map[int64][]Value

	// ids keeps the partition's live row IDs ascending (tombstones allowed,
	// same scheme as the table-level slice); mut counts structural changes
	// so a parallel worker can re-synchronize its position after concurrent
	// writes, exactly like scanProducer does against the table-level slice.
	ids  []int64
	dead int
	mut  uint64
}

func newTablePart() *tablePart {
	return &tablePart{rows: make(map[int64][]Value)}
}

// compact rewrites the partition's ID slice without tombstones. Caller
// holds p.mu exclusively.
func (p *tablePart) compact() {
	live := p.ids[:0]
	for _, id := range p.ids {
		if _, ok := p.rows[id]; ok {
			live = append(live, id)
		}
	}
	p.ids = live
	p.dead = 0
	p.mut++
}

// Table is the in-memory heap storage for one relation plus its indexes.
// Rows are addressed by a stable, monotonically increasing row ID so that
// indexes can reference rows without caring about physical position.
//
// Row storage is hash-partitioned by row ID: each partition holds its own
// row map, its own sorted live-ID slice and its own lock, so parallel
// operators can give every partition a dedicated worker. The table
// additionally maintains a global sorted ID slice so serial scans keep
// their O(n), merge-free shape.
type Table struct {
	Name    string
	Schema  *Schema
	parts   []*tablePart
	live    int // live rows across all partitions
	nextRow int64
	nextSeq int64 // AUTOINCREMENT counter
	indexes map[string]*Index

	// ids keeps the live row IDs in ascending order so serial scans need no
	// per-call sort or partition merge. Row IDs are allocated monotonically,
	// so inserts append in O(1); deletes leave tombstones (IDs missing from
	// the partition maps) that are compacted away once they outnumber the
	// live rows.
	ids  []int64
	dead int

	// mut counts structural changes to the row set (insert, delete,
	// restore, truncate, repartition — anything that touches the ID
	// slices, including in-place compaction). Open cursors compare it to
	// re-synchronize their scan position after concurrent writes.
	mut uint64
}

// NewTable creates an empty table with the default partition count. A
// unique index is created automatically for the primary key column, if any.
func NewTable(name string, schema *Schema) *Table {
	return NewTablePartitions(name, schema, 0)
}

// NewTablePartitions creates an empty table with n hash partitions
// (n <= 0 selects the default, one per CPU).
func NewTablePartitions(name string, schema *Schema, n int) *Table {
	if n <= 0 {
		n = defaultPartitions()
	}
	t := &Table{
		Name:    name,
		Schema:  schema,
		parts:   make([]*tablePart, n),
		indexes: make(map[string]*Index),
	}
	for i := range t.parts {
		t.parts[i] = newTablePart()
	}
	if pk := schema.PrimaryKeyIndex(); pk >= 0 {
		idx := newIndex(pkIndexName(name), schema.Columns[pk].Name, pk, IndexHash, true)
		t.indexes[idx.Name] = idx
	}
	return t
}

func pkIndexName(table string) string { return "__pk_" + table }

// part returns the partition owning a row ID.
func (t *Table) part(id int64) *tablePart {
	return t.parts[uint64(id)%uint64(len(t.parts))]
}

// PartitionCount returns the number of hash partitions.
func (t *Table) PartitionCount() int { return len(t.parts) }

// PartitionRows returns the live row count of each partition.
func (t *Table) PartitionRows() []int {
	out := make([]int, len(t.parts))
	for i, p := range t.parts {
		out[i] = len(p.rows)
	}
	return out
}

// repartition redistributes the rows over n hash partitions. The old
// partition objects are left untouched, so a parallel worker that still
// holds a reference reads a frozen (pre-repartition) view until its next
// schema-generation check stops it. Caller holds the database exclusively
// and bumps the schema generation.
func (t *Table) repartition(n int) {
	if n <= 0 {
		n = defaultPartitions()
	}
	if n == len(t.parts) {
		return
	}
	parts := make([]*tablePart, n)
	for i := range parts {
		parts[i] = newTablePart()
	}
	live := t.ids[:0]
	for _, id := range t.ids {
		row, ok := t.part(id).rows[id]
		if !ok {
			continue // tombstone
		}
		p := parts[uint64(id)%uint64(len(parts))]
		p.rows[id] = row
		p.ids = append(p.ids, id) // global order ascending => per-part ascending
		live = append(live, id)
	}
	t.parts = parts
	t.ids = live
	t.dead = 0
	t.mut++
}

// RowCount returns the number of live rows.
func (t *Table) RowCount() int { return t.live }

// Insert validates, coerces and stores a full-width row, returning its row
// ID. AUTOINCREMENT columns receive the next sequence value when NULL.
func (t *Table) Insert(vals []Value) (int64, error) {
	if len(vals) != len(t.Schema.Columns) {
		return 0, fmt.Errorf("sqldb: table %s expects %d values, got %d", t.Name, len(t.Schema.Columns), len(vals))
	}
	row := make([]Value, len(vals))
	for i, col := range t.Schema.Columns {
		v := vals[i]
		if v == nil && col.AutoIncrement {
			t.nextSeq++
			v = t.nextSeq
		}
		if v == nil && col.Default != nil {
			v = col.Default
		}
		if v == nil {
			if col.NotNull || col.PrimaryKey {
				return 0, fmt.Errorf("sqldb: NULL in NOT NULL column %s.%s", t.Name, col.Name)
			}
			row[i] = nil
			continue
		}
		cv, err := Coerce(v, col.Type)
		if err != nil {
			return 0, fmt.Errorf("sqldb: column %s.%s: %w", t.Name, col.Name, err)
		}
		if col.AutoIncrement {
			if n, ok := cv.(int64); ok && n > t.nextSeq {
				t.nextSeq = n
			}
		}
		row[i] = cv
	}
	// Unique-index violation check before any mutation.
	for _, idx := range t.indexes {
		if !idx.Unique {
			continue
		}
		key := row[idx.Col]
		if key == nil {
			continue // SQL: NULLs never collide
		}
		if idx.containsKey(key) {
			return 0, &UniqueError{Table: t.Name, Column: idx.Column, Value: key}
		}
	}
	t.nextRow++
	id := t.nextRow
	p := t.part(id)
	p.mu.Lock()
	p.rows[id] = row
	p.ids = append(p.ids, id) // nextRow is monotone, so append keeps order
	p.mut++
	p.mu.Unlock()
	t.ids = append(t.ids, id)
	t.live++
	t.mut++
	for _, idx := range t.indexes {
		idx.insert(row[idx.Col], id)
	}
	return id, nil
}

// UniqueError reports a uniqueness violation on insert or update.
type UniqueError struct {
	Table  string
	Column string
	Value  Value
}

func (e *UniqueError) Error() string {
	return fmt.Sprintf("sqldb: UNIQUE constraint violated: %s.%s = %s", e.Table, e.Column, FormatValue(e.Value))
}

// Get returns the row stored under id, or nil when absent.
func (t *Table) Get(id int64) []Value {
	return t.part(id).rows[id]
}

// Delete removes the row with the given ID, maintaining all indexes.
// It reports whether a row was removed.
func (t *Table) Delete(id int64) bool {
	p := t.part(id)
	row, ok := p.rows[id]
	if !ok {
		return false
	}
	for _, idx := range t.indexes {
		idx.delete(row[idx.Col], id)
	}
	p.mu.Lock()
	delete(p.rows, id)
	p.dead++
	if p.dead > 16 && p.dead*2 > len(p.ids) {
		p.compact()
	}
	p.mu.Unlock()
	t.live--
	t.dead++
	t.mut++
	if t.dead > 64 && t.dead*2 > len(t.ids) {
		t.compactIDs()
	}
	return true
}

// compactIDs rewrites the global ID slice without tombstones.
func (t *Table) compactIDs() {
	live := t.ids[:0]
	for _, id := range t.ids {
		if _, ok := t.part(id).rows[id]; ok {
			live = append(live, id)
		}
	}
	t.ids = live
	t.dead = 0
	t.mut++
}

// spliceID removes id from a sorted ID slice when present, reporting
// whether it was found.
func spliceID(ids []int64, id int64) ([]int64, bool) {
	pos := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	if pos < len(ids) && ids[pos] == id {
		return append(ids[:pos], ids[pos+1:]...), true
	}
	return ids, false
}

// insertID adds id to a sorted ID slice, reporting whether it was already
// present (as a tombstone slot revived in place).
func insertID(ids []int64, id int64) ([]int64, bool) {
	pos := sort.Search(len(ids), func(i int) bool { return ids[i] >= id })
	if pos < len(ids) && ids[pos] == id {
		return ids, true
	}
	ids = append(ids, 0)
	copy(ids[pos+1:], ids[pos:])
	ids[pos] = id
	return ids, false
}

// undoInsert removes a row inserted by a now-rolled-back statement and
// splices its ID out of the ID slices (no tombstone: the rollback also
// returns the ID to the allocator, and a tombstone under a reusable ID
// would collide with the next insert). The spliced ID is almost always
// the last element, so this is O(1) in practice.
func (t *Table) undoInsert(id int64) {
	p := t.part(id)
	row, ok := p.rows[id]
	if !ok {
		return
	}
	for _, idx := range t.indexes {
		idx.delete(row[idx.Col], id)
	}
	p.mu.Lock()
	delete(p.rows, id)
	p.ids, _ = spliceID(p.ids, id)
	p.mut++
	p.mu.Unlock()
	t.ids, _ = spliceID(t.ids, id)
	t.live--
	t.mut++
}

// restore re-inserts a previously deleted row under its original ID,
// maintaining indexes and the sorted ID slices. It backs transaction
// rollback of deletes; the caller guarantees the ID is free.
func (t *Table) restore(id int64, row []Value) {
	p := t.part(id)
	if _, ok := p.rows[id]; ok {
		return
	}
	p.mu.Lock()
	p.rows[id] = row
	var revived bool
	if p.ids, revived = insertID(p.ids, id); revived {
		p.dead--
	}
	p.mut++
	p.mu.Unlock()
	if t.ids, revived = insertID(t.ids, id); revived {
		t.dead-- // tombstone revived in place
	}
	t.live++
	for _, idx := range t.indexes {
		idx.insert(row[idx.Col], id)
	}
	t.mut++
}

// Update replaces the row with the given ID with new values (already
// validated/coerced by the caller via coerceRow) and maintains indexes.
func (t *Table) Update(id int64, newRow []Value) error {
	p := t.part(id)
	old, ok := p.rows[id]
	if !ok {
		return fmt.Errorf("sqldb: row %d not found in %s", id, t.Name)
	}
	for _, idx := range t.indexes {
		if !idx.Unique {
			continue
		}
		nk := newRow[idx.Col]
		if nk == nil {
			continue
		}
		if Equal(old[idx.Col], nk) {
			continue // key unchanged
		}
		if idx.containsKey(nk) {
			return &UniqueError{Table: t.Name, Column: idx.Column, Value: nk}
		}
	}
	for _, idx := range t.indexes {
		if Compare(old[idx.Col], newRow[idx.Col]) != 0 {
			idx.delete(old[idx.Col], id)
			idx.insert(newRow[idx.Col], id)
		}
	}
	p.mu.Lock()
	p.rows[id] = newRow
	p.mu.Unlock()
	return nil
}

// undoUpdate reverts the row with the given ID to its pre-update values
// (transaction rollback). A no-op when the row no longer exists.
func (t *Table) undoUpdate(id int64, old []Value) {
	p := t.part(id)
	cur, ok := p.rows[id]
	if !ok {
		return
	}
	for _, idx := range t.indexes {
		if Compare(cur[idx.Col], old[idx.Col]) != 0 {
			idx.delete(cur[idx.Col], id)
			idx.insert(old[idx.Col], id)
		}
	}
	p.mu.Lock()
	p.rows[id] = old
	p.mu.Unlock()
}

// loadRow installs a row under an explicit ID without constraint checks;
// it backs snapshot/checkpoint loading. Caller sorts the ID slices (via
// finishLoad) once all rows are in.
func (t *Table) loadRow(id int64, row []Value) {
	p := t.part(id)
	p.rows[id] = row
	p.ids = append(p.ids, id)
	t.ids = append(t.ids, id)
	t.live++
	for _, idx := range t.indexes {
		idx.insert(row[idx.Col], id)
	}
}

// finishLoad restores the sorted-ID invariant after a bulk loadRow pass
// whose input order is not trusted.
func (t *Table) finishLoad() {
	sortInt64s(t.ids)
	for _, p := range t.parts {
		sortInt64s(p.ids)
		p.mut++
	}
	t.mut++
}

// coerceRow validates a candidate full row against schema constraints
// (type coercion and NOT NULL), returning the canonical row.
func (t *Table) coerceRow(vals []Value) ([]Value, error) {
	row := make([]Value, len(vals))
	for i, col := range t.Schema.Columns {
		v := vals[i]
		if v == nil {
			if col.NotNull || col.PrimaryKey {
				return nil, fmt.Errorf("sqldb: NULL in NOT NULL column %s.%s", t.Name, col.Name)
			}
			continue
		}
		cv, err := Coerce(v, col.Type)
		if err != nil {
			return nil, fmt.Errorf("sqldb: column %s.%s: %w", t.Name, col.Name, err)
		}
		row[i] = cv
	}
	return row, nil
}

// Scan visits all rows in ascending row-ID order until fn returns false.
// Row-ID order makes scans deterministic, which matters for reproducible
// query output and for the test suite. The global ID slice is maintained
// incrementally on insert/delete, so a scan is O(n) with no sorting and no
// partition merge.
func (t *Table) Scan(fn func(id int64, row []Value) bool) {
	for _, id := range t.ids {
		row, ok := t.part(id).rows[id]
		if !ok {
			continue // tombstone left by Delete
		}
		if !fn(id, row) {
			return
		}
	}
}

// sortInt64s sorts a slice of row IDs ascending.
func sortInt64s(ids []int64) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// dedupSortedInt64s removes adjacent duplicates from a sorted ID slice.
func dedupSortedInt64s(ids []int64) []int64 {
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out
}

// prepIndex validates a CREATE INDEX request and allocates the empty index.
func (t *Table) prepIndex(name, column string, kind IndexKind, unique bool) (*Index, int, error) {
	if _, dup := t.indexes[name]; dup {
		return nil, -1, fmt.Errorf("sqldb: index %q already exists on %s", name, t.Name)
	}
	col := t.Schema.ColumnIndex(column)
	if col < 0 {
		return nil, -1, fmt.Errorf("sqldb: no column %q in table %s", column, t.Name)
	}
	return newIndex(name, t.Schema.Columns[col].Name, col, kind, unique), col, nil
}

// CreateIndex builds a secondary index over one column, populating it from
// existing rows. Unique indexes fail if existing data violates uniqueness.
func (t *Table) CreateIndex(name, column string, kind IndexKind, unique bool) (*Index, error) {
	idx, col, err := t.prepIndex(name, column, kind, unique)
	if err != nil {
		return nil, err
	}
	t.Scan(func(id int64, row []Value) bool {
		key := row[col]
		if unique && key != nil && idx.containsKey(key) {
			err = &UniqueError{Table: t.Name, Column: column, Value: key}
			return false
		}
		idx.insert(key, id)
		return true
	})
	if err != nil {
		return nil, err
	}
	t.indexes[name] = idx
	return idx, nil
}

// indexEntry is one (key, row ID) pair of a per-partition sorted run.
type indexEntry struct {
	key Value
	id  int64
}

// CreateIndexParallel builds a B-tree index from per-partition sorted runs
// built concurrently (the partition worker pattern of parallel.go) and
// k-way-merged into the tree. The caller must hold the database
// exclusively — CREATE INDEX is a DDL write — so the workers read their
// partitions without locking. The resulting tree is identical to a serial
// build: B-tree entries order by (key, row ID) regardless of insertion
// order. Unique violations reproduce the serial error exactly — the serial
// scan fails on the first row (in global row-ID order) whose key was
// already present, i.e. the duplicated key whose second-smallest row ID is
// globally minimal, which the merge pass recomputes.
func (t *Table) CreateIndexParallel(name, column string, unique bool) (*Index, error) {
	idx, col, err := t.prepIndex(name, column, IndexBTree, unique)
	if err != nil {
		return nil, err
	}
	runs := make([][]indexEntry, len(t.parts))
	nullRuns := make([][]int64, len(t.parts))
	var wg sync.WaitGroup
	for i, part := range t.parts {
		wg.Add(1)
		go func(i int, part *tablePart) {
			defer wg.Done()
			entries := make([]indexEntry, 0, len(part.ids))
			var nulls []int64
			for _, id := range part.ids {
				row := part.rows[id]
				if row == nil {
					continue // tombstone
				}
				if key := row[col]; key != nil {
					entries = append(entries, indexEntry{key: key, id: id})
				} else {
					nulls = append(nulls, id)
				}
			}
			sort.Slice(entries, func(a, b int) bool {
				if c := Compare(entries[a].key, entries[b].key); c != 0 {
					return c < 0
				}
				return entries[a].id < entries[b].id
			})
			runs[i] = entries
			nullRuns[i] = nulls
		}(i, part)
	}
	wg.Wait()

	// K-way merge of the sorted runs. For unique indexes, equal keys are
	// adjacent in merge order; the second entry of an equal-key run is the
	// row the serial scan would have failed on for that key, and the
	// smallest such row ID across keys is where the serial scan fails
	// first.
	heads := make([]int, len(runs))
	var (
		prevKey   Value
		runLen    int
		dupKey    Value
		dupSecond int64 = -1
	)
	for {
		best := -1
		for i, run := range runs {
			if heads[i] >= len(run) {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			e, be := run[heads[i]], runs[best][heads[best]]
			if c := Compare(e.key, be.key); c < 0 || (c == 0 && e.id < be.id) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		e := runs[best][heads[best]]
		heads[best]++
		if unique {
			if prevKey != nil && Compare(e.key, prevKey) == 0 {
				runLen++
				if runLen == 2 && (dupSecond < 0 || e.id < dupSecond) {
					dupKey, dupSecond = e.key, e.id
				}
			} else {
				prevKey, runLen = e.key, 1
			}
			if dupSecond >= 0 {
				continue // violation found; finish scanning for the minimum
			}
		}
		idx.insert(e.key, e.id)
	}
	if unique && dupSecond >= 0 {
		return nil, &UniqueError{Table: t.Name, Column: column, Value: dupKey}
	}
	for _, nulls := range nullRuns {
		for _, id := range nulls {
			idx.insert(nil, id)
		}
	}
	t.indexes[name] = idx
	return idx, nil
}

// DropIndex removes a secondary index by name.
func (t *Table) DropIndex(name string) error {
	if _, ok := t.indexes[name]; !ok {
		return fmt.Errorf("sqldb: no index %q on table %s", name, t.Name)
	}
	delete(t.indexes, name)
	return nil
}

// IndexOn returns an index whose key column matches the given column index,
// preferring hash indexes for equality lookups. Returns nil when none exists.
func (t *Table) IndexOn(col int) *Index {
	var best *Index
	for _, idx := range t.indexes {
		if idx.Col != col {
			continue
		}
		if idx.Kind == IndexHash {
			return idx
		}
		best = idx
	}
	return best
}

// BTreeIndexOn returns a B-tree index on the column, for range scans.
func (t *Table) BTreeIndexOn(col int) *Index {
	for _, idx := range t.indexes {
		if idx.Col == col && idx.Kind == IndexBTree {
			return idx
		}
	}
	return nil
}

// Indexes returns the table's indexes in name order.
func (t *Table) Indexes() []*Index {
	names := make([]string, 0, len(t.indexes))
	for n := range t.indexes {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Index, len(names))
	for i, n := range names {
		out[i] = t.indexes[n]
	}
	return out
}

// Truncate removes all rows but keeps schema, index definitions and the
// partition layout.
func (t *Table) Truncate() {
	for _, p := range t.parts {
		p.mu.Lock()
		p.rows = make(map[int64][]Value)
		p.ids = nil
		p.dead = 0
		p.mut++
		p.mu.Unlock()
	}
	t.ids = nil
	t.dead = 0
	t.live = 0
	t.mut++
	for _, idx := range t.indexes {
		idx.reset()
	}
}
