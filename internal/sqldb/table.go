package sqldb

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// defaultPartitions is the partition count used when the database has no
// explicit setting: one partition per schedulable CPU, so a parallel scan
// can keep every core busy without oversubscribing.
func defaultPartitions() int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 1
}

// tablePart is one hash partition of a table's row storage. Rows are
// assigned by row ID (id mod partition count), so monotone ID allocation
// round-robins inserts across partitions and keeps them balanced.
//
// Each row maps to the head of its version chain (see mvcc.go). The
// partition lock is the only synchronization point between lock-free MVCC
// readers (and parallel scan workers) and writers: writers — who
// additionally hold either the database's exclusive lock or this
// partition's write latch — take it around every row-map mutation, and
// readers take the read side just long enough to copy the version-head
// pointer (or materialize a batch) out of the map; version resolution
// itself happens on atomics, outside any lock. Serial lock-mode readers
// run under the database lock and need no partition lock at all.
type tablePart struct {
	mu   sync.RWMutex
	rows map[int64]*rowVersion

	// w is the partition write latch: a latched MVCC UPDATE/DELETE (see
	// latch.go) holds the latches of exactly the partitions it touches —
	// acquired in ascending partition order — instead of the global
	// writer lock, so writers on disjoint partitions run concurrently.
	// The latch spans the whole statement (conflict check through install
	// or undo); p.mu is still taken around each individual map mutation
	// to synchronize with lock-free readers. Lock order: db.mu (shared)
	// < w < Table.histMu < p.mu. Acquired ONLY via Table.acquireLatches.
	w sync.Mutex

	// ids keeps the partition's live row IDs ascending (tombstones allowed,
	// same scheme as the table-level slice), published lock-free so MVCC
	// scans iterate without the partition lock; mut counts structural
	// changes so a parallel worker can re-synchronize its position after
	// concurrent writes, exactly like scanProducer does against the
	// table-level slice.
	ids  idSlice
	dead int
	mut  atomic.Uint64
}

func newTablePart() *tablePart {
	return &tablePart{rows: make(map[int64]*rowVersion)}
}

// compact rewrites the partition's ID slice without tombstones. Caller
// holds p.mu exclusively.
func (p *tablePart) compact() {
	ids := p.ids.load()
	live := make([]int64, 0, len(ids)-p.dead)
	for _, id := range ids {
		if _, ok := p.rows[id]; ok {
			live = append(live, id)
		}
	}
	p.ids.store(live)
	p.dead = 0
	p.mut.Add(1)
}

// Table is the in-memory heap storage for one relation plus its indexes.
// Rows are addressed by a stable, monotonically increasing row ID so that
// indexes can reference rows without caring about physical position.
//
// Row storage is hash-partitioned by row ID: each partition holds its own
// row map, its own sorted live-ID slice and its own lock, so parallel
// operators can give every partition a dedicated worker. The table
// additionally maintains a global sorted ID slice so serial scans keep
// their O(n), merge-free shape. Everything a lock-free MVCC reader
// touches — the partition list, the index map, the ID slices, the row
// count and the mutation counters — is published through atomics;
// mutation happens only under the database writer lock.
type Table struct {
	Name    string
	Schema  *Schema
	parts   atomic.Pointer[[]*tablePart]
	live    atomic.Int64 // live rows across all partitions
	nextRow int64
	nextSeq int64 // AUTOINCREMENT counter
	idx     atomic.Pointer[map[string]*Index]

	// ids keeps the live row IDs in ascending order so serial scans need no
	// per-call sort or partition merge. Row IDs are allocated monotonically,
	// so inserts append in O(1); deletes leave tombstones (IDs missing from
	// the partition maps) that are compacted away once they outnumber the
	// live rows.
	ids  idSlice
	dead int

	// mut counts structural changes to the row set (insert, delete,
	// restore, truncate, repartition — anything that touches the ID
	// slices, including compaction). Open cursors compare it to
	// re-synchronize their scan position after concurrent writes.
	mut atomic.Uint64

	// hist is the set of row IDs carrying version history: a chain longer
	// than one version or a deletion tombstone. Only MVCC writes grow it
	// (lock-mode chains never exceed one version), and vacuum walks
	// exactly this set, so reclamation cost follows the number of
	// versioned rows, not table size — an insert-only workload vacuums in
	// O(1). Guarded by histMu: latched writers on different partitions
	// append to it concurrently (vacuum additionally holds the database
	// exclusively, which keeps its whole pass coherent).
	histMu sync.Mutex
	hist   map[int64]struct{}
}

// NewTable creates an empty table with the default partition count. A
// unique index is created automatically for the primary key column, if any.
func NewTable(name string, schema *Schema) *Table {
	return NewTablePartitions(name, schema, 0)
}

// NewTablePartitions creates an empty table with n hash partitions
// (n <= 0 selects the default, one per CPU).
func NewTablePartitions(name string, schema *Schema, n int) *Table {
	if n <= 0 {
		n = defaultPartitions()
	}
	t := &Table{Name: name, Schema: schema}
	parts := make([]*tablePart, n)
	for i := range parts {
		parts[i] = newTablePart()
	}
	t.parts.Store(&parts)
	indexes := make(map[string]*Index)
	if pk := schema.PrimaryKeyIndex(); pk >= 0 {
		idx := newIndex(pkIndexName(name), schema.Columns[pk].Name, pk, IndexHash, true)
		indexes[idx.Name] = idx
	}
	t.idx.Store(&indexes)
	return t
}

func pkIndexName(table string) string { return "__pk_" + table }

// partList returns the current partition set (published atomically so
// lock-free readers and repartition never race on the slice header).
func (t *Table) partList() []*tablePart { return *t.parts.Load() }

// part returns the partition owning a row ID.
func (t *Table) part(id int64) *tablePart {
	ps := t.partList()
	return ps[uint64(id)%uint64(len(ps))]
}

// indexMap returns the current name → index map. The map is copy-on-write:
// treat it as immutable; mutate only through setIndex/removeIndex under
// the database writer lock.
func (t *Table) indexMap() map[string]*Index { return *t.idx.Load() }

// setIndex publishes a new index under name (copy-on-write, caller holds
// the database exclusively).
func (t *Table) setIndex(name string, idx *Index) {
	old := t.indexMap()
	next := make(map[string]*Index, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = idx
	t.idx.Store(&next)
}

// removeIndex unpublishes the index under name (copy-on-write, caller
// holds the database exclusively).
func (t *Table) removeIndex(name string) {
	old := t.indexMap()
	next := make(map[string]*Index, len(old))
	for k, v := range old {
		if k != name {
			next[k] = v
		}
	}
	t.idx.Store(&next)
}

// PartitionCount returns the number of hash partitions.
func (t *Table) PartitionCount() int { return len(t.partList()) }

// PartitionRows returns the stored row count of each partition (including
// tombstoned version chains awaiting vacuum).
func (t *Table) PartitionRows() []int {
	parts := t.partList()
	out := make([]int, len(parts))
	for i, p := range parts {
		out[i] = len(p.rows)
	}
	return out
}

// repartition redistributes the rows over n hash partitions, carrying
// whole version chains so snapshot visibility is preserved. The old
// partition objects are left untouched, so a parallel worker that still
// holds a reference reads a frozen (pre-repartition) view until its next
// schema-generation check stops it. Caller holds the database exclusively
// and bumps the schema generation.
func (t *Table) repartition(n int) {
	if n <= 0 {
		n = defaultPartitions()
	}
	old := t.partList()
	if n == len(old) {
		return
	}
	parts := make([]*tablePart, n)
	for i := range parts {
		parts[i] = newTablePart()
	}
	ids := t.ids.load()
	live := make([]int64, 0, len(ids)-t.dead)
	for _, id := range ids {
		head, ok := t.part(id).rows[id]
		if !ok {
			continue // tombstone
		}
		p := parts[uint64(id)%uint64(len(parts))]
		p.rows[id] = head
		p.ids.append(id) // global order ascending => per-part ascending
		live = append(live, id)
	}
	t.parts.Store(&parts)
	t.ids.store(live)
	t.dead = 0
	t.mut.Add(1)
}

// RowCount returns the number of live rows.
func (t *Table) RowCount() int { return int(t.live.Load()) }

// Insert validates, coerces and stores a full-width row under lock-mode
// rules, returning its row ID.
func (t *Table) Insert(vals []Value) (int64, error) {
	return t.insertRow(&writeCtx{}, vals)
}

// insertRow validates, coerces and stores a full-width row, returning its
// row ID. AUTOINCREMENT columns receive the next sequence value when NULL.
// Under MVCC the version installs provisional (invisible until
// publishCommit); lock-mode versions install committed. Row IDs are
// allocated monotonically, so both the global and the per-partition ID
// slice take the same blind O(1) append — no sorted-position search on
// the insert hot path.
func (t *Table) insertRow(w *writeCtx, vals []Value) (int64, error) {
	if len(vals) != len(t.Schema.Columns) {
		return 0, fmt.Errorf("sqldb: table %s expects %d values, got %d", t.Name, len(t.Schema.Columns), len(vals))
	}
	row := make([]Value, len(vals))
	for i, col := range t.Schema.Columns {
		v := vals[i]
		if v == nil && col.AutoIncrement {
			t.nextSeq++
			v = t.nextSeq
		}
		if v == nil && col.Default != nil {
			v = col.Default
		}
		if v == nil {
			if col.NotNull || col.PrimaryKey {
				return 0, fmt.Errorf("sqldb: NULL in NOT NULL column %s.%s", t.Name, col.Name)
			}
			row[i] = nil
			continue
		}
		cv, err := Coerce(v, col.Type)
		if err != nil {
			return 0, fmt.Errorf("sqldb: column %s.%s: %w", t.Name, col.Name, err)
		}
		if col.AutoIncrement {
			if n, ok := cv.(int64); ok && n > t.nextSeq {
				t.nextSeq = n
			}
		}
		row[i] = cv
	}
	// Unique-index violation check before any mutation. Under MVCC the
	// index may hold entries for superseded or uncommitted keys, so
	// membership must resolve version visibility, not raw entry presence.
	for _, idx := range t.indexMap() {
		if !idx.Unique {
			continue
		}
		key := row[idx.Col]
		if key == nil {
			continue // SQL: NULLs never collide
		}
		if w.mvcc {
			if t.keyInUse(idx, key, w.vis()) {
				return 0, &UniqueError{Table: t.Name, Column: idx.Column, Value: key}
			}
		} else if idx.containsKey(key) {
			return 0, &UniqueError{Table: t.Name, Column: idx.Column, Value: key}
		}
	}
	t.nextRow++
	id := t.nextRow
	ver := &rowVersion{row: row}
	ver.beg.Store(w.stamp())
	p := t.part(id)
	p.mu.Lock()
	p.rows[id] = ver
	p.ids.append(id)
	p.mut.Add(1)
	p.mu.Unlock()
	t.ids.append(id)
	t.live.Add(1)
	t.mut.Add(1)
	for _, idx := range t.indexMap() {
		idx.insert(row[idx.Col], id)
	}
	if w.mvcc {
		w.installed = append(w.installed, ver)
	}
	return id, nil
}

// keyInUse reports whether any row whose version is visible under vis
// carries the key in the index's column. This is the chain-aware
// counterpart of Index.containsKey: stale index entries (superseded keys
// awaiting vacuum) are filtered by resolving the candidate's visible
// version and comparing its actual key.
func (t *Table) keyInUse(idx *Index, key Value, vis visibility) bool {
	for _, id := range idx.Lookup(key) {
		row := t.get(id, vis)
		if row != nil && row[idx.Col] != nil && Compare(row[idx.Col], key) == 0 {
			return true
		}
	}
	return false
}

// UniqueError reports a uniqueness violation on insert or update.
type UniqueError struct {
	Table  string
	Column string
	Value  Value
}

func (e *UniqueError) Error() string {
	return fmt.Sprintf("sqldb: UNIQUE constraint violated: %s.%s = %s", e.Table, e.Column, FormatValue(e.Value))
}

// Get returns the newest committed row stored under id, or nil when
// absent (lock-mode visibility).
func (t *Table) Get(id int64) []Value {
	return t.get(id, visLatest)
}

// get resolves the row version visible under vis, or nil when no version
// qualifies. On the lock-free path (vis.lockPart) the version-head copy
// is the only operation under the partition read lock.
func (t *Table) get(id int64, vis visibility) []Value {
	p := t.part(id)
	if vis.lockPart {
		p.mu.RLock()
		head := p.rows[id]
		p.mu.RUnlock()
		return head.resolve(vis)
	}
	return p.rows[id].resolve(vis)
}

// Delete removes the row with the given ID under lock-mode rules (the
// whole version chain is dropped and every chain key leaves the indexes),
// maintaining compaction thresholds. It reports whether a row was removed.
func (t *Table) Delete(id int64) bool {
	p := t.part(id)
	head := p.rows[id]
	if head.resolve(visLatest) == nil {
		return false // absent, or already tombstoned by an MVCC delete
	}
	for _, idx := range t.indexMap() {
		for v := head; v != nil; v = v.next.Load() {
			if v.row != nil {
				idx.delete(v.row[idx.Col], id)
			}
		}
	}
	p.mu.Lock()
	delete(p.rows, id)
	p.dead++
	if p.dead > 16 && p.dead*2 > len(p.ids.load()) {
		p.compact()
	}
	p.mut.Add(1)
	p.mu.Unlock()
	t.histMu.Lock()
	delete(t.hist, id)
	t.histMu.Unlock()
	t.live.Add(-1)
	t.dead++
	t.mut.Add(1)
	if t.dead > 64 && t.dead*2 > len(t.ids.load()) {
		t.compactIDs()
	}
	return true
}

// deleteRow installs an MVCC deletion tombstone over the row's chain:
// the row map entry, ID-slice entries and index entries all stay (old
// snapshots still resolve the prior version) until vacuum reclaims them.
// First-committer-wins: a newest committed version past the writer's
// snapshot fails with ErrWriteConflict.
func (t *Table) deleteRow(w *writeCtx, id int64) (*rowVersion, error) {
	p := t.part(id)
	head := p.rows[id] // raw read: see updateRow

	if head.resolve(w.vis()) == nil {
		return nil, nil // no visible row to delete
	}
	if err := w.conflictCheck(head); err != nil {
		return nil, err
	}
	ver := &rowVersion{} // row == nil: tombstone
	ver.beg.Store(w.stamp())
	ver.next.Store(head)
	p.mu.Lock()
	p.rows[id] = ver
	p.mu.Unlock()
	t.live.Add(-1)
	t.histAdd(id)
	w.installed = append(w.installed, ver)
	return ver, nil
}

// conflictCheck applies first-committer-wins: writing a row whose newest
// version was committed after this transaction's snapshot is a conflict,
// and so is a row currently carrying another in-flight transaction's
// provisional version (writers on the latched path overlap in time; the
// partition latch makes the check-then-install atomic per partition, so
// two writers racing for one row always see each other).
func (w *writeCtx) conflictCheck(head *rowVersion) error {
	if !w.mvcc || head == nil {
		return nil
	}
	b := head.beg.Load()
	if b&provisionalBit != 0 {
		if b&^provisionalBit == w.tx {
			return nil // chaining onto our own provisional version
		}
		return fmt.Errorf("row has a foreign provisional version: %w", ErrWriteConflict)
	}
	if b > w.snap {
		return ErrWriteConflict
	}
	return nil
}

// histAdd records that a row now carries version history. Called by MVCC
// writers on both paths; histMu orders concurrent latched writers.
func (t *Table) histAdd(id int64) {
	t.histMu.Lock()
	if t.hist == nil {
		t.hist = make(map[int64]struct{})
	}
	t.hist[id] = struct{}{}
	t.histMu.Unlock()
}

// compactIDs rewrites the global ID slice without tombstones.
func (t *Table) compactIDs() {
	ids := t.ids.load()
	live := make([]int64, 0, len(ids)-t.dead)
	for _, id := range ids {
		if _, ok := t.part(id).rows[id]; ok {
			live = append(live, id)
		}
	}
	t.ids.store(live)
	t.dead = 0
	t.mut.Add(1)
}

// undoInsert removes a row inserted by a now-rolled-back statement and
// splices its ID out of the ID slices (no tombstone: the rollback also
// returns the ID to the allocator, and a tombstone under a reusable ID
// would collide with the next insert). The spliced ID is almost always
// the last element, so this is O(1) in practice.
func (t *Table) undoInsert(id int64) {
	p := t.part(id)
	head := p.rows[id]
	if head == nil {
		return
	}
	for _, idx := range t.indexMap() {
		for v := head; v != nil; v = v.next.Load() {
			if v.row != nil {
				idx.delete(v.row[idx.Col], id)
			}
		}
	}
	p.mu.Lock()
	delete(p.rows, id)
	p.ids.remove(id)
	p.mut.Add(1)
	p.mu.Unlock()
	t.ids.remove(id)
	t.live.Add(-1)
	t.mut.Add(1)
}

// restore re-inserts a previously deleted row under its original ID,
// maintaining indexes and the sorted ID slices. It backs lock-mode
// transaction rollback of deletes; the caller guarantees the ID is free.
func (t *Table) restore(id int64, row []Value) {
	p := t.part(id)
	if _, ok := p.rows[id]; ok {
		return
	}
	ver := &rowVersion{row: row} // beg 0: committed, lock-mode rollback
	p.mu.Lock()
	p.rows[id] = ver
	if p.ids.insertSorted(id) {
		p.dead-- // tombstone revived in place
	}
	p.mut.Add(1)
	p.mu.Unlock()
	if t.ids.insertSorted(id) {
		t.dead-- // tombstone revived in place
	}
	t.live.Add(1)
	for _, idx := range t.indexMap() {
		idx.insert(row[idx.Col], id)
	}
	t.mut.Add(1)
}

// unlinkVersion reverts a rolled-back MVCC write by restoring the
// version's predecessor as the chain head. Index entries the write added
// are removed by the caller (which recorded them), live-count adjustments
// likewise. The head comparison happens under p.mu so a latched rollback
// (which holds the partition latch but not the database exclusively)
// cannot race the check against a concurrent reader's head copy.
func (t *Table) unlinkVersion(id int64, ver *rowVersion) {
	p := t.part(id)
	p.mu.Lock()
	if p.rows[id] != ver {
		p.mu.Unlock()
		return // already superseded or removed
	}
	if prev := ver.next.Load(); prev != nil {
		p.rows[id] = prev
	} else {
		delete(p.rows, id)
	}
	p.mu.Unlock()
}

// idxKeyAdd records one index entry added by an MVCC update, so rollback
// can remove exactly the entries the write introduced.
type idxKeyAdd struct {
	idx *Index
	key Value
}

// Update replaces the row with the given ID under lock-mode rules (new
// values already validated/coerced by the caller via coerceRow) and
// maintains indexes eagerly.
func (t *Table) Update(id int64, newRow []Value) error {
	_, _, err := t.updateRow(&writeCtx{}, id, newRow)
	return err
}

// updateRow replaces the row with the given ID. Lock mode swaps in a
// fresh single-version head and maintains index entries eagerly (delete
// old key, insert new), exactly the pre-MVCC behavior. MVCC chains a
// provisional version onto the head, leaves superseded index entries for
// vacuum, and inserts an entry for the new key only when no version of
// the chain already holds it (the index keeps set semantics per (key,
// row) so lookups never yield duplicates); the added entries are returned
// for rollback.
func (t *Table) updateRow(w *writeCtx, id int64, newRow []Value) (*rowVersion, []idxKeyAdd, error) {
	p := t.part(id)
	// Raw head read: the caller holds either the database exclusively or
	// this partition's write latch, so no other writer mutates this map;
	// concurrent lock-free readers only read it.
	head := p.rows[id]
	old := head.resolve(w.vis())
	if old == nil {
		return nil, nil, fmt.Errorf("sqldb: row %d not found in %s", id, t.Name)
	}
	if err := w.conflictCheck(head); err != nil {
		return nil, nil, err
	}
	for _, idx := range t.indexMap() {
		if !idx.Unique {
			continue
		}
		nk := newRow[idx.Col]
		if nk == nil {
			continue
		}
		if Equal(old[idx.Col], nk) {
			continue // key unchanged
		}
		inUse := false
		if w.mvcc {
			inUse = t.keyInUse(idx, nk, w.vis())
		} else {
			inUse = idx.containsKey(nk)
		}
		if inUse {
			return nil, nil, &UniqueError{Table: t.Name, Column: idx.Column, Value: nk}
		}
	}
	if !w.mvcc {
		for _, idx := range t.indexMap() {
			if Compare(old[idx.Col], newRow[idx.Col]) != 0 {
				idx.delete(old[idx.Col], id)
				idx.insert(newRow[idx.Col], id)
			}
		}
		ver := &rowVersion{row: newRow} // beg 0: committed
		p.mu.Lock()
		p.rows[id] = ver
		p.mu.Unlock()
		return nil, nil, nil
	}
	var added []idxKeyAdd
	for _, idx := range t.indexMap() {
		nk := newRow[idx.Col]
		if Compare(old[idx.Col], nk) == 0 {
			continue
		}
		if !chainHasKey(head, idx.Col, nk) {
			idx.insert(nk, id)
			added = append(added, idxKeyAdd{idx: idx, key: nk})
		}
	}
	ver := &rowVersion{row: newRow}
	ver.beg.Store(w.stamp())
	ver.next.Store(head)
	p.mu.Lock()
	p.rows[id] = ver
	p.mu.Unlock()
	t.histAdd(id)
	w.installed = append(w.installed, ver)
	return ver, added, nil
}

// undoUpdate reverts the row with the given ID to its pre-update values
// (lock-mode transaction rollback). A no-op when the row no longer exists.
func (t *Table) undoUpdate(id int64, old []Value) {
	p := t.part(id)
	cur := p.rows[id].resolve(visLatest)
	if cur == nil {
		return
	}
	for _, idx := range t.indexMap() {
		if Compare(cur[idx.Col], old[idx.Col]) != 0 {
			idx.delete(cur[idx.Col], id)
			idx.insert(old[idx.Col], id)
		}
	}
	ver := &rowVersion{row: old} // beg 0: committed
	p.mu.Lock()
	p.rows[id] = ver
	p.mu.Unlock()
}

// vacuum trims every versioned row's chain to the newest version visible
// at horizon, removes the index entries only the dropped versions kept
// reachable, and physically removes rows whose surviving head is a
// committed tombstone. Caller holds the database writer lock and
// exclusive db.mu (so no provisional versions exist); returns the number
// of versions reclaimed.
func (t *Table) vacuum(horizon uint64) int {
	t.histMu.Lock()
	defer t.histMu.Unlock()
	if len(t.hist) == 0 {
		return 0
	}
	reclaimed := 0
	var dropped []*rowVersion // reused scratch
	for id := range t.hist {
		p := t.part(id)
		p.mu.Lock()
		head := p.rows[id]
		if head == nil {
			p.mu.Unlock()
			delete(t.hist, id)
			continue
		}
		// Cut below the newest version any active or future snapshot can
		// resolve: the first version with beg <= horizon.
		var keep *rowVersion
		for v := head; v != nil; v = v.next.Load() {
			if v.beg.Load() <= horizon {
				keep = v
				break
			}
		}
		dropped = dropped[:0]
		if keep != nil {
			for v := keep.next.Load(); v != nil; v = v.next.Load() {
				dropped = append(dropped, v)
			}
			keep.next.Store(nil)
		}
		fullyDead := keep == head && head.row == nil
		if fullyDead {
			// The surviving head is a committed tombstone: nothing can ever
			// resolve this row again — drop it physically.
			dropped = append(dropped, head)
			delete(p.rows, id)
			p.dead++
			if p.dead > 16 && p.dead*2 > len(p.ids.load()) {
				p.compact()
			}
			p.mut.Add(1)
		}
		p.mu.Unlock()
		// Index maintenance outside the partition lock (lock order: index
		// locks are never nested inside partition locks). The chain is
		// mutated only under the writer lock, which we hold.
		if len(dropped) > 0 {
			remaining := head
			if fullyDead {
				remaining = nil
			}
			for _, idx := range t.indexMap() {
				for _, v := range dropped {
					if v.row == nil {
						continue
					}
					if key := v.row[idx.Col]; remaining == nil || !chainHasKey(remaining, idx.Col, key) {
						idx.delete(key, id)
					}
				}
			}
		}
		reclaimed += len(dropped)
		if fullyDead {
			delete(t.hist, id)
			t.dead++
			t.mut.Add(1)
			if t.dead > 64 && t.dead*2 > len(t.ids.load()) {
				t.compactIDs()
			}
			continue
		}
		if keep == head && head.row != nil {
			delete(t.hist, id) // chain is single-version and live again
		}
	}
	return reclaimed
}

// loadRow installs a row under an explicit ID without constraint checks;
// it backs snapshot/checkpoint loading. Caller sorts the ID slices (via
// finishLoad) once all rows are in.
func (t *Table) loadRow(id int64, row []Value) {
	p := t.part(id)
	p.rows[id] = &rowVersion{row: row} // beg 0: committed
	p.ids.append(id)
	t.ids.append(id)
	t.live.Add(1)
	for _, idx := range t.indexMap() {
		idx.insert(row[idx.Col], id)
	}
}

// finishLoad restores the sorted-ID invariant after a bulk loadRow pass
// whose input order is not trusted.
func (t *Table) finishLoad() {
	t.ids.sortInPlace()
	for _, p := range t.partList() {
		p.ids.sortInPlace()
		p.mut.Add(1)
	}
	t.mut.Add(1)
}

// coerceRow validates a candidate full row against schema constraints
// (type coercion and NOT NULL), returning the canonical row.
func (t *Table) coerceRow(vals []Value) ([]Value, error) {
	row := make([]Value, len(vals))
	for i, col := range t.Schema.Columns {
		v := vals[i]
		if v == nil {
			if col.NotNull || col.PrimaryKey {
				return nil, fmt.Errorf("sqldb: NULL in NOT NULL column %s.%s", t.Name, col.Name)
			}
			continue
		}
		cv, err := Coerce(v, col.Type)
		if err != nil {
			return nil, fmt.Errorf("sqldb: column %s.%s: %w", t.Name, col.Name, err)
		}
		row[i] = cv
	}
	return row, nil
}

// Scan visits the newest committed version of every row in ascending
// row-ID order until fn returns false (lock-mode visibility; the caller
// holds the database lock).
func (t *Table) Scan(fn func(id int64, row []Value) bool) {
	t.scanVis(visLatest, fn)
}

// scanVis visits every row version visible under vis in ascending row-ID
// order until fn returns false. Row-ID order makes scans deterministic,
// which matters for reproducible query output and for the test suite. The
// global ID slice is maintained incrementally on insert/delete, so a scan
// is O(n) with no sorting and no partition merge.
func (t *Table) scanVis(vis visibility, fn func(id int64, row []Value) bool) {
	for _, id := range t.ids.load() {
		p := t.part(id)
		var head *rowVersion
		if vis.lockPart {
			p.mu.RLock()
			head = p.rows[id]
			p.mu.RUnlock()
		} else {
			head = p.rows[id]
		}
		row := head.resolve(vis)
		if row == nil {
			continue // tombstone, or invisible at this snapshot
		}
		if !fn(id, row) {
			return
		}
	}
}

// sortInt64s sorts a slice of row IDs ascending.
func sortInt64s(ids []int64) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// dedupSortedInt64s removes adjacent duplicates from a sorted ID slice.
func dedupSortedInt64s(ids []int64) []int64 {
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out
}

// prepIndex validates a CREATE INDEX request and allocates the empty index.
func (t *Table) prepIndex(name, column string, kind IndexKind, unique bool) (*Index, int, error) {
	if _, dup := t.indexMap()[name]; dup {
		return nil, -1, fmt.Errorf("sqldb: index %q already exists on %s", name, t.Name)
	}
	col := t.Schema.ColumnIndex(column)
	if col < 0 {
		return nil, -1, fmt.Errorf("sqldb: no column %q in table %s", column, t.Name)
	}
	return newIndex(name, t.Schema.Columns[col].Name, col, kind, unique), col, nil
}

// CreateIndex builds a secondary index over one column, populating it from
// the newest committed version of each row. Unique indexes fail if
// existing data violates uniqueness. DDL is not versioned: snapshots
// older than the index see the post-DDL entry set.
func (t *Table) CreateIndex(name, column string, kind IndexKind, unique bool) (*Index, error) {
	idx, col, err := t.prepIndex(name, column, kind, unique)
	if err != nil {
		return nil, err
	}
	t.Scan(func(id int64, row []Value) bool {
		key := row[col]
		if unique && key != nil && idx.containsKey(key) {
			err = &UniqueError{Table: t.Name, Column: column, Value: key}
			return false
		}
		idx.insert(key, id)
		return true
	})
	if err != nil {
		return nil, err
	}
	t.setIndex(name, idx)
	return idx, nil
}

// indexEntry is one (key, row ID) pair of a per-partition sorted run.
type indexEntry struct {
	key Value
	id  int64
}

// CreateIndexParallel builds a B-tree index from per-partition sorted runs
// built concurrently (the partition worker pattern of parallel.go) and
// k-way-merged into the tree. The caller must hold the database
// exclusively — CREATE INDEX is a DDL write, so no provisional versions
// exist and the workers read their partitions without locking (concurrent
// MVCC snapshot readers only ever read the same maps). The resulting tree
// is identical to a serial build: B-tree entries order by (key, row ID)
// regardless of insertion order. Unique violations reproduce the serial
// error exactly — the serial scan fails on the first row (in global
// row-ID order) whose key was already present, i.e. the duplicated key
// whose second-smallest row ID is globally minimal, which the merge pass
// recomputes.
func (t *Table) CreateIndexParallel(name, column string, unique bool) (*Index, error) {
	idx, col, err := t.prepIndex(name, column, IndexBTree, unique)
	if err != nil {
		return nil, err
	}
	parts := t.partList()
	runs := make([][]indexEntry, len(parts))
	nullRuns := make([][]int64, len(parts))
	var wg sync.WaitGroup
	for i, part := range parts {
		wg.Add(1)
		go func(i int, part *tablePart) {
			defer wg.Done()
			ids := part.ids.load()
			entries := make([]indexEntry, 0, len(ids))
			var nulls []int64
			for _, id := range ids {
				row := part.rows[id].resolve(visLatest)
				if row == nil {
					continue // tombstone
				}
				if key := row[col]; key != nil {
					entries = append(entries, indexEntry{key: key, id: id})
				} else {
					nulls = append(nulls, id)
				}
			}
			sort.Slice(entries, func(a, b int) bool {
				if c := Compare(entries[a].key, entries[b].key); c != 0 {
					return c < 0
				}
				return entries[a].id < entries[b].id
			})
			runs[i] = entries
			nullRuns[i] = nulls
		}(i, part)
	}
	wg.Wait()

	// K-way merge of the sorted runs. For unique indexes, equal keys are
	// adjacent in merge order; the second entry of an equal-key run is the
	// row the serial scan would have failed on for that key, and the
	// smallest such row ID across keys is where the serial scan fails
	// first.
	heads := make([]int, len(runs))
	var (
		prevKey   Value
		runLen    int
		dupKey    Value
		dupSecond int64 = -1
	)
	for {
		best := -1
		for i, run := range runs {
			if heads[i] >= len(run) {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			e, be := run[heads[i]], runs[best][heads[best]]
			if c := Compare(e.key, be.key); c < 0 || (c == 0 && e.id < be.id) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		e := runs[best][heads[best]]
		heads[best]++
		if unique {
			if prevKey != nil && Compare(e.key, prevKey) == 0 {
				runLen++
				if runLen == 2 && (dupSecond < 0 || e.id < dupSecond) {
					dupKey, dupSecond = e.key, e.id
				}
			} else {
				prevKey, runLen = e.key, 1
			}
			if dupSecond >= 0 {
				continue // violation found; finish scanning for the minimum
			}
		}
		idx.insert(e.key, e.id)
	}
	if unique && dupSecond >= 0 {
		return nil, &UniqueError{Table: t.Name, Column: column, Value: dupKey}
	}
	for _, nulls := range nullRuns {
		for _, id := range nulls {
			idx.insert(nil, id)
		}
	}
	t.setIndex(name, idx)
	return idx, nil
}

// DropIndex removes a secondary index by name.
func (t *Table) DropIndex(name string) error {
	if _, ok := t.indexMap()[name]; !ok {
		return fmt.Errorf("sqldb: no index %q on table %s", name, t.Name)
	}
	t.removeIndex(name)
	return nil
}

// IndexOn returns an index whose key column matches the given column index,
// preferring hash indexes for equality lookups. Returns nil when none exists.
func (t *Table) IndexOn(col int) *Index {
	var best *Index
	for _, idx := range t.indexMap() {
		if idx.Col != col {
			continue
		}
		if idx.Kind == IndexHash {
			return idx
		}
		best = idx
	}
	return best
}

// BTreeIndexOn returns a B-tree index on the column, for range scans.
func (t *Table) BTreeIndexOn(col int) *Index {
	for _, idx := range t.indexMap() {
		if idx.Col == col && idx.Kind == IndexBTree {
			return idx
		}
	}
	return nil
}

// Indexes returns the table's indexes in name order.
func (t *Table) Indexes() []*Index {
	m := t.indexMap()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Index, len(names))
	for i, n := range names {
		out[i] = m[n]
	}
	return out
}

// Truncate removes all rows but keeps schema, index definitions and the
// partition layout.
func (t *Table) Truncate() {
	for _, p := range t.partList() {
		p.mu.Lock()
		p.rows = make(map[int64]*rowVersion)
		p.ids.store(nil)
		p.dead = 0
		p.mut.Add(1)
		p.mu.Unlock()
	}
	t.ids.store(nil)
	t.dead = 0
	t.live.Store(0)
	t.histMu.Lock()
	t.hist = nil
	t.histMu.Unlock()
	t.mut.Add(1)
	for _, idx := range t.indexMap() {
		idx.reset()
	}
}
