package sqldb

import (
	"fmt"
	"sort"
)

// Table is the in-memory heap storage for one relation plus its indexes.
// Rows are addressed by a stable, monotonically increasing row ID so that
// indexes can reference rows without caring about physical position.
type Table struct {
	Name    string
	Schema  *Schema
	rows    map[int64][]Value
	nextRow int64
	nextSeq int64 // AUTOINCREMENT counter
	indexes map[string]*Index

	// ids keeps the live row IDs in ascending order so scans need no
	// per-call sort. Row IDs are allocated monotonically, so inserts append
	// in O(1); deletes leave tombstones (IDs missing from rows) that are
	// compacted away once they outnumber the live rows.
	ids  []int64
	dead int

	// mut counts structural changes to the row set (insert, delete,
	// restore, truncate — anything that touches the ID slice, including
	// in-place compaction). Open cursors compare it to re-synchronize
	// their scan position after concurrent writes.
	mut uint64
}

// NewTable creates an empty table. A unique index is created automatically
// for the primary key column, if any.
func NewTable(name string, schema *Schema) *Table {
	t := &Table{
		Name:    name,
		Schema:  schema,
		rows:    make(map[int64][]Value),
		indexes: make(map[string]*Index),
	}
	if pk := schema.PrimaryKeyIndex(); pk >= 0 {
		idx := newIndex(pkIndexName(name), schema.Columns[pk].Name, pk, IndexHash, true)
		t.indexes[idx.Name] = idx
	}
	return t
}

func pkIndexName(table string) string { return "__pk_" + table }

// RowCount returns the number of live rows.
func (t *Table) RowCount() int { return len(t.rows) }

// Insert validates, coerces and stores a full-width row, returning its row
// ID. AUTOINCREMENT columns receive the next sequence value when NULL.
func (t *Table) Insert(vals []Value) (int64, error) {
	if len(vals) != len(t.Schema.Columns) {
		return 0, fmt.Errorf("sqldb: table %s expects %d values, got %d", t.Name, len(t.Schema.Columns), len(vals))
	}
	row := make([]Value, len(vals))
	for i, col := range t.Schema.Columns {
		v := vals[i]
		if v == nil && col.AutoIncrement {
			t.nextSeq++
			v = t.nextSeq
		}
		if v == nil && col.Default != nil {
			v = col.Default
		}
		if v == nil {
			if col.NotNull || col.PrimaryKey {
				return 0, fmt.Errorf("sqldb: NULL in NOT NULL column %s.%s", t.Name, col.Name)
			}
			row[i] = nil
			continue
		}
		cv, err := Coerce(v, col.Type)
		if err != nil {
			return 0, fmt.Errorf("sqldb: column %s.%s: %w", t.Name, col.Name, err)
		}
		if col.AutoIncrement {
			if n, ok := cv.(int64); ok && n > t.nextSeq {
				t.nextSeq = n
			}
		}
		row[i] = cv
	}
	// Unique-index violation check before any mutation.
	for _, idx := range t.indexes {
		if !idx.Unique {
			continue
		}
		key := row[idx.Col]
		if key == nil {
			continue // SQL: NULLs never collide
		}
		if idx.containsKey(key) {
			return 0, &UniqueError{Table: t.Name, Column: idx.Column, Value: key}
		}
	}
	t.nextRow++
	id := t.nextRow
	t.rows[id] = row
	t.ids = append(t.ids, id) // nextRow is monotone, so append keeps order
	t.mut++
	for _, idx := range t.indexes {
		idx.insert(row[idx.Col], id)
	}
	return id, nil
}

// UniqueError reports a uniqueness violation on insert or update.
type UniqueError struct {
	Table  string
	Column string
	Value  Value
}

func (e *UniqueError) Error() string {
	return fmt.Sprintf("sqldb: UNIQUE constraint violated: %s.%s = %s", e.Table, e.Column, FormatValue(e.Value))
}

// Get returns the row stored under id, or nil when absent.
func (t *Table) Get(id int64) []Value {
	return t.rows[id]
}

// Delete removes the row with the given ID, maintaining all indexes.
// It reports whether a row was removed.
func (t *Table) Delete(id int64) bool {
	row, ok := t.rows[id]
	if !ok {
		return false
	}
	for _, idx := range t.indexes {
		idx.delete(row[idx.Col], id)
	}
	delete(t.rows, id)
	t.dead++
	t.mut++
	if t.dead > 64 && t.dead*2 > len(t.ids) {
		t.compactIDs()
	}
	return true
}

// compactIDs rewrites the ID slice without tombstones.
func (t *Table) compactIDs() {
	live := t.ids[:0]
	for _, id := range t.ids {
		if _, ok := t.rows[id]; ok {
			live = append(live, id)
		}
	}
	t.ids = live
	t.dead = 0
	t.mut++
}

// undoInsert removes a row inserted by a now-rolled-back statement and
// splices its ID out of the ID slice (no tombstone: the rollback also
// returns the ID to the allocator, and a tombstone under a reusable ID
// would collide with the next insert). The spliced ID is almost always
// the last element, so this is O(1) in practice.
func (t *Table) undoInsert(id int64) {
	row, ok := t.rows[id]
	if !ok {
		return
	}
	for _, idx := range t.indexes {
		idx.delete(row[idx.Col], id)
	}
	delete(t.rows, id)
	pos := sort.Search(len(t.ids), func(i int) bool { return t.ids[i] >= id })
	if pos < len(t.ids) && t.ids[pos] == id {
		t.ids = append(t.ids[:pos], t.ids[pos+1:]...)
	}
	t.mut++
}

// restore re-inserts a previously deleted row under its original ID,
// maintaining indexes and the sorted ID slice. It backs transaction
// rollback of deletes; the caller guarantees the ID is free.
func (t *Table) restore(id int64, row []Value) {
	if _, ok := t.rows[id]; ok {
		return
	}
	t.rows[id] = row
	pos := sort.Search(len(t.ids), func(i int) bool { return t.ids[i] >= id })
	if pos < len(t.ids) && t.ids[pos] == id {
		t.dead-- // tombstone revived in place
	} else {
		t.ids = append(t.ids, 0)
		copy(t.ids[pos+1:], t.ids[pos:])
		t.ids[pos] = id
	}
	for _, idx := range t.indexes {
		idx.insert(row[idx.Col], id)
	}
	t.mut++
}

// Update replaces the row with the given ID with new values (already
// validated/coerced by the caller via coerceRow) and maintains indexes.
func (t *Table) Update(id int64, newRow []Value) error {
	old, ok := t.rows[id]
	if !ok {
		return fmt.Errorf("sqldb: row %d not found in %s", id, t.Name)
	}
	for _, idx := range t.indexes {
		if !idx.Unique {
			continue
		}
		nk := newRow[idx.Col]
		if nk == nil {
			continue
		}
		if Equal(old[idx.Col], nk) {
			continue // key unchanged
		}
		if idx.containsKey(nk) {
			return &UniqueError{Table: t.Name, Column: idx.Column, Value: nk}
		}
	}
	for _, idx := range t.indexes {
		if Compare(old[idx.Col], newRow[idx.Col]) != 0 {
			idx.delete(old[idx.Col], id)
			idx.insert(newRow[idx.Col], id)
		}
	}
	t.rows[id] = newRow
	return nil
}

// coerceRow validates a candidate full row against schema constraints
// (type coercion and NOT NULL), returning the canonical row.
func (t *Table) coerceRow(vals []Value) ([]Value, error) {
	row := make([]Value, len(vals))
	for i, col := range t.Schema.Columns {
		v := vals[i]
		if v == nil {
			if col.NotNull || col.PrimaryKey {
				return nil, fmt.Errorf("sqldb: NULL in NOT NULL column %s.%s", t.Name, col.Name)
			}
			continue
		}
		cv, err := Coerce(v, col.Type)
		if err != nil {
			return nil, fmt.Errorf("sqldb: column %s.%s: %w", t.Name, col.Name, err)
		}
		row[i] = cv
	}
	return row, nil
}

// Scan visits all rows in ascending row-ID order until fn returns false.
// Row-ID order makes scans deterministic, which matters for reproducible
// query output and for the test suite. The ID slice is maintained
// incrementally on insert/delete, so a scan is O(n) with no sorting.
func (t *Table) Scan(fn func(id int64, row []Value) bool) {
	for _, id := range t.ids {
		row, ok := t.rows[id]
		if !ok {
			continue // tombstone left by Delete
		}
		if !fn(id, row) {
			return
		}
	}
}

// sortInt64s sorts a slice of row IDs ascending.
func sortInt64s(ids []int64) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// dedupSortedInt64s removes adjacent duplicates from a sorted ID slice.
func dedupSortedInt64s(ids []int64) []int64 {
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || id != ids[i-1] {
			out = append(out, id)
		}
	}
	return out
}

// CreateIndex builds a secondary index over one column, populating it from
// existing rows. Unique indexes fail if existing data violates uniqueness.
func (t *Table) CreateIndex(name, column string, kind IndexKind, unique bool) (*Index, error) {
	if _, dup := t.indexes[name]; dup {
		return nil, fmt.Errorf("sqldb: index %q already exists on %s", name, t.Name)
	}
	col := t.Schema.ColumnIndex(column)
	if col < 0 {
		return nil, fmt.Errorf("sqldb: no column %q in table %s", column, t.Name)
	}
	idx := newIndex(name, t.Schema.Columns[col].Name, col, kind, unique)
	var err error
	t.Scan(func(id int64, row []Value) bool {
		key := row[col]
		if unique && key != nil && idx.containsKey(key) {
			err = &UniqueError{Table: t.Name, Column: column, Value: key}
			return false
		}
		idx.insert(key, id)
		return true
	})
	if err != nil {
		return nil, err
	}
	t.indexes[name] = idx
	return idx, nil
}

// DropIndex removes a secondary index by name.
func (t *Table) DropIndex(name string) error {
	if _, ok := t.indexes[name]; !ok {
		return fmt.Errorf("sqldb: no index %q on table %s", name, t.Name)
	}
	delete(t.indexes, name)
	return nil
}

// IndexOn returns an index whose key column matches the given column index,
// preferring hash indexes for equality lookups. Returns nil when none exists.
func (t *Table) IndexOn(col int) *Index {
	var best *Index
	for _, idx := range t.indexes {
		if idx.Col != col {
			continue
		}
		if idx.Kind == IndexHash {
			return idx
		}
		best = idx
	}
	return best
}

// BTreeIndexOn returns a B-tree index on the column, for range scans.
func (t *Table) BTreeIndexOn(col int) *Index {
	for _, idx := range t.indexes {
		if idx.Col == col && idx.Kind == IndexBTree {
			return idx
		}
	}
	return nil
}

// Indexes returns the table's indexes in name order.
func (t *Table) Indexes() []*Index {
	names := make([]string, 0, len(t.indexes))
	for n := range t.indexes {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Index, len(names))
	for i, n := range names {
		out[i] = t.indexes[n]
	}
	return out
}

// Truncate removes all rows but keeps schema and index definitions.
func (t *Table) Truncate() {
	t.rows = make(map[int64][]Value)
	t.ids = nil
	t.dead = 0
	t.mut++
	for _, idx := range t.indexes {
		idx.reset()
	}
}
