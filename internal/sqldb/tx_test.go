package sqldb

import (
	"sync"
	"testing"
)

func TestTxCommit(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
	tx := db.Begin()
	if _, err := tx.Exec("INSERT INTO t VALUES (1, 'a')"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO t VALUES (2, 'b')"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	rs := mustQuery(t, db, "SELECT COUNT(*) FROM t")
	if rs.Rows[0][0] != int64(2) {
		t.Fatalf("count after commit = %v", rs.Rows[0][0])
	}
}

func TestTxRollbackInsert(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 'keep')")
	tx := db.Begin()
	if _, err := tx.Exec("INSERT INTO t VALUES (2, 'discard')"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	rs := mustQuery(t, db, "SELECT COUNT(*) FROM t")
	if rs.Rows[0][0] != int64(1) {
		t.Fatalf("count after rollback = %v, want 1", rs.Rows[0][0])
	}
	// The primary-key index must have forgotten id=2.
	mustExec(t, db, "INSERT INTO t VALUES (2, 'again')")
}

func TestTxRollbackUpdateDelete(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
	mustExec(t, db, "CREATE INDEX idx_v ON t (v)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three')")

	tx := db.Begin()
	if _, err := tx.Exec("UPDATE t SET v = 'ONE' WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("DELETE FROM t WHERE id = 2"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}

	rs := mustQuery(t, db, "SELECT v FROM t ORDER BY id")
	if len(rs.Rows) != 3 {
		t.Fatalf("rows after rollback = %d, want 3", len(rs.Rows))
	}
	if rs.Rows[0][0] != "one" || rs.Rows[1][0] != "two" {
		t.Fatalf("values after rollback = %v", rs.Rows)
	}
	// Secondary index consistency after rollback.
	rs = mustQuery(t, db, "SELECT id FROM t WHERE v = 'one'")
	if len(rs.Rows) != 1 || rs.Rows[0][0] != int64(1) {
		t.Fatalf("index lookup after rollback = %v", rs.Rows)
	}
	rs = mustQuery(t, db, "SELECT id FROM t WHERE v = 'ONE'")
	if len(rs.Rows) != 0 {
		t.Fatalf("stale index entry after rollback: %v", rs.Rows)
	}
}

func TestTxRollbackDDL(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE keepme (id INTEGER)")
	tx := db.Begin()
	if _, err := tx.Exec("CREATE TABLE temp (id INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("DROP TABLE keepme"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO temp VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("SELECT * FROM temp"); err == nil {
		t.Fatal("temp table should not survive rollback")
	}
	if _, err := db.Query("SELECT * FROM keepme"); err != nil {
		t.Fatalf("keepme should be restored: %v", err)
	}
}

func TestTxDoubleFinish(t *testing.T) {
	db := NewDB()
	tx := db.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("double commit should fail")
	}
	if err := tx.Rollback(); err == nil {
		t.Fatal("rollback after commit should fail")
	}
	if _, err := tx.Exec("CREATE TABLE t (x INTEGER)"); err == nil {
		t.Fatal("exec after commit should fail")
	}
}

func TestTxSerializesWriters(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (n INTEGER)")
	tx := db.Begin()
	done := make(chan struct{})
	go func() {
		// This writer must block until the transaction commits.
		db.Exec("INSERT INTO t VALUES (1)")
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("concurrent writer did not block on open transaction")
	default:
	}
	if _, err := tx.Exec("INSERT INTO t VALUES (2)"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	<-done
	rs := mustQuery(t, db, "SELECT COUNT(*) FROM t")
	if rs.Rows[0][0] != int64(2) {
		t.Fatalf("count = %v, want 2", rs.Rows[0][0])
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	db := NewDB()
	mustExec(t, db, "CREATE TABLE t (id INTEGER PRIMARY KEY AUTOINCREMENT, n INTEGER)")
	var wg sync.WaitGroup
	const writers, readers, perWriter = 4, 4, 100
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := db.Exec("INSERT INTO t (n) VALUES (?)", w*1000+i); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := db.Query("SELECT COUNT(*) FROM t"); err != nil {
					t.Errorf("reader: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	rs := mustQuery(t, db, "SELECT COUNT(*) FROM t")
	if rs.Rows[0][0] != int64(writers*perWriter) {
		t.Fatalf("final count = %v, want %d", rs.Rows[0][0], writers*perWriter)
	}
}
