// Package wal implements a write-ahead log: an ordered sequence of opaque,
// CRC32-checked binary records appended to size-bounded segment files. It
// provides the durability substrate of the embedded database — fsync
// policies (always / group / off), group commit that folds concurrent
// committers into one fsync, segment rotation and pruning, and recovery
// that replays the record sequence and truncates torn tails.
//
// The log stores opaque payloads; what a record *means* (which statements
// ran, in which transaction) is the caller's concern. Every record carries
// a log sequence number (LSN) assigned at append time; LSNs are strictly
// increasing across segments and survive restarts.
package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the filesystem surface the WAL (and the database's checkpointer)
// runs on: one flat directory of files. The indirection exists so the
// fault-injection harness can substitute an in-memory filesystem that
// fails or "crashes" at a chosen write or fsync and then be recovered
// from exactly what had reached stable storage.
type FS interface {
	// Create opens name for writing, truncating any previous content.
	Create(name string) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// List returns the names of all files in the directory, unsorted.
	List() ([]string, error)
	// Remove deletes a file. Removing a missing file is an error.
	Remove(name string) error
	// Rename atomically replaces newname with oldname's file.
	Rename(oldname, newname string) error
	// Truncate cuts a file to size bytes (used to drop torn record tails).
	Truncate(name string, size int64) error
}

// File is one open file of an FS. Write-opened files support Write/Sync,
// read-opened files support Read; both support Close.
type File interface {
	io.Reader
	io.Writer
	// Sync forces everything written so far to stable storage.
	Sync() error
	Close() error
}

// ---------------------------------------------------------------------------
// Operating-system FS

// osFS is the production FS: a real directory.
type osFS struct {
	dir string
}

// DirFS returns an FS rooted at dir, creating the directory when missing.
func DirFS(dir string) (FS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	return &osFS{dir: dir}, nil
}

func (fs *osFS) path(name string) string { return filepath.Join(fs.dir, name) }

func (fs *osFS) Create(name string) (File, error) { return os.Create(fs.path(name)) }
func (fs *osFS) Open(name string) (File, error)   { return os.Open(fs.path(name)) }

func (fs *osFS) List() ([]string, error) {
	entries, err := os.ReadDir(fs.dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

func (fs *osFS) Remove(name string) error { return os.Remove(fs.path(name)) }

func (fs *osFS) Rename(oldname, newname string) error {
	return os.Rename(fs.path(oldname), fs.path(newname))
}

func (fs *osFS) Truncate(name string, size int64) error {
	return os.Truncate(fs.path(name), size)
}

// sortedList returns fs.List() sorted, which for the WAL's zero-padded
// segment names is LSN order.
func sortedList(fs FS) ([]string, error) {
	names, err := fs.List()
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	return names, nil
}
