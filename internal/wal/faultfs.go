package wal

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// Fault-injection errors.
var (
	// ErrInjected is returned by an operation the fault plan chose to fail.
	ErrInjected = errors.New("wal: injected fault")
	// ErrCrashed is returned by every operation after the filesystem
	// "crashed" (power cut): nothing works again until SimulateCrash
	// resets the filesystem to its durable contents.
	ErrCrashed = errors.New("wal: filesystem crashed")
)

// FaultKind selects what happens at the chosen IO operation.
type FaultKind int

const (
	// FaultNone disables injection.
	FaultNone FaultKind = iota
	// FaultCrash power-cuts the filesystem at the operation: the op fails
	// with ErrCrashed, as does everything after it, and unsynced data is
	// lost (modulo the torn-tail policy) once SimulateCrash runs.
	FaultCrash
	// FaultErr fails the operation with ErrInjected without performing it;
	// the filesystem keeps working afterwards.
	FaultErr
	// FaultShortWrite applies only to writes: persists roughly half the
	// buffer, then fails with ErrInjected. For a sync it behaves like
	// FaultErr.
	FaultShortWrite
)

// FaultPlan schedules one fault. IO operations (every File.Write and every
// File.Sync, across all files) are numbered from 1 in execution order; the
// fault triggers at operation AtOp.
type FaultPlan struct {
	AtOp int
	Kind FaultKind
}

// FaultFS is an in-memory filesystem with a crash model, built for the
// fault-injection test harness. Every file tracks two byte ranges:
//
//   - durable: bytes that reached "stable storage" (covered by a Sync)
//   - volatile: bytes written but not yet synced
//
// SimulateCrash discards the volatile suffix of every file — except for a
// caller-chosen number of "torn" bytes, modeling a partial sector flush —
// and revives the filesystem in that recovered state. Metadata operations
// (Create, Remove, Rename, Truncate) are modeled as immediately durable,
// as on a journaling filesystem with an fsynced directory; the hazards
// this harness targets are torn and lost *data* writes.
//
// A FaultFS is safe for concurrent use.
type FaultFS struct {
	mu      sync.Mutex
	files   map[string]*faultFile
	ops     int
	plan    FaultPlan
	crashed bool

	// Writes counts File.Write calls, Syncs counts File.Sync calls; their
	// sum is the op counter the fault plan indexes. They keep counting in
	// the recovered filesystem so a sweep can size itself from a dry run.
	Writes int
	Syncs  int

	// SyncDelay makes every Sync take this long (slept WITHOUT holding the
	// filesystem lock, like a real disk: writes proceed during the fsync).
	// Group-commit tests use it to open the window in which concurrent
	// committers pile up behind one in-flight fsync.
	SyncDelay time.Duration
}

type faultFile struct {
	data    []byte
	durable int // prefix of data covered by a Sync
}

// NewFaultFS returns an empty in-memory filesystem with no fault planned.
func NewFaultFS() *FaultFS {
	return &FaultFS{files: make(map[string]*faultFile)}
}

// SetPlan schedules the fault for the next run. The op counter is NOT
// reset; use OpCount to offset plans for a warmed filesystem.
func (fs *FaultFS) SetPlan(p FaultPlan) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.plan = p
}

// OpCount returns how many write+sync operations have executed so far.
func (fs *FaultFS) OpCount() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.ops
}

// Crashed reports whether the filesystem is in the crashed state.
func (fs *FaultFS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// SimulateCrash models the machine losing power and coming back: every
// file keeps its durable prefix plus, when torn is non-nil, a
// torn(unsynced)-byte prefix of its unsynced suffix (a partially flushed
// tail). The filesystem is usable again afterwards; the fault plan is
// cleared and open handles from before the crash stay dead.
func (fs *FaultFS) SimulateCrash(torn func(unsynced int) int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, f := range fs.files {
		keep := f.durable
		if torn != nil {
			extra := torn(len(f.data) - f.durable)
			if extra < 0 {
				extra = 0
			}
			if keep+extra > len(f.data) {
				extra = len(f.data) - keep
			}
			keep += extra
		}
		f.data = f.data[:keep]
		f.durable = keep
	}
	fs.crashed = false
	fs.plan = FaultPlan{}
}

// step advances the op counter and applies the scheduled fault. Caller
// holds fs.mu. The second return is how much of a write to persist when
// the fault is a short write (-1 = all of it).
func (fs *FaultFS) step(isWrite bool, writeLen int) (error, int) {
	if fs.crashed {
		return ErrCrashed, 0
	}
	fs.ops++
	if isWrite {
		fs.Writes++
	} else {
		fs.Syncs++
	}
	if fs.plan.Kind == FaultNone || fs.ops != fs.plan.AtOp {
		return nil, -1
	}
	switch fs.plan.Kind {
	case FaultCrash:
		fs.crashed = true
		return ErrCrashed, 0
	case FaultShortWrite:
		if isWrite {
			return ErrInjected, writeLen / 2
		}
		return ErrInjected, 0
	default: // FaultErr
		return ErrInjected, 0
	}
}

// ---------------------------------------------------------------------------
// FS interface

func (fs *FaultFS) Create(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrashed
	}
	f := &faultFile{}
	fs.files[name] = f
	return &faultHandle{fs: fs, name: name, file: f}, nil
}

func (fs *FaultFS) Open(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrashed
	}
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("wal: open %s: file does not exist", name)
	}
	// Readers iterate a private copy so concurrent appends to the same
	// file cannot shift their view.
	snap := make([]byte, len(f.data))
	copy(snap, f.data)
	return &faultHandle{fs: fs, name: name, file: f, rd: snap, reading: true}, nil
}

func (fs *FaultFS) List() ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return nil, ErrCrashed
	}
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	return names, nil
}

func (fs *FaultFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return ErrCrashed
	}
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("wal: remove %s: file does not exist", name)
	}
	delete(fs.files, name)
	return nil
}

func (fs *FaultFS) Rename(oldname, newname string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return ErrCrashed
	}
	f, ok := fs.files[oldname]
	if !ok {
		return fmt.Errorf("wal: rename %s: file does not exist", oldname)
	}
	delete(fs.files, oldname)
	fs.files[newname] = f
	return nil
}

func (fs *FaultFS) Truncate(name string, size int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.crashed {
		return ErrCrashed
	}
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("wal: truncate %s: file does not exist", name)
	}
	if size < 0 || size > int64(len(f.data)) {
		return fmt.Errorf("wal: truncate %s: size %d out of range", name, size)
	}
	f.data = f.data[:size]
	if f.durable > int(size) {
		f.durable = int(size)
	}
	return nil
}

// faultHandle is one open file handle.
type faultHandle struct {
	fs      *FaultFS
	name    string
	file    *faultFile
	reading bool
	rd      []byte // read snapshot
	pos     int
	closed  bool
}

func (h *faultHandle) Read(p []byte) (int, error) {
	if !h.reading {
		return 0, fmt.Errorf("wal: %s not open for reading", h.name)
	}
	if h.closed {
		return 0, fmt.Errorf("wal: read on closed file %s", h.name)
	}
	if h.pos >= len(h.rd) {
		return 0, io.EOF
	}
	n := copy(p, h.rd[h.pos:])
	h.pos += n
	return n, nil
}

func (h *faultHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, fmt.Errorf("wal: write on closed file %s", h.name)
	}
	if h.reading {
		return 0, fmt.Errorf("wal: %s not open for writing", h.name)
	}
	err, persist := h.fs.step(true, len(p))
	// The handle may belong to a pre-crash generation of the file; writes
	// land only if the directory still maps the name to this file.
	if h.fs.files[h.name] != h.file {
		if err == nil {
			err = ErrCrashed
		}
		return 0, err
	}
	if err != nil {
		if persist > 0 {
			h.file.data = append(h.file.data, p[:persist]...)
			return persist, err
		}
		return 0, err
	}
	h.file.data = append(h.file.data, p...)
	return len(p), nil
}

func (h *faultHandle) Sync() error {
	if d := h.fs.SyncDelay; d > 0 {
		time.Sleep(d)
	}
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return fmt.Errorf("wal: sync on closed file %s", h.name)
	}
	err, _ := h.fs.step(false, 0)
	if h.fs.files[h.name] != h.file {
		if err == nil {
			err = ErrCrashed
		}
		return err
	}
	if err != nil {
		return err
	}
	h.file.durable = len(h.file.data)
	return nil
}

func (h *faultHandle) Close() error {
	h.closed = true
	return nil
}
