package wal

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// collect replays the whole log into a slice of payload strings.
func collect(t *testing.T, w *WAL, from uint64) []string {
	t.Helper()
	var got []string
	var lsns []uint64
	err := w.Replay(from, func(lsn uint64, payload []byte) error {
		got = append(got, string(payload))
		lsns = append(lsns, lsn)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	for i := 1; i < len(lsns); i++ {
		if lsns[i] != lsns[i-1]+1 {
			t.Fatalf("non-contiguous LSNs in replay: %v", lsns)
		}
	}
	return got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	fs := NewFaultFS()
	w, err := Open(fs, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < 100; i++ {
		p := fmt.Sprintf("record-%03d-%s", i, string(make([]byte, i%7)))
		lsn, err := w.Append([]byte(p))
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn = %d, want %d", lsn, i+1)
		}
		if err := w.Durable(lsn); err != nil {
			t.Fatal(err)
		}
		want = append(want, p)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and replay.
	w2, err := Open(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got := collect(t, w2, 1)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if w2.LastLSN() != 100 {
		t.Fatalf("LastLSN = %d, want 100", w2.LastLSN())
	}
}

func TestRotationAndPrune(t *testing.T) {
	fs := NewFaultFS()
	w, err := Open(fs, Options{Sync: SyncAlways, SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 100)
	for i := 0; i < 20; i++ {
		lsn, err := w.Append(payload)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Durable(lsn); err != nil {
			t.Fatal(err)
		}
	}
	st := w.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected rotation to several segments, got %d", st.Segments)
	}
	// Prune everything up to LSN 10: several sealed segments disappear,
	// but every record > 10 must survive.
	if err := w.Prune(10); err != nil {
		t.Fatal(err)
	}
	got := collect(t, w, 11)
	if len(got) != 10 {
		t.Fatalf("replay after prune = %d records, want 10", len(got))
	}
	if w.Stats().Segments >= st.Segments {
		t.Fatalf("prune removed nothing (%d -> %d segments)", st.Segments, w.Stats().Segments)
	}
	w.Close()

	// Reopen after pruning: LSNs continue, no gaps observed by replay.
	w2, err := Open(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.LastLSN() != 20 {
		t.Fatalf("LastLSN after reopen = %d, want 20", w2.LastLSN())
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	fs := NewFaultFS()
	w, err := Open(fs, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		lsn, _ := w.Append([]byte(fmt.Sprintf("durable-%d", i)))
		if err := w.Durable(lsn); err != nil {
			t.Fatal(err)
		}
	}
	// Two more records that are appended and flushed but never synced.
	w.Append([]byte("lost-1"))
	w.Append([]byte("lost-2"))
	w.flush()

	// Power cut keeping 3 torn bytes of the unsynced tail.
	fs.SimulateCrash(func(unsynced int) int { return 3 })

	w2, err := Open(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got := collect(t, w2, 1)
	if len(got) != 5 {
		t.Fatalf("replay after torn-tail crash = %d records, want 5", len(got))
	}
	if w2.TornTruncations() == 0 {
		t.Fatal("expected a torn-tail truncation to be counted")
	}
	if w2.LastLSN() != 5 {
		t.Fatalf("LastLSN = %d, want 5", w2.LastLSN())
	}
	// New appends continue the sequence on a fresh segment.
	lsn, err := w2.Append([]byte("after"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 6 {
		t.Fatalf("next LSN = %d, want 6", lsn)
	}
}

func TestCorruptionBeforeTailIsAnError(t *testing.T) {
	fs := NewFaultFS()
	w, err := Open(fs, Options{Sync: SyncAlways, SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		lsn, _ := w.Append([]byte(fmt.Sprintf("record-%d", i)))
		if err := w.Durable(lsn); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	// Flip bytes in the middle of the FIRST segment (not the newest):
	// recovery must refuse, not silently truncate committed history.
	names, _ := sortedList(fs)
	var firstSeg string
	for _, n := range names {
		if _, ok := parseSegName(n); ok {
			firstSeg = n
			break
		}
	}
	f := fs.files[firstSeg]
	f.data[len(segMagic)+10] ^= 0xff
	if _, err := Open(fs, Options{}); err == nil {
		t.Fatal("Open succeeded over corrupted non-tail segment, want ErrCorrupt")
	}
}

func TestGroupCommitSharesFsyncs(t *testing.T) {
	fs := NewFaultFS()
	fs.SyncDelay = 200 * time.Microsecond // a "disk" slow enough for committers to pile up
	w, err := Open(fs, Options{Sync: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const goroutines = 8
	const perG = 50
	var wg sync.WaitGroup
	var mu sync.Mutex // serializes Append like the database's writer lock
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				mu.Lock()
				lsn, err := w.Append([]byte(fmt.Sprintf("g%d-%d", g, i)))
				mu.Unlock()
				if err != nil {
					t.Error(err)
					return
				}
				if err := w.Durable(lsn); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := w.Stats()
	if st.Appends != goroutines*perG {
		t.Fatalf("appends = %d, want %d", st.Appends, goroutines*perG)
	}
	if st.Fsyncs >= st.Appends {
		t.Fatalf("group commit ineffective: %d fsyncs for %d commits", st.Fsyncs, st.Appends)
	}
	if st.DurableLSN != st.LastLSN {
		t.Fatalf("durableLSN = %d, lastLSN = %d; all commits were acknowledged", st.DurableLSN, st.LastLSN)
	}
	t.Logf("group commit: %d commits, %d fsyncs, %d shared, max group %d",
		st.Appends, st.Fsyncs, st.GroupCommits, st.MaxGroupSize)
}

func TestSyncOffNeverFsyncs(t *testing.T) {
	fs := NewFaultFS()
	w, err := Open(fs, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		lsn, _ := w.Append([]byte("x"))
		if err := w.Durable(lsn); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	if fs.Syncs != 0 {
		t.Fatalf("SyncOff issued %d fsyncs, want 0", fs.Syncs)
	}
}

func TestAppendAfterInjectedFailureIsSticky(t *testing.T) {
	fs := NewFaultFS()
	w, err := Open(fs, Options{Sync: SyncAlways, SegmentSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	fs.SetPlan(FaultPlan{AtOp: fs.OpCount() + 2, Kind: FaultErr})
	var firstErr error
	for i := 0; i < 20; i++ {
		lsn, err := w.Append([]byte("payload-payload-payload"))
		if err == nil {
			err = w.Durable(lsn)
		}
		if err != nil {
			firstErr = err
			break
		}
	}
	if firstErr == nil {
		t.Fatal("injected fault never surfaced")
	}
	if _, err := w.Append([]byte("after")); err == nil {
		t.Fatal("Append after log failure succeeded, want sticky error")
	}
}
