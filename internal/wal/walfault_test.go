package wal

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// walWorkload appends nCommits records (each made durable before the next
// is issued) and reports how many Durable calls were acknowledged before
// the first error. Group policy with rotation keeps the IO pattern
// realistic: segment creates, header writes, record writes, fsyncs.
func walWorkload(w *WAL, nCommits int) (acked int) {
	for i := 0; i < nCommits; i++ {
		lsn, err := w.Append([]byte(fmt.Sprintf("commit-%04d", i)))
		if err != nil {
			return acked
		}
		if err := w.Durable(lsn); err != nil {
			return acked
		}
		acked++
	}
	return acked
}

// TestCrashAtEveryIOOp is the WAL half of the fault-injection harness: it
// crashes the filesystem at EVERY write/fsync index the workload performs
// (plus short-write variants) and proves that recovery always yields a
// contiguous prefix of the appended records — never a gap, a reorder, or a
// torn record — and that every acknowledged commit survived.
func TestCrashAtEveryIOOp(t *testing.T) {
	const commits = 25
	opts := Options{Sync: SyncAlways, SegmentSize: 300}

	// Dry run: how many IO ops does the workload take?
	dry := NewFaultFS()
	w, err := Open(dry, opts)
	if err != nil {
		t.Fatal(err)
	}
	if n := walWorkload(w, commits); n != commits {
		t.Fatalf("dry run acked %d of %d", n, commits)
	}
	w.Close()
	totalOps := dry.OpCount()
	if totalOps < 50 {
		t.Fatalf("workload too small for the sweep: %d IO ops, need >= 50 crash points", totalOps)
	}
	t.Logf("sweeping %d crash points (%d writes, %d fsyncs)", totalOps, dry.Writes, dry.Syncs)

	kinds := []struct {
		name string
		kind FaultKind
		torn func(int) int
	}{
		{"crash-clean", FaultCrash, nil},
		{"crash-torn", FaultCrash, nil}, // torn set per-point below
		{"short-write", FaultShortWrite, nil},
	}
	for _, k := range kinds {
		k := k
		t.Run(k.name, func(t *testing.T) {
			for op := 1; op <= totalOps; op++ {
				rng := rand.New(rand.NewSource(int64(op)))
				fs := NewFaultFS()
				w, err := Open(fs, opts)
				if err != nil {
					t.Fatalf("op %d: open: %v", op, err)
				}
				fs.SetPlan(FaultPlan{AtOp: op, Kind: k.kind})
				acked := walWorkload(w, commits)

				torn := k.torn
				if k.name == "crash-torn" {
					torn = func(unsynced int) int {
						if unsynced == 0 {
							return 0
						}
						return rng.Intn(unsynced + 1)
					}
				}
				fs.SimulateCrash(torn)

				w2, err := Open(fs, opts)
				if err != nil {
					t.Fatalf("op %d: recovery open: %v", op, err)
				}
				var recovered []string
				err = w2.Replay(1, func(lsn uint64, payload []byte) error {
					want := fmt.Sprintf("commit-%04d", len(recovered))
					if string(payload) != want {
						return fmt.Errorf("record %d = %q, want %q (gap or reorder)", lsn, payload, want)
					}
					recovered = append(recovered, string(payload))
					return nil
				})
				if err != nil {
					t.Fatalf("op %d: replay: %v", op, err)
				}
				if len(recovered) < acked {
					t.Fatalf("op %d: %d acked commits but only %d recovered — durability violated",
						op, acked, len(recovered))
				}
				if len(recovered) > commits {
					t.Fatalf("op %d: recovered %d > %d issued", op, len(recovered), commits)
				}
				// The recovered log must accept new appends at the right LSN.
				lsn, err := w2.Append([]byte("post-recovery"))
				if err != nil {
					t.Fatalf("op %d: append after recovery: %v", op, err)
				}
				if lsn != uint64(len(recovered)+1) {
					t.Fatalf("op %d: post-recovery LSN = %d, want %d", op, lsn, len(recovered)+1)
				}
				w2.Close()
			}
		})
	}
}

// TestCrashDuringRecoveryTruncation crashes again while the recovery
// Open is truncating a torn tail: the second recovery must still succeed.
func TestCrashDuringRecoveryTruncation(t *testing.T) {
	fs := NewFaultFS()
	w, err := Open(fs, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		lsn, _ := w.Append([]byte(fmt.Sprintf("c-%d", i)))
		if err := w.Durable(lsn); err != nil {
			t.Fatal(err)
		}
	}
	w.Append([]byte("unsynced"))
	w.flush()
	fs.SimulateCrash(func(unsynced int) int { return 5 }) // torn tail

	// First recovery crashes immediately (next IO op).
	fs.SetPlan(FaultPlan{AtOp: fs.OpCount() + 1, Kind: FaultCrash})
	if _, err := Open(fs, Options{}); err == nil {
		// Truncate is metadata (not an IO op), so Open may succeed before
		// any write happens; that is fine too — crash later instead.
		fs.SimulateCrash(nil)
	} else {
		fs.SimulateCrash(nil)
	}

	w2, err := Open(fs, Options{})
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	defer w2.Close()
	n := 0
	if err := w2.Replay(1, func(uint64, []byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("recovered %d records, want 5", n)
	}
}

// TestInjectedSyncFailureLosesNothingAcknowledged: a failed fsync must
// fail the commit; recovery may or may not contain that record, but every
// previously acknowledged one survives.
func TestInjectedSyncFailure(t *testing.T) {
	fs := NewFaultFS()
	w, err := Open(fs, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		lsn, _ := w.Append([]byte(fmt.Sprintf("ok-%d", i)))
		if err := w.Durable(lsn); err != nil {
			t.Fatal(err)
		}
	}
	fs.SetPlan(FaultPlan{AtOp: fs.OpCount() + 2, Kind: FaultErr}) // fail the next fsync (after its flush write)
	lsn, err := w.Append([]byte("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Durable(lsn); err == nil {
		t.Fatal("Durable succeeded through injected fsync failure")
	}
	if !errors.Is(w.Durable(lsn), ErrInjected) && w.Durable(lsn) == nil {
		t.Fatal("log did not stay failed")
	}
	fs.SimulateCrash(nil)
	w2, err := Open(fs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	n := 0
	if err := w2.Replay(1, func(uint64, []byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n < 3 {
		t.Fatalf("lost acknowledged records: recovered %d, want >= 3", n)
	}
}
